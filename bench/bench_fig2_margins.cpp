// Reproduces the *shape* of paper Fig. 2: stacked V_dd-margin
// contributions (static noise, parameter variation, NBTI, RTN) per CMOS
// node, against the V_dd scaling line.
//
// The paper's figure uses proprietary Renesas measurements; here every
// term is derived from this library's own technology cards and trap
// physics (documented substitution, see DESIGN.md):
//   variation: Pelgrom-style sigma_VT = A_vt / sqrt(W L), taken at 5 sigma
//   NBTI:      threshold shift from the mean *filled* trap charge
//   RTN:       threshold fluctuation from the active (switching) traps,
//              sqrt(N_active) single-charge steps at 5 sigma
// The headline behaviour — the RTN increment growing with scaling until
// the stack crosses the V_dd line — emerges from q/(C_ox W L) scaling.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "physics/constants.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "physics/trap_profile.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Rng rng(cli.get_seed("seed", 12));
  const double a_vt = cli.get_double("avt", 2.2e-9);  // V*m (2.2 mV*um)
  const double sigmas = cli.get_double("sigmas", 5.0);

  std::printf("=== Paper Fig. 2 (shape): V_dd margin stack per node ===\n\n");
  util::Table table({"node", "V_dd (V)", "base (V)", "+variation (V)",
                     "+NBTI (V)", "+RTN (V)", "total (V)", "RTN share (%)",
                     "margin left (V)"});

  for (const auto& name : physics::technology_nodes()) {
    const auto tech = physics::technology(name);
    const physics::SrhModel srh(tech);
    const physics::MosGeometry geom{tech.w_min, tech.l_min};
    const double area = geom.width * geom.length;
    const double q_step = physics::kElementaryCharge / (tech.c_ox() * area);

    // Static-noise base: the minimum supply that keeps the inverter pair
    // regenerative; model as V_th + a fixed subthreshold-slope allowance.
    const double base = tech.v_th0() + 8.0 * tech.phi_t();

    // Variation: 5 sigma Pelgrom mismatch.
    const double variation = sigmas * a_vt / std::sqrt(area);

    // NBTI and RTN from the trap population, averaged over sampled devices.
    double filled_mean = 0.0, active_mean = 0.0;
    const int samples = 64;
    for (int s = 0; s < samples; ++s) {
      util::Rng device_rng = rng.split(static_cast<std::uint64_t>(s) + 1);
      const auto traps = physics::sample_trap_profile(tech, geom, device_rng);
      double filled = 0.0;
      for (const auto& trap : traps) {
        filled += srh.stationary_fill(trap, tech.v_dd);
      }
      filled_mean += filled;
      active_mean += static_cast<double>(
          physics::active_trap_count(srh, traps, tech.v_dd));
    }
    filled_mean /= samples;
    active_mean /= samples;

    const double nbti = 0.5 * filled_mean * q_step;  // mean trapped charge
    const double rtn = sigmas * std::sqrt(std::max(active_mean, 0.25)) * q_step;
    const double total = base + variation + nbti + rtn;

    table.add_row({name, tech.v_dd, base, variation, nbti, rtn, total,
                   100.0 * rtn / total, tech.v_dd - total});
  }
  table.print(std::cout);

  std::printf("\nExpected shape (paper): the V_dd scaling line falls faster\n"
              "than the margin stack shrinks; the RTN increment (q/C_ox·WL\n"
              "per trapped electron) grows toward scaled nodes and is the\n"
              "term that pushes the stack over the line — 'margin left'\n"
              "turning negative at the most scaled nodes.\n");
  return 0;
}
