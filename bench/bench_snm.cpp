// Static-noise-margin ablation: the stability-axis view of the paper's
// Fig. 2 margin stack. For each node, the hold and read SNM at nominal
// supply, and the read-SNM cost of a single trapped charge and of the
// expected active RTN population (ΔV_th = q/(C_ox W L) per charge) —
// showing how the per-charge cost explodes toward scaled nodes.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "physics/constants.hpp"
#include "physics/srh_model.hpp"
#include "physics/trap_profile.hpp"
#include "sram/snm.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  util::Rng rng(cli.get_seed("seed", 4));

  std::printf("=== SNM view of the RTN margin (cf. paper Fig. 2) ===\n\n");
  util::Table table({"node", "V_dd (V)", "hold SNM (mV)", "read SNM (mV)",
                     "dVth/charge (mV)", "read SNM loss, 1 charge (mV)",
                     "loss at E[active traps] (mV)"});
  struct NodeRow {
    std::string node;
    double v_dd, hold, read, q_step, read_one, read_active;
  };
  std::vector<NodeRow> rows;
  for (const auto& node : physics::technology_nodes()) {
    sram::SnmConfig config;
    config.tech = physics::technology(node);
    const double hold = sram::compute_snm(config).snm;
    config.mode = sram::SnmMode::kRead;
    const double read = sram::compute_snm(config).snm;

    // Per-charge threshold shift on the read pull-down (M6 geometry).
    const auto geom = sram::transistor_geometry(config.tech, config.sizing, 6);
    const double q_step = physics::kElementaryCharge /
                          (config.tech.c_ox() * geom.width * geom.length);
    config.vth_shifts["M6"] = q_step;
    const double read_one = sram::compute_snm(config).snm;

    // Expected simultaneously-active trap count at V_dd (64 sampled
    // devices), as sqrt(N) one-sigma charges on the pull-down.
    const physics::SrhModel srh(config.tech);
    double active = 0.0;
    const int samples = 64;
    for (int s = 0; s < samples; ++s) {
      util::Rng device_rng = rng.split(static_cast<std::uint64_t>(s) + 1);
      const auto traps =
          physics::sample_trap_profile(config.tech, geom, device_rng);
      active += static_cast<double>(
          physics::active_trap_count(srh, traps, config.tech.v_dd));
    }
    active /= samples;
    config.vth_shifts["M6"] = q_step * std::sqrt(std::max(active, 0.25));
    const double read_active = sram::compute_snm(config).snm;

    table.add_row({node, config.tech.v_dd, hold * 1e3, read * 1e3,
                   q_step * 1e3, (read - read_one) * 1e3,
                   (read - read_active) * 1e3});
    rows.push_back({node, config.tech.v_dd, hold, read, q_step, read_one,
                    read_active});
  }
  table.print(std::cout);

  // Machine-readable trajectory line (scripted against BENCH_*.json).
  std::printf("\n{\"bench\": \"snm\", \"nodes\": [");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%s{\"node\": \"%s\", \"v_dd\": %.3f, \"hold_snm_mv\": %.3f, "
                "\"read_snm_mv\": %.3f, \"dvth_per_charge_mv\": %.3f, "
                "\"read_loss_1charge_mv\": %.3f, "
                "\"read_loss_active_mv\": %.3f}",
                i == 0 ? "" : ", ", r.node.c_str(), r.v_dd, r.hold * 1e3,
                r.read * 1e3, r.q_step * 1e3, (r.read - r.read_one) * 1e3,
                (r.read - r.read_active) * 1e3);
  }
  std::printf("]}\n");

  std::printf("\nExpected shape: SNM shrinks with V_dd scaling while the\n"
              "per-charge V_T step q/(C_ox W L) grows as the device area\n"
              "shrinks — so the read-stability cost of the *same* trap\n"
              "activity rises sharply toward scaled nodes, the mechanism\n"
              "behind Fig. 2's growing RTN increment.\n");
  return 0;
}
