// V_min characterisation: the simulated counterpart of paper Fig. 2's
// question — how much V_dd margin does RTN cost?
//
// For each node: (1) a coarse supply sweep brackets the nominal write
// V_min; (2) a fine sweep around it measures the RTN-induced write-error
// *probability* per supply point over many trap-population draws. The RTN
// V_dd margin is the extra supply needed to drive that probability to
// zero across all draws. (Write errors are rare events — the paper's
// wording — so the margin is a statistical quantity; this bench is also
// the "accelerated testing" alternative to amplitude scaling, ref. [14].)
#include <atomic>
#include <cstdio>
#include <iostream>

#include "sram/methodology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace samurai;

namespace {

sram::MethodologyConfig base_config(const std::string& node, double scale) {
  sram::MethodologyConfig config;
  config.tech = physics::technology(node);
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0, 1});
  config.rtn_scale = scale;
  return config;
}

bool nominal_passes(sram::MethodologyConfig config, double v_dd) {
  config.tech.v_dd = v_dd;
  config.seed = 1;
  return !sram::run_methodology(config).nominal_report.any_error;
}

std::size_t g_threads = 1;

std::size_t rtn_failures(const sram::MethodologyConfig& base, double v_dd,
                         std::size_t seeds) {
  // Seeds are independent trap draws; the failure count is a simple sum,
  // so the fan-out is order-invariant.
  std::atomic<std::size_t> failures{0};
  samurai::util::parallel_for_indexed(
      seeds,
      [&](std::size_t s) {
        sram::MethodologyConfig run = base;
        run.tech.v_dd = v_dd;
        run.seed = 1000 + s;
        if (sram::run_methodology(run).rtn_report.any_error) ++failures;
      },
      g_threads);
  return failures.load();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 120.0);
  const auto seeds = static_cast<std::size_t>(cli.get_int("rtn-seeds", 16));
  const double fine_step = cli.get_double("resolution", 0.01);
  g_threads = static_cast<std::size_t>(cli.get_int("threads", 8));

  std::printf("=== V_min characterisation: the RTN V_dd margin (cf. paper "
              "Fig. 2) ===\n");
  std::printf("write pattern 101, RTN x%.0f, %zu trap draws per supply "
              "point\n\n", scale, seeds);

  util::Table summary({"node", "V_dd (V)", "Vmin nominal (V)",
                       "Vmin with RTN (V)", "RTN margin (mV)",
                       "margin left at Vdd (V)"});
  for (const char* node : {"130nm", "90nm", "65nm", "45nm"}) {
    auto config = base_config(node, scale);
    const double v_dd_nom = config.tech.v_dd;

    // Stage 1: bracket the nominal V_min with a coarse descent.
    double coarse = v_dd_nom;
    while (coarse > 0.4 && nominal_passes(config, coarse - 0.05)) {
      coarse -= 0.05;
    }
    // Stage 2: find the lowest supply with zero RTN failures, then sweep
    // down from there (scaled nodes need a wide window: their RTN
    // failures persist far above the nominal V_min).
    double v_top = coarse + 0.08;
    while (v_top < v_dd_nom && rtn_failures(config, v_top, seeds) > 0) {
      v_top += 0.02;
    }
    util::Table detail({"V_dd (V)", "nominal", "RTN failures"});
    double vmin_nominal = 0.0, vmin_rtn = 0.0;
    bool rtn_broken = false;  // failures seen at some higher supply
    for (double v = v_top; v >= coarse - 0.05 - 1e-9; v -= fine_step) {
      const bool nominal_ok = nominal_passes(config, v);
      const std::size_t failures =
          nominal_ok ? rtn_failures(config, v, seeds) : seeds;
      char rate[24];
      std::snprintf(rate, sizeof rate, "%zu/%zu", failures, seeds);
      detail.add_row({v, std::string(nominal_ok ? "pass" : "FAIL"),
                      std::string(rate)});
      // Descending sweep: V_min is the lowest supply contiguous with the
      // passing region at the top.
      if (nominal_ok) vmin_nominal = v;
      if (failures > 0) rtn_broken = true;
      if (nominal_ok && !rtn_broken) vmin_rtn = v;
      if (!nominal_ok) break;  // everything below fails nominally
    }
    std::printf("--- %s (fine sweep) ---\n", node);
    detail.print(std::cout);
    std::printf("\n");
    summary.add_row({std::string(node), v_dd_nom, vmin_nominal, vmin_rtn,
                     (vmin_rtn - vmin_nominal) * 1e3, v_dd_nom - vmin_rtn});
  }
  std::printf("--- summary ---\n");
  summary.print(std::cout);

  std::printf("\nExpected shape (paper Fig. 2): V_min rises toward scaled\n"
              "nodes while V_dd falls, so the 'margin left' column shrinks;\n"
              "RTN failures persist above the nominal V_min, demanding an\n"
              "extra (tens of mV) supply margin that the scaling line can\n"
              "no longer spare.\n");
  return 0;
}
