// V_min characterisation: the simulated counterpart of paper Fig. 2's
// question — how much V_dd margin does RTN cost?
//
// For each node: (1) a coarse supply sweep brackets the nominal write
// V_min; (2) a fine sweep around it measures the RTN-induced write-error
// *probability* per supply point over many trap-population draws. The RTN
// V_dd margin is the extra supply needed to drive that probability to
// zero across all draws. (Write errors are rare events — the paper's
// wording — so the margin is a statistical quantity; this bench is also
// the "accelerated testing" alternative to amplitude scaling, ref. [14].)
#include <atomic>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sram/methodology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace samurai;

namespace {

sram::MethodologyConfig base_config(const std::string& node, double scale) {
  sram::MethodologyConfig config;
  config.tech = physics::technology(node);
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0, 1});
  config.rtn_scale = scale;
  return config;
}

bool nominal_passes(sram::MethodologyConfig config, double v_dd) {
  config.tech.v_dd = v_dd;
  config.seed = 1;
  return !sram::run_methodology(config).nominal_report.any_error;
}

std::size_t g_threads = 1;

std::size_t rtn_failures(const sram::MethodologyConfig& base, double v_dd,
                         std::size_t seeds) {
  // Seeds are independent trap draws; the failure count is a simple sum,
  // so the fan-out is order-invariant.
  std::atomic<std::size_t> failures{0};
  samurai::util::parallel_for_indexed(
      seeds,
      [&](std::size_t s) {
        sram::MethodologyConfig run = base;
        run.tech.v_dd = v_dd;
        run.seed = 1000 + s;
        if (sram::run_methodology(run).rtn_report.any_error) ++failures;
      },
      g_threads);
  return failures.load();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 120.0);
  const auto seeds = static_cast<std::size_t>(cli.get_int("rtn-seeds", 16));
  const double fine_step = cli.get_double("resolution", 0.01);
  g_threads = static_cast<std::size_t>(cli.get_int("threads", 8));

  std::printf("=== V_min characterisation: the RTN V_dd margin (cf. paper "
              "Fig. 2) ===\n");
  std::printf("write pattern 101, RTN x%.0f, %zu trap draws per supply "
              "point\n\n", scale, seeds);

  struct NodeSummary {
    std::string node;
    double v_dd = 0.0;
    bool nominal_found = false, rtn_found = false;
    double vmin_nominal = 0.0, vmin_rtn = 0.0;
  };
  std::vector<NodeSummary> summaries;
  for (const char* node : {"130nm", "90nm", "65nm", "45nm"}) {
    auto config = base_config(node, scale);
    const double v_dd_nom = config.tech.v_dd;

    // Stage 1: bracket the nominal V_min with a coarse descent.
    double coarse = v_dd_nom;
    while (coarse > 0.4 && nominal_passes(config, coarse - 0.05)) {
      coarse -= 0.05;
    }
    // Stage 2: find the lowest supply with zero RTN failures, then sweep
    // down from there (scaled nodes need a wide window: their RTN
    // failures persist far above the nominal V_min).
    double v_top = coarse + 0.08;
    while (v_top < v_dd_nom && rtn_failures(config, v_top, seeds) > 0) {
      v_top += 0.02;
    }
    util::Table detail({"V_dd (V)", "nominal", "RTN failures"});
    NodeSummary node_summary;
    node_summary.node = node;
    node_summary.v_dd = v_dd_nom;
    bool rtn_broken = false;  // failures seen at some higher supply
    for (double v = v_top; v >= coarse - 0.05 - 1e-9; v -= fine_step) {
      const bool nominal_ok = nominal_passes(config, v);
      const std::size_t failures =
          nominal_ok ? rtn_failures(config, v, seeds) : seeds;
      char rate[24];
      std::snprintf(rate, sizeof rate, "%zu/%zu", failures, seeds);
      detail.add_row({v, std::string(nominal_ok ? "pass" : "FAIL"),
                      std::string(rate)});
      // Descending sweep: V_min is the lowest supply contiguous with the
      // passing region at the top. "Never passed" stays an explicit flag —
      // an all-fail sweep must not be reported as a 0 V V_min.
      if (nominal_ok) {
        node_summary.vmin_nominal = v;
        node_summary.nominal_found = true;
      }
      if (failures > 0) rtn_broken = true;
      if (nominal_ok && !rtn_broken) {
        node_summary.vmin_rtn = v;
        node_summary.rtn_found = true;
      }
      if (!nominal_ok) break;  // everything below fails nominally
    }
    std::printf("--- %s (fine sweep) ---\n", node);
    detail.print(std::cout);
    std::printf("\n");
    summaries.push_back(node_summary);
  }
  std::printf("--- summary ---\n");
  util::Table summary({"node", "V_dd (V)", "Vmin nominal (V)",
                       "Vmin with RTN (V)", "RTN margin (mV)",
                       "margin left at Vdd (V)"});
  for (const auto& s : summaries) {
    const bool both = s.nominal_found && s.rtn_found;
    if (both) {
      summary.add_row({s.node, s.v_dd, s.vmin_nominal, s.vmin_rtn,
                       (s.vmin_rtn - s.vmin_nominal) * 1e3,
                       s.v_dd - s.vmin_rtn});
    } else {
      summary.add_row({s.node, s.v_dd,
                       std::string(s.nominal_found ? "" : "n/a"),
                       std::string(s.rtn_found ? "" : "n/a"),
                       std::string("n/a"), std::string("n/a")});
    }
  }
  summary.print(std::cout);

  // Machine-readable trajectory line (scripted against BENCH_*.json).
  std::printf("\n{\"bench\": \"vmin\", \"scale\": %.1f, \"rtn_seeds\": %zu, "
              "\"nodes\": [", scale, seeds);
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    std::printf("%s{\"node\": \"%s\", \"v_dd\": %.3f, "
                "\"nominal_found\": %s, \"rtn_found\": %s, "
                "\"vmin_nominal\": %s, \"vmin_rtn\": %s, "
                "\"rtn_margin_mv\": %s}",
                i == 0 ? "" : ", ", s.node.c_str(), s.v_dd,
                s.nominal_found ? "true" : "false",
                s.rtn_found ? "true" : "false",
                s.nominal_found
                    ? std::to_string(s.vmin_nominal).c_str() : "null",
                s.rtn_found ? std::to_string(s.vmin_rtn).c_str() : "null",
                (s.nominal_found && s.rtn_found)
                    ? std::to_string((s.vmin_rtn - s.vmin_nominal) * 1e3)
                          .c_str()
                    : "null");
  }
  std::printf("]}\n");

  std::printf("\nExpected shape (paper Fig. 2): V_min rises toward scaled\n"
              "nodes while V_dd falls, so the 'margin left' column shrinks;\n"
              "RTN failures persist above the nominal V_min, demanding an\n"
              "extra (tens of mV) supply margin that the scaling line can\n"
              "no longer spare.\n");
  return 0;
}
