// Ablation B: SAMURAI vs the Ye et al. 2-stage equivalent-circuit
// baseline (paper ref. [10]) on a *switching* gate bias.
//
// Both generators are set up to match the same trap at the high-bias
// point. When the gate switches low, the physical trap freezes (its
// capture/emission ratio collapses); SAMURAI tracks this, the white-noise
// 2-stage generator cannot — it keeps producing stationary telegraph
// activity. We also compare the cost per generated transition.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "baseline/ye_two_stage.hpp"
#include "core/propensity.hpp"
#include "core/uniformisation.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tech = physics::technology(cli.get_string("node", "90nm"));
  const physics::SrhModel srh(tech);
  util::Rng rng(cli.get_seed("seed", 55));

  // A trap resonant near 0.75 V_dd.
  const physics::Trap trap{0.22 * tech.t_ox, 0.60, physics::TrapState::kEmpty};
  const double v_high = 0.75 * tech.v_dd;
  const auto p_high = srh.propensities(trap, v_high);
  const double tau_empty = 1.0 / p_high.lambda_c;
  const double tau_filled = 1.0 / p_high.lambda_e;

  std::printf("=== Ablation B: SAMURAI vs Ye-style 2-stage baseline ===\n");
  std::printf("trap at y=%.2f nm, E=%.2f eV; at V=%.2f V: τ_empty=%.3g s, "
              "τ_filled=%.3g s\n\n",
              trap.y_tr * 1e9, trap.e_tr, v_high, tau_empty, tau_filled);

  // Square-wave gate: high for the first half, low for the second.
  const double horizon = 4000.0 * std::max(tau_empty, tau_filled);
  core::Pwl gate;
  gate.append(0.0, v_high);
  gate.append(0.5 * horizon * (1.0 - 1e-9), v_high);
  gate.append(0.5 * horizon, 0.05 * tech.v_dd);

  auto half_split = [&](const core::TrapTrajectory& traj, std::size_t& high,
                        std::size_t& low) {
    high = low = 0;
    for (double t : traj.switch_times()) {
      (t < 0.5 * horizon ? high : low)++;
    }
  };

  util::Table table({"generator", "transitions V-high", "transitions V-low",
                     "non-stationary?", "random draws", "draws per transition"});

  // SAMURAI.
  {
    util::Rng samurai_rng = rng.split(1);
    const core::BiasPropensity propensity(srh, trap, gate);
    core::UniformisationStats stats;
    const auto traj = core::simulate_trap(propensity, 0.0, horizon,
                                          trap.init_state, samurai_rng, {},
                                          &stats);
    std::size_t high = 0, low = 0;
    half_split(traj, high, low);
    const double draws = 2.0 * static_cast<double>(stats.candidates);
    table.add_row({std::string("SAMURAI (Alg. 1)"),
                   static_cast<long long>(high), static_cast<long long>(low),
                   std::string(low < high / 10 + 2 ? "yes (freezes)" : "NO"),
                   draws,
                   traj.num_switches() ? draws / traj.num_switches() : 0.0});
  }

  // Ye 2-stage, calibrated at the high-bias point.
  {
    util::Rng cal_rng = rng.split(2);
    const auto params = baseline::calibrate_ye_two_stage(tau_empty, tau_filled,
                                                         cal_rng);
    util::Rng ye_rng = rng.split(3);
    baseline::YeTwoStageStats stats;
    const auto traj = baseline::ye_two_stage(params, 0.0, horizon,
                                             trap.init_state, ye_rng, &stats);
    std::size_t high = 0, low = 0;
    half_split(traj, high, low);
    table.add_row({std::string("Ye 2-stage (ref. [10])"),
                   static_cast<long long>(high), static_cast<long long>(low),
                   std::string(low < high / 10 + 2 ? "yes" : "NO (stationary)"),
                   static_cast<double>(stats.samples),
                   traj.num_switches()
                       ? static_cast<double>(stats.samples) /
                             static_cast<double>(traj.num_switches())
                       : 0.0});
  }
  table.print(std::cout);

  std::printf("\nExpected shape (paper §I-C): the 2-stage baseline keeps\n"
              "toggling after the gate drops — it cannot express bias-\n"
              "dependent statistics — and burns orders of magnitude more\n"
              "random numbers per transition because the white-noise source\n"
              "must be sampled far above the telegraph rate. SAMURAI\n"
              "freezes with the gate and pays ~2 draws per candidate.\n");
  return 0;
}
