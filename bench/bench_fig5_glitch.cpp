// Reproduces paper Fig. 5: the effect of I_RTN glitch *timing* on a
// write-1 operation — (i) no glitch: clean write; (ii) glitch that ends
// before WL de-assertion: slowed write; (iii) glitch that persists through
// WL de-assertion: write error.
//
// A rectangular current glitch opposing the pass transistor M1's channel
// current (paper Fig. 4 right) is injected between Q and BL while the
// pattern writes a 1. Also prints a timing/amplitude shmoo showing where
// the slow/error boundaries fall.
#include <cstdio>
#include <iostream>

#include "sram/cell.hpp"
#include "sram/detector.hpp"
#include "sram/pattern.hpp"
#include "spice/analysis.hpp"
#include "spice/devices.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

struct Scenario {
  std::string name;
  double glitch_start;  ///< s, absolute (0 = slot start); <0 = no glitch
  double glitch_end;
  double amplitude;     ///< A
};

struct Outcome {
  sram::PatternReport report;
  spice::TransientResult transient;
  std::string q_node;
  double q_at_wl_off = 0.0;
};

Outcome run_scenario(const physics::Technology& tech,
                     const sram::PatternWaveforms& pattern,
                     const Scenario& scenario) {
  // This cell's regeneration from near-threshold takes tens of ps (its
  // time constants are far smaller than the paper's 90nm testbed), so a
  // write counts as "slowed" when Q settles later than 10 ps after WL
  // de-assertion rather than the detector's default 5% of the slot.
  spice::Circuit circuit;
  const auto handles = sram::build_6t_cell(circuit, tech, {}, "");
  spice::VoltageSource::dc(circuit, "Vdd", circuit.find_node(handles.vdd),
                           spice::kGround, tech.v_dd);
  circuit.add<spice::VoltageSource>(circuit, "Vwl",
                                    circuit.find_node(handles.wl),
                                    spice::kGround, pattern.wl);
  circuit.add<spice::VoltageSource>(circuit, "Vbl",
                                    circuit.find_node(handles.bl),
                                    spice::kGround, pattern.bl);
  circuit.add<spice::VoltageSource>(circuit, "Vblb",
                                    circuit.find_node(handles.blb),
                                    spice::kGround, pattern.blb);
  if (scenario.glitch_start >= 0.0) {
    core::Pwl glitch;
    glitch.append(0.0, 0.0);
    if (scenario.glitch_start > 0.0) glitch.append(scenario.glitch_start, 0.0);
    glitch.append(scenario.glitch_start + 5e-12, scenario.amplitude);
    glitch.append(scenario.glitch_end, scenario.amplitude);
    glitch.append(scenario.glitch_end + 5e-12, 0.0);
    // Current pulled out of Q into BL: opposes the write-1 charging path.
    circuit.add<spice::CurrentSource>("Iglitch",
                                      circuit.find_node(handles.q),
                                      circuit.find_node(handles.bl),
                                      std::move(glitch));
  }
  spice::TransientOptions options;
  options.t_stop = pattern.t_end;
  options.dt_max = pattern.timing.period / 200.0;
  options.dc.nodeset[handles.q] = 0.0;
  options.dc.nodeset[handles.qb] = tech.v_dd;
  options.dc.nodeset[handles.vdd] = tech.v_dd;
  options.dc.nodeset[handles.bl] = tech.v_dd;
  options.dc.nodeset[handles.blb] = tech.v_dd;

  Outcome outcome;
  outcome.transient = spice::transient(circuit, options);
  outcome.q_node = handles.q;
  sram::DetectorOptions detector;
  detector.v_dd = tech.v_dd;
  detector.slow_margin_frac = 0.005;
  outcome.report = sram::check_pattern(outcome.transient.voltage(handles.q),
                                       pattern, detector);
  outcome.q_at_wl_off =
      outcome.transient.voltage_at(handles.q, pattern.wl_off_time(0));
  return outcome;
}

const char* outcome_name(const sram::PatternReport& report) {
  if (report.any_error) return "WRITE ERROR";
  if (report.any_slow) return "slowed write";
  return "clean write";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tech = physics::technology(cli.get_string("node", "90nm"));
  const double amp = cli.get_double("amp", 260e-6);
  const bool plots = !cli.has("no-plots");

  sram::PatternTiming timing;
  timing.period = 2e-9;
  const auto pattern = sram::build_pattern({sram::Op::kWrite1}, tech.v_dd,
                                           timing);
  const double wl_on = timing.wl_delay_frac * timing.period + timing.edge;
  const double wl_off = pattern.wl_off_time(0);

  std::printf("=== Paper Fig. 5: glitch timing decides the write outcome ===\n");
  std::printf("%s cell, write-1 slot of %.1f ns, WL on %.2f-%.2f ns, glitch "
              "amplitude %.0f uA\n\n",
              tech.name.c_str(), timing.period * 1e9, wl_on * 1e9,
              wl_off * 1e9, amp * 1e6);

  const std::vector<Scenario> scenarios = {
      {"(i) no glitch", -1.0, -1.0, 0.0},
      {"(ii) glitch ends just before WL falls", 0.6e-9, wl_off - 0.036e-9, amp},
      {"(iii) glitch persists past WL fall", 0.7e-9, wl_off + 0.25e-9, amp},
  };

  util::Table table({"scenario", "glitch (ns)", "Q at WL off (V)",
                     "Q at slot end (V)", "outcome"});
  std::vector<util::Series> series;
  for (const auto& scenario : scenarios) {
    const auto outcome = run_scenario(tech, pattern, scenario);
    char window[48];
    if (scenario.glitch_start < 0.0) {
      std::snprintf(window, sizeof window, "-");
    } else {
      std::snprintf(window, sizeof window, "%.2f-%.2f",
                    scenario.glitch_start * 1e9, scenario.glitch_end * 1e9);
    }
    table.add_row({scenario.name, std::string(window), outcome.q_at_wl_off,
                   outcome.report.ops[0].q_at_slot_end,
                   std::string(outcome_name(outcome.report))});
    if (plots) {
      util::Series s;
      s.name = scenario.name.substr(0, 5);
      s.x = outcome.transient.times();
      s.y = outcome.transient.voltage_samples(outcome.q_node);
      series.push_back(std::move(s));
    }
  }
  table.print(std::cout);
  std::printf("\n");

  if (plots) {
    util::PlotOptions options;
    options.title = "Q(t) per scenario (solid Q traces of paper Fig. 5)";
    options.x_label = "t (s)";
    options.y_label = "V";
    options.height = 14;
    util::plot(std::cout, series, options);
    std::printf("\n");
  }

  // Shmoo: glitch-end time vs amplitude.
  std::printf("Shmoo — outcome vs glitch end time and amplitude\n");
  std::printf("(glitch always starts at 0.6 ns; '.'=clean, 's'=slow, "
              "'E'=error; WL falls at %.2f ns)\n\n", wl_off * 1e9);
  std::printf("%10s", "amp (uA)");
  std::vector<double> end_times;
  for (double off : {-450.0, -250.0, -100.0, -50.0, -35.0, -25.0, 0.0, 150.0, 400.0}) {
    end_times.push_back(wl_off + off * 1e-12);
    std::printf(" %5.0f", off);
  }
  std::printf("   (end time rel. WL fall, ps)\n");
  for (double a : {100e-6, 180e-6, 260e-6, 340e-6, 420e-6}) {
    std::printf("%10.0f", a * 1e6);
    for (double end : end_times) {
      const Scenario s{"", 0.6e-9, end, a};
      const auto outcome = run_scenario(tech, pattern, s);
      char mark = '.';
      if (outcome.report.any_error) {
        mark = 'E';
      } else if (outcome.report.any_slow) {
        mark = 's';
      }
      std::printf(" %5c", mark);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): errors cluster where the glitch\n"
              "persists past WL de-assertion and the amplitude rivals the\n"
              "pass-gate current; earlier-ending glitches only slow the\n"
              "write; small glitches do nothing.\n");
  return 0;
}
