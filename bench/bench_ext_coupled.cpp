// Extension bench (paper future-work #1): staged methodology (biases
// pre-computed from an RTN-free run) vs bi-directionally coupled
// simulation (trap chains driven by the actual, RTN-perturbed node
// voltages) on the same pattern, seeds and scale.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "sram/coupled.hpp"
#include "sram/methodology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

double rms_difference(const spice::TransientResult& a, const std::string& node_a,
                      const spice::TransientResult& b, const std::string& node_b,
                      double t_end) {
  double sum = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const double t = t_end * (i + 0.5) / n;
    const double d = a.voltage_at(node_a, t) - b.voltage_at(node_b, t);
    sum += d * d;
  }
  return std::sqrt(sum / n);
}

template <typename F>
double timed_ms(F&& f) {
  const auto start = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::MethodologyConfig config;
  config.tech = physics::technology(cli.get_string("node", "90nm"));
  config.tech.v_dd = cli.get_double("vdd", 0.9);
  config.sizing.extra_node_cap = cli.get_double("node-cap", 40e-15);
  config.timing.period = cli.get_double("period", 1e-9);
  config.ops = sram::ops_from_bits({1, 1, 0, 1, 0});
  config.rtn_scale = cli.get_double("scale", 30.0);

  std::printf("=== Extension 1: staged vs bi-directionally coupled RTN ===\n");
  std::printf("%s, pattern 11010, RTN x%.0f\n\n", config.tech.name.c_str(),
              config.rtn_scale);

  util::Table table({"seed", "staged outcome", "coupled outcome",
                     "RMS ΔQ (mV)", "staged switches", "coupled switches",
                     "staged ms", "coupled ms"});
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    config.seed = seed;
    sram::MethodologyResult staged;
    sram::CoupledResult coupled;
    const double staged_ms = timed_ms([&] { staged = sram::run_methodology(config); });
    const double coupled_ms = timed_ms([&] { coupled = sram::run_coupled(config); });

    std::uint64_t staged_switches = 0;
    for (const auto& entry : staged.rtn) staged_switches += entry.stats.accepted;
    std::uint64_t coupled_switches = 0;
    for (const auto& trace : coupled.n_filled) coupled_switches += trace.num_steps();

    auto outcome = [](bool error, bool slow) {
      return std::string(error ? "ERROR" : slow ? "slow" : "ok");
    };
    table.add_row({static_cast<long long>(seed),
                   outcome(staged.rtn_report.any_error, staged.rtn_report.any_slow),
                   outcome(coupled.report.any_error, coupled.report.any_slow),
                   1e3 * rms_difference(staged.with_rtn, staged.q_node,
                                        coupled.transient, coupled.q_node,
                                        staged.pattern.t_end),
                   static_cast<long long>(staged_switches),
                   static_cast<long long>(coupled_switches), staged_ms,
                   coupled_ms});
  }
  table.print(std::cout);

  std::printf("\nExpected shape: the coupled run is systematically *more*\n"
              "pessimistic near the margin: when RTN delays the write, the\n"
              "trap chains keep seeing the delayed (still-biased) node\n"
              "voltages, so the opposing glitch persists instead of dying\n"
              "with the nominal trajectory — precisely the 'higher-order'\n"
              "bi-directional effect the paper's future-work #1 targets.\n"
              "The staged run under-predicts these failures at comparable\n"
              "cost on cell-sized circuits.\n");
  return 0;
}
