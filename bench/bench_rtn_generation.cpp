// RTN-generation hot-path benchmark: Algorithm 1 over the 6T write-pattern
// workload (65nm, pattern 101), run twice — once with the piecewise
// per-state majorant (the default) and once on the classic fixed-bound
// thinning path (`use_majorant = false`). Both paths sample the same law
// (asserted by the equivalence tests and cross-checked loosely here); the
// candidate-count ratio is the work the envelope saves. Emits one
// machine-readable JSON line (scripted against BENCH_rtn_generation.json).
//
// `--quick` shrinks the pass counts for use as a smoke test under
// `ctest -L perf`; `--passes N` overrides the per-batch pass count.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "core/rtn_generator.hpp"
#include "physics/mos_device.hpp"
#include "physics/srh_model.hpp"
#include "sram/cell.hpp"
#include "sram/methodology.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace samurai;

namespace {

sram::MethodologyConfig base_config() {
  sram::MethodologyConfig config;
  config.tech = physics::technology("65nm");
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0, 1});
  // Fixed per-transistor trap count: a deterministic, meaty workload
  // (6 x 16 traps) independent of the Poisson draw.
  config.profile.fixed_count = 16;
  return config;
}

struct ModeReport {
  double ms_per_pass = 0.0;  ///< best-of-batches mean wall per pass
  core::UniformisationStats stats;  ///< aggregate over every timed pass
  double candidates_per_sec = 0.0;  ///< aggregate candidates / total wall
};

/// One pass = generate for all six transistors' prebuilt workloads,
/// mirroring the methodology's phase-2 seeding so pass p is deterministic
/// and both modes consume identical per-trap streams. The propensity
/// tabulations (all surface-potential work) live in the workloads, built
/// once in setup: a pass times Algorithm 1 plus the render walk — the part
/// the majorant actually accelerates, and the part a Monte-Carlo campaign
/// re-runs per sample.
void run_pass(const std::vector<core::DeviceRtnWorkload>& workloads,
              double t_end, bool use_majorant, std::uint64_t pass) {
  core::RtnGeneratorOptions gen;
  gen.t0 = 0.0;
  gen.tf = t_end;
  gen.uniformisation.use_majorant = use_majorant;
  util::Rng rng(0xB5EFu + pass);
  for (std::size_t m = 0; m < workloads.size(); ++m) {
    util::Rng trap_rng = rng.split(m * 977 + 13);
    (void)workloads[m].generate(trap_rng, gen);
  }
}

/// One timed batch of `passes` *per mode*, interleaved pass by pass (one
/// majorant pass, one fixed pass, ...). Each pass is timed individually
/// and the per-mode sums compared, so CPU frequency ramps, thermal drift
/// and cache warmup hit both modes identically — timing the modes in
/// separate blocks hands a systematic few-percent penalty to whichever
/// block runs while the clock is still ramping. The ~20 ns clock reads
/// are noise against the ~10 ms passes.
void run_batch(const std::vector<core::DeviceRtnWorkload>& workloads,
               double t_end, int passes, std::uint64_t& pass,
               ModeReport& majorant, ModeReport& fixed,
               double& wall_majorant, double& wall_fixed) {
  double seconds_m = 0.0;
  double seconds_f = 0.0;
  for (int p = 0; p < passes; ++p) {
    const auto s0 = core::uniformisation_stats_snapshot();
    const auto a = std::chrono::steady_clock::now();
    run_pass(workloads, t_end, /*use_majorant=*/true, pass);
    const auto b = std::chrono::steady_clock::now();
    const auto s1 = core::uniformisation_stats_snapshot();
    run_pass(workloads, t_end, /*use_majorant=*/false, pass);
    const auto c = std::chrono::steady_clock::now();
    const auto s2 = core::uniformisation_stats_snapshot();
    seconds_m += std::chrono::duration<double>(b - a).count();
    seconds_f += std::chrono::duration<double>(c - b).count();
    majorant.stats.merge(s1.since(s0));
    fixed.stats.merge(s2.since(s1));
    ++pass;
  }
  majorant.ms_per_pass =
      std::min(majorant.ms_per_pass, seconds_m / passes * 1e3);
  fixed.ms_per_pass = std::min(fixed.ms_per_pass, seconds_f / passes * 1e3);
  wall_majorant += seconds_m;
  wall_fixed += seconds_f;
}

void print_mode_json(const char* key, const ModeReport& r,
                     std::size_t total_traps) {
  std::printf(
      "\"%s\": {\"ms_per_pass\": %.4f, \"candidates\": %llu, "
      "\"accepted\": %llu, \"segments\": %llu, \"rng_refills\": %llu, "
      "\"envelope_integral\": %.6e, \"fixed_bound_integral\": %.6e, "
      "\"envelope_efficiency\": %.3f, \"candidates_per_sec\": %.3e, "
      "\"candidates_per_trap_sec\": %.3e}",
      key, r.ms_per_pass,
      static_cast<unsigned long long>(r.stats.candidates),
      static_cast<unsigned long long>(r.stats.accepted),
      static_cast<unsigned long long>(r.stats.segments),
      static_cast<unsigned long long>(r.stats.rng_refills),
      r.stats.envelope_integral, r.stats.fixed_bound_integral,
      r.stats.envelope_efficiency(), r.candidates_per_sec,
      r.candidates_per_sec / static_cast<double>(total_traps));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  int passes = 0;
  try {
    passes = static_cast<int>(cli.get_count("passes", quick ? 5 : 40));
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "bench_rtn_generation: %s\n", err.what());
    return 2;
  }
  const int batches = quick ? 2 : 5;

  // Setup: one methodology run extracts the six bias/current waveforms and
  // trap populations the RTN generator consumes.
  const auto config = base_config();
  const auto setup = sram::run_methodology(config);
  const physics::SrhModel srh(config.tech);
  std::vector<core::DeviceRtnWorkload> workloads;
  std::size_t total_traps = 0;
  for (int m = 1; m <= 6; ++m) {
    const auto& entry = setup.rtn[static_cast<std::size_t>(m - 1)];
    workloads.emplace_back(
        srh,
        physics::MosDevice(config.tech, physics::MosType::kNmos,
                           sram::transistor_geometry(config.tech,
                                                     config.sizing, m)),
        entry.traps, entry.v_gs, entry.i_d);
    total_traps += entry.traps.size();
  }
  const double t_end = setup.pattern.t_end;

  std::printf("=== RTN generation hot path (6T write, 65nm, pattern 101) "
              "===\n");
  std::printf("%zu traps across 6 transistors, horizon %.3g s; %d passes x "
              "%d batches\n\n",
              total_traps, t_end, passes, batches);

  ModeReport majorant, fixed;
  majorant.ms_per_pass = fixed.ms_per_pass = 1e300;
  run_pass(workloads, t_end, /*use_majorant=*/true, 0);   // warmup
  run_pass(workloads, t_end, /*use_majorant=*/false, 0);  // warmup
  std::uint64_t pass = 1;
  double wall_m = 0.0;
  double wall_f = 0.0;
  for (int b = 0; b < batches; ++b) {
    run_batch(workloads, t_end, passes, pass, majorant, fixed, wall_m,
              wall_f);
  }
  majorant.candidates_per_sec =
      wall_m > 0.0 ? static_cast<double>(majorant.stats.candidates) / wall_m
                   : 0.0;
  fixed.candidates_per_sec =
      wall_f > 0.0 ? static_cast<double>(fixed.stats.candidates) / wall_f
                   : 0.0;

  const double reduction =
      static_cast<double>(fixed.stats.candidates) /
      static_cast<double>(std::max<std::uint64_t>(majorant.stats.candidates,
                                                  1));
  const double speedup = fixed.ms_per_pass / majorant.ms_per_pass;
  std::printf("majorant: %.3f ms/pass, %llu candidates (%llu accepted), "
              "envelope efficiency %.2fx\n",
              majorant.ms_per_pass,
              static_cast<unsigned long long>(majorant.stats.candidates),
              static_cast<unsigned long long>(majorant.stats.accepted),
              majorant.stats.envelope_efficiency());
  std::printf("fixed:    %.3f ms/pass, %llu candidates (%llu accepted)\n",
              fixed.ms_per_pass,
              static_cast<unsigned long long>(fixed.stats.candidates),
              static_cast<unsigned long long>(fixed.stats.accepted));
  std::printf("candidate reduction %.2fx, wall speedup %.2fx\n\n", reduction,
              speedup);

  std::printf("{\"bench\": \"rtn_generation\", \"quick\": %s, "
              "\"traps\": %zu, \"passes_per_batch\": %d, \"batches\": %d, "
              "\"candidate_reduction\": %.3f, \"speedup\": %.3f, ",
              quick ? "true" : "false", total_traps, passes, batches,
              reduction, speedup);
  print_mode_json("majorant", majorant, total_traps);
  std::printf(", ");
  print_mode_json("fixed", fixed, total_traps);
  std::printf("}\n");

  // Contract checks (these make the ctest registration meaningful).
  if (reduction < 3.0) {
    std::printf("\nFAIL: candidate reduction %.2fx below the 3x contract\n",
                reduction);
    return 1;
  }
  // A pass times only the sampler (propensities are prebuilt in the
  // workloads), so the candidates the envelope saves must show up as wall
  // clock: the contract is a 1.3x speedup over fixed-bound thinning.
  // Quick mode times too few passes for a tight line — gate it loosely so
  // scheduler noise cannot flake the smoke test, and say so.
  const double speedup_floor = quick ? 0.7 : 1.3;
  if (quick) {
    std::printf("note: speedup gate relaxed to %.1fx in quick mode "
                "(full gate: 1.3x)\n",
                speedup_floor);
  }
  if (speedup < speedup_floor) {
    std::printf("\nFAIL: majorant wall speedup %.2fx below the %.1fx "
                "contract\n",
                speedup, speedup_floor);
    return 1;
  }
  // Loose distributional cross-check: both modes realise the same switch
  // law, so with thousands of accepted transitions the totals must agree
  // to ~10% (the equivalence tests hold the tight line).
  const auto lo = std::min(majorant.stats.accepted, fixed.stats.accepted);
  const auto hi = std::max(majorant.stats.accepted, fixed.stats.accepted);
  if (lo > 2000 &&
      static_cast<double>(hi - lo) > 0.1 * static_cast<double>(hi)) {
    std::printf("\nFAIL: accepted-transition totals diverge (majorant %llu, "
                "fixed %llu)\n",
                static_cast<unsigned long long>(majorant.stats.accepted),
                static_cast<unsigned long long>(fixed.stats.accepted));
    return 1;
  }
  return 0;
}
