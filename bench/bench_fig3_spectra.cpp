// Reproduces paper Fig. 3: spectral-density plots for 25 randomly sampled
// devices in an old and a new CMOS technology, against the analytic 1/f
// fit.
//
// In the old node (many traps per device) the 1/f aggregate is a good fit;
// in the scaled node (~5-10 traps) individual Lorentzian corners dominate
// and the 1/f fit fails — the paper's case for computational, trap-level
// RTN analysis.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/rtn_generator.hpp"
#include "physics/mos_device.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "physics/trap_profile.hpp"
#include "signal/analytic.hpp"
#include "signal/resample.hpp"
#include "signal/spectral.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/grid.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

struct DeviceSpectrum {
  std::size_t traps = 0;
  std::size_t active = 0;
  signal::Spectrum spectrum;
  double one_over_f_error = 0.0;   ///< rms log10 error of the 1/f fit
  double free_slope = 0.0;         ///< unconstrained power-law slope
};

DeviceSpectrum run_device(const physics::Technology& tech,
                          const physics::SrhModel& srh,
                          const physics::MosDevice& device, double v_bias,
                          double horizon, util::Rng rng) {
  DeviceSpectrum out;
  physics::TrapProfileOptions profile;
  profile.equilibrium_bias = v_bias;
  const auto traps = physics::sample_trap_profile(tech, device.geometry(),
                                                  rng, profile);
  out.traps = traps.size();
  out.active = physics::active_trap_count(srh, traps, v_bias);

  core::RtnGeneratorOptions options;
  options.tf = horizon;
  options.envelope_samples = 8;
  util::Rng trap_rng = rng.split(0xF00D);
  const auto result = core::generate_device_rtn(
      srh, device, traps, core::Pwl::constant(v_bias),
      core::Pwl::constant(device.evaluate(v_bias, 0.5 * tech.v_dd).i_d),
      trap_rng, options);

  const std::size_t n = 1 << 16;
  const auto record = signal::resample(result.n_filled, 0.0, horizon, n);
  const double amp = core::rtn_amplitude(
      device, v_bias, device.evaluate(v_bias, 0.5 * tech.v_dd).i_d);
  std::vector<double> samples = record.samples;
  for (auto& s : samples) s *= amp;
  out.spectrum = signal::welch_psd(samples, record.dt, 4096);

  // Fit over the resolved band, skipping the lowest (windowing-biased) and
  // highest (aliasing) half-decades.
  std::vector<double> freqs, density;
  const double f_lo = 4.0 / horizon * 10.0;
  const double f_hi = 0.25 / record.dt;
  for (std::size_t k = 0; k < out.spectrum.frequencies.size(); ++k) {
    const double f = out.spectrum.frequencies[k];
    if (f < f_lo || f > f_hi || out.spectrum.density[k] <= 0.0) continue;
    freqs.push_back(f);
    density.push_back(out.spectrum.density[k]);
  }
  if (freqs.size() >= 8) {
    out.one_over_f_error = signal::fit_power_law(freqs, density, true).rms_log_error;
    out.free_slope = signal::fit_power_law(freqs, density, false).slope;
  }
  return out;
}

void run_node(const std::string& node, double horizon, std::size_t devices,
              util::Rng& rng, bool plots) {
  const auto tech = physics::technology(node);
  const physics::SrhModel srh(tech);
  const physics::MosDevice device(tech, physics::MosType::kNmos,
                                  {tech.w_min, tech.l_min});
  const double v_bias = 0.8 * tech.v_dd;

  util::Table table({"device", "traps", "active", "1/f fit rms err (dec)",
                     "free slope"});
  double err_sum = 0.0, slope_sum = 0.0;
  std::vector<util::Series> series;
  for (std::size_t d = 0; d < devices; ++d) {
    const auto result =
        run_device(tech, srh, device, v_bias, horizon, rng.split(d + 1));
    table.add_row({static_cast<long long>(d),
                   static_cast<long long>(result.traps),
                   static_cast<long long>(result.active),
                   result.one_over_f_error, result.free_slope});
    err_sum += result.one_over_f_error;
    slope_sum += result.free_slope;
    if (plots && d < 5) {
      util::Series s;
      s.name = "dev" + std::to_string(d);
      for (std::size_t k = 0; k < result.spectrum.frequencies.size(); k += 6) {
        s.x.push_back(result.spectrum.frequencies[k]);
        s.y.push_back(result.spectrum.density[k]);
      }
      series.push_back(std::move(s));
    }
  }
  std::printf("--- %s (%zu devices at V_gs = %.2f V) ---\n", node.c_str(),
              devices, v_bias);
  table.print(std::cout);
  std::printf("mean 1/f fit rms error: %.3f decades, mean free slope: %.2f\n\n",
              err_sum / static_cast<double>(devices),
              slope_sum / static_cast<double>(devices));
  if (plots) {
    util::PlotOptions options;
    options.title = "Fig. 3 (" + node + "): PSD of first 5 sampled devices";
    options.x_label = "f (Hz)";
    options.y_label = "A^2/Hz";
    options.log_x = true;
    options.log_y = true;
    options.height = 14;
    util::plot(std::cout, series, options);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto devices = static_cast<std::size_t>(cli.get_int("devices", 25));
  util::Rng rng(cli.get_seed("seed", 33));
  const bool plots = !cli.has("no-plots");

  std::printf("=== Paper Fig. 3: 1/f fit quality, old vs scaled node ===\n\n");
  // Old node: many traps -> 1/f aggregate. Shorter horizon keeps the
  // (expensive, many-trap) old-node sweep tractable; the band still spans
  // ~4 decades.
  util::Rng rng_old = rng.split(1);
  run_node(cli.get_string("old-node", "130nm"),
           cli.get_double("horizon-old", 4e-5), devices, rng_old, plots);
  util::Rng rng_new = rng.split(2);
  run_node(cli.get_string("new-node", "22nm"),
           cli.get_double("horizon-new", 2e-4), devices, rng_new, plots);

  std::printf("Expected shape (paper): the old node's spectra hug a 1/f line\n"
              "(small, uniform fit errors); the scaled node's spectra are\n"
              "individual Lorentzian staircases with large, scattered 1/f\n"
              "fit errors and wildly varying slopes.\n");
  return 0;
}
