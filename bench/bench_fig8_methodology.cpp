// Reproduces paper Fig. 8: the full SAMURAI+SPICE methodology on the bit
// pattern [1,1,0,1,0,1,0,0,1].
//
//  (a) nominal write waveform Q(t)
//  (b) trap occupancy of M5 (gate = Q): active while Q is high
//  (c) trap occupancy of M6 (gate = Q̄): the mirror image
//  (d) the I_RTN(t) trace of pass transistor M2
//  (e) the RTN-injected run with amplitude scaling (paper uses x30), plus
//      a scale sweep showing where write errors appear.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "sram/methodology.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

/// Correlation diagnostic for plots (b)/(c): mean occupancy-switching
/// activity per slot, split by whether Q is high or low in that slot.
struct ActivitySplit {
  double per_ns_q_high = 0.0;
  double per_ns_q_low = 0.0;
};

ActivitySplit split_activity(const core::StepTrace& n_filled,
                             const sram::PatternWaveforms& pattern,
                             const std::vector<int>& bits, bool active_when_high) {
  double high_time = 0.0, low_time = 0.0;
  std::size_t high_events = 0, low_events = 0;
  for (std::size_t k = 0; k < bits.size(); ++k) {
    const double t0 = pattern.slot_start(k);
    const double t1 = t0 + pattern.timing.period;
    const bool q_high = bits[k] == 1;
    (q_high ? high_time : low_time) += pattern.timing.period;
    for (double t : n_filled.times()) {
      if (t < t0 || t >= t1) continue;
      (q_high ? high_events : low_events)++;
    }
  }
  ActivitySplit split;
  split.per_ns_q_high = high_time > 0.0
                            ? static_cast<double>(high_events) / (high_time * 1e9)
                            : 0.0;
  split.per_ns_q_low = low_time > 0.0
                           ? static_cast<double>(low_events) / (low_time * 1e9)
                           : 0.0;
  if (!active_when_high) std::swap(split.per_ns_q_high, split.per_ns_q_low);
  return split;
}

void plot_step(const char* title, const core::StepTrace& trace, double t_end,
               const char* ylabel) {
  std::vector<double> times, values;
  trace.to_paper_arrays(0.0, t_end, times, values);
  util::Series series{"", times, values};
  series.name = ylabel;
  util::PlotOptions options;
  options.title = title;
  options.x_label = "t (s)";
  options.y_label = ylabel;
  options.height = 10;
  util::plot(std::cout, {series}, options);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::vector<int> bits = {1, 1, 0, 1, 0, 1, 0, 0, 1};  // paper pattern
  sram::MethodologyConfig config;
  config.tech = physics::technology(cli.get_string("node", "90nm"));
  // The paper studies RTN at the *minimum operating supply* (its Fig. 2
  // motivation); run the cell under-driven and with bitline-scale loading
  // on the storage nodes so the nominal write has realistic (small)
  // timing margin. Nominal operation is still error-free.
  config.tech.v_dd = cli.get_double("vdd", 0.9);
  config.sizing.extra_node_cap = cli.get_double("node-cap", 40e-15);
  config.timing.period = cli.get_double("period", 1e-9);
  config.ops = sram::ops_from_bits(bits);
  config.seed = cli.get_seed("seed", 2024);
  config.rtn_scale = cli.get_double("scale", 30.0);
  const bool plots = !cli.has("no-plots");

  std::printf("=== Paper Fig. 8: full methodology on pattern "
              "[1,1,0,1,0,1,0,0,1] (%s, seed %llu) ===\n\n",
              config.tech.name.c_str(),
              static_cast<unsigned long long>(config.seed));

  const auto result = sram::run_methodology(config);

  // ---- (a) nominal run. ----------------------------------------------------
  std::printf("(a) nominal SPICE run: %s\n",
              result.nominal_report.any_error ? "WRITE ERROR (unexpected!)"
                                              : "pattern written correctly");
  if (plots) {
    util::Series q{"Q", result.nominal.times(),
                   result.nominal.voltage_samples(result.q_node)};
    util::Series qb{"Q_bar", result.nominal.times(),
                    result.nominal.voltage_samples(result.qb_node)};
    util::PlotOptions options;
    options.title = "Fig. 8(a): nominal Q (solid) and Q_bar (dotted)";
    options.x_label = "t (s)";
    options.y_label = "V";
    options.height = 10;
    util::plot(std::cout, {q, qb}, options);
    std::printf("\n");
  }

  // ---- (b)/(c) trap occupancies of M5 and M6. ------------------------------
  const auto& m5 = result.rtn[4];
  const auto& m6 = result.rtn[5];
  const auto split5 = split_activity(m5.n_filled, result.pattern, bits, true);
  const auto split6 = split_activity(m6.n_filled, result.pattern, bits, false);
  util::Table activity({"device", "gate", "traps", "switch rate Q-high (1/ns)",
                        "switch rate Q-low (1/ns)"});
  activity.add_row({std::string("M5"), std::string("Q"),
                    static_cast<long long>(m5.traps.size()),
                    split5.per_ns_q_high, split5.per_ns_q_low});
  activity.add_row({std::string("M6"), std::string("Q_bar"),
                    static_cast<long long>(m6.traps.size()),
                    split6.per_ns_q_low, split6.per_ns_q_high});
  std::printf("(b),(c) trap activity of the pull-downs (paper: M5 active when"
              " Q high,\n        M6 active when Q low — anti-correlated):\n");
  activity.print(std::cout);
  std::printf("\n");
  if (plots) {
    plot_step("Fig. 8(b): N_filled(t) of M5 (gate = Q)", m5.n_filled,
              result.pattern.t_end, "filled traps");
    plot_step("Fig. 8(c): N_filled(t) of M6 (gate = Q_bar)", m6.n_filled,
              result.pattern.t_end, "filled traps");
  }

  // ---- (d) I_RTN of M2. -----------------------------------------------------
  const auto& m2 = result.rtn[1];
  double peak = 0.0;
  for (double v : m2.i_rtn.values()) peak = std::max(peak, std::abs(v));
  std::printf("(d) I_RTN trace of pass transistor M2: %zu traps, %llu "
              "transitions, peak |I_RTN| = %.2f uA (x%.0f scaling)\n\n",
              m2.traps.size(),
              static_cast<unsigned long long>(m2.stats.accepted), peak * 1e6,
              config.rtn_scale);
  if (plots) {
    util::Series s{"I_RTN(M2) uA", m2.i_rtn.times(), {}};
    s.y.reserve(m2.i_rtn.size());
    for (double v : m2.i_rtn.values()) s.y.push_back(v * 1e6);
    util::PlotOptions options;
    options.title = "Fig. 8(d): I_RTN(t) of M2";
    options.x_label = "t (s)";
    options.y_label = "uA";
    options.height = 10;
    util::plot(std::cout, {s}, options);
    std::printf("\n");
  }

  // ---- (e) RTN-injected run + scale sweep. ----------------------------------
  // The cell is deliberately operated at its timing margin (the nominal
  // write itself regenerates shortly after WL falls), so slow-down is
  // reported *relative to the nominal run*: the extra settle time RTN adds.
  auto max_extra_settle = [](const sram::PatternReport& rtn_report,
                             const sram::PatternReport& nominal_report) {
    double extra = 0.0;
    for (std::size_t k = 0; k < rtn_report.ops.size(); ++k) {
      if (!rtn_report.ops[k].settle_after_wl ||
          !nominal_report.ops[k].settle_after_wl) {
        continue;
      }
      extra = std::max(extra, *rtn_report.ops[k].settle_after_wl -
                                  *nominal_report.ops[k].settle_after_wl);
    }
    return extra;
  };
  const double extra_settle =
      max_extra_settle(result.rtn_report, result.nominal_report);
  std::printf("(e) RTN-injected run at x%.0f: %s (max extra settle vs "
              "nominal: %.0f ps)\n\n",
              config.rtn_scale,
              result.rtn_report.any_error ? "WRITE ERROR"
              : extra_settle > 20e-12     ? "RTN-slowed write"
                                          : "pattern still written correctly",
              extra_settle * 1e12);
  if (plots) {
    util::Series q{"Q with RTN", result.with_rtn.times(),
                   result.with_rtn.voltage_samples(result.q_node)};
    util::PlotOptions options;
    options.title = "Fig. 8(e): Q(t) with scaled I_RTN injected";
    options.x_label = "t (s)";
    options.y_label = "V";
    options.height = 10;
    util::plot(std::cout, {q}, options);
    std::printf("\n");
  }

  std::printf("Scale sweep (write errors are rare events; the paper scales\n"
              "I_RTN x30 on its illustration seed to surface one — here we\n"
              "sweep scale x seeds and report the first failing seed):\n\n");
  util::Table sweep({"scale", "seeds tried", "errors", "RTN-slowed",
                     "mean extra settle (ps)", "first bad seed"});
  for (double scale : {1.0, 10.0, 30.0, 60.0, 120.0, 200.0}) {
    std::size_t errors = 0, slow = 0;
    double extra_sum = 0.0;
    long long first_bad = -1;
    const std::size_t seeds = static_cast<std::size_t>(cli.get_int("sweep-seeds", 8));
    for (std::size_t s = 0; s < seeds; ++s) {
      sram::MethodologyConfig sweep_config = config;
      sweep_config.rtn_scale = scale;
      sweep_config.seed = config.seed + 1000 * (s + 1);
      const auto sweep_result = sram::run_methodology(sweep_config);
      const double extra = max_extra_settle(sweep_result.rtn_report,
                                            sweep_result.nominal_report);
      extra_sum += extra;
      if (sweep_result.rtn_report.any_error) {
        ++errors;
        if (first_bad < 0) first_bad = static_cast<long long>(sweep_config.seed);
      } else if (extra > 20e-12) {
        ++slow;
      }
    }
    sweep.add_row({scale, static_cast<long long>(seeds),
                   static_cast<long long>(errors), static_cast<long long>(slow),
                   extra_sum / static_cast<double>(seeds) * 1e12, first_bad});
  }
  sweep.print(std::cout);
  std::printf("\nExpected shape (paper): no failures at x1; failures appear\n"
              "as the artificial scaling grows, driven by glitches that\n"
              "straddle WL de-assertion (the Fig. 5 mechanism).\n");
  return 0;
}
