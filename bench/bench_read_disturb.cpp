// Read-failure analysis (paper footnote 2: "RTN-induced SRAM read
// failures have also been reported [16]. SAMURAI is capable of predicting
// these too").
//
// Read upset is regenerative and razor-sharp: during a read the low node
// rises to a pass-gate/pull-down divider level, and the cell flips iff
// that level crosses the opposite inverter's trip point. RTN therefore
// does not show up as occasional flips of a healthy cell but as a *shift
// of the failure boundary*: how much V_T mismatch on the read pull-down
// (M6) the cell tolerates before a read upsets it. We bisect that
// critical mismatch without RTN and with SAMURAI traces injected (worst
// case over seeds); the difference is the read-stability margin RTN
// consumes.
#include <cstdio>
#include <iostream>

#include "sram/methodology.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

struct Probe {
  sram::MethodologyConfig base;
  std::size_t seeds;
};

enum class Mode { kNominal, kRtnAll, kRtnPullDownOnly };

/// True if the cell survives the read pattern at the given M6 shift.
bool survives(const Probe& probe, double shift, Mode mode) {
  sram::MethodologyConfig config = probe.base;
  config.vth_shifts["M6"] = shift;
  if (mode == Mode::kRtnPullDownOnly) {
    config.rtn_devices = {"M5", "M6"};  // isolate the destabilising side
  }
  if (mode == Mode::kNominal) {
    const auto result = sram::run_methodology(config);
    return !result.nominal_report.any_error;
  }
  for (std::size_t s = 0; s < probe.seeds; ++s) {
    config.seed = 100 + s;
    const auto result = sram::run_methodology(config);
    if (result.rtn_report.any_error) return false;
  }
  return true;
}

/// Bisect the largest surviving shift in [lo, hi].
double critical_shift(const Probe& probe, Mode mode) {
  double lo = 0.0, hi = 0.45;
  if (!survives(probe, lo, mode)) return 0.0;
  for (int iter = 0; iter < 12; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (survives(probe, mid, mode)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  Probe probe;
  probe.base.tech = physics::technology(cli.get_string("node", "90nm"));
  probe.base.sizing.pull_down = 1.0;
  probe.base.sizing.pass_gate = cli.get_double("pg", 2.0);
  probe.base.sizing.extra_node_cap = cli.get_double("node-cap", 10e-15);
  probe.base.timing.period = cli.get_double("period", 1e-9);
  probe.base.ops = {sram::Op::kWrite0, sram::Op::kRead, sram::Op::kRead,
                    sram::Op::kRead};
  probe.base.rtn_scale = cli.get_double("scale", 30.0);
  probe.seeds = static_cast<std::size_t>(cli.get_int("seeds", 5));

  std::printf("=== Read-disturb margin analysis (paper footnote 2) ===\n");
  std::printf("%s, read-prone sizing (PD 1.0 / PG %.1f), W0 + 3 reads, "
              "RTN x%.0f worst of %zu seeds\n\n",
              probe.base.tech.name.c_str(), probe.base.sizing.pass_gate,
              probe.base.rtn_scale, probe.seeds);
  std::printf("Metric: the largest V_T mismatch on the read pull-down M6\n"
              "the cell tolerates before a read flips it.\n\n");

  const double v_dd_full = probe.base.tech.v_dd;
  util::Table table({"V_dd (V)", "critical shift nominal (mV)",
                     "RTN all devices (mV)", "RTN pull-downs only (mV)",
                     "margin lost, pull-down RTN (mV)"});
  for (double frac : {1.0, 0.85, 0.7, 0.6}) {
    probe.base.tech.v_dd = frac * v_dd_full;
    const double nominal = critical_shift(probe, Mode::kNominal);
    const double rtn_all = critical_shift(probe, Mode::kRtnAll);
    const double rtn_pd = critical_shift(probe, Mode::kRtnPullDownOnly);
    table.add_row({probe.base.tech.v_dd, nominal * 1e3, rtn_all * 1e3,
                   rtn_pd * 1e3, (nominal - rtn_pd) * 1e3});
  }
  table.print(std::cout);

  std::printf("\nExpected shape: the tolerable mismatch shrinks with the\n"
              "supply. RTN moves the boundary in *both* directions — traps\n"
              "in the pass gate throttle the disturbing read current\n"
              "(stabilising), traps in the pull-down throttle the current\n"
              "that keeps the low node low (destabilising). With injection\n"
              "restricted to the pull-downs, RTN consumes read margin —\n"
              "the failure mechanism of ref. [16]; with all devices\n"
              "injected the two effects compete and the pass-gate side can\n"
              "win (its few-carrier channel has the larger per-trap ΔI).\n");
  return 0;
}
