// Yield-estimation bench: naive Monte-Carlo vs mean-shift importance
// sampling for the rare write failures the paper highlights ("extremely
// rare events"). At the operating point used here the failure probability
// sits far in the variation distribution's tail: naive sampling at
// affordable counts sees nothing, while the biased estimator resolves the
// probability with tight relative error from the same budget.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "sram/importance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::ImportanceConfig config;
  config.cell.tech = physics::technology(cli.get_string("node", "90nm"));
  config.cell.tech.v_dd = cli.get_double("vdd", 0.97);
  config.cell.sizing.extra_node_cap = 40e-15;
  config.cell.timing.period = 1e-9;
  config.cell.ops = sram::ops_from_bits({1, 0});
  config.cell.rtn_scale = cli.get_double("scale", 30.0);
  config.sigma_vt = cli.get_double("sigma-vt", 0.03);
  config.samples = static_cast<std::size_t>(cli.get_int("samples", 120));
  config.seed = cli.get_seed("seed", 31);
  config.with_rtn = !cli.has("nominal-only");

  std::printf("=== Rare write-failure estimation: naive MC vs importance "
              "sampling ===\n");
  std::printf("%s at V_dd = %.2f V, sigma_VT = %.0f mV, RTN x%.0f, %zu "
              "samples per estimator\n\n",
              config.cell.tech.name.c_str(), config.cell.tech.v_dd,
              config.sigma_vt * 1e3, config.cell.rtn_scale, config.samples);

  util::Table table({"estimator", "mean shift (mV)", "failures seen",
                     "P(fail) estimate", "std error", "ESS"});
  // Naive.
  {
    const auto result = estimate_failure_probability(config);
    table.add_row({std::string("naive Monte-Carlo"), 0.0,
                   static_cast<long long>(result.failures_observed),
                   result.failure_probability, result.standard_error,
                   result.effective_sample_size});
  }
  // Mean-shift ladder toward the write-critical devices (pass gates).
  for (double shift : {0.06, 0.09, 0.12}) {
    sram::ImportanceConfig biased = config;
    biased.shift = {{"M1", shift}, {"M2", shift}};
    const auto result = estimate_failure_probability(biased);
    table.add_row({std::string("importance (mean shift)"), shift * 1e3,
                   static_cast<long long>(result.failures_observed),
                   result.failure_probability, result.standard_error,
                   result.effective_sample_size});
  }
  table.print(std::cout);

  std::printf("\nExpected shape: the naive estimator sees zero failures\n"
              "(its estimate collapses to 0 with no error information); the\n"
              "biased estimators see tens of failures and resolve a tail\n"
              "probability orders of magnitude below 1/samples. The price\n"
              "is effective sample size — the estimates scatter within\n"
              "their (wide) error bars at this budget, tightening as\n"
              "samples grow and as the shift lands near the failure\n"
              "boundary (the middle row).\n");
  return 0;
}
