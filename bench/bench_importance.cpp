// Yield-estimation bench: naive Monte-Carlo vs mean-shift importance
// sampling for the rare write failures the paper highlights ("extremely
// rare events"). At the operating point used here the failure probability
// sits far in the variation distribution's tail: naive sampling at
// affordable counts sees nothing, while the biased estimator resolves the
// probability with tight relative error from the same budget.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "sram/importance.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

double time_estimate(const sram::ImportanceConfig& config,
                     sram::ImportanceResult& result) {
  const auto start = std::chrono::steady_clock::now();
  result = estimate_failure_probability(config);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::ImportanceConfig config;
  config.cell.tech = physics::technology(cli.get_string("node", "90nm"));
  config.cell.tech.v_dd = cli.get_double("vdd", 0.97);
  config.cell.sizing.extra_node_cap = 40e-15;
  config.cell.timing.period = 1e-9;
  config.cell.ops = sram::ops_from_bits({1, 0});
  config.cell.rtn_scale = cli.get_double("scale", 30.0);
  config.sigma_vt = cli.get_double("sigma-vt", 0.03);
  config.samples = static_cast<std::size_t>(cli.get_int("samples", 120));
  config.seed = cli.get_seed("seed", 31);
  config.with_rtn = !cli.has("nominal-only");
  config.threads = static_cast<std::size_t>(cli.get_int("threads", 8));

  std::printf("=== Rare write-failure estimation: naive MC vs importance "
              "sampling ===\n");
  std::printf("%s at V_dd = %.2f V, sigma_VT = %.0f mV, RTN x%.0f, %zu "
              "samples per estimator\n\n",
              config.cell.tech.name.c_str(), config.cell.tech.v_dd,
              config.sigma_vt * 1e3, config.cell.rtn_scale, config.samples);

  util::Table table({"estimator", "mean shift (mV)", "failures seen",
                     "P(fail) estimate", "std error", "ESS"});
  // Naive.
  {
    const auto result = estimate_failure_probability(config);
    table.add_row({std::string("naive Monte-Carlo"), 0.0,
                   static_cast<long long>(result.failures_observed),
                   result.failure_probability, result.standard_error,
                   result.effective_sample_size});
  }
  // Mean-shift ladder toward the write-critical devices (pass gates).
  for (double shift : {0.06, 0.09, 0.12}) {
    sram::ImportanceConfig biased = config;
    biased.shift = {{"M1", shift}, {"M2", shift}};
    const auto result = estimate_failure_probability(biased);
    table.add_row({std::string("importance (mean shift)"), shift * 1e3,
                   static_cast<long long>(result.failures_observed),
                   result.failure_probability, result.standard_error,
                   result.effective_sample_size});
  }
  table.print(std::cout);

  // --- Parallel scaling: serial vs executor-backed estimation. -------------
  // The estimator maps samples on the shared work-stealing executor and
  // reduces in index order, so the parallel run must be bit-identical;
  // the JSON line lets tooling track the serial-vs-parallel throughput.
  {
    sram::ImportanceConfig probe = config;
    probe.samples = static_cast<std::size_t>(cli.get_int("scaling-samples", 64));
    if (probe.samples == 0) probe.samples = 1;  // estimator rejects 0
    sram::ImportanceResult serial, parallel;
    probe.threads = 1;
    const double serial_s = time_estimate(probe, serial);
    probe.threads = config.threads;
    const double parallel_s = time_estimate(probe, parallel);
    const bool identical =
        serial.failure_probability == parallel.failure_probability &&
        serial.standard_error == parallel.standard_error &&
        serial.effective_sample_size == parallel.effective_sample_size &&
        serial.failures_observed == parallel.failures_observed;
    std::printf("\n--- parallel scaling (%zu samples) ---\n", probe.samples);
    std::printf(
        "{\"bench\": \"importance_scaling\", \"samples\": %zu, "
        "\"threads\": %zu, \"serial_seconds\": %.6f, "
        "\"parallel_seconds\": %.6f, \"serial_samples_per_s\": %.3f, "
        "\"parallel_samples_per_s\": %.3f, \"speedup\": %.3f, "
        "\"bit_identical\": %s}\n",
        probe.samples, config.threads, serial_s, parallel_s,
        probe.samples / serial_s, probe.samples / parallel_s,
        serial_s / parallel_s, identical ? "true" : "false");
  }

  // --- Campaign runtime: sequential early stopping. -----------------------
  // The same estimator driven as a sharded campaign: shards fold through
  // the streaming weighted-failure accumulator and the run ends as soon as
  // the relative CI half-width meets the target — the budget the paper's
  // rare-event sweeps would otherwise burn after the answer has settled.
  {
    campaign::Manifest manifest;
    manifest.kind = campaign::CampaignKind::kImportance;
    manifest.name = "bench_importance";
    manifest.node = config.cell.tech.name;
    manifest.v_dd = config.cell.tech.v_dd;
    manifest.bits = "10";
    manifest.rtn_scale = config.cell.rtn_scale;
    // Wider variation than the rare-event sweep above: the CI must be able
    // to tighten within the demo budget for the stopping rule to fire.
    manifest.sigma_vt = cli.get_double("campaign-sigma", 0.2);
    manifest.shift[0] = manifest.shift[1] =
        cli.get_double("campaign-shift", 0.09);
    manifest.seed = config.seed;
    manifest.with_rtn = config.with_rtn;
    manifest.threads = config.threads;
    manifest.budget =
        static_cast<std::uint64_t>(cli.get_int("campaign-budget", 120));
    manifest.shard_size =
        static_cast<std::uint64_t>(cli.get_int("campaign-shard", 12));
    manifest.min_samples = manifest.shard_size * 2;

    campaign::Manifest full = manifest;  // exhaust the budget
    full.target_rel_half_width = 0.0;
    const auto full_run = campaign::run_campaign(full);

    manifest.target_rel_half_width = cli.get_double("target-rhw", 0.5);
    const auto early = campaign::run_campaign(manifest);

    const bool agrees = full_run.estimate >= early.ci.lo &&
                        full_run.estimate <= early.ci.hi;
    std::printf("\n--- campaign early stopping (target rel CI half-width "
                "%.2f) ---\n", manifest.target_rel_half_width);
    std::printf(
        "{\"bench\": \"importance_campaign\", \"budget\": %llu, "
        "\"budget_used\": %llu, \"budget_saved\": %llu, "
        "\"stopped_early\": %s, \"estimate\": %.6g, \"ci_lo\": %.6g, "
        "\"ci_hi\": %.6g, \"full_budget_estimate\": %.6g, "
        "\"agrees_within_ci\": %s}\n",
        static_cast<unsigned long long>(manifest.budget),
        static_cast<unsigned long long>(early.samples_done),
        static_cast<unsigned long long>(early.budget_saved),
        early.stopped_early ? "true" : "false", early.estimate, early.ci.lo,
        early.ci.hi, full_run.estimate, agrees ? "true" : "false");
  }

  std::printf("\nExpected shape: the naive estimator sees zero failures\n"
              "(its estimate collapses to 0 with no error information); the\n"
              "biased estimators see tens of failures and resolve a tail\n"
              "probability orders of magnitude below 1/samples. The price\n"
              "is effective sample size — the estimates scatter within\n"
              "their (wide) error bars at this budget, tightening as\n"
              "samples grow and as the shift lands near the failure\n"
              "boundary (the middle row).\n");
  return 0;
}
