// Column-level read bench: RTN vs the sense margin. A transistor-level
// SRAM column (shared floating bitlines, precharge, write drivers) runs a
// read-heavy pattern; SAMURAI RTN injected into every cell transistor
// slows the addressed cell's discharge path and eats into the
// differential available at sense time — the array-level face of the
// read-failure mechanism (paper ref. [16]) and the natural extension of
// the paper's single-cell methodology to "entire SRAM arrays"
// (future-work #3).
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "sram/column.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::ColumnConfig config;
  config.tech = physics::technology(cli.get_string("node", "90nm"));
  config.tech.v_dd = cli.get_double("vdd", 1.0);
  config.num_cells = static_cast<std::size_t>(cli.get_int("cells", 4));
  config.bitline_cap = cli.get_double("cbl", 120e-15);
  config.initial_bits = {1, 0, 1, 0};
  config.initial_bits.resize(config.num_cells, 0);
  // A read-heavy pattern touching every cell twice.
  for (std::size_t i = 0; i < config.num_cells; ++i) {
    config.ops.push_back(sram::ColumnOp::read(i));
  }
  config.ops.push_back(sram::ColumnOp::write(0, 0));
  config.ops.push_back(sram::ColumnOp::read(0));
  for (std::size_t i = 1; i < config.num_cells; ++i) {
    config.ops.push_back(sram::ColumnOp::read(i));
  }

  std::printf("=== Column read bench: sense margin under RTN ===\n");
  std::printf("%s column, %zu cells, C_bl = %.0f fF, V_dd = %.2f V, %zu ops\n\n",
              config.tech.name.c_str(), config.num_cells,
              config.bitline_cap * 1e15, config.tech.v_dd, config.ops.size());

  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", 4));
  util::Table table({"RTN scale", "sense errors", "disturbs",
                     "min margin (mV)", "mean margin (mV)",
                     "worst margin loss vs nominal (mV)"});
  std::vector<double> nominal_margins;
  for (double scale : {0.0, 30.0, 120.0, 300.0, 600.0}) {
    std::size_t sense_errors = 0, disturbs = 0;
    double min_margin = config.tech.v_dd, margin_sum = 0.0, worst_loss = 0.0;
    std::size_t margin_count = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto result = run_column_rtn(config, 10 + s, scale);
      const auto& reads = result.rtn_report.reads;
      for (std::size_t i = 0; i < reads.size(); ++i) {
        if (reads[i].sensed != reads[i].expected) ++sense_errors;
        if (reads[i].disturbed) ++disturbs;
        min_margin = std::min(min_margin, reads[i].sense_margin);
        margin_sum += reads[i].sense_margin;
        ++margin_count;
        if (scale == 0.0) {
          if (s == 0) nominal_margins.push_back(reads[i].sense_margin);
        } else if (i < nominal_margins.size()) {
          worst_loss = std::max(worst_loss,
                                nominal_margins[i] - reads[i].sense_margin);
        }
      }
      if (scale == 0.0) break;  // nominal is seed-independent
    }
    table.add_row({scale, static_cast<long long>(sense_errors),
                   static_cast<long long>(disturbs), min_margin * 1e3,
                   margin_sum / static_cast<double>(margin_count) * 1e3,
                   worst_loss * 1e3});
  }
  table.print(std::cout);

  std::printf("\nExpected shape: margins erode monotonically with the RTN\n"
              "scale (trapped charge throttles the discharge path while the\n"
              "bitline race is on); sense errors appear once the erosion\n"
              "reaches the slot with the least nominal margin.\n");
  return 0;
}
