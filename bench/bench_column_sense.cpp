// Column- and array-level read bench: RTN vs the sense margin. A
// transistor-level SRAM column (shared floating bitlines, precharge,
// write drivers) runs a read-heavy pattern; SAMURAI RTN injected into
// every cell transistor slows the addressed cell's discharge path and
// eats into the differential available at sense time — the array-level
// face of the read-failure mechanism (paper ref. [16]) and the natural
// extension of the paper's single-cell methodology to "entire SRAM
// arrays" (future-work #3).
//
// The second section runs the full R×C array (activity-partitioned, RTN
// in every cell's M5) and reports the worst-case sense margin per
// column: because an array read senses all columns at once, one
// transient yields the whole per-column margin profile. Emits one
// machine-readable JSON line.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "sram/array2d.hpp"
#include "sram/column.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_column_sense [--node N] [--vdd V] [--cells N] "
               "[--cbl F] [--seeds N] [--rows R] [--cols C] "
               "[--activity off|elide|schur] [--rtn-scale S]\n"
               "  --rows/--cols size the array section (positive); "
               "--activity picks its partition mode\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::ColumnConfig config;
  std::size_t seeds = 0;
  std::size_t rows = 0, cols = 0;
  spice::ActivityMode activity = spice::ActivityMode::kSchur;
  double rtn_scale = 0.0;
  try {
    config.tech = physics::technology(cli.get_string("node", "90nm"));
    config.tech.v_dd = cli.get_double("vdd", 1.0);
    config.num_cells = static_cast<std::size_t>(cli.get_count("cells", 4));
    config.bitline_cap = cli.get_positive_double("cbl", 120e-15);
    seeds = static_cast<std::size_t>(cli.get_count("seeds", 4));
    rows = static_cast<std::size_t>(cli.get_count("rows", 8));
    cols = static_cast<std::size_t>(cli.get_count("cols", 8));
    activity = spice::activity_mode_from_string(
        cli.get_string("activity", "schur"));
    rtn_scale = cli.get_double("rtn-scale", 300.0);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "bench_column_sense: %s\n", err.what());
    usage();
    return 2;
  }
  if (activity != spice::ActivityMode::kSchur && rows * cols > 512) {
    std::fprintf(stderr,
                 "bench_column_sense: --activity %s refuses arrays over 512 "
                 "cells (without the Schur fold the symbolic analysis runs "
                 "the O(n^2) classic discovery; use schur)\n",
                 spice::activity_mode_to_string(activity).c_str());
    usage();
    return 2;
  }
  config.initial_bits = {1, 0, 1, 0};
  config.initial_bits.resize(config.num_cells, 0);
  // A read-heavy pattern touching every cell twice.
  for (std::size_t i = 0; i < config.num_cells; ++i) {
    config.ops.push_back(sram::ColumnOp::read(i));
  }
  config.ops.push_back(sram::ColumnOp::write(0, 0));
  config.ops.push_back(sram::ColumnOp::read(0));
  for (std::size_t i = 1; i < config.num_cells; ++i) {
    config.ops.push_back(sram::ColumnOp::read(i));
  }

  std::printf("=== Column read bench: sense margin under RTN ===\n");
  std::printf("%s column, %zu cells, C_bl = %.0f fF, V_dd = %.2f V, %zu ops\n\n",
              config.tech.name.c_str(), config.num_cells,
              config.bitline_cap * 1e15, config.tech.v_dd, config.ops.size());

  util::Table table({"RTN scale", "sense errors", "disturbs",
                     "min margin (mV)", "mean margin (mV)",
                     "worst margin loss vs nominal (mV)"});
  std::vector<double> nominal_margins;
  for (double scale : {0.0, 30.0, 120.0, 300.0, 600.0}) {
    std::size_t sense_errors = 0, disturbs = 0;
    double min_margin = config.tech.v_dd, margin_sum = 0.0, worst_loss = 0.0;
    std::size_t margin_count = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const auto result = run_column_rtn(config, 10 + s, scale);
      const auto& reads = result.rtn_report.reads;
      for (std::size_t i = 0; i < reads.size(); ++i) {
        if (reads[i].sensed != reads[i].expected) ++sense_errors;
        if (reads[i].disturbed) ++disturbs;
        min_margin = std::min(min_margin, reads[i].sense_margin);
        margin_sum += reads[i].sense_margin;
        ++margin_count;
        if (scale == 0.0) {
          if (s == 0) nominal_margins.push_back(reads[i].sense_margin);
        } else if (i < nominal_margins.size()) {
          worst_loss = std::max(worst_loss,
                                nominal_margins[i] - reads[i].sense_margin);
        }
      }
      if (scale == 0.0) break;  // nominal is seed-independent
    }
    table.add_row({scale, static_cast<long long>(sense_errors),
                   static_cast<long long>(disturbs), min_margin * 1e3,
                   margin_sum / static_cast<double>(margin_count) * 1e3,
                   worst_loss * 1e3});
  }
  table.print(std::cout);

  // --- Array-level per-column worst-case margin ---------------------------
  sram::Array2dConfig array;
  array.tech = config.tech;
  array.rows = rows;
  array.cols = cols;
  array.bitline_cap = config.bitline_cap;
  array.initial_bits.resize(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      array.initial_bits[r * cols + c] = static_cast<int>((r + c) % 2);
    }
  }
  // Read the first and last row: every column is sensed twice, once per
  // stored polarity, so the per-column worst case covers both data states.
  array.ops = {sram::ArrayOp::read(0), sram::ArrayOp::read(rows - 1)};

  spice::Circuit probe;
  (void)sram::build_array2d(probe, array);
  const auto partition =
      sram::array2d_activity(probe, array, activity, 1e-4);
  const auto run = sram::run_array2d_rtn(
      array, /*seed=*/11, rtn_scale,
      activity == spice::ActivityMode::kOff ? nullptr : &partition);

  std::size_t array_errors = 0, array_disturbs = 0;
  for (const auto& read : run.rtn_report.reads) {
    if (read.sensed != read.expected) ++array_errors;
    if (read.disturbed) ++array_disturbs;
  }
  std::printf("\narray %zux%zu (%s, RTN scale %g): nominal %.2f s, "
              "generation %.2f s, injected %.2f s\n",
              rows, cols, spice::activity_mode_to_string(activity).c_str(),
              rtn_scale, run.nominal_seconds, run.generation_seconds,
              run.injected_seconds);
  util::Table array_table({"column", "worst margin (mV)",
                           "nominal worst (mV)", "loss (mV)"});
  for (std::size_t c = 0; c < cols; ++c) {
    const double rtn_margin = run.rtn_report.column_worst_margin[c];
    const double nom_margin = run.nominal_report.column_worst_margin[c];
    array_table.add_row({static_cast<long long>(c), rtn_margin * 1e3,
                         nom_margin * 1e3, (nom_margin - rtn_margin) * 1e3});
  }
  array_table.print(std::cout);
  std::printf("array worst-case margin %.1f mV (%zu sense errors, %zu "
              "disturbs across %zu reads)\n",
              run.rtn_report.min_sense_margin * 1e3, array_errors,
              array_disturbs, run.rtn_report.reads.size());

  std::printf("\n{\"bench\": \"column_sense\", \"array\": {\"rows\": %zu, "
              "\"cols\": %zu, \"activity\": \"%s\", \"rtn_scale\": %g, "
              "\"min_sense_margin\": %.4f, \"nominal_min_margin\": %.4f, "
              "\"sense_errors\": %zu, \"disturbs\": %zu, "
              "\"injected_seconds\": %.3f, \"column_worst_margin\": [",
              rows, cols, spice::activity_mode_to_string(activity).c_str(),
              rtn_scale, run.rtn_report.min_sense_margin,
              run.nominal_report.min_sense_margin, array_errors,
              array_disturbs, run.injected_seconds);
  for (std::size_t c = 0; c < cols; ++c) {
    std::printf("%s%.4f", c ? ", " : "",
                run.rtn_report.column_worst_margin[c]);
  }
  std::printf("]}}\n");

  std::printf("\nExpected shape: margins erode monotonically with the RTN\n"
              "scale (trapped charge throttles the discharge path while the\n"
              "bitline race is on); sense errors appear once the erosion\n"
              "reaches the slot with the least nominal margin.\n");
  return 0;
}
