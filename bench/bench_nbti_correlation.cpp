// Reproduces the paper's §I-B observation 1 (after ref. [1]): RTN and
// NBTI are positively correlated because they share a root cause — oxide
// traps.
//
// For a population of sampled devices at fixed stress bias we compute,
// from the same trap population,
//   * an NBTI proxy: the mean threshold shift from the stationary filled
//     charge, ΔV_th = Σ p_fill · q/(C_ox W L), and
//   * the RTN magnitude: the RMS current noise Σ ΔI² p(1-p) from the
//     active traps,
// and report the cross-device Pearson correlation. Device-to-device
// oxide-quality variation (nitridation, thickness, interface roughness)
// makes the trap *density* itself vary between devices — modelled as a
// lognormal factor on the expected trap count — and since both effects
// grow with the same trap population, the correlation is strongly
// positive. That is why the combined design margin is smaller than the
// sum of the individual margins (the paper's design-choice argument).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "physics/constants.hpp"
#include "physics/mos_device.hpp"
#include "physics/srh_model.hpp"
#include "physics/trap_profile.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto devices = static_cast<std::size_t>(cli.get_int("devices", 200));
  const double density_sigma = cli.get_double("density-sigma", 0.5);
  util::Rng rng(cli.get_seed("seed", 21));

  std::printf("=== RTN-NBTI correlation from the common trap origin "
              "(paper §I-B) ===\n\n");

  util::Table table({"node", "devices", "mean NBTI dVth (mV)",
                     "mean RTN sigma (uA)", "Pearson r"});
  for (const char* node : {"90nm", "45nm", "22nm"}) {
    const auto tech = physics::technology(node);
    const physics::SrhModel srh(tech);
    const physics::MosGeometry geom{tech.w_min, tech.l_min};
    const physics::MosDevice device(tech, physics::MosType::kNmos, geom);
    const double v_stress = tech.v_dd;
    const double q_step = physics::kElementaryCharge /
                          (tech.c_ox() * geom.width * geom.length);
    const auto op = device.evaluate(v_stress, 0.5 * tech.v_dd);
    const double delta_i = std::min(
        std::abs(op.i_d) / std::max(device.carrier_count(v_stress), 1.0),
        physics::kElementaryCharge * 1.0e5 / geom.length);

    std::vector<double> nbti, rtn;
    nbti.reserve(devices);
    rtn.reserve(devices);
    for (std::size_t d = 0; d < devices; ++d) {
      util::Rng device_rng = rng.split(d + 1);
      // Lognormal oxide-quality factor on the device's trap density.
      physics::TrapProfileOptions profile;
      const double quality = std::exp(device_rng.normal(0.0, density_sigma));
      profile.fixed_count = static_cast<std::size_t>(device_rng.poisson(
          quality * physics::expected_trap_count(tech, geom)));
      const auto traps =
          physics::sample_trap_profile(tech, geom, device_rng, profile);
      double shift = 0.0;
      double noise_power = 0.0;
      for (const auto& trap : traps) {
        const double p_fill = srh.stationary_fill(trap, v_stress);
        shift += p_fill * q_step;
        noise_power += delta_i * delta_i * p_fill * (1.0 - p_fill);
      }
      nbti.push_back(shift);
      rtn.push_back(std::sqrt(noise_power));
    }

    // Pearson correlation.
    double mx = 0.0, my = 0.0;
    for (std::size_t d = 0; d < devices; ++d) {
      mx += nbti[d];
      my += rtn[d];
    }
    mx /= static_cast<double>(devices);
    my /= static_cast<double>(devices);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t d = 0; d < devices; ++d) {
      sxy += (nbti[d] - mx) * (rtn[d] - my);
      sxx += (nbti[d] - mx) * (nbti[d] - mx);
      syy += (rtn[d] - my) * (rtn[d] - my);
    }
    const double r = sxy / std::sqrt(sxx * syy);
    table.add_row({std::string(node), static_cast<long long>(devices),
                   mx * 1e3, my * 1e6, r});
  }
  table.print(std::cout);

  std::printf("\nExpected shape (paper §I-B / ref. [1]): strongly positive\n"
              "correlation at every node — devices with more (and more\n"
              "occupied) traps suffer more of *both* effects, so the joint\n"
              "RTN+NBTI design margin is smaller than the sum of the\n"
              "individual margins.\n");
  return 0;
}
