// Ablation A: Markov uniformisation (Algorithm 1) vs the naive
// fixed-timestep Bernoulli simulation of the same non-stationary chain.
//
// Accuracy metric: the ensemble fill probability at probe times against
// the RK4 master-equation reference. Cost metric: random draws consumed.
// Uniformisation is exact at any rate; the naive method needs steps far
// below 1/λ to approach the right law.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "baseline/gillespie.hpp"
#include "baseline/tau_leaping.hpp"
#include "core/uniformisation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

double ensemble_error(
    const std::function<core::TrapTrajectory(util::Rng&)>& simulate,
    const core::PropensityFunction& propensity, double t_end, int runs,
    util::Rng& rng) {
  const std::vector<double> probes = {0.25 * t_end, 0.5 * t_end, 0.9 * t_end};
  std::vector<double> grid;
  const auto reference = core::master_equation_fill_probability(
      propensity, 0.0, t_end, 0.0, 4000, &grid);
  std::vector<double> filled(probes.size(), 0.0);
  for (int r = 0; r < runs; ++r) {
    util::Rng run_rng = rng.split(static_cast<std::uint64_t>(r) + 1);
    const auto traj = simulate(run_rng);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (traj.state_at(probes[i]) == physics::TrapState::kFilled) {
        filled[i] += 1.0;
      }
    }
  }
  double worst = 0.0;
  const double h = grid[1] - grid[0];
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto idx = static_cast<std::size_t>(probes[i] / h);
    const double expected = reference[idx];
    worst = std::max(worst, std::abs(filled[i] / runs - expected));
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const int runs = static_cast<int>(cli.get_int("runs", 3000));
  util::Rng rng(cli.get_seed("seed", 77));

  // A strongly modulated chain: rates swing over a decade within the
  // horizon (an SRAM-like duty cycle).
  const double base = 50.0, amp = 45.0, omega = 120.0;
  auto lambda_c = [=](double t) { return base + amp * std::sin(omega * t); };
  auto lambda_e = [=](double t) { return base - amp * std::sin(omega * t); };
  const core::FunctionalPropensity propensity(lambda_c, lambda_e, base + amp);
  const double t_end = 0.2;

  std::printf("=== Ablation A: uniformisation vs naive time-stepping ===\n");
  std::printf("chain: λc,λe = %.0f ± %.0f sin(%.0f t), horizon %.2f s, "
              "%d-run ensembles\n\n", base, amp, omega, t_end, runs);

  util::Table table({"method", "parameter", "draws per run", "max |P_fill "
                     "error|", "exact?"});

  // Uniformisation.
  {
    util::Rng method_rng = rng.split(1);
    core::UniformisationStats stats;
    double draws = 0.0;
    const double err = ensemble_error(
        [&](util::Rng& r) {
          core::UniformisationStats s;
          auto traj = core::simulate_trap(propensity, 0.0, t_end,
                                          physics::TrapState::kEmpty, r, {}, &s);
          draws += static_cast<double>(s.candidates) * 2.0;  // exp + accept
          return traj;
        },
        propensity, t_end, runs, method_rng);
    (void)stats;
    table.add_row({std::string("uniformisation (Alg. 1)"), std::string("-"),
                   draws / runs, err, std::string("yes")});
  }

  // Windowed re-uniformisation (8 windows).
  {
    util::Rng method_rng = rng.split(2);
    std::vector<double> boundaries;
    for (int w = 1; w < 8; ++w) boundaries.push_back(t_end * w / 8.0);
    double draws = 0.0;
    const double err = ensemble_error(
        [&](util::Rng& r) {
          core::UniformisationStats s;
          auto traj = core::simulate_trap_windowed(
              propensity, 0.0, t_end, physics::TrapState::kEmpty, boundaries,
              r, {}, &s);
          draws += static_cast<double>(s.candidates) * 2.0;
          return traj;
        },
        propensity, t_end, runs, method_rng);
    table.add_row({std::string("windowed re-uniformisation"),
                   std::string("8 windows"), draws / runs, err,
                   std::string("yes")});
  }

  // Naive stepping at several resolutions.
  for (double dt : {0.02, 0.005, 0.001, 0.0002}) {
    util::Rng method_rng = rng.split(100 + static_cast<std::uint64_t>(1.0 / dt));
    double draws = 0.0;
    const double err = ensemble_error(
        [&](util::Rng& r) {
          std::uint64_t steps = 0;
          auto traj = baseline::naive_time_stepped(
              propensity, 0.0, t_end, physics::TrapState::kEmpty, r,
              {dt}, &steps);
          draws += static_cast<double>(steps);
          return traj;
        },
        propensity, t_end, runs, method_rng);
    char label[32];
    std::snprintf(label, sizeof label, "dt=%g (λ·dt=%.2f)", dt,
                  (base + amp) * dt);
    table.add_row({std::string("naive time-stepped"), std::string(label),
                   draws / runs, err, std::string("no (O(dt) bias)")});
  }
  // Tau-leaping at several leap lengths: endpoint-exact per leap, so the
  // occupancy stays right even at coarse tau, but the recorded switch
  // activity (not scored here) degrades — see test_tau_leaping.
  for (double tau : {0.02, 0.002}) {
    util::Rng method_rng = rng.split(200 + static_cast<std::uint64_t>(1.0 / tau));
    double draws = 0.0;
    const double err = ensemble_error(
        [&](util::Rng& r) {
          std::uint64_t leaps = 0;
          auto traj = baseline::tau_leaping(propensity, 0.0, t_end,
                                            physics::TrapState::kEmpty, r,
                                            {tau}, &leaps);
          draws += static_cast<double>(leaps);
          return traj;
        },
        propensity, t_end, runs, method_rng);
    char label[40];
    std::snprintf(label, sizeof label, "tau=%g (midpoint-frozen)", tau);
    table.add_row({std::string("tau-leaping"), std::string(label),
                   draws / runs, err,
                   std::string("endpoint-exact only")});
  }
  table.print(std::cout);

  std::printf("\nExpected shape: uniformisation hits the master-equation\n"
              "reference (error ~ ensemble noise, ~1/sqrt(runs)) at a cost\n"
              "of ~2 draws per candidate event; the naive method needs\n"
              "λ·dt << 1 — orders of magnitude more draws — to approach the\n"
              "same accuracy, and is biased at any finite dt.\n");
  return 0;
}
