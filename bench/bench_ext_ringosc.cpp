// Extension bench (paper future-work #4): RTN impact on a ring
// oscillator — period statistics with and without SAMURAI traces injected,
// swept over the RTN amplitude scale.
#include <cstdio>
#include <iostream>

#include "osc/ring.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  osc::RingConfig config;
  config.tech = physics::technology(cli.get_string("node", "90nm"));
  config.stages = static_cast<std::size_t>(cli.get_int("stages", 5));
  // ~80 cycles is plenty for period statistics and keeps the RTN-injected
  // transient (whose step size is limited by trap switch breakpoints)
  // affordable.
  config.t_stop = cli.get_double("t-stop", 12e-9);
  const auto seed = cli.get_seed("seed", 5);

  std::printf("=== Extension 4: ring-oscillator period under RTN ===\n");
  std::printf("%s, %zu stages\n\n", config.tech.name.c_str(), config.stages);

  util::Table table({"RTN scale", "cycles", "period (ps)", "jitter 1σ (ps)",
                     "jitter (%)", "Δf (ppm)", "RTN transitions"});
  for (double scale : {0.0, 30.0, 100.0, 300.0}) {
    const auto result = osc::ring_rtn_analysis(config, seed, scale);
    const auto& stats = scale == 0.0 ? result.nominal : result.with_rtn;
    table.add_row({scale, static_cast<long long>(stats.cycles),
                   stats.mean * 1e12, stats.stddev * 1e12,
                   stats.mean > 0.0 ? 100.0 * stats.stddev / stats.mean : 0.0,
                   scale == 0.0 ? 0.0 : result.frequency_shift_ppm,
                   static_cast<long long>(scale == 0.0 ? 0 : result.rtn_switches)});
  }
  table.print(std::cout);

  std::printf("\nExpected shape: period jitter grows with the RTN scale and\n"
              "the mean frequency shifts (trapped charge steals drive\n"
              "current) — the RTN-on-ring-oscillator effect the paper's\n"
              "conclusion cites.\n");
  return 0;
}
