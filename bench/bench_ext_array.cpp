// Extension bench (paper future-work #3): RTN-induced bit-error statistics
// over an SRAM array with local V_T variation, swept over the RTN
// amplitude scale. Cells are independent Monte-Carlo instances.
#include <cstdio>
#include <iostream>

#include "sram/array.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::ArrayConfig config;
  config.cell.tech = physics::technology(cli.get_string("node", "90nm"));
  // Run at the margin supply with loaded storage nodes (paper Fig. 2's
  // regime) so RTN has a measurable bit-error impact.
  config.cell.tech.v_dd = cli.get_double("vdd", 0.9);
  config.cell.sizing.extra_node_cap = cli.get_double("node-cap", 40e-15);
  config.cell.timing.period = cli.get_double("period", 1e-9);
  config.cell.ops = sram::ops_from_bits({1, 0, 1});
  config.num_cells = static_cast<std::size_t>(cli.get_int("cells", 24));
  config.sigma_vt = cli.get_double("sigma-vt", 0.02);
  config.seed = cli.get_seed("seed", 99);
  config.threads = static_cast<std::size_t>(cli.get_int("threads", 4));

  std::printf("=== Extension 3: array bit-error statistics vs RTN scale ===\n");
  std::printf("%s, %zu cells, sigma_VT = %.0f mV, pattern 101\n\n",
              config.cell.tech.name.c_str(), config.num_cells,
              config.sigma_vt * 1e3);

  util::Table table({"RTN scale", "nominal errors", "errors with RTN",
                     "broken by RTN", "rescued by RTN", "slow cells",
                     "RTN BER"});
  for (double scale : {0.0, 10.0, 30.0, 60.0, 120.0}) {
    config.cell.rtn_scale = scale;
    const auto result = sram::run_array(config);
    table.add_row({scale, static_cast<long long>(result.nominal_errors),
                   static_cast<long long>(result.rtn_errors),
                   static_cast<long long>(result.rtn_only_errors),
                   static_cast<long long>(result.rtn_rescued),
                   static_cast<long long>(result.slow_cells),
                   static_cast<double>(result.rtn_only_errors) /
                       static_cast<double>(config.num_cells)});
  }
  table.print(std::cout);

  std::printf("\nExpected shape: the nominal (scale-independent) error count\n"
              "is set by V_T variation alone; as the RTN scale grows it\n"
              "flips outcomes in *both* directions on marginal cells —\n"
              "breaking some good cells and rescuing some bad ones —\n"
              "because injected RTN weakens aiding and opposing devices\n"
              "alike. The paper's point stands: RTN's incremental effect\n"
              "is concentrated where variation already ate the margin.\n");
  return 0;
}
