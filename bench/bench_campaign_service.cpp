// Campaign-service benchmark: the three hot paths of the distributed
// runtime (DESIGN.md §14), each with a correctness gate.
//
//   1. Lease protocol — claim/renew/release cycles per second on one
//      campaign directory (the per-shard coordination overhead a worker
//      pays before any simulation work happens).
//   2. Ledger appends — durable O_APPEND one-line appends per second,
//      against the rewrite-the-whole-ledger strategy the service replaced
//      (O(shards²) bytes): the measured speedup is the reason shards.jsonl
//      is append-only. Gate: the appended ledger loads back exactly.
//   3. Distributed campaign — N in-process workers sharing one directory
//      vs the single-process runner on the same manifest. Gate: the folded
//      estimate is bit-identical (the whole point of the fold contract).
//
// Emits one machine-readable JSON line. `--quick` shrinks the counts for
// use as a smoke test under `ctest -L perf`; exits non-zero if a gate
// fails.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/json.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/service/lease.hpp"
#include "campaign/service/worker.hpp"
#include "util/cli.hpp"

using namespace samurai;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

campaign::ShardResult synthetic_shard(std::uint64_t index) {
  campaign::ShardResult shard;
  shard.index = index;
  shard.samples = 100;
  shard.worker = "bench";
  shard.weighted.count = 100;
  shard.weighted.failures = 3;
  shard.weighted.weight_sum = 100.0;
  shard.weighted.weight_sq_sum = 100.0;
  shard.weighted.fail_weight_sum = 3.0;
  shard.weighted.fail_weight_sq_sum = 3.0;
  shard.fails.count = 100;
  shard.fails.successes = 3;
  shard.wall_seconds = 0.5;
  return shard;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  const int lease_cycles = cli.get_int("lease-cycles", quick ? 200 : 2000);
  const int append_lines = cli.get_int("append-lines", quick ? 200 : 2000);
  const int workers = cli.get_int("workers", 4);

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("samurai_bench_service_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root);
  bool ok = true;

  // --- 1. lease claim/renew/release cycles -------------------------------
  double lease_cycles_per_sec = 0.0;
  {
    campaign::LeaseDir leases(root + "/lease", 30.0);
    const auto start = Clock::now();
    for (int i = 0; i < lease_cycles; ++i) {
      auto lease = leases.try_claim(static_cast<std::uint64_t>(i % 64), "b");
      if (!lease) {
        ok = false;
        break;
      }
      leases.renew(*lease);
      leases.release(*lease);
    }
    lease_cycles_per_sec = lease_cycles / seconds_since(start);
  }

  // --- 2. append-only ledger vs whole-file rewrite -----------------------
  double append_lines_per_sec = 0.0;
  double rewrite_lines_per_sec = 0.0;
  {
    campaign::Checkpoint checkpoint(root + "/append");
    std::filesystem::create_directories(checkpoint.dir());
    auto start = Clock::now();
    for (int i = 0; i < append_lines; ++i) {
      checkpoint.append_ledger(synthetic_shard(static_cast<std::uint64_t>(i)));
    }
    append_lines_per_sec = append_lines / seconds_since(start);
    const auto loaded = checkpoint.load_ledger();
    if (loaded.size() != static_cast<std::size_t>(append_lines)) ok = false;

    // The strategy this replaced: rewrite the whole ledger per shard.
    std::string ledger;
    start = Clock::now();
    for (int i = 0; i < append_lines; ++i) {
      ledger += synthetic_shard(static_cast<std::uint64_t>(i)).to_json();
      ledger += "\n";
      campaign::write_file_atomic(root + "/rewrite.jsonl", ledger);
    }
    rewrite_lines_per_sec = append_lines / seconds_since(start);
  }

  // --- 3. N workers vs the single-process runner -------------------------
  campaign::Manifest manifest;
  manifest.kind = campaign::CampaignKind::kImportance;
  manifest.name = "bench-service";
  manifest.seed = 21;
  manifest.budget = quick ? 48 : 192;
  manifest.shard_size = 4;
  manifest.threads = 1;
  manifest.v_dd = 1.05;
  manifest.sigma_vt = 0.12;
  manifest.with_rtn = false;
  manifest.shift[0] = manifest.shift[1] = 0.06;

  auto start = Clock::now();
  const campaign::CampaignResult single = run_campaign(manifest);
  const double single_wall = seconds_since(start);

  const std::string dir = root + "/campaign";
  campaign::Checkpoint(dir).init(manifest);
  start = Clock::now();
  std::vector<std::thread> crew;
  for (int w = 0; w < workers; ++w) {
    crew.emplace_back([&, w] {
      campaign::WorkerOptions options;
      options.dir = dir;
      options.worker_id = "w" + std::to_string(w);
      options.lease_ttl = 30.0;
      options.poll_seconds = 0.005;
      run_worker(options);
    });
  }
  for (auto& thread : crew) thread.join();
  const double distributed_wall = seconds_since(start);

  const campaign::CampaignResult distributed = campaign::campaign_status(dir);
  if (!distributed.complete || distributed.estimate != single.estimate ||
      distributed.ci.lo != single.ci.lo ||
      distributed.ci.hi != single.ci.hi ||
      distributed.samples_done != single.samples_done) {
    std::fprintf(stderr,
                 "bench_campaign_service: distributed fold diverged from the "
                 "single-process run\n");
    ok = false;
  }

  campaign::JsonWriter json;
  json.add("bench", "campaign_service");
  json.add("quick", quick);
  json.add("svc_lease_cycles_per_sec", lease_cycles_per_sec);
  json.add("svc_append_lines_per_sec", append_lines_per_sec);
  json.add("svc_rewrite_lines_per_sec", rewrite_lines_per_sec);
  json.add("svc_append_speedup",
           append_lines_per_sec / rewrite_lines_per_sec);
  json.add_u64("svc_workers", static_cast<std::uint64_t>(workers));
  json.add("svc_single_wall_seconds", single_wall);
  json.add("svc_distributed_wall_seconds", distributed_wall);
  json.add("svc_speedup", single_wall / distributed_wall);
  json.add("estimate", distributed.estimate);
  json.add("ok", ok);
  std::printf("%s\n", json.str().c_str());

  std::filesystem::remove_all(root);
  return ok ? 0 : 1;
}
