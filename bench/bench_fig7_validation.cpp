// Reproduces paper Fig. 7 (a)-(f): validation of SAMURAI against the
// analytic stationary-RTN expressions.
//
// Three sweeps — gate bias V_gs (a,d), trap energy E_tr (b,e) and trap
// depth y_tr (c,f) — with the two non-swept parameters held at typical
// values. For every configuration a long constant-bias trace is generated
// with Algorithm 1; the measured autocorrelation R(τ) and PSD S(f) are
// compared against the analytic exponential / Lorentzian laws, and the
// thermal-noise floor S_th = (8/3) k T g_m is printed for context.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>

#include "core/propensity.hpp"
#include "core/uniformisation.hpp"
#include "physics/mos_device.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "signal/analytic.hpp"
#include "signal/resample.hpp"
#include "signal/spectral.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/grid.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

struct Config {
  std::string label;
  physics::Trap trap;
  double v_gs;
};

struct Measurement {
  signal::Autocorrelation acf;
  signal::Spectrum spectrum;
  signal::RtsParams analytic;
  double delta_i = 0.0;
  double thermal_floor = 0.0;
};

Measurement measure(const physics::Technology& tech,
                    const physics::SrhModel& srh,
                    const physics::MosDevice& device, const Config& config,
                    util::Rng& rng) {
  Measurement m;
  const auto p = srh.propensities(config.trap, config.v_gs);
  const double total = p.lambda_c + p.lambda_e;
  const auto op = device.evaluate(config.v_gs, 0.5 * tech.v_dd);
  m.delta_i = std::abs(op.i_d) / std::max(device.carrier_count(config.v_gs), 1.0);
  m.analytic = {p.lambda_c, p.lambda_e, m.delta_i};
  m.thermal_floor = signal::thermal_noise_psd(tech.temperature, op.g_m);

  const core::BiasPropensity propensity(srh, config.trap,
                                        core::Pwl::constant(config.v_gs));
  // The sampling grid must resolve the Lorentzian corner (dt ~ 0.1/Λ) and
  // the record must hold enough Welch segments for a low-variance PSD, so
  // fix dt·Λ ~ 0.1 and grow the record: 2^20 samples = 1e5 candidate
  // events = 256+ Welch segments.
  const double horizon = 1.0e5 / total;
  const auto traj = core::simulate_trap(propensity, 0.0, horizon,
                                        config.trap.init_state, rng);
  const std::size_t n = 1 << 20;
  auto record = signal::resample(traj, n);
  for (auto& s : record.samples) s *= m.delta_i;
  m.acf = signal::autocorrelation(record.samples, record.dt, true, true,
                                  n / 16);
  m.spectrum = signal::welch_psd(record.samples, record.dt, 4096);
  return m;
}

/// Worst-case deviation of the simulated/analytic ratios from 1 across a
/// sweep — the one-line health number for the JSON summary.
struct SweepSummary {
  std::string name;
  double max_r0_dev = 0.0;
  double max_r1_dev = 0.0;
  double max_s_low_dev = 0.0;
  double max_s_corner_dev = 0.0;
};

SweepSummary run_sweep(const char* name, const char* title,
                       const char* plot_tag_acf, const char* plot_tag_psd,
                       const physics::Technology& tech,
                       const physics::SrhModel& srh,
                       const physics::MosDevice& device,
                       const std::vector<Config>& configs, util::Rng& rng,
                       bool make_plots) {
  SweepSummary summary;
  summary.name = name;
  util::Table table({"config", "corner f (Hz)", "R(0) sim/ana",
                     "R(1/L) sim/ana", "S(fc/4) sim/ana", "S(fc) sim/ana",
                     "S_thermal (A^2/Hz)"});
  std::vector<util::Series> acf_series, psd_series;
  std::size_t index = 0;
  for (const auto& config : configs) {
    util::Rng case_rng = rng.split(++index);
    const auto m = measure(tech, srh, device, config, case_rng);
    const double total = m.analytic.lambda_c + m.analytic.lambda_e;
    const double corner = total / (2.0 * std::numbers::pi);

    auto acf_at = [&](double tau) {
      return util::interp_linear(m.acf.lags, m.acf.values, tau);
    };
    auto psd_at = [&](double f) {
      return util::interp_linear(m.spectrum.frequencies, m.spectrum.density, f);
    };
    const double r0_ratio =
        acf_at(0.0) / signal::rts_autocovariance(m.analytic, 0.0);
    const double r1_ratio = acf_at(1.0 / total) /
                            signal::rts_autocovariance(m.analytic, 1.0 / total);
    const double s_low_ratio =
        psd_at(corner / 4.0) / signal::rts_psd(m.analytic, corner / 4.0);
    const double s_corner_ratio =
        psd_at(corner) / signal::rts_psd(m.analytic, corner);
    table.add_row({config.label, corner, r0_ratio, r1_ratio, s_low_ratio,
                   s_corner_ratio, m.thermal_floor});
    summary.max_r0_dev = std::max(summary.max_r0_dev, std::abs(r0_ratio - 1.0));
    summary.max_r1_dev = std::max(summary.max_r1_dev, std::abs(r1_ratio - 1.0));
    summary.max_s_low_dev =
        std::max(summary.max_s_low_dev, std::abs(s_low_ratio - 1.0));
    summary.max_s_corner_dev =
        std::max(summary.max_s_corner_dev, std::abs(s_corner_ratio - 1.0));

    // Normalised overlay series for the figure plots.
    util::Series acf_sim;
    acf_sim.name = config.label;
    for (std::size_t k = 0; k < m.acf.lags.size(); k += 32) {
      const double tau = m.acf.lags[k];
      if (tau * total > 5.0) break;
      acf_sim.x.push_back(tau * total);  // lag in units of 1/Λ
      acf_sim.y.push_back(m.acf.values[k] /
                          signal::rts_autocovariance(m.analytic, 0.0));
    }
    acf_series.push_back(std::move(acf_sim));

    util::Series psd_sim;
    psd_sim.name = config.label;
    for (std::size_t k = 0; k < m.spectrum.frequencies.size(); k += 8) {
      psd_sim.x.push_back(m.spectrum.frequencies[k]);
      psd_sim.y.push_back(m.spectrum.density[k]);
    }
    psd_series.push_back(std::move(psd_sim));
  }
  std::printf("%s\n", title);
  table.print(std::cout);
  std::printf("(ratios ~1 mean SAMURAI matches the analytic law; R ratios at\n"
              " small lag, S ratios below and at the Lorentzian corner)\n\n");

  if (make_plots) {
    util::PlotOptions acf_options;
    acf_options.title = std::string("Fig. 7") + plot_tag_acf +
                        ": normalised R(τ·Λ), analytic = exp(-x)";
    acf_options.x_label = "lag · Λ";
    acf_options.y_label = "R/R(0)";
    acf_options.height = 12;
    // Analytic reference curve.
    util::Series reference;
    reference.name = "analytic exp(-x)";
    for (double x : util::linspace(0.0, 5.0, 60)) {
      reference.x.push_back(x);
      reference.y.push_back(std::exp(-x));
    }
    std::vector<util::Series> acf_with_ref = acf_series;
    acf_with_ref.push_back(reference);
    util::plot(std::cout, acf_with_ref, acf_options);
    std::printf("\n");

    util::PlotOptions psd_options;
    psd_options.title = std::string("Fig. 7") + plot_tag_psd +
                        ": S(f) per configuration (Lorentzians)";
    psd_options.x_label = "f (Hz)";
    psd_options.y_label = "A^2/Hz";
    psd_options.log_x = true;
    psd_options.log_y = true;
    psd_options.height = 14;
    util::plot(std::cout, psd_series, psd_options);
    std::printf("\n");
  }
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tech = physics::technology(cli.get_string("node", "90nm"));
  const physics::SrhModel srh(tech);
  const physics::MosDevice device(tech, physics::MosType::kNmos,
                                  {2.0 * tech.w_min, tech.l_min});
  util::Rng rng(cli.get_seed("seed", 7));
  const bool plots = !cli.has("no-plots");

  std::printf("=== Paper Fig. 7: SAMURAI vs analytic stationary RTN (%s) ===\n\n",
              tech.name.c_str());

  // Typical fixed values; each sweep is chosen so the trap stays
  // observably bistable (β within a few decades of 1).
  const double e_mid = 0.60;
  const double y_mid = 0.22 * tech.t_ox;

  // (a)/(d): sweep V_gs.
  std::vector<Config> v_sweep;
  for (double v : util::linspace(0.55 * tech.v_dd, 0.95 * tech.v_dd, 4)) {
    char label[64];
    std::snprintf(label, sizeof label, "Vgs=%.2fV", v);
    v_sweep.push_back({label, {y_mid, e_mid, physics::TrapState::kEmpty}, v});
  }
  std::vector<SweepSummary> summaries;
  summaries.push_back(run_sweep("vgs",
                                "--- sweep V_gs (paper plots (a) and (d)) ---",
                                "(a)", "(d)", tech, srh, device, v_sweep, rng,
                                plots));

  // (b)/(e): sweep E_tr.
  std::vector<Config> e_sweep;
  for (double e : util::linspace(e_mid - 0.05, e_mid + 0.05, 4)) {
    char label[64];
    std::snprintf(label, sizeof label, "Etr=%.2feV", e);
    e_sweep.push_back(
        {label, {y_mid, e, physics::TrapState::kEmpty}, 0.75 * tech.v_dd});
  }
  summaries.push_back(run_sweep("etr",
                                "--- sweep E_tr (paper plots (b) and (e)) ---",
                                "(b)", "(e)", tech, srh, device, e_sweep, rng,
                                plots));

  // (c)/(f): sweep y_tr.
  std::vector<Config> y_sweep;
  for (double frac : {0.10, 0.16, 0.22, 0.28}) {
    char label[64];
    std::snprintf(label, sizeof label, "y=%.2f*tox", frac);
    y_sweep.push_back({label,
                       {frac * tech.t_ox, e_mid, physics::TrapState::kEmpty},
                       0.75 * tech.v_dd});
  }
  summaries.push_back(run_sweep("ytr",
                                "--- sweep y_tr (paper plots (c) and (f)) ---",
                                "(c)", "(f)", tech, srh, device, y_sweep, rng,
                                plots));

  // Machine-readable trajectory line (scripted against BENCH_*.json):
  // worst |simulated/analytic - 1| per sweep, per statistic.
  std::printf("{\"bench\": \"fig7_validation\", \"node\": \"%s\", "
              "\"sweeps\": [", tech.name.c_str());
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    std::printf("%s{\"sweep\": \"%s\", \"max_r0_dev\": %.4f, "
                "\"max_r1_dev\": %.4f, \"max_s_low_dev\": %.4f, "
                "\"max_s_corner_dev\": %.4f}",
                i == 0 ? "" : ", ", s.name.c_str(), s.max_r0_dev,
                s.max_r1_dev, s.max_s_low_dev, s.max_s_corner_dev);
  }
  std::printf("]}\n\n");

  std::printf("Expected shape (paper): simulated R(τ) and S(f) overlay the\n"
              "analytic exponentials/Lorentzians across all three sweeps;\n"
              "corner frequency moves with Λ(y_tr) and β(V_gs, E_tr).\n");
  return 0;
}
