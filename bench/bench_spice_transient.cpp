// Transient hot-path microbenchmark: the 6T write transient and the
// bi-directionally coupled cell, each run twice — once on the fast path
// (workspace reuse + linear-stamp cache + modified-Newton LU bypass) and
// once with every cache disabled (force-refactorize reference). The two
// paths agree within Newton tolerance (asserted by the fast-path regression
// test); the wall-clock ratio is the speedup the fast path buys. The
// coupled pair additionally gates on the solver ledger: the fast path must
// bank factorization savings without paying extra Newton iterations — the
// deterministic form of "the LU bypass must not lose on this workload".
//
// A second section scales the workload: the N-cell shared-bitline column
// (N in {8, 32, 64}) timed on the dense and the sparse MNA engine over a
// fixed step grid (LTE control disabled), so both engines do provably
// identical work — the accepted-point counts are asserted equal — and the
// ratio isolates the linear solver. Dense factorization is O(n^3) in the
// n = 7N + 10 unknowns while the sparse path tracks the near-constant
// per-row fill of the column topology, so the ratio must grow with N; the
// bench fails if the 64-cell column is not at least 3x faster sparse.
//
// Emits one machine-readable JSON line (scripted against
// BENCH_spice_transient.json).
//
// `--quick` shrinks the repetition counts and column sizes for use as a
// smoke test under `ctest -L perf`; `--reps N` overrides the
// write-transient repetitions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "sram/array2d.hpp"
#include "sram/column.hpp"
#include "sram/coupled.hpp"
#include "sram/methodology.hpp"
#include "util/cli.hpp"

using namespace samurai;

namespace {

sram::MethodologyConfig base_config(bool fast) {
  sram::MethodologyConfig config;
  config.tech = physics::technology("65nm");
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0, 1});
  // The reference path re-stamps every device and refactors on every
  // Newton iteration, in the transient and in its initial DC solve alike.
  config.transient.newton.reuse_lu = fast;
  config.transient.newton.cache_linear_stamps = fast;
  config.transient.dc.newton.reuse_lu = fast;
  config.transient.dc.newton.cache_linear_stamps = fast;
  return config;
}

struct ModeReport {
  double ms_per_run = 0.0;        ///< best-of-batches mean wall per run
  std::size_t points = 0;         ///< solution points of one run
  spice::SolverStats stats;       ///< solver counters of one run
  std::uint64_t realloc_after_first = 0;  ///< workspace allocs past run 1
};

double now_delta_ms(std::chrono::steady_clock::time_point start, int reps) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall / reps * 1e3;
}

/// 6T write transient via run_nominal, sharing one Newton workspace across
/// all repetitions (the intended steady-state usage pattern).
ModeReport bench_write6t(bool fast, int reps, int batches) {
  const auto config = base_config(fast);
  spice::NewtonWorkspace workspace;
  ModeReport report;

  // Instrumented first run: per-run counters + the one expected allocation.
  {
    const auto run = sram::run_nominal(config, workspace);
    report.stats = run.result.stats();
    report.points = run.result.num_points();
  }
  // Steady state: every further repetition must reuse the buffers.
  const auto steady_before = spice::solver_stats_snapshot();
  (void)sram::run_nominal(config, workspace);  // warmup
  report.ms_per_run = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) (void)sram::run_nominal(config, workspace);
    report.ms_per_run = std::min(report.ms_per_run, now_delta_ms(start, reps));
  }
  report.realloc_after_first =
      spice::solver_stats_snapshot().since(steady_before).workspace_allocations;
  return report;
}

/// Coupled cell (per-step trap-chain advance through on_step callbacks),
/// fast path and force-refactorize reference measured with interleaved
/// batches: the two sides of the gated speedup ratio see the same clock
/// drift, so the ratio reflects the engine and not the machine's mood
/// between two separate measurement blocks.
void bench_coupled_pair(int reps, int batches, ModeReport& fast,
                        ModeReport& slow) {
  auto fast_config = base_config(true);
  auto slow_config = base_config(false);
  fast_config.rtn_scale = slow_config.rtn_scale = 30.0;
  {
    const auto run = sram::run_coupled(fast_config);
    fast.stats = run.transient.stats();
    fast.points = run.transient.num_points();
  }
  {
    const auto run = sram::run_coupled(slow_config);
    slow.stats = run.transient.stats();
    slow.points = run.transient.num_points();
  }
  fast.ms_per_run = slow.ms_per_run = 1e300;
  // Alternate which side runs first: a fixed order hands the second side a
  // systematically warmer machine, which on a ~4% ratio is the whole gate.
  for (int b = 0; b < batches; ++b) {
    const bool fast_first = (b % 2) == 0;
    for (int half = 0; half < 2; ++half) {
      const bool timing_fast = fast_first == (half == 0);
      const auto& config = timing_fast ? fast_config : slow_config;
      const auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < reps; ++i) (void)sram::run_coupled(config);
      auto& best = timing_fast ? fast.ms_per_run : slow.ms_per_run;
      best = std::min(best, now_delta_ms(start, reps));
    }
  }
}

/// K-lane batched 6T write campaign step: the same cell with per-lane
/// threshold spreads, marched through one lock-step fixed-grid transient
/// per call. ms_per_lane is the per-sample cost a batched campaign pays,
/// directly comparable with bench_write6t's adaptive ms_per_run.
struct BatchReport {
  std::size_t lanes = 0;
  double ms_per_lane = 0.0;
  std::size_t points = 0;
  spice::SolverStats stats;  ///< lane-0 delta of the instrumented call
};

BatchReport bench_write6t_batched(std::size_t lanes, int reps, int batches) {
  std::vector<sram::MethodologyConfig> configs(lanes, base_config(true));
  for (std::size_t k = 0; k < lanes; ++k) {
    for (int m = 1; m <= 6; ++m) {
      // Deterministic +-10 mV spread: distinct operating points per lane
      // without flipping any write verdict.
      const auto h = static_cast<double>((k * 7 + static_cast<std::size_t>(m) * 3) % 11);
      configs[k].vth_shifts["M" + std::to_string(m)] = (h - 5.0) * 2e-3;
    }
  }
  spice::BatchWorkspace workspace;
  BatchReport report;
  report.lanes = lanes;
  {
    const auto run = sram::run_nominal_batch(configs, workspace);
    report.stats = run.results[0].stats();
    report.points = run.results[0].num_points();
  }
  report.ms_per_lane = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      (void)sram::run_nominal_batch(configs, workspace);
    }
    report.ms_per_lane = std::min(
        report.ms_per_lane,
        now_delta_ms(start, reps * static_cast<int>(lanes)));
  }
  return report;
}

sram::ColumnConfig column_config(std::size_t cells) {
  sram::ColumnConfig config;
  config.tech = physics::technology("90nm");
  config.num_cells = cells;
  config.initial_bits.assign(cells, 0);
  config.ops = {sram::ColumnOp::write(0, 1), sram::ColumnOp::read(0),
                sram::ColumnOp::read(cells - 1)};
  return config;
}

/// N-cell column on one pinned engine over a fixed step grid. Rebuilds the
/// circuit per repetition (matching the other benches) but shares the
/// workspace, so the sparse engine's symbolic analysis is amortised the
/// way campaign repetitions amortise it.
ModeReport bench_column(std::size_t cells, spice::SolverKind solver, int reps,
                        int batches) {
  const sram::ColumnConfig config = column_config(cells);
  spice::NewtonWorkspace workspace;

  auto run_once = [&] {
    spice::Circuit circuit;
    (void)sram::build_column(circuit, config);
    spice::TransientOptions options = sram::column_transient_options(config);
    options.solver = solver;
    // Fixed grid: identical accepted-point counts on both engines, so the
    // wall-clock ratio compares equal work (asserted in main).
    options.dt_initial = options.dt_max;
    options.lte_reltol = 1e9;
    options.lte_abstol = 1e9;
    return spice::transient(circuit, options, workspace);
  };

  ModeReport report;
  {
    const auto first = run_once();  // instrumented run + warmup
    report.stats = first.stats();
    report.points = first.num_points();
  }
  report.ms_per_run = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) (void)run_once();
    report.ms_per_run = std::min(report.ms_per_run, now_delta_ms(start, reps));
  }
  return report;
}

// --- Activity-partitioned array section ------------------------------------

/// One activity mode on the shared-bitline column, reported as the two
/// costs a user actually pays: `cold_ms` is a fresh-workspace run — it
/// includes the symbolic analysis, which for the unpartitioned engine is
/// the O(n^2) dense-discovery pass that dominates at 256 cells, and for
/// the Schur fold is the grouped elimination that replaces it — and
/// `steady_ms` is the warm best-of repetition cost with the analysis
/// amortised away.
struct ArrayColumnMode {
  double cold_ms = 0.0;
  double steady_ms = 0.0;
  std::size_t points = 0;
  std::size_t fill = 0;  ///< L+U nonzeros of the live factorization
  spice::SolverStats stats;  ///< cold-run counters
};

ArrayColumnMode bench_array_column(std::size_t cells,
                                   spice::ActivityMode mode, double tol,
                                   int reps, int batches) {
  const sram::ColumnConfig config = column_config(cells);
  spice::NewtonWorkspace workspace;

  auto run_once = [&] {
    spice::Circuit circuit;
    (void)sram::build_column(circuit, config);
    spice::TransientOptions options = sram::column_transient_options(config);
    options.solver = spice::SolverKind::kSparse;
    options.dt_initial = options.dt_max;
    options.lte_reltol = 1e9;
    options.lte_abstol = 1e9;
    options.activity = sram::column_activity(circuit, config, mode, tol);
    return spice::transient(circuit, options, workspace);
  };

  ArrayColumnMode out;
  {
    const auto start = std::chrono::steady_clock::now();
    const auto first = run_once();
    out.cold_ms = now_delta_ms(start, 1);
    out.stats = first.stats();
    out.points = first.num_points();
    out.fill = workspace.lu_fill_nnz();
  }
  out.steady_ms = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) (void)run_once();
    out.steady_ms = std::min(out.steady_ms, now_delta_ms(start, reps));
  }
  return out;
}

/// Full R×C read+write transient with SAMURAI RTN injected into every
/// cell, Schur-partitioned (the only engine that scales to 64×64: the
/// classic symbolic analysis is O(n^2) and refuses n = 7RC + rails).
struct ArrayRtnEntry {
  std::size_t rows = 0, cols = 0;
  double nominal_s = 0.0, generation_s = 0.0, injected_s = 0.0;
  bool nominal_ok = false, rtn_ok = false;
  std::size_t traces = 0;
  double min_margin = 0.0;  ///< worst per-column sense margin under RTN
  spice::SolverStats stats;  ///< injected-transient counters
};

ArrayRtnEntry bench_array_rtn(std::size_t rows, std::size_t cols,
                              spice::ActivityMode mode) {
  sram::Array2dConfig config;
  config.tech = physics::technology("90nm");
  config.rows = rows;
  config.cols = cols;
  config.initial_bits.resize(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      config.initial_bits[r * cols + c] = static_cast<int>((r + c) % 2);
    }
  }
  std::vector<int> word(cols);
  for (std::size_t c = 0; c < cols; ++c) word[c] = static_cast<int>(c % 2);
  config.ops = {sram::ArrayOp::write(0, word), sram::ArrayOp::read(0)};

  // The partition is stored by device name / node id, both deterministic
  // across identical builds, so one partition serves both RTN passes.
  spice::Circuit probe;
  (void)sram::build_array2d(probe, config);
  const auto partition = sram::array2d_activity(probe, config, mode, 1e-4);

  const auto run = sram::run_array2d_rtn(
      config, /*seed=*/97, /*rtn_scale=*/1.0,
      mode == spice::ActivityMode::kOff ? nullptr : &partition);

  ArrayRtnEntry entry;
  entry.rows = rows;
  entry.cols = cols;
  entry.nominal_s = run.nominal_seconds;
  entry.generation_s = run.generation_seconds;
  entry.injected_s = run.injected_seconds;
  entry.nominal_ok = !run.nominal_report.any_error;
  entry.rtn_ok = !run.rtn_report.any_error;
  entry.traces = run.rtn.traces.size();
  entry.min_margin = run.rtn_report.min_sense_margin;
  entry.stats = run.rtn.with_rtn.stats();
  return entry;
}

void print_stats_json(const char* key, const ModeReport& r) {
  std::printf(
      "\"%s\": {\"ms_per_run\": %.4f, \"points\": %zu, "
      "\"newton_iterations\": %llu, \"lu_factorizations\": %llu, "
      "\"lu_solves\": %llu, \"bypass_hits\": %llu, \"device_loads\": %llu, "
      "\"linear_cache_hits\": %llu, \"steps_accepted\": %llu, "
      "\"steps_rejected\": %llu, \"workspace_allocations\": %llu, "
      "\"sp_symbolic_analyses\": %llu, \"sp_numeric_refactors\": %llu, "
      "\"sp_solves\": %llu, \"ap_elided_loads\": %llu, "
      "\"ap_partial_refactors\": %llu, \"ap_rows_skipped\": %llu, "
      "\"ap_folded_cells\": %llu}",
      key, r.ms_per_run, r.points,
      static_cast<unsigned long long>(r.stats.newton_iterations),
      static_cast<unsigned long long>(r.stats.lu_factorizations),
      static_cast<unsigned long long>(r.stats.lu_solves),
      static_cast<unsigned long long>(r.stats.bypass_hits),
      static_cast<unsigned long long>(r.stats.device_loads),
      static_cast<unsigned long long>(r.stats.linear_cache_hits),
      static_cast<unsigned long long>(r.stats.steps_accepted),
      static_cast<unsigned long long>(r.stats.steps_rejected),
      static_cast<unsigned long long>(r.stats.workspace_allocations),
      static_cast<unsigned long long>(r.stats.sp_symbolic_analyses),
      static_cast<unsigned long long>(r.stats.sp_numeric_refactors),
      static_cast<unsigned long long>(r.stats.sp_solves),
      static_cast<unsigned long long>(r.stats.ap_elided_loads),
      static_cast<unsigned long long>(r.stats.ap_partial_refactors),
      static_cast<unsigned long long>(r.stats.ap_rows_skipped),
      static_cast<unsigned long long>(r.stats.ap_folded_cells));
}

void print_array_column_json(const char* key, const ArrayColumnMode& m) {
  std::printf(
      "\"%s\": {\"cold_ms\": %.2f, \"steady_ms\": %.3f, \"points\": %zu, "
      "\"lu_fill_nnz\": %zu, \"newton_iterations\": %llu, "
      "\"sp_numeric_refactors\": %llu, \"ap_elided_loads\": %llu, "
      "\"ap_partial_refactors\": %llu, \"ap_rows_skipped\": %llu, "
      "\"ap_folded_cells\": %llu}",
      key, m.cold_ms, m.steady_ms, m.points, m.fill,
      static_cast<unsigned long long>(m.stats.newton_iterations),
      static_cast<unsigned long long>(m.stats.sp_numeric_refactors),
      static_cast<unsigned long long>(m.stats.ap_elided_loads),
      static_cast<unsigned long long>(m.stats.ap_partial_refactors),
      static_cast<unsigned long long>(m.stats.ap_rows_skipped),
      static_cast<unsigned long long>(m.stats.ap_folded_cells));
}

}  // namespace

void usage() {
  std::fprintf(stderr,
               "usage: bench_spice_transient [--quick] [--reps N] "
               "[--coupled-reps N] [--rows R] [--cols C] "
               "[--activity off|elide|schur]\n"
               "  --rows/--cols size the RTN array section (positive); "
               "--activity picks its partition mode\n");
}

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  int reps = 0;
  int coupled_reps = 0;
  std::size_t array_rows = 0;
  std::size_t array_cols = 0;
  spice::ActivityMode array_mode = spice::ActivityMode::kSchur;
  try {
    reps = static_cast<int>(cli.get_count("reps", quick ? 20 : 200));
    coupled_reps =
        static_cast<int>(cli.get_count("coupled-reps", quick ? 2 : 4));
    array_rows =
        static_cast<std::size_t>(cli.get_count("rows", quick ? 16 : 64));
    array_cols =
        static_cast<std::size_t>(cli.get_count("cols", quick ? 16 : 64));
    array_mode = spice::activity_mode_from_string(
        cli.get_string("activity", "schur"));
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "bench_spice_transient: %s\n", err.what());
    usage();
    return 2;
  }
  if (array_mode != spice::ActivityMode::kSchur &&
      array_rows * array_cols > 512) {
    std::fprintf(stderr,
                 "bench_spice_transient: --activity %s refuses arrays over "
                 "512 cells (without the Schur fold the symbolic analysis "
                 "runs the O(n^2) classic discovery; use schur)\n",
                 spice::activity_mode_to_string(array_mode).c_str());
    usage();
    return 2;
  }
  const int batches = quick ? 2 : 5;

  std::printf("=== SPICE transient hot path (6T write, 65nm, pattern 101) "
              "===\n");
  std::printf("write6t: %d reps x %d batches; coupled: %d reps\n\n", reps,
              batches, coupled_reps);

  const ModeReport w_fast = bench_write6t(/*fast=*/true, reps, batches);
  const ModeReport w_slow = bench_write6t(/*fast=*/false, reps, batches);
  ModeReport c_fast, c_slow;
  // Many short alternating batches beat few long ones here: the gated
  // ratio is ~1.04, and min-of-batches only converges for both sides once
  // each has sampled the machine's quiet periods in both run orders.
  bench_coupled_pair(coupled_reps, quick ? 2 : 12, c_fast, c_slow);

  const double w_speedup = w_slow.ms_per_run / w_fast.ms_per_run;
  const double c_speedup = c_slow.ms_per_run / c_fast.ms_per_run;
  std::printf("write6t: fast %.3f ms/run (%zu pts), reference %.3f ms/run "
              "-> speedup %.2fx\n",
              w_fast.ms_per_run, w_fast.points, w_slow.ms_per_run, w_speedup);
  std::printf("coupled: fast %.3f ms/run (%zu pts), reference %.3f ms/run "
              "-> speedup %.2fx\n\n",
              c_fast.ms_per_run, c_fast.points, c_slow.ms_per_run, c_speedup);

  // --- Batched fixed-grid campaign step vs the adaptive scalar run --------
  const std::size_t bt_lanes = quick ? 8 : 16;
  // Floor of 8 reps: a batched call finishes in a few ms, so reps/lanes
  // alone (2 in quick mode) times too small a window to beat timer noise —
  // the gate below would flake on an otherwise healthy build.
  const int bt_reps = std::max(8, reps / static_cast<int>(bt_lanes));
  const BatchReport bt = bench_write6t_batched(bt_lanes, bt_reps, batches);
  const double bt_speedup = w_fast.ms_per_run / bt.ms_per_lane;
  std::printf("write6t batched: %zu lanes, %.4f ms/lane (%zu pts) -> %.2fx "
              "vs adaptive scalar\n\n",
              bt.lanes, bt.ms_per_lane, bt.points, bt_speedup);

  // --- Sparse vs dense over the shared-bitline column ---------------------
  const std::vector<std::size_t> column_sizes =
      quick ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{8, 32, 64};
  const int col_batches = quick ? 1 : 2;
  struct ColumnEntry {
    std::size_t cells = 0;
    ModeReport dense, sparse;
    double speedup = 0.0;
  };
  std::vector<ColumnEntry> columns;
  for (const std::size_t cells : column_sizes) {
    ColumnEntry entry;
    entry.cells = cells;
    // Dense factorization dominates quickly; keep its rep count small.
    const int col_reps = quick ? 1 : (cells >= 32 ? 2 : 6);
    entry.dense = bench_column(cells, spice::SolverKind::kDense, col_reps,
                               col_batches);
    entry.sparse = bench_column(cells, spice::SolverKind::kSparse, col_reps,
                                col_batches);
    entry.speedup = entry.dense.ms_per_run / entry.sparse.ms_per_run;
    std::printf("column N=%-2zu (n=%zu): dense %.3f ms/run, sparse %.3f "
                "ms/run (%zu pts) -> speedup %.2fx\n",
                cells, 7 * cells + 10, entry.dense.ms_per_run,
                entry.sparse.ms_per_run, entry.sparse.points, entry.speedup);
    columns.push_back(entry);
  }
  std::printf("\n");

  // --- Activity-partitioned full-array engine -----------------------------
  // 256-cell column (64 in quick mode), all three activity modes on the
  // same fixed grid. Tolerance 1e-4: tight enough that the waveforms stay
  // within sense accuracy, loose enough that quiescent devices do not
  // chatter across the replay-ball boundary (see DESIGN.md §15).
  const std::size_t ap_cells = quick ? 64 : 256;
  const double ap_tol = 1e-4;
  const int ap_reps = quick ? 2 : 3;
  const int ap_batches = quick ? 1 : 2;
  const ArrayColumnMode ap_off = bench_array_column(
      ap_cells, spice::ActivityMode::kOff, 0.0, ap_reps, ap_batches);
  const ArrayColumnMode ap_elide = bench_array_column(
      ap_cells, spice::ActivityMode::kElide, ap_tol, ap_reps, ap_batches);
  const ArrayColumnMode ap_schur = bench_array_column(
      ap_cells, spice::ActivityMode::kSchur, ap_tol, ap_reps, ap_batches);
  const double ap_cold_speedup = ap_off.cold_ms / ap_schur.cold_ms;
  const double ap_steady_speedup = ap_off.steady_ms / ap_elide.steady_ms;
  std::printf("column N=%zu activity: off cold %.0f ms / steady %.1f ms, "
              "elide cold %.0f / steady %.1f, schur cold %.0f / steady %.1f\n"
              "  -> schur cold speedup %.1fx (grouped vs classic symbolic "
              "analysis), elide steady speedup %.2fx\n",
              ap_cells, ap_off.cold_ms, ap_off.steady_ms, ap_elide.cold_ms,
              ap_elide.steady_ms, ap_schur.cold_ms, ap_schur.steady_ms,
              ap_cold_speedup, ap_steady_speedup);

  // Full R×C array with per-cell RTN: the tentpole workload.
  const ArrayRtnEntry rtn = bench_array_rtn(array_rows, array_cols,
                                            array_mode);
  std::printf("array %zux%zu (%s) with RTN in all %zu cells: nominal %.2f s, "
              "generation %.2f s, injected %.2f s; worst column margin "
              "%.3f V\n\n",
              rtn.rows, rtn.cols,
              spice::activity_mode_to_string(array_mode).c_str(), rtn.traces,
              rtn.nominal_s, rtn.generation_s, rtn.injected_s,
              rtn.min_margin);

  std::printf("{\"bench\": \"spice_transient\", \"quick\": %s, "
              "\"write6t\": {\"speedup\": %.3f, ",
              quick ? "true" : "false", w_speedup);
  print_stats_json("fast", w_fast);
  std::printf(", ");
  print_stats_json("reference", w_slow);
  std::printf("}, \"coupled\": {\"speedup\": %.3f, \"ledger_no_loss\": %s, ",
              c_speedup,
              (c_fast.stats.newton_iterations * 100 <=
                   c_slow.stats.newton_iterations * 102 &&
               c_fast.stats.lu_factorizations <
                   c_slow.stats.lu_factorizations)
                  ? "true"
                  : "false");
  print_stats_json("fast", c_fast);
  std::printf(", ");
  print_stats_json("reference", c_slow);
  std::printf("}, \"batched\": {\"lanes\": %zu, \"ms_per_lane\": %.4f, "
              "\"speedup_vs_adaptive\": %.3f, \"points\": %zu, "
              "\"bt_batches\": %llu, \"bt_lanes\": %llu, \"bt_steps\": %llu}",
              bt.lanes, bt.ms_per_lane, bt_speedup, bt.points,
              static_cast<unsigned long long>(bt.stats.bt_batches),
              static_cast<unsigned long long>(bt.stats.bt_lanes),
              static_cast<unsigned long long>(bt.stats.bt_steps));
  std::printf(", \"columns\": [");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const auto& entry = columns[i];
    std::printf("%s{\"cells\": %zu, \"speedup\": %.3f, ", i ? ", " : "",
                entry.cells, entry.speedup);
    print_stats_json("dense", entry.dense);
    std::printf(", ");
    print_stats_json("sparse", entry.sparse);
    std::printf("}");
  }
  std::printf("], \"arrays\": {\"column\": {\"cells\": %zu, "
              "\"tolerance\": %.0e, \"cold_speedup_schur\": %.2f, "
              "\"steady_speedup_elide\": %.3f, ",
              ap_cells, ap_tol, ap_cold_speedup, ap_steady_speedup);
  print_array_column_json("off", ap_off);
  std::printf(", ");
  print_array_column_json("elide", ap_elide);
  std::printf(", ");
  print_array_column_json("schur", ap_schur);
  std::printf("}, \"array2d\": {\"rows\": %zu, \"cols\": %zu, "
              "\"activity\": \"%s\", \"traces\": %zu, "
              "\"nominal_seconds\": %.3f, \"generation_seconds\": %.3f, "
              "\"injected_seconds\": %.3f, \"nominal_ok\": %s, "
              "\"rtn_ok\": %s, \"min_sense_margin\": %.4f, "
              "\"newton_iterations\": %llu, \"ap_elided_loads\": %llu, "
              "\"ap_rows_skipped\": %llu, \"ap_folded_cells\": %llu}}}\n",
              rtn.rows, rtn.cols,
              spice::activity_mode_to_string(array_mode).c_str(), rtn.traces,
              rtn.nominal_s, rtn.generation_s, rtn.injected_s,
              rtn.nominal_ok ? "true" : "false", rtn.rtn_ok ? "true" : "false",
              rtn.min_margin,
              static_cast<unsigned long long>(rtn.stats.newton_iterations),
              static_cast<unsigned long long>(rtn.stats.ap_elided_loads),
              static_cast<unsigned long long>(rtn.stats.ap_rows_skipped),
              static_cast<unsigned long long>(rtn.stats.ap_folded_cells));

  // Contract checks (these make the ctest registration meaningful).
  // 1. The steady-state repetition loop must be allocation-free.
  if (w_fast.realloc_after_first != 0 || w_slow.realloc_after_first != 0) {
    std::printf("\nFAIL: workspace reallocated in steady state (fast %llu, "
                "reference %llu)\n",
                static_cast<unsigned long long>(w_fast.realloc_after_first),
                static_cast<unsigned long long>(w_slow.realloc_after_first));
    return 1;
  }
  // 2. The timed column runs must do identical work on both engines, and
  //    the sparse share of that work must be total (above the threshold)
  //    or zero (dense pin).
  for (const auto& entry : columns) {
    if (entry.dense.points != entry.sparse.points ||
        entry.dense.stats.steps_accepted != entry.sparse.stats.steps_accepted) {
      std::printf("\nFAIL: column N=%zu engines accepted different step "
                  "counts (dense %zu, sparse %zu)\n",
                  entry.cells, entry.dense.points, entry.sparse.points);
      return 1;
    }
    if (entry.dense.stats.sp_solves != 0 ||
        entry.sparse.stats.sp_solves != entry.sparse.stats.lu_solves) {
      std::printf("\nFAIL: column N=%zu ran on the wrong engine\n",
                  entry.cells);
      return 1;
    }
  }
  // 3. The 64-cell column must be at least 3x faster sparse — the scaling
  //    claim of the sparse engine, gated in quick mode too (the margin is
  //    large enough to be robust at one repetition).
  for (const auto& entry : columns) {
    if (entry.cells >= 64 && entry.speedup < 3.0) {
      std::printf("\nFAIL: 64-cell column sparse speedup %.2fx < 3.0x\n",
                  entry.speedup);
      return 1;
    }
  }
  // 4. The batched campaign step must amortise to at least 3.5x the
  //    adaptive scalar per-run cost. The floor was 4x when the scalar
  //    numerator cost ~1.5 ms; the scalar fast path has since gotten ~30%
  //    faster while ms_per_lane improved ~17%, so the cross-engine ratio
  //    legitimately shrank — both absolute costs are monitored in
  //    BENCH_spice_transient.json. Quick mode keeps a floor but relaxes
  //    it: with one-digit rep counts the adaptive numerator is the
  //    noisier side of the ratio.
  const double bt_floor = quick ? 3.0 : 3.5;
  if (quick) {
    std::printf("note: batched gate relaxed to %.1fx in quick mode\n",
                bt_floor);
  }
  if (bt_speedup < bt_floor) {
    std::printf("\nFAIL: batched write6t %.2fx < %.1fx vs adaptive scalar\n",
                bt_speedup, bt_floor);
    return 1;
  }
  // 5. The coupled workload must not regress under the fast path. The
  //    pair is dominated by MOSFET evaluation and the per-step trap-chain
  //    advance: the whole factorization budget the bypass can save is
  //    ~2-3% of wall, which sits inside this machine's timer noise even on
  //    interleaved minima (the ratio of min-of-24 batches spreads
  //    0.97-1.02 across trials of an identical binary), so a wall-clock
  //    >= 1.0x gate would fail a healthy build on a coin flip. Gate on
  //    the solver ledger instead, which is deterministic: a losing bypass
  //    means stale factors stall contraction and the fast path pays extra
  //    Newton iterations against the force-refactorize reference (until
  //    the residual-history judge shuts it off), and the bypass must
  //    actually bank factorization savings to exist at all. Wall speedup
  //    stays in the JSON as telemetry, guarded only against gross
  //    regressions no ledger column can explain.
  const bool pays_iterations = c_fast.stats.newton_iterations * 100 >
                               c_slow.stats.newton_iterations * 102;
  const bool banks_factors =
      c_fast.stats.lu_factorizations < c_slow.stats.lu_factorizations;
  if (pays_iterations || !banks_factors) {
    std::printf("\nFAIL: coupled fast path loses on the ledger: "
                "%llu vs %llu Newton iterations, "
                "%llu vs %llu factorizations\n",
                static_cast<unsigned long long>(
                    c_fast.stats.newton_iterations),
                static_cast<unsigned long long>(
                    c_slow.stats.newton_iterations),
                static_cast<unsigned long long>(
                    c_fast.stats.lu_factorizations),
                static_cast<unsigned long long>(
                    c_slow.stats.lu_factorizations));
    return 1;
  }
  if (!quick && c_speedup < 0.90) {
    std::printf("\nFAIL: coupled fast path %.3fx < 0.90x vs reference "
                "(gross wall regression)\n",
                c_speedup);
    return 1;
  }
  // 6. Activity-partitioned column: all three modes solve the same fixed
  //    grid, the Schur fold's grouped symbolic analysis must beat the
  //    classic dense-discovery pass by 5x end-to-end on a cold start, and
  //    quiescent-cell elision must not lose to the unpartitioned engine in
  //    steady state. The cold gate is the ISSUE's ">=5x over the PR 5
  //    sparse baseline" claim: the baseline's first contact with a 256-cell
  //    pattern pays the O(n^2) analysis the partition removes.
  if (ap_off.points != ap_elide.points || ap_off.points != ap_schur.points) {
    std::printf("\nFAIL: activity modes accepted different step counts "
                "(%zu / %zu / %zu)\n",
                ap_off.points, ap_elide.points, ap_schur.points);
    return 1;
  }
  const double ap_cold_floor = quick ? 1.5 : 5.0;
  if (ap_cold_speedup < ap_cold_floor) {
    std::printf("\nFAIL: %zu-cell column schur cold speedup %.2fx < %.1fx\n",
                ap_cells, ap_cold_speedup, ap_cold_floor);
    return 1;
  }
  if (!quick && ap_steady_speedup < 1.0) {
    std::printf("\nFAIL: %zu-cell column elide steady speedup %.2fx < 1.0x\n",
                ap_cells, ap_steady_speedup);
    return 1;
  }
  if (ap_elide.stats.ap_elided_loads == 0 ||
      ap_schur.stats.ap_folded_cells == 0 ||
      ap_schur.stats.ap_rows_skipped == 0) {
    std::printf("\nFAIL: activity counters flat (elided %llu, folded %llu, "
                "rows skipped %llu)\n",
                static_cast<unsigned long long>(
                    ap_elide.stats.ap_elided_loads),
                static_cast<unsigned long long>(
                    ap_schur.stats.ap_folded_cells),
                static_cast<unsigned long long>(
                    ap_schur.stats.ap_rows_skipped));
    return 1;
  }
  // 7. The full-array RTN transient: both passes must sense correctly and
  //    the injected (partitioned) solve must land in single-digit seconds.
  if (!rtn.nominal_ok || !rtn.rtn_ok || rtn.traces != rtn.rows * rtn.cols) {
    std::printf("\nFAIL: array RTN run errored (nominal %d, rtn %d, "
                "traces %zu of %zu)\n",
                rtn.nominal_ok, rtn.rtn_ok, rtn.traces,
                rtn.rows * rtn.cols);
    return 1;
  }
  if (rtn.injected_s >= 10.0) {
    std::printf("\nFAIL: array %zux%zu injected transient %.2f s >= 10 s\n",
                rtn.rows, rtn.cols, rtn.injected_s);
    return 1;
  }
  return 0;
}
