// Transient hot-path microbenchmark: the 6T write transient and the
// bi-directionally coupled cell, each run twice — once on the fast path
// (workspace reuse + linear-stamp cache + modified-Newton LU bypass) and
// once with every cache disabled (force-refactorize reference). The two
// paths agree within Newton tolerance (asserted by the fast-path regression
// test); the wall-clock ratio is the speedup the fast path buys.
//
// A second section scales the workload: the N-cell shared-bitline column
// (N in {8, 32, 64}) timed on the dense and the sparse MNA engine over a
// fixed step grid (LTE control disabled), so both engines do provably
// identical work — the accepted-point counts are asserted equal — and the
// ratio isolates the linear solver. Dense factorization is O(n^3) in the
// n = 7N + 10 unknowns while the sparse path tracks the near-constant
// per-row fill of the column topology, so the ratio must grow with N; the
// bench fails if the 64-cell column is not at least 3x faster sparse.
//
// Emits one machine-readable JSON line (scripted against
// BENCH_spice_transient.json).
//
// `--quick` shrinks the repetition counts and column sizes for use as a
// smoke test under `ctest -L perf`; `--reps N` overrides the
// write-transient repetitions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "sram/column.hpp"
#include "sram/coupled.hpp"
#include "sram/methodology.hpp"
#include "util/cli.hpp"

using namespace samurai;

namespace {

sram::MethodologyConfig base_config(bool fast) {
  sram::MethodologyConfig config;
  config.tech = physics::technology("65nm");
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0, 1});
  // The reference path re-stamps every device and refactors on every
  // Newton iteration, in the transient and in its initial DC solve alike.
  config.transient.newton.reuse_lu = fast;
  config.transient.newton.cache_linear_stamps = fast;
  config.transient.dc.newton.reuse_lu = fast;
  config.transient.dc.newton.cache_linear_stamps = fast;
  return config;
}

struct ModeReport {
  double ms_per_run = 0.0;        ///< best-of-batches mean wall per run
  std::size_t points = 0;         ///< solution points of one run
  spice::SolverStats stats;       ///< solver counters of one run
  std::uint64_t realloc_after_first = 0;  ///< workspace allocs past run 1
};

double now_delta_ms(std::chrono::steady_clock::time_point start, int reps) {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return wall / reps * 1e3;
}

/// 6T write transient via run_nominal, sharing one Newton workspace across
/// all repetitions (the intended steady-state usage pattern).
ModeReport bench_write6t(bool fast, int reps, int batches) {
  const auto config = base_config(fast);
  spice::NewtonWorkspace workspace;
  ModeReport report;

  // Instrumented first run: per-run counters + the one expected allocation.
  {
    const auto run = sram::run_nominal(config, workspace);
    report.stats = run.result.stats();
    report.points = run.result.num_points();
  }
  // Steady state: every further repetition must reuse the buffers.
  const auto steady_before = spice::solver_stats_snapshot();
  (void)sram::run_nominal(config, workspace);  // warmup
  report.ms_per_run = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) (void)sram::run_nominal(config, workspace);
    report.ms_per_run = std::min(report.ms_per_run, now_delta_ms(start, reps));
  }
  report.realloc_after_first =
      spice::solver_stats_snapshot().since(steady_before).workspace_allocations;
  return report;
}

/// Coupled cell (per-step trap-chain advance through on_step callbacks).
ModeReport bench_coupled(bool fast, int reps, int batches) {
  auto config = base_config(fast);
  config.rtn_scale = 30.0;
  ModeReport report;
  {
    const auto run = sram::run_coupled(config);
    report.stats = run.transient.stats();
    report.points = run.transient.num_points();
  }
  report.ms_per_run = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) (void)sram::run_coupled(config);
    report.ms_per_run = std::min(report.ms_per_run, now_delta_ms(start, reps));
  }
  return report;
}

/// K-lane batched 6T write campaign step: the same cell with per-lane
/// threshold spreads, marched through one lock-step fixed-grid transient
/// per call. ms_per_lane is the per-sample cost a batched campaign pays,
/// directly comparable with bench_write6t's adaptive ms_per_run.
struct BatchReport {
  std::size_t lanes = 0;
  double ms_per_lane = 0.0;
  std::size_t points = 0;
  spice::SolverStats stats;  ///< lane-0 delta of the instrumented call
};

BatchReport bench_write6t_batched(std::size_t lanes, int reps, int batches) {
  std::vector<sram::MethodologyConfig> configs(lanes, base_config(true));
  for (std::size_t k = 0; k < lanes; ++k) {
    for (int m = 1; m <= 6; ++m) {
      // Deterministic +-10 mV spread: distinct operating points per lane
      // without flipping any write verdict.
      const auto h = static_cast<double>((k * 7 + static_cast<std::size_t>(m) * 3) % 11);
      configs[k].vth_shifts["M" + std::to_string(m)] = (h - 5.0) * 2e-3;
    }
  }
  spice::BatchWorkspace workspace;
  BatchReport report;
  report.lanes = lanes;
  {
    const auto run = sram::run_nominal_batch(configs, workspace);
    report.stats = run.results[0].stats();
    report.points = run.results[0].num_points();
  }
  report.ms_per_lane = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      (void)sram::run_nominal_batch(configs, workspace);
    }
    report.ms_per_lane = std::min(
        report.ms_per_lane,
        now_delta_ms(start, reps * static_cast<int>(lanes)));
  }
  return report;
}

sram::ColumnConfig column_config(std::size_t cells) {
  sram::ColumnConfig config;
  config.tech = physics::technology("90nm");
  config.num_cells = cells;
  config.initial_bits.assign(cells, 0);
  config.ops = {sram::ColumnOp::write(0, 1), sram::ColumnOp::read(0),
                sram::ColumnOp::read(cells - 1)};
  return config;
}

/// N-cell column on one pinned engine over a fixed step grid. Rebuilds the
/// circuit per repetition (matching the other benches) but shares the
/// workspace, so the sparse engine's symbolic analysis is amortised the
/// way campaign repetitions amortise it.
ModeReport bench_column(std::size_t cells, spice::SolverKind solver, int reps,
                        int batches) {
  const sram::ColumnConfig config = column_config(cells);
  spice::NewtonWorkspace workspace;

  auto run_once = [&] {
    spice::Circuit circuit;
    (void)sram::build_column(circuit, config);
    spice::TransientOptions options = sram::column_transient_options(config);
    options.solver = solver;
    // Fixed grid: identical accepted-point counts on both engines, so the
    // wall-clock ratio compares equal work (asserted in main).
    options.dt_initial = options.dt_max;
    options.lte_reltol = 1e9;
    options.lte_abstol = 1e9;
    return spice::transient(circuit, options, workspace);
  };

  ModeReport report;
  {
    const auto first = run_once();  // instrumented run + warmup
    report.stats = first.stats();
    report.points = first.num_points();
  }
  report.ms_per_run = 1e300;
  for (int b = 0; b < batches; ++b) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) (void)run_once();
    report.ms_per_run = std::min(report.ms_per_run, now_delta_ms(start, reps));
  }
  return report;
}

void print_stats_json(const char* key, const ModeReport& r) {
  std::printf(
      "\"%s\": {\"ms_per_run\": %.4f, \"points\": %zu, "
      "\"newton_iterations\": %llu, \"lu_factorizations\": %llu, "
      "\"lu_solves\": %llu, \"bypass_hits\": %llu, \"device_loads\": %llu, "
      "\"linear_cache_hits\": %llu, \"steps_accepted\": %llu, "
      "\"steps_rejected\": %llu, \"workspace_allocations\": %llu, "
      "\"sp_symbolic_analyses\": %llu, \"sp_numeric_refactors\": %llu, "
      "\"sp_solves\": %llu}",
      key, r.ms_per_run, r.points,
      static_cast<unsigned long long>(r.stats.newton_iterations),
      static_cast<unsigned long long>(r.stats.lu_factorizations),
      static_cast<unsigned long long>(r.stats.lu_solves),
      static_cast<unsigned long long>(r.stats.bypass_hits),
      static_cast<unsigned long long>(r.stats.device_loads),
      static_cast<unsigned long long>(r.stats.linear_cache_hits),
      static_cast<unsigned long long>(r.stats.steps_accepted),
      static_cast<unsigned long long>(r.stats.steps_rejected),
      static_cast<unsigned long long>(r.stats.workspace_allocations),
      static_cast<unsigned long long>(r.stats.sp_symbolic_analyses),
      static_cast<unsigned long long>(r.stats.sp_numeric_refactors),
      static_cast<unsigned long long>(r.stats.sp_solves));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const bool quick = cli.has("quick");
  int reps = 0;
  int coupled_reps = 0;
  try {
    reps = static_cast<int>(cli.get_count("reps", quick ? 20 : 200));
    coupled_reps =
        static_cast<int>(cli.get_count("coupled-reps", quick ? 2 : 10));
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "bench_spice_transient: %s\n", err.what());
    return 2;
  }
  const int batches = quick ? 2 : 5;

  std::printf("=== SPICE transient hot path (6T write, 65nm, pattern 101) "
              "===\n");
  std::printf("write6t: %d reps x %d batches; coupled: %d reps\n\n", reps,
              batches, coupled_reps);

  const ModeReport w_fast = bench_write6t(/*fast=*/true, reps, batches);
  const ModeReport w_slow = bench_write6t(/*fast=*/false, reps, batches);
  const ModeReport c_fast = bench_coupled(/*fast=*/true, coupled_reps, 1);
  const ModeReport c_slow = bench_coupled(/*fast=*/false, coupled_reps, 1);

  const double w_speedup = w_slow.ms_per_run / w_fast.ms_per_run;
  const double c_speedup = c_slow.ms_per_run / c_fast.ms_per_run;
  std::printf("write6t: fast %.3f ms/run (%zu pts), reference %.3f ms/run "
              "-> speedup %.2fx\n",
              w_fast.ms_per_run, w_fast.points, w_slow.ms_per_run, w_speedup);
  std::printf("coupled: fast %.3f ms/run (%zu pts), reference %.3f ms/run "
              "-> speedup %.2fx\n\n",
              c_fast.ms_per_run, c_fast.points, c_slow.ms_per_run, c_speedup);

  // --- Batched fixed-grid campaign step vs the adaptive scalar run --------
  const std::size_t bt_lanes = quick ? 8 : 16;
  const int bt_reps = std::max(1, reps / static_cast<int>(bt_lanes));
  const BatchReport bt = bench_write6t_batched(bt_lanes, bt_reps, batches);
  const double bt_speedup = w_fast.ms_per_run / bt.ms_per_lane;
  std::printf("write6t batched: %zu lanes, %.4f ms/lane (%zu pts) -> %.2fx "
              "vs adaptive scalar\n\n",
              bt.lanes, bt.ms_per_lane, bt.points, bt_speedup);

  // --- Sparse vs dense over the shared-bitline column ---------------------
  const std::vector<std::size_t> column_sizes =
      quick ? std::vector<std::size_t>{8, 64}
            : std::vector<std::size_t>{8, 32, 64};
  const int col_batches = quick ? 1 : 2;
  struct ColumnEntry {
    std::size_t cells = 0;
    ModeReport dense, sparse;
    double speedup = 0.0;
  };
  std::vector<ColumnEntry> columns;
  for (const std::size_t cells : column_sizes) {
    ColumnEntry entry;
    entry.cells = cells;
    // Dense factorization dominates quickly; keep its rep count small.
    const int col_reps = quick ? 1 : (cells >= 32 ? 2 : 6);
    entry.dense = bench_column(cells, spice::SolverKind::kDense, col_reps,
                               col_batches);
    entry.sparse = bench_column(cells, spice::SolverKind::kSparse, col_reps,
                                col_batches);
    entry.speedup = entry.dense.ms_per_run / entry.sparse.ms_per_run;
    std::printf("column N=%-2zu (n=%zu): dense %.3f ms/run, sparse %.3f "
                "ms/run (%zu pts) -> speedup %.2fx\n",
                cells, 7 * cells + 10, entry.dense.ms_per_run,
                entry.sparse.ms_per_run, entry.sparse.points, entry.speedup);
    columns.push_back(entry);
  }
  std::printf("\n");

  std::printf("{\"bench\": \"spice_transient\", \"quick\": %s, "
              "\"write6t\": {\"speedup\": %.3f, ",
              quick ? "true" : "false", w_speedup);
  print_stats_json("fast", w_fast);
  std::printf(", ");
  print_stats_json("reference", w_slow);
  std::printf("}, \"coupled\": {\"speedup\": %.3f, ", c_speedup);
  print_stats_json("fast", c_fast);
  std::printf(", ");
  print_stats_json("reference", c_slow);
  std::printf("}, \"batched\": {\"lanes\": %zu, \"ms_per_lane\": %.4f, "
              "\"speedup_vs_adaptive\": %.3f, \"points\": %zu, "
              "\"bt_batches\": %llu, \"bt_lanes\": %llu, \"bt_steps\": %llu}",
              bt.lanes, bt.ms_per_lane, bt_speedup, bt.points,
              static_cast<unsigned long long>(bt.stats.bt_batches),
              static_cast<unsigned long long>(bt.stats.bt_lanes),
              static_cast<unsigned long long>(bt.stats.bt_steps));
  std::printf(", \"columns\": [");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const auto& entry = columns[i];
    std::printf("%s{\"cells\": %zu, \"speedup\": %.3f, ", i ? ", " : "",
                entry.cells, entry.speedup);
    print_stats_json("dense", entry.dense);
    std::printf(", ");
    print_stats_json("sparse", entry.sparse);
    std::printf("}");
  }
  std::printf("]}\n");

  // Contract checks (these make the ctest registration meaningful).
  // 1. The steady-state repetition loop must be allocation-free.
  if (w_fast.realloc_after_first != 0 || w_slow.realloc_after_first != 0) {
    std::printf("\nFAIL: workspace reallocated in steady state (fast %llu, "
                "reference %llu)\n",
                static_cast<unsigned long long>(w_fast.realloc_after_first),
                static_cast<unsigned long long>(w_slow.realloc_after_first));
    return 1;
  }
  // 2. The timed column runs must do identical work on both engines, and
  //    the sparse share of that work must be total (above the threshold)
  //    or zero (dense pin).
  for (const auto& entry : columns) {
    if (entry.dense.points != entry.sparse.points ||
        entry.dense.stats.steps_accepted != entry.sparse.stats.steps_accepted) {
      std::printf("\nFAIL: column N=%zu engines accepted different step "
                  "counts (dense %zu, sparse %zu)\n",
                  entry.cells, entry.dense.points, entry.sparse.points);
      return 1;
    }
    if (entry.dense.stats.sp_solves != 0 ||
        entry.sparse.stats.sp_solves != entry.sparse.stats.lu_solves) {
      std::printf("\nFAIL: column N=%zu ran on the wrong engine\n",
                  entry.cells);
      return 1;
    }
  }
  // 3. The 64-cell column must be at least 3x faster sparse — the scaling
  //    claim of the sparse engine, gated in quick mode too (the margin is
  //    large enough to be robust at one repetition).
  for (const auto& entry : columns) {
    if (entry.cells >= 64 && entry.speedup < 3.0) {
      std::printf("\nFAIL: 64-cell column sparse speedup %.2fx < 3.0x\n",
                  entry.speedup);
      return 1;
    }
  }
  // 4. The batched campaign step must amortise to at least 4x the adaptive
  //    scalar per-run cost (the design target of the lock-step engine).
  //    Quick mode keeps a floor but relaxes it: with one-digit rep counts
  //    the adaptive numerator is the noisier side of the ratio.
  const double bt_floor = quick ? 3.0 : 4.0;
  if (quick) {
    std::printf("note: batched gate relaxed to %.1fx in quick mode\n",
                bt_floor);
  }
  if (bt_speedup < bt_floor) {
    std::printf("\nFAIL: batched write6t %.2fx < %.1fx vs adaptive scalar\n",
                bt_speedup, bt_floor);
    return 1;
  }
  return 0;
}
