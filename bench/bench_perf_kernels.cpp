// Google-benchmark microbenchmarks for the library's hot kernels:
// uniformisation event generation, trap physics evaluation, FFT/PSD, the
// MNA transient and full SRAM-cell runs. These quantify the efficiency
// claims (uniformisation cost scales with Λ·T; SPICE integration is not
// the bottleneck the paper's ref. [10] suffers from).
#include <benchmark/benchmark.h>

#include "baseline/gillespie.hpp"
#include "baseline/ye_two_stage.hpp"
#include "core/propensity.hpp"
#include "core/rtn_generator.hpp"
#include "core/uniformisation.hpp"
#include "physics/srh_model.hpp"
#include "physics/surface_potential.hpp"
#include "physics/technology.hpp"
#include "physics/trap_profile.hpp"
#include "signal/fft.hpp"
#include "signal/spectral.hpp"
#include "sram/array.hpp"
#include "sram/importance.hpp"
#include "sram/methodology.hpp"
#include "spice/analysis.hpp"
#include "spice/devices.hpp"
#include "util/rng.hpp"

using namespace samurai;

namespace {

void BM_RngU64(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngU64);

void BM_RngExponential(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.exponential(3.0));
}
BENCHMARK(BM_RngExponential);

void BM_SurfacePotentialSolve(benchmark::State& state) {
  const auto tech = physics::technology("90nm");
  const physics::SurfacePotentialSolver solver(tech);
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve_psi_s(v));
    v = v > 1.2 ? 0.0 : v + 0.01;
  }
}
BENCHMARK(BM_SurfacePotentialSolve);

void BM_SrhPropensities(benchmark::State& state) {
  const auto tech = physics::technology("90nm");
  const physics::SrhModel model(tech);
  const physics::Trap trap{0.3 * tech.t_ox, 0.6, physics::TrapState::kEmpty};
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.propensities(trap, v));
    v = v > 1.2 ? 0.0 : v + 0.01;
  }
}
BENCHMARK(BM_SrhPropensities);

void BM_MosEvaluate(benchmark::State& state) {
  const auto tech = physics::technology("90nm");
  const physics::MosDevice device(tech, physics::MosType::kNmos,
                                  {220e-9, 90e-9});
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.evaluate(v, 1.0));
    v = v > 1.2 ? 0.0 : v + 0.01;
  }
}
BENCHMARK(BM_MosEvaluate);

void BM_UniformisationPerCandidate(benchmark::State& state) {
  // Measures the per-candidate-event cost of Algorithm 1.
  const core::ConstantPropensity propensity(1e6, 1e6);
  util::Rng rng(2);
  for (auto _ : state) {
    core::UniformisationStats stats;
    benchmark::DoNotOptimize(core::simulate_trap(
        propensity, 0.0, 1e-3, physics::TrapState::kEmpty, rng, {}, &stats));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(stats.candidates));
  }
}
BENCHMARK(BM_UniformisationPerCandidate);

void BM_GillespieStationary(benchmark::State& state) {
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::gillespie_stationary(
        1e6, 1e6, 0.0, 1e-3, physics::TrapState::kEmpty, rng));
  }
}
BENCHMARK(BM_GillespieStationary);

void BM_YeTwoStage(benchmark::State& state) {
  // Same nominal dwell scale as the uniformisation benchmark above —
  // the cost gap is the paper's efficiency argument against ref. [10].
  util::Rng rng(4);
  baseline::YeTwoStageParams params;
  params.tau_filter = 2e-8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::ye_two_stage(
        params, 0.0, 1e-3, physics::TrapState::kEmpty, rng));
  }
}
BENCHMARK(BM_YeTwoStage);

void BM_BiasPropensityBuild(benchmark::State& state) {
  const auto tech = physics::technology("90nm");
  const physics::SrhModel model(tech);
  const physics::Trap trap{0.3 * tech.t_ox, 0.6, physics::TrapState::kEmpty};
  core::Pwl bias;
  for (int i = 0; i <= 200; ++i) {
    bias.append(i * 1e-10, (i % 2) ? 1.2 : 0.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::BiasPropensity(model, trap, bias));
  }
}
BENCHMARK(BM_BiasPropensityBuild);

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = std::sin(0.01 * i);
  for (auto _ : state) {
    auto copy = data;
    signal::fft(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_WelchPsd(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 65536; ++i) samples.push_back(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal::welch_psd(samples, 1e-9, 4096));
  }
}
BENCHMARK(BM_WelchPsd);

void BM_DcOperatingPointSram(benchmark::State& state) {
  const auto tech = physics::technology("90nm");
  for (auto _ : state) {
    spice::Circuit circuit;
    const auto handles = sram::build_6t_cell(circuit, tech, {}, "");
    spice::VoltageSource::dc(circuit, "Vdd", circuit.find_node(handles.vdd),
                             spice::kGround, tech.v_dd);
    spice::VoltageSource::dc(circuit, "Vwl", circuit.find_node(handles.wl),
                             spice::kGround, 0.0);
    spice::VoltageSource::dc(circuit, "Vbl", circuit.find_node(handles.bl),
                             spice::kGround, tech.v_dd);
    spice::VoltageSource::dc(circuit, "Vblb", circuit.find_node(handles.blb),
                             spice::kGround, tech.v_dd);
    spice::DcOptions options;
    options.nodeset[handles.q] = 0.0;
    options.nodeset[handles.qb] = tech.v_dd;
    benchmark::DoNotOptimize(spice::dc_operating_point(circuit, options));
  }
}
BENCHMARK(BM_DcOperatingPointSram);

void BM_SramWriteTransient(benchmark::State& state) {
  sram::MethodologyConfig config;
  config.tech = physics::technology("90nm");
  config.ops = sram::ops_from_bits({1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sram::run_nominal(config));
  }
}
BENCHMARK(BM_SramWriteTransient);

void BM_FullMethodologySingleWrite(benchmark::State& state) {
  sram::MethodologyConfig config;
  config.tech = physics::technology("90nm");
  config.ops = sram::ops_from_bits({1});
  config.seed = 6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sram::run_methodology(config));
  }
}
BENCHMARK(BM_FullMethodologySingleWrite);

// Serial-vs-parallel throughput of the Monte-Carlo paths on the shared
// executor (the thread count is the benchmark argument, so the JSON output
// carries the scaling curve). Results are bit-identical across arguments.
void BM_RunArrayThreads(benchmark::State& state) {
  sram::ArrayConfig config;
  config.cell.tech = physics::technology("90nm");
  config.cell.ops = sram::ops_from_bits({1, 0});
  config.cell.seed = 3;
  config.num_cells = 8;
  config.sigma_vt = 0.02;
  config.seed = 11;
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sram::run_array(config));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(config.num_cells));
  }
}
BENCHMARK(BM_RunArrayThreads)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ImportanceEstimateThreads(benchmark::State& state) {
  sram::ImportanceConfig config;
  config.cell.tech = physics::technology("90nm");
  config.cell.tech.v_dd = 1.05;
  config.cell.sizing.extra_node_cap = 40e-15;
  config.cell.timing.period = 1e-9;
  config.cell.ops = sram::ops_from_bits({1, 0});
  config.sigma_vt = 0.04;
  config.samples = 16;
  config.seed = 6;
  config.with_rtn = false;  // nominal-only: one transient per sample
  config.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sram::estimate_failure_probability(config));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(config.samples));
  }
}
BENCHMARK(BM_ImportanceEstimateThreads)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_DeviceRtnGeneration(benchmark::State& state) {
  const auto tech = physics::technology("90nm");
  const physics::SrhModel srh(tech);
  const physics::MosDevice device(tech, physics::MosType::kNmos,
                                  {2.0 * tech.w_min, tech.l_min});
  util::Rng profile_rng(7);
  const auto traps =
      physics::sample_trap_profile(tech, device.geometry(), profile_rng);
  core::RtnGeneratorOptions options;
  options.tf = 2e-8;
  util::Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::generate_device_rtn(
        srh, device, traps, core::Pwl::constant(0.9 * tech.v_dd),
        core::Pwl::constant(1e-4), rng, options));
  }
}
BENCHMARK(BM_DeviceRtnGeneration);

}  // namespace

BENCHMARK_MAIN();
