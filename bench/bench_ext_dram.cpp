// Extension bench (paper conclusion, refs [22][23]): DRAM Variable
// Retention Time from RTN-like defects. Samples a population of 1T1C
// cells, measures retention over repeated discharge trials, and reports
// the bimodal toggling (max/min retention ratio) that defines VRT.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "dram/vrt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  dram::VrtConfig config;
  config.tech = physics::technology(cli.get_string("node", "45nm"));
  config.storage_cap = cli.get_double("cs", 25e-15);
  config.tat_strength = cli.get_double("tat", 1.5);
  const auto devices = static_cast<std::size_t>(cli.get_int("devices", 20));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 10));
  util::Rng rng(cli.get_seed("seed", 5));

  std::printf("=== DRAM Variable Retention Time from trap toggling ===\n");
  std::printf("%s access device, C_s = %.0f fF, %zu cells x %zu discharge "
              "trials\n\n",
              config.tech.name.c_str(), config.storage_cap * 1e15, devices,
              trials);

  const auto population = dram::simulate_population(config, rng, devices, trials);

  util::Table table({"cell", "defects", "t_ret min (ms)", "t_ret max (ms)",
                     "VRT ratio", "class"});
  std::size_t affected = 0;
  for (std::size_t d = 0; d < population.size(); ++d) {
    const auto& cell = population[d];
    const bool is_vrt = cell.vrt_ratio > 1.3;
    if (is_vrt) ++affected;
    table.add_row({static_cast<long long>(d),
                   static_cast<long long>(cell.traps.size()),
                   cell.retention_min * 1e3, cell.retention_max * 1e3,
                   cell.vrt_ratio,
                   std::string(is_vrt ? "VRT" : "stable")});
  }
  table.print(std::cout);
  std::printf("\nVRT-affected cells: %zu/%zu\n", affected, population.size());
  std::printf("\nExpected shape (refs [22],[23]): most cells retain a fixed\n"
              "time; cells with a slow near-resonant defect toggle between\n"
              "discrete retention levels (ratio ~2-10x) as the defect opens\n"
              "and closes a trap-assisted junction leakage path.\n");
  return 0;
}
