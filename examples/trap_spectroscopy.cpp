// Trap spectroscopy: sweep a single trap's parameters (depth, energy,
// bias), generate stationary RTN with SAMURAI, and tabulate the measured
// dwell times and Lorentzian corner frequency against the analytic model —
// the per-trap view behind the paper's Fig. 7 validation.
//
//   ./trap_spectroscopy [--node 90nm] [--sweep y|e|v] [--seed 3]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>

#include "core/propensity.hpp"
#include "core/uniformisation.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "util/cli.hpp"
#include "util/grid.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tech = physics::technology(cli.get_string("node", "90nm"));
  const std::string sweep = cli.get_string("sweep", "y");
  util::Rng rng(cli.get_seed("seed", 3));
  const physics::SrhModel srh(tech);

  const double e_mid = 0.5 * (tech.trap_e_min + tech.trap_e_max);
  const double v_mid = 0.75 * tech.v_dd;
  const double y_mid = 0.3 * tech.t_ox;

  struct Case {
    physics::Trap trap;
    double v_gs;
    std::string label;
  };
  std::vector<Case> cases;
  if (sweep == "y") {
    for (double frac : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      cases.push_back({{frac * tech.t_ox, e_mid, physics::TrapState::kEmpty},
                       v_mid,
                       "y=" + std::to_string(frac) + "*tox"});
    }
  } else if (sweep == "e") {
    for (double e : util::linspace(e_mid - 0.08, e_mid + 0.08, 5)) {
      cases.push_back({{y_mid, e, physics::TrapState::kEmpty}, v_mid,
                       "E=" + std::to_string(e) + " eV"});
    }
  } else if (sweep == "v") {
    for (double v : util::linspace(0.5 * tech.v_dd, 1.1 * tech.v_dd, 5)) {
      cases.push_back({{y_mid, e_mid, physics::TrapState::kEmpty}, v,
                       "V=" + std::to_string(v) + " V"});
    }
  } else {
    std::fprintf(stderr, "unknown --sweep %s (use y, e or v)\n", sweep.c_str());
    return 1;
  }

  util::Table table({"case", "lambda_c (1/s)", "lambda_e (1/s)",
                     "tau_e meas/theory", "tau_f meas/theory",
                     "corner f (Hz)", "P(fill) meas", "P(fill) theory"});
  std::size_t index = 0;
  for (const auto& c : cases) {
    const auto p = srh.propensities(c.trap, c.v_gs);
    const core::BiasPropensity propensity(srh, c.trap,
                                          core::Pwl::constant(c.v_gs));
    const double horizon = 3.0e4 / srh.total_rate(c.trap);
    util::Rng case_rng = rng.split(++index);
    const auto traj = core::simulate_trap(propensity, 0.0, horizon,
                                          c.trap.init_state, case_rng);
    const auto dwells = traj.dwell_times(true);
    auto mean = [](const std::vector<double>& v) {
      if (v.empty()) return 0.0;
      double s = 0.0;
      for (double d : v) s += d;
      return s / static_cast<double>(v.size());
    };
    const double tau_e_ratio =
        dwells.empty.empty() ? 0.0 : mean(dwells.empty) * p.lambda_c;
    const double tau_f_ratio =
        dwells.filled.empty() ? 0.0 : mean(dwells.filled) * p.lambda_e;
    const double corner =
        (p.lambda_c + p.lambda_e) / (2.0 * std::numbers::pi);
    table.add_row({c.label, p.lambda_c, p.lambda_e, tau_e_ratio, tau_f_ratio,
                   corner, traj.filled_fraction(),
                   srh.stationary_fill(c.trap, c.v_gs)});
  }
  std::printf("Trap spectroscopy on %s (sweep '%s'); ratios ~1 mean the\n"
              "generated dwell statistics match the analytic law.\n\n",
              tech.name.c_str(), sweep.c_str());
  table.print(std::cout);
  return 0;
}
