// Array-level yield estimation (paper future-work #3): Monte-Carlo a small
// SRAM array with per-cell V_T variation and independent trap populations,
// and report how many cells suffer RTN-induced write errors or slow
// writes at a given RTN scale.
//
//   ./array_yield [--node 90nm] [--cells 32] [--sigma-vt 0.02]
//                 [--scale 30] [--bits 101] [--seed 77]
#include <cstdio>
#include <iostream>

#include "sram/array.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::ArrayConfig config;
  config.cell.tech = physics::technology(cli.get_string("node", "90nm"));
  config.cell.tech.v_dd = cli.get_double("vdd", 0.9);
  config.cell.sizing.extra_node_cap = cli.get_double("node-cap", 40e-15);
  config.cell.timing.period = cli.get_double("period", 1e-9);
  std::vector<int> bits;
  for (char ch : cli.get_string("bits", "101")) {
    if (ch == '0' || ch == '1') bits.push_back(ch - '0');
  }
  config.cell.ops = sram::ops_from_bits(bits);
  config.cell.rtn_scale = cli.get_double("scale", 30.0);
  config.num_cells = static_cast<std::size_t>(cli.get_int("cells", 32));
  config.sigma_vt = cli.get_double("sigma-vt", 0.02);
  config.seed = cli.get_seed("seed", 77);
  config.threads = static_cast<std::size_t>(cli.get_int("threads", 4));

  std::printf("SRAM array Monte-Carlo — %s, %zu cells, sigma_VT=%.0f mV, "
              "RTN x%.0f\n\n",
              config.cell.tech.name.c_str(), config.num_cells,
              config.sigma_vt * 1e3, config.cell.rtn_scale);

  const auto result = sram::run_array(config);

  util::Table table({"cell", "traps", "RTN switches", "nominal", "with RTN"});
  for (const auto& cell : result.cells) {
    table.add_row({static_cast<long long>(cell.index),
                   static_cast<long long>(cell.total_traps),
                   static_cast<long long>(cell.rtn_switches),
                   std::string(cell.nominal_error ? "ERROR" : "ok"),
                   std::string(cell.rtn_error ? "ERROR"
                               : cell.rtn_slow  ? "slow"
                                                : "ok")});
  }
  table.print(std::cout);

  std::printf("\nSummary: %zu/%zu cells fail nominally, %zu fail with RTN "
              "(%zu RTN-only), %zu slow\n",
              result.nominal_errors, config.num_cells, result.rtn_errors,
              result.rtn_only_errors, result.slow_cells);
  std::printf("RTN-induced bit-error rate at this scale: %.3f\n",
              static_cast<double>(result.rtn_only_errors) /
                  static_cast<double>(config.num_cells));
  return 0;
}
