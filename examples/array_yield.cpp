// Array-level yield estimation (paper future-work #3), now driven by the
// campaign runtime: the cell Monte-Carlo is sharded, folds through
// streaming accumulators (Wilson-interval bit-error rate, Welford trap
// statistics), and — when a checkpoint directory is given — survives
// kills and resumes from the last completed shard, stopping early once
// the error-rate confidence interval meets the target.
//
//   ./array_yield [--node 90nm] [--cells 32] [--sigma-vt 0.02]
//                 [--scale 30] [--bits 101] [--seed 77] [--threads 4]
//                 [--shard 8] [--dir out/] [--resume] [--target-rhw 0.5]
//                 [--detail]
#include <cstdio>
#include <iostream>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "sram/array.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);

  campaign::Manifest manifest;
  manifest.kind = campaign::CampaignKind::kArrayYield;
  manifest.name = "array_yield";
  manifest.node = cli.get_string("node", "90nm");
  manifest.v_dd = cli.get_double("vdd", 0.9);
  manifest.extra_node_cap = cli.get_double("node-cap", 40e-15);
  manifest.period = cli.get_double("period", 1e-9);
  manifest.bits = cli.get_string("bits", "101");
  manifest.rtn_scale = cli.get_double("scale", 30.0);
  manifest.budget = static_cast<std::uint64_t>(cli.get_int("cells", 32));
  manifest.shard_size = static_cast<std::uint64_t>(cli.get_int("shard", 8));
  manifest.sigma_vt = cli.get_double("sigma-vt", 0.02);
  manifest.seed = cli.get_seed("seed", 77);
  manifest.threads = static_cast<std::uint64_t>(cli.get_int("threads", 4));
  manifest.target_rel_half_width = cli.get_double("target-rhw", 0.0);
  manifest.min_samples =
      static_cast<std::uint64_t>(cli.get_int("min-samples", 0));

  std::printf("SRAM array Monte-Carlo — %s, %llu cells, sigma_VT=%.0f mV, "
              "RTN x%.0f\n\n",
              manifest.node.c_str(),
              static_cast<unsigned long long>(manifest.budget),
              manifest.sigma_vt * 1e3, manifest.rtn_scale);

  campaign::RunOptions options;
  options.dir = cli.get_string("dir", "");
  options.progress = &std::cerr;
  const auto result = cli.has("resume")
                          ? campaign::resume_campaign(options)
                          : campaign::run_campaign(manifest, options);

  // Optional per-cell detail: replay individual cells from the same
  // streams (identical outcomes; the campaign itself only keeps the
  // streaming fold, which is what makes million-cell budgets possible).
  if (cli.has("detail")) {
    const auto config = campaign::array_config_from(manifest);
    util::Table table({"cell", "traps", "RTN switches", "nominal", "with RTN"});
    for (std::uint64_t i = 0; i < result.samples_done; ++i) {
      const auto cell =
          sram::simulate_array_cell(config, static_cast<std::size_t>(i));
      table.add_row({static_cast<long long>(cell.index),
                     static_cast<long long>(cell.total_traps),
                     static_cast<long long>(cell.rtn_switches),
                     std::string(cell.nominal_error ? "ERROR" : "ok"),
                     std::string(cell.rtn_error ? "ERROR"
                                 : cell.rtn_slow  ? "slow"
                                                  : "ok")});
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf("Summary: %llu cells simulated (%llu shards%s), "
              "%llu fail nominally, %llu RTN-only errors, %llu slow\n",
              static_cast<unsigned long long>(result.samples_done),
              static_cast<unsigned long long>(result.shards_done),
              result.stopped_early ? ", stopped early" : "",
              static_cast<unsigned long long>(result.nominal_fails.successes),
              static_cast<unsigned long long>(result.fails.successes),
              static_cast<unsigned long long>(result.slow.successes));
  std::printf("RTN-induced bit-error rate: %.4f  (Wilson %g%% CI "
              "[%.4f, %.4f]), mean traps/cell %.2f\n",
              result.estimate, 95.0, result.ci.lo, result.ci.hi,
              result.value.mean);
  if (result.stopped_early) {
    std::printf("Early stop saved %llu of %llu budgeted cells\n",
                static_cast<unsigned long long>(result.budget_saved),
                static_cast<unsigned long long>(manifest.budget));
  }
  std::printf("%s\n", result.to_json().c_str());
  return 0;
}
