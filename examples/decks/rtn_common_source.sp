* Common-source amplifier with SAMURAI RTN on its transistor.
* Run: ./netlist_sim examples/decks/rtn_common_source.sp --plot
Vdd vdd 0 DC 1.2
Vg  g   0 DC 0.55
Rload vdd out 20k
Cout out 0 5f
M1 out g 0 0 nfet W=110n L=90n
.model nfet nmos node=90nm
.rtn M1 scale=30 seed=7
.tran 20p 80n
.print v(out)
.end
