* 6T SRAM cell write-1-then-write-0, with RTN on the pass gates.
* Run: ./netlist_sim examples/decks/sram_write.sp --plot
Vdd vdd 0 DC 1.2
Vwl wl 0 PWL(0 0 0.4n 0 0.45n 1.2 1.4n 1.2 1.45n 0 2.4n 0 2.45n 1.2 3.4n 1.2 3.45n 0 4n 0)
Vbl bl 0 PWL(0 1.2 2.0n 1.2 2.05n 0 3.6n 0 3.65n 1.2 4n 1.2)
Vblb blb 0 PWL(0 1.2 0.1n 1.2 0.15n 0 1.6n 0 1.65n 1.2 4n 1.2)
M1 bl wl q 0 nfet W=264n L=90n
M2 blb wl qb 0 nfet W=264n L=90n
M3 q qb vdd vdd pfet W=220n L=90n
M4 qb q vdd vdd pfet W=220n L=90n
M5 qb q 0 0 nfet W=440n L=90n
M6 q qb 0 0 nfet W=440n L=90n
.model nfet nmos node=90nm
.model pfet pmos node=90nm
.nodeset v(q)=0 v(qb)=1.2 v(vdd)=1.2 v(bl)=1.2 v(blb)=1.2
.rtn M1 scale=30 seed=5
.rtn M2 scale=30 seed=6
.tran 5p 4n
.print v(q) v(qb)
.end
