// Standalone netlist simulator (the SpiceOPUS role): read a SPICE-style
// deck, run the DC operating point and any .tran analysis, and print the
// .print'ed node waveforms as a table, CSV or ASCII plot.
//
//   ./netlist_sim deck.sp [--csv out.csv] [--plot] [--points 25]
//
// With no file argument, runs a built-in demo deck (an RC step response).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "spice/parser.hpp"
#include "spice/rtn_integration.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

constexpr const char* kDemoDeck = R"(demo: RC step response
Vin in 0 PWL(0 0 1n 0 1.1n 1 10n 1)
R1 in out 1k
C1 out 0 1p
.tran 20p 10n
.print v(in) v(out)
.end
)";

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  std::string text;
  if (cli.positional().empty()) {
    std::printf("(no deck given: running the built-in RC demo)\n\n");
    text = kDemoDeck;
  } else {
    std::ifstream file(cli.positional()[0]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", cli.positional()[0].c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }

  spice::ParsedNetlist parsed;
  try {
    parsed = spice::parse_netlist(text);
  } catch (const spice::ParseError& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  if (!parsed.title.empty()) std::printf("title: %s\n", parsed.title.c_str());
  std::printf("nodes: %zu, devices: %zu, analysis: %s\n\n",
              parsed.circuit->num_nodes(), parsed.circuit->devices().size(),
              parsed.has_tran ? "transient" : "DC only");

  spice::TransientResult result;
  spice::RtnTransientResult rtn_result;
  const bool with_rtn = !parsed.rtn_requests.empty() && parsed.has_tran;
  try {
    if (with_rtn) {
      rtn_result = spice::run_netlist_rtn(text);
      result = rtn_result.with_rtn;
      std::printf("SAMURAI RTN injected into %zu device(s):\n",
                  rtn_result.traces.size());
      for (const auto& trace : rtn_result.traces) {
        std::printf("  %s: %zu traps, %llu transitions\n",
                    trace.device.c_str(), trace.traps.size(),
                    static_cast<unsigned long long>(trace.stats.accepted));
      }
      std::printf("\n");
    } else {
      result = parsed.has_tran ? spice::transient(*parsed.circuit, parsed.tran)
                               : spice::run_netlist(text);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simulation failed: %s\n", e.what());
    return 1;
  }

  std::vector<std::string> nodes = parsed.print_nodes;
  if (nodes.empty()) nodes = result.node_names();

  const auto csv_path = cli.get_string("csv", "");
  if (!csv_path.empty()) {
    std::vector<std::string> headers = {"time"};
    headers.insert(headers.end(), nodes.begin(), nodes.end());
    util::Table table(std::move(headers), 9);
    for (std::size_t i = 0; i < result.times().size(); ++i) {
      std::vector<util::Cell> row = {result.times()[i]};
      for (const auto& node : nodes) {
        row.emplace_back(result.voltage_samples(node)[i]);
      }
      table.add_row(std::move(row));
    }
    table.write_csv_file(csv_path);
    std::printf("wrote %zu points to %s\n", result.times().size(),
                csv_path.c_str());
    return 0;
  }

  if (cli.has("plot") || cli.positional().empty()) {
    std::vector<util::Series> series;
    for (const auto& node : nodes) {
      series.push_back({node, result.times(), result.voltage_samples(node)});
    }
    util::PlotOptions options;
    options.title = parsed.title.empty() ? "transient" : parsed.title;
    options.x_label = "t (s)";
    options.y_label = "V";
    util::plot(std::cout, series, options);
    return 0;
  }

  // Default: decimated table.
  const auto points = static_cast<std::size_t>(cli.get_int("points", 25));
  std::vector<std::string> headers = {"time (s)"};
  headers.insert(headers.end(), nodes.begin(), nodes.end());
  util::Table table(std::move(headers));
  const std::size_t n = result.times().size();
  const std::size_t stride = std::max<std::size_t>(1, n / points);
  for (std::size_t i = 0; i < n; i += stride) {
    std::vector<util::Cell> row = {result.times()[i]};
    for (const auto& node : nodes) {
      row.emplace_back(result.voltage_samples(node)[i]);
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
