// Quickstart: simulate a single oxide trap with SAMURAI's uniformisation
// core, first at constant bias (validated against the analytic stationary
// law) and then under a switching gate waveform (the non-stationary case
// the library exists for).
//
//   ./quickstart [--node 90nm] [--seed 42]
#include <cstdio>
#include <iostream>

#include "core/propensity.hpp"
#include "core/rtn_generator.hpp"
#include "core/uniformisation.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto tech = physics::technology(cli.get_string("node", "90nm"));
  util::Rng rng(cli.get_seed("seed", 42));

  // A trap 30% into the oxide, mid energy window: resonant inside the
  // supply swing.
  const physics::Trap trap{0.3 * tech.t_ox,
                           0.5 * (tech.trap_e_min + tech.trap_e_max),
                           physics::TrapState::kEmpty};
  const physics::SrhModel srh(tech);

  std::printf("SAMURAI quickstart — %s, trap y=%.2f nm, E=%.2f eV\n",
              tech.name.c_str(), trap.y_tr * 1e9, trap.e_tr);
  std::printf("total rate Λ = λc+λe = %.3e 1/s (paper Eq. 1)\n\n",
              srh.total_rate(trap));

  // --- Constant bias: dwell statistics vs the stationary law. ------------
  const double v_bias = tech.v_dd * 0.75;
  const auto p = srh.propensities(trap, v_bias);
  std::printf("at V_gs = %.2f V: λc = %.3e, λe = %.3e, P(filled) = %.3f\n",
              v_bias, p.lambda_c, p.lambda_e, srh.stationary_fill(trap, v_bias));

  const core::BiasPropensity propensity(srh, trap, core::Pwl::constant(v_bias));
  const double horizon = 2.0e4 / srh.total_rate(trap);
  core::UniformisationStats stats;
  const auto trajectory =
      core::simulate_trap(propensity, 0.0, horizon,
                          physics::TrapState::kEmpty, rng, {}, &stats);
  std::printf("simulated %.1f us: %zu transitions (%llu candidates drawn)\n",
              horizon * 1e6, trajectory.num_switches(),
              static_cast<unsigned long long>(stats.candidates));
  std::printf("measured filled fraction = %.3f (analytic %.3f)\n\n",
              trajectory.filled_fraction(), srh.stationary_fill(trap, v_bias));

  // --- Switching bias: activity follows the gate. -------------------------
  core::Pwl gate;
  gate.append(0.0, tech.v_dd);
  gate.append(0.5 * horizon - 1e-3 * horizon, tech.v_dd);
  gate.append(0.5 * horizon, 0.0);
  const core::BiasPropensity switching(srh, trap, gate);
  util::Rng rng2 = rng.split(2);
  const auto ns_traj = core::simulate_trap(switching, 0.0, horizon,
                                           physics::TrapState::kEmpty, rng2);
  std::size_t high_phase = 0, low_phase = 0;
  for (double t : ns_traj.switch_times()) {
    (t < 0.5 * horizon ? high_phase : low_phase)++;
  }
  std::printf("switching gate: %zu transitions while V_gs = V_dd, %zu while "
              "V_gs = 0\n",
              high_phase, low_phase);
  std::printf("(non-stationarity: the trap freezes when the gate is low)\n\n");

  // Plot the first stretch of the telegraph waveform.
  util::Series series;
  series.name = "trap state";
  std::vector<double> times, states;
  ns_traj.to_step_trace().to_paper_arrays(0.0, horizon, times, states);
  series.x = times;
  series.y = states;
  util::PlotOptions options;
  options.title = "Trap occupancy vs time (gate drops at mid-span)";
  options.x_label = "t (s)";
  options.y_label = "state";
  options.height = 8;
  util::plot(std::cout, {series}, options);
  return 0;
}
