// DRAM retention-time analysis with RTN-driven Variable Retention Time
// (paper conclusion, refs [22],[23]).
//
//   ./dram_retention [--node 45nm] [--devices 10] [--trials 12]
//                    [--cs 25] [--tat 1.5] [--seed 9]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "dram/vrt.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  dram::VrtConfig config;
  config.tech = physics::technology(cli.get_string("node", "45nm"));
  config.storage_cap = cli.get_double("cs", 25.0) * 1e-15;
  config.tat_strength = cli.get_double("tat", 1.5);
  const auto devices = static_cast<std::size_t>(cli.get_int("devices", 10));
  const auto trials = static_cast<std::size_t>(cli.get_int("trials", 12));
  util::Rng rng(cli.get_seed("seed", 9));

  std::printf("DRAM retention under RTN — %s access device, C_s = %.0f fF\n\n",
              config.tech.name.c_str(), config.storage_cap * 1e15);

  const auto population =
      dram::simulate_population(config, rng, devices, trials);

  util::Table table({"cell", "defects", "trials", "t_ret min (ms)",
                     "t_ret max (ms)", "ratio", "class"});
  std::vector<double> all_retentions;
  for (std::size_t d = 0; d < population.size(); ++d) {
    const auto& cell = population[d];
    for (const auto& trial : cell.trials) {
      all_retentions.push_back(trial.retention_time * 1e3);
    }
    table.add_row({static_cast<long long>(d),
                   static_cast<long long>(cell.traps.size()),
                   static_cast<long long>(cell.trials.size()),
                   cell.retention_min * 1e3, cell.retention_max * 1e3,
                   cell.vrt_ratio,
                   std::string(cell.vrt_ratio > 1.3 ? "VRT" : "stable")});
  }
  table.print(std::cout);

  // Retention histogram across the population: VRT shows up as secondary
  // modes below each cell's main retention level.
  std::sort(all_retentions.begin(), all_retentions.end());
  util::Series series{"retention CDF", {}, {}};
  for (std::size_t i = 0; i < all_retentions.size(); ++i) {
    series.x.push_back(all_retentions[i]);
    series.y.push_back(static_cast<double>(i + 1) /
                       static_cast<double>(all_retentions.size()));
  }
  util::PlotOptions options;
  options.title = "Retention-time CDF across the population";
  options.x_label = "t_ret (ms)";
  options.y_label = "CDF";
  options.height = 12;
  std::printf("\n");
  util::plot(std::cout, {series}, options);
  std::printf("\nSteps in a single cell's retention between trials (the\n"
              "'ratio' column) are the VRT signature: one slow defect\n"
              "toggling a trap-assisted leakage path.\n");
  return 0;
}
