// Ring-oscillator RTN analysis (paper future-work #4): measure the period
// statistics of a CMOS ring with and without SAMURAI RTN injected into
// every transistor.
//
//   ./ring_jitter [--node 90nm] [--stages 5] [--scale 50] [--seed 5]
#include <cstdio>

#include "osc/ring.hpp"
#include "util/cli.hpp"

using namespace samurai;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  osc::RingConfig config;
  config.tech = physics::technology(cli.get_string("node", "90nm"));
  config.stages = static_cast<std::size_t>(cli.get_int("stages", 5));
  const double scale = cli.get_double("scale", 50.0);
  const auto seed = cli.get_seed("seed", 5);

  std::printf("Ring-oscillator RTN analysis — %s, %zu stages, RTN x%.0f\n\n",
              config.tech.name.c_str(), config.stages, scale);

  const auto result = osc::ring_rtn_analysis(config, seed, scale);
  if (result.nominal.cycles == 0 || result.with_rtn.cycles == 0) {
    std::printf("ring failed to produce enough cycles — increase t_stop\n");
    return 1;
  }
  std::printf("nominal : %zu cycles, period %.4g ps, jitter (1 sigma) %.3g ps\n",
              result.nominal.cycles, result.nominal.mean * 1e12,
              result.nominal.stddev * 1e12);
  std::printf("with RTN: %zu cycles, period %.4g ps, jitter (1 sigma) %.3g ps\n",
              result.with_rtn.cycles, result.with_rtn.mean * 1e12,
              result.with_rtn.stddev * 1e12);
  std::printf("frequency shift: %.1f ppm, injected RTN transitions: %llu\n",
              result.frequency_shift_ppm,
              static_cast<unsigned long long>(result.rtn_switches));
  std::printf("\nRTN adds low-frequency period modulation on top of the\n"
              "numerical jitter floor — the mechanism behind RTN-induced\n"
              "clock jitter the paper's conclusion points to.\n");
  return 0;
}
