// The paper's headline application (Fig. 8): run the full SAMURAI+SPICE
// methodology on a 6T SRAM cell writing a bit pattern, with optional RTN
// amplitude scaling, and report write errors / slow-down per slot.
//
//   ./write_error_analysis [--node 90nm] [--bits 110101001] [--scale 30]
//                          [--seed 2024] [--coupled]
#include <cstdio>
#include <iostream>
#include <string>

#include "sram/coupled.hpp"
#include "sram/methodology.hpp"
#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace samurai;

namespace {

std::vector<int> parse_bits(const std::string& text) {
  std::vector<int> bits;
  for (char ch : text) {
    if (ch == '0' || ch == '1') bits.push_back(ch - '0');
  }
  if (bits.empty()) throw std::invalid_argument("--bits needs 0/1 characters");
  return bits;
}

const char* outcome_name(sram::OpOutcome outcome) {
  switch (outcome) {
    case sram::OpOutcome::kOk: return "ok";
    case sram::OpOutcome::kSlow: return "SLOW";
    case sram::OpOutcome::kError: return "ERROR";
  }
  return "?";
}

void print_report(const char* title, const sram::PatternReport& report) {
  util::Table table({"slot", "op", "expected", "Q at slot end (V)", "outcome"});
  for (std::size_t k = 0; k < report.ops.size(); ++k) {
    const auto& op = report.ops[k];
    table.add_row({static_cast<long long>(k), sram::op_name(op.op),
                   static_cast<long long>(op.expected_bit),
                   op.q_at_slot_end, std::string(outcome_name(op.outcome))});
  }
  std::printf("%s\n", title);
  table.print(std::cout);
  std::printf("=> any_error=%s any_slow=%s\n\n",
              report.any_error ? "yes" : "no", report.any_slow ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  sram::MethodologyConfig config;
  config.tech = physics::technology(cli.get_string("node", "90nm"));
  // Default to the margin regime the paper targets: reduced supply and a
  // bitline-loaded storage node (see DESIGN.md) so RTN has visible bite.
  config.tech.v_dd = cli.get_double("vdd", 0.9);
  config.sizing.extra_node_cap = cli.get_double("node-cap", 40e-15);
  config.timing.period = cli.get_double("period", 1e-9);
  config.ops = sram::ops_from_bits(parse_bits(cli.get_string("bits", "110101001")));
  config.seed = cli.get_seed("seed", 2024);
  config.rtn_scale = cli.get_double("scale", 30.0);

  std::printf("SRAM write-error analysis — %s, %zu ops, RTN x%.0f, seed %llu\n\n",
              config.tech.name.c_str(), config.ops.size(), config.rtn_scale,
              static_cast<unsigned long long>(config.seed));

  if (cli.has("coupled")) {
    const auto result = sram::run_coupled(config);
    print_report("Bi-directionally coupled run:", result.report);
    return result.report.any_error ? 2 : 0;
  }

  const auto result = sram::run_methodology(config);
  print_report("Nominal (no RTN):", result.nominal_report);
  print_report("With SAMURAI RTN injected:", result.rtn_report);

  // Per-transistor RTN summary (paper Fig. 8 (b)-(d) in numbers).
  util::Table rtn_table({"device", "traps", "switches", "max filled",
                         "peak |I_RTN| (uA)"});
  for (const auto& entry : result.rtn) {
    double max_filled = entry.n_filled.initial_value();
    for (double v : entry.n_filled.values()) max_filled = std::max(max_filled, v);
    double peak = 0.0;
    for (double v : entry.i_rtn.values()) peak = std::max(peak, std::abs(v));
    rtn_table.add_row({entry.name, static_cast<long long>(entry.traps.size()),
                       static_cast<long long>(entry.stats.accepted),
                       max_filled, peak * 1e6});
  }
  std::printf("Per-transistor SAMURAI traces:\n");
  rtn_table.print(std::cout);

  // Plot Q(t) nominal vs with RTN.
  util::Series nominal{"Q nominal", result.nominal.times(),
                       result.nominal.voltage_samples(result.q_node)};
  util::Series with_rtn{"Q with RTN", result.with_rtn.times(),
                        result.with_rtn.voltage_samples(result.q_node)};
  util::PlotOptions options;
  options.title = "Stored bit Q(t): nominal vs RTN-injected";
  options.x_label = "t (s)";
  options.y_label = "V";
  std::printf("\n");
  util::plot(std::cout, {nominal, with_rtn}, options);
  return result.rtn_report.any_error ? 2 : 0;
}
