#include "core/trajectory.hpp"

#include <gtest/gtest.h>

namespace samurai::core {
namespace {

using physics::TrapState;

TEST(TrapTrajectory, StateAlternatesAtSwitches) {
  const TrapTrajectory traj(0.0, 10.0, TrapState::kEmpty, {2.0, 5.0, 7.0});
  EXPECT_EQ(traj.state_at(1.0), TrapState::kEmpty);
  EXPECT_EQ(traj.state_at(2.0), TrapState::kFilled);  // right-continuous
  EXPECT_EQ(traj.state_at(4.9), TrapState::kFilled);
  EXPECT_EQ(traj.state_at(5.0), TrapState::kEmpty);
  EXPECT_EQ(traj.state_at(9.0), TrapState::kFilled);
}

TEST(TrapTrajectory, InvalidSwitchTimesThrow) {
  EXPECT_THROW(TrapTrajectory(0.0, 1.0, TrapState::kEmpty, {0.0}),
               std::invalid_argument);  // must be > t0
  EXPECT_THROW(TrapTrajectory(0.0, 1.0, TrapState::kEmpty, {0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(TrapTrajectory(0.0, 1.0, TrapState::kEmpty, {1.5}),
               std::invalid_argument);  // beyond tf
  EXPECT_THROW(TrapTrajectory(1.0, 0.0, TrapState::kEmpty, {}),
               std::invalid_argument);
}

TEST(TrapTrajectory, FilledFractionCountsFilledTime) {
  // Empty on [0,2), filled on [2,5), empty on [5,10): filled 3/10.
  const TrapTrajectory traj(0.0, 10.0, TrapState::kEmpty, {2.0, 5.0});
  EXPECT_DOUBLE_EQ(traj.filled_fraction(), 0.3);
}

TEST(TrapTrajectory, FilledFractionOfConstantTrajectories) {
  EXPECT_DOUBLE_EQ(
      TrapTrajectory(0.0, 4.0, TrapState::kFilled, {}).filled_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(
      TrapTrajectory(0.0, 4.0, TrapState::kEmpty, {}).filled_fraction(), 0.0);
}

TEST(TrapTrajectory, DwellTimesSplitByState) {
  const TrapTrajectory traj(0.0, 10.0, TrapState::kEmpty, {2.0, 5.0, 7.0});
  const auto censored_excluded = traj.dwell_times(true);
  // First dwell (empty, censored-left) excluded; filled [2,5), empty [5,7).
  ASSERT_EQ(censored_excluded.filled.size(), 1u);
  EXPECT_DOUBLE_EQ(censored_excluded.filled[0], 3.0);
  ASSERT_EQ(censored_excluded.empty.size(), 1u);
  EXPECT_DOUBLE_EQ(censored_excluded.empty[0], 2.0);

  const auto all = traj.dwell_times(false);
  ASSERT_EQ(all.empty.size(), 2u);
  ASSERT_EQ(all.filled.size(), 2u);
  EXPECT_DOUBLE_EQ(all.filled[1], 3.0);  // censored-right dwell [7,10)
}

TEST(TrapTrajectory, ToStepTraceMatchesStates) {
  const TrapTrajectory traj(0.0, 10.0, TrapState::kFilled, {3.0});
  const auto trace = traj.to_step_trace();
  EXPECT_DOUBLE_EQ(trace.eval(1.0), 1.0);
  EXPECT_DOUBLE_EQ(trace.eval(4.0), 0.0);
}

TEST(AggregateFilledCount, SumsIndependentTraps) {
  const TrapTrajectory a(0.0, 10.0, TrapState::kEmpty, {1.0, 6.0});
  const TrapTrajectory b(0.0, 10.0, TrapState::kFilled, {4.0});
  const auto count = aggregate_filled_count({a, b});
  EXPECT_DOUBLE_EQ(count.eval(0.5), 1.0);  // only b filled
  EXPECT_DOUBLE_EQ(count.eval(2.0), 2.0);  // both filled
  EXPECT_DOUBLE_EQ(count.eval(5.0), 1.0);  // only a
  EXPECT_DOUBLE_EQ(count.eval(7.0), 0.0);  // none
}

TEST(AggregateFilledCount, CoincidentSwitchesCollapse) {
  const TrapTrajectory a(0.0, 10.0, TrapState::kEmpty, {2.0});
  const TrapTrajectory b(0.0, 10.0, TrapState::kEmpty, {2.0});
  const auto count = aggregate_filled_count({a, b});
  EXPECT_EQ(count.num_steps(), 1u);
  EXPECT_DOUBLE_EQ(count.eval(2.0), 2.0);
}

TEST(AggregateFilledCount, EmptyInput) {
  const auto count = aggregate_filled_count({});
  EXPECT_DOUBLE_EQ(count.eval(0.0), 0.0);
  EXPECT_EQ(count.num_steps(), 0u);
}

TEST(AggregateFilledCount, NeverNegativeNeverAboveTrapCount) {
  std::vector<TrapTrajectory> trajectories;
  for (int i = 0; i < 5; ++i) {
    std::vector<double> switches;
    for (int k = 1; k <= 20; ++k) {
      switches.push_back(static_cast<double>(k) + 0.01 * i);
    }
    trajectories.emplace_back(0.0, 25.0,
                              i % 2 ? physics::TrapState::kFilled
                                    : physics::TrapState::kEmpty,
                              switches);
  }
  const auto count = aggregate_filled_count(trajectories);
  for (double t = 0.0; t < 25.0; t += 0.05) {
    const double v = count.eval(t);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 5.0);
  }
}

}  // namespace
}  // namespace samurai::core
