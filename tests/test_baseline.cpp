#include <gtest/gtest.h>

#include <cmath>

#include "baseline/gillespie.hpp"
#include "baseline/ye_two_stage.hpp"
#include "core/uniformisation.hpp"

namespace samurai::baseline {
namespace {

using physics::TrapState;

TEST(Gillespie, StationaryStatisticsMatchTheory) {
  util::Rng rng(21);
  const double lc = 3.0, le = 7.0;
  const auto traj =
      gillespie_stationary(lc, le, 0.0, 20000.0, TrapState::kEmpty, rng);
  EXPECT_NEAR(traj.filled_fraction(), lc / (lc + le), 0.02);
  const auto dwells = traj.dwell_times(true);
  double mean_empty = 0.0;
  for (double d : dwells.empty) mean_empty += d;
  mean_empty /= static_cast<double>(dwells.empty.size());
  EXPECT_NEAR(mean_empty * lc, 1.0, 0.08);
}

TEST(Gillespie, AbsorbingStateStops) {
  util::Rng rng(22);
  const auto traj =
      gillespie_stationary(5.0, 0.0, 0.0, 100.0, TrapState::kEmpty, rng);
  // Captures once, then the zero emission rate freezes it filled.
  EXPECT_EQ(traj.num_switches(), 1u);
  EXPECT_EQ(traj.state_at(99.0), TrapState::kFilled);
}

TEST(Gillespie, AgreesWithUniformisationStationary) {
  // Same chain simulated by both exact methods: occupancy must agree.
  const double lc = 10.0, le = 4.0;
  util::Rng rng_g(23), rng_u(24);
  const auto g =
      gillespie_stationary(lc, le, 0.0, 5000.0, TrapState::kEmpty, rng_g);
  const core::ConstantPropensity prop(lc, le);
  const auto u =
      core::simulate_trap(prop, 0.0, 5000.0, TrapState::kEmpty, rng_u);
  EXPECT_NEAR(g.filled_fraction(), u.filled_fraction(), 0.02);
}

TEST(Gillespie, BadArgumentsThrow) {
  util::Rng rng(25);
  EXPECT_THROW(
      gillespie_stationary(-1.0, 1.0, 0.0, 1.0, TrapState::kEmpty, rng),
      std::invalid_argument);
  EXPECT_THROW(
      gillespie_stationary(1.0, 1.0, 1.0, 0.0, TrapState::kEmpty, rng),
      std::invalid_argument);
}

TEST(NaiveTimeStepped, ConvergesForSmallSteps) {
  const core::ConstantPropensity prop(5.0, 5.0);
  util::Rng rng(26);
  NaiveOptions options;
  options.dt = 1e-3;  // rate*dt = 5e-3: small bias
  const auto traj = naive_time_stepped(prop, 0.0, 4000.0, TrapState::kEmpty,
                                       rng, options);
  EXPECT_NEAR(traj.filled_fraction(), 0.5, 0.03);
}

TEST(NaiveTimeStepped, LargeStepsAreBiased) {
  // With rate*dt = 1 the first-order method badly undercounts switching —
  // exactly the failure mode uniformisation avoids. The dwell-time mean
  // should be visibly wrong (quantised at dt and clamped).
  const core::ConstantPropensity prop(10.0, 10.0);
  util::Rng rng(27);
  NaiveOptions options;
  options.dt = 0.1;  // prob = min(1, 1.0)
  std::uint64_t steps = 0;
  const auto traj = naive_time_stepped(prop, 0.0, 2000.0, TrapState::kEmpty,
                                       rng, options, &steps);
  EXPECT_GE(steps, 20000u);  // +-1 from floating-point time accumulation
  EXPECT_LE(steps, 20001u);
  const auto dwells = traj.dwell_times(true);
  double mean = 0.0;
  for (double d : dwells.empty) mean += d;
  mean /= static_cast<double>(dwells.empty.size());
  // True mean dwell = 0.1; the clamped scheme switches every step giving
  // exactly 0.1 quantised — compare switch-count statistics instead: the
  // exact process makes ~2000*10 = 20000 transitions... the clamped
  // first-order scheme cannot exceed one per step and its dwell CV
  // collapses (deterministic), unlike the exponential CV of 1.
  double var = 0.0;
  for (double d : dwells.empty) var += (d - mean) * (d - mean);
  var /= static_cast<double>(dwells.empty.size());
  EXPECT_LT(std::sqrt(var) / mean, 0.5);  // far from exponential CV=1
}

TEST(NaiveTimeStepped, BadOptionsThrow) {
  const core::ConstantPropensity prop(1.0, 1.0);
  util::Rng rng(28);
  EXPECT_THROW(
      naive_time_stepped(prop, 0.0, 1.0, TrapState::kEmpty, rng, {0.0}),
      std::invalid_argument);
}

TEST(YeTwoStage, ProducesTelegraphActivity) {
  util::Rng rng(29);
  YeTwoStageParams params;
  params.tau_filter = 1e-7;
  params.threshold_up = 1.0;
  params.threshold_down = -1.0;
  YeTwoStageStats stats;
  const auto traj = ye_two_stage(params, 0.0, 1e-3, TrapState::kEmpty, rng,
                                 &stats);
  EXPECT_GT(traj.num_switches(), 10u);
  EXPECT_GT(stats.samples, 100000u);  // the white-noise cost the paper notes
  EXPECT_EQ(stats.switches, traj.num_switches());
}

TEST(YeTwoStage, BadParametersThrow) {
  util::Rng rng(30);
  YeTwoStageParams params;
  params.threshold_up = -1.0;
  params.threshold_down = 1.0;  // inverted
  EXPECT_THROW(ye_two_stage(params, 0.0, 1.0, TrapState::kEmpty, rng),
               std::invalid_argument);
}

TEST(YeTwoStage, CalibrationApproachesTargets) {
  util::Rng rng(31);
  const double tau_e = 2e-6, tau_f = 1e-6;
  const auto params = calibrate_ye_two_stage(tau_e, tau_f, rng);
  util::Rng check_rng(32);
  const auto traj = ye_two_stage(params, 0.0, 4000.0 * tau_e,
                                 TrapState::kEmpty, check_rng);
  const auto dwells = traj.dwell_times(true);
  ASSERT_GT(dwells.empty.size(), 50u);
  ASSERT_GT(dwells.filled.size(), 50u);
  double mean_e = 0.0, mean_f = 0.0;
  for (double d : dwells.empty) mean_e += d;
  for (double d : dwells.filled) mean_f += d;
  mean_e /= static_cast<double>(dwells.empty.size());
  mean_f /= static_cast<double>(dwells.filled.size());
  // Calibration is approximate (pilot-run secant): within a factor of 2.
  EXPECT_GT(mean_e / tau_e, 0.5);
  EXPECT_LT(mean_e / tau_e, 2.0);
  EXPECT_GT(mean_f / tau_f, 0.5);
  EXPECT_LT(mean_f / tau_f, 2.0);
}

TEST(YeTwoStage, CannotTrackBiasChanges) {
  // The structural limitation the paper calls out: the generator's
  // statistics are fixed at calibration time. Verify the dwell means in
  // the first and second halves of a long run are statistically the same
  // (no mechanism to become non-stationary).
  util::Rng rng(33);
  YeTwoStageParams params;
  params.tau_filter = 1e-7;
  params.threshold_up = 1.2;
  params.threshold_down = -1.2;
  const auto traj = ye_two_stage(params, 0.0, 2e-3, TrapState::kEmpty, rng);
  const auto& sw = traj.switch_times();
  ASSERT_GT(sw.size(), 40u);
  std::size_t first_half = 0;
  for (double t : sw) {
    if (t < 1e-3) ++first_half;
  }
  const double frac =
      static_cast<double>(first_half) / static_cast<double>(sw.size());
  EXPECT_NEAR(frac, 0.5, 0.2);
}

}  // namespace
}  // namespace samurai::baseline
