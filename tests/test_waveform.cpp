#include "core/waveform.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace samurai::core {
namespace {

// -------------------------------------------------------------------- Pwl

TEST(Pwl, EvalInterpolatesAndClamps) {
  const Pwl wave({0.0, 1.0, 2.0}, {0.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(wave.eval(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(wave.eval(0.5), 5.0);
  EXPECT_DOUBLE_EQ(wave.eval(1.5), 10.0);
  EXPECT_DOUBLE_EQ(wave.eval(99.0), 10.0);
}

TEST(Pwl, ForwardSweepHintIsTransparent) {
  std::vector<double> ts, vs;
  for (int i = 0; i <= 1000; ++i) {
    ts.push_back(i * 0.001);
    vs.push_back(i % 2 ? 1.0 : 0.0);
  }
  const Pwl wave(ts, vs);
  // Sweep forward then jump backwards; results must match fresh lookups.
  EXPECT_NEAR(wave.eval(0.123456), wave.eval(0.123456), 0.0);
  double forward_sum = 0.0;
  for (double t = 0.0; t < 1.0; t += 0.0003) forward_sum += wave.eval(t);
  const double back = wave.eval(0.0005);
  EXPECT_NEAR(back, 0.5, 1e-12);
  (void)forward_sum;
}

TEST(Pwl, ConcurrentConstEvalIsSafeAndExact) {
  // One waveform shared by several threads, each mixing forward sweeps
  // with backward jumps: the mutable hint cursor must not produce a data
  // race (run under -fsanitize=thread via SAMURAI_SANITIZE) and every
  // lookup must match a fresh single-threaded evaluation.
  std::vector<double> ts, vs;
  for (int i = 0; i <= 2000; ++i) {
    ts.push_back(i * 0.001);
    vs.push_back(i % 3 ? double(i) : -double(i));
  }
  const Pwl wave(ts, vs);
  const Pwl reference(ts, vs);

  std::vector<double> probes;
  for (int i = 0; i < 4000; ++i) {
    probes.push_back((i % 7) * 0.2871 + (i % 11) * 0.001);
  }
  std::vector<double> expected;
  for (double t : probes) expected.push_back(reference.eval(t));

  std::vector<int> mismatches(4, 0);
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      // Stagger the start so the threads interleave differently.
      for (std::size_t i = static_cast<std::size_t>(w); i < probes.size(); ++i) {
        if (wave.eval(probes[i]) != expected[i]) ++mismatches[w];
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int w = 0; w < 4; ++w) EXPECT_EQ(mismatches[w], 0) << "thread " << w;
}

TEST(Pwl, CopyAndMovePreserveShape) {
  Pwl original({0.0, 1.0, 2.0}, {1.0, 3.0, 5.0});
  (void)original.eval(1.5);  // advance the hint cursor
  const Pwl copy = original;
  EXPECT_DOUBLE_EQ(copy.eval(0.5), 2.0);
  EXPECT_DOUBLE_EQ(copy.eval(1.5), 4.0);
  Pwl assigned;
  assigned = copy;
  const Pwl moved = std::move(assigned);
  EXPECT_DOUBLE_EQ(moved.eval(0.5), 2.0);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(Pwl, ConstantWaveform) {
  const Pwl wave = Pwl::constant(3.3);
  EXPECT_TRUE(wave.is_constant());
  EXPECT_DOUBLE_EQ(wave.eval(-5.0), 3.3);
  EXPECT_DOUBLE_EQ(wave.eval(1e9), 3.3);
}

TEST(Pwl, NonIncreasingTimesThrow) {
  EXPECT_THROW(Pwl({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Pwl({1.0, 0.5}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(Pwl({0.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Pwl, AppendEnforcesOrder) {
  Pwl wave;
  wave.append(0.0, 1.0);
  wave.append(1.0, 2.0);
  EXPECT_THROW(wave.append(1.0, 3.0), std::invalid_argument);
  EXPECT_THROW(wave.append(0.5, 3.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(wave.eval(0.5), 1.5);
}

TEST(Pwl, ScaledMultipliesValues) {
  const Pwl wave({0.0, 1.0}, {1.0, -2.0});
  const Pwl scaled = wave.scaled(-3.0);
  EXPECT_DOUBLE_EQ(scaled.eval(0.0), -3.0);
  EXPECT_DOUBLE_EQ(scaled.eval(1.0), 6.0);
}

TEST(Pwl, SampleOnGrid) {
  const Pwl wave({0.0, 2.0}, {0.0, 2.0});
  const std::vector<double> grid = {0.0, 0.5, 1.0, 1.5, 2.0};
  const auto samples = wave.sample(grid);
  ASSERT_EQ(samples.size(), 5u);
  EXPECT_DOUBLE_EQ(samples[2], 1.0);
}

TEST(Pwl, EmptyWaveformEvaluatesToZero) {
  const Pwl wave;
  EXPECT_DOUBLE_EQ(wave.eval(1.0), 0.0);
}

// -------------------------------------------------------------- StepTrace

TEST(StepTrace, RightContinuousEvaluation) {
  const StepTrace trace(0.0, {1.0, 2.0}, {5.0, 3.0});
  EXPECT_DOUBLE_EQ(trace.eval(0.5), 0.0);
  EXPECT_DOUBLE_EQ(trace.eval(1.0), 5.0);  // right-continuous at the step
  EXPECT_DOUBLE_EQ(trace.eval(1.5), 5.0);
  EXPECT_DOUBLE_EQ(trace.eval(2.0), 3.0);
  EXPECT_DOUBLE_EQ(trace.eval(9.0), 3.0);
}

TEST(StepTrace, MismatchedArraysThrow) {
  EXPECT_THROW(StepTrace(0.0, {1.0, 2.0}, {5.0}), std::invalid_argument);
  EXPECT_THROW(StepTrace(0.0, {2.0, 1.0}, {5.0, 3.0}), std::invalid_argument);
}

TEST(StepTrace, TimeAverageWeightsDurations) {
  const StepTrace trace(0.0, {1.0}, {4.0});
  // On [0, 2]: value 0 for 1s, 4 for 1s -> mean 2.
  EXPECT_DOUBLE_EQ(trace.time_average(0.0, 2.0), 2.0);
  // Entirely after the step.
  EXPECT_DOUBLE_EQ(trace.time_average(1.5, 2.5), 4.0);
  EXPECT_THROW(trace.time_average(1.0, 1.0), std::invalid_argument);
}

TEST(StepTrace, PaperArraysDuplicateStepPoints) {
  const StepTrace trace(0.0, {1.0}, {1.0});
  std::vector<double> times, states;
  trace.to_paper_arrays(0.0, 2.0, times, states);
  // [t0, t_switch, t_switch, t1] with states [0, 0, 1, 1].
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[1], 1.0);
  EXPECT_DOUBLE_EQ(times[2], 1.0);
  EXPECT_DOUBLE_EQ(states[1], 0.0);
  EXPECT_DOUBLE_EQ(states[2], 1.0);
}

TEST(StepTrace, SampleMatchesEval) {
  const StepTrace trace(1.0, {0.5, 1.5}, {2.0, 0.0});
  const std::vector<double> grid = {0.0, 0.6, 1.6};
  const auto samples = trace.sample(grid);
  EXPECT_DOUBLE_EQ(samples[0], 1.0);
  EXPECT_DOUBLE_EQ(samples[1], 2.0);
  EXPECT_DOUBLE_EQ(samples[2], 0.0);
}

}  // namespace
}  // namespace samurai::core
