#include "physics/mos_device.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "physics/constants.hpp"
#include "physics/technology.hpp"

namespace samurai::physics {
namespace {

MosDevice nmos() {
  return MosDevice(technology("90nm"), MosType::kNmos, {220e-9, 90e-9});
}
MosDevice pmos() {
  return MosDevice(technology("90nm"), MosType::kPmos, {220e-9, 90e-9});
}

TEST(MosDevice, BadGeometryThrows) {
  EXPECT_THROW(MosDevice(technology("90nm"), MosType::kNmos, {0.0, 90e-9}),
               std::invalid_argument);
  EXPECT_THROW(MosDevice(technology("90nm"), MosType::kNmos, {220e-9, -1.0}),
               std::invalid_argument);
}

TEST(MosDevice, CurrentIncreasesWithGateBias) {
  const auto device = nmos();
  double prev = device.evaluate(0.0, 1.2).i_d;
  for (double v = 0.1; v <= 1.2; v += 0.1) {
    const double i = device.evaluate(v, 1.2).i_d;
    EXPECT_GT(i, prev) << "V=" << v;
    prev = i;
  }
}

TEST(MosDevice, SubthresholdIsExponential) {
  const auto device = nmos();
  const double vth = device.v_th();
  const double i1 = device.evaluate(vth - 0.30, 1.0).i_d;
  const double i2 = device.evaluate(vth - 0.20, 1.0).i_d;
  const double i3 = device.evaluate(vth - 0.10, 1.0).i_d;
  // Equal ratios per 100 mV (within 20%: the softplus transition bends the
  // last decade slightly).
  EXPECT_NEAR((i2 / i1) / (i3 / i2), 1.0, 0.25);
  EXPECT_GT(i2 / i1, 5.0);  // strong subthreshold slope
}

TEST(MosDevice, SaturationCurrentNearlyFlatInVds) {
  const auto device = nmos();
  const double i1 = device.evaluate(1.2, 0.8).i_d;
  const double i2 = device.evaluate(1.2, 1.2).i_d;
  // Only CLM growth: bounded by lambda * dV.
  const auto tech = technology("90nm");
  EXPECT_GT(i2, i1);
  EXPECT_LT(i2 / i1, 1.0 + tech.lambda_clm * 0.45);
}

TEST(MosDevice, LinearRegionCurrentScalesWithVds) {
  const auto device = nmos();
  const double i1 = device.evaluate(1.2, 0.05).i_d;
  const double i2 = device.evaluate(1.2, 0.10).i_d;
  EXPECT_NEAR(i2 / i1, 2.0, 0.15);  // near-ohmic for small V_ds
}

TEST(MosDevice, ZeroVdsGivesZeroCurrent) {
  const auto device = nmos();
  EXPECT_NEAR(device.evaluate(1.0, 0.0).i_d, 0.0, 1e-15);
}

TEST(MosDevice, NegativeVdsReversesCurrent) {
  const auto device = nmos();
  const double forward = device.evaluate(1.0, 0.3).i_d;
  const double reverse = device.evaluate(1.0, -0.3).i_d;
  EXPECT_GT(forward, 0.0);
  EXPECT_LT(reverse, 0.0);
}

TEST(MosDevice, PmosMirrorsNmos) {
  const auto n = nmos();
  const auto p = pmos();
  const double in = n.evaluate(1.0, 1.0).i_d;
  const double ip = p.evaluate(-1.0, -1.0).i_d;
  EXPECT_LT(ip, 0.0);
  // PMOS current is smaller by the mobility ratio.
  const auto tech = technology("90nm");
  EXPECT_NEAR(-ip / in, tech.mu_p / tech.mu_n, 0.05);
}

TEST(MosDevice, TransconductanceMatchesFiniteDifference) {
  const auto device = nmos();
  for (double vgs : {0.3, 0.6, 0.9, 1.2}) {
    const double h = 1e-6;
    const double numeric = (device.evaluate(vgs + h, 1.0).i_d -
                            device.evaluate(vgs - h, 1.0).i_d) /
                           (2.0 * h);
    const double analytic = device.evaluate(vgs, 1.0).g_m;
    EXPECT_NEAR(analytic / numeric, 1.0, 1e-4) << "vgs=" << vgs;
  }
}

TEST(MosDevice, OutputConductanceMatchesFiniteDifference) {
  const auto device = nmos();
  for (double vds : {0.1, 0.5, 1.0}) {
    const double h = 1e-6;
    const double numeric = (device.evaluate(1.0, vds + h).i_d -
                            device.evaluate(1.0, vds - h).i_d) /
                           (2.0 * h);
    const double analytic = device.evaluate(1.0, vds).g_ds;
    EXPECT_NEAR(analytic / numeric, 1.0, 1e-3) << "vds=" << vds;
  }
}

TEST(MosDevice, BodyTransconductanceMatchesFiniteDifference) {
  const auto device = nmos();
  const double h = 1e-6;
  const double numeric =
      (device.evaluate(0.8, 1.0, h).i_d - device.evaluate(0.8, 1.0, -h).i_d) /
      (2.0 * h);
  const double analytic = device.evaluate(0.8, 1.0, 0.0).g_mb;
  EXPECT_NEAR(analytic / numeric, 1.0, 1e-3);
}

TEST(MosDevice, PmosConductancesArePositive) {
  const auto device = pmos();
  const auto op = device.evaluate(-1.0, -1.0);
  EXPECT_GT(op.g_m, 0.0);
  EXPECT_GT(op.g_ds, 0.0);
}

TEST(MosDevice, PmosGmMatchesFiniteDifference) {
  const auto device = pmos();
  const double h = 1e-6;
  const double numeric = (device.evaluate(-1.0 + h, -1.0).i_d -
                          device.evaluate(-1.0 - h, -1.0).i_d) /
                         (2.0 * h);
  EXPECT_NEAR(device.evaluate(-1.0, -1.0).g_m / numeric, 1.0, 1e-3);
}

TEST(MosDevice, CarrierDensityMonotoneAndPositive) {
  const auto device = nmos();
  double prev = device.carrier_density(-0.5);
  EXPECT_GT(prev, 0.0);  // softplus: never exactly zero
  for (double v = -0.4; v <= 1.5; v += 0.1) {
    const double n = device.carrier_density(v);
    EXPECT_GT(n, prev);
    prev = n;
  }
}

TEST(MosDevice, CarrierDensityAboveThresholdIsChargeSheet) {
  const auto device = nmos();
  const auto tech = technology("90nm");
  const double v = device.v_th() + 0.6;
  const double expected =
      tech.c_ox() * 0.6 / kElementaryCharge;  // Q = C_ox (Vgs - Vth)
  EXPECT_NEAR(device.carrier_density(v) / expected, 1.0, 0.1);
}

TEST(MosDevice, CarrierCountScalesWithArea) {
  const auto tech = technology("90nm");
  const MosDevice small(tech, MosType::kNmos, {110e-9, 90e-9});
  const MosDevice big(tech, MosType::kNmos, {220e-9, 90e-9});
  EXPECT_NEAR(big.carrier_count(1.0) / small.carrier_count(1.0), 2.0, 1e-9);
}

TEST(MosDevice, VthShiftMovesCurrent) {
  const auto tech = technology("90nm");
  const MosDevice nominal(tech, MosType::kNmos, {220e-9, 90e-9});
  const MosDevice shifted(tech, MosType::kNmos, {220e-9, 90e-9}, 0.05);
  EXPECT_LT(shifted.evaluate(0.6, 1.0).i_d, nominal.evaluate(0.6, 1.0).i_d);
  EXPECT_NEAR(shifted.v_th() - nominal.v_th(), 0.05, 1e-12);
}

TEST(MosDevice, TransconductanceHelperAgreesWithEvaluate) {
  const auto device = nmos();
  EXPECT_DOUBLE_EQ(device.transconductance(0.9, 1.0),
                   device.evaluate(0.9, 1.0).g_m);
}

}  // namespace
}  // namespace samurai::physics
