// R×C array build, op semantics, and the activity-partitioned engine on
// its target workload: quiescent-row cells must elide/fold without
// changing what the selected row does.
#include "sram/array2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace samurai::sram {
namespace {

Array2dConfig small_array() {
  Array2dConfig config;
  config.tech = physics::technology("90nm");
  config.rows = 4;
  config.cols = 4;
  // Stored pattern: row r, column c holds (r + c) % 2.
  config.initial_bits.resize(16);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      config.initial_bits[r * 4 + c] = static_cast<int>((r + c) % 2);
    }
  }
  config.ops = {ArrayOp::write(1, {1, 0, 0, 1}), ArrayOp::read(1),
                ArrayOp::read(3)};
  return config;
}

spice::TransientResult run_array(const Array2dConfig& config,
                                 spice::ActivityMode activity,
                                 double tolerance = 0.0,
                                 Array2dBuild* build_out = nullptr,
                                 bool fixed_steps = true) {
  spice::Circuit circuit;
  auto build = build_array2d(circuit, config);
  spice::TransientOptions options = array2d_transient_options(config);
  options.solver = spice::SolverKind::kSparse;
  if (fixed_steps) {
    options.dt_initial = options.dt_max;
    options.lte_reltol = 1e9;
    options.lte_abstol = 1e9;
  }
  options.activity = array2d_activity(circuit, config, activity, tolerance);
  if (build_out) *build_out = std::move(build);
  return spice::transient(circuit, options);
}

TEST(Array2d, RejectsDegenerateConfigs) {
  Array2dConfig config = small_array();
  config.ops.clear();
  spice::Circuit c1;
  EXPECT_THROW(build_array2d(c1, config), std::invalid_argument);
  config = small_array();
  config.rows = 0;
  spice::Circuit c2;
  EXPECT_THROW(build_array2d(c2, config), std::invalid_argument);
  config = small_array();
  config.cols = 0;
  spice::Circuit c3;
  EXPECT_THROW(build_array2d(c3, config), std::invalid_argument);
}

TEST(Array2d, RejectsBadOps) {
  // A write word must be exactly one bit per column; ops must address an
  // existing row.
  Array2dConfig config = small_array();
  config.ops = {ArrayOp::write(0, {1, 0})};
  spice::Circuit c1;
  EXPECT_THROW(build_array2d(c1, config), std::invalid_argument);
  config = small_array();
  config.ops = {ArrayOp::read(9)};
  spice::Circuit c2;
  EXPECT_THROW(build_array2d(c2, config), std::invalid_argument);
}

TEST(Array2d, BuildsRowAndColumnRails) {
  spice::Circuit circuit;
  const auto build = build_array2d(circuit, small_array());
  ASSERT_EQ(build.cells.size(), 16u);
  ASSERT_EQ(build.wl.size(), 4u);
  ASSERT_EQ(build.bl.size(), 4u);
  EXPECT_TRUE(circuit.has_node("wl2"));
  EXPECT_TRUE(circuit.has_node("bl3"));
  EXPECT_TRUE(circuit.has_node("blb0"));
  EXPECT_TRUE(circuit.has_node("r2c3_q"));
  EXPECT_NE(circuit.find<spice::Mosfet>("MPC0_1"), nullptr);
  EXPECT_NE(circuit.find<spice::Mosfet>("MWD1_3"), nullptr);
  EXPECT_NE(circuit.find<spice::Mosfet>("r3c0_M5"), nullptr);
  EXPECT_NE(circuit.find<spice::Resistor>("r1c1_Rwl"), nullptr);
}

TEST(Array2d, RowOpsWriteWordsAndSenseEveryColumn) {
  // The write drives one bit per column on row 1; both reads sense all
  // four columns at once. Everything must land and nothing may disturb.
  const Array2dConfig config = small_array();
  Array2dBuild build;
  const auto result =
      run_array(config, spice::ActivityMode::kOff, 0.0, &build, false);
  const auto report = check_array2d(result, config, build);
  EXPECT_FALSE(report.any_error);
  ASSERT_EQ(report.writes.size(), 4u);
  for (const auto& write : report.writes) EXPECT_TRUE(write.ok);
  ASSERT_EQ(report.reads.size(), 8u);
  // Slot 1 reads back the word written in slot 0; slot 2 reads row 3's
  // initial pattern (3 % 2, 4 % 2, ...).
  const int expected[8] = {1, 0, 0, 1, 1, 0, 1, 0};
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(report.reads[i].sensed, expected[i]) << "read " << i;
    EXPECT_FALSE(report.reads[i].disturbed) << "read " << i;
    EXPECT_GT(report.reads[i].sense_margin, 0.02) << "read " << i;
  }
  ASSERT_EQ(report.column_worst_margin.size(), 4u);
  for (double margin : report.column_worst_margin) {
    EXPECT_GT(margin, 0.02);
    EXPECT_LE(margin, report.min_sense_margin + 1.0);
  }
  EXPECT_EQ(*std::min_element(report.column_worst_margin.begin(),
                              report.column_worst_margin.end()),
            report.min_sense_margin);
}

TEST(Array2d, ActivityPartitionCoversQuiescentRowsOnly) {
  Array2dConfig config = small_array();  // ops address rows 1 and 3
  spice::Circuit circuit;
  build_array2d(circuit, config);
  const auto elide = array2d_activity(circuit, config,
                                      spice::ActivityMode::kElide);
  // Rows 0 and 2 are quiescent: 2 rows × 4 cols × 6 transistors.
  EXPECT_EQ(elide.quiescent_devices.size(), 48u);
  EXPECT_TRUE(elide.groups.empty());
  const auto schur = array2d_activity(circuit, config,
                                      spice::ActivityMode::kSchur);
  EXPECT_EQ(schur.quiescent_devices.size(), 48u);
  ASSERT_EQ(schur.groups.size(), 8u);  // one fold group per quiescent cell
  for (const auto& group : schur.groups) EXPECT_EQ(group.size(), 6u);

  // Address every row: nothing is quiescent, the partition is empty.
  config.ops.push_back(ArrayOp::read(0));
  config.ops.push_back(ArrayOp::read(2));
  spice::Circuit all_rows;
  build_array2d(all_rows, config);
  const auto none = array2d_activity(all_rows, config,
                                     spice::ActivityMode::kSchur);
  EXPECT_TRUE(none.quiescent_devices.empty());
  EXPECT_TRUE(none.groups.empty());
}

TEST(Array2d, ElideIsBitIdenticalOnFixedGrid) {
  // Same exactness contract as the column: tolerance 0 on a fixed time
  // grid routes every load through the capture path and must reproduce
  // the unpartitioned sparse run bit for bit.
  const Array2dConfig config = small_array();
  const auto off = run_array(config, spice::ActivityMode::kOff);
  const auto elide = run_array(config, spice::ActivityMode::kElide, 0.0);
  ASSERT_EQ(elide.times(), off.times());
  for (const std::string& node : off.node_names()) {
    ASSERT_EQ(elide.voltage_samples(node), off.voltage_samples(node))
        << "node " << node;
  }
  const auto& st = elide.stats();
  EXPECT_EQ(st.device_loads + st.ap_elided_loads, off.stats().device_loads);
  EXPECT_GT(st.ap_partial_refactors, 0u);
}

TEST(Array2d, SchurFoldMatchesUnpartitionedWithinTolerance) {
  const Array2dConfig config = small_array();
  Array2dBuild build;
  const auto off = run_array(config, spice::ActivityMode::kOff, 0.0, &build);
  const auto schur = run_array(config, spice::ActivityMode::kSchur, 1e-6);
  const double t_end = off.times().back();
  // Selected-row storage, a quiescent cell's storage, and shared rails.
  for (const std::string& node :
       {build.cells[1 * 4 + 2].q, build.cells[2 * 4 + 1].q, build.bl[0],
        build.blb[3]}) {
    double max_diff = 0.0;
    for (int i = 0; i <= 200; ++i) {
      const double t = t_end * i / 200.0;
      max_diff = std::max(max_diff, std::abs(off.voltage_at(node, t) -
                                             schur.voltage_at(node, t)));
    }
    EXPECT_LT(max_diff, 2e-4) << "node " << node;
  }
  const auto& st = schur.stats();
  EXPECT_EQ(st.ap_folded_cells, 8u);
  EXPECT_GT(st.ap_elided_loads, 0u);
  EXPECT_LT(st.sp_symbolic_analyses, 5u);

  // The partitioned run must still pass the op-level checks.
  Array2dBuild schur_build;
  spice::Circuit circuit;
  schur_build = build_array2d(circuit, config);
  const auto report = check_array2d(schur, config, schur_build);
  EXPECT_FALSE(report.any_error);
}

TEST(Array2d, RtnRunReportsPhasesAndOutcomes) {
  // Tiny end-to-end run of the two-pass methodology: at amplitude scale 0
  // the injected pass adds zero-valued sources, so both reports must be
  // clean and identical in outcome.
  Array2dConfig config = small_array();
  config.rows = 2;
  config.cols = 2;
  config.initial_bits = {0, 1, 1, 0};
  config.ops = {ArrayOp::write(0, {1, 1}), ArrayOp::read(0)};
  const auto result = run_array2d_rtn(config, 21, 0.0);
  EXPECT_FALSE(result.nominal_report.any_error);
  EXPECT_FALSE(result.rtn_report.any_error);
  ASSERT_EQ(result.rtn.traces.size(), 4u);
  for (const auto& trace : result.rtn.traces) {
    EXPECT_FALSE(trace.device.empty());
  }
  EXPECT_GT(result.nominal_seconds, 0.0);
  EXPECT_GE(result.generation_seconds, 0.0);
  EXPECT_GT(result.injected_seconds, 0.0);
  ASSERT_EQ(result.nominal_report.reads.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(result.rtn_report.reads[i].sensed,
              result.nominal_report.reads[i].sensed);
  }
}

}  // namespace
}  // namespace samurai::sram
