#include "campaign/manifest.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>

#include "campaign/checkpoint.hpp"
#include "campaign/json.hpp"
#include "campaign/runner.hpp"
#include "campaign/shard.hpp"

namespace samurai::campaign {
namespace {

TEST(CampaignJson, DoubleRoundTripsBitExact) {
  for (double value : {0.1 + 0.2, 1.0 / 3.0, 1e-300, 6.02214076e23,
                       -0.0061250000000000003, 42.0}) {
    JsonWriter writer;
    writer.add("x", value);
    const auto parsed = JsonObject::parse(writer.str());
    EXPECT_EQ(parsed.get_double("x", 0.0), value) << writer.str();
  }
}

TEST(CampaignJson, ParsesTypesAndFallbacks) {
  const auto json = JsonObject::parse(
      "{\"s\": \"hello world\", \"n\": -2.5, \"i\": 77, \"b\": true, "
      "\"quoted\\\"\": \"esc\\\\aped\"}");
  EXPECT_EQ(json.get_string("s", ""), "hello world");
  EXPECT_EQ(json.get_double("n", 0.0), -2.5);
  EXPECT_EQ(json.get_u64("i", 0), 77u);
  EXPECT_TRUE(json.get_bool("b", false));
  EXPECT_EQ(json.get_string("quoted\"", ""), "esc\\aped");
  EXPECT_EQ(json.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(json.has("missing"));
}

TEST(CampaignJson, RejectsMalformedInput) {
  EXPECT_THROW(JsonObject::parse("not json"), std::runtime_error);
  EXPECT_THROW(JsonObject::parse("{\"k\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonObject::parse("{\"k\": \"unterminated}"),
               std::runtime_error);
}

TEST(CampaignJson, NonFiniteBecomesNull) {
  JsonWriter writer;
  writer.add("x", std::numeric_limits<double>::infinity());
  EXPECT_NE(writer.str().find("null"), std::string::npos);
  const auto parsed = JsonObject::parse(writer.str());
  EXPECT_EQ(parsed.get_double("x", -1.0), -1.0);  // falls back
}

TEST(CampaignManifest, RoundTripsThroughJson) {
  Manifest manifest;
  manifest.kind = CampaignKind::kVmin;
  manifest.name = "night run";
  manifest.seed = 123456789;
  manifest.budget = 5000;
  manifest.shard_size = 250;
  manifest.threads = 8;
  manifest.target_rel_half_width = 0.125;
  manifest.min_samples = 500;
  manifest.node = "45nm";
  manifest.v_dd = 0.97;
  manifest.bits = "1011";
  manifest.rtn_scale = 120.0;
  manifest.sigma_vt = 0.0275;
  manifest.shift = {0.06, 0.09, 0.0, 0.0, -0.01, 0.0};
  manifest.count_slow_as_fail = true;
  manifest.with_rtn = false;
  manifest.v_lo = 0.55;
  manifest.v_hi = 1.05;
  manifest.resolution = 0.0125;
  manifest.rtn_seeds = 3;
  manifest.rows = 64;
  manifest.cols = 32;
  manifest.activity = "elide";

  const Manifest copy = Manifest::from_json(manifest.to_json());
  EXPECT_EQ(copy.kind, manifest.kind);
  EXPECT_EQ(copy.name, manifest.name);
  EXPECT_EQ(copy.seed, manifest.seed);
  EXPECT_EQ(copy.budget, manifest.budget);
  EXPECT_EQ(copy.shard_size, manifest.shard_size);
  EXPECT_EQ(copy.threads, manifest.threads);
  EXPECT_EQ(copy.target_rel_half_width, manifest.target_rel_half_width);
  EXPECT_EQ(copy.min_samples, manifest.min_samples);
  EXPECT_EQ(copy.node, manifest.node);
  EXPECT_EQ(copy.v_dd, manifest.v_dd);
  EXPECT_EQ(copy.bits, manifest.bits);
  EXPECT_EQ(copy.rtn_scale, manifest.rtn_scale);
  EXPECT_EQ(copy.sigma_vt, manifest.sigma_vt);
  EXPECT_EQ(copy.shift, manifest.shift);
  EXPECT_EQ(copy.count_slow_as_fail, manifest.count_slow_as_fail);
  EXPECT_EQ(copy.with_rtn, manifest.with_rtn);
  EXPECT_EQ(copy.v_lo, manifest.v_lo);
  EXPECT_EQ(copy.v_hi, manifest.v_hi);
  EXPECT_EQ(copy.resolution, manifest.resolution);
  EXPECT_EQ(copy.rtn_seeds, manifest.rtn_seeds);
  EXPECT_EQ(copy.rows, manifest.rows);
  EXPECT_EQ(copy.cols, manifest.cols);
  EXPECT_EQ(copy.activity, manifest.activity);
}

TEST(CampaignManifest, PreArrayManifestsParseWithDefaults) {
  // Ledgers written before the array footprint existed carry no
  // rows/cols/activity keys; they must keep parsing as unconstrained.
  const Manifest manifest = Manifest::from_json(
      "{\"kind\": \"importance\", \"budget\": 10, \"shard_size\": 5}");
  EXPECT_EQ(manifest.rows, 0u);
  EXPECT_EQ(manifest.cols, 0u);
  EXPECT_EQ(manifest.activity, "schur");
}

TEST(CampaignManifest, ValidationCatchesBadJobs) {
  Manifest manifest;
  manifest.budget = 0;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = Manifest{};
  manifest.shard_size = 0;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = Manifest{};
  manifest.sigma_vt = 0.0;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = Manifest{};
  manifest.bits = "abc";
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = Manifest{};
  manifest.kind = CampaignKind::kVmin;
  manifest.v_lo = 1.2;
  manifest.v_hi = 1.0;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = Manifest{};
  manifest.rows = 8;  // cols left unset
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest = Manifest{};
  manifest.kind = CampaignKind::kArrayYield;
  manifest.rows = 4;
  manifest.cols = 4;
  manifest.budget = 17;  // 17 samples > 16 cells
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  manifest.budget = 16;
  EXPECT_NO_THROW(manifest.validate());
  manifest = Manifest{};
  manifest.activity = "turbo";
  EXPECT_THROW(manifest.validate(), std::invalid_argument);
  EXPECT_THROW(kind_from_string("bogus"), std::invalid_argument);
}

TEST(CampaignManifest, ShardPartitionCoversBudgetExactly) {
  Manifest manifest;
  manifest.budget = 23;
  manifest.shard_size = 5;
  ASSERT_EQ(manifest.shard_count(), 5u);
  std::uint64_t covered = 0;
  for (std::uint64_t i = 0; i < manifest.shard_count(); ++i) {
    const ShardSpec spec = shard_spec(manifest, i);
    EXPECT_EQ(spec.index, i);
    EXPECT_EQ(spec.first, covered);
    covered += spec.count;
  }
  EXPECT_EQ(covered, 23u);
  EXPECT_EQ(shard_spec(manifest, 4).count, 3u);  // partial tail shard
  EXPECT_THROW(shard_spec(manifest, 5), std::out_of_range);
}

TEST(CampaignShardResult, LedgerLineRoundTripsBitExact) {
  ShardResult shard;
  shard.index = 7;
  shard.samples = 250;
  shard.weighted.count = 250;
  shard.weighted.failures = 31;
  shard.weighted.weight_sum = 249.99999999999903;
  shard.weighted.weight_sq_sum = 0.1 + 0.2;
  shard.weighted.fail_weight_sum = 1.0 / 3.0;
  shard.weighted.fail_weight_sq_sum = 2.0 / 7.0;
  shard.fails = {250, 31};
  shard.nominal_fails = {250, 2};
  shard.slow = {250, 11};
  shard.value.count = 219;
  shard.value.mean = 0.83124999999999993;
  shard.value.m2 = 5.0e-4 / 3.0;
  shard.wall_seconds = 12.25;

  const ShardResult copy = ShardResult::from_json(shard.to_json());
  EXPECT_EQ(copy.index, shard.index);
  EXPECT_EQ(copy.samples, shard.samples);
  EXPECT_EQ(copy.weighted.count, shard.weighted.count);
  EXPECT_EQ(copy.weighted.failures, shard.weighted.failures);
  EXPECT_EQ(copy.weighted.weight_sum, shard.weighted.weight_sum);
  EXPECT_EQ(copy.weighted.weight_sq_sum, shard.weighted.weight_sq_sum);
  EXPECT_EQ(copy.weighted.fail_weight_sum, shard.weighted.fail_weight_sum);
  EXPECT_EQ(copy.weighted.fail_weight_sq_sum,
            shard.weighted.fail_weight_sq_sum);
  EXPECT_EQ(copy.fails.count, shard.fails.count);
  EXPECT_EQ(copy.fails.successes, shard.fails.successes);
  EXPECT_EQ(copy.nominal_fails.successes, shard.nominal_fails.successes);
  EXPECT_EQ(copy.slow.successes, shard.slow.successes);
  EXPECT_EQ(copy.value.count, shard.value.count);
  EXPECT_EQ(copy.value.mean, shard.value.mean);
  EXPECT_EQ(copy.value.m2, shard.value.m2);
  EXPECT_EQ(copy.wall_seconds, shard.wall_seconds);
}

class CampaignCheckpointFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("samurai_campaign_files_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  // Runs on success *and* on test failure, so no temp litter either way.
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CampaignCheckpointFiles, AtomicWriteLeavesNoTempFile) {
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/state.json";
  write_file_atomic(path, "{\"a\": 1}");
  write_file_atomic(path, "{\"a\": 2}");
  EXPECT_EQ(read_file(path), "{\"a\": 2}");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(CampaignCheckpointFiles, LedgerToleratesOutOfOrderAppends) {
  // Worker processes append in completion order; load sorts by index and
  // the fold stops at the gap (shard 1's worker died before appending).
  Checkpoint checkpoint(dir_);
  Manifest manifest;
  manifest.budget = 30;
  manifest.shard_size = 10;
  checkpoint.init(manifest);
  ShardResult first, third;
  first.index = 0;
  first.samples = 10;
  first.fails = {10, 1};
  third.index = 2;
  third.samples = 10;
  third.fails = {10, 2};
  checkpoint.append_ledger(third);
  checkpoint.append_ledger(first);
  const auto ledger = checkpoint.load_ledger();
  ASSERT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].index, 0u);
  EXPECT_EQ(ledger[1].index, 2u);
  const CampaignResult folded = fold_ledger(manifest, ledger);
  EXPECT_EQ(folded.shards_done, 1u);
  EXPECT_EQ(folded.samples_done, 10u);
  EXPECT_FALSE(folded.complete);
}

TEST_F(CampaignCheckpointFiles, InitRefusesToClobberALedger) {
  Checkpoint checkpoint(dir_);
  Manifest manifest;
  checkpoint.init(manifest);
  ShardResult shard;
  shard.samples = 10;
  shard.fails = {10, 1};
  checkpoint.append_ledger(shard);
  EXPECT_THROW(checkpoint.init(manifest), std::runtime_error);
}

}  // namespace
}  // namespace samurai::campaign
