#include "sram/cell.hpp"

#include <gtest/gtest.h>

#include "spice/analysis.hpp"
#include "spice/devices.hpp"

namespace samurai::sram {
namespace {

TEST(SramCell, TransistorTyping) {
  EXPECT_TRUE(is_nmos(1));
  EXPECT_TRUE(is_nmos(2));
  EXPECT_FALSE(is_nmos(3));
  EXPECT_FALSE(is_nmos(4));
  EXPECT_TRUE(is_nmos(5));
  EXPECT_TRUE(is_nmos(6));
  EXPECT_THROW(is_nmos(0), std::invalid_argument);
  EXPECT_THROW(is_nmos(7), std::invalid_argument);
}

TEST(SramCell, GeometryFollowsSizing) {
  const auto tech = physics::technology("90nm");
  CellSizing sizing;
  sizing.pull_down = 2.0;
  sizing.pass_gate = 1.2;
  sizing.pull_up = 1.0;
  EXPECT_DOUBLE_EQ(transistor_geometry(tech, sizing, 5).width,
                   2.0 * tech.w_min);
  EXPECT_DOUBLE_EQ(transistor_geometry(tech, sizing, 1).width,
                   1.2 * tech.w_min);
  EXPECT_DOUBLE_EQ(transistor_geometry(tech, sizing, 3).width,
                   1.0 * tech.w_min);
  EXPECT_DOUBLE_EQ(transistor_geometry(tech, sizing, 4).length, tech.l_min);
}

TEST(SramCell, BuildWiresPaperTopology) {
  spice::Circuit circuit;
  const auto tech = physics::technology("90nm");
  const auto handles = build_6t_cell(circuit, tech, {}, "x_");
  // Six transistors present and connected per the paper's naming.
  for (int m = 1; m <= 6; ++m) {
    ASSERT_NE(handles.mosfet(m), nullptr) << "M" << m;
  }
  const int q = circuit.find_node("x_q");
  const int qb = circuit.find_node("x_qb");
  const int wl = circuit.find_node("x_wl");
  // M5's gate is Q (paper §IV-B), M6's gate is QB.
  EXPECT_EQ(handles.mosfet(5)->gate(), q);
  EXPECT_EQ(handles.mosfet(6)->gate(), qb);
  // Pass gates on the wordline.
  EXPECT_EQ(handles.mosfet(1)->gate(), wl);
  EXPECT_EQ(handles.mosfet(2)->gate(), wl);
  // Cross-coupling: M3 pulls up Q with gate QB.
  EXPECT_EQ(handles.mosfet(3)->drain(), q);
  EXPECT_EQ(handles.mosfet(3)->gate(), qb);
}

TEST(SramCell, HoldStateIsBistable) {
  const auto tech = physics::technology("90nm");
  for (const double q_init : {0.0, tech.v_dd}) {
    spice::Circuit circuit;
    const auto handles = build_6t_cell(circuit, tech, {}, "");
    spice::VoltageSource::dc(circuit, "Vdd", circuit.find_node(handles.vdd),
                             spice::kGround, tech.v_dd);
    spice::VoltageSource::dc(circuit, "Vwl", circuit.find_node(handles.wl),
                             spice::kGround, 0.0);
    spice::VoltageSource::dc(circuit, "Vbl", circuit.find_node(handles.bl),
                             spice::kGround, tech.v_dd);
    spice::VoltageSource::dc(circuit, "Vblb", circuit.find_node(handles.blb),
                             spice::kGround, tech.v_dd);
    spice::DcOptions options;
    options.nodeset[handles.q] = q_init;
    options.nodeset[handles.qb] = tech.v_dd - q_init;
    const auto result = spice::dc_operating_point(circuit, options);
    ASSERT_TRUE(result.converged) << "q_init=" << q_init;
    const double q = result.x[static_cast<std::size_t>(circuit.find_node(handles.q))];
    const double qb = result.x[static_cast<std::size_t>(circuit.find_node(handles.qb))];
    if (q_init == 0.0) {
      EXPECT_LT(q, 0.1 * tech.v_dd);
      EXPECT_GT(qb, 0.9 * tech.v_dd);
    } else {
      EXPECT_GT(q, 0.9 * tech.v_dd);
      EXPECT_LT(qb, 0.1 * tech.v_dd);
    }
  }
}

TEST(SramCell, VthShiftsAreApplied) {
  spice::Circuit circuit;
  const auto tech = physics::technology("90nm");
  VthShifts shifts;
  shifts["M5"] = 0.07;
  const auto handles = build_6t_cell(circuit, tech, {}, "", shifts);
  const double base = handles.mosfet(6)->model().v_th();
  EXPECT_NEAR(handles.mosfet(5)->model().v_th() - base, 0.07, 1e-12);
}

TEST(SramCell, PrefixIsolatesCells) {
  spice::Circuit circuit;
  const auto tech = physics::technology("90nm");
  const auto a = build_6t_cell(circuit, tech, {}, "c0_");
  const auto b = build_6t_cell(circuit, tech, {}, "c1_");
  EXPECT_NE(circuit.find_node(a.q), circuit.find_node(b.q));
  EXPECT_EQ(circuit.num_nodes(), 12u);  // 6 named nodes per cell
}

}  // namespace
}  // namespace samurai::sram
