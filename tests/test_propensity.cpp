#include "core/propensity.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "physics/technology.hpp"

namespace samurai::core {
namespace {

/// The majorant contract (propensity.hpp): segments cover [t0, t1] and
/// per-state bounds dominate the propensities on a dense grid.
void expect_valid_majorant(const PropensityFunction& prop, double t0,
                           double t1, int samples = 400) {
  const RateMajorant majorant = prop.majorant(t0, t1);
  ASSERT_FALSE(majorant.empty());
  EXPECT_GE(majorant.t_end(), t1 * (1.0 - 1e-12));
  double seg_start = t0;
  for (const auto& seg : majorant.segments()) {
    EXPECT_GT(seg.t_end, seg_start);
    // Candidate times live in the half-open [seg_start, t_end): sample
    // midpoints so a jump exactly at a segment boundary (owned by the
    // next segment) is not charged to this one.
    const double width = std::min(seg.t_end, t1) - seg_start;
    if (!(width > 0.0)) break;
    for (int i = 0; i < samples; ++i) {
      const double t = seg_start + width * (i + 0.5) / samples;
      const auto p = prop.at(t);
      EXPECT_LE(p.lambda_c, seg.bound_c * (1.0 + 1e-9) + 1e-300)
          << "lambda_c escapes its segment bound at t=" << t;
      EXPECT_LE(p.lambda_e, seg.bound_e * (1.0 + 1e-9) + 1e-300)
          << "lambda_e escapes its segment bound at t=" << t;
    }
    seg_start = seg.t_end;
  }
}

TEST(ConstantPropensity, ReturnsRatesAndBound) {
  const ConstantPropensity prop(2.0, 5.0);
  const auto p = prop.at(123.0);
  EXPECT_DOUBLE_EQ(p.lambda_c, 2.0);
  EXPECT_DOUBLE_EQ(p.lambda_e, 5.0);
  EXPECT_DOUBLE_EQ(prop.rate_bound(0.0, 1.0), 5.0);
}

TEST(ConstantPropensity, MajorantIsPerStateExact) {
  const ConstantPropensity prop(2.0, 5.0);
  const RateMajorant majorant = prop.majorant(1.0, 4.0);
  ASSERT_EQ(majorant.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(majorant.segments()[0].t_end, 4.0);
  EXPECT_DOUBLE_EQ(majorant.segments()[0].bound_c, 2.0);
  EXPECT_DOUBLE_EQ(majorant.segments()[0].bound_e, 5.0);
  expect_valid_majorant(prop, 1.0, 4.0);
}

TEST(RateMajorant, RejectsMalformedEnvelopes) {
  // Non-increasing end times.
  EXPECT_THROW(RateMajorant({{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}}),
               std::invalid_argument);
  // Negative bound.
  EXPECT_THROW(RateMajorant({{1.0, -0.5, 1.0}}), std::invalid_argument);
  // Non-finite bound.
  EXPECT_THROW(RateMajorant({{1.0, 1.0, INFINITY}}), std::invalid_argument);
  // Empty is fine (the "no envelope" value).
  EXPECT_TRUE(RateMajorant().empty());
}

TEST(ConstantPropensity, NegativeRatesThrow) {
  EXPECT_THROW(ConstantPropensity(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ConstantPropensity(1.0, -1.0), std::invalid_argument);
}

TEST(FunctionalPropensity, EvaluatesFunctions) {
  const FunctionalPropensity prop([](double t) { return 1.0 + t; },
                                  [](double t) { return 2.0 * t; }, 100.0);
  const auto p = prop.at(3.0);
  EXPECT_DOUBLE_EQ(p.lambda_c, 4.0);
  EXPECT_DOUBLE_EQ(p.lambda_e, 6.0);
  EXPECT_DOUBLE_EQ(prop.rate_bound(0.0, 10.0), 100.0);
}

TEST(FunctionalPropensity, NonPositiveBoundThrows) {
  EXPECT_THROW(FunctionalPropensity([](double) { return 1.0; },
                                    [](double) { return 1.0; }, 0.0),
               std::invalid_argument);
}

TEST(FunctionalPropensity, DefaultMajorantIsSingleGlobalSegment) {
  const FunctionalPropensity prop([](double) { return 1.0; },
                                  [](double) { return 2.0; }, 4.0);
  const RateMajorant majorant = prop.majorant(0.5, 3.5);
  ASSERT_EQ(majorant.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(majorant.segments()[0].t_end, 3.5);
  EXPECT_DOUBLE_EQ(majorant.segments()[0].bound_c, 4.0);
  EXPECT_DOUBLE_EQ(majorant.segments()[0].bound_e, 4.0);
}

TEST(FunctionalPropensity, ExplicitEnvelopeIsClippedToTheWindow) {
  // A square-wave chain with a tight per-phase envelope: λ_c jumps at
  // t = 5, λ_e at t = 10.
  auto lc = [](double t) { return t < 5.0 ? 0.5 : 3.0; };
  auto le = [](double t) { return t < 10.0 ? 1.0 : 0.2; };
  const FunctionalPropensity prop(lc, le, 3.0,
                                  {{5.0, 0.5, 1.0},
                                   {10.0, 3.0, 1.0},
                                   {20.0, 3.0, 0.2}});
  // Window inside the envelope: leading segments are dropped, tight
  // bounds survive, and the envelope reaches past the window end (the
  // walker stops at tf on its own).
  const RateMajorant mid = prop.majorant(4.0, 12.0);
  ASSERT_EQ(mid.segments().size(), 3u);
  EXPECT_DOUBLE_EQ(mid.segments()[0].t_end, 5.0);
  EXPECT_DOUBLE_EQ(mid.segments()[0].bound_c, 0.5);
  EXPECT_GE(mid.t_end(), 12.0);
  expect_valid_majorant(prop, 4.0, 12.0);
  // Window past the envelope: the tail falls back to the global bound.
  const RateMajorant past = prop.majorant(15.0, 30.0);
  EXPECT_DOUBLE_EQ(past.t_end(), 30.0);
  expect_valid_majorant(prop, 15.0, 30.0);
}

class BiasPropensityTest : public ::testing::Test {
 protected:
  physics::Technology tech_ = physics::technology("90nm");
  physics::SrhModel model_{tech_};
  physics::Trap trap_{0.35 * tech_.t_ox, 0.55, physics::TrapState::kEmpty};
};

TEST_F(BiasPropensityTest, ConstantBiasMatchesDirectModel) {
  const Pwl bias = Pwl::constant(0.8);
  const BiasPropensity prop(model_, trap_, bias);
  const auto direct = model_.propensities(trap_, 0.8);
  const auto tabulated = prop.at(5.0);
  EXPECT_NEAR(tabulated.lambda_c, direct.lambda_c,
              1e-9 * std::max(1.0, direct.lambda_c));
  EXPECT_NEAR(tabulated.lambda_e, direct.lambda_e,
              1e-9 * std::max(1.0, direct.lambda_e));
}

TEST_F(BiasPropensityTest, RateBoundIsTheWindowedPointwiseMax) {
  const Pwl bias({0.0, 1e-9, 2e-9}, {0.0, 1.2, 0.0});
  const BiasPropensity prop(model_, trap_, bias);
  const double total = model_.total_rate(trap_);
  EXPECT_DOUBLE_EQ(prop.total_rate(), total);

  // The tightened contract: rate_bound dominates max(λ_c, λ_e) over the
  // window, never exceeds Λ, and is tight (attained on a dense grid).
  const double bound = prop.rate_bound(0.0, 2e-9);
  EXPECT_LE(bound, total * (1.0 + 1e-12));
  for (double t = 0.0; t <= 2e-9; t += 1e-12) {
    const auto p = prop.at(t);
    EXPECT_NEAR(p.lambda_c + p.lambda_e, total, total * 1e-12);
    EXPECT_LE(std::max(p.lambda_c, p.lambda_e), bound * (1.0 + 1e-12));
  }
  // λ_c(t) is piecewise linear, so its windowed extremes sit at the
  // tabulation breakpoints: the bound must be attained there (tightness).
  double table_max = 0.0;
  for (double t : prop.lambda_c_table().times()) {
    if (t < 0.0 || t > 2e-9) continue;
    const auto p = prop.at(t);
    table_max = std::max({table_max, p.lambda_c, p.lambda_e});
  }
  EXPECT_NEAR(bound, table_max, 1e-9 * total);

  // On a sub-window where the bias pins the trap, the bound must be
  // strictly tighter than Λ (this is what the sampler's win comes from):
  // max(λ_c, λ_e) >= Λ/2 always, but < Λ unless one state is frozen.
  const double low_bias_bound = prop.rate_bound(0.0, 1e-10);
  EXPECT_GE(low_bias_bound, total / 2.0 * (1.0 - 1e-12));
  EXPECT_LE(low_bias_bound, total * (1.0 + 1e-12));
}

TEST_F(BiasPropensityTest, MajorantCoversAndDominatesTheTable) {
  const Pwl bias({0.0, 1e-9, 2e-9}, {0.0, 1.2, 0.0});
  const BiasPropensity prop(model_, trap_, bias, 0.01);
  expect_valid_majorant(prop, 0.0, 2e-9);
  expect_valid_majorant(prop, 0.3e-9, 1.7e-9);  // off-breakpoint window

  // The envelope must be genuinely piecewise on a swinging bias, and its
  // per-state integral must undercut the fixed bound's rectangle.
  const RateMajorant majorant = prop.majorant(0.0, 2e-9);
  EXPECT_GT(majorant.segments().size(), 4u);
  const double fixed = prop.rate_bound(0.0, 2e-9) * 2e-9;
  double env_c = 0.0, env_e = 0.0, seg_start = 0.0;
  for (const auto& seg : majorant.segments()) {
    env_c += seg.bound_c * (seg.t_end - seg_start);
    env_e += seg.bound_e * (seg.t_end - seg_start);
    seg_start = seg.t_end;
  }
  EXPECT_LT(std::min(env_c, env_e), fixed);
}

TEST_F(BiasPropensityTest, ConstantBiasMajorantIsPerStateExact) {
  const Pwl bias = Pwl::constant(0.8);
  const BiasPropensity prop(model_, trap_, bias);
  const auto direct = prop.at(0.0);
  const RateMajorant majorant = prop.majorant(0.0, 1e-6);
  ASSERT_EQ(majorant.segments().size(), 1u);
  EXPECT_NEAR(majorant.segments()[0].bound_c, direct.lambda_c,
              1e-9 * prop.total_rate());
  EXPECT_NEAR(majorant.segments()[0].bound_e, direct.lambda_e,
              1e-9 * prop.total_rate());
}

TEST_F(BiasPropensityTest, RefinementTracksFastEdges) {
  // One fast 0 -> 1.2 V edge. The tabulated λ_c(t) must agree with the
  // direct model mid-edge to within a small relative error.
  const Pwl bias({0.0, 1e-9, 1.1e-9, 2e-9}, {0.0, 0.0, 1.2, 1.2});
  const BiasPropensity prop(model_, trap_, bias, 0.005);
  for (double t : {1.02e-9, 1.05e-9, 1.08e-9}) {
    const double v = bias.eval(t);
    const auto direct = model_.propensities(trap_, v);
    const auto tabulated = prop.at(t);
    EXPECT_NEAR(tabulated.lambda_c, direct.lambda_c,
                0.05 * prop.total_rate())
        << "t=" << t;
  }
}

TEST_F(BiasPropensityTest, BadBiasStepThrows) {
  EXPECT_THROW(BiasPropensity(model_, trap_, Pwl::constant(1.0), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace samurai::core
