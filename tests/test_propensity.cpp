#include "core/propensity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "physics/technology.hpp"

namespace samurai::core {
namespace {

TEST(ConstantPropensity, ReturnsRatesAndBound) {
  const ConstantPropensity prop(2.0, 5.0);
  const auto p = prop.at(123.0);
  EXPECT_DOUBLE_EQ(p.lambda_c, 2.0);
  EXPECT_DOUBLE_EQ(p.lambda_e, 5.0);
  EXPECT_DOUBLE_EQ(prop.rate_bound(0.0, 1.0), 5.0);
}

TEST(ConstantPropensity, NegativeRatesThrow) {
  EXPECT_THROW(ConstantPropensity(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ConstantPropensity(1.0, -1.0), std::invalid_argument);
}

TEST(FunctionalPropensity, EvaluatesFunctions) {
  const FunctionalPropensity prop([](double t) { return 1.0 + t; },
                                  [](double t) { return 2.0 * t; }, 100.0);
  const auto p = prop.at(3.0);
  EXPECT_DOUBLE_EQ(p.lambda_c, 4.0);
  EXPECT_DOUBLE_EQ(p.lambda_e, 6.0);
  EXPECT_DOUBLE_EQ(prop.rate_bound(0.0, 10.0), 100.0);
}

TEST(FunctionalPropensity, NonPositiveBoundThrows) {
  EXPECT_THROW(FunctionalPropensity([](double) { return 1.0; },
                                    [](double) { return 1.0; }, 0.0),
               std::invalid_argument);
}

class BiasPropensityTest : public ::testing::Test {
 protected:
  physics::Technology tech_ = physics::technology("90nm");
  physics::SrhModel model_{tech_};
  physics::Trap trap_{0.35 * tech_.t_ox, 0.55, physics::TrapState::kEmpty};
};

TEST_F(BiasPropensityTest, ConstantBiasMatchesDirectModel) {
  const Pwl bias = Pwl::constant(0.8);
  const BiasPropensity prop(model_, trap_, bias);
  const auto direct = model_.propensities(trap_, 0.8);
  const auto tabulated = prop.at(5.0);
  EXPECT_NEAR(tabulated.lambda_c, direct.lambda_c,
              1e-9 * std::max(1.0, direct.lambda_c));
  EXPECT_NEAR(tabulated.lambda_e, direct.lambda_e,
              1e-9 * std::max(1.0, direct.lambda_e));
}

TEST_F(BiasPropensityTest, BoundIsTheTotalRateEverywhere) {
  const Pwl bias({0.0, 1e-9, 2e-9}, {0.0, 1.2, 0.0});
  const BiasPropensity prop(model_, trap_, bias);
  const double total = model_.total_rate(trap_);
  EXPECT_DOUBLE_EQ(prop.rate_bound(0.0, 2e-9), total);
  EXPECT_DOUBLE_EQ(prop.total_rate(), total);
  for (double t = 0.0; t <= 2e-9; t += 1e-11) {
    const auto p = prop.at(t);
    EXPECT_LE(p.lambda_c, total * (1.0 + 1e-12));
    EXPECT_LE(p.lambda_e, total * (1.0 + 1e-12));
    EXPECT_NEAR(p.lambda_c + p.lambda_e, total, total * 1e-12);
  }
}

TEST_F(BiasPropensityTest, RefinementTracksFastEdges) {
  // One fast 0 -> 1.2 V edge. The tabulated λ_c(t) must agree with the
  // direct model mid-edge to within a small relative error.
  const Pwl bias({0.0, 1e-9, 1.1e-9, 2e-9}, {0.0, 0.0, 1.2, 1.2});
  const BiasPropensity prop(model_, trap_, bias, 0.005);
  for (double t : {1.02e-9, 1.05e-9, 1.08e-9}) {
    const double v = bias.eval(t);
    const auto direct = model_.propensities(trap_, v);
    const auto tabulated = prop.at(t);
    EXPECT_NEAR(tabulated.lambda_c, direct.lambda_c,
                0.05 * prop.total_rate())
        << "t=" << t;
  }
}

TEST_F(BiasPropensityTest, BadBiasStepThrows) {
  EXPECT_THROW(BiasPropensity(model_, trap_, Pwl::constant(1.0), 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace samurai::core
