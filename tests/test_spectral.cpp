#include "signal/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "signal/analytic.hpp"
#include "util/rng.hpp"

namespace samurai::signal {
namespace {

TEST(Autocorrelation, InputValidation) {
  EXPECT_THROW(autocorrelation({1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(autocorrelation({1.0, 2.0}, 0.0), std::invalid_argument);
}

TEST(Autocorrelation, LagZeroIsVariance) {
  util::Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.normal(5.0, 2.0));
  const auto acf = autocorrelation(samples, 1e-3);
  EXPECT_NEAR(acf.values[0], 4.0, 0.15);
  EXPECT_DOUBLE_EQ(acf.lags[0], 0.0);
  EXPECT_DOUBLE_EQ(acf.lags[1], 1e-3);
}

TEST(Autocorrelation, WhiteNoiseDecorrelatesImmediately) {
  util::Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.normal());
  const auto acf = autocorrelation(samples, 1.0);
  for (std::size_t k = 1; k < 10; ++k) {
    EXPECT_NEAR(acf.values[k], 0.0, 0.03) << "lag " << k;
  }
}

TEST(Autocorrelation, Ar1ProcessHasExponentialAcf) {
  // x_{n+1} = ρ x_n + noise: R(k) = ρ^k σ².
  util::Rng rng(3);
  const double rho = 0.9;
  std::vector<double> samples;
  double x = 0.0;
  for (int i = 0; i < 200000; ++i) {
    x = rho * x + rng.normal() * std::sqrt(1 - rho * rho);
    samples.push_back(x);
  }
  const auto acf = autocorrelation(samples, 1.0);
  for (std::size_t k : {1u, 3u, 6u}) {
    EXPECT_NEAR(acf.values[k] / acf.values[0], std::pow(rho, k), 0.03);
  }
}

TEST(Autocorrelation, MaxLagsLimitsOutput) {
  std::vector<double> samples(1000, 0.0);
  samples[0] = 1.0;
  const auto acf = autocorrelation(samples, 1.0, true, true, 10);
  EXPECT_EQ(acf.lags.size(), 11u);
}

TEST(WelchPsd, InputValidation) {
  std::vector<double> tiny(4, 0.0);
  EXPECT_THROW(welch_psd(tiny, 1.0), std::invalid_argument);
  std::vector<double> ok(64, 0.0);
  EXPECT_THROW(welch_psd(ok, 1.0, 3), std::invalid_argument);   // not pow2
  EXPECT_THROW(welch_psd(ok, 1.0, 128), std::invalid_argument); // > N
}

TEST(WelchPsd, SinusoidPeaksAtItsFrequency) {
  const double fs = 1000.0;
  const double f0 = 125.0;
  std::vector<double> samples;
  for (int i = 0; i < 8192; ++i) {
    samples.push_back(
        std::sin(2.0 * std::numbers::pi * f0 * static_cast<double>(i) / fs));
  }
  const auto spectrum = welch_psd(samples, 1.0 / fs, 512);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < spectrum.density.size(); ++k) {
    if (spectrum.density[k] > spectrum.density[peak]) peak = k;
  }
  EXPECT_NEAR(spectrum.frequencies[peak], f0, fs / 512.0 * 1.5);
}

TEST(WelchPsd, IntegralEqualsVarianceForWhiteNoise) {
  util::Rng rng(4);
  std::vector<double> samples;
  const double sigma = 1.5;
  for (int i = 0; i < 65536; ++i) samples.push_back(rng.normal(0.0, sigma));
  const double dt = 1e-4;
  const auto spectrum = welch_psd(samples, dt, 1024);
  double integral = 0.0;
  const double df = spectrum.frequencies[1] - spectrum.frequencies[0];
  for (double s : spectrum.density) integral += s * df;
  EXPECT_NEAR(integral, sigma * sigma, 0.1 * sigma * sigma);
}

// Integration test: a stationary telegraph signal's estimated PSD must
// match the analytic Lorentzian (the paper's Fig. 7 validation in
// miniature).
TEST(WelchPsd, TelegraphSignalMatchesLorentzian) {
  util::Rng rng(5);
  const double lambda_c = 4000.0, lambda_e = 6000.0, delta_i = 1.0;
  const double dt = 1e-6;
  const std::size_t n = 1 << 20;
  std::vector<double> samples;
  samples.reserve(n);
  // Exact dwell-time telegraph generation.
  int state = 0;
  double t_next = rng.exponential(lambda_c);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    while (t >= t_next) {
      state ^= 1;
      t_next += rng.exponential(state ? lambda_e : lambda_c);
    }
    samples.push_back(state ? delta_i : 0.0);
  }
  const auto spectrum = welch_psd(samples, dt, 8192);
  const RtsParams params{lambda_c, lambda_e, delta_i};
  // Compare in the Lorentzian's meaty band (below and around the corner).
  for (std::size_t k = 0; k < spectrum.frequencies.size(); ++k) {
    const double f = spectrum.frequencies[k];
    if (f < 200.0 || f > 2e4) continue;
    const double expected = rts_psd(params, f);
    EXPECT_NEAR(spectrum.density[k] / expected, 1.0, 0.5) << "f=" << f;
  }
}

TEST(PsdFromAutocorrelation, RecoversLorentzianFromAnalyticAcf) {
  // Feed the analytic R(τ) and check S(f) comes back (Wiener-Khinchin).
  const RtsParams params{3000.0, 3000.0, 2.0};
  Autocorrelation acf;
  const double dt = 1e-6;
  for (int k = 0; k < 20000; ++k) {
    acf.lags.push_back(k * dt);
    acf.values.push_back(rts_autocovariance(params, k * dt));
  }
  const std::vector<double> freqs = {100.0, 500.0, 1000.0, 3000.0};
  const auto psd = psd_from_autocorrelation(acf, freqs);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_NEAR(psd[i] / rts_psd(params, freqs[i]), 1.0, 0.05)
        << "f=" << freqs[i];
  }
}

TEST(PsdFromAutocorrelation, TooFewLagsThrow) {
  Autocorrelation acf;
  acf.lags = {0.0};
  acf.values = {1.0};
  EXPECT_THROW(psd_from_autocorrelation(acf, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace samurai::signal
