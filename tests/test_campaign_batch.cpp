// Campaign-level batching (Manifest::batch): manifest validation and JSON
// round-trip for the new knob, the weight/grouping invariants of
// sram::evaluate_importance_batch, and thread-count invariance of batched
// shards — the concurrency contract: outcomes depend only on (manifest,
// sample index), never on how lanes are grouped or scheduled.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "sram/importance.hpp"

namespace samurai::campaign {
namespace {

Manifest batched_manifest() {
  Manifest manifest;
  manifest.kind = CampaignKind::kImportance;
  manifest.name = "batch-test";
  manifest.seed = 33;
  manifest.budget = 24;
  manifest.shard_size = 12;
  manifest.batch = 4;
  manifest.node = "90nm";
  manifest.v_dd = 1.05;
  manifest.sigma_vt = 0.12;
  manifest.with_rtn = false;  // required for batch > 1
  manifest.shift[0] = 0.06;   // M1
  manifest.shift[1] = 0.06;   // M2
  return manifest;
}

sram::ImportanceConfig batch_importance_config() {
  sram::ImportanceConfig config;
  config.cell.tech = physics::technology("90nm");
  config.cell.tech.v_dd = 1.05;
  config.cell.sizing.extra_node_cap = 40e-15;
  config.cell.timing.period = 1e-9;
  config.cell.ops = sram::ops_from_bits({1, 0});
  config.sigma_vt = 0.1;
  config.shift = {{"M1", 0.08}, {"M2", 0.05}};
  config.samples = 16;
  config.seed = 9;
  config.with_rtn = false;
  return config;
}

// -------------------------------------------------------------- manifest

TEST(ManifestBatch, ValidatesBatchKnob) {
  Manifest manifest = batched_manifest();
  manifest.validate();  // batch = 4 with importance/with_rtn=false is fine

  manifest.batch = 0;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);

  manifest = batched_manifest();
  manifest.with_rtn = true;  // batched lanes cannot carry RTN coupling
  EXPECT_THROW(manifest.validate(), std::invalid_argument);

  manifest = batched_manifest();
  manifest.kind = CampaignKind::kVmin;
  EXPECT_THROW(manifest.validate(), std::invalid_argument);

  // batch = 1 (scalar) is valid for every kind.
  manifest = batched_manifest();
  manifest.kind = CampaignKind::kVmin;
  manifest.batch = 1;
  manifest.validate();
}

TEST(ManifestBatch, JsonRoundTripPreservesBatch) {
  const Manifest manifest = batched_manifest();
  const Manifest parsed = Manifest::from_json(manifest.to_json());
  EXPECT_EQ(parsed.batch, 4u);
  EXPECT_EQ(parsed.threads, manifest.threads);
  EXPECT_EQ(parsed.seed, manifest.seed);
  EXPECT_FALSE(parsed.with_rtn);
}

// ------------------------------------------------------- sample batching

TEST(ImportanceBatch, WeightsBitIdenticalToScalarEvaluator) {
  // Batched samples must replicate the scalar RNG stream exactly: the
  // likelihood-ratio weight of sample n is a pure function of
  // (config, n), whichever evaluator computes it.
  const sram::ImportanceConfig config = batch_importance_config();
  const auto batch = sram::evaluate_importance_batch(config, 3, 5);
  ASSERT_EQ(batch.size(), 5u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto scalar = sram::evaluate_importance_sample(config, 3 + i);
    EXPECT_EQ(batch[i].weight, scalar.weight) << "sample " << 3 + i;
  }
}

TEST(ImportanceBatch, OutcomesIndependentOfGrouping) {
  // Splitting [0, 12) into uneven batches must reproduce the one-shot
  // batch bit-for-bit: all lanes share one breakpoint set, hence one
  // fixed-grid step plan, so the grouping is pure throughput.
  const sram::ImportanceConfig config = batch_importance_config();
  const auto whole = sram::evaluate_importance_batch(config, 0, 12);
  auto split = sram::evaluate_importance_batch(config, 0, 5);
  const auto rest = sram::evaluate_importance_batch(config, 5, 7);
  split.insert(split.end(), rest.begin(), rest.end());
  ASSERT_EQ(whole.size(), split.size());
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole[i].weight, split[i].weight) << "sample " << i;
    EXPECT_EQ(whole[i].failed, split[i].failed) << "sample " << i;
  }
}

TEST(ImportanceBatch, RequiresNominalOnlyConfig) {
  sram::ImportanceConfig config = batch_importance_config();
  config.with_rtn = true;
  EXPECT_THROW(sram::evaluate_importance_batch(config, 0, 2),
               std::invalid_argument);
}

// ------------------------------------------------------ batched campaign

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.standard_error, b.standard_error);
  EXPECT_EQ(a.weighted.failures, b.weighted.failures);
  EXPECT_EQ(a.samples_done, b.samples_done);
}

TEST(CampaignBatch, EstimateIndependentOfBatchSize) {
  // batch is a throughput knob: regrouping lanes must not move a bit of
  // the estimate (batch sizes that divide, straddle and exceed the shard
  // are all equivalent).
  const Manifest base = batched_manifest();
  const CampaignResult reference = run_campaign(base, {});
  for (const std::uint64_t batch : {2u, 5u, 12u, 64u}) {
    Manifest manifest = base;
    manifest.batch = batch;
    expect_bit_identical(reference, run_campaign(manifest, {}));
  }
}

TEST(CampaignBatch, ThreadCountInvariantAcrossBatchBoundaries) {
  // Worker threads pick up whole batches; the shard folds outcomes in
  // index order, so any thread count is bit-identical — including thread
  // counts that leave workers idle or interleave mid-shard.
  Manifest manifest = batched_manifest();
  manifest.threads = 1;
  const CampaignResult serial = run_campaign(manifest, {});
  for (const std::uint64_t threads : {2u, 8u}) {
    manifest.threads = threads;
    expect_bit_identical(serial, run_campaign(manifest, {}));
  }
  // Batched shards report engine counters through the ledger.
  EXPECT_GT(serial.solver.bt_batches, 0u);
  EXPECT_EQ(serial.solver.bt_lanes, serial.samples_done);
}

}  // namespace
}  // namespace samurai::campaign
