#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace samurai::spice {
namespace {

TEST(DenseMatrix, StampIgnoresGround) {
  DenseMatrix m(2);
  m.stamp(-1, 0, 5.0);
  m.stamp(0, -1, 5.0);
  m.stamp(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(DenseMatrix, StampAccumulates) {
  DenseMatrix m(2);
  m.stamp(1, 1, 2.0);
  m.stamp(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(LuSolve, Solves2x2) {
  DenseMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(LuSolve, SizeMismatchThrows) {
  DenseMatrix a(2);
  std::vector<double> b = {1.0};
  EXPECT_THROW(lu_solve(a, b), std::invalid_argument);
}

TEST(LuSolve, RandomSystemsRoundTrip) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + trial % 10;
    DenseMatrix a(n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-5.0, 5.0);
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
      a.at(i, i) += 3.0;  // keep well conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    DenseMatrix a_copy = a;
    ASSERT_TRUE(lu_solve(a_copy, b));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

}  // namespace
}  // namespace samurai::spice
