#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace samurai::spice {
namespace {

TEST(DenseMatrix, StampIgnoresGround) {
  DenseMatrix m(2);
  m.stamp(-1, 0, 5.0);
  m.stamp(0, -1, 5.0);
  m.stamp(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(DenseMatrix, StampAccumulates) {
  DenseMatrix m(2);
  m.stamp(1, 1, 2.0);
  m.stamp(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(LuSolve, Solves2x2) {
  DenseMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(LuSolve, SizeMismatchThrows) {
  DenseMatrix a(2);
  std::vector<double> b = {1.0};
  EXPECT_THROW(lu_solve(a, b), std::invalid_argument);
}

TEST(LuSolve, RandomSystemsRoundTrip) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + trial % 10;
    DenseMatrix a(n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-5.0, 5.0);
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
      a.at(i, i) += 3.0;  // keep well conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    DenseMatrix a_copy = a;
    ASSERT_TRUE(lu_solve(a_copy, b));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(LuFactor, FactoredSolveRoundTrip) {
  // The split API: factor once, then re-solve against the stored factors
  // for several right-hand sides (the modified-Newton bypass pattern).
  // Note the factors store the reciprocal U diagonal, so correctness is
  // checked through lu_solve_factored, never by inspecting raw entries.
  util::Rng rng(29);
  const std::size_t n = 7;
  DenseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
    a.at(i, i) += 4.0;
  }
  DenseMatrix lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(lu, pivots));
  for (int rhs = 0; rhs < 5; ++rhs) {
    std::vector<double> x_true(n), b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-3.0, 3.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    lu_solve_factored(lu, pivots, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-10);
  }
}

TEST(LuFactor, ScaleHintMatchesInternalScan) {
  DenseMatrix a(3);
  util::Rng rng(31);
  double scale = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.at(i, j) = rng.uniform(-2.0, 2.0);
      scale = std::max(scale, std::abs(a.at(i, j)));
    }
    a.at(i, i) += 3.0;
    scale = std::max(scale, std::abs(a.at(i, i)));
  }
  DenseMatrix with_hint = a;
  DenseMatrix without = a;
  std::vector<std::size_t> p1, p2;
  ASSERT_TRUE(lu_factor(with_hint, p1, scale));
  ASSERT_TRUE(lu_factor(without, p2));
  EXPECT_EQ(p1, p2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(with_hint.at(i, j), without.at(i, j));
    }
  }
}

TEST(LuFactor, ScaleRelativeSingularityAcceptsTinyUnits) {
  // A perfectly conditioned system stamped in fF/µA-scale units: every
  // entry is ~1e-15, far below any absolute pivot floor, but the matrix is
  // nowhere near singular relative to its own scale.
  DenseMatrix a(2);
  a.at(0, 0) = 2e-15;
  a.at(0, 1) = 1e-15;
  a.at(1, 0) = 1e-15;
  a.at(1, 1) = 3e-15;
  std::vector<double> b = {5e-15, 10e-15};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-9);
  EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(LuFactor, ScaleRelativeSingularityRejectsScaledSingular) {
  // The same rank-1 matrix is singular at every absolute scale; a fixed
  // absolute threshold would accept the large version.
  for (const double s : {1e-12, 1.0, 1e12}) {
    DenseMatrix a(2);
    a.at(0, 0) = 1.0 * s;
    a.at(0, 1) = 2.0 * s;
    a.at(1, 0) = 2.0 * s;
    a.at(1, 1) = 4.0 * s;
    std::vector<std::size_t> pivots;
    EXPECT_FALSE(lu_factor(a, pivots)) << "scale " << s;
  }
}

TEST(LuFactor, ZeroAndEmptyMatrices) {
  DenseMatrix zero(3);
  std::vector<std::size_t> pivots;
  EXPECT_FALSE(lu_factor(zero, pivots));  // all-zero: singular
  DenseMatrix empty(0);
  EXPECT_TRUE(lu_factor(empty, pivots));  // 0x0: trivially factored
  EXPECT_TRUE(pivots.empty());
}

// ------------------------------------------------------------------ sparse

namespace {

/// Random sparse-ish test matrix: tridiagonal-plus-random-extras pattern,
/// diagonally dominated. Returns the coordinate list used for the pattern.
std::vector<std::pair<int, int>> fill_random_sparse(SparseMatrix& m,
                                                    std::size_t n,
                                                    util::Rng& rng) {
  std::vector<std::pair<int, int>> coords;
  for (std::size_t i = 0; i < n; ++i) {
    coords.emplace_back(static_cast<int>(i), static_cast<int>(i));
    if (i + 1 < n) {
      coords.emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
      coords.emplace_back(static_cast<int>(i + 1), static_cast<int>(i));
    }
    const auto j = static_cast<std::size_t>(rng.uniform(0.0, 1.0) * n) % n;
    if (j != i) coords.emplace_back(static_cast<int>(i), static_cast<int>(j));
  }
  m.build_pattern(n, coords);
  for (const auto& [r, c] : coords) {
    *m.slot(r, c) += rng.uniform(-1.0, 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    *m.slot(static_cast<int>(i), static_cast<int>(i)) += 4.0;
  }
  return coords;
}

}  // namespace

TEST(SparseMatrix, PatternAndSlots) {
  SparseMatrix m;
  std::vector<std::pair<int, int>> coords = {
      {0, 0}, {0, 2}, {2, 0}, {0, 2},  // duplicate is fine
      {-1, 1}, {1, -1},                // ground: must be ignored
  };
  EXPECT_TRUE(m.build_pattern(3, coords));
  // Full diagonal always present even though (1,1) and (2,2) were never
  // stamped.
  EXPECT_EQ(m.nnz(), 5u);  // (0,0) (0,2) (1,1) (2,0) (2,2)
  ASSERT_NE(m.slot(1, 1), nullptr);
  EXPECT_EQ(m.slot(0, 1), nullptr);  // not in pattern
  EXPECT_EQ(m.slot(-1, 0), nullptr);  // ground
  *m.slot(0, 2) += 2.0;
  *m.slot(0, 2) += 1.5;
  DenseMatrix d;
  m.to_dense(d);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 3.5);
  // Same coords again: pattern unchanged, values zeroed.
  EXPECT_FALSE(m.build_pattern(3, coords));
  m.to_dense(d);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 0.0);
  // New coordinate: pattern changes.
  coords.emplace_back(1, 2);
  EXPECT_TRUE(m.build_pattern(3, coords));
  EXPECT_EQ(m.nnz(), 6u);
}

TEST(SparseLu, RandomSystemsMatchDense) {
  util::Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(trial);
    SparseMatrix a;
    fill_random_sparse(a, n, rng);
    DenseMatrix ad;
    a.to_dense(ad);
    std::vector<double> x_true(n), b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-5.0, 5.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += ad.at(i, j) * x_true[j];
    }
    std::vector<double> b_dense = b;
    ASSERT_TRUE(sparse_lu_solve(a, b));
    ASSERT_TRUE(lu_solve(ad, b_dense));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(b[i], x_true[i], 1e-9);
      EXPECT_NEAR(b[i], b_dense[i], 1e-9);
    }
  }
}

TEST(SparseLu, SymbolicReuseAcrossRefactors) {
  util::Rng rng(47);
  const std::size_t n = 12;
  SparseMatrix a;
  fill_random_sparse(a, n, rng);
  SparseLu lu;
  bool was_analysis = false;
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis));
  EXPECT_TRUE(was_analysis);
  const std::size_t fill = lu.fill_nnz();
  // New values, same pattern: numeric refactorization only, same fill.
  for (int round = 0; round < 3; ++round) {
    for (double& v : a.values()) v += rng.uniform(-0.1, 0.1);
    std::vector<double> x_true(n), b(n, 0.0);
    DenseMatrix ad;
    a.to_dense(ad);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-2.0, 2.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += ad.at(i, j) * x_true[j];
    }
    ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis));
    EXPECT_FALSE(was_analysis) << "round " << round;
    EXPECT_EQ(lu.fill_nnz(), fill);
    lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(SparseLu, RequiresOffDiagonalPivotFill) {
  // Structurally zero diagonal entry that only becomes usable through
  // fill-in — the voltage-source branch-row shape from MNA. The diagonal
  // slot exists (build_pattern guarantees it) but holds 0.
  SparseMatrix a;
  std::vector<std::pair<int, int>> coords = {
      {0, 0}, {0, 1}, {1, 0},  // (1,1) stays numerically zero
  };
  a.build_pattern(2, coords);
  *a.slot(0, 0) = 1e-12;  // gmin-scale leak, as on a wl branch row
  *a.slot(0, 1) = 1.0;
  *a.slot(1, 0) = 1.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(sparse_lu_solve(a, b));
  // x1 = 2 - 1e-12*3 ≈ 2, x0 = 3.
  EXPECT_NEAR(b[0], 3.0, 1e-9);
  EXPECT_NEAR(b[1], 2.0, 1e-9);
}

TEST(SparseLu, ScaleRelativeSingularityAcceptsTinyUnits) {
  // Same well-posed fF/µA-scale system as the dense contract test: both
  // engines share the scale-relative threshold, so neither may reject it.
  SparseMatrix a;
  std::vector<std::pair<int, int>> coords = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  a.build_pattern(2, coords);
  *a.slot(0, 0) = 2e-15;
  *a.slot(0, 1) = 1e-15;
  *a.slot(1, 0) = 1e-15;
  *a.slot(1, 1) = 3e-15;
  std::vector<double> b = {5e-15, 10e-15};
  ASSERT_TRUE(sparse_lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-9);
  EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(SparseLu, ScaleRelativeSingularityRejectsScaledSingular) {
  // Same rank-1 matrix as the dense contract test, at three scales.
  for (const double s : {1e-12, 1.0, 1e12}) {
    SparseMatrix a;
    std::vector<std::pair<int, int>> coords = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    a.build_pattern(2, coords);
    *a.slot(0, 0) = 1.0 * s;
    *a.slot(0, 1) = 2.0 * s;
    *a.slot(1, 0) = 2.0 * s;
    *a.slot(1, 1) = 4.0 * s;
    std::vector<double> b = {1.0, 2.0};
    EXPECT_FALSE(sparse_lu_solve(a, b)) << "scale " << s;
  }
}

TEST(SparseLu, ScaleHintMatchesInternalScan) {
  util::Rng rng(53);
  const std::size_t n = 9;
  SparseMatrix a;
  fill_random_sparse(a, n, rng);
  std::vector<double> x_true(n), b(n, 0.0);
  DenseMatrix ad;
  a.to_dense(ad);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += ad.at(i, j) * x_true[j];
  }
  std::vector<double> b_hint = b;
  SparseLu lu1, lu2;
  ASSERT_TRUE(lu1.factor(a));
  ASSERT_TRUE(lu2.factor(a, a.value_max_abs()));
  EXPECT_EQ(lu1.fill_nnz(), lu2.fill_nnz());
  lu1.solve(b);
  lu2.solve(b_hint);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(b[i], b_hint[i]);
}

TEST(SparseLu, ZeroAndEmptyMatrices) {
  SparseMatrix zero;
  zero.build_pattern(3, std::vector<std::pair<int, int>>{{0, 1}, {1, 2}});
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_FALSE(sparse_lu_solve(zero, b));  // all-zero values: singular
  SparseMatrix empty;
  empty.build_pattern(0, std::vector<std::pair<int, int>>{});
  std::vector<double> b0;
  EXPECT_TRUE(sparse_lu_solve(empty, b0));  // 0x0: trivially factored
}

}  // namespace
}  // namespace samurai::spice
