#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace samurai::spice {
namespace {

TEST(DenseMatrix, StampIgnoresGround) {
  DenseMatrix m(2);
  m.stamp(-1, 0, 5.0);
  m.stamp(0, -1, 5.0);
  m.stamp(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(DenseMatrix, StampAccumulates) {
  DenseMatrix m(2);
  m.stamp(1, 1, 2.0);
  m.stamp(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(LuSolve, Solves2x2) {
  DenseMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(LuSolve, SizeMismatchThrows) {
  DenseMatrix a(2);
  std::vector<double> b = {1.0};
  EXPECT_THROW(lu_solve(a, b), std::invalid_argument);
}

TEST(LuSolve, RandomSystemsRoundTrip) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + trial % 10;
    DenseMatrix a(n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-5.0, 5.0);
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
      a.at(i, i) += 3.0;  // keep well conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    DenseMatrix a_copy = a;
    ASSERT_TRUE(lu_solve(a_copy, b));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(LuFactor, FactoredSolveRoundTrip) {
  // The split API: factor once, then re-solve against the stored factors
  // for several right-hand sides (the modified-Newton bypass pattern).
  // Note the factors store the reciprocal U diagonal, so correctness is
  // checked through lu_solve_factored, never by inspecting raw entries.
  util::Rng rng(29);
  const std::size_t n = 7;
  DenseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
    a.at(i, i) += 4.0;
  }
  DenseMatrix lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(lu, pivots));
  for (int rhs = 0; rhs < 5; ++rhs) {
    std::vector<double> x_true(n), b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-3.0, 3.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    lu_solve_factored(lu, pivots, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-10);
  }
}

TEST(LuFactor, ScaleHintMatchesInternalScan) {
  DenseMatrix a(3);
  util::Rng rng(31);
  double scale = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.at(i, j) = rng.uniform(-2.0, 2.0);
      scale = std::max(scale, std::abs(a.at(i, j)));
    }
    a.at(i, i) += 3.0;
    scale = std::max(scale, std::abs(a.at(i, i)));
  }
  DenseMatrix with_hint = a;
  DenseMatrix without = a;
  std::vector<std::size_t> p1, p2;
  ASSERT_TRUE(lu_factor(with_hint, p1, scale));
  ASSERT_TRUE(lu_factor(without, p2));
  EXPECT_EQ(p1, p2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(with_hint.at(i, j), without.at(i, j));
    }
  }
}

TEST(LuFactor, ScaleRelativeSingularityAcceptsTinyUnits) {
  // A perfectly conditioned system stamped in fF/µA-scale units: every
  // entry is ~1e-15, far below any absolute pivot floor, but the matrix is
  // nowhere near singular relative to its own scale.
  DenseMatrix a(2);
  a.at(0, 0) = 2e-15;
  a.at(0, 1) = 1e-15;
  a.at(1, 0) = 1e-15;
  a.at(1, 1) = 3e-15;
  std::vector<double> b = {5e-15, 10e-15};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-9);
  EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(LuFactor, ScaleRelativeSingularityRejectsScaledSingular) {
  // The same rank-1 matrix is singular at every absolute scale; a fixed
  // absolute threshold would accept the large version.
  for (const double s : {1e-12, 1.0, 1e12}) {
    DenseMatrix a(2);
    a.at(0, 0) = 1.0 * s;
    a.at(0, 1) = 2.0 * s;
    a.at(1, 0) = 2.0 * s;
    a.at(1, 1) = 4.0 * s;
    std::vector<std::size_t> pivots;
    EXPECT_FALSE(lu_factor(a, pivots)) << "scale " << s;
  }
}

TEST(LuFactor, ZeroAndEmptyMatrices) {
  DenseMatrix zero(3);
  std::vector<std::size_t> pivots;
  EXPECT_FALSE(lu_factor(zero, pivots));  // all-zero: singular
  DenseMatrix empty(0);
  EXPECT_TRUE(lu_factor(empty, pivots));  // 0x0: trivially factored
  EXPECT_TRUE(pivots.empty());
}

}  // namespace
}  // namespace samurai::spice
