#include "spice/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace samurai::spice {
namespace {

TEST(DenseMatrix, StampIgnoresGround) {
  DenseMatrix m(2);
  m.stamp(-1, 0, 5.0);
  m.stamp(0, -1, 5.0);
  m.stamp(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(DenseMatrix, StampAccumulates) {
  DenseMatrix m(2);
  m.stamp(1, 1, 2.0);
  m.stamp(1, 1, 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(LuSolve, Solves2x2) {
  DenseMatrix a(2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(LuSolve, DetectsSingular) {
  DenseMatrix a(2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(LuSolve, SizeMismatchThrows) {
  DenseMatrix a(2);
  std::vector<double> b = {1.0};
  EXPECT_THROW(lu_solve(a, b), std::invalid_argument);
}

TEST(LuSolve, RandomSystemsRoundTrip) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + trial % 10;
    DenseMatrix a(n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-5.0, 5.0);
      for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
      a.at(i, i) += 3.0;  // keep well conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    DenseMatrix a_copy = a;
    ASSERT_TRUE(lu_solve(a_copy, b));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(LuFactor, FactoredSolveRoundTrip) {
  // The split API: factor once, then re-solve against the stored factors
  // for several right-hand sides (the modified-Newton bypass pattern).
  // Note the factors store the reciprocal U diagonal, so correctness is
  // checked through lu_solve_factored, never by inspecting raw entries.
  util::Rng rng(29);
  const std::size_t n = 7;
  DenseMatrix a(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
    a.at(i, i) += 4.0;
  }
  DenseMatrix lu = a;
  std::vector<std::size_t> pivots;
  ASSERT_TRUE(lu_factor(lu, pivots));
  for (int rhs = 0; rhs < 5; ++rhs) {
    std::vector<double> x_true(n), b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-3.0, 3.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    lu_solve_factored(lu, pivots, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-10);
  }
}

TEST(LuFactor, ScaleHintMatchesInternalScan) {
  DenseMatrix a(3);
  util::Rng rng(31);
  double scale = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.at(i, j) = rng.uniform(-2.0, 2.0);
      scale = std::max(scale, std::abs(a.at(i, j)));
    }
    a.at(i, i) += 3.0;
    scale = std::max(scale, std::abs(a.at(i, i)));
  }
  DenseMatrix with_hint = a;
  DenseMatrix without = a;
  std::vector<std::size_t> p1, p2;
  ASSERT_TRUE(lu_factor(with_hint, p1, scale));
  ASSERT_TRUE(lu_factor(without, p2));
  EXPECT_EQ(p1, p2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(with_hint.at(i, j), without.at(i, j));
    }
  }
}

TEST(LuFactor, ScaleRelativeSingularityAcceptsTinyUnits) {
  // A perfectly conditioned system stamped in fF/µA-scale units: every
  // entry is ~1e-15, far below any absolute pivot floor, but the matrix is
  // nowhere near singular relative to its own scale.
  DenseMatrix a(2);
  a.at(0, 0) = 2e-15;
  a.at(0, 1) = 1e-15;
  a.at(1, 0) = 1e-15;
  a.at(1, 1) = 3e-15;
  std::vector<double> b = {5e-15, 10e-15};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-9);
  EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(LuFactor, ScaleRelativeSingularityRejectsScaledSingular) {
  // The same rank-1 matrix is singular at every absolute scale; a fixed
  // absolute threshold would accept the large version.
  for (const double s : {1e-12, 1.0, 1e12}) {
    DenseMatrix a(2);
    a.at(0, 0) = 1.0 * s;
    a.at(0, 1) = 2.0 * s;
    a.at(1, 0) = 2.0 * s;
    a.at(1, 1) = 4.0 * s;
    std::vector<std::size_t> pivots;
    EXPECT_FALSE(lu_factor(a, pivots)) << "scale " << s;
  }
}

TEST(LuFactor, ZeroAndEmptyMatrices) {
  DenseMatrix zero(3);
  std::vector<std::size_t> pivots;
  EXPECT_FALSE(lu_factor(zero, pivots));  // all-zero: singular
  DenseMatrix empty(0);
  EXPECT_TRUE(lu_factor(empty, pivots));  // 0x0: trivially factored
  EXPECT_TRUE(pivots.empty());
}

// ------------------------------------------------------------------ sparse

namespace {

/// Random sparse-ish test matrix: tridiagonal-plus-random-extras pattern,
/// diagonally dominated. Returns the coordinate list used for the pattern.
std::vector<std::pair<int, int>> fill_random_sparse(SparseMatrix& m,
                                                    std::size_t n,
                                                    util::Rng& rng) {
  std::vector<std::pair<int, int>> coords;
  for (std::size_t i = 0; i < n; ++i) {
    coords.emplace_back(static_cast<int>(i), static_cast<int>(i));
    if (i + 1 < n) {
      coords.emplace_back(static_cast<int>(i), static_cast<int>(i + 1));
      coords.emplace_back(static_cast<int>(i + 1), static_cast<int>(i));
    }
    const auto j = static_cast<std::size_t>(rng.uniform(0.0, 1.0) * n) % n;
    if (j != i) coords.emplace_back(static_cast<int>(i), static_cast<int>(j));
  }
  m.build_pattern(n, coords);
  for (const auto& [r, c] : coords) {
    *m.slot(r, c) += rng.uniform(-1.0, 1.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    *m.slot(static_cast<int>(i), static_cast<int>(i)) += 4.0;
  }
  return coords;
}

}  // namespace

TEST(SparseMatrix, PatternAndSlots) {
  SparseMatrix m;
  std::vector<std::pair<int, int>> coords = {
      {0, 0}, {0, 2}, {2, 0}, {0, 2},  // duplicate is fine
      {-1, 1}, {1, -1},                // ground: must be ignored
  };
  EXPECT_TRUE(m.build_pattern(3, coords));
  // Full diagonal always present even though (1,1) and (2,2) were never
  // stamped.
  EXPECT_EQ(m.nnz(), 5u);  // (0,0) (0,2) (1,1) (2,0) (2,2)
  ASSERT_NE(m.slot(1, 1), nullptr);
  EXPECT_EQ(m.slot(0, 1), nullptr);  // not in pattern
  EXPECT_EQ(m.slot(-1, 0), nullptr);  // ground
  *m.slot(0, 2) += 2.0;
  *m.slot(0, 2) += 1.5;
  DenseMatrix d;
  m.to_dense(d);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 3.5);
  // Same coords again: pattern unchanged, values zeroed.
  EXPECT_FALSE(m.build_pattern(3, coords));
  m.to_dense(d);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 0.0);
  // New coordinate: pattern changes.
  coords.emplace_back(1, 2);
  EXPECT_TRUE(m.build_pattern(3, coords));
  EXPECT_EQ(m.nnz(), 6u);
}

TEST(SparseLu, RandomSystemsMatchDense) {
  util::Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(trial);
    SparseMatrix a;
    fill_random_sparse(a, n, rng);
    DenseMatrix ad;
    a.to_dense(ad);
    std::vector<double> x_true(n), b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-5.0, 5.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += ad.at(i, j) * x_true[j];
    }
    std::vector<double> b_dense = b;
    ASSERT_TRUE(sparse_lu_solve(a, b));
    ASSERT_TRUE(lu_solve(ad, b_dense));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(b[i], x_true[i], 1e-9);
      EXPECT_NEAR(b[i], b_dense[i], 1e-9);
    }
  }
}

TEST(SparseLu, SymbolicReuseAcrossRefactors) {
  util::Rng rng(47);
  const std::size_t n = 12;
  SparseMatrix a;
  fill_random_sparse(a, n, rng);
  SparseLu lu;
  bool was_analysis = false;
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis));
  EXPECT_TRUE(was_analysis);
  const std::size_t fill = lu.fill_nnz();
  // New values, same pattern: numeric refactorization only, same fill.
  for (int round = 0; round < 3; ++round) {
    for (double& v : a.values()) v += rng.uniform(-0.1, 0.1);
    std::vector<double> x_true(n), b(n, 0.0);
    DenseMatrix ad;
    a.to_dense(ad);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-2.0, 2.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += ad.at(i, j) * x_true[j];
    }
    ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis));
    EXPECT_FALSE(was_analysis) << "round " << round;
    EXPECT_EQ(lu.fill_nnz(), fill);
    lu.solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], 1e-9);
  }
}

TEST(SparseLu, RequiresOffDiagonalPivotFill) {
  // Structurally zero diagonal entry that only becomes usable through
  // fill-in — the voltage-source branch-row shape from MNA. The diagonal
  // slot exists (build_pattern guarantees it) but holds 0.
  SparseMatrix a;
  std::vector<std::pair<int, int>> coords = {
      {0, 0}, {0, 1}, {1, 0},  // (1,1) stays numerically zero
  };
  a.build_pattern(2, coords);
  *a.slot(0, 0) = 1e-12;  // gmin-scale leak, as on a wl branch row
  *a.slot(0, 1) = 1.0;
  *a.slot(1, 0) = 1.0;
  std::vector<double> b = {2.0, 3.0};
  ASSERT_TRUE(sparse_lu_solve(a, b));
  // x1 = 2 - 1e-12*3 ≈ 2, x0 = 3.
  EXPECT_NEAR(b[0], 3.0, 1e-9);
  EXPECT_NEAR(b[1], 2.0, 1e-9);
}

TEST(SparseLu, ScaleRelativeSingularityAcceptsTinyUnits) {
  // Same well-posed fF/µA-scale system as the dense contract test: both
  // engines share the scale-relative threshold, so neither may reject it.
  SparseMatrix a;
  std::vector<std::pair<int, int>> coords = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  a.build_pattern(2, coords);
  *a.slot(0, 0) = 2e-15;
  *a.slot(0, 1) = 1e-15;
  *a.slot(1, 0) = 1e-15;
  *a.slot(1, 1) = 3e-15;
  std::vector<double> b = {5e-15, 10e-15};
  ASSERT_TRUE(sparse_lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-9);
  EXPECT_NEAR(b[1], 3.0, 1e-9);
}

TEST(SparseLu, ScaleRelativeSingularityRejectsScaledSingular) {
  // Same rank-1 matrix as the dense contract test, at three scales.
  for (const double s : {1e-12, 1.0, 1e12}) {
    SparseMatrix a;
    std::vector<std::pair<int, int>> coords = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    a.build_pattern(2, coords);
    *a.slot(0, 0) = 1.0 * s;
    *a.slot(0, 1) = 2.0 * s;
    *a.slot(1, 0) = 2.0 * s;
    *a.slot(1, 1) = 4.0 * s;
    std::vector<double> b = {1.0, 2.0};
    EXPECT_FALSE(sparse_lu_solve(a, b)) << "scale " << s;
  }
}

TEST(SparseLu, ScaleHintMatchesInternalScan) {
  util::Rng rng(53);
  const std::size_t n = 9;
  SparseMatrix a;
  fill_random_sparse(a, n, rng);
  std::vector<double> x_true(n), b(n, 0.0);
  DenseMatrix ad;
  a.to_dense(ad);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += ad.at(i, j) * x_true[j];
  }
  std::vector<double> b_hint = b;
  SparseLu lu1, lu2;
  ASSERT_TRUE(lu1.factor(a));
  ASSERT_TRUE(lu2.factor(a, a.value_max_abs()));
  EXPECT_EQ(lu1.fill_nnz(), lu2.fill_nnz());
  lu1.solve(b);
  lu2.solve(b_hint);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(b[i], b_hint[i]);
}

TEST(SparseLu, ZeroAndEmptyMatrices) {
  SparseMatrix zero;
  zero.build_pattern(3, std::vector<std::pair<int, int>>{{0, 1}, {1, 2}});
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_FALSE(sparse_lu_solve(zero, b));  // all-zero values: singular
  SparseMatrix empty;
  empty.build_pattern(0, std::vector<std::pair<int, int>>{});
  std::vector<double> b0;
  EXPECT_TRUE(sparse_lu_solve(empty, b0));  // 0x0: trivially factored
}

namespace {

/// Array-like pattern: `groups` chains of `per_group` unknowns, each
/// chain's last member coupled to one of two shared rail unknowns at the
/// end — the cell-interior-vs-bitline shape the Schur fold targets.
/// Returns the group index lists (rails ungrouped).
std::vector<std::vector<int>> fill_array_pattern(SparseMatrix& m,
                                                 std::size_t groups,
                                                 std::size_t per_group,
                                                 util::Rng& rng) {
  const std::size_t n = groups * per_group + 2;
  const int rail0 = static_cast<int>(n - 2);
  const int rail1 = static_cast<int>(n - 1);
  std::vector<std::pair<int, int>> coords;
  std::vector<std::vector<int>> group_ids(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t k = 0; k < per_group; ++k) {
      const int i = static_cast<int>(g * per_group + k);
      group_ids[g].push_back(i);
      coords.emplace_back(i, i);
      if (k + 1 < per_group) {
        coords.emplace_back(i, i + 1);
        coords.emplace_back(i + 1, i);
      }
    }
    const int last = group_ids[g].back();
    const int rail = g % 2 == 0 ? rail0 : rail1;
    coords.emplace_back(last, rail);
    coords.emplace_back(rail, last);
  }
  coords.emplace_back(rail0, rail0);
  coords.emplace_back(rail1, rail1);
  coords.emplace_back(rail0, rail1);
  coords.emplace_back(rail1, rail0);
  m.build_pattern(n, coords);
  for (const auto& [r, c] : coords) *m.slot(r, c) += rng.uniform(-1.0, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    *m.slot(static_cast<int>(i), static_cast<int>(i)) += 6.0;
  }
  return group_ids;
}

void solve_and_check(SparseLu& lu, const SparseMatrix& a, util::Rng& rng,
                     double tol) {
  const std::size_t n = a.size();
  DenseMatrix ad;
  a.to_dense(ad);
  std::vector<double> x_true(n), b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-2.0, 2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += ad.at(i, j) * x_true[j];
  }
  lu.solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x_true[i], tol);
}

}  // namespace

TEST(SparseLu, GroupedOrderingMatchesDense) {
  util::Rng rng(61);
  SparseMatrix a;
  const auto groups = fill_array_pattern(a, 24, 5, rng);
  SparseLu lu;
  lu.set_ordering_groups(groups);
  EXPECT_TRUE(lu.has_ordering_groups());
  bool was_analysis = false;
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis));
  EXPECT_TRUE(was_analysis);
  solve_and_check(lu, a, rng, 1e-9);
  // Same pattern, new values: the grouped symbolic analysis is reused by
  // the numeric refactor exactly like the classic one.
  for (double& v : a.values()) v += rng.uniform(-0.1, 0.1);
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis));
  EXPECT_FALSE(was_analysis);
  solve_and_check(lu, a, rng, 1e-9);
  // Clearing the groups invalidates the analysis (different ordering).
  lu.set_ordering_groups({});
  EXPECT_FALSE(lu.has_ordering_groups());
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis));
  EXPECT_TRUE(was_analysis);
  solve_and_check(lu, a, rng, 1e-9);
}

TEST(SparseLu, GroupedOrderingRejectsBadGroups) {
  util::Rng rng(67);
  SparseMatrix a;
  fill_array_pattern(a, 4, 3, rng);
  SparseLu lu;
  lu.set_ordering_groups({{0, 1}, {1, 2}});  // overlap
  EXPECT_THROW(lu.factor(a), std::invalid_argument);
  lu.set_ordering_groups({{0, 99}});  // out of range
  EXPECT_THROW(lu.factor(a), std::out_of_range);
}

TEST(SparseLu, PartialRefactorIsBitIdenticalToFull) {
  util::Rng rng(71);
  SparseMatrix a;
  fill_array_pattern(a, 16, 4, rng);
  const std::size_t n = a.size();
  SparseLu lu;
  ASSERT_TRUE(lu.factor(a));

  // Perturb only the original rows whose permuted position is in the
  // trailing quarter of the factor; every leading row stays bit-unchanged,
  // so a partial refactor from `floor` must reproduce the full factor
  // exactly.
  const std::size_t floor = 3 * n / 4;
  const auto& row_ptr = a.row_ptr();
  auto& vals = a.values();
  for (std::size_t r = 0; r < n; ++r) {
    if (lu.permuted_row(r) < floor) continue;
    for (auto k = static_cast<std::size_t>(row_ptr[r]);
         k < static_cast<std::size_t>(row_ptr[r + 1]); ++k) {
      vals[k] += rng.uniform(-0.05, 0.05);
    }
  }

  bool was_analysis = true;
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis, floor));
  EXPECT_FALSE(was_analysis);
  std::vector<double> b_partial(n), b_full(n);
  for (std::size_t i = 0; i < n; ++i) b_partial[i] = rng.uniform(-1.0, 1.0);
  b_full = b_partial;
  lu.solve(b_partial);

  // A second LU that shares the same symbolic analysis (same pattern,
  // pre-perturbation values) but numerically refactors the perturbed A
  // from row 0: the partial sweep must reproduce its factors bitwise.
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis, 0));
  EXPECT_FALSE(was_analysis);
  lu.solve(b_full);
  for (std::size_t i = 0; i < n; ++i) {
    // Bitwise: the retained leading rows plus the re-swept tail must
    // equal the from-scratch numeric sweep exactly.
    EXPECT_EQ(b_partial[i], b_full[i]) << "row " << i;
  }

  // floor == n with unchanged values is a legal no-op returning the
  // cached factors.
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis, n));
  EXPECT_FALSE(was_analysis);
  std::vector<double> b_again(n), b_ref(n);
  for (std::size_t i = 0; i < n; ++i) b_again[i] = rng.uniform(-1.0, 1.0);
  b_ref = b_again;
  lu.solve(b_again);
  ASSERT_TRUE(lu.factor(a, -1.0, &was_analysis, 0));
  lu.solve(b_ref);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(b_again[i], b_ref[i]);
}

TEST(SparseLu, PivotDegradationTriggersReanalysisAtArrayScale) {
  // Array-scale pattern of 2x2 branch-row blocks: initially diagonally
  // dominant, so the analysis pivots on the diagonal. Rescaling the
  // stamps so every diagonal collapses to gmin scale while the
  // off-diagonals grow makes those pivots fail the threshold check: the
  // numeric refactor must bail out and factor() must recover with a
  // fresh symbolic analysis (the signal SolverStats counts as
  // sp_symbolic_analyses) and still solve accurately.
  const std::size_t pairs = 256;
  const std::size_t n = 2 * pairs;
  SparseMatrix a;
  std::vector<std::pair<int, int>> coords;
  for (std::size_t p = 0; p < pairs; ++p) {
    const int i = static_cast<int>(2 * p);
    coords.emplace_back(i, i);
    coords.emplace_back(i, i + 1);
    coords.emplace_back(i + 1, i);
    coords.emplace_back(i + 1, i + 1);
  }
  a.build_pattern(n, coords);
  for (std::size_t p = 0; p < pairs; ++p) {
    const int i = static_cast<int>(2 * p);
    *a.slot(i, i) = 4.0;
    *a.slot(i + 1, i + 1) = 4.0;
    *a.slot(i, i + 1) = 0.5;
    *a.slot(i + 1, i) = 0.5;
  }
  SparseLu lu;
  bool was_analysis = false;
  ASSERT_TRUE(lu.factor(a, a.value_max_abs(), &was_analysis));
  EXPECT_TRUE(was_analysis);

  // Scaled stamps: diagonal -> 1e-16, off-diagonal -> 1.0. The matrix
  // stays comfortably nonsingular (each block is near-antidiagonal) but
  // the old diagonal pivots fall below the scale-relative singularity
  // threshold (~n·eps·max|A|), so the static-pattern numeric refactor
  // must bail out and factor() must recover with a fresh analysis.
  for (std::size_t p = 0; p < pairs; ++p) {
    const int i = static_cast<int>(2 * p);
    *a.slot(i, i) = 1e-16;
    *a.slot(i + 1, i + 1) = 1e-16;
    *a.slot(i, i + 1) = 1.0;
    *a.slot(i + 1, i) = 1.0;
  }
  ASSERT_TRUE(lu.factor(a, a.value_max_abs(), &was_analysis));
  EXPECT_TRUE(was_analysis) << "degraded pivots must force a re-analysis";
  util::Rng rng(73);
  solve_and_check(lu, a, rng, 1e-9);
}

}  // namespace
}  // namespace samurai::spice
