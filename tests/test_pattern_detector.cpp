#include <gtest/gtest.h>

#include "sram/detector.hpp"
#include "sram/pattern.hpp"

namespace samurai::sram {
namespace {

TEST(Pattern, OpsFromBits) {
  const auto ops = ops_from_bits({1, 0, 1});
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0], Op::kWrite1);
  EXPECT_EQ(ops[1], Op::kWrite0);
  EXPECT_EQ(op_name(ops[2]), "W1");
  EXPECT_EQ(op_name(Op::kRead), "RD");
  EXPECT_EQ(op_name(Op::kHold), "HD");
}

TEST(Pattern, EmptyOpsThrow) {
  EXPECT_THROW(build_pattern({}, 1.0), std::invalid_argument);
}

TEST(Pattern, InconsistentTimingThrows) {
  PatternTiming timing;
  timing.wl_delay_frac = 0.6;
  timing.wl_high_frac = 0.5;
  EXPECT_THROW(build_pattern({Op::kWrite1}, 1.0, timing),
               std::invalid_argument);
}

TEST(Pattern, WriteSlotDrivesBitlinesDifferentially) {
  const double vdd = 1.2;
  const auto wf = build_pattern({Op::kWrite0, Op::kWrite1}, vdd);
  const double mid0 = 0.5 * wf.timing.period;
  EXPECT_NEAR(wf.bl.eval(mid0), 0.0, 1e-9);
  EXPECT_NEAR(wf.blb.eval(mid0), vdd, 1e-9);
  const double mid1 = 1.5 * wf.timing.period;
  EXPECT_NEAR(wf.bl.eval(mid1), vdd, 1e-9);
  EXPECT_NEAR(wf.blb.eval(mid1), 0.0, 1e-9);
}

TEST(Pattern, WordlinePulsesOnlyDuringActiveOps) {
  const auto wf = build_pattern({Op::kWrite1, Op::kHold, Op::kRead}, 1.0);
  const double period = wf.timing.period;
  // Mid of write slot WL high; hold slot WL low; read slot WL high.
  EXPECT_NEAR(wf.wl.eval(0.5 * period), 1.0, 1e-9);
  EXPECT_NEAR(wf.wl.eval(1.5 * period), 0.0, 1e-9);
  EXPECT_NEAR(wf.wl.eval(2.5 * period), 1.0, 1e-9);
}

TEST(Pattern, ReadDrivesBothBitlinesHigh) {
  const auto wf = build_pattern({Op::kWrite0, Op::kRead}, 1.0);
  const double mid = 1.5 * wf.timing.period;
  EXPECT_NEAR(wf.bl.eval(mid), 1.0, 1e-9);
  EXPECT_NEAR(wf.blb.eval(mid), 1.0, 1e-9);
}

TEST(Pattern, SlotHelpers) {
  const auto wf = build_pattern({Op::kWrite1, Op::kWrite0}, 1.0);
  EXPECT_DOUBLE_EQ(wf.slot_start(1), wf.timing.period);
  EXPECT_GT(wf.wl_off_time(0), wf.slot_start(0));
  EXPECT_LT(wf.wl_off_time(0), wf.slot_start(1));
  EXPECT_DOUBLE_EQ(wf.t_end, 2.0 * wf.timing.period);
}

// ------------------------------------------------------------- detector

/// Make an ideal Q(t) that follows the expected bits instantly at WL rise.
core::Pwl ideal_q(const PatternWaveforms& wf, double vdd,
                  const std::vector<int>& bits) {
  core::Pwl q;
  q.append(0.0, 0.0);
  double level = 0.0;
  for (std::size_t k = 0; k < bits.size(); ++k) {
    const double target = bits[k] ? vdd : 0.0;
    if (target != level) {
      const double t_on = wf.slot_start(k) +
                          wf.timing.wl_delay_frac * wf.timing.period;
      q.append(t_on, level);
      q.append(t_on + 2.0 * wf.timing.edge, target);
      level = target;
    }
  }
  q.append(wf.t_end, level);
  return q;
}

TEST(Detector, CleanPatternReportsOk) {
  const double vdd = 1.2;
  const std::vector<int> bits = {1, 1, 0, 1, 0};
  const auto wf = build_pattern(ops_from_bits(bits), vdd);
  DetectorOptions options;
  options.v_dd = vdd;
  const auto report = check_pattern(ideal_q(wf, vdd, bits), wf, options);
  EXPECT_FALSE(report.any_error);
  EXPECT_FALSE(report.any_slow);
  ASSERT_EQ(report.ops.size(), 5u);
  EXPECT_EQ(report.ops[0].expected_bit, 1);
  EXPECT_EQ(report.ops[2].expected_bit, 0);
  for (const auto& op : report.ops) {
    EXPECT_EQ(op.outcome, OpOutcome::kOk);
  }
}

TEST(Detector, WrongFinalValueIsError) {
  const double vdd = 1.0;
  const auto wf = build_pattern({Op::kWrite1}, vdd);
  // Q never rises: write-1 failed.
  const core::Pwl q({0.0, wf.t_end}, {0.0, 0.0});
  DetectorOptions options;
  options.v_dd = vdd;
  const auto report = check_pattern(q, wf, options);
  EXPECT_TRUE(report.any_error);
  EXPECT_EQ(report.ops[0].outcome, OpOutcome::kError);
}

TEST(Detector, LateSettlingIsSlow) {
  const double vdd = 1.0;
  const auto wf = build_pattern({Op::kWrite1}, vdd);
  // Q settles only at 90% of the slot, long after WL turned off.
  core::Pwl q;
  q.append(0.0, 0.0);
  q.append(0.85 * wf.timing.period, 0.0);
  q.append(0.90 * wf.timing.period, vdd);
  q.append(wf.t_end, vdd);
  DetectorOptions options;
  options.v_dd = vdd;
  const auto report = check_pattern(q, wf, options);
  EXPECT_FALSE(report.any_error);
  EXPECT_TRUE(report.any_slow);
  ASSERT_TRUE(report.ops[0].settle_after_wl.has_value());
  EXPECT_GT(*report.ops[0].settle_after_wl, 0.0);
}

TEST(Detector, HoldUpsetIsError) {
  const double vdd = 1.0;
  const auto wf = build_pattern({Op::kWrite1, Op::kHold}, vdd);
  // Q written correctly, then collapses during the hold.
  core::Pwl q;
  q.append(0.0, 0.0);
  q.append(0.3 * wf.timing.period, vdd);
  q.append(1.2 * wf.timing.period, vdd);
  q.append(1.4 * wf.timing.period, 0.0);
  q.append(wf.t_end, 0.0);
  DetectorOptions options;
  options.v_dd = vdd;
  const auto report = check_pattern(q, wf, options);
  EXPECT_TRUE(report.any_error);
  EXPECT_EQ(report.ops[0].outcome, OpOutcome::kOk);
  EXPECT_EQ(report.ops[1].outcome, OpOutcome::kError);
}

TEST(Detector, LeadingHoldsHaveNothingToVerify) {
  const auto wf = build_pattern({Op::kHold, Op::kWrite0}, 1.0);
  const core::Pwl q({0.0, wf.t_end}, {0.0, 0.0});
  DetectorOptions options;
  options.v_dd = 1.0;
  const auto report = check_pattern(q, wf, options);
  EXPECT_FALSE(report.any_error);
  EXPECT_EQ(report.ops[0].expected_bit, -1);
}

TEST(Detector, BadVddThrows) {
  const auto wf = build_pattern({Op::kWrite1}, 1.0);
  const core::Pwl q({0.0, wf.t_end}, {0.0, 0.0});
  DetectorOptions options;
  options.v_dd = 0.0;
  EXPECT_THROW(check_pattern(q, wf, options), std::invalid_argument);
}

}  // namespace
}  // namespace samurai::sram
