// Dense-vs-sparse solver equivalence and sparse-engine contracts.
//
// The sparse CSR/stamp-program path must be a pure acceleration: on the
// same circuit and options it has to reproduce the dense engine's
// waveforms within Newton tolerance with the *same* accepted-step
// sequence, reuse its symbolic factorization across iterations, steps and
// re-attaches, and pick itself automatically only above the size
// threshold. Thread-parallel runs must be bit-identical per engine
// (registered under the concurrency label).
#include "spice/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "spice/devices.hpp"
#include "sram/column.hpp"
#include "sram/coupled.hpp"
#include "sram/methodology.hpp"

namespace samurai {
namespace {

sram::MethodologyConfig cell_config(spice::SolverKind solver) {
  sram::MethodologyConfig config;
  config.tech = physics::technology("65nm");
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0, 1});
  config.transient.solver = solver;
  return config;
}

sram::ColumnConfig column_config(std::size_t cells) {
  sram::ColumnConfig config;
  config.tech = physics::technology("90nm");
  config.num_cells = cells;
  config.initial_bits.assign(cells, 0);
  config.initial_bits[cells - 1] = 1;
  config.ops = {sram::ColumnOp::write(0, 1), sram::ColumnOp::read(0),
                sram::ColumnOp::read(cells - 1)};
  return config;
}

spice::TransientResult run_column(const sram::ColumnConfig& config,
                                  spice::SolverKind solver,
                                  sram::ColumnBuild* build_out = nullptr,
                                  bool fixed_steps = false,
                                  spice::ActivityMode activity =
                                      spice::ActivityMode::kOff,
                                  double activity_tol = 0.0) {
  spice::Circuit circuit;
  auto build = sram::build_column(circuit, config);
  spice::TransientOptions options = sram::column_transient_options(config);
  options.solver = solver;
  if (fixed_steps) {
    // Disable LTE control: every step lands on dt_max. Both engines then
    // walk the exact same time grid regardless of last-bit roundoff in
    // their solutions, which is how the benchmarks guarantee the two
    // timed runs do identical work.
    options.dt_initial = options.dt_max;
    options.lte_reltol = 1e9;
    options.lte_abstol = 1e9;
  }
  options.activity =
      sram::column_activity(circuit, config, activity, activity_tol);
  if (build_out) *build_out = std::move(build);
  return spice::transient(circuit, options);
}

double max_waveform_diff(const spice::TransientResult& a,
                         const spice::TransientResult& b,
                         const std::string& node, double t_end) {
  double max_diff = 0.0;
  for (int i = 0; i <= 300; ++i) {
    const double t = t_end * i / 300.0;
    max_diff =
        std::max(max_diff, std::abs(a.voltage_at(node, t) - b.voltage_at(node, t)));
  }
  return max_diff;
}

TEST(SparseSolver, SixTWriteMatchesDense) {
  // The cell sits far below the auto threshold, so both runs pin their
  // engine explicitly. Same circuit, same options: waveforms must agree
  // within Newton tolerance on both storage nodes.
  const auto dense = sram::run_nominal(cell_config(spice::SolverKind::kDense));
  const auto sparse =
      sram::run_nominal(cell_config(spice::SolverKind::kSparse));
  EXPECT_EQ(dense.result.stats().sp_solves, 0u);
  EXPECT_GT(sparse.result.stats().sp_solves, 0u);
  EXPECT_EQ(sparse.result.stats().sp_solves,
            sparse.result.stats().lu_solves);
  EXPECT_EQ(sparse.result.stats().sp_symbolic_analyses +
                sparse.result.stats().sp_numeric_refactors,
            sparse.result.stats().lu_factorizations);
  for (const std::string& node : {dense.handles.q, dense.handles.qb}) {
    EXPECT_LT(max_waveform_diff(dense.result, sparse.result, node,
                                dense.pattern.t_end),
              2e-4)
        << "node " << node;
  }
}

TEST(SparseSolver, CoupledCellMatchesDense) {
  // The coupled run advances trap chains from the instantaneous solution
  // after every accepted step. With the injection scaled to zero the trap
  // streams cannot feed back, so both engines must produce the same
  // waveforms while still exercising the callback-source + on_step path.
  auto make = [](spice::SolverKind solver) {
    sram::MethodologyConfig config = cell_config(solver);
    config.rtn_scale = 0.0;
    config.profile.fixed_count = 2;
    config.seed = 11;
    return sram::run_coupled(config);
  };
  const auto dense = make(spice::SolverKind::kDense);
  const auto sparse = make(spice::SolverKind::kSparse);
  const double t_end = dense.pattern.t_end;
  for (const std::string& node : {dense.q_node, dense.qb_node}) {
    EXPECT_LT(max_waveform_diff(dense.transient, sparse.transient, node, t_end),
              2e-4)
        << "node " << node;
  }
  EXPECT_EQ(dense.report.any_error, sparse.report.any_error);
  EXPECT_EQ(dense.report.any_slow, sparse.report.any_slow);
}

TEST(SparseSolver, ColumnMatchesDenseWithSameStepSequence) {
  const sram::ColumnConfig config = column_config(8);
  sram::ColumnBuild build;
  const auto dense = run_column(config, spice::SolverKind::kDense, &build);
  const auto sparse = run_column(config, spice::SolverKind::kSparse);
  // Adaptive LTE control may diverge by a few accept decisions (the
  // engines agree only to Newton tolerance, and the controller thresholds
  // on that noise), so the step counts must be close but need not match.
  const auto lo = std::min(dense.num_points(), sparse.num_points());
  const auto hi = std::max(dense.num_points(), sparse.num_points());
  EXPECT_LT(hi - lo, lo / 50 + 2);
  EXPECT_GT(sparse.stats().sp_solves, 0u);
  EXPECT_EQ(dense.stats().sp_solves, 0u);
  const double t_end = static_cast<double>(config.ops.size()) *
                       config.timing.period;
  for (const std::string& node :
       {build.bl, build.blb, build.cells[0].q, build.cells[7].q}) {
    EXPECT_LT(max_waveform_diff(dense, sparse, node, t_end), 2e-4)
        << "node " << node;
  }
  // Identical op outcomes.
  const auto dense_report = sram::check_column(dense, config, build);
  const auto sparse_report = sram::check_column(sparse, config, build);
  EXPECT_EQ(dense_report.any_error, sparse_report.any_error);
  ASSERT_EQ(dense_report.reads.size(), sparse_report.reads.size());
  for (std::size_t i = 0; i < dense_report.reads.size(); ++i) {
    EXPECT_EQ(dense_report.reads[i].sensed, sparse_report.reads[i].sensed);
    EXPECT_NEAR(dense_report.reads[i].sense_margin,
                sparse_report.reads[i].sense_margin, 2e-4);
  }
}

TEST(SparseSolver, FixedStepColumnHasIdenticalStepSequence) {
  // With LTE control disabled both engines must accept exactly the same
  // time points — the contract the timed benchmark comparison relies on
  // so that a speedup never hides a different amount of work.
  const sram::ColumnConfig config = column_config(8);
  sram::ColumnBuild build;
  const auto dense = run_column(config, spice::SolverKind::kDense, &build,
                                /*fixed_steps=*/true);
  const auto sparse = run_column(config, spice::SolverKind::kSparse, nullptr,
                                 /*fixed_steps=*/true);
  ASSERT_EQ(dense.num_points(), sparse.num_points());
  EXPECT_EQ(dense.times(), sparse.times());
  EXPECT_EQ(dense.stats().steps_rejected, sparse.stats().steps_rejected);
  const double t_end = static_cast<double>(config.ops.size()) *
                       config.timing.period;
  for (const std::string& node : {build.bl, build.cells[0].q}) {
    EXPECT_LT(max_waveform_diff(dense, sparse, node, t_end), 2e-4)
        << "node " << node;
  }
}

TEST(SparseSolver, AutoThresholdPicksBySystemSize) {
  // 6T cell: ~a dozen unknowns, dense. 8-cell column: 7N + 10 > 50,
  // sparse. kAuto is the default everywhere, so these two assertions pin
  // the crossover users actually get.
  const auto cell = sram::run_nominal(cell_config(spice::SolverKind::kAuto));
  EXPECT_EQ(cell.result.stats().sp_solves, 0u);
  const auto column = run_column(column_config(8), spice::SolverKind::kAuto);
  EXPECT_GT(column.stats().sp_solves, 0u);
  EXPECT_EQ(column.stats().sp_solves, column.stats().lu_solves);
}

TEST(SparseSolver, SymbolicAnalysisIsReusedAcrossStepsAndPasses) {
  // Within one transient the analysis happens once (numeric refactors do
  // the rest), and run_column_rtn's injected pass shares the workspace —
  // identical pattern, so pass 2 must not re-analyse or re-allocate.
  const auto result = sram::run_column_rtn(column_config(8), 3, 0.0);
  const auto& nominal = result.rtn.nominal.stats();
  const auto& injected = result.rtn.with_rtn.stats();
  EXPECT_GT(nominal.sp_solves, 0u);
  EXPECT_GE(nominal.sp_symbolic_analyses, 1u);
  // Rare numeric fallbacks may re-analyse, but refactors must dominate.
  EXPECT_LT(nominal.sp_symbolic_analyses * 10, nominal.sp_numeric_refactors);
  EXPECT_EQ(nominal.workspace_allocations, 1u);
  EXPECT_EQ(injected.sp_symbolic_analyses, 0u);
  EXPECT_GT(injected.sp_numeric_refactors, 0u);
  EXPECT_EQ(injected.workspace_allocations, 0u);
}

TEST(SparseSolver, CoupledColumnRunsOnSparseEngine) {
  // The coupled column couples every cell's live traps through one MNA
  // system; above the threshold it must land on the sparse engine and
  // still pass its own op sequence at zero injection scale.
  sram::ColumnConfig config = column_config(8);
  physics::TrapProfileOptions profile;
  profile.fixed_count = 1;
  const auto result = sram::run_coupled_column(config, 5, 0.0, profile);
  EXPECT_GT(result.transient.stats().sp_solves, 0u);
  EXPECT_EQ(result.num_traps, 6u * 8u);
  EXPECT_FALSE(result.report.any_error);
}

TEST(SparseSolver, ThreadedColumnRunsAreBitIdentical) {
  // Eight concurrent column transients per engine against a
  // single-threaded reference: every voltage sample must be *bit*
  // identical — the engines keep all mutable state inside the workspace,
  // so concurrency must never change a result.
  const sram::ColumnConfig config = column_config(8);
  for (const auto solver :
       {spice::SolverKind::kDense, spice::SolverKind::kSparse}) {
    sram::ColumnBuild build;
    const auto reference = run_column(config, solver, &build);
    constexpr int kThreads = 8;
    std::vector<spice::TransientResult> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i] { results[static_cast<std::size_t>(i)] = run_column(config, solver); });
    }
    for (auto& thread : threads) thread.join();
    for (const auto& result : results) {
      ASSERT_EQ(result.times(), reference.times());
      for (const std::string& node : {build.bl, build.cells[3].q}) {
        ASSERT_EQ(result.voltage_samples(node),
                  reference.voltage_samples(node))
            << "solver " << static_cast<int>(solver) << " node " << node;
      }
    }
  }
}

TEST(SparseSolver, ActivityElideIsBitIdenticalOnFixedGrid) {
  // Stamp replay at tolerance 0 on a fixed time grid is *exact*: the
  // cached slot/residual adds are the same `+=` the device's load would
  // have executed, so every voltage sample must match the unpartitioned
  // sparse run bit for bit — while a large fraction of the device
  // evaluations is elided.
  const sram::ColumnConfig config = column_config(8);
  const auto off =
      run_column(config, spice::SolverKind::kSparse, nullptr, true);
  sram::ColumnBuild build;
  const auto elide = run_column(config, spice::SolverKind::kSparse, &build,
                                true, spice::ActivityMode::kElide, 0.0);
  ASSERT_EQ(elide.times(), off.times());
  for (const std::string& node : off.node_names()) {
    ASSERT_EQ(elide.voltage_samples(node), off.voltage_samples(node))
        << "node " << node;
  }
  const auto& off_st = off.stats();
  const auto& el_st = elide.stats();
  EXPECT_EQ(el_st.newton_iterations, off_st.newton_iterations);
  // At tolerance 0 a replay needs every input voltage bitwise unchanged,
  // which a Newton update never leaves behind — so the partitioned path
  // runs every load through the capture machinery and the accounting
  // identity holds trivially. The exactness being tested is that the
  // capture path (slot mirror + scratch-residual harvest) produces the
  // same bits as the direct stamp.
  EXPECT_EQ(el_st.device_loads + el_st.ap_elided_loads, off_st.device_loads);
  EXPECT_EQ(off_st.ap_elided_loads, 0u);
  // Quiescent rows sit at the bottom of the fill-reducing permutation, so
  // most refactors only resweep the active suffix.
  EXPECT_GT(el_st.ap_partial_refactors, 0u);
  EXPECT_GT(el_st.ap_rows_skipped, 0u);
}

TEST(SparseSolver, ActivityElideToleranceBoundsError) {
  // With a nonzero tolerance quiescent devices replay cached stamps while
  // their inputs stay inside the tolerance ball, so a large fraction of
  // the evaluations is elided and the waveform error stays on the order
  // of the tolerance (far inside the dense-vs-sparse bound).
  const sram::ColumnConfig config = column_config(8);
  sram::ColumnBuild build;
  const auto off =
      run_column(config, spice::SolverKind::kSparse, &build, true);
  const auto elide = run_column(config, spice::SolverKind::kSparse, nullptr,
                                true, spice::ActivityMode::kElide, 1e-6);
  const double t_end = off.times().back();
  for (const std::string& node :
       {build.bl, build.blb, build.cells[3].q, build.cells[0].q}) {
    EXPECT_LT(max_waveform_diff(off, elide, node, t_end), 1e-4)
        << "node " << node;
  }
  const auto& st = elide.stats();
  EXPECT_GT(st.ap_elided_loads, 0u);
  // Quiescent cells dominate this workload (6 of 8 rows are never
  // addressed), so elision has to remove a meaningful share of the work,
  // not a token amount.
  EXPECT_GT(st.ap_elided_loads * 5, st.device_loads);
  EXPECT_GT(st.ap_partial_refactors, 0u);
}

TEST(SparseSolver, ActivitySchurMatchesUnpartitioned) {
  // The Schur fold changes the elimination order (quiescent-cell
  // interiors first), which is a different—but still exact—LU of the same
  // Jacobian. Waveforms must agree with the unpartitioned sparse run
  // within the same tolerance the dense-vs-sparse tests use.
  const sram::ColumnConfig config = column_config(8);
  sram::ColumnBuild build;
  const auto off =
      run_column(config, spice::SolverKind::kSparse, &build, true);
  const auto schur = run_column(config, spice::SolverKind::kSparse, nullptr,
                                true, spice::ActivityMode::kSchur, 1e-6);
  ASSERT_EQ(schur.times().size(), off.times().size());
  const double t_end = off.times().back();
  // Shared rails plus one quiescent cell's storage node: the fold must
  // not disturb either side of its boundary.
  for (const std::string& node :
       {build.bl, build.blb, build.cells[3].q, build.cells[0].q}) {
    EXPECT_LT(max_waveform_diff(off, schur, node, t_end), 2e-4)
        << "node " << node;
  }
  const auto& st = schur.stats();
  EXPECT_GT(st.ap_folded_cells, 0u);
  EXPECT_GT(st.ap_elided_loads, 0u);
  // The fold is part of the symbolic analysis; steady stepping must keep
  // reusing it rather than re-analyzing.
  EXPECT_LT(st.sp_symbolic_analyses, 5u);
}

}  // namespace
}  // namespace samurai
