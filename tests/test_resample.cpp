#include "signal/resample.hpp"

#include <gtest/gtest.h>

namespace samurai::signal {
namespace {

TEST(Resample, StepTraceOnUniformGrid) {
  const core::StepTrace trace(0.0, {1.0}, {5.0});
  const auto record = resample(trace, 0.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(record.dt, 0.5);
  ASSERT_EQ(record.samples.size(), 4u);
  EXPECT_DOUBLE_EQ(record.samples[0], 0.0);  // t=0
  EXPECT_DOUBLE_EQ(record.samples[1], 0.0);  // t=0.5
  EXPECT_DOUBLE_EQ(record.samples[2], 5.0);  // t=1.0
  EXPECT_DOUBLE_EQ(record.samples[3], 5.0);  // t=1.5
}

TEST(Resample, PwlOnUniformGrid) {
  const core::Pwl wave({0.0, 1.0}, {0.0, 1.0});
  const auto record = resample(wave, 0.0, 1.0, 10);
  EXPECT_DOUBLE_EQ(record.dt, 0.1);
  EXPECT_NEAR(record.samples[5], 0.5, 1e-12);
}

TEST(Resample, TrajectoryAsBinaryRecord) {
  const core::TrapTrajectory traj(0.0, 4.0, physics::TrapState::kEmpty, {2.0});
  const auto record = resample(traj, 8);
  EXPECT_DOUBLE_EQ(record.samples[0], 0.0);
  EXPECT_DOUBLE_EQ(record.samples[4], 1.0);  // t = 2.0
  EXPECT_DOUBLE_EQ(record.samples[7], 1.0);
}

TEST(Resample, BadParametersThrow) {
  const core::StepTrace trace;
  EXPECT_THROW(resample(trace, 1.0, 0.0, 8), std::invalid_argument);
  EXPECT_THROW(resample(trace, 0.0, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace samurai::signal
