#include "sram/snm.hpp"

#include <gtest/gtest.h>

namespace samurai::sram {
namespace {

SnmConfig config_90nm() {
  SnmConfig config;
  config.tech = physics::technology("90nm");
  config.sweep_points = 41;
  return config;
}

TEST(Snm, TooFewPointsThrows) {
  SnmConfig config = config_90nm();
  config.sweep_points = 4;
  EXPECT_THROW(compute_snm(config), std::invalid_argument);
}

TEST(Snm, VtcsAreMonotoneRailToRail) {
  const auto result = compute_snm(config_90nm());
  ASSERT_EQ(result.vtc1.size(), result.input_grid.size());
  EXPECT_NEAR(result.vtc1.front(), 1.2, 0.02);
  EXPECT_NEAR(result.vtc1.back(), 0.0, 0.02);
  for (std::size_t i = 1; i < result.vtc1.size(); ++i) {
    EXPECT_LE(result.vtc1[i], result.vtc1[i - 1] + 1e-6);
    EXPECT_LE(result.vtc2[i], result.vtc2[i - 1] + 1e-6);
  }
}

TEST(Snm, HoldSnmInTextbookRange) {
  const auto result = compute_snm(config_90nm());
  // Hold SNM of a balanced cell: ~0.3-0.45 of V_dd.
  EXPECT_GT(result.snm, 0.25 * 1.2);
  EXPECT_LT(result.snm, 0.5 * 1.2);
}

TEST(Snm, ReadSnmSmallerThanHold) {
  SnmConfig config = config_90nm();
  const double hold = compute_snm(config).snm;
  config.mode = SnmMode::kRead;
  const double read = compute_snm(config).snm;
  EXPECT_GT(read, 0.0);
  EXPECT_LT(read, 0.7 * hold);
}

TEST(Snm, ReadVtcLowLevelIsLifted) {
  SnmConfig config = config_90nm();
  config.mode = SnmMode::kRead;
  const auto result = compute_snm(config);
  // The pass gate pulls the low output up to the read-disturb level.
  EXPECT_GT(result.vtc1.back(), 0.1);
}

TEST(Snm, SnmShrinksWithSupply) {
  SnmConfig config = config_90nm();
  config.mode = SnmMode::kRead;
  const double full = compute_snm(config).snm;
  config.tech.v_dd = 0.7;
  const double low = compute_snm(config).snm;
  EXPECT_LT(low, full);
  EXPECT_GT(low, 0.0);
}

TEST(Snm, TrappedChargeShiftCostsMargin) {
  // An RTN/NBTI-style V_T shift on the read pull-down costs read SNM —
  // the stability-axis counterpart of the paper's Fig. 2 increments.
  SnmConfig config = config_90nm();
  config.mode = SnmMode::kRead;
  const double base = compute_snm(config).snm;
  config.vth_shifts["M6"] = 0.04;
  const double shifted = compute_snm(config).snm;
  EXPECT_LT(shifted, base);
  EXPECT_GT(base - shifted, 0.002);
}

TEST(Snm, StrongerPullDownsImproveReadSnm) {
  SnmConfig weak = config_90nm();
  weak.mode = SnmMode::kRead;
  weak.sizing.pull_down = 1.2;
  SnmConfig strong = weak;
  strong.sizing.pull_down = 2.6;
  EXPECT_GT(compute_snm(strong).snm, compute_snm(weak).snm);
}

TEST(Snm, ExtremeImbalanceKillsBistability) {
  // Pull-down V_T pushed above the supply: that inverter can no longer
  // pull low, the butterfly collapses and SNM -> 0.
  SnmConfig config = config_90nm();
  config.tech.v_dd = 0.6;
  config.mode = SnmMode::kRead;
  config.vth_shifts["M6"] = 0.8;
  config.vth_shifts["M5"] = 0.8;
  const auto result = compute_snm(config);
  EXPECT_LT(result.snm, 0.05);
}

}  // namespace
}  // namespace samurai::sram
