// Tests for the shared work-stealing executor: full index coverage,
// determinism across thread counts, first-exception propagation onto the
// calling thread, and graceful degradation of nested parallel loops.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace samurai::util {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  const auto stats = parallel_for_indexed(
      kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(stats.tasks_run, kN);
  EXPECT_GE(stats.threads_used, 1u);
  EXPECT_LE(stats.threads_used, 8u);
  EXPECT_GE(stats.wall_seconds, 0.0);
}

TEST(ThreadPool, ResultsAreIdenticalAcrossThreadCounts) {
  constexpr std::size_t kN = 513;
  auto run = [&](std::size_t threads) {
    std::vector<double> out(kN);
    parallel_for_indexed(
        kN,
        [&](std::size_t i) {
          out[i] = std::sin(static_cast<double>(i)) * 3.25 + 1.0;
        },
        threads);
    return out;
  };
  const auto serial = run(1);
  for (std::size_t threads : {2u, 8u}) {
    const auto parallel = run(threads);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(serial[i], parallel[i]) << "threads=" << threads;
    }
  }
}

TEST(ThreadPool, FirstExceptionIsRethrownOnCaller) {
  EXPECT_THROW(
      parallel_for_indexed(
          1000,
          [](std::size_t i) {
            if (i == 137) throw std::runtime_error("boom at 137");
          },
          8),
      std::runtime_error);
  // The pool must stay healthy after a throwing job.
  std::atomic<std::size_t> count{0};
  parallel_for_indexed(100, [&](std::size_t) { ++count; }, 8);
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, ExceptionCancelsRemainingWork) {
  std::atomic<std::uint64_t> executed{0};
  try {
    ThreadPool::shared().for_indexed(1'000'000, 4, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early abort");
      ++executed;
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error&) {
  }
  // Cancellation is cooperative, so some tasks run; far from all of them.
  EXPECT_LT(executed.load(), 1'000'000u);
}

TEST(ThreadPool, SerialPathPropagatesExceptions) {
  EXPECT_THROW(parallel_for_indexed(
                   10,
                   [](std::size_t i) {
                     if (i == 3) throw std::invalid_argument("serial");
                   },
                   1),
               std::invalid_argument);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  bool touched = false;
  const auto stats =
      parallel_for_indexed(0, [&](std::size_t) { touched = true; }, 8);
  EXPECT_FALSE(touched);
  EXPECT_EQ(stats.tasks_run, 0u);
}

TEST(ThreadPool, ParticipantsClampedToWork) {
  const auto stats = parallel_for_indexed(2, [](std::size_t) {}, 8);
  EXPECT_LE(stats.threads_used, 2u);
  EXPECT_EQ(stats.tasks_run, 2u);
}

TEST(ThreadPool, NestedLoopsDegradeToSerialWithoutDeadlock) {
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  parallel_for_indexed(
      kOuter,
      [&](std::size_t o) {
        parallel_for_indexed(
            kInner, [&](std::size_t i) { hits[o * kInner + i].fetch_add(1); },
            8);
      },
      8);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, StealsReportedWhenWorkIsImbalanced) {
  // One block holds all the slow tasks; the other participants must steal
  // to finish. (On a single-core host the schedule may still serialise,
  // so only sanity-check the counters rather than demanding steals.)
  const auto stats = parallel_for_indexed(
      64,
      [](std::size_t i) {
        volatile double sink = 0.0;
        const std::size_t spin = i < 8 ? 20'000 : 10;
        for (std::size_t k = 0; k < spin; ++k) sink += std::sqrt(double(k));
      },
      4);
  EXPECT_EQ(stats.tasks_run, 64u);
  EXPECT_LE(stats.steals, stats.tasks_run);
}

}  // namespace
}  // namespace samurai::util
