#include "physics/trap_profile.hpp"

#include <gtest/gtest.h>

#include "physics/technology.hpp"

namespace samurai::physics {
namespace {

TEST(TrapProfile, ExpectedCountScalesWithVolume) {
  const auto tech = technology("90nm");
  const MosGeometry small{100e-9, 90e-9};
  const MosGeometry big{200e-9, 90e-9};
  EXPECT_NEAR(expected_trap_count(tech, big) / expected_trap_count(tech, small),
              2.0, 1e-12);
}

TEST(TrapProfile, ScaledNodesHaveFewTraps) {
  // Paper §I-B: ~5-10 active traps in deeply scaled nodes, many more in
  // older ones — the regime split behind Fig. 3.
  const auto old_tech = technology("130nm");
  const auto new_tech = technology("22nm");
  const double old_count = expected_trap_count(
      old_tech, {old_tech.w_min, old_tech.l_min});
  const double new_count = expected_trap_count(
      new_tech, {2.0 * new_tech.w_min, new_tech.l_min});
  EXPECT_GT(old_count, 50.0);
  EXPECT_LT(new_count, 30.0);
  EXPECT_GT(new_count, 2.0);
}

TEST(TrapProfile, PoissonSampledCountHasRightMean) {
  const auto tech = technology("90nm");
  const MosGeometry geom{tech.w_min, tech.l_min};
  const double expected = expected_trap_count(tech, geom);
  util::Rng rng(100);
  double sum = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    util::Rng device_rng = rng.split(static_cast<std::uint64_t>(i) + 1);
    sum += static_cast<double>(
        sample_trap_profile(tech, geom, device_rng).size());
  }
  EXPECT_NEAR(sum / n, expected, 0.15 * expected);
}

TEST(TrapProfile, FixedCountOverridesPoisson) {
  const auto tech = technology("90nm");
  util::Rng rng(7);
  TrapProfileOptions options;
  options.fixed_count = 5;
  const auto traps =
      sample_trap_profile(tech, {tech.w_min, tech.l_min}, rng, options);
  EXPECT_EQ(traps.size(), 5u);
}

TEST(TrapProfile, TrapParametersWithinBounds) {
  const auto tech = technology("90nm");
  util::Rng rng(8);
  TrapProfileOptions options;
  options.fixed_count = 500;
  const auto traps =
      sample_trap_profile(tech, {tech.w_min, tech.l_min}, rng, options);
  for (const auto& trap : traps) {
    EXPECT_GT(trap.y_tr, 0.0);
    EXPECT_LE(trap.y_tr, tech.t_ox);
    EXPECT_GE(trap.e_tr, tech.trap_e_min);
    EXPECT_LE(trap.e_tr, tech.trap_e_max);
    EXPECT_EQ(trap.init_state, TrapState::kEmpty);
  }
}

TEST(TrapProfile, EquilibriumInitialisationMatchesStationaryFill) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  util::Rng rng(9);
  TrapProfileOptions options;
  options.fixed_count = 4000;
  options.equilibrium_bias = tech.v_dd;
  const auto traps =
      sample_trap_profile(tech, {tech.w_min, tech.l_min}, rng, options);
  double filled = 0.0;
  double expected = 0.0;
  for (const auto& trap : traps) {
    if (trap.init_state == TrapState::kFilled) filled += 1.0;
    expected += model.stationary_fill(trap, tech.v_dd);
  }
  EXPECT_NEAR(filled, expected, 3.0 * std::sqrt(expected) + 5.0);
  EXPECT_GT(filled, 0.0);  // at V_dd a sizeable fraction must be filled
}

TEST(TrapProfile, DeterministicGivenSeed) {
  const auto tech = technology("90nm");
  util::Rng rng1(42), rng2(42);
  const auto a = sample_trap_profile(tech, {tech.w_min, tech.l_min}, rng1);
  const auto b = sample_trap_profile(tech, {tech.w_min, tech.l_min}, rng2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].y_tr, b[i].y_tr);
    EXPECT_DOUBLE_EQ(a[i].e_tr, b[i].e_tr);
  }
}

TEST(TrapProfile, ActiveCountIsSubsetAndBiasDependent) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  util::Rng rng(11);
  TrapProfileOptions options;
  options.fixed_count = 300;
  const auto traps =
      sample_trap_profile(tech, {tech.w_min, tech.l_min}, rng, options);
  const auto active_low = active_trap_count(model, traps, 0.0);
  const auto active_high = active_trap_count(model, traps, tech.v_dd);
  EXPECT_LE(active_low, traps.size());
  EXPECT_LE(active_high, traps.size());
  // A wider resonance window can only include more traps.
  EXPECT_GE(active_trap_count(model, traps, tech.v_dd, 10.0), active_high);
}

}  // namespace
}  // namespace samurai::physics
