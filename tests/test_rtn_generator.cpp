#include "core/rtn_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "physics/technology.hpp"
#include "physics/trap_profile.hpp"

namespace samurai::core {
namespace {

class RtnGeneratorTest : public ::testing::Test {
 protected:
  physics::Technology tech_ = physics::technology("90nm");
  physics::SrhModel srh_{tech_};
  physics::MosDevice device_{tech_, physics::MosType::kNmos, {220e-9, 90e-9}};
};

TEST_F(RtnGeneratorTest, AmplitudeMatchesEq3) {
  // ΔI = I_d / (W L N) exactly, with the carrier count floored at one.
  const double v_gs = 1.0;
  const double i_d = 1e-4;
  const double expected = i_d / device_.carrier_count(v_gs);
  EXPECT_NEAR(rtn_amplitude(device_, v_gs, i_d), expected, expected * 1e-12);
}

TEST_F(RtnGeneratorTest, AmplitudeFloorsCarrierCount) {
  // Deep subthreshold: carrier count < 1 is floored, so the amplitude
  // cannot exceed |I_d|.
  const double amp = rtn_amplitude(device_, -0.5, 1e-9);
  EXPECT_LE(amp, 1e-9 * (1.0 + 1e-12));
}

TEST_F(RtnGeneratorTest, BadHorizonThrows) {
  util::Rng rng(1);
  RtnGeneratorOptions options;
  options.t0 = 1.0;
  options.tf = 0.5;
  EXPECT_THROW(generate_device_rtn(srh_, device_, {}, Pwl::constant(1.0),
                                   Pwl::constant(1e-4), rng, options),
               std::invalid_argument);
}

TEST_F(RtnGeneratorTest, NoTrapsGiveZeroTrace) {
  util::Rng rng(2);
  RtnGeneratorOptions options;
  options.tf = 1e-6;
  const auto result = generate_device_rtn(srh_, device_, {}, Pwl::constant(1.0),
                                          Pwl::constant(1e-4), rng, options);
  EXPECT_EQ(result.n_filled.num_steps(), 0u);
  for (double v : result.i_rtn.values()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(RtnGeneratorTest, PrebuiltWorkloadMatchesOneShotGenerator) {
  // DeviceRtnWorkload bakes the propensity tabulations at construction;
  // generate() must then reproduce generate_device_rtn's trajectories and
  // occupancy bit-for-bit (same schedule, same per-trap RNG streams). The
  // rendered trace uses the tabulated amplitude envelope: exact at
  // tabulation points, so the waveforms agree to interpolation error.
  const std::vector<physics::Trap> traps = {
      {1.2e-9, 0.05, physics::TrapState::kEmpty},
      {0.8e-9, -0.1, physics::TrapState::kFilled},
      {1.6e-9, 0.2, physics::TrapState::kEmpty},
  };
  const Pwl v_gs({0.0, 0.4e-6, 0.5e-6, 1e-6}, {1.0, 1.0, 0.2, 0.2});
  const Pwl i_d({0.0, 0.4e-6, 0.5e-6, 1e-6}, {1e-4, 1e-4, 1e-6, 1e-6});
  RtnGeneratorOptions options;
  options.tf = 1e-6;

  util::Rng rng_a(77);
  const auto one_shot =
      generate_device_rtn(srh_, device_, traps, v_gs, i_d, rng_a, options);

  const DeviceRtnWorkload workload(srh_, device_, traps, v_gs, i_d,
                                   options.max_bias_step);
  ASSERT_EQ(workload.num_traps(), traps.size());
  util::Rng rng_b(77);
  const auto prebuilt = workload.generate(rng_b, options);

  ASSERT_EQ(one_shot.trajectories.size(), prebuilt.trajectories.size());
  for (std::size_t i = 0; i < traps.size(); ++i) {
    const auto& expect = one_shot.trajectories[i].switch_times();
    const auto& actual = prebuilt.trajectories[i].switch_times();
    ASSERT_EQ(expect.size(), actual.size()) << "trap " << i;
    for (std::size_t k = 0; k < expect.size(); ++k) {
      EXPECT_EQ(expect[k], actual[k]) << "trap " << i << " switch " << k;
    }
  }
  EXPECT_EQ(one_shot.stats.candidates, prebuilt.stats.candidates);
  EXPECT_EQ(one_shot.stats.accepted, prebuilt.stats.accepted);

  // Same render grid; amplitudes agree closely on it.
  ASSERT_EQ(one_shot.i_rtn.size(), prebuilt.i_rtn.size());
  for (std::size_t k = 0; k < one_shot.i_rtn.size(); ++k) {
    EXPECT_EQ(one_shot.i_rtn.times()[k], prebuilt.i_rtn.times()[k]);
    const double expect = one_shot.i_rtn.values()[k];
    const double actual = prebuilt.i_rtn.values()[k];
    EXPECT_NEAR(actual, expect, 1e-2 * std::abs(expect) + 1e-12)
        << "sample " << k;
  }
}

TEST(RtnGrid, TwinPointsAreAdjacentRepresentableTimes) {
  // Each interior switch gets a twin at nextafter(t, t0): the closest
  // representable instant before the step, so interpolation between twin
  // and switch renders an exact step.
  const std::vector<double> switches = {0.25, 0.5, 0.75};
  const auto grid = build_rtn_grid(0.0, 1.0, 2, switches);
  for (double t : switches) {
    EXPECT_TRUE(std::binary_search(grid.begin(), grid.end(), t));
    EXPECT_TRUE(
        std::binary_search(grid.begin(), grid.end(), std::nextafter(t, 0.0)));
  }
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_EQ(std::adjacent_find(grid.begin(), grid.end()), grid.end());
}

TEST(RtnGrid, CloseSwitchesKeepDistinctSteps) {
  // Regression: the old fixed offset eps = (tf-t0)*1e-9 let the twin of a
  // switch land at or before the *previous* switch whenever two switches
  // were closer than eps, smearing the step after dedup. With nextafter
  // twins, switches one ULP-spaced gap apart still render as two steps.
  const double t1 = 0.5;
  const double t2 = 0.5 + 1e-12;  // far closer than the old eps of 1e-9
  const auto grid = build_rtn_grid(0.0, 1.0, 2, {t1, t2});
  ASSERT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_EQ(std::adjacent_find(grid.begin(), grid.end()), grid.end());
  // Both switches and both twins present, in strict order.
  const double twin1 = std::nextafter(t1, 0.0);
  const double twin2 = std::nextafter(t2, 0.0);
  EXPECT_TRUE(std::binary_search(grid.begin(), grid.end(), twin1));
  EXPECT_TRUE(std::binary_search(grid.begin(), grid.end(), t1));
  EXPECT_TRUE(std::binary_search(grid.begin(), grid.end(), twin2));
  EXPECT_TRUE(std::binary_search(grid.begin(), grid.end(), t2));
  EXPECT_LT(twin1, t1);
  EXPECT_LT(t1, twin2);
  EXPECT_LT(twin2, t2);
}

TEST(RtnGrid, BoundaryAndDegenerateSwitchesAreHandled) {
  // Switches at/outside the horizon are skipped; a switch one ULP above
  // t0 keeps only points inside (t0, tf); duplicated switches dedup.
  const double t0 = 1.0;
  const double tf = 2.0;
  const double first_interior = std::nextafter(t0, tf);
  const auto grid =
      build_rtn_grid(t0, tf, 4, {t0, first_interior, 1.5, 1.5, tf, 3.0});
  EXPECT_TRUE(std::is_sorted(grid.begin(), grid.end()));
  EXPECT_EQ(std::adjacent_find(grid.begin(), grid.end()), grid.end());
  EXPECT_EQ(grid.front(), t0);
  EXPECT_EQ(grid.back(), tf);
  // The twin of first_interior would be t0 itself: dropped as a twin but
  // t0 stays as the envelope start, and the switch itself survives.
  EXPECT_TRUE(
      std::binary_search(grid.begin(), grid.end(), first_interior));
}

TEST_F(RtnGeneratorTest, TraceEqualsAmplitudeTimesOccupancy) {
  util::Rng rng(3);
  std::vector<physics::Trap> traps = {
      {0.3 * tech_.t_ox, 0.55, physics::TrapState::kEmpty},
      {0.4 * tech_.t_ox, 0.60, physics::TrapState::kEmpty},
  };
  RtnGeneratorOptions options;
  options.tf = 2e-6;
  const double v_gs = 0.9;
  const double i_d = 2e-4;
  const auto result = generate_device_rtn(srh_, device_, traps,
                                          Pwl::constant(v_gs),
                                          Pwl::constant(i_d), rng, options);
  const double amp = rtn_amplitude(device_, v_gs, i_d);
  for (double t : {1e-7, 5e-7, 1.5e-6}) {
    EXPECT_NEAR(result.i_rtn.eval(t), amp * result.n_filled.eval(t),
                amp * 0.05)
        << "t=" << t;
  }
}

TEST_F(RtnGeneratorTest, AmplitudeScaleIsLinear) {
  std::vector<physics::Trap> traps = {
      {0.3 * tech_.t_ox, 0.55, physics::TrapState::kEmpty}};
  RtnGeneratorOptions options;
  options.tf = 1e-6;
  options.amplitude_scale = 1.0;
  util::Rng rng_a(4), rng_b(4);
  const auto base = generate_device_rtn(srh_, device_, traps,
                                        Pwl::constant(0.9),
                                        Pwl::constant(1e-4), rng_a, options);
  options.amplitude_scale = 30.0;
  const auto scaled = generate_device_rtn(srh_, device_, traps,
                                          Pwl::constant(0.9),
                                          Pwl::constant(1e-4), rng_b, options);
  // Same seed -> identical switch pattern; values scale by 30.
  ASSERT_EQ(base.i_rtn.size(), scaled.i_rtn.size());
  for (std::size_t i = 0; i < base.i_rtn.size(); ++i) {
    EXPECT_NEAR(scaled.i_rtn.values()[i], 30.0 * base.i_rtn.values()[i],
                1e-18);
  }
}

TEST_F(RtnGeneratorTest, DeterministicAndOrderIndependentStreams) {
  util::Rng rng_a(5), rng_b(5);
  std::vector<physics::Trap> traps;
  for (int i = 0; i < 10; ++i) {
    traps.push_back({(0.1 + 0.05 * i) * tech_.t_ox, 0.5 + 0.02 * i,
                     physics::TrapState::kEmpty});
  }
  RtnGeneratorOptions options;
  options.tf = 1e-6;
  const auto a = generate_device_rtn(srh_, device_, traps, Pwl::constant(0.9),
                                     Pwl::constant(1e-4), rng_a, options);
  const auto b = generate_device_rtn(srh_, device_, traps, Pwl::constant(0.9),
                                     Pwl::constant(1e-4), rng_b, options);
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    EXPECT_EQ(a.trajectories[i].num_switches(), b.trajectories[i].num_switches());
  }
}

TEST_F(RtnGeneratorTest, ParallelTrapFanOutIsBitIdenticalToSerial) {
  // Each trap draws only from rng.split(i + 1), so the per-trap fan-out
  // must reproduce the serial run exactly — switch times, occupancy
  // breakpoints, rendered trace and sampler stats.
  std::vector<physics::Trap> traps;
  for (int i = 0; i < 12; ++i) {
    traps.push_back({(0.08 + 0.04 * i) * tech_.t_ox, 0.48 + 0.02 * i,
                     physics::TrapState::kEmpty});
  }
  // A switching bias so the shared Pwl is evaluated concurrently.
  Pwl bias;
  for (int i = 0; i <= 40; ++i) bias.append(i * 2.5e-8, i % 2 ? 1.0 : 0.2);
  RtnGeneratorOptions options;
  options.tf = 1e-6;
  util::Rng rng_serial(9), rng_parallel(9);
  const auto serial = generate_device_rtn(srh_, device_, traps, bias,
                                          Pwl::constant(1e-4), rng_serial,
                                          options);
  options.threads = 8;
  const auto parallel = generate_device_rtn(srh_, device_, traps, bias,
                                            Pwl::constant(1e-4), rng_parallel,
                                            options);
  ASSERT_EQ(serial.trajectories.size(), parallel.trajectories.size());
  for (std::size_t i = 0; i < serial.trajectories.size(); ++i) {
    ASSERT_EQ(serial.trajectories[i].switch_times(),
              parallel.trajectories[i].switch_times());
  }
  EXPECT_EQ(serial.n_filled.times(), parallel.n_filled.times());
  EXPECT_EQ(serial.n_filled.values(), parallel.n_filled.values());
  EXPECT_EQ(serial.i_rtn.times(), parallel.i_rtn.times());
  EXPECT_EQ(serial.i_rtn.values(), parallel.i_rtn.values());
  EXPECT_EQ(serial.stats.candidates, parallel.stats.candidates);
  EXPECT_EQ(serial.stats.accepted, parallel.stats.accepted);
}

TEST_F(RtnGeneratorTest, OccupancyBoundedByTrapCount) {
  util::Rng rng(6);
  std::vector<physics::Trap> traps;
  for (int i = 0; i < 20; ++i) {
    traps.push_back({(0.05 + 0.04 * i) * tech_.t_ox, 0.45 + 0.02 * i,
                     physics::TrapState::kEmpty});
  }
  RtnGeneratorOptions options;
  options.tf = 5e-6;
  const auto result = generate_device_rtn(srh_, device_, traps,
                                          Pwl::constant(0.8),
                                          Pwl::constant(1e-4), rng, options);
  for (double v : result.n_filled.values()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 20.0);
  }
  EXPECT_EQ(result.stats.accepted,
            [&] {
              std::size_t total = 0;
              for (const auto& traj : result.trajectories) {
                total += traj.num_switches();
              }
              return total;
            }());
}

TEST_F(RtnGeneratorTest, SwitchingBiasModulatesActivity) {
  // A trap resonant near V_dd should toggle while the gate is high and
  // freeze while it is low (the Fig. 8 (b),(c) mechanism).
  physics::Trap trap{0.25 * tech_.t_ox, 0.62, physics::TrapState::kEmpty};
  // Find a gate bias where the trap is near resonance.
  double v_res = 0.0;
  for (double v = 0.0; v <= 1.3; v += 0.01) {
    if (srh_.beta(trap, v) < 1.0) {
      v_res = v;
      break;
    }
  }
  ASSERT_GT(v_res, 0.05);
  const double horizon = 4000.0 / srh_.total_rate(trap);
  Pwl bias;
  bias.append(0.0, v_res);
  bias.append(0.5 * horizon - 1e-12 * horizon, v_res);
  bias.append(0.5 * horizon, 0.0);  // gate drops far below resonance
  util::Rng rng(7);
  RtnGeneratorOptions options;
  options.tf = horizon;
  const auto result = generate_device_rtn(srh_, device_, {trap}, bias,
                                          Pwl::constant(1e-4), rng, options);
  const auto& switches = result.trajectories[0].switch_times();
  std::size_t active_phase = 0, frozen_phase = 0;
  for (double t : switches) {
    (t < 0.5 * horizon ? active_phase : frozen_phase)++;
  }
  EXPECT_GT(active_phase, 20u);
  EXPECT_LT(frozen_phase, active_phase / 5 + 3);
}

}  // namespace
}  // namespace samurai::core
