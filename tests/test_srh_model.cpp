#include "physics/srh_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "physics/constants.hpp"
#include "physics/technology.hpp"

namespace samurai::physics {
namespace {

Trap make_trap(double depth_frac, double e_tr) {
  const auto tech = technology("90nm");
  return Trap{depth_frac * tech.t_ox, e_tr, TrapState::kEmpty};
}

TEST(SrhModel, TotalRateMatchesPaperEq1) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.3, 0.5);
  const double expected =
      1.0 / (tech.tau0 * std::exp(tech.gamma_tunnel * trap.y_tr));
  EXPECT_NEAR(model.total_rate(trap), expected, expected * 1e-12);
}

TEST(SrhModel, TotalRateDecaysExponentiallyWithDepth) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const double r1 = model.total_rate(make_trap(0.2, 0.5));
  const double r2 = model.total_rate(make_trap(0.4, 0.5));
  const double expected_ratio =
      std::exp(tech.gamma_tunnel * (0.4 - 0.2) * tech.t_ox);
  EXPECT_NEAR(r1 / r2, expected_ratio, expected_ratio * 1e-9);
}

TEST(SrhModel, TrapOutsideOxideThrows) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  EXPECT_THROW(model.total_rate(Trap{-1e-10, 0.5}), std::invalid_argument);
  EXPECT_THROW(model.total_rate(Trap{2.0 * tech.t_ox, 0.5}),
               std::invalid_argument);
}

// The paper's Eq. 1 invariant: λ_c(t) + λ_e(t) is constant over bias.
TEST(SrhModel, PropensitySumIsBiasIndependent) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.35, 0.6);
  const double total = model.total_rate(trap);
  for (double v = -0.2; v <= 1.5; v += 0.1) {
    const auto p = model.propensities(trap, v);
    EXPECT_NEAR(p.lambda_c + p.lambda_e, total, total * 1e-9) << "V=" << v;
    EXPECT_GE(p.lambda_c, 0.0);
    EXPECT_GE(p.lambda_e, 0.0);
  }
}

// Eq. 2: β = g exp((E_T - E_F)/kT).
TEST(SrhModel, BetaFollowsBoltzmannFactorOfGap) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.3, 0.55);
  const double kt = kBoltzmannEv * tech.temperature;
  for (double v : {0.1, 0.4, 0.8, 1.2}) {
    const double gap = model.trap_fermi_gap(trap, v);
    const double expected = tech.trap_degeneracy * std::exp(gap / kt);
    EXPECT_NEAR(model.beta(trap, v) / expected, 1.0, 1e-9) << "V=" << v;
  }
}

TEST(SrhModel, BetaDecreasesWithGateBias) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.4, 0.6);
  double prev = model.beta(trap, -0.2);
  for (double v = -0.1; v <= 1.5; v += 0.1) {
    const double b = model.beta(trap, v);
    EXPECT_LE(b, prev * (1.0 + 1e-9)) << "V=" << v;
    prev = b;
  }
}

TEST(SrhModel, DeeperTrapsFeelStrongerFieldLeverArm) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap shallow = make_trap(0.1, 0.6);
  const Trap deep = make_trap(0.8, 0.6);
  const double swing_shallow = model.trap_fermi_gap(shallow, 0.0) -
                               model.trap_fermi_gap(shallow, tech.v_dd);
  const double swing_deep =
      model.trap_fermi_gap(deep, 0.0) - model.trap_fermi_gap(deep, tech.v_dd);
  EXPECT_GT(swing_deep, swing_shallow);
}

TEST(SrhModel, StationaryFillIsOneOverOnePlusBeta) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.25, 0.5);
  for (double v : {0.2, 0.6, 1.0}) {
    const double beta = model.beta(trap, v);
    EXPECT_NEAR(model.stationary_fill(trap, v), 1.0 / (1.0 + beta), 1e-12);
  }
}

TEST(SrhModel, FillProbabilityRisesWithBias) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.3, 0.7);
  EXPECT_LT(model.stationary_fill(trap, 0.0), 0.5);
  EXPECT_GT(model.stationary_fill(trap, 1.5 * tech.v_dd),
            model.stationary_fill(trap, 0.0));
}

TEST(SrhModel, ExtremeGapsDoNotOverflow) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap cold = make_trap(0.9, 1.05);   // far above E_F at V=0
  const auto p_cold = model.propensities(cold, -0.5);
  EXPECT_TRUE(std::isfinite(p_cold.lambda_c));
  EXPECT_TRUE(std::isfinite(p_cold.lambda_e));
  const Trap hot = make_trap(0.9, 0.25);
  const auto p_hot = model.propensities(hot, 2.0);
  EXPECT_TRUE(std::isfinite(p_hot.lambda_c));
  EXPECT_TRUE(std::isfinite(p_hot.lambda_e));
}

// A trap with mid-window energy must pass through resonance (β crossing 1)
// somewhere inside the extended gate swing — the mechanism behind the
// bias-dependent activity of paper Fig. 8 (b),(c).
TEST(SrhModel, MidWindowTrapCrossesResonanceInsideSwing) {
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.4, 0.6);
  const double beta_low = model.beta(trap, 0.0);
  const double beta_high = model.beta(trap, 1.5 * tech.v_dd);
  EXPECT_GT(beta_low, 1.0);
  EXPECT_LT(beta_high, 1.0);
}

TEST(SrhModel, TabulatedSurfaceMatchesDirectSolveOutsideTable) {
  // Biases outside [-1, 2 v_dd + 1] fall back to the direct solver; the
  // gap must remain continuous across the table edge.
  const auto tech = technology("90nm");
  const SrhModel model(tech);
  const Trap trap = make_trap(0.3, 0.6);
  const double inside = model.trap_fermi_gap(trap, -0.999);
  const double outside = model.trap_fermi_gap(trap, -1.001);
  EXPECT_NEAR(inside, outside, 5e-3);
}

}  // namespace
}  // namespace samurai::physics
