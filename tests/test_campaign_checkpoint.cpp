// Checkpoint/resume determinism and early stopping — the campaign
// runtime's headline guarantees (ISSUE.md acceptance criteria).
#include "campaign/checkpoint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>

#include "campaign/json.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "sram/array.hpp"
#include "util/rng.hpp"

namespace samurai::campaign {
namespace {

// Fixture owning a per-test temp tree. TearDown runs on success *and* on
// EXPECT/ASSERT failure, so failing tests leave no litter behind.
class CampaignCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (std::filesystem::temp_directory_path() /
             ("samurai_campaign_" + std::string(info->name()) + "_" +
              std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string dir(const std::string& leaf) const { return root_ + "/" + leaf; }

  std::string root_;
};

Manifest small_importance_manifest(std::size_t threads) {
  Manifest manifest;
  manifest.kind = CampaignKind::kImportance;
  manifest.name = "resume-test";
  manifest.seed = 21;
  manifest.budget = 24;
  manifest.shard_size = 6;
  manifest.threads = threads;
  manifest.v_dd = 1.05;
  manifest.sigma_vt = 0.12;
  manifest.with_rtn = false;  // nominal-only: fast
  manifest.shift[0] = 0.06;   // M1
  manifest.shift[1] = 0.06;   // M2
  return manifest;
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.shards_done, b.shards_done);
  EXPECT_EQ(a.samples_done, b.samples_done);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.stopped_early, b.stopped_early);
  EXPECT_EQ(a.budget_saved, b.budget_saved);
  EXPECT_EQ(a.weighted.count, b.weighted.count);
  EXPECT_EQ(a.weighted.failures, b.weighted.failures);
  EXPECT_EQ(a.weighted.weight_sum, b.weighted.weight_sum);
  EXPECT_EQ(a.weighted.weight_sq_sum, b.weighted.weight_sq_sum);
  EXPECT_EQ(a.weighted.fail_weight_sum, b.weighted.fail_weight_sum);
  EXPECT_EQ(a.weighted.fail_weight_sq_sum, b.weighted.fail_weight_sq_sum);
  EXPECT_EQ(a.fails.count, b.fails.count);
  EXPECT_EQ(a.fails.successes, b.fails.successes);
  EXPECT_EQ(a.nominal_fails.successes, b.nominal_fails.successes);
  EXPECT_EQ(a.slow.successes, b.slow.successes);
  EXPECT_EQ(a.value.count, b.value.count);
  EXPECT_EQ(a.value.mean, b.value.mean);
  EXPECT_EQ(a.value.m2, b.value.m2);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.standard_error, b.standard_error);
  EXPECT_EQ(a.ci.lo, b.ci.lo);
  EXPECT_EQ(a.ci.hi, b.ci.hi);
  EXPECT_EQ(a.effective_sample_size, b.effective_sample_size);
}

void expect_ledgers_identical(const std::string& dir_a,
                              const std::string& dir_b) {
  const auto a = Checkpoint(dir_a).load_ledger();
  const auto b = Checkpoint(dir_b).load_ledger();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].samples, b[i].samples);
    EXPECT_EQ(a[i].weighted.weight_sum, b[i].weighted.weight_sum);
    EXPECT_EQ(a[i].weighted.weight_sq_sum, b[i].weighted.weight_sq_sum);
    EXPECT_EQ(a[i].weighted.fail_weight_sum, b[i].weighted.fail_weight_sum);
    EXPECT_EQ(a[i].weighted.fail_weight_sq_sum,
              b[i].weighted.fail_weight_sq_sum);
    EXPECT_EQ(a[i].weighted.failures, b[i].weighted.failures);
    EXPECT_EQ(a[i].fails.successes, b[i].fails.successes);
    EXPECT_EQ(a[i].nominal_fails.successes, b[i].nominal_fails.successes);
    EXPECT_EQ(a[i].slow.successes, b[i].slow.successes);
    EXPECT_EQ(a[i].value.count, b[i].value.count);
    EXPECT_EQ(a[i].value.mean, b[i].value.mean);
    EXPECT_EQ(a[i].value.m2, b[i].value.m2);
    // wall_seconds is observability, not estimator state: excluded.
  }
}

// The acceptance criterion: kill after shard k, resume, and every
// statistic matches the uninterrupted run bit-for-bit — at 1 thread and
// at 4 threads (thread schedule must not leak into results either).
class CampaignResumeTest : public CampaignCheckpointTest,
                           public ::testing::WithParamInterface<std::size_t> {
};

TEST_P(CampaignResumeTest, KillAndResumeIsBitIdentical) {
  const Manifest manifest = small_importance_manifest(GetParam());

  RunOptions full_options;
  full_options.dir = dir("full");
  const CampaignResult full = run_campaign(manifest, full_options);
  ASSERT_TRUE(full.complete);
  ASSERT_EQ(full.samples_done, manifest.budget);

  // Same campaign, killed after 2 of 4 shards...
  RunOptions kill_options;
  kill_options.dir = dir("killed");
  kill_options.max_shards_this_run = 2;
  const CampaignResult partial = run_campaign(manifest, kill_options);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.shards_done, 2u);
  EXPECT_EQ(partial.samples_done, 12u);

  // ...then resumed from the ledger to completion.
  RunOptions resume_options;
  resume_options.dir = dir("killed");
  const CampaignResult resumed = resume_campaign(resume_options);
  ASSERT_TRUE(resumed.complete);

  expect_bit_identical(full, resumed);
  expect_ledgers_identical(dir("full"), dir("killed"));
}

INSTANTIATE_TEST_SUITE_P(Threads, CampaignResumeTest,
                         ::testing::Values(1u, 4u),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST_F(CampaignCheckpointTest, ThreadCountDoesNotChangeResults) {
  const CampaignResult serial = run_campaign(small_importance_manifest(1));
  const CampaignResult threaded = run_campaign(small_importance_manifest(4));
  expect_bit_identical(serial, threaded);
}

TEST_F(CampaignCheckpointTest, StatusReflectsPartialLedgerWithoutExecuting) {
  const Manifest manifest = small_importance_manifest(4);
  RunOptions options;
  options.dir = dir("campaign");
  options.max_shards_this_run = 1;
  run_campaign(manifest, options);

  const CampaignResult status = campaign_status(dir("campaign"));
  EXPECT_FALSE(status.complete);
  EXPECT_EQ(status.shards_done, 1u);
  EXPECT_EQ(status.samples_done, 6u);
  // status must not have executed anything new.
  EXPECT_EQ(Checkpoint(dir("campaign")).load_ledger().size(), 1u);

  // state.json carries the same status for outside observers.
  const auto state =
      JsonObject::parse(Checkpoint(dir("campaign")).load_state());
  EXPECT_EQ(state.get_string("status", ""), "paused");
  EXPECT_EQ(state.get_u64("budget_used", 0), 6u);
}

TEST_F(CampaignCheckpointTest, ResumeOfCompleteCampaignIsANoOp) {
  const Manifest manifest = small_importance_manifest(4);
  RunOptions options;
  options.dir = dir("campaign");
  const CampaignResult first = run_campaign(manifest, options);
  ASSERT_TRUE(first.complete);

  const CampaignResult again = resume_campaign(options);
  expect_bit_identical(first, again);
  EXPECT_EQ(Checkpoint(dir("campaign")).load_ledger().size(),
            manifest.shard_count());
}

TEST_F(CampaignCheckpointTest, RunRefusesDirWithExistingLedger) {
  const Manifest manifest = small_importance_manifest(4);
  RunOptions options;
  options.dir = dir("campaign");
  options.max_shards_this_run = 1;
  run_campaign(manifest, options);
  EXPECT_THROW(run_campaign(manifest, options), std::runtime_error);
}

// Early stopping: with a loose precision target the campaign must stop
// below budget, report the savings, and still agree with the full-budget
// run within its own confidence interval (ISSUE.md acceptance criterion).
TEST_F(CampaignCheckpointTest, EarlyStopSavesBudgetAndAgreesWithFullRun) {
  Manifest manifest;
  manifest.kind = CampaignKind::kImportance;
  manifest.seed = 21;
  manifest.budget = 60;
  manifest.shard_size = 6;
  manifest.threads = 4;
  manifest.v_dd = 1.05;
  manifest.sigma_vt = 0.2;  // failures common → CI tightens fast
  manifest.with_rtn = false;
  manifest.shift[0] = 0.06;
  manifest.shift[1] = 0.06;
  manifest.target_rel_half_width = 0.5;
  manifest.min_samples = 12;

  RunOptions options;
  options.dir = dir("early");
  const CampaignResult early = run_campaign(manifest, options);
  ASSERT_TRUE(early.complete);
  EXPECT_TRUE(early.stopped_early);
  EXPECT_LT(early.samples_done, manifest.budget);
  EXPECT_EQ(early.budget_saved, manifest.budget - early.samples_done);
  EXPECT_GT(early.budget_saved, 0u);
  EXPECT_LE(early.relative_half_width, manifest.target_rel_half_width);

  // The spent/saved split is in the persisted state for status consumers.
  const auto state = JsonObject::parse(Checkpoint(dir("early")).load_state());
  EXPECT_EQ(state.get_string("status", ""), "stopped_early");
  EXPECT_EQ(state.get_u64("budget_saved", 0), early.budget_saved);

  // Full-budget reference: same stream, no stopping rule.
  Manifest full_manifest = manifest;
  full_manifest.target_rel_half_width = 0.0;
  const CampaignResult full = run_campaign(full_manifest);
  ASSERT_FALSE(full.stopped_early);
  ASSERT_EQ(full.samples_done, manifest.budget);
  EXPECT_GE(full.estimate, early.ci.lo);
  EXPECT_LE(full.estimate, early.ci.hi);
}

// The array-yield kind must agree exactly with the in-process array
// estimator: same cells, same streams, just counted through the campaign.
TEST_F(CampaignCheckpointTest, ArrayCampaignMatchesRunArray) {
  Manifest manifest;
  manifest.kind = CampaignKind::kArrayYield;
  manifest.seed = 77;
  manifest.budget = 8;
  manifest.shard_size = 3;  // shards of 3, 3, 2
  manifest.threads = 2;
  manifest.sigma_vt = 0.05;

  sram::ArrayConfig config = array_config_from(manifest);
  config.num_cells = manifest.budget;
  const sram::ArrayResult reference = sram::run_array(config);

  const CampaignResult campaign = run_campaign(manifest);
  ASSERT_TRUE(campaign.complete);
  EXPECT_EQ(campaign.fails.count, manifest.budget);
  EXPECT_EQ(campaign.fails.successes, reference.rtn_only_errors);
  EXPECT_EQ(campaign.nominal_fails.successes, reference.nominal_errors);
  EXPECT_EQ(campaign.slow.successes, reference.slow_cells);
  // Mean traps per cell flows through the Welford channel.
  std::size_t total_traps = 0;
  for (const auto& cell : reference.cells) total_traps += cell.total_traps;
  EXPECT_EQ(campaign.value.count, manifest.budget);
  EXPECT_NEAR(campaign.value.mean,
              static_cast<double>(total_traps) /
                  static_cast<double>(manifest.budget),
              1e-12);
}

TEST_F(CampaignCheckpointTest, VminCampaignProducesSupplyEstimates) {
  Manifest manifest;
  manifest.kind = CampaignKind::kVmin;
  manifest.seed = 3;
  manifest.budget = 2;
  manifest.shard_size = 1;
  manifest.threads = 2;  // shard-level threads; replicas are serial inside
  manifest.v_lo = 0.7;
  manifest.v_hi = 1.1;
  manifest.resolution = 0.1;
  manifest.rtn_seeds = 1;

  const CampaignResult campaign = run_campaign(manifest);
  ASSERT_TRUE(campaign.complete);
  EXPECT_EQ(campaign.samples_done, 2u);
  // Every replica either yields an in-range V_min (Welford channel) or
  // counts as a failure (Bernoulli channel) — never silently dropped.
  EXPECT_EQ(campaign.value.count + campaign.fails.successes, 2u);
  if (campaign.value.count > 0) {
    EXPECT_GE(campaign.value.mean, manifest.v_lo);
    EXPECT_LE(campaign.value.mean, manifest.v_hi);
    EXPECT_EQ(campaign.estimate, campaign.value.mean);
  }
}

}  // namespace
}  // namespace samurai::campaign
