#include "osc/ring.hpp"

#include <gtest/gtest.h>

#include "spice/devices.hpp"

namespace samurai::osc {
namespace {

TEST(Ring, RequiresOddStageCount) {
  spice::Circuit circuit;
  RingConfig config;
  config.tech = physics::technology("90nm");
  config.stages = 4;
  EXPECT_THROW(build_ring(circuit, config), std::invalid_argument);
  config.stages = 1;
  EXPECT_THROW(build_ring(circuit, config), std::invalid_argument);
}

TEST(Ring, BuildCreatesStagesAndSupply) {
  spice::Circuit circuit;
  RingConfig config;
  config.tech = physics::technology("90nm");
  config.stages = 5;
  const auto build = build_ring(circuit, config);
  EXPECT_EQ(build.stage_nodes.size(), 5u);
  EXPECT_TRUE(circuit.has_node("n0"));
  EXPECT_TRUE(circuit.has_node("n4"));
  EXPECT_NE(circuit.find<spice::Mosfet>("MN0"), nullptr);
  EXPECT_NE(circuit.find<spice::Mosfet>("MP4"), nullptr);
}

TEST(Ring, Oscillates) {
  spice::Circuit circuit;
  RingConfig config;
  config.tech = physics::technology("90nm");
  config.stages = 5;
  config.t_stop = 30e-9;
  const auto build = build_ring(circuit, config);
  spice::TransientOptions options;
  options.t_stop = config.t_stop;
  options.dt_max = config.t_stop / 3000.0;
  for (std::size_t s = 0; s < build.stage_nodes.size(); ++s) {
    options.dc.nodeset[build.stage_nodes[s]] =
        (s % 2 == 0) ? 0.0 : config.tech.v_dd;
  }
  const auto result = spice::transient(circuit, options);
  const auto crossings = rising_crossings(
      result.voltage(build.stage_nodes[0]), 0.5 * config.tech.v_dd);
  ASSERT_GT(crossings.size(), 6u) << "ring did not oscillate";
  const auto stats = period_statistics(crossings, 2);
  ASSERT_GT(stats.cycles, 3u);
  EXPECT_GT(stats.mean, 0.0);
  // Nominal ring: period jitter is purely numerical, well under 5%.
  EXPECT_LT(stats.stddev / stats.mean, 0.05);
}

TEST(Ring, CrossingDetectionOnSyntheticWave) {
  core::Pwl wave;
  wave.append(0.0, 0.0);
  wave.append(1.0, 1.0);
  wave.append(2.0, 0.0);
  wave.append(3.0, 1.0);
  wave.append(4.0, 0.0);
  const auto crossings = rising_crossings(wave, 0.5);
  ASSERT_EQ(crossings.size(), 2u);
  EXPECT_NEAR(crossings[0], 0.5, 1e-12);
  EXPECT_NEAR(crossings[1], 2.5, 1e-12);
}

TEST(Ring, PeriodStatisticsSkipStartup) {
  const std::vector<double> crossings = {0.0, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5};
  const auto stats = period_statistics(crossings, 1);
  EXPECT_EQ(stats.cycles, 5u);
  EXPECT_NEAR(stats.mean, 1.0, 1e-12);
  EXPECT_NEAR(stats.stddev, 0.0, 1e-12);
  const auto empty = period_statistics({1.0, 2.0}, 4);
  EXPECT_EQ(empty.cycles, 0u);
}

}  // namespace
}  // namespace samurai::osc
