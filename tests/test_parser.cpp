#include "spice/parser.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/devices.hpp"

namespace samurai::spice {
namespace {

TEST(SpiceValue, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_spice_value("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-9"), 1e-9);
}

TEST(SpiceValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("2.2k"), 2200.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("10MEG"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_value("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(parse_spice_value("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("7n"), 7e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("1p"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("2f"), 2e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("4g"), 4e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("1t"), 1e12);
}

TEST(SpiceValue, SuffixWithUnitLetters) {
  EXPECT_DOUBLE_EQ(parse_spice_value("10pF"), 1e-11);
  EXPECT_DOUBLE_EQ(parse_spice_value("2.2kohm"), 2200.0);
}

TEST(SpiceValue, GarbageThrows) {
  EXPECT_THROW(parse_spice_value(""), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("abc"), std::invalid_argument);
  EXPECT_THROW(parse_spice_value("1.5x"), std::invalid_argument);
}

TEST(Parser, TitleCommentsAndContinuations) {
  const auto parsed = parse_netlist(
      "my divider\n"
      "* a comment\n"
      "V1 in 0 DC 10 ; trailing comment\n"
      "R1 in mid\n"
      "+ 1k\n"
      "R2 mid 0 3k\n"
      ".end\n");
  EXPECT_EQ(parsed.title, "my divider");
  EXPECT_EQ(parsed.circuit->num_nodes(), 2u);
  EXPECT_EQ(parsed.circuit->devices().size(), 3u);
  EXPECT_FALSE(parsed.has_tran);
}

TEST(Parser, DcDividerSolvesCorrectly) {
  const auto result = run_netlist(
      "divider\n"
      "V1 in 0 DC 10\n"
      "R1 in mid 1k\n"
      "R2 mid 0 3k\n"
      ".end\n");
  EXPECT_NEAR(result.voltage_samples("mid")[0], 7.5, 1e-6);
}

TEST(Parser, RcTransientMatchesAnalytic) {
  const auto result = run_netlist(
      "rc\n"
      "Vin in 0 PWL(0 0 1n 0 1.01n 1 20n 1)\n"
      "R1 in out 1k\n"
      "C1 out 0 1p\n"
      ".tran 10p 8n\n"
      ".end\n");
  const double tau = 1e3 * 1e-12;
  const double expected = 1.0 - std::exp(-(5e-9 - 1.01e-9) / tau);
  EXPECT_NEAR(result.voltage_at("out", 5e-9), expected, 0.02);
}

TEST(Parser, PulseSourceAndCaseInsensitiveNodes) {
  const auto parsed = parse_netlist(
      "pulse test\n"
      "VCK CLK 0 PULSE(0 1 1n 0.1n 2n 0.1n 5n)\n"
      "R1 clk 0 1k\n"
      ".end\n");
  // "CLK" and "clk" are the same node.
  EXPECT_EQ(parsed.circuit->num_nodes(), 1u);
}

TEST(Parser, MosfetInverterFromText) {
  const auto result = run_netlist(
      "inverter\n"
      "Vdd vdd 0 DC 1.2\n"
      "Vin in 0 DC 0\n"
      "MN out in 0 0 nfet W=440n L=90n\n"
      "MP out in vdd vdd pfet W=880n L=90n\n"
      ".model nfet nmos node=90nm\n"
      ".model pfet pmos node=90nm\n"
      ".end\n");
  EXPECT_NEAR(result.voltage_samples("out")[0], 1.2, 0.02);
}

TEST(Parser, ModelVthShiftIsApplied) {
  const auto parsed = parse_netlist(
      "shifted\n"
      "M1 d g 0 0 slow W=200n L=90n\n"
      ".model slow nmos node=90nm vth_shift=0.05\n"
      ".end\n");
  auto* fet = parsed.circuit->find<Mosfet>("M1");
  ASSERT_NE(fet, nullptr);
  const auto tech = physics::technology("90nm");
  EXPECT_NEAR(fet->model().v_th(), tech.v_th0() + 0.05, 1e-12);
}

TEST(Parser, NodesetAndPrintDirectives) {
  const auto parsed = parse_netlist(
      "directives\n"
      "V1 a 0 DC 1\n"
      "R1 a b 1k\n"
      "R2 b 0 1k\n"
      ".nodeset v(b)=0.4\n"
      ".tran 1p 1n\n"
      ".print v(a) v(b)\n"
      ".end\n");
  ASSERT_TRUE(parsed.has_tran);
  EXPECT_DOUBLE_EQ(parsed.tran.dc.nodeset.at("b"), 0.4);
  ASSERT_EQ(parsed.print_nodes.size(), 2u);
  EXPECT_EQ(parsed.print_nodes[0], "a");
  EXPECT_EQ(parsed.print_nodes[1], "b");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("t\nR1 a 0\n.end\n");  // missing value
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parse_netlist("t\nX1 a b c\n.end\n"), ParseError);  // unknown card
  EXPECT_THROW(parse_netlist("t\n.frobnicate\n.end\n"), ParseError);
  EXPECT_THROW(parse_netlist("t\nR1 a 0 1k\n.end\nR2 b 0 1k\n"), ParseError);
  EXPECT_THROW(parse_netlist("t\nM1 d g s b nosuch W=1u L=1u\n.end\n"),
               ParseError);
  EXPECT_THROW(parse_netlist("t\n.model m nmos node=7nm\nM1 d g s b m\n.end\n"),
               ParseError);
  EXPECT_THROW(parse_netlist("t\nV1 a 0 PWL(0 0 1n)\n.end\n"), ParseError);
  EXPECT_THROW(parse_netlist("t\nR1 a 0 1k\n.print v(zzz)\n.end\n"), ParseError);
  EXPECT_THROW(parse_netlist("t\n+ 1k\n.end\n"), ParseError);
}

TEST(Parser, SramCellDeckWritesCorrectly) {
  // A full 6T cell written as text: write 1 then hold; Q must finish high.
  const char* deck = R"(6t write test
Vdd vdd 0 DC 1.2
Vwl wl 0 PWL(0 0 0.4n 0 0.45n 1.2 1.4n 1.2 1.45n 0 3n 0)
Vbl bl 0 DC 1.2
Vblb blb 0 PWL(0 1.2 0.1n 1.2 0.15n 0 1.6n 0 1.65n 1.2 3n 1.2)
M1 bl wl q 0 nfet W=264n L=90n
M2 blb wl qb 0 nfet W=264n L=90n
M3 q qb vdd vdd pfet W=220n L=90n
M4 qb q vdd vdd pfet W=220n L=90n
M5 qb q 0 0 nfet W=440n L=90n
M6 q qb 0 0 nfet W=440n L=90n
.model nfet nmos node=90nm
.model pfet pmos node=90nm
.nodeset v(q)=0 v(qb)=1.2 v(vdd)=1.2 v(bl)=1.2 v(blb)=1.2
.tran 5p 3n
.print v(q) v(qb)
.end
)";
  const auto result = run_netlist(deck);
  EXPECT_GT(result.voltage_at("q", 2.9e-9), 1.0);
  EXPECT_LT(result.voltage_at("qb", 2.9e-9), 0.2);
}

TEST(Parser, RtnCardParsesAndValidates) {
  const char* deck = R"(rtn cards
Vd d 0 DC 1.0
Vg g 0 DC 1.0
M1 d g 0 0 nfet W=200n L=90n
.model nfet nmos node=90nm
.rtn M1 scale=30 seed=7
.tran 10p 2n
.end
)";
  const auto parsed = parse_netlist(deck);
  ASSERT_EQ(parsed.rtn_requests.size(), 1u);
  EXPECT_EQ(parsed.rtn_requests[0].device, "M1");
  EXPECT_DOUBLE_EQ(parsed.rtn_requests[0].scale, 30.0);
  EXPECT_EQ(parsed.rtn_requests[0].seed, 7u);
  EXPECT_THROW(parse_netlist("t\nR1 a 0 1k\n.rtn M9\n.end\n"), ParseError);
  EXPECT_THROW(parse_netlist("t\nR1 a 0 1k\n.rtn R1 bogus=1\n.end\n"),
               ParseError);
}

TEST(RtnIntegration, NetlistRtnFlowProducesTraces) {
  // A common-source stage at constant bias with RTN on its transistor:
  // both runs must complete, traces must carry traps, and the output node
  // must visibly deviate at some point once the scaled RTN kicks in.
  const char* deck = R"(rtn flow
Vd d 0 DC 1.0
Vg g 0 DC 1.0
Rload d out 10k
Cout out 0 1p
M1 out g 0 0 nfet W=110n L=90n
.model nfet nmos node=90nm
.rtn M1 scale=50 seed=11
.tran 10p 40n
.end
)";
  const auto result = run_netlist_rtn(deck);
  ASSERT_EQ(result.traces.size(), 1u);
  EXPECT_GT(result.traces[0].traps.size(), 10u);
  double max_dev = 0.0;
  for (double t = 5e-9; t < 40e-9; t += 0.5e-9) {
    max_dev = std::max(max_dev, std::abs(result.with_rtn.voltage_at("out", t) -
                                         result.nominal.voltage_at("out", t)));
  }
  EXPECT_GT(max_dev, 1e-4);
}

TEST(RtnIntegration, RequiresTranAndRtnCards) {
  EXPECT_THROW(run_netlist_rtn("t\nR1 a 0 1k\n.rtn R1\n.end\n"),
               ParseError);  // .rtn on a non-MOSFET
  EXPECT_THROW(
      run_netlist_rtn("t\nVg g 0 DC 1\nM1 g g 0 0 m W=1u L=90n\n"
                      ".model m nmos node=90nm\n.rtn M1\n.end\n"),
      std::invalid_argument);  // no .tran
  EXPECT_THROW(
      run_netlist_rtn("t\nVg g 0 DC 1\nM1 g g 0 0 m W=1u L=90n\n"
                      ".model m nmos node=90nm\n.tran 1p 1n\n.end\n"),
      std::invalid_argument);  // no .rtn
}

TEST(RtnIntegration, ExtractDeviceBiasConventions) {
  // A diode-connected NMOS at 1 V: extracted V_gs ~ 1 V, I_d > 0.
  auto parsed = parse_netlist(
      "bias\n"
      "Vd d 0 DC 1.0\n"
      "M1 d d 0 0 nfet W=220n L=90n\n"
      ".model nfet nmos node=90nm\n"
      ".tran 10p 1n\n"
      ".end\n");
  auto result = transient(*parsed.circuit, parsed.tran);
  auto* fet = parsed.circuit->find<Mosfet>("M1");
  ASSERT_NE(fet, nullptr);
  core::Pwl v_gs, i_d;
  extract_device_bias(result, *parsed.circuit, *fet, v_gs, i_d);
  EXPECT_NEAR(v_gs.eval(0.9e-9), 1.0, 1e-3);
  EXPECT_GT(i_d.eval(0.9e-9), 0.0);
}

}  // namespace
}  // namespace samurai::spice
