// Tests for the future-work extensions: bi-directionally coupled
// simulation (ext. 1) and array Monte-Carlo statistics (ext. 3).
#include <gtest/gtest.h>

#include <stdexcept>

#include "sram/array.hpp"
#include "sram/coupled.hpp"

namespace samurai::sram {
namespace {

MethodologyConfig tiny_config() {
  MethodologyConfig config;
  config.tech = physics::technology("90nm");
  config.ops = ops_from_bits({1, 0});
  config.seed = 3;
  return config;
}

TEST(Coupled, RunsAndWritesSucceed) {
  const auto result = run_coupled(tiny_config());
  EXPECT_FALSE(result.report.any_error);
  ASSERT_EQ(result.transistor_names.size(), 6u);
  ASSERT_EQ(result.n_filled.size(), 6u);
  ASSERT_EQ(result.traps.size(), 6u);
  EXPECT_GT(result.transient.num_points(), 100u);
}

TEST(Coupled, OccupancyBoundedByTrapCount) {
  const auto result = run_coupled(tiny_config());
  for (std::size_t i = 0; i < result.n_filled.size(); ++i) {
    const double cap = static_cast<double>(result.traps[i].size());
    for (double v : result.n_filled[i].values()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, cap);
    }
  }
}

TEST(Coupled, DeterministicGivenSeed) {
  const auto a = run_coupled(tiny_config());
  const auto b = run_coupled(tiny_config());
  ASSERT_EQ(a.n_filled.size(), b.n_filled.size());
  for (std::size_t i = 0; i < a.n_filled.size(); ++i) {
    EXPECT_EQ(a.traps[i].size(), b.traps[i].size());
  }
  EXPECT_EQ(a.report.any_error, b.report.any_error);
}

TEST(Coupled, TrapActivityFollowsBias) {
  // Like the staged methodology, the coupled run's pull-down trap
  // activity must track the stored value; here just check some switching
  // occurred on at least one transistor (the cell carries ~600 traps).
  const auto result = run_coupled(tiny_config());
  std::size_t total_switches = 0;
  for (const auto& trace : result.n_filled) total_switches += trace.num_steps();
  EXPECT_GT(total_switches, 10u);
}

TEST(Array, CountsAreConsistent) {
  ArrayConfig config;
  config.cell = tiny_config();
  config.num_cells = 6;
  config.sigma_vt = 0.01;
  config.seed = 5;
  const auto result = run_array(config);
  ASSERT_EQ(result.cells.size(), 6u);
  EXPECT_LE(result.rtn_only_errors, result.rtn_errors);
  EXPECT_LE(result.nominal_errors, result.cells.size());
  std::size_t recount = 0;
  for (const auto& cell : result.cells) {
    if (cell.rtn_error) ++recount;
    EXPECT_GT(cell.total_traps, 100u);  // ~600 traps per 90nm cell
  }
  EXPECT_EQ(recount, result.rtn_errors);
}

TEST(Array, DeterministicGivenSeed) {
  ArrayConfig config;
  config.cell = tiny_config();
  config.num_cells = 3;
  config.seed = 9;
  const auto a = run_array(config);
  const auto b = run_array(config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].total_traps, b.cells[i].total_traps);
    EXPECT_EQ(a.cells[i].rtn_error, b.cells[i].rtn_error);
  }
}

TEST(Array, ParallelRunIsBitIdenticalToSerial) {
  ArrayConfig config;
  config.cell = tiny_config();
  config.num_cells = 6;
  config.sigma_vt = 0.02;
  config.seed = 12;
  config.threads = 1;
  const auto serial = run_array(config);
  config.threads = 4;
  const auto parallel = run_array(config);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].total_traps, parallel.cells[i].total_traps);
    EXPECT_EQ(serial.cells[i].rtn_switches, parallel.cells[i].rtn_switches);
    EXPECT_EQ(serial.cells[i].rtn_error, parallel.cells[i].rtn_error);
    EXPECT_EQ(serial.cells[i].rtn_slow, parallel.cells[i].rtn_slow);
  }
  EXPECT_EQ(serial.rtn_errors, parallel.rtn_errors);
  EXPECT_EQ(serial.rtn_rescued, parallel.rtn_rescued);
}

TEST(Array, ParallelRunIsIdenticalAcrossThreadCounts) {
  ArrayConfig config;
  config.cell = tiny_config();
  config.num_cells = 8;
  config.sigma_vt = 0.02;
  config.seed = 21;
  config.threads = 1;
  const auto serial = run_array(config);
  for (std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const auto parallel = run_array(config);
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      EXPECT_EQ(serial.cells[i].total_traps, parallel.cells[i].total_traps);
      EXPECT_EQ(serial.cells[i].rtn_switches, parallel.cells[i].rtn_switches);
      EXPECT_EQ(serial.cells[i].rtn_error, parallel.cells[i].rtn_error);
      EXPECT_EQ(serial.cells[i].nominal_error, parallel.cells[i].nominal_error);
      EXPECT_EQ(serial.cells[i].rtn_slow, parallel.cells[i].rtn_slow);
    }
    EXPECT_EQ(serial.nominal_errors, parallel.nominal_errors);
    EXPECT_EQ(serial.rtn_errors, parallel.rtn_errors);
    EXPECT_EQ(serial.rtn_only_errors, parallel.rtn_only_errors);
    EXPECT_EQ(serial.rtn_rescued, parallel.rtn_rescued);
    EXPECT_EQ(serial.slow_cells, parallel.slow_cells);
  }
}

TEST(Array, WorkerExceptionSurfacesOnCallingThread) {
  // Regression: a uniformisation budget tripped inside a worker thread
  // used to escape the thread and call std::terminate. The executor must
  // capture it and rethrow on the caller for every thread count.
  ArrayConfig config;
  config.cell = tiny_config();
  config.cell.uniformisation.max_candidates = 1;  // trips on any real trap
  config.num_cells = 4;
  config.seed = 5;
  config.threads = 4;
  EXPECT_THROW(run_array(config), std::runtime_error);
  config.threads = 1;
  EXPECT_THROW(run_array(config), std::runtime_error);
}

TEST(Array, CellsDifferFromEachOther) {
  ArrayConfig config;
  config.cell = tiny_config();
  config.num_cells = 4;
  config.seed = 10;
  const auto result = run_array(config);
  bool trap_counts_differ = false;
  for (std::size_t i = 1; i < result.cells.size(); ++i) {
    if (result.cells[i].total_traps != result.cells[0].total_traps) {
      trap_counts_differ = true;
    }
  }
  EXPECT_TRUE(trap_counts_differ);
}

TEST(Array, BrokenCellIsDetectedThroughThePipeline) {
  // Deterministic sanity check that cell failures feed through the
  // detector: a pass-gate V_T pushed above the wordline swing cannot
  // conduct, so no write ever lands.
  MethodologyConfig config = tiny_config();
  config.vth_shifts["M1"] = 1.5;
  config.vth_shifts["M2"] = 1.5;
  const auto result = run_methodology(config);
  EXPECT_TRUE(result.nominal_report.any_error);
}

}  // namespace
}  // namespace samurai::sram
