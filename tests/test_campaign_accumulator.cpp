#include "campaign/accumulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/shard.hpp"
#include "sram/importance.hpp"
#include "util/rng.hpp"

namespace samurai::campaign {
namespace {

// Two-pass reference: exact mean, then sum of squared deviations.
struct TwoPass {
  double mean = 0.0;
  double variance = 0.0;  // sample variance (n-1)
};

TwoPass two_pass(const std::vector<double>& data) {
  TwoPass result;
  for (double x : data) result.mean += x;
  result.mean /= static_cast<double>(data.size());
  double m2 = 0.0;
  for (double x : data) m2 += (x - result.mean) * (x - result.mean);
  result.variance = m2 / static_cast<double>(data.size() - 1);
  return result;
}

TEST(CampaignWelford, MatchesTwoPassOnAdversarialData) {
  // Large common offset, tiny spread: the naive E[x²] − mean² estimator
  // loses every significant digit here (1e18 − 1e18); Welford must not.
  std::vector<double> data;
  util::Rng rng(11);
  for (int i = 0; i < 4096; ++i) {
    data.push_back(1.0e9 + 1.0e-3 * rng.normal());
  }
  Welford w;
  double sum = 0.0, sq_sum = 0.0;
  for (double x : data) {
    w.add(x);
    sum += x;
    sq_sum += x * x;
  }
  const TwoPass reference = two_pass(data);
  ASSERT_EQ(w.count, data.size());
  EXPECT_NEAR(w.mean, reference.mean, 1e-6);  // abs; values are ~1e9
  ASSERT_GT(reference.variance, 0.0);
  // Welford tracks the two-pass reference to a few ppm even at this
  // offset/spread ratio (x ≈ 1e9 costs ~2e-7 V absolute per deviation)...
  EXPECT_NEAR(w.variance() / reference.variance, 1.0, 1e-5);
  EXPECT_NEAR(w.standard_error() /
                  std::sqrt(reference.variance / static_cast<double>(w.count)),
              1.0, 1e-5);
  // ...while the naive E[x²] − mean² estimator loses *all* digits: its
  // rounding floor (~eps·1e18) dwarfs the true variance (~1e-6) a
  // trillion-fold.
  const double n = static_cast<double>(data.size());
  const double naive = (sq_sum - sum * sum / n) / (n - 1.0);
  EXPECT_GT(std::abs(naive / reference.variance - 1.0), 1e-3);
}

TEST(CampaignWelford, MergeMatchesSequentialClosely) {
  std::vector<double> data;
  util::Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    data.push_back(0.8 + 0.01 * rng.normal());
  }
  Welford sequential;
  for (double x : data) sequential.add(x);
  // Merge uneven chunks in order (the runner's shard fold).
  Welford merged;
  std::size_t at = 0;
  for (std::size_t chunk : {137u, 263u, 500u, 100u}) {
    Welford part;
    for (std::size_t i = 0; i < chunk; ++i) part.add(data[at++]);
    merged.merge(part);
  }
  ASSERT_EQ(at, data.size());
  EXPECT_EQ(merged.count, sequential.count);
  EXPECT_NEAR(merged.mean, sequential.mean, 1e-12);
  EXPECT_NEAR(merged.variance() / sequential.variance(), 1.0, 1e-9);
}

TEST(CampaignWelford, DegenerateCountsAreSafe) {
  Welford w;
  EXPECT_EQ(w.variance(), 0.0);
  EXPECT_EQ(w.standard_error(), 0.0);
  w.add(0.8);
  EXPECT_EQ(w.mean, 0.8);
  EXPECT_EQ(w.variance(), 0.0);  // n-1 undefined at n=1; clamp to 0
  Welford other;
  other.merge(w);  // merge into empty
  EXPECT_EQ(other.count, 1u);
  EXPECT_EQ(other.mean, 0.8);
  w.merge(Welford{});  // merge empty into non-empty
  EXPECT_EQ(w.count, 1u);
}

TEST(CampaignWeightedFailure, MatchesHandComputedMoments) {
  // Small stream with easy closed forms.
  WeightedFailure acc;
  acc.add(2.0, true);
  acc.add(0.5, false);
  acc.add(1.0, true);
  acc.add(0.5, false);
  ASSERT_EQ(acc.count, 4u);
  EXPECT_EQ(acc.failures, 2u);
  EXPECT_EQ(acc.probability(), (2.0 + 1.0) / 4.0);
  // Var(p̂) = (E[w²·1_fail] − p²)/n with E over the n samples.
  const double p = 3.0 / 4.0;
  const double second_moment = (4.0 + 1.0) / 4.0;
  EXPECT_NEAR(acc.standard_error(),
              std::sqrt((second_moment - p * p) / 4.0), 1e-15);
  // ESS = (Σw)²/Σw² = 16 / 5.5
  EXPECT_NEAR(acc.effective_sample_size(), 16.0 / 5.5, 1e-15);
  const Interval ci = acc.normal_interval(1.96);
  EXPECT_NEAR(ci.lo, p - 1.96 * acc.standard_error(), 1e-15);
  EXPECT_NEAR(ci.hi, p + 1.96 * acc.standard_error(), 1e-15);
}

TEST(CampaignWeightedFailure, MergePreservesSums) {
  util::Rng rng(13);
  WeightedFailure sequential, left, right;
  for (int i = 0; i < 200; ++i) {
    const double w = std::exp(0.3 * rng.normal());
    const bool failed = rng.uniform() < 0.2;
    sequential.add(w, failed);
    (i < 120 ? left : right).add(w, failed);
  }
  WeightedFailure merged = left;
  merged.merge(right);
  EXPECT_EQ(merged.count, sequential.count);
  EXPECT_EQ(merged.failures, sequential.failures);
  // merge() folds chunk *totals*, a different addition grouping than the
  // one-at-a-time stream, so the sums agree to rounding — not bitwise.
  // (Bit-identity holds when both sides fold the same chunk structure,
  // which is what the runner's ledger replay relies on.)
  EXPECT_NEAR(merged.weight_sum, sequential.weight_sum,
              1e-12 * sequential.weight_sum);
  EXPECT_NEAR(merged.weight_sq_sum, sequential.weight_sq_sum,
              1e-12 * sequential.weight_sq_sum);
  EXPECT_NEAR(merged.fail_weight_sum, sequential.fail_weight_sum,
              1e-12 * sequential.fail_weight_sum);
  EXPECT_NEAR(merged.fail_weight_sq_sum, sequential.fail_weight_sq_sum,
              1e-12 * sequential.fail_weight_sq_sum);
  // Re-merging the same chunk structure *is* bit-exact.
  WeightedFailure replay = left;
  replay.merge(right);
  EXPECT_EQ(replay.weight_sum, merged.weight_sum);
  EXPECT_EQ(replay.fail_weight_sq_sum, merged.fail_weight_sq_sum);
}

TEST(CampaignBinomial, WilsonIntervalKnownValue) {
  Binomial acc;
  for (int i = 0; i < 100; ++i) acc.add(i < 10);
  EXPECT_EQ(acc.rate(), 0.1);
  const Interval ci = acc.wilson_interval(1.96);
  // Standard reference value for k=10, n=100, z=1.96.
  EXPECT_NEAR(ci.lo, 0.0552, 5e-4);
  EXPECT_NEAR(ci.hi, 0.1744, 5e-4);
  // Wilson stays inside [0, 1] even at the boundaries.
  Binomial none;
  for (int i = 0; i < 20; ++i) none.add(false);
  const Interval zero_ci = none.wilson_interval(1.96);
  EXPECT_GE(zero_ci.lo, 0.0);
  EXPECT_GT(zero_ci.hi, 0.0);  // informative even with 0 successes
  EXPECT_LE(zero_ci.hi, 1.0);
}

// The contract in ISSUE.md: the streaming weighted-failure estimator must
// reproduce sram::ImportanceResult on the same sample stream. A
// single-shard campaign folds the identical per-sample terms in the
// identical order, so every statistic must match bit-for-bit.
TEST(CampaignWeightedFailure, ReproducesImportanceResultBitExact) {
  Manifest manifest;
  manifest.kind = CampaignKind::kImportance;
  manifest.seed = 21;
  manifest.budget = 16;
  manifest.shard_size = 16;  // one shard → same fold order as in-process
  manifest.threads = 2;
  manifest.v_dd = 1.05;
  manifest.sigma_vt = 0.12;
  manifest.with_rtn = false;  // nominal-only: fast and deterministic
  manifest.shift[0] = 0.06;   // M1
  manifest.shift[1] = 0.06;   // M2

  const auto reference =
      sram::estimate_failure_probability(importance_config_from(manifest));
  const CampaignResult campaign = run_campaign(manifest);

  ASSERT_TRUE(campaign.complete);
  ASSERT_EQ(campaign.samples_done, manifest.budget);
  EXPECT_EQ(campaign.estimate, reference.failure_probability);
  EXPECT_EQ(campaign.standard_error, reference.standard_error);
  EXPECT_EQ(campaign.effective_sample_size, reference.effective_sample_size);
  EXPECT_EQ(campaign.weighted.failures, reference.failures_observed);
}

// Multiple shards reassociate the partial sums, so the match is only
// near-exact — but the estimate is mathematically the same quantity.
TEST(CampaignWeightedFailure, MultiShardMatchesImportanceResultClosely) {
  Manifest manifest;
  manifest.kind = CampaignKind::kImportance;
  manifest.seed = 21;
  manifest.budget = 16;
  manifest.shard_size = 5;  // shards of 5, 5, 5, 1
  manifest.threads = 2;
  manifest.v_dd = 1.05;
  manifest.sigma_vt = 0.12;
  manifest.with_rtn = false;
  manifest.shift[0] = 0.06;
  manifest.shift[1] = 0.06;

  const auto reference =
      sram::estimate_failure_probability(importance_config_from(manifest));
  const CampaignResult campaign = run_campaign(manifest);

  ASSERT_EQ(campaign.shards_done, 4u);
  EXPECT_EQ(campaign.weighted.failures, reference.failures_observed);
  EXPECT_NEAR(campaign.estimate, reference.failure_probability,
              1e-12 * std::max(1.0, reference.failure_probability));
  EXPECT_NEAR(campaign.standard_error, reference.standard_error,
              1e-12 * std::max(1.0, reference.standard_error));
  EXPECT_NEAR(campaign.effective_sample_size,
              reference.effective_sample_size, 1e-9);
}

}  // namespace
}  // namespace samurai::campaign
