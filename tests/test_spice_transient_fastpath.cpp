// Regression tests for the transient fast path: the reusable Newton
// workspace, the linear-stamp cache and the modified-Newton LU bypass must
// be pure accelerations — same waveforms as the force-refactorize
// reference, zero steady-state allocations — and the adaptive step
// controller must keep its breakpoint/LTE/underflow contracts.
#include "spice/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "spice/devices.hpp"
#include "sram/methodology.hpp"

namespace samurai {
namespace {

sram::MethodologyConfig write_config(bool fast_path) {
  sram::MethodologyConfig config;
  config.tech = physics::technology("65nm");
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0, 1});
  config.transient.newton.reuse_lu = fast_path;
  config.transient.newton.cache_linear_stamps = fast_path;
  config.transient.dc.newton.reuse_lu = fast_path;
  config.transient.dc.newton.cache_linear_stamps = fast_path;
  return config;
}

TEST(TransientFastPath, MatchesForceRefactorizeWaveforms) {
  // The bypass and the stamp cache change *how* each Newton solve is
  // carried out, never what it converges to: the 6T write waveforms from
  // the fast and the all-caches-off paths must agree within Newton
  // tolerance everywhere on the pattern.
  const auto fast = sram::run_nominal(write_config(true));
  const auto slow = sram::run_nominal(write_config(false));
  EXPECT_GT(fast.result.stats().bypass_hits, 0u);
  EXPECT_EQ(slow.result.stats().bypass_hits, 0u);
  EXPECT_EQ(slow.result.stats().linear_cache_hits, 0u);
  EXPECT_EQ(slow.result.stats().lu_factorizations,
            slow.result.stats().newton_iterations);

  const double t_end = fast.pattern.t_end;
  for (const std::string& name : {fast.handles.q, fast.handles.qb}) {
    double max_diff = 0.0;
    for (int i = 0; i <= 300; ++i) {
      const double t = t_end * i / 300.0;
      max_diff = std::max(max_diff, std::abs(fast.result.voltage_at(name, t) -
                                             slow.result.voltage_at(name, t)));
    }
    EXPECT_LT(max_diff, 2e-4) << "node " << name;
  }
}

TEST(TransientFastPath, WorkspaceReuseIsAllocationFree) {
  const auto config = write_config(true);
  spice::NewtonWorkspace workspace;
  const auto first = sram::run_nominal(config, workspace);
  // Binding a fresh workspace to the circuit allocates exactly once.
  EXPECT_EQ(first.result.stats().workspace_allocations, 1u);
  // Re-running the same-sized cell through the same workspace must not
  // touch the heap again — the acceptance contract of the fast path.
  const auto second = sram::run_nominal(config, workspace);
  EXPECT_EQ(second.result.stats().workspace_allocations, 0u);
  EXPECT_GT(second.result.stats().steps_accepted, 0u);
}

TEST(TransientFastPath, MethodologySharesWorkspaceAcrossPhases) {
  // run_methodology's RTN-injected re-simulation only adds current
  // sources, so it must reuse every buffer the nominal phase allocated.
  sram::MethodologyConfig config;
  config.tech = physics::technology("90nm");
  config.ops = sram::ops_from_bits({1, 0});
  config.seed = 7;
  const auto result = sram::run_methodology(config);
  EXPECT_EQ(result.nominal.stats().workspace_allocations, 1u);
  EXPECT_EQ(result.with_rtn.stats().workspace_allocations, 0u);
}

TEST(StepController, ExtraBreakpointIsLandedExactly) {
  spice::Circuit circuit;
  const int a = circuit.node("a");
  circuit.add<spice::CurrentSource>("I1", spice::kGround, a,
                                    core::Pwl::constant(1e-3));
  circuit.add<spice::Resistor>("R1", a, spice::kGround, 1e3);
  circuit.add<spice::Capacitor>("C1", a, spice::kGround, 1e-12);
  spice::TransientOptions options;
  options.t_stop = 1e-6;
  options.extra_breakpoints = {3.7e-7};
  const auto result = spice::transient(circuit, options);
  bool found = false;
  for (double t : result.times()) {
    if (std::abs(t - 3.7e-7) < 1e-15) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(StepController, LteRejectionRetriesAtQuarterStep) {
  // A fast sine into an RC with a deliberately huge initial step: the
  // predictor/corrector error must reject the early steps (retrying at
  // step/4) and still land on the correct trajectory.
  auto build = [](spice::Circuit& circuit) {
    const int a = circuit.node("a");
    circuit.add<spice::CallbackCurrentSource>(
        "I1", spice::kGround, a,
        [](double t) { return 1e-3 * std::sin(2.0 * 3.141592653589793 * 5e7 * t); });
    circuit.add<spice::Resistor>("R1", a, spice::kGround, 1e3);
    circuit.add<spice::Capacitor>("C1", a, spice::kGround, 1e-12);
  };

  spice::Circuit coarse_circuit;
  build(coarse_circuit);
  spice::TransientOptions coarse;
  coarse.t_stop = 100e-9;
  coarse.dt_initial = 5e-9;  // a quarter of the sine period
  coarse.dt_max = 100e-9;
  const auto result = spice::transient(coarse_circuit, coarse);
  EXPECT_GT(result.stats().steps_rejected, 0u);

  // Reference with a conservative step cap: the rejected-and-retried run
  // must agree with it despite starting 250x coarser.
  spice::Circuit fine_circuit;
  build(fine_circuit);
  spice::TransientOptions fine;
  fine.t_stop = 100e-9;
  fine.dt_max = 0.2e-9;
  const auto reference = spice::transient(fine_circuit, fine);
  for (double t = 20e-9; t < 100e-9; t += 7e-9) {
    EXPECT_NEAR(result.voltage_at("a", t), reference.voltage_at("a", t), 2e-2)
        << "t=" << t;
  }
}

TEST(StepController, DtMinUnderflowThrows) {
  // Allow one Newton iteration per step: the entering residual of a fast
  // source can then never pass the convergence check, so every step
  // rejects, quarters, and the controller must throw at dt_min rather
  // than loop forever. The DC solve keeps its own (default) Newton
  // options and still converges.
  spice::Circuit circuit;
  const int a = circuit.node("a");
  circuit.add<spice::CallbackCurrentSource>(
      "I1", spice::kGround, a,
      [](double t) { return 1e-3 * std::sin(2.0 * 3.141592653589793 * 5e7 * t); });
  circuit.add<spice::Resistor>("R1", a, spice::kGround, 1e3);
  circuit.add<spice::Capacitor>("C1", a, spice::kGround, 1e-12);
  spice::TransientOptions options;
  options.t_stop = 1e-6;
  options.dt_min = 1e-12;
  options.newton.max_iterations = 1;
  EXPECT_THROW(spice::transient(circuit, options), std::runtime_error);
}

}  // namespace
}  // namespace samurai
