// The distributed campaign service (DESIGN.md §14): lease protocol,
// worker loop, coordinator, torn/concurrent checkpoint recovery — and the
// headline fault-injection test: 4 worker processes on one campaign
// directory, 3 SIGKILLed mid-run, result bit-identical to the
// uninterrupted single-process run.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/json.hpp"
#include "campaign/manifest.hpp"
#include "campaign/runner.hpp"
#include "campaign/service/coordinator.hpp"
#include "campaign/service/lease.hpp"
#include "campaign/service/worker.hpp"
#include "util/fs.hpp"

namespace samurai::campaign {
namespace {

using Clock = std::chrono::steady_clock;

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

class CampaignServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (std::filesystem::temp_directory_path() /
             ("samurai_service_" + std::string(info->name()) + "_" +
              std::to_string(::getpid())))
                .string();
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  std::string dir(const std::string& leaf) const { return root_ + "/" + leaf; }

  std::string root_;
};

/// The fast nominal-only importance workload the checkpoint tests use:
/// 4 shards of 6 samples, failures common enough to exercise every
/// accumulator channel.
Manifest small_manifest() {
  Manifest manifest;
  manifest.kind = CampaignKind::kImportance;
  manifest.name = "service-test";
  manifest.seed = 21;
  manifest.budget = 24;
  manifest.shard_size = 6;
  manifest.threads = 1;
  manifest.v_dd = 1.05;
  manifest.sigma_vt = 0.12;
  manifest.with_rtn = false;
  manifest.shift[0] = 0.06;
  manifest.shift[1] = 0.06;
  return manifest;
}

void expect_bit_identical(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.shards_done, b.shards_done);
  EXPECT_EQ(a.samples_done, b.samples_done);
  EXPECT_EQ(a.complete, b.complete);
  EXPECT_EQ(a.stopped_early, b.stopped_early);
  EXPECT_EQ(a.budget_saved, b.budget_saved);
  EXPECT_EQ(a.weighted.count, b.weighted.count);
  EXPECT_EQ(a.weighted.failures, b.weighted.failures);
  EXPECT_EQ(a.weighted.weight_sum, b.weighted.weight_sum);
  EXPECT_EQ(a.weighted.weight_sq_sum, b.weighted.weight_sq_sum);
  EXPECT_EQ(a.weighted.fail_weight_sum, b.weighted.fail_weight_sum);
  EXPECT_EQ(a.weighted.fail_weight_sq_sum, b.weighted.fail_weight_sq_sum);
  EXPECT_EQ(a.fails.count, b.fails.count);
  EXPECT_EQ(a.fails.successes, b.fails.successes);
  EXPECT_EQ(a.nominal_fails.successes, b.nominal_fails.successes);
  EXPECT_EQ(a.slow.successes, b.slow.successes);
  EXPECT_EQ(a.value.count, b.value.count);
  EXPECT_EQ(a.value.mean, b.value.mean);
  EXPECT_EQ(a.value.m2, b.value.m2);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.standard_error, b.standard_error);
  EXPECT_EQ(a.ci.lo, b.ci.lo);
  EXPECT_EQ(a.ci.hi, b.ci.hi);
  EXPECT_EQ(a.effective_sample_size, b.effective_sample_size);
}

/// A synthetic ledger line (no simulation) for checkpoint-layer tests.
ShardResult make_shard(std::uint64_t index, double marker = 0.0) {
  ShardResult shard;
  shard.index = index;
  shard.samples = 1;
  shard.weighted.count = 1;
  shard.weighted.failures = index % 2;
  shard.weighted.weight_sum = 1.0;
  shard.weighted.weight_sq_sum = 1.0;
  shard.weighted.fail_weight_sum = static_cast<double>(index % 2);
  shard.weighted.fail_weight_sq_sum = static_cast<double>(index % 2);
  shard.fails.count = 1;
  shard.fails.successes = index % 2;
  shard.wall_seconds = marker;
  return shard;
}

// ---------------------------------------------------------------------------
// Lease protocol
// ---------------------------------------------------------------------------

TEST_F(CampaignServiceTest, LeaseClaimIsExclusive) {
  LeaseDir leases(dir("c"), /*ttl=*/10.0);
  const auto mine = leases.try_claim(3, "w1");
  ASSERT_TRUE(mine.has_value());
  EXPECT_EQ(mine->shard, 3u);
  EXPECT_EQ(mine->worker, "w1");
  EXPECT_FALSE(leases.try_claim(3, "w2").has_value());
  // Other shards are unaffected, and release frees the slot.
  EXPECT_TRUE(leases.try_claim(4, "w2").has_value());
  leases.release(*mine);
  EXPECT_TRUE(leases.try_claim(3, "w2").has_value());
}

TEST_F(CampaignServiceTest, ExpiredLeaseIsStolenByTheNextClaimer) {
  LeaseDir leases(dir("c"), /*ttl=*/0.05);
  ASSERT_TRUE(leases.try_claim(0, "dead").has_value());
  sleep_seconds(0.15);  // no heartbeat: the holder is presumed dead
  const auto stolen = leases.try_claim(0, "alive");
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->worker, "alive");
  EXPECT_EQ(leases.reclaimed(), 1u);
}

TEST_F(CampaignServiceTest, RenewalKeepsALeaseAliveAcrossItsTtl) {
  LeaseDir leases(dir("c"), /*ttl=*/0.2);
  auto mine = leases.try_claim(0, "w1");
  ASSERT_TRUE(mine.has_value());
  for (int beat = 0; beat < 5; ++beat) {
    sleep_seconds(0.08);  // each gap is < ttl, the sum is well past it
    ASSERT_TRUE(leases.renew(*mine));
    EXPECT_FALSE(leases.try_claim(0, "w2").has_value());
  }
  EXPECT_EQ(mine->heartbeats, 5u);
}

TEST_F(CampaignServiceTest, RenewalDetectsATheftAndReleaseSparesTheThief) {
  LeaseDir leases(dir("c"), /*ttl=*/0.05);
  auto mine = leases.try_claim(0, "stalled");
  ASSERT_TRUE(mine.has_value());
  sleep_seconds(0.15);
  const auto thief = leases.try_claim(0, "thief");
  ASSERT_TRUE(thief.has_value());
  // The stalled owner's next heartbeat must notice, and its release must
  // not delete the thief's lease out from under it.
  EXPECT_FALSE(leases.renew(*mine));
  leases.release(*mine);
  const auto observed = leases.observe();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed.front().lease.worker, "thief");
}

TEST_F(CampaignServiceTest, ReclaimExpiredSweepsOnlyExpiredLeases) {
  LeaseDir leases(dir("c"), /*ttl=*/0.15);
  ASSERT_TRUE(leases.try_claim(0, "dead").has_value());
  sleep_seconds(0.2);
  auto live = leases.try_claim(1, "live");
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(leases.reclaim_expired(), 1u);
  const auto observed = leases.observe();
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed.front().lease.worker, "live");
}

// ---------------------------------------------------------------------------
// Checkpoint: append-only ledger, torn and concurrent writes
// ---------------------------------------------------------------------------

TEST_F(CampaignServiceTest, LedgerLoadSortsByIndexAndDropsDuplicates) {
  Manifest manifest = small_manifest();
  manifest.budget = 40;
  manifest.shard_size = 10;  // 4 shards
  Checkpoint checkpoint(dir("c"));
  checkpoint.init(manifest);
  // Completion order 2, 0, 1 — then a duplicate of 1 (a reclaimed lease
  // whose original owner also finished). First-appended line wins.
  checkpoint.append_ledger(make_shard(2));
  checkpoint.append_ledger(make_shard(0));
  checkpoint.append_ledger(make_shard(1, /*marker=*/1.0));
  checkpoint.append_ledger(make_shard(1, /*marker=*/2.0));
  const auto ledger = checkpoint.load_ledger();
  ASSERT_EQ(ledger.size(), 3u);
  EXPECT_EQ(ledger[0].index, 0u);
  EXPECT_EQ(ledger[1].index, 1u);
  EXPECT_EQ(ledger[2].index, 2u);
  EXPECT_EQ(ledger[1].wall_seconds, 1.0);  // first append won the dedupe
  // The fold covers the whole contiguous prefix.
  EXPECT_EQ(fold_ledger(manifest, ledger).shards_done, 3u);
}

TEST_F(CampaignServiceTest, FoldStopsAtAGapLeftByADeadWorker) {
  Manifest manifest = small_manifest();
  manifest.budget = 40;
  manifest.shard_size = 10;
  Checkpoint checkpoint(dir("c"));
  checkpoint.init(manifest);
  checkpoint.append_ledger(make_shard(0));
  checkpoint.append_ledger(make_shard(2));  // shard 1 lost with its worker
  const CampaignResult folded =
      fold_ledger(manifest, checkpoint.load_ledger());
  EXPECT_EQ(folded.shards_done, 1u);
  EXPECT_EQ(folded.samples_done, 1u);
  EXPECT_FALSE(folded.complete);
}

TEST_F(CampaignServiceTest, TornTrailingLedgerLineIsIgnoredNotFolded) {
  Manifest manifest = small_manifest();
  RunOptions options;
  options.dir = dir("c");
  options.max_shards_this_run = 2;
  run_campaign(manifest, options);

  // A writer died mid-append: unterminated, truncated record.
  {
    std::ofstream out(Checkpoint(dir("c")).ledger_path(),
                      std::ios::binary | std::ios::app);
    out << "{\"shard\": 2, \"samples\": 6, \"w_cou";
  }
  ::testing::internal::CaptureStderr();
  const auto ledger = Checkpoint(dir("c")).load_ledger();
  const std::string warning = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(ledger.size(), 2u);  // the torn shard counts as not-run
  EXPECT_NE(warning.find("torn"), std::string::npos);

  // status on the damaged directory is consistent, not throwing.
  const CampaignResult status = campaign_status(dir("c"));
  EXPECT_EQ(status.shards_done, 2u);
  EXPECT_FALSE(status.complete);
}

TEST_F(CampaignServiceTest, ResumeHealsATornTailAndMatchesTheFullRun) {
  const Manifest manifest = small_manifest();
  RunOptions options;
  options.dir = dir("c");
  options.max_shards_this_run = 2;
  run_campaign(manifest, options);
  {
    std::ofstream out(Checkpoint(dir("c")).ledger_path(),
                      std::ios::binary | std::ios::app);
    out << "{\"shard\": 2, \"samples\": 6, \"w_cou";
  }

  RunOptions resume_options;
  resume_options.dir = dir("c");
  const CampaignResult resumed = resume_campaign(resume_options);
  ASSERT_TRUE(resumed.complete);
  // The torn shard was re-run; the healed ledger folds to the exact
  // uninterrupted result.
  const CampaignResult full = run_campaign(manifest);
  expect_bit_identical(full, resumed);
  expect_bit_identical(full, campaign_status(dir("c")));
}

TEST_F(CampaignServiceTest, StatusSeesAConsistentSnapshotUnderInFlightWriters) {
  Manifest manifest = small_manifest();
  manifest.budget = 60;
  manifest.shard_size = 1;  // 60 single-sample synthetic shards
  Checkpoint checkpoint(dir("c"));
  checkpoint.init(manifest);

  std::thread appender([&] {
    for (std::uint64_t i = 0; i < 60; ++i) {
      checkpoint.append_ledger(make_shard(i));
      sleep_seconds(0.0002);
    }
  });
  std::uint64_t last_seen = 0;
  while (last_seen < 60) {
    const CampaignResult status = campaign_status(dir("c"));
    EXPECT_GE(status.shards_done, last_seen);  // progress is monotone
    EXPECT_LE(status.shards_done, 60u);
    EXPECT_EQ(status.samples_done, status.shards_done);  // whole lines only
    last_seen = status.shards_done;
  }
  appender.join();
  EXPECT_EQ(campaign_status(dir("c")).shards_done, 60u);
}

TEST_F(CampaignServiceTest, ConcurrentAtomicReplacersNeverTearTheFile) {
  const std::string path = dir("c") + "/state.json";
  std::filesystem::create_directories(dir("c"));
  const std::string contents[2] = {std::string(4096, 'a'),
                                   std::string(4096, 'b')};
  write_file_atomic(path, contents[0]);

  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 50; ++i) write_file_atomic(path, contents[w % 2]);
    });
  }
  for (int i = 0; i < 200; ++i) {
    const std::string seen = read_file(path);
    ASSERT_TRUE(seen == contents[0] || seen == contents[1])
        << "torn read of " << seen.size() << " bytes";
  }
  for (auto& thread : writers) thread.join();

  // No stranded temp files: the unique-suffix temps all renamed or died.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir("c"))) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

// ---------------------------------------------------------------------------
// Worker loop and coordinator (in-process)
// ---------------------------------------------------------------------------

TEST_F(CampaignServiceTest, SingleWorkerCompletesACampaignBitIdentically) {
  const Manifest manifest = small_manifest();
  Checkpoint(dir("c")).init(manifest);

  WorkerOptions options;
  options.dir = dir("c");
  options.worker_id = "solo";
  options.lease_ttl = 10.0;
  options.poll_seconds = 0.01;
  const WorkerReport report = run_worker(options);
  EXPECT_TRUE(report.campaign_complete);
  EXPECT_FALSE(report.timed_out);
  EXPECT_EQ(report.shards_run, 4u);
  EXPECT_EQ(report.samples_run, 24u);
  EXPECT_EQ(report.leases_lost, 0u);

  expect_bit_identical(run_campaign(manifest), campaign_status(dir("c")));
  // Ledger lines carry worker attribution; no leases remain.
  for (const auto& shard : Checkpoint(dir("c")).load_ledger()) {
    EXPECT_EQ(shard.worker, "solo");
  }
  EXPECT_TRUE(LeaseDir(dir("c"), 10.0).observe().empty());
}

TEST_F(CampaignServiceTest, TwoConcurrentWorkersSplitTheCampaign) {
  const Manifest manifest = small_manifest();
  Checkpoint(dir("c")).init(manifest);

  WorkerReport reports[2];
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      WorkerOptions options;
      options.dir = dir("c");
      options.worker_id = "w" + std::to_string(w);
      options.lease_ttl = 10.0;
      options.poll_seconds = 0.01;
      reports[w] = run_worker(options);
    });
  }
  for (auto& thread : threads) thread.join();

  // Leases kept the split disjoint: every shard ran exactly once.
  EXPECT_EQ(reports[0].shards_run + reports[1].shards_run, 4u);
  EXPECT_EQ(reports[0].leases_lost + reports[1].leases_lost, 0u);
  expect_bit_identical(run_campaign(manifest), campaign_status(dir("c")));
}

TEST_F(CampaignServiceTest, EarlyStopDecisionMatchesSingleProcess) {
  // The stopping rule is part of the fold, so a distributed campaign must
  // stop at the same shard — surplus shards claimed by racing workers are
  // excluded from the fold exactly as if they had never run.
  Manifest manifest = small_manifest();
  manifest.budget = 60;
  manifest.shard_size = 6;
  manifest.sigma_vt = 0.2;  // failures common -> CI tightens fast
  manifest.target_rel_half_width = 0.5;
  manifest.min_samples = 12;
  Checkpoint(dir("c")).init(manifest);

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      WorkerOptions options;
      options.dir = dir("c");
      options.worker_id = "w" + std::to_string(w);
      options.lease_ttl = 10.0;
      options.poll_seconds = 0.01;
      run_worker(options);
    });
  }
  for (auto& thread : threads) thread.join();

  const CampaignResult single = run_campaign(manifest);
  ASSERT_TRUE(single.stopped_early);
  const CampaignResult distributed = campaign_status(dir("c"));
  EXPECT_TRUE(distributed.stopped_early);
  expect_bit_identical(single, distributed);
}

TEST_F(CampaignServiceTest, CoordinatorReclaimsExpiredLeasesAndPublishes) {
  const Manifest manifest = small_manifest();
  Checkpoint(dir("c")).init(manifest);

  // A worker died holding shard 0 — only its lease file remains.
  LeaseDir leases(dir("c"), 0.05);
  ASSERT_TRUE(leases.try_claim(0, "dead").has_value());
  sleep_seconds(0.15);

  const ServiceStatus before = coordinator_tick(dir("c"), 0.05);
  EXPECT_EQ(before.leases_reclaimed, 1u);
  EXPECT_EQ(before.leases_active, 0u);
  EXPECT_EQ(before.shards_total, 4u);
  EXPECT_EQ(before.shards_completed, 0u);
  EXPECT_FALSE(before.result.complete);

  // status.json is the machine-readable endpoint, svc_* keys included.
  const auto status_json =
      JsonObject::parse(read_file(Checkpoint(dir("c")).status_path()));
  EXPECT_EQ(status_json.get_u64("svc_shards_total", 0), 4u);
  EXPECT_EQ(status_json.get_u64("svc_leases_reclaimed", 0), 1u);
  EXPECT_EQ(status_json.get_string("status", ""), "paused");

  // After a worker finishes the campaign, a tick publishes completion and
  // state.json for pre-service `status` consumers.
  WorkerOptions worker;
  worker.dir = dir("c");
  worker.worker_id = "w1";
  worker.lease_ttl = 10.0;
  worker.poll_seconds = 0.01;
  run_worker(worker);
  const ServiceStatus after =
      coordinator_tick(dir("c"), 0.05, before.leases_reclaimed);
  EXPECT_TRUE(after.result.complete);
  EXPECT_EQ(after.shards_completed, 4u);
  ASSERT_EQ(after.workers.size(), 1u);
  EXPECT_EQ(after.workers.front().worker, "w1");
  EXPECT_EQ(after.workers.front().samples, 24u);
  const auto state =
      JsonObject::parse(Checkpoint(dir("c")).load_state());
  EXPECT_EQ(state.get_string("status", ""), "complete");
  EXPECT_EQ(state.get_u64("budget_used", 0), 24u);
}

TEST_F(CampaignServiceTest, ServeRunsUntilAWorkerFinishesTheCampaign) {
  const Manifest manifest = small_manifest();
  Checkpoint(dir("c")).init(manifest);

  std::thread worker([&] {
    WorkerOptions options;
    options.dir = dir("c");
    options.worker_id = "w1";
    options.lease_ttl = 10.0;
    options.poll_seconds = 0.01;
    run_worker(options);
  });

  ServeOptions serve;
  serve.dir = dir("c");
  serve.lease_ttl = 10.0;
  serve.poll_seconds = 0.02;
  serve.max_wall_seconds = 120.0;  // bound for CI; normally hit `complete`
  const ServiceStatus status = serve_campaign(serve);
  worker.join();
  ASSERT_TRUE(status.result.complete);
  expect_bit_identical(run_campaign(manifest), status.result);
}

// ---------------------------------------------------------------------------
// Process-level tests: the real CLI binary, fork/exec, SIGKILL
// ---------------------------------------------------------------------------

/// Start `samurai_campaign <args>` with stdout/stderr redirected to files.
/// Only async-signal-safe calls between fork and execv (the test binary is
/// multi-thread-capable; the child must not touch the C++ runtime).
pid_t spawn_cli(const std::vector<std::string>& args,
                const std::string& stdout_path,
                const std::string& stderr_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  static const std::string cli = SAMURAI_CAMPAIGN_CLI;
  argv.push_back(const_cast<char*>(cli.c_str()));
  for (const auto& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int out = ::open(stdout_path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  const int err = ::open(stderr_path.c_str(),
                         O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out >= 0) ::dup2(out, STDOUT_FILENO);
  if (err >= 0) ::dup2(err, STDERR_FILENO);
  ::execv(cli.c_str(), argv.data());
  ::_exit(127);  // exec failed
}

/// waitpid with a deadline; returns the raw wait status, or nullopt (and
/// SIGKILLs the child) if it failed to exit in time.
std::optional<int> wait_exit(pid_t pid, double timeout_seconds) {
  const auto deadline =
      Clock::now() + std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return status;
    if (got < 0) return std::nullopt;
    if (Clock::now() > deadline) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      return std::nullopt;
    }
    sleep_seconds(0.01);
  }
}

std::string slurp_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CampaignServiceCliTest : public CampaignServiceTest {
 protected:
  /// Run the CLI to completion; returns its exit code (or -1 on timeout /
  /// abnormal death) with the captured streams in out_/err_.
  int run_cli(const std::vector<std::string>& args) {
    const std::string out_path = root_ + "/cli.out";
    const std::string err_path = root_ + "/cli.err";
    const pid_t pid = spawn_cli(args, out_path, err_path);
    if (pid < 0) return -1;
    const auto status = wait_exit(pid, 120.0);
    out_ = slurp_or_empty(out_path);
    err_ = slurp_or_empty(err_path);
    if (!status || !WIFEXITED(*status)) return -1;
    return WEXITSTATUS(*status);
  }

  std::string out_;
  std::string err_;
};

TEST_F(CampaignServiceCliTest, NoArgumentsExitsNonZeroWithUsageOnStderr) {
  EXPECT_EQ(run_cli({}), 2);
  EXPECT_NE(err_.find("usage:"), std::string::npos);
  EXPECT_TRUE(out_.empty());
}

TEST_F(CampaignServiceCliTest, UnknownSubcommandExitsNonZeroWithUsage) {
  EXPECT_EQ(run_cli({"frobnicate", "--dir", dir("c")}), 2);
  EXPECT_NE(err_.find("unknown command 'frobnicate'"), std::string::npos);
  EXPECT_NE(err_.find("usage:"), std::string::npos);
}

TEST_F(CampaignServiceCliTest, WorkAndServeRequireADirectory) {
  EXPECT_EQ(run_cli({"work"}), 2);
  EXPECT_NE(err_.find("usage:"), std::string::npos);
  EXPECT_EQ(run_cli({"serve"}), 2);
  EXPECT_NE(err_.find("usage:"), std::string::npos);
  EXPECT_EQ(run_cli({"init"}), 2);
}

TEST_F(CampaignServiceCliTest, NonPositiveLeaseTtlIsRejected) {
  EXPECT_EQ(run_cli({"work", "--dir", dir("c"), "--lease-ttl", "0"}), 1);
  EXPECT_NE(err_.find("positive"), std::string::npos);
  EXPECT_EQ(run_cli({"serve", "--dir", dir("c"), "--lease-ttl", "-3"}), 1);
  EXPECT_NE(err_.find("positive"), std::string::npos);
  EXPECT_EQ(run_cli({"work", "--dir", dir("c"), "--poll", "nan"}), 1);
}

TEST_F(CampaignServiceCliTest, UnusableWorkerIdIsRejected) {
  EXPECT_EQ(run_cli({"work", "--dir", dir("c"), "--worker-id", "a b"}), 1);
  EXPECT_NE(err_.find("worker-id"), std::string::npos);
  EXPECT_EQ(run_cli({"work", "--dir", dir("c"), "--worker-id", "a\"b"}), 1);
  EXPECT_NE(err_.find("worker-id"), std::string::npos);
}

/// The headline acceptance test (ISSUE 7): four worker processes share one
/// campaign directory; three are SIGKILLed mid-run — one of them holding
/// leases — and the survivor reclaims the expired leases, closes every
/// gap, and the folded result is bit-identical to the uninterrupted
/// single-process run. No shard is lost, none double-folded.
TEST_F(CampaignServiceCliTest, KillingThreeOfFourWorkersStillConvergesExactly) {
  Manifest manifest = small_manifest();
  manifest.budget = 96;
  manifest.shard_size = 4;  // 24 shards: plenty of claims to interleave
  const std::string d = dir("c");
  Checkpoint(d).init(manifest);

  std::vector<pid_t> workers;
  for (int w = 0; w < 4; ++w) {
    const std::string id = "w" + std::to_string(w);
    workers.push_back(spawn_cli(
        {"work", "--dir", d, "--worker-id", id, "--lease-ttl", "0.6",
         "--poll", "0.02", "--max-seconds", "240", "--quiet"},
        root_ + "/" + id + ".out", root_ + "/" + id + ".err"));
    ASSERT_GT(workers.back(), 0);
  }

  // Let the campaign get moving, then kill 3 of the 4 mid-flight.
  const auto deadline = Clock::now() + std::chrono::seconds(120);
  while (Checkpoint(d).load_ledger().empty()) {
    ASSERT_LT(Clock::now(), deadline) << "no worker completed a shard";
    sleep_seconds(0.01);
  }
  for (int w = 0; w < 3; ++w) {
    ASSERT_EQ(::kill(workers[static_cast<size_t>(w)], SIGKILL), 0);
    int status = 0;
    ::waitpid(workers[static_cast<size_t>(w)], &status, 0);
  }

  // The survivor inherits everything: expired leases from the dead
  // workers are stolen once their ttl lapses, gaps are re-run, and the
  // worker exits 0 with the campaign complete.
  const auto survivor_status = wait_exit(workers[3], 240.0);
  ASSERT_TRUE(survivor_status.has_value()) << "surviving worker hung";
  ASSERT_TRUE(WIFEXITED(*survivor_status));
  EXPECT_EQ(WEXITSTATUS(*survivor_status), 0)
      << slurp_or_empty(root_ + "/w3.err");

  // A coordinator pass reaps any lease files the dead workers left on
  // shards they had already appended (nothing re-runs those).
  const auto reap_deadline = Clock::now() + std::chrono::seconds(30);
  ServiceStatus service = coordinator_tick(d, 0.6);
  while (!LeaseDir(d, 0.6).observe().empty() &&
         Clock::now() < reap_deadline) {
    sleep_seconds(0.1);
    service = coordinator_tick(d, 0.6, service.leases_reclaimed);
  }
  EXPECT_TRUE(LeaseDir(d, 0.6).observe().empty());

  // Bit-identical to the uninterrupted single-process run: estimate, CI,
  // accumulator state, stopping decision.
  const CampaignResult distributed = campaign_status(d);
  ASSERT_TRUE(distributed.complete);
  EXPECT_EQ(distributed.shards_done, manifest.shard_count());
  const CampaignResult reference = run_campaign(manifest);
  expect_bit_identical(reference, distributed);

  // Every shard appears exactly once in the deduplicated ledger, and the
  // published status.json agrees with the fold.
  const auto ledger = Checkpoint(d).load_ledger();
  ASSERT_EQ(ledger.size(), manifest.shard_count());
  for (std::uint64_t i = 0; i < ledger.size(); ++i) {
    EXPECT_EQ(ledger[i].index, i);
    EXPECT_FALSE(ledger[i].worker.empty());
  }
  const auto status_json =
      JsonObject::parse(read_file(Checkpoint(d).status_path()));
  EXPECT_EQ(status_json.get_u64("svc_shards_total", 0), manifest.shard_count());
  EXPECT_EQ(status_json.get_u64("svc_shards_folded", 0),
            manifest.shard_count());
  EXPECT_EQ(status_json.get_string("status", ""), "complete");
}

}  // namespace
}  // namespace samurai::campaign
