#include "physics/technology.hpp"

#include <gtest/gtest.h>

#include "physics/constants.hpp"

namespace samurai::physics {
namespace {

TEST(Technology, AllPredefinedNodesResolve) {
  for (const auto& name : technology_nodes()) {
    const auto tech = technology(name);
    EXPECT_EQ(tech.name, name);
    EXPECT_GT(tech.l_min, 0.0);
    EXPECT_GT(tech.w_min, tech.l_min);
    EXPECT_GT(tech.t_ox, 0.0);
    EXPECT_GT(tech.v_dd, 0.0);
    EXPECT_GT(tech.trap_density, 0.0);
    EXPECT_LT(tech.trap_e_min, tech.trap_e_max);
  }
}

TEST(Technology, UnknownNodeThrows) {
  EXPECT_THROW(technology("7nm"), std::invalid_argument);
}

TEST(Technology, NodesOrderedLargestToSmallest) {
  const auto& names = technology_nodes();
  ASSERT_GE(names.size(), 2u);
  double prev = technology(names.front()).l_min;
  for (std::size_t i = 1; i < names.size(); ++i) {
    const double l = technology(names[i]).l_min;
    EXPECT_LT(l, prev);
    prev = l;
  }
}

TEST(Technology, ScalingTrends) {
  const auto old_node = technology("130nm");
  const auto new_node = technology("22nm");
  EXPECT_GT(old_node.v_dd, new_node.v_dd);
  EXPECT_GT(old_node.t_ox, new_node.t_ox);
  EXPECT_LT(old_node.trap_density, new_node.trap_density);
  EXPECT_LT(old_node.n_a, new_node.n_a);
}

TEST(Technology, DerivedQuantitiesArePhysical) {
  const auto tech = technology("90nm");
  // C_ox = eps_ox / t_ox.
  EXPECT_NEAR(tech.c_ox(), kEpsOxRel * kEps0 / tech.t_ox, 1e-9);
  // Thermal voltage ~25.9 mV at 300K.
  EXPECT_NEAR(tech.phi_t(), 0.02585, 1e-4);
  // Fermi potential in the 0.3-0.6 V range for 1e17-1e18 cm^-3 doping.
  EXPECT_GT(tech.phi_f(), 0.3);
  EXPECT_LT(tech.phi_f(), 0.6);
  // Threshold voltage sensible relative to supply.
  EXPECT_GT(tech.v_th0(), 0.15);
  EXPECT_LT(tech.v_th0(), 0.6 * tech.v_dd);
}

TEST(Technology, ThermalVoltageScalesWithTemperature) {
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
  EXPECT_NEAR(thermal_voltage(600.0) / thermal_voltage(300.0), 2.0, 1e-12);
}

TEST(Technology, TrapWindowCoversResonanceSweep) {
  // The trap energy window must straddle the Fermi-level excursion so some
  // traps pass through resonance within the gate swing (see DESIGN.md).
  for (const auto& name : technology_nodes()) {
    const auto tech = technology(name);
    EXPECT_LT(tech.trap_e_min, 0.45);
    EXPECT_GT(tech.trap_e_max, 0.7);
  }
}

}  // namespace
}  // namespace samurai::physics
