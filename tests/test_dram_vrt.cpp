#include "dram/vrt.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace samurai::dram {
namespace {

VrtConfig fast_config() {
  VrtConfig config;
  config.tech = physics::technology("45nm");
  config.t_max = 0.05;
  return config;
}

TEST(DramVrt, LeakageDecreasesWithTrappedChannelCharge) {
  const auto tech = physics::technology("45nm");
  const physics::MosDevice device(tech, physics::MosType::kNmos,
                                  {tech.w_min, tech.l_min});
  const double i0 = leakage_current(device, 0.8, 0.0, 0.0, 0.0);
  const double i5 = leakage_current(device, 0.8, 5.0, 0.0, 0.0);
  EXPECT_GT(i0, 0.0);
  EXPECT_LT(i5, i0);
}

TEST(DramVrt, FilledDefectOpensTatPath) {
  const auto tech = physics::technology("45nm");
  const physics::MosDevice device(tech, physics::MosType::kNmos,
                                  {tech.w_min, tech.l_min});
  const double closed = leakage_current(device, 0.8, 0.0, 0.0, 1.5);
  const double open = leakage_current(device, 0.8, 0.0, 1.0, 1.5);
  // One filled defect multiplies leakage by (1 + 1.5) against a small
  // channel-charge suppression.
  EXPECT_GT(open / closed, 2.0);
  EXPECT_LT(open / closed, 2.6);
}

TEST(DramVrt, LeakageGrowsWithStoredVoltage) {
  const auto tech = physics::technology("45nm");
  const physics::MosDevice device(tech, physics::MosType::kNmos,
                                  {tech.w_min, tech.l_min});
  EXPECT_GT(leakage_current(device, 0.9, 0.0, 0.0, 0.0),
            leakage_current(device, 0.3, 0.0, 0.0, 0.0));
}

TEST(DramVrt, BadCellSpecThrows) {
  VrtConfig config = fast_config();
  config.storage_cap = 0.0;
  util::Rng rng(1);
  EXPECT_THROW(simulate_device_retention(config, rng, 2), std::invalid_argument);
  config = fast_config();
  config.v_sense = 2.0 * config.tech.v_dd;  // above the stored level
  EXPECT_THROW(simulate_device_retention(config, rng, 2), std::invalid_argument);
}

TEST(DramVrt, RetentionTimesArePositiveAndBounded) {
  VrtConfig config = fast_config();
  util::Rng rng(2);
  const auto result = simulate_device_retention(config, rng, 6);
  ASSERT_EQ(result.trials.size(), 6u);
  for (const auto& trial : result.trials) {
    EXPECT_GT(trial.retention_time, 0.0);
    EXPECT_LE(trial.retention_time, config.t_max);
  }
  EXPECT_GE(result.vrt_ratio, 1.0);
  EXPECT_LE(result.retention_min, result.retention_max);
}

TEST(DramVrt, DeterministicGivenSeed) {
  VrtConfig config = fast_config();
  util::Rng rng_a(3), rng_b(3);
  const auto a = simulate_device_retention(config, rng_a, 4);
  const auto b = simulate_device_retention(config, rng_b, 4);
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trials[i].retention_time, b.trials[i].retention_time);
  }
}

TEST(DramVrt, StrongerTatWidensRetentionSpread) {
  // With the TAT path disabled, defect toggling barely moves retention;
  // enabling it must (weakly) increase the population's max ratio.
  VrtConfig weak = fast_config();
  weak.tat_strength = 0.0;
  VrtConfig strong = fast_config();
  strong.tat_strength = 4.0;
  util::Rng rng_a(4), rng_b(4);
  const auto weak_pop = simulate_population(weak, rng_a, 8, 6);
  const auto strong_pop = simulate_population(strong, rng_b, 8, 6);
  double weak_max = 1.0, strong_max = 1.0;
  for (const auto& device : weak_pop) weak_max = std::max(weak_max, device.vrt_ratio);
  for (const auto& device : strong_pop) {
    strong_max = std::max(strong_max, device.vrt_ratio);
  }
  EXPECT_GT(strong_max, weak_max);
  EXPECT_LT(weak_max, 1.2);  // channel-charge-only effect is percent-level
}

TEST(DramVrt, PopulationContainsBothStableAndVrtCells) {
  VrtConfig config = fast_config();
  util::Rng rng(5);
  const auto population = simulate_population(config, rng, 12, 6);
  std::size_t stable = 0, affected = 0;
  for (const auto& device : population) {
    (device.vrt_ratio > 1.3 ? affected : stable)++;
  }
  EXPECT_GT(stable, 0u);
  EXPECT_GT(affected, 0u);  // the VRT phenomenon exists in the population
}

TEST(DramVrt, SlowdownStretchesDefectTimescales) {
  // With no slowdown the defects are fast channel traps: they mean-field
  // away and every trial's retention collapses to the same value.
  VrtConfig fast_defects = fast_config();
  fast_defects.defect_slowdown = 1.0;
  util::Rng rng(6);
  const auto result = simulate_device_retention(fast_defects, rng, 5);
  EXPECT_LT(result.vrt_ratio, 1.1);
}

}  // namespace
}  // namespace samurai::dram
