// Cross-cutting coverage: transient hooks and result accessors, waveform
// edge cases, estimator option flags, and the ring-oscillator RTN
// analysis end to end (small configuration).
#include <gtest/gtest.h>

#include <cmath>

#include "osc/ring.hpp"
#include "signal/spectral.hpp"
#include "spice/analysis.hpp"
#include "spice/devices.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace samurai {
namespace {

TEST(TransientExtras, OnStepHookSeesEveryAcceptedStep) {
  spice::Circuit circuit;
  const int in = circuit.node("in");
  core::Pwl ramp;
  ramp.append(0.0, 0.0);
  ramp.append(1e-6, 1.0);
  circuit.add<spice::VoltageSource>(circuit, "V1", in, spice::kGround, ramp);
  circuit.add<spice::Resistor>("R1", in, spice::kGround, 1e3);
  spice::TransientOptions options;
  options.t_stop = 1e-6;
  std::size_t calls = 0;
  double last_t = 0.0;
  bool monotone = true;
  options.on_step = [&](double t, std::span<const double>) {
    if (t <= last_t) monotone = false;
    last_t = t;
    ++calls;
  };
  const auto result = spice::transient(circuit, options);
  EXPECT_EQ(calls + 1, result.num_points());  // +1 for the t=0 record
  EXPECT_TRUE(monotone);
  EXPECT_NEAR(last_t, 1e-6, 1e-12);
}

TEST(TransientExtras, VoltageBetweenAndPwlExport) {
  spice::Circuit circuit;
  const int a = circuit.node("a");
  const int b = circuit.node("b");
  spice::VoltageSource::dc(circuit, "Va", a, spice::kGround, 3.0);
  spice::VoltageSource::dc(circuit, "Vb", b, spice::kGround, 1.0);
  circuit.add<spice::Resistor>("R1", a, b, 1e3);
  spice::TransientOptions options;
  options.t_stop = 1e-9;
  const auto result = spice::transient(circuit, options);
  const auto diff = result.voltage_between("a", "b");
  EXPECT_NEAR(diff.eval(0.5e-9), 2.0, 1e-6);
  const auto vs_ground = result.voltage_between("a", "0");
  EXPECT_NEAR(vs_ground.eval(0.5e-9), 3.0, 1e-6);
  const auto wave = result.voltage("a");
  EXPECT_NEAR(wave.eval(0.9e-9), 3.0, 1e-6);
  EXPECT_THROW(result.voltage("zzz"), std::invalid_argument);
}

TEST(TransientExtras, ExtraBreakpointsAreHonoured) {
  spice::Circuit circuit;
  const int a = circuit.node("a");
  spice::VoltageSource::dc(circuit, "Va", a, spice::kGround, 1.0);
  circuit.add<spice::Resistor>("R1", a, spice::kGround, 1e3);
  spice::TransientOptions options;
  options.t_stop = 1e-6;
  options.extra_breakpoints = {3.7e-7};
  const auto result = spice::transient(circuit, options);
  bool found = false;
  for (double t : result.times()) {
    if (std::abs(t - 3.7e-7) < 1e-13) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(WaveformExtras, StepTraceBeforeFirstEventAndAverages) {
  const core::StepTrace trace(2.0, {1.0, 3.0}, {4.0, 0.0});
  EXPECT_DOUBLE_EQ(trace.eval(-5.0), 2.0);
  // Average over [0, 4]: 2 for 1s, 4 for 2s, 0 for 1s -> 10/4.
  EXPECT_DOUBLE_EQ(trace.time_average(0.0, 4.0), 2.5);
  // Window entirely before the first event.
  EXPECT_DOUBLE_EQ(trace.time_average(0.0, 0.5), 2.0);
}

TEST(WaveformExtras, PaperArraysRespectWindow) {
  const core::StepTrace trace(0.0, {1.0, 2.0, 3.0}, {1.0, 0.0, 1.0});
  std::vector<double> times, states;
  trace.to_paper_arrays(1.5, 2.5, times, states);
  // Only the t=2 step falls inside the window.
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times.front(), 1.5);
  EXPECT_DOUBLE_EQ(times.back(), 2.5);
  EXPECT_DOUBLE_EQ(states[0], 1.0);
  EXPECT_DOUBLE_EQ(states[3], 0.0);
}

TEST(SpectralExtras, BiasedAndMeanKeptModes) {
  util::Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(3.0 + rng.normal());
  // Without mean subtraction lag-0 is the mean square, not the variance.
  const auto raw = signal::autocorrelation(samples, 1.0, false, false, 10);
  EXPECT_NEAR(raw.values[0], 10.0, 0.5);
  const auto centered = signal::autocorrelation(samples, 1.0, true, false, 10);
  EXPECT_NEAR(centered.values[0], 1.0, 0.1);
  // Biased (1/N) and unbiased (1/(N-k)) differ by the expected factor.
  const auto unbiased = signal::autocorrelation(samples, 1.0, true, true, 10);
  const double n = static_cast<double>(samples.size());
  EXPECT_NEAR(centered.values[5] / unbiased.values[5], (n - 5.0) / n, 1e-9);
}

TEST(RingRtn, EndToEndSmallRing) {
  osc::RingConfig config;
  config.tech = physics::technology("90nm");
  config.stages = 3;
  config.t_stop = 5e-9;
  const auto result = osc::ring_rtn_analysis(config, 2, 50.0);
  ASSERT_GT(result.nominal.cycles, 5u);
  ASSERT_GT(result.with_rtn.cycles, 5u);
  EXPECT_GT(result.rtn_switches, 0u);
  // RTN adds real period jitter above the numerical floor.
  EXPECT_GT(result.with_rtn.stddev, 5.0 * result.nominal.stddev);
}

TEST(CliExtras, NegativeNumberValues) {
  const char* argv[] = {"prog", "--x", "-3.5"};
  const util::Cli cli(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), -3.5);
}

}  // namespace
}  // namespace samurai
