// End-to-end tests of the Fig. 8 pipeline (kept small: short patterns).
#include "sram/methodology.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "physics/technology.hpp"

namespace samurai::sram {
namespace {

MethodologyConfig small_config() {
  MethodologyConfig config;
  config.tech = physics::technology("90nm");
  config.ops = ops_from_bits({1, 0, 1});
  config.seed = 7;
  return config;
}

TEST(Methodology, EmptyPatternThrows) {
  MethodologyConfig config = small_config();
  config.ops.clear();
  EXPECT_THROW(run_methodology(config), std::invalid_argument);
}

TEST(Methodology, NominalWritesSucceed) {
  const auto result = run_methodology(small_config());
  EXPECT_FALSE(result.nominal_report.any_error);
  ASSERT_EQ(result.nominal_report.ops.size(), 3u);
  // Q tracks the written bits at each slot end.
  const auto& pattern = result.pattern;
  const double vdd = physics::technology("90nm").v_dd;
  EXPECT_NEAR(result.nominal.voltage_at(result.q_node,
                                        pattern.slot_start(0) +
                                            0.99 * pattern.timing.period),
              vdd, 0.1 * vdd);
  EXPECT_NEAR(result.nominal.voltage_at(result.q_node,
                                        pattern.slot_start(1) +
                                            0.99 * pattern.timing.period),
              0.0, 0.1 * vdd);
}

TEST(Methodology, ProducesSixTransistorTraces) {
  const auto result = run_methodology(small_config());
  ASSERT_EQ(result.rtn.size(), 6u);
  for (int m = 1; m <= 6; ++m) {
    const auto& entry = result.rtn[static_cast<std::size_t>(m - 1)];
    EXPECT_EQ(entry.name, "M" + std::to_string(m));
    EXPECT_GT(entry.traps.size(), 10u);  // 90nm devices carry many traps
    EXPECT_GT(entry.v_gs.size(), 10u);
    EXPECT_GT(entry.i_rtn.size(), 10u);
  }
}

TEST(Methodology, OccupancyBoundedByTrapCount) {
  const auto result = run_methodology(small_config());
  for (const auto& entry : result.rtn) {
    const double cap = static_cast<double>(entry.traps.size());
    EXPECT_LE(entry.n_filled.initial_value(), cap);
    for (double v : entry.n_filled.values()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, cap);
    }
  }
}

TEST(Methodology, DeterministicGivenSeed) {
  const auto a = run_methodology(small_config());
  const auto b = run_methodology(small_config());
  ASSERT_EQ(a.rtn.size(), b.rtn.size());
  for (std::size_t i = 0; i < a.rtn.size(); ++i) {
    EXPECT_EQ(a.rtn[i].traps.size(), b.rtn[i].traps.size());
    EXPECT_EQ(a.rtn[i].stats.accepted, b.rtn[i].stats.accepted);
  }
  EXPECT_EQ(a.rtn_report.any_error, b.rtn_report.any_error);
}

TEST(Methodology, SeedChangesTrapPopulations) {
  auto config = small_config();
  const auto a = run_methodology(config);
  config.seed = 8;
  const auto b = run_methodology(config);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.rtn.size(); ++i) {
    if (a.rtn[i].traps.size() != b.rtn[i].traps.size()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Methodology, ModerateRtnDoesNotBreakWrites) {
  auto config = small_config();
  config.rtn_scale = 1.0;
  const auto result = run_methodology(config);
  EXPECT_FALSE(result.rtn_report.any_error);
}

TEST(Methodology, PassGateActivityFollowsItsGate) {
  // The paper's Fig. 8 (b),(c) observation, tested on M5 (gate = Q): trap
  // switching activity must concentrate in the slots where Q is high.
  auto config = small_config();
  config.ops = ops_from_bits({1, 1, 1, 0, 0, 0});
  config.seed = 11;
  const auto result = run_methodology(config);
  const auto& m5 = result.rtn[4];
  const double boundary = result.pattern.slot_start(3);
  std::size_t early = 0, late = 0;
  for (double t : m5.n_filled.times()) {
    (t < boundary ? early : late)++;
  }
  // Q is high for the first three slots: at least as much activity there.
  // (Statistical, but with ~160 traps the asymmetry is strong.)
  EXPECT_GE(early + 2, late);
}

TEST(Methodology, ExtractBiasConventions) {
  auto config = small_config();
  config.ops = {Op::kWrite1};
  const auto result = run_methodology(config);
  // M5's gate is Q: after the write-1 completes, V_gs(M5) ~ V_dd.
  const auto& m5 = result.rtn[4];
  const double t_late = 0.95 * result.pattern.t_end;
  EXPECT_NEAR(m5.v_gs.eval(t_late), config.tech.v_dd, 0.15 * config.tech.v_dd);
  // M6's gate is QB which is low: V_gs(M6) ~ 0.
  const auto& m6 = result.rtn[5];
  EXPECT_LT(m6.v_gs.eval(t_late), 0.2 * config.tech.v_dd);
  // PMOS M4 (gate = Q = high): |overdrive| ~ 0 -> extracted bias low.
  const auto& m4 = result.rtn[3];
  EXPECT_LT(m4.v_gs.eval(t_late), 0.2 * config.tech.v_dd);
  // PMOS M3 (gate = QB = low, source = VDD): extracted bias ~ V_dd.
  const auto& m3 = result.rtn[2];
  EXPECT_GT(m3.v_gs.eval(t_late), 0.8 * config.tech.v_dd);
}

TEST(Methodology, RunNominalSharesPatternWithFullRun) {
  const auto config = small_config();
  const auto nominal = run_nominal(config);
  EXPECT_DOUBLE_EQ(nominal.pattern.t_end,
                   static_cast<double>(config.ops.size()) *
                       config.timing.period);
  EXPECT_GT(nominal.result.num_points(), 100u);
}

}  // namespace
}  // namespace samurai::sram
