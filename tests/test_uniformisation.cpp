// Validation of Algorithm 1 (Markov uniformisation) against exact
// statistics: stationary occupancy and dwell laws, the time-dependent
// master equation for non-stationary propensities, and the windowed
// re-uniformisation variant.
#include "core/uniformisation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace samurai::core {
namespace {

using physics::TrapState;

TEST(Uniformisation, FrozenChainProducesNoEvents) {
  const ConstantPropensity prop(0.0, 0.0);
  util::Rng rng(1);
  const auto traj = simulate_trap(prop, 0.0, 100.0, TrapState::kEmpty, rng);
  EXPECT_EQ(traj.num_switches(), 0u);
}

TEST(Uniformisation, InvalidHorizonThrows) {
  const ConstantPropensity prop(1.0, 1.0);
  util::Rng rng(1);
  EXPECT_THROW(simulate_trap(prop, 1.0, 0.0, TrapState::kEmpty, rng),
               std::invalid_argument);
}

TEST(Uniformisation, BoundViolationIsDetected) {
  // Propensity exceeds the declared bound -> thinning would be biased;
  // the sampler must refuse rather than silently under-sample.
  const FunctionalPropensity prop([](double) { return 10.0; },
                                  [](double) { return 10.0; }, 1.0);
  util::Rng rng(2);
  UniformisationOptions options;
  options.rate_bound = 1.0;
  EXPECT_THROW(
      simulate_trap(prop, 0.0, 100.0, TrapState::kEmpty, rng, options),
      std::runtime_error);
}

TEST(Uniformisation, CandidateBudgetGuards) {
  const ConstantPropensity prop(1e6, 1e6);
  util::Rng rng(3);
  UniformisationOptions options;
  options.max_candidates = 10;
  EXPECT_THROW(
      simulate_trap(prop, 0.0, 1.0, TrapState::kEmpty, rng, options),
      std::runtime_error);
}

TEST(Uniformisation, StatsSurviveBudgetAbort) {
  // Regression: the candidate count accumulated before the budget (or
  // bound-violation) throw used to be discarded, so diagnostics reported
  // zero work. The count must be flushed before the exception unwinds.
  const ConstantPropensity prop(1e6, 1e6);
  util::Rng rng(3);
  UniformisationOptions options;
  options.max_candidates = 10;
  UniformisationStats stats;
  EXPECT_THROW(
      simulate_trap(prop, 0.0, 1.0, TrapState::kEmpty, rng, options, &stats),
      std::runtime_error);
  // The throw fires when the count first exceeds the budget.
  EXPECT_EQ(stats.candidates, options.max_candidates + 1);
}

TEST(Uniformisation, StatsSurviveBoundViolationAbort) {
  // Propensity exceeds the declared bound midway: candidates drawn up to
  // the violation must still be reported.
  const FunctionalPropensity prop([](double t) { return t < 0.5 ? 1.0 : 10.0; },
                                  [](double) { return 1.0; }, 1.0);
  util::Rng rng(7);
  UniformisationOptions options;
  options.rate_bound = 1.0;
  UniformisationStats stats;
  EXPECT_THROW(
      simulate_trap(prop, 0.0, 100.0, TrapState::kEmpty, rng, options, &stats),
      std::runtime_error);
  EXPECT_GT(stats.candidates, 0u);
}

TEST(Uniformisation, FixedBoundCandidateCountMatchesPoissonRate) {
  const ConstantPropensity prop(3.0, 7.0);  // bound = max = 7
  util::Rng rng(4);
  UniformisationOptions options;
  options.use_majorant = false;  // classic single-bound thinning
  UniformisationStats stats;
  const double horizon = 20000.0;
  (void)simulate_trap(prop, 0.0, horizon, TrapState::kEmpty, rng, options,
                      &stats);
  const double expected = 7.0 * horizon;
  EXPECT_NEAR(static_cast<double>(stats.candidates), expected,
              5.0 * std::sqrt(expected));
  EXPECT_LE(stats.accepted, stats.candidates);
  EXPECT_NEAR(stats.envelope_efficiency(), 1.0, 1e-9);
}

TEST(Uniformisation, MajorantCandidateCountMatchesOccupancyWeightedRate) {
  // Per-state exact bounds: candidates arrive at λ_c while empty and λ_e
  // while filled, so E[candidates] = (p_empty·λ_c + p_filled·λ_e)·T with
  // p_filled = λ_c/Λ — every candidate is accepted (SSA limit).
  const ConstantPropensity prop(3.0, 7.0);
  util::Rng rng(4);
  UniformisationStats stats;
  const double horizon = 20000.0;
  (void)simulate_trap(prop, 0.0, horizon, TrapState::kEmpty, rng, {}, &stats);
  const double p_filled = 3.0 / 10.0;
  const double expected = ((1.0 - p_filled) * 3.0 + p_filled * 7.0) * horizon;
  EXPECT_NEAR(static_cast<double>(stats.candidates), expected,
              0.03 * expected);
  EXPECT_EQ(stats.accepted, stats.candidates);  // per-state exact bounds
  // Work ratio vs the fixed bound: 7 / 4.2.
  EXPECT_NEAR(stats.envelope_efficiency(), 7.0 / 4.2, 0.05);
}

TEST(Uniformisation, CandidateBudgetSpansAllWindows) {
  // Each window alone stays under the cap; the sum must not: the budget is
  // a total across windows, not per window.
  const ConstantPropensity prop(50.0, 50.0);
  UniformisationOptions options;
  options.use_majorant = false;  // deterministic ~50/time-unit draw rate
  options.max_candidates = 600;  // ~1000 expected over [0, 20]
  {
    util::Rng rng(21);
    EXPECT_NO_THROW(simulate_trap_windowed(prop, 0.0, 8.0, TrapState::kEmpty,
                                           {2.0, 4.0, 6.0}, rng, options));
  }
  {
    util::Rng rng(21);
    UniformisationStats stats;
    EXPECT_THROW(
        simulate_trap_windowed(prop, 0.0, 20.0, TrapState::kEmpty,
                               {5.0, 10.0, 15.0}, rng, options, &stats),
        std::runtime_error);
    // The abort fires on the candidate that crosses the total budget.
    EXPECT_EQ(stats.candidates, options.max_candidates + 1);
  }
}

TEST(Uniformisation, PiecewiseEnvelopeTracksMasterEquation) {
  // Square-wave chain with a tight three-phase envelope: the majorant
  // walker must reproduce the master equation while drawing far fewer
  // candidates than the fixed bound (which must pay 6.0 everywhere).
  auto lc = [](double t) { return t < 4.0 ? 0.2 : 6.0; };
  auto le = [](double t) { return t < 8.0 ? 1.0 : 0.1; };
  const FunctionalPropensity prop(lc, le, 6.0,
                                  {{4.0, 0.2, 1.0},
                                   {8.0, 6.0, 1.0},
                                   {12.0, 6.0, 0.1}});
  const double t_end = 12.0;
  std::vector<double> grid;
  const auto reference =
      master_equation_fill_probability(prop, 0.0, t_end, 0.0, 4000, &grid);

  const std::vector<double> probes = {2.0, 6.0, 11.0};
  const int runs = 4000;
  std::vector<double> filled(probes.size(), 0.0);
  UniformisationStats stats_env, stats_fixed;
  UniformisationOptions fixed;
  fixed.use_majorant = false;
  util::Rng rng(314);
  for (int r = 0; r < runs; ++r) {
    util::Rng run_rng = rng.split(static_cast<std::uint64_t>(r) + 1);
    const auto traj = simulate_trap(prop, 0.0, t_end, TrapState::kEmpty,
                                    run_rng, {}, &stats_env);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (traj.state_at(probes[i]) == TrapState::kFilled) filled[i] += 1.0;
    }
    util::Rng fixed_rng = rng.split(static_cast<std::uint64_t>(r) + 1);
    (void)simulate_trap(prop, 0.0, t_end, TrapState::kEmpty, fixed_rng, fixed,
                        &stats_fixed);
  }
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const double h = grid[1] - grid[0];
    const auto idx = static_cast<std::size_t>(probes[i] / h);
    const double frac = probes[i] / h - static_cast<double>(idx);
    const double expected =
        reference[idx] + frac * (reference[idx + 1] - reference[idx]);
    EXPECT_NEAR(filled[i] / runs, expected, 0.032) << "probe t=" << probes[i];
  }
  // Fixed bound walks 6.0 · 12; the envelope's worst state-path is far
  // cheaper. Require at least a 2.5x candidate reduction here (the bench
  // enforces >= 3x on the real bias workload).
  EXPECT_GT(static_cast<double>(stats_fixed.candidates),
            2.5 * static_cast<double>(stats_env.candidates));
  EXPECT_GT(stats_env.envelope_efficiency(), 2.5);
  EXPECT_GT(stats_env.segments, 2u * runs);
}

// Stationary chain: occupancy must converge to λc/(λc+λe) and mean dwell
// times to 1/λe (filled) and 1/λc (empty).
struct StationaryCase {
  double lambda_c;
  double lambda_e;
};

class StationaryValidation : public ::testing::TestWithParam<StationaryCase> {};

TEST_P(StationaryValidation, OccupancyAndDwellLaws) {
  const auto param = GetParam();
  const ConstantPropensity prop(param.lambda_c, param.lambda_e);
  util::Rng rng(42);
  const double total = param.lambda_c + param.lambda_e;
  const double horizon = 40000.0 / total;  // ~2e4 expected transitions
  const auto traj =
      simulate_trap(prop, 0.0, horizon, TrapState::kEmpty, rng);

  const double expected_fill = param.lambda_c / total;
  EXPECT_NEAR(traj.filled_fraction(), expected_fill, 0.03);

  const auto dwells = traj.dwell_times(true);
  ASSERT_GT(dwells.filled.size(), 100u);
  ASSERT_GT(dwells.empty.size(), 100u);
  double mean_filled = 0.0, mean_empty = 0.0;
  for (double d : dwells.filled) mean_filled += d;
  for (double d : dwells.empty) mean_empty += d;
  mean_filled /= static_cast<double>(dwells.filled.size());
  mean_empty /= static_cast<double>(dwells.empty.size());
  EXPECT_NEAR(mean_filled * param.lambda_e, 1.0, 0.08);
  EXPECT_NEAR(mean_empty * param.lambda_c, 1.0, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    RateSweep, StationaryValidation,
    ::testing::Values(StationaryCase{1.0, 1.0}, StationaryCase{5.0, 1.0},
                      StationaryCase{1.0, 5.0}, StationaryCase{100.0, 30.0},
                      StationaryCase{0.2, 0.7}));

// Dwell-time distribution: for an exponential with rate λ, the coefficient
// of variation is 1 and the median is ln2/λ.
TEST(Uniformisation, DwellTimesAreExponential) {
  const ConstantPropensity prop(2.0, 3.0);
  util::Rng rng(5);
  const auto traj = simulate_trap(prop, 0.0, 30000.0, TrapState::kEmpty, rng);
  auto dwells = traj.dwell_times(true);
  ASSERT_GT(dwells.empty.size(), 1000u);
  double sum = 0.0, sq = 0.0;
  for (double d : dwells.empty) {
    sum += d;
    sq += d * d;
  }
  const double n = static_cast<double>(dwells.empty.size());
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);  // CV of exponential = 1

  std::sort(dwells.empty.begin(), dwells.empty.end());
  const double median = dwells.empty[dwells.empty.size() / 2];
  EXPECT_NEAR(median / mean, std::numbers::ln2, 0.05);
}

// The heart of the validation: for a sinusoidally modulated chain the
// ensemble fill probability must track the master-equation solution at
// every probe time. This exercises genuine non-stationarity.
struct NonStationaryCase {
  double base;       ///< mean rate
  double amplitude;  ///< modulation depth (< base)
  double omega;      ///< angular frequency
};

class NonStationaryValidation
    : public ::testing::TestWithParam<NonStationaryCase> {};

TEST_P(NonStationaryValidation, EnsembleTracksMasterEquation) {
  const auto param = GetParam();
  auto lambda_c = [=](double t) {
    return param.base + param.amplitude * std::sin(param.omega * t);
  };
  auto lambda_e = [=](double t) {
    return param.base - param.amplitude * std::sin(param.omega * t);
  };
  const double bound = param.base + param.amplitude;
  const FunctionalPropensity prop(lambda_c, lambda_e, bound);

  const double t_end = 6.0 / param.base;
  const std::vector<double> probes = {0.3 * t_end, 0.6 * t_end, 0.95 * t_end};

  std::vector<double> grid;
  const auto reference =
      master_equation_fill_probability(prop, 0.0, t_end, 0.0, 4000, &grid);

  const int runs = 4000;
  std::vector<double> filled(probes.size(), 0.0);
  util::Rng rng(99);
  for (int r = 0; r < runs; ++r) {
    util::Rng run_rng = rng.split(static_cast<std::uint64_t>(r) + 1);
    const auto traj =
        simulate_trap(prop, 0.0, t_end, TrapState::kEmpty, run_rng);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (traj.state_at(probes[i]) == TrapState::kFilled) filled[i] += 1.0;
    }
  }
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const double empirical = filled[i] / runs;
    // Interpolate the RK4 reference at the probe.
    const double h = grid[1] - grid[0];
    const auto idx = static_cast<std::size_t>(probes[i] / h);
    const double frac = probes[i] / h - static_cast<double>(idx);
    const double expected =
        reference[idx] + frac * (reference[idx + 1] - reference[idx]);
    // 4000 runs -> binomial σ <= 0.008; allow 4σ.
    EXPECT_NEAR(empirical, expected, 0.032)
        << "probe " << i << " t=" << probes[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModulationSweep, NonStationaryValidation,
    ::testing::Values(NonStationaryCase{2.0, 1.5, 4.0},
                      NonStationaryCase{2.0, 1.5, 40.0},
                      NonStationaryCase{10.0, 9.0, 15.0},
                      NonStationaryCase{1.0, 0.5, 0.5}));

TEST(Uniformisation, WindowedMatchesUnwindowedStatistically) {
  auto lambda_c = [](double t) { return t < 5.0 ? 3.0 : 0.3; };
  auto lambda_e = [](double t) { return t < 5.0 ? 1.0 : 0.1; };
  const FunctionalPropensity prop(lambda_c, lambda_e, 3.0);

  // Windowed with a tight per-window bound must give the same occupancy
  // statistics as the global-bound version.
  const int runs = 3000;
  double filled_global = 0.0, filled_windowed = 0.0;
  util::Rng rng(123);
  for (int r = 0; r < runs; ++r) {
    util::Rng rng_a = rng.split(2 * static_cast<std::uint64_t>(r) + 1);
    util::Rng rng_b = rng.split(2 * static_cast<std::uint64_t>(r) + 2);
    const auto a = simulate_trap(prop, 0.0, 10.0, TrapState::kEmpty, rng_a);
    UniformisationOptions options;  // per-window bound via rate_bound calls
    const auto b = simulate_trap_windowed(prop, 0.0, 10.0, TrapState::kEmpty,
                                          {5.0}, rng_b, options);
    if (a.state_at(9.5) == TrapState::kFilled) filled_global += 1.0;
    if (b.state_at(9.5) == TrapState::kFilled) filled_windowed += 1.0;
  }
  EXPECT_NEAR(filled_global / runs, filled_windowed / runs, 0.04);
}

TEST(Uniformisation, WindowedBoundariesMustIncrease) {
  const ConstantPropensity prop(1.0, 1.0);
  util::Rng rng(7);
  EXPECT_THROW(simulate_trap_windowed(prop, 0.0, 10.0, TrapState::kEmpty,
                                      {5.0, 5.0}, rng),
               std::invalid_argument);
}

TEST(Uniformisation, WindowedIgnoresBoundariesOutsideHorizon) {
  const ConstantPropensity prop(2.0, 2.0);
  util::Rng rng(8);
  const auto traj = simulate_trap_windowed(
      prop, 1.0, 3.0, TrapState::kEmpty, {-1.0, 0.5, 2.0, 5.0}, rng);
  EXPECT_DOUBLE_EQ(traj.t0(), 1.0);
  EXPECT_DOUBLE_EQ(traj.tf(), 3.0);
}

TEST(Uniformisation, SafetyFactorPreservesStatistics) {
  // An over-generous bound must not change the law, only the cost.
  const ConstantPropensity prop(4.0, 2.0);
  util::Rng rng_a(11), rng_b(12);
  UniformisationOptions loose;
  loose.bound_safety = 5.0;
  UniformisationStats stats_tight, stats_loose;
  const auto a = simulate_trap(prop, 0.0, 5000.0, TrapState::kEmpty, rng_a,
                               {}, &stats_tight);
  const auto b = simulate_trap(prop, 0.0, 5000.0, TrapState::kEmpty, rng_b,
                               loose, &stats_loose);
  EXPECT_NEAR(a.filled_fraction(), b.filled_fraction(), 0.03);
  EXPECT_GT(stats_loose.candidates, 3 * stats_tight.candidates);
}

// ----------------------------------------------------- master equation

TEST(MasterEquation, ConstantRatesRelaxExponentially) {
  const ConstantPropensity prop(3.0, 1.0);
  const auto p = master_equation_fill_probability(prop, 0.0, 2.0, 0.0, 2000);
  const double total = 4.0;
  const double p_inf = 3.0 / 4.0;
  // p(t) = p_inf (1 - e^{-Λ t}).
  const double expected_end = p_inf * (1.0 - std::exp(-total * 2.0));
  EXPECT_NEAR(p.back(), expected_end, 1e-8);
  EXPECT_NEAR(p.front(), 0.0, 1e-12);
}

TEST(MasterEquation, EquilibriumStartStaysPut) {
  const ConstantPropensity prop(2.0, 6.0);
  const double p_eq = 0.25;
  const auto p = master_equation_fill_probability(prop, 0.0, 3.0, p_eq, 500);
  for (double v : p) EXPECT_NEAR(v, p_eq, 1e-10);
}

TEST(MasterEquation, ZeroStepsThrows) {
  const ConstantPropensity prop(1.0, 1.0);
  EXPECT_THROW(master_equation_fill_probability(prop, 0.0, 1.0, 0.0, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace samurai::core
