#include "sram/column.hpp"

#include <gtest/gtest.h>

namespace samurai::sram {
namespace {

ColumnConfig small_column() {
  ColumnConfig config;
  config.tech = physics::technology("90nm");
  config.num_cells = 2;
  config.initial_bits = {0, 1};
  config.ops = {ColumnOp::write(0, 1), ColumnOp::read(0), ColumnOp::read(1)};
  return config;
}

TEST(Column, RejectsEmptyConfigs) {
  spice::Circuit circuit;
  ColumnConfig config = small_column();
  config.ops.clear();
  EXPECT_THROW(build_column(circuit, config), std::invalid_argument);
  config = small_column();
  config.num_cells = 0;
  spice::Circuit circuit2;
  EXPECT_THROW(build_column(circuit2, config), std::invalid_argument);
}

TEST(Column, OpAddressingMissingCellThrows) {
  spice::Circuit circuit;
  ColumnConfig config = small_column();
  config.ops.push_back(ColumnOp::read(7));
  EXPECT_THROW(build_column(circuit, config), std::invalid_argument);
}

TEST(Column, BuildsSharedRailsAndPerCellWordlines) {
  spice::Circuit circuit;
  const auto build = build_column(circuit, small_column());
  ASSERT_EQ(build.cells.size(), 2u);
  EXPECT_TRUE(circuit.has_node("bl"));
  EXPECT_TRUE(circuit.has_node("blb"));
  EXPECT_TRUE(circuit.has_node("c0_q"));
  EXPECT_TRUE(circuit.has_node("c1_q"));
  EXPECT_NE(circuit.find<spice::Mosfet>("MPC0"), nullptr);
  EXPECT_NE(circuit.find<spice::Mosfet>("MWD1"), nullptr);
  EXPECT_NE(circuit.find<spice::Mosfet>("c1_M5"), nullptr);
}

TEST(Column, NominalOpsAllSucceed) {
  const auto result = run_column_rtn(small_column(), 3, 0.0);
  EXPECT_FALSE(result.nominal_report.any_error);
  ASSERT_EQ(result.nominal_report.writes.size(), 1u);
  EXPECT_TRUE(result.nominal_report.writes[0].ok);
  ASSERT_EQ(result.nominal_report.reads.size(), 2u);
  EXPECT_EQ(result.nominal_report.reads[0].sensed, 1);
  EXPECT_EQ(result.nominal_report.reads[1].sensed, 1);
  EXPECT_FALSE(result.nominal_report.reads[0].disturbed);
}

TEST(Column, ReadsSenseBothPolarities) {
  ColumnConfig config = small_column();
  config.ops = {ColumnOp::read(0), ColumnOp::read(1)};  // stored 0 and 1
  const auto result = run_column_rtn(config, 4, 0.0);
  ASSERT_EQ(result.nominal_report.reads.size(), 2u);
  EXPECT_EQ(result.nominal_report.reads[0].sensed, 0);
  EXPECT_EQ(result.nominal_report.reads[1].sensed, 1);
  EXPECT_GT(result.nominal_report.min_sense_margin, 0.02);
}

TEST(Column, SenseMarginIsPartialDischarge) {
  // Sensing happens before the bitline rails: margin well below V_dd.
  const auto result = run_column_rtn(small_column(), 5, 0.0);
  for (const auto& read : result.nominal_report.reads) {
    EXPECT_GT(read.sense_margin, 0.02);
    EXPECT_LT(read.sense_margin, 0.5 * 1.2);
  }
}

TEST(Column, RtnShrinksOrPerturbsSenseMargins) {
  ColumnConfig config = small_column();
  const auto clean = run_column_rtn(config, 6, 0.0);
  const auto noisy = run_column_rtn(config, 6, 120.0);
  ASSERT_EQ(clean.rtn_report.reads.size(), noisy.rtn_report.reads.size());
  double max_change = 0.0;
  for (std::size_t i = 0; i < clean.rtn_report.reads.size(); ++i) {
    max_change = std::max(max_change,
                          std::abs(clean.rtn_report.reads[i].sense_margin -
                                   noisy.rtn_report.reads[i].sense_margin));
  }
  EXPECT_GT(max_change, 1e-3);  // visibly perturbed at x120
}

TEST(Column, NopSlotsLeaveCellsAlone) {
  ColumnConfig config = small_column();
  config.ops = {ColumnOp::nop(), ColumnOp::nop(), ColumnOp::read(1)};
  const auto result = run_column_rtn(config, 7, 0.0);
  EXPECT_FALSE(result.nominal_report.any_error);
  EXPECT_EQ(result.nominal_report.reads[0].expected, 1);
}

TEST(Column, WriteOverwritesOppositeValue) {
  ColumnConfig config = small_column();
  config.initial_bits = {1, 0};
  config.ops = {ColumnOp::write(0, 0), ColumnOp::read(0),
                ColumnOp::write(1, 1), ColumnOp::read(1)};
  const auto result = run_column_rtn(config, 8, 0.0);
  EXPECT_FALSE(result.nominal_report.any_error);
  EXPECT_EQ(result.nominal_report.reads[0].sensed, 0);
  EXPECT_EQ(result.nominal_report.reads[1].sensed, 1);
}

TEST(Column, DeterministicGivenSeed) {
  const auto a = run_column_rtn(small_column(), 11, 30.0);
  const auto b = run_column_rtn(small_column(), 11, 30.0);
  ASSERT_EQ(a.rtn.traces.size(), b.rtn.traces.size());
  for (std::size_t i = 0; i < a.rtn.traces.size(); ++i) {
    EXPECT_EQ(a.rtn.traces[i].stats.accepted, b.rtn.traces[i].stats.accepted);
  }
  EXPECT_NEAR(a.rtn_report.min_sense_margin, b.rtn_report.min_sense_margin,
              1e-12);
}

}  // namespace
}  // namespace samurai::sram
