// Nonlinear (MOSFET) circuit validation: inverter transfer curves, diode-
// connected device currents against the DC model, and switching
// transients.
#include <gtest/gtest.h>

#include <cmath>

#include "physics/technology.hpp"
#include "spice/analysis.hpp"
#include "spice/devices.hpp"

namespace samurai::spice {
namespace {

struct InverterFixture {
  Circuit circuit;
  physics::Technology tech = physics::technology("90nm");
  int in = kGround, out = kGround, vdd = kGround;

  InverterFixture() {
    in = circuit.node("in");
    out = circuit.node("out");
    vdd = circuit.node("vdd");
    VoltageSource::dc(circuit, "Vdd", vdd, kGround, tech.v_dd);
    physics::MosDevice nmos(tech, physics::MosType::kNmos,
                            {2.0 * tech.w_min, tech.l_min});
    physics::MosDevice pmos(tech, physics::MosType::kPmos,
                            {4.0 * tech.w_min, tech.l_min});
    circuit.add<Mosfet>("MN", out, in, kGround, kGround, std::move(nmos));
    circuit.add<Mosfet>("MP", out, in, vdd, vdd, std::move(pmos));
  }
};

TEST(SpiceMosfet, DiodeConnectedCurrentMatchesModel) {
  Circuit circuit;
  const auto tech = physics::technology("90nm");
  const int d = circuit.node("d");
  auto& source = VoltageSource::dc(circuit, "V1", d, kGround, 1.0);
  physics::MosDevice model(tech, physics::MosType::kNmos,
                           {220e-9, 90e-9});
  const double expected = model.evaluate(1.0, 1.0).i_d;
  circuit.add<Mosfet>("M1", d, d, kGround, kGround, std::move(model));
  const auto result = dc_operating_point(circuit);
  ASSERT_TRUE(result.converged);
  // The source supplies the drain current: branch current = -I_d.
  EXPECT_NEAR(-result.x[static_cast<std::size_t>(source.branch_index())],
              expected, expected * 1e-6);
}

TEST(SpiceMosfet, InverterRailsAreCorrect) {
  InverterFixture fixture;
  VoltageSource::dc(fixture.circuit, "Vin", fixture.in, kGround, 0.0);
  auto low_in = dc_operating_point(fixture.circuit);
  ASSERT_TRUE(low_in.converged);
  EXPECT_NEAR(low_in.x[static_cast<std::size_t>(fixture.out)],
              fixture.tech.v_dd, 0.01);
}

TEST(SpiceMosfet, InverterTransferCurveIsMonotoneAndSwitches) {
  InverterFixture fixture;
  // Sweep via a PWL source over a slow transient (quasi-static).
  core::Pwl ramp;
  ramp.append(0.0, 0.0);
  ramp.append(1e-3, fixture.tech.v_dd);  // 1 ms ramp: quasi-static
  fixture.circuit.add<VoltageSource>(fixture.circuit, "Vin", fixture.in,
                                     kGround, ramp);
  TransientOptions options;
  options.t_stop = 1e-3;
  options.dt_max = 1e-5;
  const auto result = transient(fixture.circuit, options);
  const auto& vout = result.voltage_samples("out");
  // Monotone non-increasing.
  for (std::size_t i = 1; i < vout.size(); ++i) {
    EXPECT_LE(vout[i], vout[i - 1] + 1e-3);
  }
  EXPECT_NEAR(vout.front(), fixture.tech.v_dd, 0.02);
  EXPECT_NEAR(vout.back(), 0.0, 0.02);
  // The switching threshold sits somewhere mid-rail.
  const double v_mid = result.voltage_at(
      "out", 1e-3 * 0.5);  // input at v_dd/2
  EXPECT_GT(v_mid, 0.05 * fixture.tech.v_dd);
  EXPECT_LT(v_mid, 0.95 * fixture.tech.v_dd);
}

TEST(SpiceMosfet, InverterSwitchingTransient) {
  InverterFixture fixture;
  core::Pwl pulse;
  pulse.append(0.0, 0.0);
  pulse.append(1e-9, 0.0);
  pulse.append(1.05e-9, fixture.tech.v_dd);
  pulse.append(5e-9, fixture.tech.v_dd);
  fixture.circuit.add<VoltageSource>(fixture.circuit, "Vin", fixture.in,
                                     kGround, pulse);
  fixture.circuit.add<Capacitor>("CL", fixture.out, kGround, 1e-15);
  TransientOptions options;
  options.t_stop = 5e-9;
  const auto result = transient(fixture.circuit, options);
  EXPECT_NEAR(result.voltage_at("out", 0.9e-9), fixture.tech.v_dd, 0.02);
  EXPECT_NEAR(result.voltage_at("out", 4.9e-9), 0.0, 0.02);
  // Output must cross mid-rail after the input does (causality + delay).
  double cross = 0.0;
  const auto& ts = result.times();
  const auto& vo = result.voltage_samples("out");
  for (std::size_t i = 1; i < ts.size(); ++i) {
    if (vo[i - 1] > 0.5 * fixture.tech.v_dd &&
        vo[i] <= 0.5 * fixture.tech.v_dd) {
      cross = ts[i];
      break;
    }
  }
  EXPECT_GT(cross, 1.0e-9);
  EXPECT_LT(cross, 2.0e-9);
}

TEST(SpiceMosfet, PassTransistorConductsBothWays) {
  // NMOS pass gate charging a capacitor: conducts with terminals swapped.
  Circuit circuit;
  const auto tech = physics::technology("90nm");
  const int src = circuit.node("src");
  const int dst = circuit.node("dst");
  const int gate = circuit.node("gate");
  VoltageSource::dc(circuit, "Vs", src, kGround, 0.0);
  VoltageSource::dc(circuit, "Vg", gate, kGround, tech.v_dd);
  physics::MosDevice model(tech, physics::MosType::kNmos,
                           {220e-9, 90e-9});
  circuit.add<Mosfet>("M1", dst, gate, src, kGround, std::move(model));
  circuit.add<Capacitor>("C1", dst, kGround, 1e-15);
  TransientOptions options;
  options.t_stop = 2e-9;
  options.dc.nodeset["dst"] = tech.v_dd;  // cap starts "high"
  const auto result = transient(circuit, options);
  // DC already discharges dst through the pass gate; the whole run must
  // keep it at ground.
  EXPECT_NEAR(result.voltage_at("dst", 1.9e-9), 0.0, 0.02);
}

TEST(SpiceMosfet, GminLadderRescuesColdStart) {
  // A high-gain two-inverter chain from a zero initial guess exercises
  // the gmin-stepping fallback path.
  Circuit circuit;
  const auto tech = physics::technology("90nm");
  const int vdd = circuit.node("vdd");
  VoltageSource::dc(circuit, "Vdd", vdd, kGround, tech.v_dd);
  const int a = circuit.node("a");
  const int b = circuit.node("b");
  const int c = circuit.node("c");
  VoltageSource::dc(circuit, "Vin", a, kGround, 0.3 * tech.v_dd);
  auto add_inverter = [&](const std::string& name, int in, int out) {
    physics::MosDevice nmos(tech, physics::MosType::kNmos,
                            {2.0 * tech.w_min, tech.l_min});
    physics::MosDevice pmos(tech, physics::MosType::kPmos,
                            {4.0 * tech.w_min, tech.l_min});
    circuit.add<Mosfet>(name + "n", out, in, kGround, kGround, std::move(nmos));
    circuit.add<Mosfet>(name + "p", out, in, vdd, vdd, std::move(pmos));
  };
  add_inverter("inv1", a, b);
  add_inverter("inv2", b, c);
  const auto result = dc_operating_point(circuit);
  ASSERT_TRUE(result.converged);
  // 0.3 Vdd input is below the switching threshold -> b high, c low.
  EXPECT_GT(result.x[static_cast<std::size_t>(b)], 0.7 * tech.v_dd);
  EXPECT_LT(result.x[static_cast<std::size_t>(c)], 0.3 * tech.v_dd);
}

}  // namespace
}  // namespace samurai::spice
