// Distributional equivalence of the piecewise-majorant uniformisation
// sampler (DESIGN.md §11) against its reference oracles:
//
//  * the fixed-bound thinning path (`use_majorant = false`) — the two
//    samplers must agree with the master equation on bias-driven traps;
//  * the Gillespie SSA baseline under constant bias (KS on dwell laws);
//  * itself, across thread counts: the device fan-out must be
//    bit-identical for threads ∈ {1, 8} on both paths.
//
// Runs under the `concurrency` ctest label so the TSan build exercises
// the batched-RNG fast path across executor workers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/gillespie.hpp"
#include "core/rtn_generator.hpp"
#include "core/uniformisation.hpp"
#include "physics/technology.hpp"
#include "physics/trap_profile.hpp"
#include "util/rng.hpp"

namespace samurai::core {
namespace {

using physics::TrapState;

/// One-sample KS statistic against Exp(rate).
double ks_exponential(std::vector<double> samples, double rate) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double cdf = 1.0 - std::exp(-rate * samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(cdf - lo), std::abs(cdf - hi)});
  }
  return d;
}

/// Two-sample KS statistic.
double ks_two_sample(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

class MajorantEquivalence : public ::testing::Test {
 protected:
  physics::Technology tech_ = physics::technology("90nm");
  physics::SrhModel model_{tech_};
  physics::Trap trap_{0.35 * tech_.t_ox, 0.55, TrapState::kEmpty};

  /// A write-pattern-like 0 -> V_dd square wave with fast edges, scaled to
  /// the trap's own total rate so the chain sees `periods` bias periods.
  Pwl make_bias(int periods) const {
    const double period = 4.0 / model_.total_rate(trap_);
    std::vector<double> times, values;
    times.push_back(0.0);
    values.push_back(0.0);
    for (int k = 0; k < periods; ++k) {
      const double t = static_cast<double>(k) * period;
      times.push_back(t + 0.48 * period);
      values.push_back(0.0);
      times.push_back(t + 0.50 * period);
      values.push_back(tech_.v_dd);
      times.push_back(t + 0.98 * period);
      values.push_back(tech_.v_dd);
      times.push_back(t + 1.00 * period);
      values.push_back(0.0);
    }
    return Pwl(times, values);
  }

  /// The bias (on a grid) where the trap is closest to resonance, i.e.
  /// min(λ_c, λ_e) is largest — guarantees a lively chain for dwell tests.
  double resonant_bias() const {
    double best_v = 0.0, best = -1.0;
    for (double v = 0.0; v <= 1.2; v += 0.01) {
      const auto p = model_.propensities(trap_, v);
      const double lively = std::min(p.lambda_c, p.lambda_e);
      if (lively > best) {
        best = lively;
        best_v = v;
      }
    }
    return best_v;
  }
};

TEST_F(MajorantEquivalence, BothPathsTrackTheMasterEquationUnderBias) {
  const Pwl bias = make_bias(5);
  const BiasPropensity prop(model_, trap_, bias, 0.01);
  const double t_end = bias.times().back();
  const std::vector<double> probes = {0.3 * t_end, 0.55 * t_end,
                                      0.95 * t_end};
  std::vector<double> grid;
  const auto reference =
      master_equation_fill_probability(prop, 0.0, t_end, 0.0, 8000, &grid);

  UniformisationOptions fixed;
  fixed.use_majorant = false;
  const int runs = 3000;
  std::vector<double> filled_majorant(probes.size(), 0.0);
  std::vector<double> filled_fixed(probes.size(), 0.0);
  UniformisationStats stats_majorant, stats_fixed;
  util::Rng rng(2024);
  for (int r = 0; r < runs; ++r) {
    util::Rng rng_m = rng.split(2 * static_cast<std::uint64_t>(r) + 1);
    util::Rng rng_f = rng.split(2 * static_cast<std::uint64_t>(r) + 2);
    const auto m = simulate_trap(prop, 0.0, t_end, TrapState::kEmpty, rng_m,
                                 {}, &stats_majorant);
    const auto f = simulate_trap(prop, 0.0, t_end, TrapState::kEmpty, rng_f,
                                 fixed, &stats_fixed);
    for (std::size_t i = 0; i < probes.size(); ++i) {
      if (m.state_at(probes[i]) == TrapState::kFilled) {
        filled_majorant[i] += 1.0;
      }
      if (f.state_at(probes[i]) == TrapState::kFilled) filled_fixed[i] += 1.0;
    }
  }
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const double h = grid[1] - grid[0];
    const auto idx = static_cast<std::size_t>(probes[i] / h);
    const double frac = probes[i] / h - static_cast<double>(idx);
    const double expected =
        reference[idx] + frac * (reference[idx + 1] - reference[idx]);
    // 3000 runs -> binomial σ <= 0.0092; allow 4σ.
    EXPECT_NEAR(filled_majorant[i] / runs, expected, 0.037)
        << "majorant, probe t=" << probes[i];
    EXPECT_NEAR(filled_fixed[i] / runs, expected, 0.037)
        << "fixed, probe t=" << probes[i];
  }
  // Same law, less work: the per-state envelope must report a real
  // candidate saving over the fixed bound on this bias-driven workload.
  EXPECT_LT(stats_majorant.candidates, stats_fixed.candidates);
  EXPECT_GT(stats_majorant.envelope_efficiency(), 1.5);
}

TEST_F(MajorantEquivalence, MajorantDwellsMatchGillespieAtConstantBias) {
  const double v = resonant_bias();
  const auto rates = model_.propensities(trap_, v);
  const double total = rates.lambda_c + rates.lambda_e;
  ASSERT_GT(std::min(rates.lambda_c, rates.lambda_e), 0.05 * total)
      << "resonance scan failed to find a lively bias";

  const BiasPropensity prop(model_, trap_, Pwl::constant(v));
  const double horizon = 40000.0 / total;
  util::Rng rng_u(77), rng_g(88);
  const auto u =
      simulate_trap(prop, 0.0, horizon, TrapState::kEmpty, rng_u);
  const auto g = baseline::gillespie_stationary(
      rates.lambda_c, rates.lambda_e, 0.0, horizon, TrapState::kEmpty, rng_g);

  const auto du = u.dwell_times(true);
  const auto dg = g.dwell_times(true);
  ASSERT_GT(du.empty.size(), 500u);
  ASSERT_GT(dg.empty.size(), 500u);
  // 1% KS critical value, two-sample and one-sample.
  const auto crit2 = [](std::size_t na, std::size_t nb) {
    const double n_eff = 1.0 / (1.0 / static_cast<double>(na) +
                                1.0 / static_cast<double>(nb));
    return 1.63 / std::sqrt(n_eff);
  };
  EXPECT_LT(ks_two_sample(du.empty, dg.empty),
            crit2(du.empty.size(), dg.empty.size()));
  EXPECT_LT(ks_two_sample(du.filled, dg.filled),
            crit2(du.filled.size(), dg.filled.size()));
  // The tabulated propensities are exact for constant bias, so the dwell
  // laws are exactly exponential too.
  EXPECT_LT(ks_exponential(du.empty, rates.lambda_c),
            1.63 / std::sqrt(static_cast<double>(du.empty.size())));
  EXPECT_LT(ks_exponential(du.filled, rates.lambda_e),
            1.63 / std::sqrt(static_cast<double>(du.filled.size())));
}

TEST_F(MajorantEquivalence, DeviceFanOutIsBitIdenticalAcrossThreads) {
  const physics::MosDevice device{tech_, physics::MosType::kNmos,
                                  {220e-9, 90e-9}};
  physics::TrapProfileOptions profile;
  profile.fixed_count = 12;
  util::Rng profile_rng(501);
  const auto traps =
      physics::sample_trap_profile(tech_, device.geometry(), profile_rng,
                                   profile);
  const Pwl bias = make_bias(3);

  RtnGeneratorOptions options;
  options.t0 = 0.0;
  options.tf = bias.times().back();

  for (bool use_majorant : {true, false}) {
    options.uniformisation.use_majorant = use_majorant;
    DeviceRtnResult results[2];
    const std::size_t thread_counts[2] = {1, 8};
    for (int k = 0; k < 2; ++k) {
      options.threads = thread_counts[k];
      util::Rng rng(777);  // same root stream for both thread counts
      results[k] = generate_device_rtn(model_, device, traps, bias,
                                       Pwl::constant(1e-4), rng, options);
    }
    ASSERT_EQ(results[0].trajectories.size(), results[1].trajectories.size());
    for (std::size_t i = 0; i < results[0].trajectories.size(); ++i) {
      const auto& a = results[0].trajectories[i];
      const auto& b = results[1].trajectories[i];
      ASSERT_EQ(a.switch_times().size(), b.switch_times().size())
          << "trap " << i << " majorant=" << use_majorant;
      for (std::size_t s = 0; s < a.switch_times().size(); ++s) {
        EXPECT_EQ(a.switch_times()[s], b.switch_times()[s]);  // bit-identical, no tolerance
      }
    }
    // The reduced stats must be identical too (index-ordered reduction).
    EXPECT_EQ(results[0].stats.candidates, results[1].stats.candidates);
    EXPECT_EQ(results[0].stats.accepted, results[1].stats.accepted);
    EXPECT_EQ(results[0].stats.segments, results[1].stats.segments);
    EXPECT_EQ(results[0].stats.rng_refills, results[1].stats.rng_refills);
    EXPECT_DOUBLE_EQ(results[0].stats.envelope_integral,
                     results[1].stats.envelope_integral);
    EXPECT_DOUBLE_EQ(results[0].stats.fixed_bound_integral,
                     results[1].stats.fixed_bound_integral);
  }
}

}  // namespace
}  // namespace samurai::core
