// Linear-circuit validation of the MNA engine: dividers, RC dynamics and
// source conventions, all against closed-form solutions.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/devices.hpp"

namespace samurai::spice {
namespace {

TEST(Circuit, NodeManagement) {
  Circuit circuit;
  EXPECT_EQ(circuit.node("0"), kGround);
  EXPECT_EQ(circuit.node("gnd"), kGround);
  const int a = circuit.node("a");
  EXPECT_EQ(circuit.node("a"), a);
  EXPECT_NE(circuit.node("b"), a);
  EXPECT_EQ(circuit.num_nodes(), 2u);
  EXPECT_THROW(circuit.find_node("missing"), std::invalid_argument);
}

TEST(Dc, ResistorDivider) {
  Circuit circuit;
  const int in = circuit.node("in");
  const int mid = circuit.node("mid");
  VoltageSource::dc(circuit, "V1", in, kGround, 10.0);
  circuit.add<Resistor>("R1", in, mid, 1000.0);
  circuit.add<Resistor>("R2", mid, kGround, 3000.0);
  const auto result = dc_operating_point(circuit);
  ASSERT_TRUE(result.converged);
  // gmin (1e-12 S) leaks a few nA through the divider: tolerate nV-scale.
  EXPECT_NEAR(result.x[static_cast<std::size_t>(mid)], 7.5, 1e-6);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(in)], 10.0, 1e-6);
}

TEST(Dc, VoltageSourceBranchCurrent) {
  Circuit circuit;
  const int a = circuit.node("a");
  auto& source = VoltageSource::dc(circuit, "V1", a, kGround, 5.0);
  circuit.add<Resistor>("R1", a, kGround, 50.0);
  const auto result = dc_operating_point(circuit);
  ASSERT_TRUE(result.converged);
  // Current flows from + through the source: 0.1 A leaves node a through R,
  // so the branch carries -0.1 A... sign check: i_branch = -I_R.
  EXPECT_NEAR(result.x[static_cast<std::size_t>(source.branch_index())], -0.1,
              1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Circuit circuit;
  const int a = circuit.node("a");
  // 1 mA from ground into node a (SPICE convention: + node is ground).
  circuit.add<CurrentSource>("I1", kGround, a, core::Pwl::constant(1e-3));
  circuit.add<Resistor>("R1", a, kGround, 2000.0);
  const auto result = dc_operating_point(circuit);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(a)], 2.0, 1e-6);
}

TEST(Dc, FloatingNodeHandledByGmin) {
  Circuit circuit;
  const int a = circuit.node("a");
  circuit.add<Capacitor>("C1", a, kGround, 1e-12);  // open in DC
  const auto result = dc_operating_point(circuit);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(a)], 0.0, 1e-6);
}

TEST(Dc, NodesetPullsBistableChoice) {
  // Two back-to-back "latch" resistor loads have one solution; nodeset
  // must at minimum not break a linear solve.
  Circuit circuit;
  const int a = circuit.node("a");
  VoltageSource::dc(circuit, "V1", a, kGround, 1.0);
  circuit.add<Resistor>("R1", a, kGround, 100.0);
  DcOptions options;
  options.nodeset["a"] = 0.3;
  const auto result = dc_operating_point(circuit, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[static_cast<std::size_t>(a)], 1.0, 1e-9);
}

TEST(Transient, RcDischargeMatchesAnalytic) {
  // V source steps 1 -> 0 at t=1us through R into C: exponential decay.
  Circuit circuit;
  const int in = circuit.node("in");
  const int out = circuit.node("out");
  core::Pwl step;
  step.append(0.0, 1.0);
  step.append(1e-6, 1.0);
  step.append(1.001e-6, 0.0);
  circuit.add<VoltageSource>(circuit, "V1", in, kGround, step);
  const double r = 1e4, c = 1e-9;  // tau = 10 us
  circuit.add<Resistor>("R1", in, out, r);
  circuit.add<Capacitor>("C1", out, kGround, c);

  TransientOptions options;
  options.t_stop = 30e-6;
  const auto result = transient(circuit, options);
  const double tau = r * c;
  for (double t : {5e-6, 10e-6, 20e-6}) {
    const double expected = std::exp(-(t - 1.001e-6) / tau);
    EXPECT_NEAR(result.voltage_at("out", t), expected, 0.01) << "t=" << t;
  }
  // Before the step the cap is charged to 1 V by the DC solve.
  EXPECT_NEAR(result.voltage_at("out", 0.5e-6), 1.0, 1e-6);
}

TEST(Transient, RcChargeWithBackwardEuler) {
  Circuit circuit;
  const int in = circuit.node("in");
  const int out = circuit.node("out");
  core::Pwl step;
  step.append(0.0, 0.0);
  step.append(1e-9, 0.0);
  step.append(1.01e-9, 1.0);
  circuit.add<VoltageSource>(circuit, "V1", in, kGround, step);
  circuit.add<Resistor>("R1", in, out, 1e3);
  circuit.add<Capacitor>("C1", out, kGround, 1e-12);
  TransientOptions options;
  options.t_stop = 10e-9;
  options.method = IntegrationMethod::kBackwardEuler;
  const auto result = transient(circuit, options);
  const double tau = 1e-9;
  EXPECT_NEAR(result.voltage_at("out", 1.01e-9 + 3.0 * tau),
              1.0 - std::exp(-3.0), 0.02);
}

TEST(Transient, PwlCurrentInjectionIntoRc) {
  Circuit circuit;
  const int a = circuit.node("a");
  core::Pwl pulse;
  pulse.append(0.0, 0.0);
  pulse.append(1e-6, 0.0);
  pulse.append(1.0001e-6, 1e-3);
  pulse.append(2e-6, 1e-3);
  pulse.append(2.0001e-6, 0.0);
  circuit.add<CurrentSource>("I1", kGround, a, pulse);
  circuit.add<Resistor>("R1", a, kGround, 1e3);
  TransientOptions options;
  options.t_stop = 3e-6;
  const auto result = transient(circuit, options);
  EXPECT_NEAR(result.voltage_at("a", 1.5e-6), 1.0, 1e-6);
  EXPECT_NEAR(result.voltage_at("a", 2.5e-6), 0.0, 1e-6);
}

TEST(Transient, SlowRcHoldsItsOperatingPoint) {
  // 1 nA into (1 GΩ || 1 nF): τ = 1 s, so over a 1 µs window the node must
  // sit at its 1 V operating point with negligible drift — a check that
  // the companion-model history is initialised from the DC solution.
  Circuit circuit;
  const int a = circuit.node("a");
  circuit.add<CurrentSource>("I1", kGround, a, core::Pwl::constant(1e-9));
  circuit.add<Resistor>("Rleak", a, kGround, 1e9);
  circuit.add<Capacitor>("C1", a, kGround, 1e-9);
  TransientOptions options;
  options.t_stop = 1e-6;
  const auto result = transient(circuit, options);
  EXPECT_NEAR(result.voltage_samples("a").front(), 1.0, 1e-3);
  EXPECT_NEAR(result.voltage_samples("a").back(), 1.0, 1e-3);
}

TEST(Transient, InvalidWindowThrows) {
  Circuit circuit;
  circuit.node("a");
  TransientOptions options;
  options.t_stop = 0.0;
  EXPECT_THROW(transient(circuit, options), std::invalid_argument);
}

TEST(Transient, BreakpointsAreHitExactly) {
  Circuit circuit;
  const int in = circuit.node("in");
  core::Pwl wave;
  wave.append(0.0, 0.0);
  wave.append(3.3e-7, 0.0);
  wave.append(3.4e-7, 1.0);
  circuit.add<VoltageSource>(circuit, "V1", in, kGround, wave);
  circuit.add<Resistor>("R1", in, kGround, 100.0);
  TransientOptions options;
  options.t_stop = 1e-6;
  const auto result = transient(circuit, options);
  bool found = false;
  for (double t : result.times()) {
    if (std::abs(t - 3.3e-7) < 1e-15) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Devices, ConstructionValidation) {
  EXPECT_THROW(Resistor("R", 0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(Resistor("R", 0, 1, -5.0), std::invalid_argument);
  EXPECT_THROW(Capacitor("C", 0, 1, -1e-12), std::invalid_argument);
  EXPECT_THROW(CallbackCurrentSource("I", 0, 1, nullptr),
               std::invalid_argument);
}

TEST(Devices, PulseWaveformShape) {
  const auto wave = pulse_waveform(0.0, 1.0, 1e-9, 0.1e-9, 1e-9, 0.1e-9,
                                   3e-9, 2);
  EXPECT_DOUBLE_EQ(wave.eval(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(wave.eval(1.5e-9), 1.0);   // first pulse high
  EXPECT_DOUBLE_EQ(wave.eval(2.5e-9), 0.0);   // between pulses
  EXPECT_DOUBLE_EQ(wave.eval(4.5e-9), 1.0);   // second pulse
  EXPECT_THROW(pulse_waveform(0, 1, 0, 0.1e-9, 1e-9, 0.1e-9, 0.5e-9, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace samurai::spice
