#include "physics/trap_profile_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "physics/technology.hpp"
#include "physics/trap_profile.hpp"
#include "util/rng.hpp"

namespace samurai::physics {
namespace {

TEST(TrapProfileIo, RoundTripPreservesTraps) {
  const auto tech = technology("90nm");
  util::Rng rng(13);
  TrapProfileOptions options;
  options.fixed_count = 25;
  options.equilibrium_bias = tech.v_dd;
  const auto traps =
      sample_trap_profile(tech, {tech.w_min, tech.l_min}, rng, options);

  std::stringstream stream;
  write_trap_profile(stream, traps);
  const auto parsed = read_trap_profile(stream);
  ASSERT_EQ(parsed.size(), traps.size());
  for (std::size_t i = 0; i < traps.size(); ++i) {
    // ~9 significant digits survive the text round trip.
    EXPECT_NEAR(parsed[i].y_tr, traps[i].y_tr, 1e-8 * traps[i].y_tr + 1e-20);
    EXPECT_NEAR(parsed[i].e_tr, traps[i].e_tr, 1e-8);
    EXPECT_EQ(parsed[i].init_state, traps[i].init_state);
  }
}

TEST(TrapProfileIo, ParsesCommentsAndOptionalInit) {
  std::istringstream is(
      "# measured profile\n"
      "\n"
      "0.5 0.6  # trailing comment\n"
      "1.2 0.7 1\n");
  const auto traps = read_trap_profile(is);
  ASSERT_EQ(traps.size(), 2u);
  EXPECT_NEAR(traps[0].y_tr, 0.5e-9, 1e-18);
  EXPECT_EQ(traps[0].init_state, TrapState::kEmpty);
  EXPECT_EQ(traps[1].init_state, TrapState::kFilled);
}

TEST(TrapProfileIo, RejectsMalformedLines) {
  {
    std::istringstream is("0.5\n");
    EXPECT_THROW(read_trap_profile(is), std::runtime_error);
  }
  {
    std::istringstream is("0.5 0.6 2\n");  // bad init
    EXPECT_THROW(read_trap_profile(is), std::runtime_error);
  }
  {
    std::istringstream is("0.5 0.6 1 extra\n");
    EXPECT_THROW(read_trap_profile(is), std::runtime_error);
  }
  {
    std::istringstream is("-0.5 0.6\n");  // negative depth
    EXPECT_THROW(read_trap_profile(is), std::runtime_error);
  }
}

TEST(TrapProfileIo, MissingFileThrows) {
  EXPECT_THROW(read_trap_profile_file("/nonexistent/profile.txt"),
               std::runtime_error);
}

TEST(TrapProfileIo, FileRoundTrip) {
  const std::string path = "/tmp/samurai_test_profile.txt";
  std::vector<Trap> traps = {{0.4e-9, 0.55, TrapState::kEmpty},
                             {1.0e-9, 0.72, TrapState::kFilled}};
  write_trap_profile_file(path, traps);
  const auto parsed = read_trap_profile_file(path);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_NEAR(parsed[1].e_tr, 0.72, 1e-12);
}

}  // namespace
}  // namespace samurai::physics
