#include "sram/vmin.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace samurai::sram {
namespace {

VminConfig fast_config() {
  VminConfig config;
  config.cell.tech = physics::technology("90nm");
  config.cell.sizing.extra_node_cap = 40e-15;
  config.cell.timing.period = 1e-9;
  config.cell.ops = ops_from_bits({1, 0});
  config.cell.rtn_scale = 30.0;
  config.cell.seed = 3;
  config.v_lo = 0.7;
  config.v_hi = 1.1;
  config.resolution = 0.1;
  config.rtn_seeds = 2;
  return config;
}

TEST(Vmin, BadRangeThrows) {
  VminConfig config = fast_config();
  config.v_lo = 1.2;
  config.v_hi = 1.0;
  EXPECT_THROW(find_vmin(config), std::invalid_argument);
  config = fast_config();
  config.resolution = 0.0;
  EXPECT_THROW(find_vmin(config), std::invalid_argument);
}

TEST(Vmin, SweepCoversRangeAscending) {
  const auto result = find_vmin(fast_config());
  ASSERT_GE(result.sweep.size(), 4u);
  EXPECT_NEAR(result.sweep.front().v_dd, 0.7, 1e-9);
  for (std::size_t i = 1; i < result.sweep.size(); ++i) {
    EXPECT_GT(result.sweep[i].v_dd, result.sweep[i - 1].v_dd);
  }
}

TEST(Vmin, NominalPassesAtFullSupplyFailsFarBelow) {
  const auto result = find_vmin(fast_config());
  EXPECT_TRUE(result.sweep.back().nominal_pass);
  ASSERT_TRUE(result.nominal_found);
  EXPECT_GT(result.vmin_nominal, 0.0);
  EXPECT_LE(result.vmin_nominal, 1.1);
}

TEST(Vmin, RtnVminIsAtLeastNominalVmin) {
  const auto result = find_vmin(fast_config());
  if (result.rtn_found && result.nominal_found) {
    EXPECT_GE(result.vmin_rtn, result.vmin_nominal - 1e-9);
    EXPECT_NEAR(result.rtn_margin, result.vmin_rtn - result.vmin_nominal,
                1e-12);
  }
}

TEST(Vmin, AllFailSweepIsFlaggedNotZeroVolt) {
  // A sweep window entirely below the operating region must report
  // "not found" — not a 0 V V_min that would read as margin-free success.
  VminConfig config = fast_config();
  config.v_lo = 0.42;
  config.v_hi = 0.5;
  config.resolution = 0.04;
  const auto result = find_vmin(config);
  EXPECT_FALSE(result.nominal_found);
  EXPECT_FALSE(result.rtn_found);
  EXPECT_TRUE(std::isnan(result.vmin_nominal));
  EXPECT_TRUE(std::isnan(result.vmin_rtn));
  EXPECT_TRUE(std::isnan(result.rtn_margin));
}

TEST(Vmin, NominalFailureImpliesAllSeedsFail) {
  const auto result = find_vmin(fast_config());
  for (const auto& point : result.sweep) {
    if (!point.nominal_pass) {
      EXPECT_EQ(point.rtn_failures, 2u) << "v=" << point.v_dd;
    }
  }
}

TEST(Vmin, ParallelSweepIsBitIdenticalToSerial) {
  // Every supply point derives its seeds independently of the others, so
  // the parallel sweep must reproduce the serial one exactly.
  VminConfig config = fast_config();
  config.threads = 1;
  const auto serial = find_vmin(config);
  config.threads = 8;
  const auto parallel = find_vmin(config);
  ASSERT_EQ(serial.sweep.size(), parallel.sweep.size());
  for (std::size_t i = 0; i < serial.sweep.size(); ++i) {
    EXPECT_EQ(serial.sweep[i].v_dd, parallel.sweep[i].v_dd);
    EXPECT_EQ(serial.sweep[i].nominal_pass, parallel.sweep[i].nominal_pass);
    EXPECT_EQ(serial.sweep[i].rtn_failures, parallel.sweep[i].rtn_failures);
  }
  EXPECT_EQ(serial.nominal_found, parallel.nominal_found);
  EXPECT_EQ(serial.rtn_found, parallel.rtn_found);
  if (serial.nominal_found) {
    EXPECT_EQ(serial.vmin_nominal, parallel.vmin_nominal);
  }
  if (serial.rtn_found) EXPECT_EQ(serial.vmin_rtn, parallel.vmin_rtn);
  if (serial.nominal_found && serial.rtn_found) {
    EXPECT_EQ(serial.rtn_margin, parallel.rtn_margin);
  }
}

TEST(Vmin, CountSlowAsFailRaisesVmin) {
  VminConfig strict = fast_config();
  strict.count_slow_as_fail = true;
  const auto lenient = find_vmin(fast_config());
  const auto hard = find_vmin(strict);
  if (lenient.vmin_rtn > 0.0 && hard.vmin_rtn > 0.0) {
    EXPECT_GE(hard.vmin_rtn, lenient.vmin_rtn - 1e-9);
  }
}

}  // namespace
}  // namespace samurai::sram
