#include "physics/surface_potential.hpp"

#include <gtest/gtest.h>

#include "physics/technology.hpp"

namespace samurai::physics {
namespace {

class SurfacePotentialTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SurfacePotentialTest, PsiIsMonotoneInGateBias) {
  const auto tech = technology(GetParam());
  const SurfacePotentialSolver solver(tech);
  double prev = solver.solve_psi_s(-1.0);
  for (double v = -0.9; v <= 2.0 * tech.v_dd; v += 0.05) {
    const double psi = solver.solve_psi_s(v);
    EXPECT_GE(psi, prev - 1e-9) << "at V=" << v;
    prev = psi;
  }
}

TEST_P(SurfacePotentialTest, StrongInversionPinsNearTwoPhiF) {
  const auto tech = technology(GetParam());
  const SurfacePotentialSolver solver(tech);
  const double psi = solver.solve_psi_s(1.5 * tech.v_dd);
  const double two_phi_f = 2.0 * tech.phi_f();
  // Above threshold ψ_s sits within a handful of φ_t above 2φ_F.
  EXPECT_GT(psi, two_phi_f);
  EXPECT_LT(psi, two_phi_f + 10.0 * tech.phi_t());
}

TEST_P(SurfacePotentialTest, OxideFieldGrowsWithBias) {
  const auto tech = technology(GetParam());
  const SurfacePotentialSolver solver(tech);
  const auto low = solver.solve(0.2);
  const auto high = solver.solve(tech.v_dd);
  EXPECT_GT(high.f_ox, low.f_ox);
  EXPECT_GT(high.f_ox, 0.0);
}

TEST_P(SurfacePotentialTest, FermiAlignmentSweepsThroughZero) {
  const auto tech = technology(GetParam());
  const SurfacePotentialSolver solver(tech);
  // Depleted surface: E_F below E_i; inverted surface: E_F above E_i.
  EXPECT_LT(solver.solve(-0.8).ef_minus_ei, 0.0);
  EXPECT_GT(solver.solve(tech.v_dd).ef_minus_ei, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllNodes, SurfacePotentialTest,
                         ::testing::Values("130nm", "90nm", "65nm", "45nm",
                                           "32nm", "22nm"));

TEST(SurfacePotential, SelfConsistencyOfImplicitEquation) {
  // ψ_s(V) must satisfy the implicit equation to solver accuracy: check by
  // re-solving at a perturbed bias and confirming local Lipschitz response.
  const auto tech = technology("90nm");
  const SurfacePotentialSolver solver(tech);
  const double psi1 = solver.solve_psi_s(0.6);
  const double psi2 = solver.solve_psi_s(0.6 + 1e-6);
  EXPECT_NEAR(psi1, psi2, 1e-5);
}

TEST(SurfacePotential, AccumulationClampsAtBracketEdge) {
  const auto tech = technology("90nm");
  const SurfacePotentialSolver solver(tech);
  const double psi = solver.solve_psi_s(-5.0);
  EXPECT_LE(psi, 0.0);  // negative (accumulation side)
}

}  // namespace
}  // namespace samurai::physics
