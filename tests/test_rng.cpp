#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace samurai::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(77);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(77);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(9);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  Rng c1_again = parent.split(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.split(42);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NestedChildStreamsDoNotCollide) {
  // The campaign derives sample-level streams as master.split(n + 1) and
  // each sample derives trap-level streams by splitting again (via the
  // cell seed drawn from the sample stream). A collision between any two
  // streams in that two-level tree would correlate Monte-Carlo samples,
  // so the first outputs of every stream across a dense index grid must
  // be pairwise distinct — including between the two levels.
  const Rng master(2026);
  std::set<std::uint64_t> first_outputs;
  std::size_t streams = 0;
  for (std::uint64_t n = 0; n < 64; ++n) {
    Rng sample = master.split(n + 1);
    first_outputs.insert(Rng(sample.next_u64()).next_u64());
    ++streams;
    const Rng sample_base = master.split(n + 1);
    for (std::uint64_t trap = 0; trap < 16; ++trap) {
      Rng child = sample_base.split(trap);
      first_outputs.insert(child.next_u64());
      ++streams;
    }
  }
  EXPECT_EQ(first_outputs.size(), streams);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    ASSERT_GE(u, -2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIndexCoversRangeUnbiased) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    const auto idx = rng.uniform_index(7);
    ASSERT_LT(idx, 7u);
    ++counts[static_cast<std::size_t>(idx)];
  }
  for (int count : counts) EXPECT_NEAR(count, n / 7, n / 7 * 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(6);
  const double rate = 3.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01 / rate);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(7);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(8);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / n, 10.0, 0.02);
}

TEST(Rng, PoissonMeanAndZeroCase) {
  Rng rng(9);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
  const double mean = 4.2;
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(10);
  const double mean = 200.0;
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 1.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BlockFillsMatchScalarStreams) {
  // The uniformisation kernel's batched draws must consume the stream
  // exactly like the scalar calls, so block size is not a law parameter.
  Rng block_rng(123), scalar_rng(123);
  double uniforms[17];
  block_rng.fill_uniform(uniforms, 17);
  for (double u : uniforms) EXPECT_EQ(u, scalar_rng.uniform());

  Rng block_exp(456), scalar_exp(456);
  double exponentials[31];
  block_exp.fill_exponential_unit(exponentials, 31);
  for (double e : exponentials) {
    // fill_exponential_unit draws unit-rate variates via -log1p(-u).
    EXPECT_EQ(e, -std::log1p(-scalar_exp.uniform()));
    EXPECT_GE(e, 0.0);
  }
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  // Reference values from the splitmix64 reference implementation.
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace samurai::util
