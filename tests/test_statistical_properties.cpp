// Distribution-level property tests: Kolmogorov-Smirnov checks that the
// samplers produce *exactly* the right laws (not just matching moments),
// and cross-validation between independent estimators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/gillespie.hpp"
#include "core/uniformisation.hpp"
#include "signal/analytic.hpp"
#include "signal/resample.hpp"
#include "signal/spectral.hpp"
#include "util/rng.hpp"

namespace samurai {
namespace {

using physics::TrapState;

/// One-sample KS statistic against an exponential CDF with given rate.
double ks_exponential(std::vector<double> samples, double rate) {
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double cdf = 1.0 - std::exp(-rate * samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::abs(cdf - lo), std::abs(cdf - hi)});
  }
  return d;
}

/// Two-sample KS statistic.
double ks_two_sample(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    const double fa = static_cast<double>(i) / static_cast<double>(a.size());
    const double fb = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

struct RatePair {
  double lambda_c;
  double lambda_e;
};

class DwellLawTest : public ::testing::TestWithParam<RatePair> {};

TEST_P(DwellLawTest, UniformisationDwellsAreExactlyExponential) {
  const auto param = GetParam();
  const core::ConstantPropensity prop(param.lambda_c, param.lambda_e);
  util::Rng rng(1234);
  const double total = param.lambda_c + param.lambda_e;
  const auto traj = core::simulate_trap(prop, 0.0, 30000.0 / total * 2.0,
                                        TrapState::kEmpty, rng);
  const auto dwells = traj.dwell_times(true);
  ASSERT_GT(dwells.empty.size(), 2000u);
  ASSERT_GT(dwells.filled.size(), 2000u);
  // KS 1% critical value ~ 1.63/sqrt(n).
  const double crit_e =
      1.63 / std::sqrt(static_cast<double>(dwells.empty.size()));
  const double crit_f =
      1.63 / std::sqrt(static_cast<double>(dwells.filled.size()));
  EXPECT_LT(ks_exponential(dwells.empty, param.lambda_c), crit_e);
  EXPECT_LT(ks_exponential(dwells.filled, param.lambda_e), crit_f);
}

TEST_P(DwellLawTest, UniformisationAndGillespieAgreeInDistribution) {
  const auto param = GetParam();
  const core::ConstantPropensity prop(param.lambda_c, param.lambda_e);
  util::Rng rng_u(77), rng_g(88);
  const double total = param.lambda_c + param.lambda_e;
  const double horizon = 20000.0 / total * 2.0;
  const auto u = core::simulate_trap(prop, 0.0, horizon, TrapState::kEmpty,
                                     rng_u);
  const auto g = baseline::gillespie_stationary(
      param.lambda_c, param.lambda_e, 0.0, horizon, TrapState::kEmpty, rng_g);
  const auto du = u.dwell_times(true);
  const auto dg = g.dwell_times(true);
  ASSERT_GT(du.empty.size(), 1000u);
  ASSERT_GT(dg.empty.size(), 1000u);
  const double n_eff =
      1.0 / (1.0 / static_cast<double>(du.empty.size()) +
             1.0 / static_cast<double>(dg.empty.size()));
  EXPECT_LT(ks_two_sample(du.empty, dg.empty), 1.63 / std::sqrt(n_eff));
  const double n_eff_f =
      1.0 / (1.0 / static_cast<double>(du.filled.size()) +
             1.0 / static_cast<double>(dg.filled.size()));
  EXPECT_LT(ks_two_sample(du.filled, dg.filled), 1.63 / std::sqrt(n_eff_f));
}

INSTANTIATE_TEST_SUITE_P(Rates, DwellLawTest,
                         ::testing::Values(RatePair{1.0, 1.0},
                                           RatePair{3.0, 0.7},
                                           RatePair{0.4, 2.5}));

TEST(StatisticalProperties, RngExponentialPassesKs) {
  util::Rng rng(5);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.exponential(2.5));
  EXPECT_LT(ks_exponential(samples, 2.5), 1.63 / std::sqrt(20000.0));
}

TEST(StatisticalProperties, RngUniformPassesKs) {
  util::Rng rng(6);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // map U(0,1) through -log to an exponential(1) for reuse of the helper
    samples.push_back(-std::log(1.0 - rng.uniform()));
  }
  EXPECT_LT(ks_exponential(samples, 1.0), 1.63 / std::sqrt(20000.0));
}

TEST(StatisticalProperties, WelchAndWienerKhinchinAgree) {
  // Two independent PSD estimators on the same telegraph record must give
  // the same density in the resolved band.
  const core::ConstantPropensity prop(5000.0, 5000.0);
  util::Rng rng(9);
  const auto traj =
      core::simulate_trap(prop, 0.0, 4.0, TrapState::kEmpty, rng);
  const auto record = signal::resample(traj, 1 << 19);
  const auto welch = signal::welch_psd(record.samples, record.dt, 8192);
  const auto acf = signal::autocorrelation(record.samples, record.dt, true,
                                           false, 40000);
  const std::vector<double> freqs = {400.0, 1000.0, 2500.0};
  const auto wk = signal::psd_from_autocorrelation(acf, freqs);
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double welch_value = [&] {
      // nearest Welch bin
      std::size_t best = 0;
      for (std::size_t k = 1; k < welch.frequencies.size(); ++k) {
        if (std::abs(welch.frequencies[k] - freqs[i]) <
            std::abs(welch.frequencies[best] - freqs[i])) {
          best = k;
        }
      }
      return welch.density[best];
    }();
    EXPECT_NEAR(wk[i] / welch_value, 1.0, 0.35) << "f=" << freqs[i];
  }
}

TEST(StatisticalProperties, OccupancyVarianceMatchesBernoulli) {
  // Var of the stationary telegraph value is p(1-p): check the sampled
  // record's variance against it.
  const double lc = 300.0, le = 700.0;
  const core::ConstantPropensity prop(lc, le);
  util::Rng rng(10);
  const auto traj =
      core::simulate_trap(prop, 0.0, 200.0, TrapState::kEmpty, rng);
  const auto record = signal::resample(traj, 1 << 18);
  double mean = 0.0;
  for (double v : record.samples) mean += v;
  mean /= static_cast<double>(record.samples.size());
  double var = 0.0;
  for (double v : record.samples) var += (v - mean) * (v - mean);
  var /= static_cast<double>(record.samples.size());
  const double p = lc / (lc + le);
  EXPECT_NEAR(mean, p, 0.02);
  EXPECT_NEAR(var, p * (1.0 - p), 0.02);
}

}  // namespace
}  // namespace samurai
