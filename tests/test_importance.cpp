#include "sram/importance.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace samurai::sram {
namespace {

ImportanceConfig fast_config() {
  ImportanceConfig config;
  config.cell.tech = physics::technology("90nm");
  config.cell.tech.v_dd = 1.05;
  config.cell.sizing.extra_node_cap = 40e-15;
  config.cell.timing.period = 1e-9;
  config.cell.ops = ops_from_bits({1, 0});
  config.cell.rtn_scale = 30.0;
  config.sigma_vt = 0.04;
  config.samples = 30;
  config.seed = 6;
  config.with_rtn = false;  // nominal-only: each sample is one transient
  return config;
}

TEST(Importance, BadConfigurationThrows) {
  ImportanceConfig config = fast_config();
  config.sigma_vt = 0.0;
  EXPECT_THROW(estimate_failure_probability(config), std::invalid_argument);
  config = fast_config();
  config.samples = 0;
  EXPECT_THROW(estimate_failure_probability(config), std::invalid_argument);
}

TEST(Importance, NaiveModeHasUnitWeights) {
  // With no shift the likelihood ratio is exactly 1: the estimate is the
  // raw failure fraction and the ESS equals the sample count.
  const auto result = estimate_failure_probability(fast_config());
  EXPECT_EQ(result.samples, 30u);
  EXPECT_NEAR(result.effective_sample_size, 30.0, 1e-6);
  EXPECT_NEAR(result.failure_probability,
              static_cast<double>(result.failures_observed) / 30.0, 1e-12);
}

TEST(Importance, DeterministicGivenSeed) {
  const auto a = estimate_failure_probability(fast_config());
  const auto b = estimate_failure_probability(fast_config());
  EXPECT_DOUBLE_EQ(a.failure_probability, b.failure_probability);
  EXPECT_EQ(a.failures_observed, b.failures_observed);
}

TEST(Importance, ParallelRunIsBitIdenticalToSerial) {
  // The estimator maps samples in parallel but reduces the weights in
  // index order, so every statistic must match the serial run to the bit
  // for any thread count — including the biased (non-trivial weight) mode.
  ImportanceConfig config = fast_config();
  config.samples = 24;
  config.shift = {{"M1", 0.06}, {"M2", 0.06}};
  config.threads = 1;
  const auto serial = estimate_failure_probability(config);
  for (std::size_t threads : {2u, 8u}) {
    config.threads = threads;
    const auto parallel = estimate_failure_probability(config);
    EXPECT_EQ(serial.failure_probability, parallel.failure_probability)
        << "threads=" << threads;
    EXPECT_EQ(serial.standard_error, parallel.standard_error)
        << "threads=" << threads;
    EXPECT_EQ(serial.effective_sample_size, parallel.effective_sample_size)
        << "threads=" << threads;
    EXPECT_EQ(serial.failures_observed, parallel.failures_observed);
    EXPECT_EQ(serial.samples, parallel.samples);
  }
  // Repeated parallel runs with the same seed are stable too.
  const auto again = estimate_failure_probability(config);
  EXPECT_EQ(serial.failure_probability, again.failure_probability);
  EXPECT_EQ(serial.standard_error, again.standard_error);
}

TEST(Importance, BiasingFindsFailuresNaiveMisses) {
  // Pass-gate V_T pushed toward the failure region: the biased run must
  // observe failures; the naive run at this tiny sample count does not
  // (at sigma = 25 mV the failure boundary sits many sigma out).
  ImportanceConfig naive = fast_config();
  naive.sigma_vt = 0.025;
  const auto base = estimate_failure_probability(naive);
  ImportanceConfig biased = fast_config();
  biased.sigma_vt = 0.025;
  biased.shift = {{"M1", 0.2}, {"M2", 0.2}};
  const auto shifted = estimate_failure_probability(biased);
  EXPECT_EQ(base.failures_observed, 0u);
  EXPECT_GT(shifted.failures_observed, 5u);
  // The re-weighted estimate stays small (it is a tail probability).
  EXPECT_LT(shifted.failure_probability, 0.2);
  EXPECT_GT(shifted.failure_probability, 0.0);
  // Biasing costs effective sample size.
  EXPECT_LT(shifted.effective_sample_size, 0.9 * 30.0);
}

TEST(Importance, EstimatesAgreeWhereBothResolve) {
  // Blow up sigma so failures are common: naive and mildly-biased
  // estimates must agree within combined error bars.
  ImportanceConfig naive = fast_config();
  naive.sigma_vt = 0.12;
  naive.samples = 60;
  const auto base = estimate_failure_probability(naive);
  ImportanceConfig biased = naive;
  biased.shift = {{"M1", 0.06}, {"M2", 0.06}};
  const auto shifted = estimate_failure_probability(biased);
  ASSERT_GT(base.failures_observed, 3u);
  ASSERT_GT(shifted.failures_observed, 3u);
  const double tolerance =
      3.0 * (base.standard_error + shifted.standard_error) + 0.02;
  EXPECT_NEAR(base.failure_probability, shifted.failure_probability,
              tolerance);
}

}  // namespace
}  // namespace samurai::sram
