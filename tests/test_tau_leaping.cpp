#include "baseline/tau_leaping.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/uniformisation.hpp"

namespace samurai::baseline {
namespace {

using physics::TrapState;

TEST(TauLeaping, TransitionKernelLimits) {
  // tau -> 0: stays put; tau -> inf: stationary probability.
  EXPECT_NEAR(two_state_transition_probability(2.0, 3.0, 0.0, true), 1.0,
              1e-12);
  EXPECT_NEAR(two_state_transition_probability(2.0, 3.0, 0.0, false), 0.0,
              1e-12);
  EXPECT_NEAR(two_state_transition_probability(2.0, 3.0, 100.0, true),
              2.0 / 5.0, 1e-9);
  EXPECT_NEAR(two_state_transition_probability(2.0, 3.0, 100.0, false),
              2.0 / 5.0, 1e-9);
}

TEST(TauLeaping, FrozenChainStaysPut) {
  EXPECT_DOUBLE_EQ(two_state_transition_probability(0.0, 0.0, 1.0, true), 1.0);
  EXPECT_DOUBLE_EQ(two_state_transition_probability(0.0, 0.0, 1.0, false), 0.0);
}

TEST(TauLeaping, BadArgumentsThrow) {
  const core::ConstantPropensity prop(1.0, 1.0);
  util::Rng rng(1);
  EXPECT_THROW(tau_leaping(prop, 0.0, 1.0, TrapState::kEmpty, rng, {0.0}),
               std::invalid_argument);
  EXPECT_THROW(tau_leaping(prop, 1.0, 0.0, TrapState::kEmpty, rng, {1e-3}),
               std::invalid_argument);
}

TEST(TauLeaping, OccupancyMatchesStationaryLaw) {
  // Endpoint sampling is exact for constant rates: the occupancy fraction
  // measured on the leap grid must match λc/(λc+λe).
  const double lc = 40.0, le = 10.0;
  const core::ConstantPropensity prop(lc, le);
  util::Rng rng(2);
  std::uint64_t leaps = 0;
  const auto traj = tau_leaping(prop, 0.0, 2000.0, TrapState::kEmpty, rng,
                                {0.05}, &leaps);
  EXPECT_GE(leaps, 40000u);  // +-1 from floating-point time accumulation
  EXPECT_LE(leaps, 40001u);
  EXPECT_NEAR(traj.filled_fraction(), lc / (lc + le), 0.02);
}

TEST(TauLeaping, UndercountsSwitchesAtCoarseTau) {
  // The known bias: intra-leap toggles vanish, so the recorded switch
  // count falls far below the exact method's at λ·τ >> 1.
  const double lc = 100.0, le = 100.0;
  const core::ConstantPropensity prop(lc, le);
  util::Rng rng_a(3), rng_b(4);
  const auto leap = tau_leaping(prop, 0.0, 100.0, TrapState::kEmpty, rng_a,
                                {0.1});
  const auto exact =
      core::simulate_trap(prop, 0.0, 100.0, TrapState::kEmpty, rng_b);
  EXPECT_LT(leap.num_switches(), exact.num_switches() / 5);
}

TEST(TauLeaping, FineTauApproachesExactSwitchCounts) {
  const double lc = 5.0, le = 5.0;
  const core::ConstantPropensity prop(lc, le);
  util::Rng rng_a(5), rng_b(6);
  const auto leap = tau_leaping(prop, 0.0, 2000.0, TrapState::kEmpty, rng_a,
                                {2e-3});  // λ·τ = 0.01
  const auto exact =
      core::simulate_trap(prop, 0.0, 2000.0, TrapState::kEmpty, rng_b);
  const double ratio = static_cast<double>(leap.num_switches()) /
                       static_cast<double>(exact.num_switches());
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
}

TEST(TauLeaping, TracksNonStationaryOccupancy) {
  // Slow modulation: leaping with τ far below the modulation period must
  // track the master equation.
  auto lambda_c = [](double t) { return 5.0 + 4.0 * std::sin(0.5 * t); };
  auto lambda_e = [](double t) { return 5.0 - 4.0 * std::sin(0.5 * t); };
  const core::FunctionalPropensity prop(lambda_c, lambda_e, 9.0);
  const double t_end = 20.0;
  const int runs = 2000;
  util::Rng rng(7);
  double filled = 0.0;
  for (int r = 0; r < runs; ++r) {
    util::Rng run_rng = rng.split(static_cast<std::uint64_t>(r) + 1);
    const auto traj = tau_leaping(prop, 0.0, t_end, TrapState::kEmpty,
                                  run_rng, {0.02});
    if (traj.state_at(0.9 * t_end) == TrapState::kFilled) filled += 1.0;
  }
  const auto reference = core::master_equation_fill_probability(
      prop, 0.0, t_end, 0.0, 4000);
  const double expected = reference[static_cast<std::size_t>(0.9 * 4000)];
  EXPECT_NEAR(filled / runs, expected, 0.05);
}

}  // namespace
}  // namespace samurai::baseline
