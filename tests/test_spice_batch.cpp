// Batched lock-step transient engine (spice/batch.hpp): scalar-equivalence
// oracles, the fixed-grid contract, error paths and the solver-kind
// boundary the batch engine leans on.
//
// The dense oracle is exact: lane k of a batch executes the same FP
// operation sequence as an independent scalar fixed-grid run of circuit k,
// so every voltage sample must match bit-for-bit. The sparse oracle is a
// tight tolerance plus an exactly-equal point count: non-seed lanes adopt
// lane 0's symbolic pivot order, which can differ from the lane's own
// analysis in the last ulps only.
#include "spice/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/devices.hpp"
#include "sram/methodology.hpp"
#include "sram/pattern.hpp"

namespace samurai::spice {
namespace {

// ------------------------------------------------------------ 6T (dense)

sram::MethodologyConfig cell_config(int lane) {
  sram::MethodologyConfig config;
  config.tech = physics::technology("90nm");
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = sram::ops_from_bits({1, 0});
  for (int m = 1; m <= 6; ++m) {
    config.vth_shifts["M" + std::to_string(m)] = 0.01 * lane - 0.004 * m;
  }
  return config;
}

TEST(BatchTransient, DenseLanesBitIdenticalToScalarFixedGrid) {
  std::vector<sram::MethodologyConfig> configs;
  for (int lane = 0; lane < 4; ++lane) configs.push_back(cell_config(lane));

  BatchWorkspace workspace;
  const auto batch = sram::run_nominal_batch(configs, workspace);
  ASSERT_EQ(batch.results.size(), 4u);

  for (std::size_t lane = 0; lane < configs.size(); ++lane) {
    sram::MethodologyConfig scalar_config = configs[lane];
    scalar_config.transient.fixed_grid = true;
    NewtonWorkspace scalar_workspace;
    const auto scalar = sram::run_nominal(scalar_config, scalar_workspace);

    ASSERT_EQ(scalar.result.num_points(), batch.results[lane].num_points())
        << "lane " << lane << ": accepted-step sequences diverged";
    for (const std::string& node : {batch.q_node, batch.qb_node}) {
      const auto& expect = scalar.result.voltage_samples(node);
      const auto& actual = batch.results[lane].voltage_samples(node);
      for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ(expect[i], actual[i])
            << "lane " << lane << " node " << node << " sample " << i;
      }
    }
  }
}

TEST(BatchTransient, LaneStatsCarryBatchCounters) {
  std::vector<sram::MethodologyConfig> configs;
  for (int lane = 0; lane < 3; ++lane) configs.push_back(cell_config(lane));

  const SolverStats before = solver_stats_snapshot();
  BatchWorkspace workspace;
  const auto batch = sram::run_nominal_batch(configs, workspace);
  const SolverStats delta = solver_stats_snapshot().since(before);

  // The batch itself is counted once (on lane 0's delta); every lane
  // contributes one bt_lane and the shared plan's step count.
  EXPECT_EQ(batch.results[0].stats().bt_batches, 1u);
  EXPECT_EQ(batch.results[1].stats().bt_batches, 0u);
  EXPECT_EQ(delta.bt_batches, 1u);
  EXPECT_EQ(delta.bt_lanes, 3u);
  const std::size_t steps = batch.results[0].num_points() - 1;
  for (const auto& result : batch.results) {
    EXPECT_EQ(result.stats().bt_lanes, 1u);
    EXPECT_EQ(result.stats().bt_steps, steps);
    EXPECT_EQ(result.stats().steps_accepted, steps);
    EXPECT_EQ(result.stats().steps_rejected, 0u);
  }
  EXPECT_EQ(workspace.lanes(), 3u);
}

// --------------------------------------------------- RC ladders (sparse)

/// Driven RC ladder with `sections` series RC stages: system size is
/// sections + 1 nodes + 1 source branch. Per-lane capacitance scaling
/// perturbs the dynamics without touching the topology.
struct Ladder {
  Circuit circuit;
  int tail = kGround;
};

void build_ladder(Ladder& ladder, std::size_t sections, double cap_scale,
                  const core::Pwl& drive) {
  Circuit& c = ladder.circuit;
  const int in = c.node("in");
  c.add<VoltageSource>(c, "Vin", in, kGround, drive);
  int prev = in;
  for (std::size_t i = 0; i < sections; ++i) {
    const int node = c.node("n" + std::to_string(i));
    c.add<Resistor>("R" + std::to_string(i), prev, node, 1e3 + 10.0 * i);
    c.add<Capacitor>("C" + std::to_string(i), node, kGround,
                     cap_scale * (1e-12 + 1e-14 * i));
    prev = node;
  }
  ladder.tail = prev;
}

core::Pwl step_drive(double edge) {
  return core::Pwl({0.0, edge, edge + 1e-10}, {0.0, 0.0, 1.0});
}

TEST(BatchTransient, SparseLanesMatchScalarWithinTolerance) {
  // 60 sections -> system size 62 >= kSparseAutoThreshold: all lanes run
  // the sparse engine, lanes > 0 adopting lane 0's symbolic analysis.
  constexpr std::size_t kSections = 60;
  const core::Pwl drive = step_drive(1e-9);

  TransientOptions options;
  options.t_stop = 10e-9;
  options.dt_max = 0.25e-9;
  options.fixed_grid = true;

  std::vector<Ladder> lanes(3);
  std::vector<Circuit*> circuits;
  for (std::size_t k = 0; k < lanes.size(); ++k) {
    build_ladder(lanes[k], kSections, 1.0 + 0.1 * static_cast<double>(k),
                 drive);
    circuits.push_back(&lanes[k].circuit);
  }
  const auto batch = transient_batch(circuits, options);
  ASSERT_EQ(batch.size(), lanes.size());
  EXPECT_GT(batch[0].stats().sp_solves, 0u) << "expected the sparse engine";

  for (std::size_t k = 0; k < lanes.size(); ++k) {
    Ladder twin;
    build_ladder(twin, kSections, 1.0 + 0.1 * static_cast<double>(k), drive);
    const auto scalar = transient(twin.circuit, options);

    ASSERT_EQ(scalar.num_points(), batch[k].num_points())
        << "lane " << k << ": accepted-step sequences diverged";
    const std::string tail = twin.circuit.node_name(twin.tail);
    const auto& expect = scalar.voltage_samples(tail);
    const auto& actual = batch[k].voltage_samples(tail);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_NEAR(expect[i], actual[i], 1e-6)
          << "lane " << k << " sample " << i;
    }
  }
}

TEST(BatchTransient, DivergentBreakpointsUseTheUnionGrid) {
  // Lanes whose sources switch at different instants still run in
  // lock-step: the engine plans on the union of all lanes' breakpoints.
  // A scalar rerun of one lane reproduces its batch result bit-for-bit
  // only when handed the other lane's breakpoints via extra_breakpoints.
  TransientOptions options;
  options.t_stop = 10e-9;
  options.dt_max = 0.5e-9;
  options.fixed_grid = true;

  std::vector<Ladder> lanes(2);
  build_ladder(lanes[0], 4, 1.0, step_drive(2e-9));
  build_ladder(lanes[1], 4, 1.0, step_drive(5.3e-9));
  std::vector<Circuit*> circuits{&lanes[0].circuit, &lanes[1].circuit};
  const auto batch = transient_batch(circuits, options);

  for (std::size_t k = 0; k < lanes.size(); ++k) {
    Ladder twin;
    build_ladder(twin, 4, 1.0, step_drive(k == 0 ? 2e-9 : 5.3e-9));
    TransientOptions scalar_options = options;
    // The *other* lane's switch instants, which the union grid includes.
    const double other_edge = k == 0 ? 5.3e-9 : 2e-9;
    scalar_options.extra_breakpoints = {other_edge, other_edge + 1e-10};
    const auto scalar = transient(twin.circuit, scalar_options);

    ASSERT_EQ(scalar.num_points(), batch[k].num_points()) << "lane " << k;
    const std::string tail = twin.circuit.node_name(twin.tail);
    const auto& expect = scalar.voltage_samples(tail);
    const auto& actual = batch[k].voltage_samples(tail);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      ASSERT_EQ(expect[i], actual[i]) << "lane " << k << " sample " << i;
    }
  }
}

// ------------------------------------------------------------ error paths

TEST(BatchTransient, RequiresFixedGrid) {
  Ladder lane;
  build_ladder(lane, 2, 1.0, step_drive(1e-9));
  std::vector<Circuit*> circuits{&lane.circuit};
  TransientOptions options;
  options.t_stop = 1e-9;
  EXPECT_THROW(transient_batch(circuits, options), std::invalid_argument);
}

TEST(BatchTransient, RejectsOnStepCallback) {
  Ladder lane;
  build_ladder(lane, 2, 1.0, step_drive(1e-9));
  std::vector<Circuit*> circuits{&lane.circuit};
  TransientOptions options;
  options.t_stop = 1e-9;
  options.fixed_grid = true;
  options.on_step = [](double, std::span<const double>) {};
  EXPECT_THROW(transient_batch(circuits, options), std::invalid_argument);
}

TEST(BatchTransient, RejectsTopologyMismatch) {
  Ladder a;
  Ladder b;
  build_ladder(a, 2, 1.0, step_drive(1e-9));
  build_ladder(b, 3, 1.0, step_drive(1e-9));  // different system size
  std::vector<Circuit*> circuits{&a.circuit, &b.circuit};
  TransientOptions options;
  options.t_stop = 1e-9;
  options.fixed_grid = true;
  EXPECT_THROW(transient_batch(circuits, options), std::invalid_argument);
}

TEST(BatchTransient, EmptyBatchReturnsEmpty) {
  TransientOptions options;
  options.t_stop = 1e-9;
  options.fixed_grid = true;
  EXPECT_TRUE(transient_batch({}, options).empty());
}

// --------------------------------------------- SolverKind::kAuto boundary

/// System size of a `sections`-stage ladder is sections + 2 (input node,
/// stage nodes, one source branch); pick sections so the boundary sits
/// exactly at kSparseAutoThreshold.
std::size_t ladder_sections_for_system_size(std::size_t system_size) {
  return system_size - 2;
}

TEST(SolverAuto, SparseKicksInExactlyAtThreshold) {
  for (const std::size_t system_size :
       {kSparseAutoThreshold - 1, kSparseAutoThreshold,
        kSparseAutoThreshold + 1}) {
    Ladder lane;
    build_ladder(lane, ladder_sections_for_system_size(system_size), 1.0,
                 step_drive(1e-9));
    ASSERT_EQ(lane.circuit.system_size(), system_size);
    TransientOptions options;
    options.t_stop = 4e-9;
    options.dt_max = 0.5e-9;
    options.fixed_grid = true;
    const auto result = transient(lane.circuit, options);
    const bool expect_sparse = system_size >= kSparseAutoThreshold;
    EXPECT_EQ(result.stats().sp_solves > 0, expect_sparse)
        << "system size " << system_size;
    EXPECT_EQ(result.stats().lu_solves > 0, true);
  }
}

}  // namespace
}  // namespace samurai::spice
