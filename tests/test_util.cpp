#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/cli.hpp"
#include "util/grid.hpp"
#include "util/table.hpp"

namespace samurai::util {
namespace {

// ---------------------------------------------------------------- Table

TEST(Table, PrintsAlignedColumnsAndRule) {
  Table table({"name", "value"});
  table.add_row({std::string("x"), 1.5});
  table.add_row({std::string("longer"), 2.25});
  std::ostringstream oss;
  table.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({1.0}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table table({"a,b", "c"});
  table.add_row({std::string("he said \"hi\""), 1LL});
  std::ostringstream oss;
  table.write_csv(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, IntegerCellsRenderWithoutDecimals) {
  Table table({"n"});
  table.add_row({42LL});
  std::ostringstream oss;
  table.write_csv(oss);
  EXPECT_NE(oss.str().find("42\n"), std::string::npos);
}

// ----------------------------------------------------------------- grids

TEST(Grid, LinspaceEndpointsAndSpacing) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[1], 0.25);
}

TEST(Grid, LinspaceSinglePoint) {
  const auto g = linspace(3.0, 9.0, 1);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g[0], 3.0);
}

TEST(Grid, LinspaceZeroThrows) {
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Grid, LogspaceIsGeometric) {
  const auto g = logspace(1.0, 1000.0, 4);
  ASSERT_EQ(g.size(), 4u);
  EXPECT_NEAR(g[0], 1.0, 1e-12);
  EXPECT_NEAR(g[1], 10.0, 1e-9);
  EXPECT_NEAR(g[3], 1000.0, 1e-6);
}

TEST(Grid, LogspaceRejectsNonPositive) {
  EXPECT_THROW(logspace(0.0, 10.0, 3), std::invalid_argument);
  EXPECT_THROW(logspace(-1.0, 10.0, 3), std::invalid_argument);
}

TEST(Grid, InterpLinearInteriorAndClamping) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 10.0, 0.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 5.0), 0.0);
}

TEST(Grid, SummarizeStats) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Grid, SummarizeEmpty) {
  const auto s = summarize(std::span<const double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Grid, TrapezoidIntegratesLine) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0};  // y = x
  EXPECT_DOUBLE_EQ(trapezoid(xs, ys), 2.0);
}

// ------------------------------------------------------------------- Cli

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "1.5", "pos1", "--beta=hello", "--flag"};
  Cli cli(6, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 1.5);
  EXPECT_EQ(cli.get_string("beta", ""), "hello");
  EXPECT_TRUE(cli.has("flag"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_EQ(cli.get_int("n", 7), 7);
  EXPECT_EQ(cli.get_seed("seed", 99u), 99u);
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, BadNumberThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_double("n", 0.0), std::invalid_argument);
}

TEST(Cli, CountRejectsNonPositiveValues) {
  const char* argv[] = {"prog", "--reps=0", "--passes=-3", "--ok=2"};
  Cli cli(4, argv);
  EXPECT_THROW(cli.get_count("reps", 5), std::invalid_argument);
  EXPECT_THROW(cli.get_count("passes", 5), std::invalid_argument);
  EXPECT_EQ(cli.get_count("ok", 5), 2);
  EXPECT_EQ(cli.get_count("absent", 5), 5);
}

TEST(Cli, HexSeedParses) {
  const char* argv[] = {"prog", "--seed=0xff"};
  Cli cli(2, argv);
  EXPECT_EQ(cli.get_seed("seed", 0), 255u);
}

// ------------------------------------------------------------ ascii plot

TEST(AsciiPlot, RendersSeriesAndLegend) {
  Series s;
  s.name = "line";
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  std::ostringstream oss;
  PlotOptions options;
  options.title = "Parabola";
  plot(oss, {s}, options);
  const std::string out = oss.str();
  EXPECT_NE(out.find("Parabola"), std::string::npos);
  EXPECT_NE(out.find("* = line"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlot, LogAxesSkipNonPositive) {
  Series s;
  s.name = "psd";
  s.x = {0.0, 1.0, 10.0, 100.0};
  s.y = {-1.0, 1.0, 0.1, 0.01};
  std::ostringstream oss;
  PlotOptions options;
  options.log_x = true;
  options.log_y = true;
  plot(oss, {s}, options);
  EXPECT_NE(oss.str().find('*'), std::string::npos);
}

TEST(AsciiPlot, EmptyDataReportsGracefully) {
  std::ostringstream oss;
  plot(oss, {}, PlotOptions{});
  EXPECT_NE(oss.str().find("no plottable data"), std::string::npos);
}

}  // namespace
}  // namespace samurai::util
