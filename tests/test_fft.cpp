#include "signal/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace samurai::signal {
namespace {

TEST(Fft, SizeMustBePowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_THROW(fft(data), std::invalid_argument);
  std::vector<std::complex<double>> empty;
  EXPECT_THROW(fft(empty), std::invalid_argument);
}

TEST(Fft, ImpulseTransformsToFlatSpectrum) {
  std::vector<std::complex<double>> data(16);
  data[0] = 1.0;
  fft(data);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, DcTransformsToFirstBin) {
  std::vector<std::complex<double>> data(8, 1.0);
  fft(data);
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) EXPECT_NEAR(std::abs(data[k]), 0.0, 1e-12);
}

TEST(Fft, SinusoidPeaksAtItsBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<std::complex<double>> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(bin * i) /
                       static_cast<double>(n));
  }
  fft(data);
  EXPECT_NEAR(std::abs(data[bin]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[n - bin]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(data[1]), 0.0, 1e-9);
}

TEST(Fft, InverseRoundTrip) {
  std::vector<std::complex<double>> data(32);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {std::cos(0.3 * static_cast<double>(i)),
               std::sin(0.7 * static_cast<double>(i))};
  }
  const auto original = data;
  fft(data);
  ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-12);
  }
}

TEST(Fft, ParsevalHolds) {
  std::vector<std::complex<double>> data(128);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::exp(-0.05 * static_cast<double>(i));
  }
  double time_energy = 0.0;
  for (const auto& c : data) time_energy += std::norm(c);
  fft(data);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(data.size()), time_energy,
              1e-9 * time_energy);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Fft, RfftZeroPadsAndMatchesComplex) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const auto spectrum = rfft(x);
  ASSERT_EQ(spectrum.size(), 4u);
  EXPECT_NEAR(spectrum[0].real(), 6.0, 1e-12);  // DC = sum
  EXPECT_THROW(rfft(x, 2), std::invalid_argument);
  EXPECT_THROW(rfft(x, 5), std::invalid_argument);
}

}  // namespace
}  // namespace samurai::signal
