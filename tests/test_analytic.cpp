#include "signal/analytic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "physics/constants.hpp"
#include "util/grid.hpp"

namespace samurai::signal {
namespace {

TEST(Analytic, FillProbabilityAndVariance) {
  const RtsParams p{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(rts_fill_probability(p), 0.75);
  EXPECT_DOUBLE_EQ(rts_variance(p), 4.0 * 0.75 * 0.25);
  EXPECT_THROW(rts_fill_probability({0.0, 0.0, 1.0}), std::invalid_argument);
}

TEST(Analytic, AutocovarianceDecaysWithTotalRate) {
  const RtsParams p{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(rts_autocovariance(p, 0.0), rts_variance(p));
  EXPECT_NEAR(rts_autocovariance(p, 0.5) / rts_variance(p), std::exp(-2.0),
              1e-12);
  // Even in τ.
  EXPECT_DOUBLE_EQ(rts_autocovariance(p, 0.3), rts_autocovariance(p, -0.3));
}

TEST(Analytic, PsdIntegratesToVariance) {
  const RtsParams p{1000.0, 500.0, 3.0};
  const auto freqs = util::logspace(1e-2, 1e8, 20000);
  std::vector<double> psd;
  psd.reserve(freqs.size());
  for (double f : freqs) psd.push_back(rts_psd(p, f));
  const double integral = util::trapezoid(freqs, psd);
  EXPECT_NEAR(integral / rts_variance(p), 1.0, 0.01);
}

TEST(Analytic, PsdCornerFrequency) {
  const RtsParams p{2000.0, 2000.0, 1.0};
  const double corner = (p.lambda_c + p.lambda_e) / (2.0 * std::numbers::pi);
  EXPECT_NEAR(rts_psd(p, corner) / rts_psd(p, 1e-3), 0.5, 1e-6);
}

TEST(Analytic, MultiTrapSuperposition) {
  const std::vector<RtsParams> traps = {{100.0, 100.0, 1.0},
                                        {1e4, 1e4, 0.5},
                                        {1e6, 1e6, 0.25}};
  const double f = 1234.0;
  double sum = 0.0;
  for (const auto& t : traps) sum += rts_psd(t, f);
  EXPECT_DOUBLE_EQ(multi_rts_psd(traps, f), sum);
  double acf_sum = 0.0;
  for (const auto& t : traps) acf_sum += rts_autocovariance(t, 1e-5);
  EXPECT_DOUBLE_EQ(multi_rts_autocovariance(traps, 1e-5), acf_sum);
}

TEST(Analytic, ThermalNoiseFloor) {
  // S = (8/3) k T g_m.
  const double s = thermal_noise_psd(300.0, 1e-3);
  EXPECT_NEAR(s, (8.0 / 3.0) * physics::kBoltzmann * 300.0 * 1e-3, 1e-30);
}

TEST(Analytic, ManyTrapsApproachOneOverF) {
  // A log-uniform spread of trap rates over many decades superposes into
  // ~1/f — the classic result the paper's Fig. 3 (left) relies on.
  std::vector<RtsParams> traps;
  for (int d = 0; d < 60; ++d) {
    const double rate = std::pow(10.0, 1.0 + 6.0 * d / 59.0);
    traps.push_back({rate, rate, 1.0});
  }
  const auto freqs = util::logspace(1e2, 1e5, 40);
  std::vector<double> psd;
  for (double f : freqs) psd.push_back(multi_rts_psd(traps, f));
  const auto fit = fit_power_law(freqs, psd);
  EXPECT_NEAR(fit.slope, 1.0, 0.1);
  EXPECT_LT(fit.rms_log_error, 0.1);
}

TEST(Analytic, PowerLawFitRecoversSyntheticLaw) {
  const auto freqs = util::logspace(1.0, 1e4, 50);
  std::vector<double> psd;
  for (double f : freqs) psd.push_back(7.5 / std::pow(f, 1.3));
  const auto fit = fit_power_law(freqs, psd);
  EXPECT_NEAR(fit.slope, 1.3, 1e-6);
  EXPECT_NEAR(fit.amplitude, 7.5, 1e-4);
  EXPECT_NEAR(fit.rms_log_error, 0.0, 1e-9);
}

TEST(Analytic, ConstrainedFitForcesSlopeOne) {
  const auto freqs = util::logspace(1.0, 1e4, 50);
  std::vector<double> psd;
  for (double f : freqs) psd.push_back(3.0 / std::pow(f, 2.0));
  const auto fit = fit_power_law(freqs, psd, true);
  EXPECT_DOUBLE_EQ(fit.slope, 1.0);
  EXPECT_GT(fit.rms_log_error, 0.5);  // bad fit is reported as bad
}

TEST(Analytic, FitRejectsDegenerateInputs) {
  EXPECT_THROW(fit_power_law({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({-1.0, -2.0}, {1.0, 1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace samurai::signal
