// Additional methodology coverage: selective injection, the margin
// operating regime, amplitude capping end-to-end, and extra node loading.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/rtn_generator.hpp"
#include "physics/constants.hpp"
#include "sram/methodology.hpp"

namespace samurai::sram {
namespace {

MethodologyConfig margin_config() {
  MethodologyConfig config;
  config.tech = physics::technology("90nm");
  config.tech.v_dd = 0.9;
  config.sizing.extra_node_cap = 40e-15;
  config.timing.period = 1e-9;
  config.ops = ops_from_bits({1, 0});
  config.seed = 5;
  config.rtn_scale = 30.0;
  return config;
}

TEST(MethodologyExtras, MarginRegimeStillWritesNominally) {
  const auto result = run_methodology(margin_config());
  EXPECT_FALSE(result.nominal_report.any_error);
}

TEST(MethodologyExtras, ExtraNodeCapSlowsTheWrite) {
  MethodologyConfig fast = margin_config();
  fast.sizing.extra_node_cap = 0.0;
  MethodologyConfig slow = margin_config();  // 40 fF
  const auto fast_run = run_nominal(fast);
  const auto slow_run = run_nominal(slow);
  // Q's 50% crossing in slot 0 comes later with the heavier node.
  auto crossing = [&](const NominalRun& run) {
    const auto q = run.result.voltage_samples(run.handles.q);
    const auto& ts = run.result.times();
    for (std::size_t i = 1; i < ts.size(); ++i) {
      if (q[i - 1] < 0.45 && q[i] >= 0.45) return ts[i];
    }
    return ts.back();
  };
  EXPECT_GT(crossing(slow_run), crossing(fast_run));
}

TEST(MethodologyExtras, SelectiveInjectionIsolatesCancellation) {
  // Injecting into all six devices partially *cancels* (RTN weakens the
  // devices aiding a write and those opposing it alike), so a single
  // device's injection can deviate more than the full set. Verify the
  // subset run differs from the full run, and that the cancellation is
  // visible: M1-only deviation is not smaller than the all-device one.
  MethodologyConfig all = margin_config();
  all.rtn_scale = 60.0;
  MethodologyConfig only_m1 = all;
  only_m1.rtn_devices = {"M1"};
  const auto run_all = run_methodology(all);
  const auto run_m1 = run_methodology(only_m1);

  auto deviation = [&](const MethodologyResult& run) {
    double sum = 0.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      const double t = run.pattern.t_end * (i + 0.5) / n;
      const double d = run.with_rtn.voltage_at(run.q_node, t) -
                       run.nominal.voltage_at(run.q_node, t);
      sum += d * d;
    }
    return std::sqrt(sum / n);
  };
  const double dev_all = deviation(run_all);
  const double dev_m1 = deviation(run_m1);
  EXPECT_GT(dev_all, 0.0);
  EXPECT_GT(dev_m1, 0.0);
  EXPECT_GT(std::abs(dev_m1 - dev_all), 0.05 * dev_all);  // genuinely different
  EXPECT_GT(dev_m1, 0.5 * dev_all);  // the cancellation effect
}

TEST(MethodologyExtras, SelectiveInjectionUnknownNameIsInert) {
  MethodologyConfig config = margin_config();
  config.rtn_devices = {"M9"};  // matches nothing: no injection at all
  const auto result = run_methodology(config);
  double max_dev = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double t = result.pattern.t_end * (i + 0.5) / 200;
    max_dev = std::max(max_dev,
                       std::abs(result.with_rtn.voltage_at(result.q_node, t) -
                                result.nominal.voltage_at(result.q_node, t)));
  }
  EXPECT_LT(max_dev, 1e-3);
}

TEST(MethodologyExtras, AmplitudeCapBoundsTraceEverywhere) {
  const auto result = run_methodology(margin_config());
  for (const auto& entry : result.rtn) {
    // ΔI <= q v_sat / L per trap; the trace is bounded by
    // scale * cap * trap_count at every sample.
    const double cap = physics::kElementaryCharge * 1.0e5 /
                       physics::technology("90nm").l_min;
    const double bound =
        30.0 * cap * static_cast<double>(entry.traps.size()) * (1.0 + 1e-9);
    for (double v : entry.i_rtn.values()) {
      EXPECT_LE(std::abs(v), bound) << entry.name;
    }
  }
}

TEST(MethodologyExtras, RtnScaleZeroMatchesNominalAtSlotEnds) {
  // With zero scale the injected sources carry no current; the two runs
  // follow different adaptive time grids (edge interpolation differs by
  // mV), but the settled values at every slot end must coincide.
  MethodologyConfig config = margin_config();
  config.rtn_scale = 0.0;
  const auto result = run_methodology(config);
  for (std::size_t k = 0; k < config.ops.size(); ++k) {
    const double t =
        result.pattern.slot_start(k) + 0.999 * config.timing.period;
    // 5 mV: the margin cell is still regenerating at the slot end, so
    // LTE-level grid differences between the two runs are visible.
    EXPECT_NEAR(result.with_rtn.voltage_at(result.q_node, t),
                result.nominal.voltage_at(result.q_node, t), 5e-3)
        << "slot " << k;
  }
}

}  // namespace
}  // namespace samurai::sram
