// Trap state trajectories: the output of Algorithm 1 for one trap.
#pragma once

#include <cstddef>
#include <vector>

#include "core/waveform.hpp"
#include "physics/trap.hpp"

namespace samurai::core {

/// The state history of one trap over [t0, tf]: the initial state plus the
/// strictly increasing times at which it toggled. Compact (every event is a
/// toggle, so states need not be stored) and exact (no sampling grid).
class TrapTrajectory {
 public:
  TrapTrajectory() = default;
  TrapTrajectory(double t0, double tf, physics::TrapState init_state,
                 std::vector<double> switch_times);

  double t0() const noexcept { return t0_; }
  double tf() const noexcept { return tf_; }
  physics::TrapState initial_state() const noexcept { return init_; }
  const std::vector<double>& switch_times() const noexcept { return switches_; }
  std::size_t num_switches() const noexcept { return switches_.size(); }

  /// State at time t (right-continuous at switch instants).
  physics::TrapState state_at(double t) const;

  /// Fraction of [t0, tf] spent filled.
  double filled_fraction() const;

  /// Dwell durations, split by the state being dwelt in. The first and
  /// last (censored) dwells are excluded when `exclude_censored` is true.
  struct Dwells {
    std::vector<double> empty;
    std::vector<double> filled;
  };
  Dwells dwell_times(bool exclude_censored = true) const;

  /// Render as a 0/1 StepTrace (for plotting / occupancy aggregation).
  StepTrace to_step_trace() const;

 private:
  double t0_ = 0.0;
  double tf_ = 0.0;
  physics::TrapState init_ = physics::TrapState::kEmpty;
  std::vector<double> switches_;
};

/// Aggregate per-trap trajectories into the device occupancy count
/// N_filled(t) (the quantity plotted in paper Fig. 8 (b),(c)).
StepTrace aggregate_filled_count(const std::vector<TrapTrajectory>& trajectories);

}  // namespace samurai::core
