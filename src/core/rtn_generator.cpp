#include "core/rtn_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "physics/constants.hpp"
#include "util/grid.hpp"
#include "util/thread_pool.hpp"

namespace samurai::core {

double rtn_amplitude(const physics::MosDevice& device, double v_gs, double i_d) {
  const double carriers = device.carrier_count(v_gs);
  // Eq. 3's ΔI = I_d/(W·L·N) diverges when the charge-sheet carrier count
  // collapses (subthreshold, switching edges) while I_d is still finite.
  // Writing I_d = W Q_inv v shows ΔI = q·v/L, which is bounded by the
  // saturation velocity: cap ΔI at q·v_sat/L (~0.2 uA at 90 nm).
  constexpr double kSaturationVelocity = 1.0e5;  // m/s
  const double cap = physics::kElementaryCharge * kSaturationVelocity /
                     device.geometry().length;
  return std::min(std::abs(i_d) / std::max(carriers, 1.0), cap);
}

std::vector<double> build_rtn_grid(double t0, double tf,
                                   std::size_t envelope_samples,
                                   const std::vector<double>& switch_times) {
  const std::size_t env_n = std::max<std::size_t>(envelope_samples, 2);
  std::vector<double> grid = util::linspace(t0, tf, env_n);
  for (double t_switch : switch_times) {
    if (t_switch <= t0 || t_switch >= tf) continue;
    // The twin is the closest representable time before the switch, so it
    // can never land at or before an earlier grid/switch point (closer
    // switches are not representable); a twin that still fails to be
    // interior — a switch adjacent to t0 — is dropped.
    const double twin = std::nextafter(t_switch, t0);
    if (twin > t0) grid.push_back(twin);
    grid.push_back(t_switch);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

namespace {

/// Common tail of both generators: aggregate the occupancy and render
/// Eq. 3 as a PWL waveform — the smooth envelope sampled on a uniform
/// grid with every occupancy switch inserted exactly (plus a twin point
/// just before it so the step survives PWL interpolation). The grid is
/// sorted, so the occupancy is advanced with a monotone cursor instead of
/// a binary search per point (same semantics as StepTrace::eval: value at
/// the last switch time <= t).
template <typename AmplitudeFn>
void render_trace(DeviceRtnResult& result, const RtnGeneratorOptions& options,
                  AmplitudeFn&& amplitude_at) {
  result.n_filled = aggregate_filled_count(result.trajectories);
  const std::vector<double> grid =
      build_rtn_grid(options.t0, options.tf, options.envelope_samples,
                     result.n_filled.times());

  const auto& switch_times = result.n_filled.times();
  const auto& counts = result.n_filled.values();
  std::size_t cursor = 0;
  double occupancy = result.n_filled.initial_value();
  Pwl trace;
  double prev_t = options.t0 - 1.0;
  for (double t : grid) {
    if (!(t > prev_t)) continue;
    while (cursor < switch_times.size() && switch_times[cursor] <= t) {
      occupancy = counts[cursor++];
    }
    trace.append(t, options.amplitude_scale * amplitude_at(t) * occupancy);
    prev_t = t;
  }
  result.i_rtn = std::move(trace);
}

/// Per-trap fan-out shared by both generators: trap i draws only from
/// rng.split(i + 1) and writes only slot i, so the result is bit-identical
/// for any thread count; the sampler stats are reduced in index order.
template <typename PropensityOf>
void simulate_traps(DeviceRtnResult& result,
                    const std::vector<physics::Trap>& traps,
                    util::Rng& rng, const RtnGeneratorOptions& options,
                    PropensityOf&& propensity_of) {
  result.trajectories.resize(traps.size());
  std::vector<UniformisationStats> trap_stats(traps.size());
  util::parallel_for_indexed(
      traps.size(),
      [&](std::size_t i) {
        util::Rng trap_rng = rng.split(i + 1);
        result.trajectories[i] = simulate_trap(
            propensity_of(i), options.t0, options.tf, traps[i].init_state,
            trap_rng, options.uniformisation, &trap_stats[i]);
      },
      options.threads);
  for (const auto& stats : trap_stats) result.stats.merge(stats);
}

}  // namespace

DeviceRtnResult generate_device_rtn(const physics::SrhModel& model,
                                    const physics::MosDevice& device,
                                    const std::vector<physics::Trap>& traps,
                                    const Pwl& v_gs, const Pwl& i_d,
                                    util::Rng& rng,
                                    const RtnGeneratorOptions& options) {
  if (!(options.tf > options.t0)) {
    throw std::invalid_argument("generate_device_rtn: tf <= t0");
  }
  // The schedule depends only on the waveform: build it once and let each
  // trap pay only its own SRH tabulation.
  const BiasSchedule schedule =
      BiasSchedule::build(v_gs, options.max_bias_step);
  DeviceRtnResult result;
  simulate_traps(result, traps, rng, options, [&](std::size_t i) {
    return BiasPropensity(model, traps[i], schedule);
  });
  render_trace(result, options, [&](double t) {
    return rtn_amplitude(device, v_gs.eval(t), i_d.eval(t));
  });
  return result;
}

DeviceRtnWorkload::DeviceRtnWorkload(const physics::SrhModel& model,
                                     const physics::MosDevice& device,
                                     std::vector<physics::Trap> traps,
                                     Pwl v_gs, Pwl i_d, double max_bias_step)
    : traps_(std::move(traps)) {
  const BiasSchedule schedule = BiasSchedule::build(v_gs, max_bias_step);
  propensities_.reserve(traps_.size());
  for (const auto& trap : traps_) {
    propensities_.emplace_back(model, trap, schedule);
  }
  // Tabulate the Eq. 3 amplitude on the schedule grid merged with I_d's
  // breakpoints: exact at every tabulation point, linear in between. The
  // schedule grid resolves V_gs to max_bias_step, so the carrier count —
  // the expensive, bias-driven factor — is sampled at least that finely.
  std::vector<double> grid = schedule.times;
  grid.insert(grid.end(), i_d.times().begin(), i_d.times().end());
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  std::vector<double> amps;
  amps.reserve(grid.size());
  for (double t : grid) {
    amps.push_back(rtn_amplitude(device, v_gs.eval(t), i_d.eval(t)));
  }
  amplitude_ = Pwl(std::move(grid), std::move(amps));
}

DeviceRtnResult DeviceRtnWorkload::generate(
    util::Rng& rng, const RtnGeneratorOptions& options) const {
  if (!(options.tf > options.t0)) {
    throw std::invalid_argument("DeviceRtnWorkload: tf <= t0");
  }
  DeviceRtnResult result;
  simulate_traps(result, traps_, rng, options,
                 [&](std::size_t i) -> const BiasPropensity& {
                   return propensities_[i];
                 });
  // Pwl::eval's hint cursor makes the monotone render walk O(1) per point.
  render_trace(result, options,
               [&](double t) { return amplitude_.eval(t); });
  return result;
}

}  // namespace samurai::core
