#include "core/rtn_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "physics/constants.hpp"
#include "util/grid.hpp"
#include "util/thread_pool.hpp"

namespace samurai::core {

double rtn_amplitude(const physics::MosDevice& device, double v_gs, double i_d) {
  const double carriers = device.carrier_count(v_gs);
  // Eq. 3's ΔI = I_d/(W·L·N) diverges when the charge-sheet carrier count
  // collapses (subthreshold, switching edges) while I_d is still finite.
  // Writing I_d = W Q_inv v shows ΔI = q·v/L, which is bounded by the
  // saturation velocity: cap ΔI at q·v_sat/L (~0.2 uA at 90 nm).
  constexpr double kSaturationVelocity = 1.0e5;  // m/s
  const double cap = physics::kElementaryCharge * kSaturationVelocity /
                     device.geometry().length;
  return std::min(std::abs(i_d) / std::max(carriers, 1.0), cap);
}

std::vector<double> build_rtn_grid(double t0, double tf,
                                   std::size_t envelope_samples,
                                   const std::vector<double>& switch_times) {
  const std::size_t env_n = std::max<std::size_t>(envelope_samples, 2);
  std::vector<double> grid = util::linspace(t0, tf, env_n);
  for (double t_switch : switch_times) {
    if (t_switch <= t0 || t_switch >= tf) continue;
    // The twin is the closest representable time before the switch, so it
    // can never land at or before an earlier grid/switch point (closer
    // switches are not representable); a twin that still fails to be
    // interior — a switch adjacent to t0 — is dropped.
    const double twin = std::nextafter(t_switch, t0);
    if (twin > t0) grid.push_back(twin);
    grid.push_back(t_switch);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

DeviceRtnResult generate_device_rtn(const physics::SrhModel& model,
                                    const physics::MosDevice& device,
                                    const std::vector<physics::Trap>& traps,
                                    const Pwl& v_gs, const Pwl& i_d,
                                    util::Rng& rng,
                                    const RtnGeneratorOptions& options) {
  if (!(options.tf > options.t0)) {
    throw std::invalid_argument("generate_device_rtn: tf <= t0");
  }
  DeviceRtnResult result;
  result.trajectories.resize(traps.size());
  // Per-trap fan-out: trap i draws only from rng.split(i + 1) and writes
  // only slot i, so the result is bit-identical for any thread count; the
  // sampler stats are reduced in index order afterwards.
  std::vector<UniformisationStats> trap_stats(traps.size());
  util::parallel_for_indexed(
      traps.size(),
      [&](std::size_t i) {
        util::Rng trap_rng = rng.split(i + 1);
        const BiasPropensity propensity(model, traps[i], v_gs,
                                        options.max_bias_step);
        result.trajectories[i] = simulate_trap(
            propensity, options.t0, options.tf, traps[i].init_state, trap_rng,
            options.uniformisation, &trap_stats[i]);
      },
      options.threads);
  for (const auto& stats : trap_stats) result.stats.merge(stats);
  result.n_filled = aggregate_filled_count(result.trajectories);

  // Render Eq. 3 as a PWL waveform: sample the smooth envelope on a
  // uniform grid and insert every occupancy switch exactly (with a twin
  // point just before it so the step stays a step after PWL
  // interpolation).
  const std::vector<double> grid = build_rtn_grid(
      options.t0, options.tf, options.envelope_samples, result.n_filled.times());

  Pwl trace;
  double prev_t = options.t0 - 1.0;
  for (double t : grid) {
    if (!(t > prev_t)) continue;
    const double amp = rtn_amplitude(device, v_gs.eval(t), i_d.eval(t));
    const double value =
        options.amplitude_scale * amp * result.n_filled.eval(t);
    trace.append(t, value);
    prev_t = t;
  }
  result.i_rtn = std::move(trace);
  return result;
}

}  // namespace samurai::core
