#include "core/rtn_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "physics/constants.hpp"
#include "util/grid.hpp"

namespace samurai::core {

double rtn_amplitude(const physics::MosDevice& device, double v_gs, double i_d) {
  const double carriers = device.carrier_count(v_gs);
  // Eq. 3's ΔI = I_d/(W·L·N) diverges when the charge-sheet carrier count
  // collapses (subthreshold, switching edges) while I_d is still finite.
  // Writing I_d = W Q_inv v shows ΔI = q·v/L, which is bounded by the
  // saturation velocity: cap ΔI at q·v_sat/L (~0.2 uA at 90 nm).
  constexpr double kSaturationVelocity = 1.0e5;  // m/s
  const double cap = physics::kElementaryCharge * kSaturationVelocity /
                     device.geometry().length;
  return std::min(std::abs(i_d) / std::max(carriers, 1.0), cap);
}

DeviceRtnResult generate_device_rtn(const physics::SrhModel& model,
                                    const physics::MosDevice& device,
                                    const std::vector<physics::Trap>& traps,
                                    const Pwl& v_gs, const Pwl& i_d,
                                    util::Rng& rng,
                                    const RtnGeneratorOptions& options) {
  if (!(options.tf > options.t0)) {
    throw std::invalid_argument("generate_device_rtn: tf <= t0");
  }
  DeviceRtnResult result;
  result.trajectories.reserve(traps.size());
  for (std::size_t i = 0; i < traps.size(); ++i) {
    util::Rng trap_rng = rng.split(i + 1);
    const BiasPropensity propensity(model, traps[i], v_gs,
                                    options.max_bias_step);
    result.trajectories.push_back(
        simulate_trap(propensity, options.t0, options.tf, traps[i].init_state,
                      trap_rng, options.uniformisation, &result.stats));
  }
  result.n_filled = aggregate_filled_count(result.trajectories);

  // Render Eq. 3 as a PWL waveform: sample the smooth envelope on a
  // uniform grid and insert every occupancy switch exactly (with a twin
  // point just before it so the step stays a step after PWL
  // interpolation).
  const std::size_t env_n = std::max<std::size_t>(options.envelope_samples, 2);
  std::vector<double> grid = util::linspace(options.t0, options.tf, env_n);
  const double eps = (options.tf - options.t0) * 1e-9;
  for (double t_switch : result.n_filled.times()) {
    if (t_switch <= options.t0 || t_switch >= options.tf) continue;
    grid.push_back(t_switch - eps);
    grid.push_back(t_switch);
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  Pwl trace;
  double prev_t = options.t0 - 1.0;
  for (double t : grid) {
    if (!(t > prev_t)) continue;
    const double amp = rtn_amplitude(device, v_gs.eval(t), i_d.eval(t));
    const double value =
        options.amplitude_scale * amp * result.n_filled.eval(t);
    trace.append(t, value);
    prev_t = t;
  }
  result.i_rtn = std::move(trace);
  return result;
}

}  // namespace samurai::core
