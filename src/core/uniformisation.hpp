// Markov uniformisation — the SAMURAI core (paper §III, Algorithm 1).
//
// A two-state time-inhomogeneous Markov chain with propensities
// λ_c(t), λ_e(t) is simulated *exactly* by:
//   1. generating candidate events from a homogeneous Poisson process of
//      rate λ* >= max_t max(λ_c, λ_e)   (the "uniformised" chain), then
//   2. accepting each candidate with probability λ_next(t)/λ*, where
//      λ_next is the propensity out of the current state at the candidate
//      time (thinning).
// The accepted events are distributed exactly as the original chain's
// transitions (Heidelberger & Nicol 1993; Shanthikumar 1986).
//
// For physical traps λ* = λ_c + λ_e is constant (paper Eq. 1), so the
// bound is tight. For synthetic propensities whose bound varies by orders
// of magnitude over the horizon, `simulate_trap_windowed` re-uniformises
// per window, which is equally exact but draws far fewer rejected
// candidates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/propensity.hpp"
#include "core/trajectory.hpp"
#include "physics/trap.hpp"
#include "util/rng.hpp"

namespace samurai::core {

struct UniformisationOptions {
  /// Optional override of the propensity's own bound (must still be valid).
  std::optional<double> rate_bound;
  /// Multiplied onto the bound; >1 trades extra rejected candidates for
  /// safety margin when using approximate propensity tabulations.
  double bound_safety = 1.0;
  /// Hard cap on candidate events; exceeding it throws (guards against a
  /// mis-specified bound or horizon).
  std::uint64_t max_candidates = 500'000'000;
};

struct UniformisationStats {
  std::uint64_t candidates = 0;  ///< Poisson(λ*) candidates drawn
  std::uint64_t accepted = 0;    ///< candidates that became transitions
};

/// Algorithm 1: simulate one trap over [t0, tf]. Faithful to the paper:
/// exponential inter-candidate times at rate λ*, thinning by λ_next/λ*.
TrapTrajectory simulate_trap(const PropensityFunction& propensity, double t0,
                             double tf, physics::TrapState init_state,
                             util::Rng& rng,
                             const UniformisationOptions& options = {},
                             UniformisationStats* stats = nullptr);

/// Windowed re-uniformisation: split [t0, tf] at `window_boundaries`
/// (strictly increasing, interior points only) and run Algorithm 1 per
/// window with that window's bound. Exactness is preserved because the
/// thinned process restarted at a deterministic time is still the same
/// inhomogeneous chain.
TrapTrajectory simulate_trap_windowed(const PropensityFunction& propensity,
                                      double t0, double tf,
                                      physics::TrapState init_state,
                                      const std::vector<double>& window_boundaries,
                                      util::Rng& rng,
                                      const UniformisationOptions& options = {},
                                      UniformisationStats* stats = nullptr);

/// Reference solution of the chain's master equation
///   dp_filled/dt = λ_c(t) (1 - p_filled) - λ_e(t) p_filled
/// by classic RK4 on `steps` sub-intervals. Used to validate the sampler.
std::vector<double> master_equation_fill_probability(
    const PropensityFunction& propensity, double t0, double tf,
    double p_filled_0, std::size_t steps, std::vector<double>* grid = nullptr);

}  // namespace samurai::core
