// Markov uniformisation — the SAMURAI core (paper §III, Algorithm 1).
//
// A two-state time-inhomogeneous Markov chain with propensities
// λ_c(t), λ_e(t) is simulated *exactly* by:
//   1. generating candidate events from a homogeneous Poisson process of
//      rate λ* >= max_t max(λ_c, λ_e)   (the "uniformised" chain), then
//   2. accepting each candidate with probability λ_next(t)/λ*, where
//      λ_next is the propensity out of the current state at the candidate
//      time (thinning).
// The accepted events are distributed exactly as the original chain's
// transitions (Heidelberger & Nicol 1993; Shanthikumar 1986).
//
// The default sampler refines this with a Lewis–Shedler-style
// *piecewise-constant majorant* (DESIGN.md §11): the propensity supplies a
// per-segment, per-state upper envelope (`PropensityFunction::majorant`),
// and candidates are drawn at the *current state's* segment bound. Between
// accepted events the next transition has hazard λ_s(t), so thinning
// against any dominating piecewise-constant rate is exact (Ogata's
// modified thinning); the expected candidate count drops from max·T to
// ∫λ*_{s(t)}(t)dt — cold segments (a trap pinned by its bias) draw almost
// nothing. The classic fixed-bound path is retained behind
// `UniformisationOptions::use_majorant = false` (or an explicit
// `rate_bound` override) as the regression oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/propensity.hpp"
#include "core/trajectory.hpp"
#include "physics/trap.hpp"
#include "util/rng.hpp"

namespace samurai::core {

struct UniformisationOptions {
  /// Optional override of the propensity's own bound (must still be
  /// valid). Setting it forces the fixed-bound path: an explicit scalar
  /// bound and a piecewise envelope are mutually exclusive requests.
  std::optional<double> rate_bound;
  /// Multiplied onto every bound (fixed or per-segment); >1 trades extra
  /// rejected candidates for safety margin when using approximate
  /// propensity tabulations.
  double bound_safety = 1.0;
  /// Hard cap on candidate events, *total across all windows* of one
  /// simulate call; exceeding it throws (guards against a mis-specified
  /// bound or horizon even when a caller splits the horizon into many
  /// windows).
  std::uint64_t max_candidates = 500'000'000;
  /// Walk the propensity's piecewise-constant majorant (default). false =
  /// one global bound per window, the pre-majorant behaviour.
  bool use_majorant = true;
};

/// Sampler work counters. Merged into a process-wide atomic registry on
/// every simulate call (uniformisation_stats_snapshot) so the campaign
/// runtime can attribute per-shard RTN-generation work without threading
/// state through every sample type — same scheme as spice::SolverStats.
struct UniformisationStats {
  std::uint64_t candidates = 0;   ///< thinning candidates drawn
  std::uint64_t accepted = 0;     ///< candidates that became transitions
  std::uint64_t segments = 0;     ///< majorant segments walked
  std::uint64_t rng_refills = 0;  ///< RNG block refills
  /// ∫λ*(t)dt of the envelope actually walked (the expected candidate
  /// count; per-state bound of the realised trajectory's current state).
  double envelope_integral = 0.0;
  /// What the fixed-bound path would have walked: Σ rate_bound(window) ·
  /// window length (bound_safety included in both integrals).
  double fixed_bound_integral = 0.0;

  /// Expected candidate-reduction factor of the walked envelope over the
  /// fixed bound: fixed_bound_integral / envelope_integral (1.0 when no
  /// envelope work was recorded; the fixed-bound path reports ~1.0).
  double envelope_efficiency() const;

  void merge(const UniformisationStats& other);
  /// Counter-wise `this - other` (for before/after snapshot deltas).
  UniformisationStats since(const UniformisationStats& other) const;
};

/// Process-wide aggregate of every simulate call so far (atomic,
/// thread-safe). Snapshot before/after a work region and diff with
/// UniformisationStats::since to attribute sampler work to that region.
UniformisationStats uniformisation_stats_snapshot();

namespace detail {
void uniformisation_stats_accumulate(const UniformisationStats& stats);
}  // namespace detail

/// Algorithm 1: simulate one trap over [t0, tf]. Faithful to the paper:
/// exponential inter-candidate times at the (segment) bound, thinning by
/// λ_next/λ*. Candidate times are nondecreasing, which lets the
/// BiasPropensity fast path advance a monotone segment cursor instead of
/// binary-searching per candidate.
TrapTrajectory simulate_trap(const PropensityFunction& propensity, double t0,
                             double tf, physics::TrapState init_state,
                             util::Rng& rng,
                             const UniformisationOptions& options = {},
                             UniformisationStats* stats = nullptr);

/// Windowed re-uniformisation: split [t0, tf] at `window_boundaries`
/// (strictly increasing, interior points only) and run Algorithm 1 per
/// window with that window's bound (or majorant). Exactness is preserved
/// because the thinned process restarted at a deterministic time is still
/// the same inhomogeneous chain. The candidate budget spans all windows.
TrapTrajectory simulate_trap_windowed(const PropensityFunction& propensity,
                                      double t0, double tf,
                                      physics::TrapState init_state,
                                      const std::vector<double>& window_boundaries,
                                      util::Rng& rng,
                                      const UniformisationOptions& options = {},
                                      UniformisationStats* stats = nullptr);

/// Reference solution of the chain's master equation
///   dp_filled/dt = λ_c(t) (1 - p_filled) - λ_e(t) p_filled
/// by classic RK4 on `steps` sub-intervals. Used to validate the sampler.
std::vector<double> master_equation_fill_probability(
    const PropensityFunction& propensity, double t0, double tf,
    double p_filled_0, std::size_t steps, std::vector<double>* grid = nullptr);

}  // namespace samurai::core
