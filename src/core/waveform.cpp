#include "core/waveform.hpp"

#include <algorithm>
#include <stdexcept>

namespace samurai::core {

Pwl::Pwl(std::vector<double> times, std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  if (times_.size() != values_.size()) {
    throw std::invalid_argument("Pwl: times/values size mismatch");
  }
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (!(times_[i] > times_[i - 1])) {
      throw std::invalid_argument("Pwl: times must be strictly increasing");
    }
  }
}

Pwl::Pwl(const Pwl& other)
    : hint_(other.hint_.load(std::memory_order_relaxed)),
      times_(other.times_),
      values_(other.values_) {}

Pwl::Pwl(Pwl&& other) noexcept
    : hint_(other.hint_.load(std::memory_order_relaxed)),
      times_(std::move(other.times_)),
      values_(std::move(other.values_)) {}

Pwl& Pwl::operator=(const Pwl& other) {
  if (this != &other) {
    times_ = other.times_;
    values_ = other.values_;
    hint_.store(other.hint_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  return *this;
}

Pwl& Pwl::operator=(Pwl&& other) noexcept {
  if (this != &other) {
    times_ = std::move(other.times_);
    values_ = std::move(other.values_);
    hint_.store(other.hint_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  return *this;
}

Pwl Pwl::constant(double value) { return Pwl({0.0}, {value}); }

void Pwl::append(double t, double v) {
  if (!times_.empty() && !(t > times_.back())) {
    throw std::invalid_argument("Pwl::append: non-increasing time");
  }
  times_.push_back(t);
  values_.push_back(v);
}

double Pwl::eval(double t) const {
  if (times_.empty()) return 0.0;
  if (t <= times_.front()) return values_.front();
  if (t >= times_.back()) return values_.back();
  // Forward-sweep hint: transient loops evaluate at increasing t, so the
  // containing segment is almost always hint_ or hint_+1. Relaxed atomic
  // access: any value in [0, size) gives the same answer, so concurrent
  // readers can race on the cursor without racing on the result.
  std::size_t i = hint_.load(std::memory_order_relaxed);
  if (i >= times_.size() - 1 || times_[i] > t) i = 0;
  if (t >= times_[i] && i + 1 < times_.size() && t <= times_[i + 1]) {
    // fall through with current i
  } else if (i + 2 < times_.size() && t >= times_[i + 1] && t <= times_[i + 2]) {
    ++i;
  } else {
    const auto it = std::upper_bound(times_.begin(), times_.end(), t);
    i = static_cast<std::size_t>(it - times_.begin()) - 1;
  }
  hint_.store(i, std::memory_order_relaxed);
  const double span = times_[i + 1] - times_[i];
  const double alpha = (t - times_[i]) / span;
  return values_[i] + alpha * (values_[i + 1] - values_[i]);
}

std::vector<double> Pwl::sample(std::span<const double> grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double t : grid) out.push_back(eval(t));
  return out;
}

Pwl Pwl::scaled(double factor) const {
  Pwl out = *this;
  for (auto& v : out.values_) v *= factor;
  return out;
}

StepTrace::StepTrace(double initial_value, std::vector<double> times,
                     std::vector<double> values)
    : initial_(initial_value), times_(std::move(times)), values_(std::move(values)) {
  if (times_.size() != values_.size()) {
    throw std::invalid_argument("StepTrace: times/values size mismatch");
  }
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (!(times_[i] > times_[i - 1])) {
      throw std::invalid_argument("StepTrace: times must be strictly increasing");
    }
  }
}

double StepTrace::eval(double t) const {
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  if (it == times_.begin()) return initial_;
  return values_[static_cast<std::size_t>(it - times_.begin()) - 1];
}

std::vector<double> StepTrace::sample(std::span<const double> grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double t : grid) out.push_back(eval(t));
  return out;
}

double StepTrace::time_average(double t0, double t1) const {
  if (!(t1 > t0)) throw std::invalid_argument("StepTrace::time_average: t1 <= t0");
  double integral = 0.0;
  double prev_t = t0;
  double prev_v = eval(t0);
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] <= t0) continue;
    if (times_[i] >= t1) break;
    integral += prev_v * (times_[i] - prev_t);
    prev_t = times_[i];
    prev_v = values_[i];
  }
  integral += prev_v * (t1 - prev_t);
  return integral / (t1 - t0);
}

void StepTrace::to_paper_arrays(double t0, double t1, std::vector<double>& times,
                                std::vector<double>& states) const {
  times.clear();
  states.clear();
  times.push_back(t0);
  states.push_back(eval(t0));
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] <= t0 || times_[i] >= t1) continue;
    times.push_back(times_[i]);
    states.push_back(states.back());  // value just before the step
    times.push_back(times_[i]);
    states.push_back(values_[i]);     // value just after the step
  }
  times.push_back(t1);
  states.push_back(eval(t1));
}

}  // namespace samurai::core
