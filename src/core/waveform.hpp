// Waveform value types shared between SAMURAI and the circuit simulator:
//
//  * `Pwl`       — piecewise-linear waveform (SPICE node voltages, biases,
//                  PWL sources). Continuous, clamped outside its span.
//  * `StepTrace` — right-continuous piecewise-constant trace (trap
//                  occupancy counts, telegraph signals).
#pragma once

#include <atomic>
#include <cstddef>
#include <span>
#include <vector>

namespace samurai::core {

/// Piecewise-linear waveform over strictly increasing time points.
class Pwl {
 public:
  Pwl() = default;
  Pwl(std::vector<double> times, std::vector<double> values);
  // The hint cursor is atomic (it may be updated from concurrent const
  // eval calls), which forfeits the compiler-generated copy/move.
  Pwl(const Pwl& other);
  Pwl(Pwl&& other) noexcept;
  Pwl& operator=(const Pwl& other);
  Pwl& operator=(Pwl&& other) noexcept;

  /// A constant waveform (evaluates to `value` everywhere).
  static Pwl constant(double value);

  double eval(double t) const;
  double front_time() const { return times_.empty() ? 0.0 : times_.front(); }
  double back_time() const { return times_.empty() ? 0.0 : times_.back(); }
  bool is_constant() const { return times_.size() <= 1; }

  const std::vector<double>& times() const noexcept { return times_; }
  const std::vector<double>& values() const noexcept { return values_; }
  std::size_t size() const noexcept { return values_.size(); }

  /// Append a breakpoint; time must exceed the current last time.
  void append(double t, double v);

  /// Sample onto an arbitrary grid.
  std::vector<double> sample(std::span<const double> grid) const;

  /// Pointwise scale (returns a new waveform).
  Pwl scaled(double factor) const;

 private:
  /// Last-segment cache for forward sweeps. `eval` is const but updates
  /// the cursor, and one waveform may be evaluated from many threads (the
  /// Monte-Carlo paths share extracted bias waveforms), so the cursor is a
  /// relaxed atomic: a stale or torn-free concurrent value only changes
  /// where the segment search starts, never the result.
  mutable std::atomic<std::size_t> hint_{0};

  std::vector<double> times_;
  std::vector<double> values_;
};

/// Right-continuous step function: value(i) holds on [time(i), time(i+1)),
/// and value.back() holds from time.back() onward; value is
/// `initial_value` before time.front(). Used for occupancy counts.
class StepTrace {
 public:
  StepTrace() = default;
  StepTrace(double initial_value, std::vector<double> times,
            std::vector<double> values);

  double eval(double t) const;
  double initial_value() const noexcept { return initial_; }
  const std::vector<double>& times() const noexcept { return times_; }
  const std::vector<double>& values() const noexcept { return values_; }
  std::size_t num_steps() const noexcept { return times_.size(); }

  std::vector<double> sample(std::span<const double> grid) const;

  /// Time-weighted mean over [t0, t1].
  double time_average(double t0, double t1) const;

  /// The paper's Algorithm-1 output convention: parallel [times, states]
  /// arrays with duplicated time points at each step so the trace plots as
  /// a telegraph waveform. Includes the endpoints t0 and t1.
  void to_paper_arrays(double t0, double t1, std::vector<double>& times,
                       std::vector<double>& states) const;

 private:
  double initial_ = 0.0;
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace samurai::core
