#include "core/uniformisation.hpp"

#include <cmath>
#include <stdexcept>

namespace samurai::core {

namespace {

// Run the Algorithm-1 loop on [t0, tf] with a fixed bound, appending
// accepted switch times. Returns the state at tf.
physics::TrapState run_window(const PropensityFunction& propensity, double t0,
                              double tf, physics::TrapState state,
                              double lambda_star, util::Rng& rng,
                              const UniformisationOptions& options,
                              UniformisationStats* stats,
                              std::vector<double>& switches) {
  if (!(lambda_star >= 0.0) || !std::isfinite(lambda_star)) {
    throw std::invalid_argument("uniformisation: invalid rate bound");
  }
  if (lambda_star == 0.0) return state;  // chain is frozen on this window

  double curr_time = t0;
  std::uint64_t candidates = 0;
  // Flush the candidate count on *every* exit — including the budget and
  // bound-violation throws below — so diagnostics reflect the work
  // actually done before the abort.
  struct FlushStats {
    UniformisationStats* stats;
    const std::uint64_t* candidates;
    ~FlushStats() {
      if (stats) stats->candidates += *candidates;
    }
  } flush{stats, &candidates};
  for (;;) {
    curr_time += rng.exponential(lambda_star);  // next candidate (line 7)
    if (curr_time > tf) break;                  // horizon reached (line 9)
    if (++candidates > options.max_candidates) {
      throw std::runtime_error("uniformisation: candidate budget exceeded "
                               "(bad bound or horizon?)");
    }
    const physics::Propensities p = propensity.at(curr_time);
    const double lambda_next = state == physics::TrapState::kFilled
                                   ? p.lambda_e   // line 11
                                   : p.lambda_c;  // line 13
    if (lambda_next > lambda_star * (1.0 + 1e-9)) {
      throw std::runtime_error("uniformisation: propensity exceeds bound "
                               "— thinning would be biased");
    }
    if (rng.uniform() < lambda_next / lambda_star) {  // line 15
      switches.push_back(curr_time);
      state = toggled(state);
      if (stats) ++stats->accepted;
    }
  }
  return state;
}

}  // namespace

TrapTrajectory simulate_trap(const PropensityFunction& propensity, double t0,
                             double tf, physics::TrapState init_state,
                             util::Rng& rng,
                             const UniformisationOptions& options,
                             UniformisationStats* stats) {
  if (!(tf >= t0)) throw std::invalid_argument("simulate_trap: tf < t0");
  const double bound =
      (options.rate_bound ? *options.rate_bound : propensity.rate_bound(t0, tf)) *
      options.bound_safety;
  std::vector<double> switches;
  run_window(propensity, t0, tf, init_state, bound, rng, options, stats, switches);
  return TrapTrajectory(t0, tf, init_state, std::move(switches));
}

TrapTrajectory simulate_trap_windowed(const PropensityFunction& propensity,
                                      double t0, double tf,
                                      physics::TrapState init_state,
                                      const std::vector<double>& window_boundaries,
                                      util::Rng& rng,
                                      const UniformisationOptions& options,
                                      UniformisationStats* stats) {
  if (!(tf >= t0)) throw std::invalid_argument("simulate_trap_windowed: tf < t0");
  std::vector<double> switches;
  physics::TrapState state = init_state;
  double start = t0;
  auto run_to = [&](double end) {
    if (!(end > start)) return;
    const double bound =
        (options.rate_bound ? *options.rate_bound
                            : propensity.rate_bound(start, end)) *
        options.bound_safety;
    state = run_window(propensity, start, end, state, bound, rng, options,
                       stats, switches);
    start = end;
  };
  for (double boundary : window_boundaries) {
    if (boundary <= t0) continue;
    if (boundary >= tf) break;
    if (!(boundary > start)) {
      throw std::invalid_argument(
          "simulate_trap_windowed: boundaries must be strictly increasing");
    }
    run_to(boundary);
  }
  run_to(tf);
  return TrapTrajectory(t0, tf, init_state, std::move(switches));
}

std::vector<double> master_equation_fill_probability(
    const PropensityFunction& propensity, double t0, double tf,
    double p_filled_0, std::size_t steps, std::vector<double>* grid) {
  if (steps == 0) throw std::invalid_argument("master equation: steps == 0");
  const double h = (tf - t0) / static_cast<double>(steps);
  auto rhs = [&](double t, double p) {
    const physics::Propensities pr = propensity.at(t);
    return pr.lambda_c * (1.0 - p) - pr.lambda_e * p;
  };
  std::vector<double> out;
  out.reserve(steps + 1);
  if (grid) {
    grid->clear();
    grid->reserve(steps + 1);
  }
  double p = p_filled_0;
  double t = t0;
  out.push_back(p);
  if (grid) grid->push_back(t);
  for (std::size_t i = 0; i < steps; ++i) {
    const double k1 = rhs(t, p);
    const double k2 = rhs(t + 0.5 * h, p + 0.5 * h * k1);
    const double k3 = rhs(t + 0.5 * h, p + 0.5 * h * k2);
    const double k4 = rhs(t + h, p + h * k3);
    p += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = t0 + static_cast<double>(i + 1) * h;
    out.push_back(p);
    if (grid) grid->push_back(t);
  }
  return out;
}

}  // namespace samurai::core
