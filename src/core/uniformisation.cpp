#include "core/uniformisation.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <stdexcept>

namespace samurai::core {

// ------------------------------------------------------------------ stats

#define SAMURAI_UNI_STAT_U64_FIELDS(X) \
  X(candidates)                        \
  X(accepted)                          \
  X(segments)                          \
  X(rng_refills)

#define SAMURAI_UNI_STAT_DOUBLE_FIELDS(X) \
  X(envelope_integral)                    \
  X(fixed_bound_integral)

double UniformisationStats::envelope_efficiency() const {
  if (!(envelope_integral > 0.0)) return 1.0;
  return fixed_bound_integral / envelope_integral;
}

void UniformisationStats::merge(const UniformisationStats& other) {
#define X(field) field += other.field;
  SAMURAI_UNI_STAT_U64_FIELDS(X)
  SAMURAI_UNI_STAT_DOUBLE_FIELDS(X)
#undef X
}

UniformisationStats UniformisationStats::since(
    const UniformisationStats& other) const {
  UniformisationStats delta;
#define X(field) delta.field = field - other.field;
  SAMURAI_UNI_STAT_U64_FIELDS(X)
  SAMURAI_UNI_STAT_DOUBLE_FIELDS(X)
#undef X
  return delta;
}

namespace {

void atomic_add(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + value,
                                       std::memory_order_relaxed)) {
  }
}

struct AtomicUniformisationStats {
#define X(field) std::atomic<std::uint64_t> field{0};
  SAMURAI_UNI_STAT_U64_FIELDS(X)
#undef X
#define X(field) std::atomic<double> field{0.0};
  SAMURAI_UNI_STAT_DOUBLE_FIELDS(X)
#undef X
};

AtomicUniformisationStats& global_uniformisation_stats() {
  static AtomicUniformisationStats stats;
  return stats;
}

}  // namespace

UniformisationStats uniformisation_stats_snapshot() {
  auto& global = global_uniformisation_stats();
  UniformisationStats stats;
#define X(field) stats.field = global.field.load(std::memory_order_relaxed);
  SAMURAI_UNI_STAT_U64_FIELDS(X)
  SAMURAI_UNI_STAT_DOUBLE_FIELDS(X)
#undef X
  return stats;
}

namespace detail {
void uniformisation_stats_accumulate(const UniformisationStats& stats) {
  auto& global = global_uniformisation_stats();
#define X(field) \
  global.field.fetch_add(stats.field, std::memory_order_relaxed);
  SAMURAI_UNI_STAT_U64_FIELDS(X)
#undef X
#define X(field) atomic_add(global.field, stats.field);
  SAMURAI_UNI_STAT_DOUBLE_FIELDS(X)
#undef X
}
}  // namespace detail

// ----------------------------------------------------------------- kernel

namespace {

/// Per-segment refilled blocks of (unit-exponential, uniform) pairs. One
/// pair per candidate keeps the inner loop branch-light: the only refill
/// branch is a single counter compare. The refill is sized to the
/// expected number of candidates left in the current segment so frozen or
/// short segments do not waste stream.
class RngBlock {
 public:
  struct Pair {
    double exp1;
    double uniform;
  };

  Pair draw(util::Rng& rng, double bound, double remaining,
            std::uint64_t& refills) noexcept {
    if (next_ == size_) refill(rng, bound, remaining, refills);
    const Pair pair{exp_[next_], uni_[next_]};
    ++next_;
    return pair;
  }

 private:
  void refill(util::Rng& rng, double bound, double remaining,
              std::uint64_t& refills) noexcept {
    // Size by the expected candidates left in this segment, but never
    // below twice the previous block: a simulate call that keeps draining
    // small blocks (many short majorant segments, each expecting < 1
    // candidate) grows geometrically to the cap instead of paying one
    // fill-call pair per handful of draws.
    const double expected = std::min(bound * remaining, 4096.0);
    const std::size_t n = std::min(
        kCapacity,
        std::max(static_cast<std::size_t>(expected) + 4, 2 * size_));
    rng.fill_exponential_unit(exp_.data(), n);
    rng.fill_uniform(uni_.data(), n);
    size_ = n;
    next_ = 0;
    ++refills;
  }

  static constexpr std::size_t kCapacity = 256;
  std::array<double, kCapacity> exp_;
  std::array<double, kCapacity> uni_;
  std::size_t size_ = 0;
  std::size_t next_ = 0;
};

/// Generic evaluator: one virtual call per candidate.
struct VirtualEval {
  const PropensityFunction* propensity;
  physics::Propensities operator()(double t) const {
    return propensity->at(t);
  }
};

/// Devirtualised BiasPropensity evaluator: interpolates the tabulated
/// λ_c(t) directly with a monotone segment cursor. Candidate times are
/// nondecreasing within a simulate call, so the containing segment is
/// found by walking forward — no virtual dispatch, no binary search, no
/// shared atomic hint.
class BiasTableEval {
 public:
  explicit BiasTableEval(const BiasPropensity& propensity)
      : times_(propensity.lambda_c_table().times().data()),
        values_(propensity.lambda_c_table().values().data()),
        n_(propensity.lambda_c_table().times().size()),
        total_(propensity.total_rate()) {}

  physics::Propensities operator()(double t) const noexcept {
    double lc;
    if (n_ < 2 || t <= times_[0]) {
      lc = n_ == 0 ? 0.0 : values_[0];
    } else if (t >= times_[n_ - 1]) {
      lc = values_[n_ - 1];
    } else {
      while (t > times_[cursor_ + 1]) ++cursor_;  // t < times_[n_-1]
      if (t < times_[cursor_]) {
        // A fresh window behind the cursor (never happens on the
        // nondecreasing candidate stream, but keep eval total).
        cursor_ = 0;
        while (t > times_[cursor_ + 1]) ++cursor_;
      }
      const double span = times_[cursor_ + 1] - times_[cursor_];
      const double alpha = (t - times_[cursor_]) / span;
      lc = values_[cursor_] + alpha * (values_[cursor_ + 1] - values_[cursor_]);
    }
    lc = std::clamp(lc, 0.0, total_);
    return {lc, total_ - lc};
  }

 private:
  const double* times_;
  const double* values_;
  std::size_t n_;
  double total_;
  mutable std::size_t cursor_ = 0;
};

/// Walk one window's envelope (Lewis–Shedler / Ogata thinning with a
/// piecewise-constant, per-state majorant), appending accepted switch
/// times. The fixed-bound path is the single-segment special case.
/// Returns the state at `tf`.
template <class Eval>
physics::TrapState run_envelope(const Eval& eval, const RateMajorant& majorant,
                                double t0, double tf, physics::TrapState state,
                                double bound_safety, util::Rng& rng,
                                RngBlock& block,
                                const UniformisationOptions& options,
                                std::uint64_t& candidates_total,
                                UniformisationStats& local,
                                std::vector<double>& switches) {
  const auto& segments = majorant.segments();
  double t = t0;
  std::size_t si = 0;
  while (si < segments.size() && segments[si].t_end <= t0) ++si;
  // One unit-exponential budget is carried across segments and bound
  // changes: candidates form a Poisson process with the envelope's
  // piecewise-constant intensity, so by time-rescaling the integrated
  // envelope mass between candidates is Exp(1). A segment therefore costs
  // RNG only when it actually produces a candidate — crossing many short
  // majorant segments of a slow trap consumes budget, not stream.
  bool have_draw = false;
  double budget = 0.0;    // remaining Exp(1) mass until the next candidate
  double accept_u = 0.0;  // the uniform paired with that candidate
  while (t < tf) {
    if (si >= segments.size()) {
      throw std::invalid_argument(
          "uniformisation: majorant does not cover the window");
    }
    const MajorantSegment& seg = segments[si];
    const double seg_end = std::min(seg.t_end, tf);
    ++local.segments;
    double bound = (state == physics::TrapState::kEmpty ? seg.bound_c
                                                        : seg.bound_e) *
                   bound_safety;
    double mark = t;  // envelope-integral accounting anchor
    for (;;) {
      if (!(bound > 0.0)) {
        // Frozen for the current state on this segment: certified no
        // events (zero intensity mass), so skip to the segment end with
        // the budget untouched.
        t = seg_end;
        break;
      }
      if (!have_draw) {
        const auto pair =
            block.draw(rng, bound, seg_end - t, local.rng_refills);
        budget = pair.exp1;
        accept_u = pair.uniform;
        have_draw = true;
      }
      const double capacity = bound * (seg_end - t);
      if (budget >= capacity) {  // candidate past the segment (line 9)
        budget -= capacity;
        local.envelope_integral += bound * (seg_end - mark);
        t = seg_end;
        break;
      }
      t += budget / bound;
      have_draw = false;
      ++local.candidates;
      if (++candidates_total > options.max_candidates) {
        local.envelope_integral += bound * (t - mark);
        throw std::runtime_error("uniformisation: candidate budget exceeded "
                                 "(bad bound or horizon?)");
      }
      const physics::Propensities p = eval(t);
      const double lambda_next = state == physics::TrapState::kFilled
                                     ? p.lambda_e   // line 11
                                     : p.lambda_c;  // line 13
      if (lambda_next > bound * (1.0 + 1e-9)) {
        local.envelope_integral += bound * (t - mark);
        throw std::runtime_error("uniformisation: propensity exceeds bound "
                                 "— thinning would be biased");
      }
      if (accept_u * bound < lambda_next) {  // line 15
        switches.push_back(t);
        state = toggled(state);
        ++local.accepted;
        local.envelope_integral += bound * (t - mark);
        mark = t;
        bound = (state == physics::TrapState::kEmpty ? seg.bound_c
                                                     : seg.bound_e) *
                bound_safety;
      }
    }
    ++si;
  }
  return state;
}

/// Merge the per-call counters into the caller's stats and the process
/// registry on *every* exit — including the budget and bound-violation
/// throws — so diagnostics reflect the work actually done before an abort.
struct FlushStats {
  UniformisationStats* stats;
  const UniformisationStats* local;
  ~FlushStats() {
    if (stats) stats->merge(*local);
    detail::uniformisation_stats_accumulate(*local);
  }
};

template <class Eval>
TrapTrajectory simulate_windows(const PropensityFunction& propensity,
                                const Eval& eval, double t0, double tf,
                                physics::TrapState init_state,
                                const std::vector<double>& window_boundaries,
                                util::Rng& rng,
                                const UniformisationOptions& options,
                                UniformisationStats* stats) {
  UniformisationStats local;
  FlushStats flush{stats, &local};
  std::vector<double> switches;
  physics::TrapState state = init_state;
  std::uint64_t candidates_total = 0;
  RngBlock block;
  // An explicit scalar bound is a fixed-bound request: it cannot certify a
  // per-state envelope, so it disables the majorant walk for the call.
  const bool fixed = !options.use_majorant || options.rate_bound.has_value();
  double start = t0;
  auto run_to = [&](double end) {
    if (!(end > start)) return;
    RateMajorant majorant;
    double window_bound;
    if (fixed) {
      window_bound = options.rate_bound ? *options.rate_bound
                                        : propensity.rate_bound(start, end);
      if (!(window_bound >= 0.0) || !std::isfinite(window_bound)) {
        throw std::invalid_argument("uniformisation: invalid rate bound");
      }
      majorant = RateMajorant::single(end, window_bound, window_bound);
    } else {
      majorant = propensity.majorant(start, end);
      // The fixed-bound comparison integral, read off the envelope instead
      // of a second rate_bound() scan: segment bounds are maxima of exact
      // per-interval bounds, so their maximum is the windowed rate bound.
      window_bound = 0.0;
      for (const auto& seg : majorant.segments()) {
        window_bound = std::max({window_bound, seg.bound_c, seg.bound_e});
      }
    }
    local.fixed_bound_integral +=
        window_bound * options.bound_safety * (end - start);
    state = run_envelope(eval, majorant, start, end, state,
                         options.bound_safety, rng, block, options,
                         candidates_total, local, switches);
    start = end;
  };
  for (double boundary : window_boundaries) {
    if (boundary <= t0) continue;
    if (boundary >= tf) break;
    if (!(boundary > start)) {
      throw std::invalid_argument(
          "simulate_trap_windowed: boundaries must be strictly increasing");
    }
    run_to(boundary);
  }
  run_to(tf);
  return TrapTrajectory(t0, tf, init_state, std::move(switches));
}

template <class... Args>
TrapTrajectory dispatch_simulate(const PropensityFunction& propensity,
                                 Args&&... args) {
  // One dynamic_cast per simulate call buys a virtual-free, search-free
  // inner loop for the dominant (BiasPropensity) workload.
  if (const auto* bias = dynamic_cast<const BiasPropensity*>(&propensity)) {
    return simulate_windows(propensity, BiasTableEval(*bias),
                            std::forward<Args>(args)...);
  }
  return simulate_windows(propensity, VirtualEval{&propensity},
                          std::forward<Args>(args)...);
}

}  // namespace

TrapTrajectory simulate_trap(const PropensityFunction& propensity, double t0,
                             double tf, physics::TrapState init_state,
                             util::Rng& rng,
                             const UniformisationOptions& options,
                             UniformisationStats* stats) {
  if (!(tf >= t0)) throw std::invalid_argument("simulate_trap: tf < t0");
  return dispatch_simulate(propensity, t0, tf, init_state,
                           std::vector<double>{}, rng, options, stats);
}

TrapTrajectory simulate_trap_windowed(const PropensityFunction& propensity,
                                      double t0, double tf,
                                      physics::TrapState init_state,
                                      const std::vector<double>& window_boundaries,
                                      util::Rng& rng,
                                      const UniformisationOptions& options,
                                      UniformisationStats* stats) {
  if (!(tf >= t0)) throw std::invalid_argument("simulate_trap_windowed: tf < t0");
  return dispatch_simulate(propensity, t0, tf, init_state, window_boundaries,
                           rng, options, stats);
}

std::vector<double> master_equation_fill_probability(
    const PropensityFunction& propensity, double t0, double tf,
    double p_filled_0, std::size_t steps, std::vector<double>* grid) {
  if (steps == 0) throw std::invalid_argument("master equation: steps == 0");
  const double h = (tf - t0) / static_cast<double>(steps);
  auto rhs = [&](double t, double p) {
    const physics::Propensities pr = propensity.at(t);
    return pr.lambda_c * (1.0 - p) - pr.lambda_e * p;
  };
  std::vector<double> out;
  out.reserve(steps + 1);
  if (grid) {
    grid->clear();
    grid->reserve(steps + 1);
  }
  double p = p_filled_0;
  double t = t0;
  out.push_back(p);
  if (grid) grid->push_back(t);
  for (std::size_t i = 0; i < steps; ++i) {
    const double k1 = rhs(t, p);
    const double k2 = rhs(t + 0.5 * h, p + 0.5 * h * k1);
    const double k3 = rhs(t + 0.5 * h, p + 0.5 * h * k2);
    const double k4 = rhs(t + h, p + h * k3);
    p += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    t = t0 + static_cast<double>(i + 1) * h;
    out.push_back(p);
    if (grid) grid->push_back(t);
  }
  return out;
}

}  // namespace samurai::core
