#include "core/trajectory.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace samurai::core {

TrapTrajectory::TrapTrajectory(double t0, double tf,
                               physics::TrapState init_state,
                               std::vector<double> switch_times)
    : t0_(t0), tf_(tf), init_(init_state), switches_(std::move(switch_times)) {
  if (!(tf_ >= t0_)) throw std::invalid_argument("TrapTrajectory: tf < t0");
  double prev = t0_;
  for (double t : switches_) {
    if (!(t > prev) || t > tf_) {
      throw std::invalid_argument(
          "TrapTrajectory: switch times must be strictly increasing in (t0, tf]");
    }
    prev = t;
  }
}

physics::TrapState TrapTrajectory::state_at(double t) const {
  const auto it = std::upper_bound(switches_.begin(), switches_.end(), t);
  const std::size_t toggles = static_cast<std::size_t>(it - switches_.begin());
  return (toggles % 2 == 0) ? init_ : toggled(init_);
}

double TrapTrajectory::filled_fraction() const {
  if (!(tf_ > t0_)) return 0.0;
  double filled_time = 0.0;
  double prev_t = t0_;
  physics::TrapState state = init_;
  for (double t : switches_) {
    if (state == physics::TrapState::kFilled) filled_time += t - prev_t;
    prev_t = t;
    state = toggled(state);
  }
  if (state == physics::TrapState::kFilled) filled_time += tf_ - prev_t;
  return filled_time / (tf_ - t0_);
}

TrapTrajectory::Dwells TrapTrajectory::dwell_times(bool exclude_censored) const {
  Dwells dwells;
  double prev_t = t0_;
  physics::TrapState state = init_;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    const bool censored_left = (i == 0);
    const double duration = switches_[i] - prev_t;
    if (!(censored_left && exclude_censored)) {
      (state == physics::TrapState::kEmpty ? dwells.empty : dwells.filled)
          .push_back(duration);
    }
    prev_t = switches_[i];
    state = toggled(state);
  }
  if (!exclude_censored) {
    (state == physics::TrapState::kEmpty ? dwells.empty : dwells.filled)
        .push_back(tf_ - prev_t);
  }
  return dwells;
}

StepTrace TrapTrajectory::to_step_trace() const {
  std::vector<double> values;
  values.reserve(switches_.size());
  physics::TrapState state = init_;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    state = toggled(state);
    values.push_back(state == physics::TrapState::kFilled ? 1.0 : 0.0);
  }
  return StepTrace(init_ == physics::TrapState::kFilled ? 1.0 : 0.0,
                   switches_, std::move(values));
}

StepTrace aggregate_filled_count(const std::vector<TrapTrajectory>& trajectories) {
  double initial = 0.0;
  // Each switch toggles its trap, so the count delta alternates per trap
  // starting from -/+1 according to the initial state.
  std::multimap<double, int> deltas;
  for (const auto& traj : trajectories) {
    if (traj.initial_state() == physics::TrapState::kFilled) initial += 1.0;
    int delta = traj.initial_state() == physics::TrapState::kFilled ? -1 : +1;
    for (double t : traj.switch_times()) {
      deltas.emplace(t, delta);
      delta = -delta;
    }
  }
  std::vector<double> times;
  std::vector<double> values;
  times.reserve(deltas.size());
  values.reserve(deltas.size());
  double count = initial;
  for (const auto& [t, delta] : deltas) {
    count += delta;
    if (!times.empty() && times.back() == t) {
      values.back() = count;  // coincident events collapse into one step
    } else {
      times.push_back(t);
      values.push_back(count);
    }
  }
  return StepTrace(initial, std::move(times), std::move(values));
}

}  // namespace samurai::core
