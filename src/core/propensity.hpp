// Propensity functions for two-state time-inhomogeneous Markov chains.
//
// A `PropensityFunction` exposes λ_c(t), λ_e(t) and a certified upper
// bound λ* over any window — the two ingredients Algorithm 1 needs. The
// SRH-backed implementation (`BiasPropensity`) derives both from the
// paper's Eqs. (1)-(2): the bound is *exact* because λ_c + λ_e is
// constant in time for a physical trap (Eq. 1).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/waveform.hpp"
#include "physics/srh_model.hpp"
#include "physics/trap.hpp"

namespace samurai::core {

class PropensityFunction {
 public:
  virtual ~PropensityFunction() = default;

  /// λ_c(t) and λ_e(t).
  virtual physics::Propensities at(double t) const = 0;

  /// A value λ* with λ* >= max(λ_c(t), λ_e(t)) for all t in [t0, t1].
  /// Must be strictly positive when either propensity can be non-zero.
  virtual double rate_bound(double t0, double t1) const = 0;
};

/// Time-invariant propensities: the stationary RTS of the validation
/// experiments (paper §IV-A).
class ConstantPropensity final : public PropensityFunction {
 public:
  ConstantPropensity(double lambda_c, double lambda_e);
  physics::Propensities at(double t) const override;
  double rate_bound(double t0, double t1) const override;

 private:
  physics::Propensities p_;
};

/// Propensities driven by arbitrary user functions plus an explicit bound;
/// used by tests (e.g. sinusoidally modulated chains with known master-
/// equation solutions).
class FunctionalPropensity final : public PropensityFunction {
 public:
  FunctionalPropensity(std::function<double(double)> lambda_c,
                       std::function<double(double)> lambda_e,
                       double global_bound);
  physics::Propensities at(double t) const override;
  double rate_bound(double t0, double t1) const override;

 private:
  std::function<double(double)> lc_;
  std::function<double(double)> le_;
  double bound_;
};

/// SRH trap propensities under a time-varying gate bias V_gs(t).
///
/// Evaluating the surface-potential solve per candidate event would be
/// wasteful (uniformisation of a shallow trap draws millions of
/// candidates), so the propensities are precomputed at the bias
/// breakpoints — refined so no segment's bias change exceeds
/// `max_bias_step` — and linearly interpolated in time. The thinning bound
/// Λ = λ_c + λ_e is exact regardless of interpolation error.
class BiasPropensity final : public PropensityFunction {
 public:
  BiasPropensity(const physics::SrhModel& model, const physics::Trap& trap,
                 const Pwl& v_gs, double max_bias_step = 0.01);

  physics::Propensities at(double t) const override;
  double rate_bound(double t0, double t1) const override;

  /// The trap's constant total rate Λ (paper Eq. 1).
  double total_rate() const noexcept { return total_rate_; }

 private:
  double total_rate_;
  Pwl lambda_c_of_t_;  ///< interpolated λ_c(t); λ_e = Λ - λ_c
};

}  // namespace samurai::core
