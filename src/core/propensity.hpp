// Propensity functions for two-state time-inhomogeneous Markov chains.
//
// A `PropensityFunction` exposes λ_c(t), λ_e(t) plus two kinds of certified
// upper bounds — the ingredients Algorithm 1 (and its piecewise-majorant
// refinement, DESIGN.md §11) needs:
//
//  * `rate_bound(t0, t1)`  — one scalar λ* dominating *both* propensities
//    over the whole window. The classic fixed-bound thinning rate.
//  * `majorant(t0, t1)`    — a piecewise-constant upper envelope with
//    *separate* per-state bounds per segment. The uniformisation walker
//    draws candidates at the current state's segment bound, so the expected
//    candidate count is ∫λ*_{s(t)}(t)dt instead of max·T; cold segments
//    (a trap pinned by its bias) draw almost nothing.
//
// Bound contract (relied on by the thinning sampler; violations are
// detected at run time and abort the simulation as biased):
//
//  * rate_bound(t0, t1) >= max(λ_c(t), λ_e(t)) for all t in [t0, t1],
//    strictly positive whenever either propensity can be non-zero, and as
//    *tight* as cheaply possible — a bound of Λ = λ_c + λ_e is always
//    valid but draws up to 2x the necessary candidates; prefer the
//    pointwise max (`ConstantPropensity` and `BiasPropensity` return the
//    exact windowed max).
//  * Every `majorant` segment [a, b) must satisfy bound_c >= λ_c(t) and
//    bound_e >= λ_e(t) on the segment; segments are contiguous and must
//    cover the queried window. Zero bounds certify a frozen propensity.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/waveform.hpp"
#include "physics/srh_model.hpp"
#include "physics/trap.hpp"

namespace samurai::core {

/// One segment of a piecewise-constant majorant. The segment spans from
/// the previous segment's `t_end` (or the envelope's query start) up to
/// `t_end`; `bound_c` / `bound_e` dominate λ_c / λ_e on it.
struct MajorantSegment {
  double t_end = 0.0;
  double bound_c = 0.0;
  double bound_e = 0.0;
};

/// Piecewise-constant upper envelope of both propensities over a window.
/// Validated on construction: segment end times strictly increase and all
/// bounds are finite and non-negative.
class RateMajorant {
 public:
  RateMajorant() = default;
  explicit RateMajorant(std::vector<MajorantSegment> segments);

  /// The single-segment envelope [.., t_end) with the given bounds.
  static RateMajorant single(double t_end, double bound_c, double bound_e);

  const std::vector<MajorantSegment>& segments() const noexcept {
    return segments_;
  }
  bool empty() const noexcept { return segments_.empty(); }

  /// Last covered time (callers must not simulate past it).
  double t_end() const noexcept {
    return segments_.empty() ? 0.0 : segments_.back().t_end;
  }

 private:
  std::vector<MajorantSegment> segments_;
};

class PropensityFunction {
 public:
  virtual ~PropensityFunction() = default;

  /// λ_c(t) and λ_e(t).
  virtual physics::Propensities at(double t) const = 0;

  /// A value λ* with λ* >= max(λ_c(t), λ_e(t)) for all t in [t0, t1].
  /// Must be strictly positive when either propensity can be non-zero.
  virtual double rate_bound(double t0, double t1) const = 0;

  /// Piecewise-constant upper envelope covering [t0, t1]. The default is
  /// the single-segment envelope at `rate_bound` for both states;
  /// implementations with temporal structure should override it with
  /// per-segment (and per-state) tight bounds.
  virtual RateMajorant majorant(double t0, double t1) const;
};

/// Time-invariant propensities: the stationary RTS of the validation
/// experiments (paper §IV-A). `majorant` is per-state exact, so thinning
/// accepts every candidate and the sampler devolves to the classic SSA.
class ConstantPropensity final : public PropensityFunction {
 public:
  ConstantPropensity(double lambda_c, double lambda_e);
  physics::Propensities at(double t) const override;
  double rate_bound(double t0, double t1) const override;
  RateMajorant majorant(double t0, double t1) const override;

 private:
  physics::Propensities p_;
};

/// Propensities driven by arbitrary user functions plus an explicit bound;
/// used by tests (e.g. sinusoidally modulated chains with known master-
/// equation solutions). An optional piecewise envelope (validated against
/// the same contract at run time) exercises the majorant walker; windows
/// past the envelope's last segment fall back to the global bound.
class FunctionalPropensity final : public PropensityFunction {
 public:
  FunctionalPropensity(std::function<double(double)> lambda_c,
                       std::function<double(double)> lambda_e,
                       double global_bound);
  FunctionalPropensity(std::function<double(double)> lambda_c,
                       std::function<double(double)> lambda_e,
                       double global_bound,
                       std::vector<MajorantSegment> envelope);
  physics::Propensities at(double t) const override;
  double rate_bound(double t0, double t1) const override;
  RateMajorant majorant(double t0, double t1) const override;

 private:
  std::function<double(double)> lc_;
  std::function<double(double)> le_;
  double bound_;
  std::vector<MajorantSegment> envelope_;  ///< optional; empty = fallback
};

/// Refined per-device bias schedule: the tabulation time grid (bias
/// breakpoints subdivided so no segment's voltage change exceeds
/// `max_bias_step`) together with the bias value at each point. The
/// schedule depends only on (V_gs, max_bias_step) — never on the trap —
/// so a device's traps share one schedule and each pays only its own SRH
/// evaluations; BiasPropensity built from a schedule is bit-identical to
/// one built from the waveform directly.
struct BiasSchedule {
  std::vector<double> times;
  std::vector<double> bias;  ///< v_gs.eval(times[i])

  static BiasSchedule build(const Pwl& v_gs, double max_bias_step);
};

/// SRH trap propensities under a time-varying gate bias V_gs(t).
///
/// Evaluating the surface-potential solve per candidate event would be
/// wasteful (uniformisation of a shallow trap draws millions of
/// candidates), so the propensities are precomputed at the bias
/// breakpoints — refined so no segment's bias change exceeds
/// `max_bias_step` — and linearly interpolated in time. λ_c + λ_e = Λ is
/// constant (paper Eq. 1), so per tabulation segment λ_c is linear and
/// λ_e = Λ - λ_c: both `rate_bound` (windowed max of max(λ_c, λ_e)) and
/// the per-segment `majorant` are exact for the tabulated propensities.
///
/// The coalesced envelope over the full tabulation span is built once at
/// construction (riding the pass that tabulates λ_c anyway); `majorant`
/// clips it, so a simulate call costs O(envelope segments), not another
/// walk over every tabulation point.
class BiasPropensity final : public PropensityFunction {
 public:
  BiasPropensity(const physics::SrhModel& model, const physics::Trap& trap,
                 const Pwl& v_gs, double max_bias_step = 0.01);

  /// Tabulate from a prebuilt schedule (one SRH evaluation per schedule
  /// point). Equivalent to the waveform constructor with the (v_gs,
  /// max_bias_step) the schedule was built from — devices with many traps
  /// build the schedule once and amortise the waveform refinement.
  BiasPropensity(const physics::SrhModel& model, const physics::Trap& trap,
                 const BiasSchedule& schedule);

  physics::Propensities at(double t) const override;
  double rate_bound(double t0, double t1) const override;
  RateMajorant majorant(double t0, double t1) const override;

  /// The trap's constant total rate Λ (paper Eq. 1).
  double total_rate() const noexcept { return total_rate_; }

  /// The tabulated λ_c(t) table backing `at` — the uniformisation kernel's
  /// devirtualised fast path interpolates it with a monotone cursor
  /// instead of paying a virtual call + binary search per candidate.
  const Pwl& lambda_c_table() const noexcept { return lambda_c_of_t_; }

 private:
  void build_envelope();

  double total_rate_;
  Pwl lambda_c_of_t_;  ///< interpolated λ_c(t); λ_e = Λ - λ_c
  /// Precomputed coalesced envelope over [times.front(), times.back()];
  /// empty when the tabulation is constant.
  std::vector<MajorantSegment> envelope_;
};

}  // namespace samurai::core
