#include "core/propensity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace samurai::core {

RateMajorant::RateMajorant(std::vector<MajorantSegment> segments)
    : segments_(std::move(segments)) {
  double prev = -std::numeric_limits<double>::infinity();
  for (const auto& seg : segments_) {
    if (!(seg.t_end > prev)) {
      throw std::invalid_argument(
          "RateMajorant: segment end times must strictly increase");
    }
    if (!(seg.bound_c >= 0.0) || !(seg.bound_e >= 0.0) ||
        !std::isfinite(seg.bound_c) || !std::isfinite(seg.bound_e)) {
      throw std::invalid_argument("RateMajorant: bounds must be finite and >= 0");
    }
    prev = seg.t_end;
  }
}

RateMajorant RateMajorant::single(double t_end, double bound_c,
                                  double bound_e) {
  return RateMajorant({MajorantSegment{t_end, bound_c, bound_e}});
}

RateMajorant PropensityFunction::majorant(double t0, double t1) const {
  const double bound = rate_bound(t0, t1);
  (void)t0;
  return RateMajorant::single(t1, bound, bound);
}

ConstantPropensity::ConstantPropensity(double lambda_c, double lambda_e)
    : p_{lambda_c, lambda_e} {
  if (lambda_c < 0.0 || lambda_e < 0.0) {
    throw std::invalid_argument("ConstantPropensity: negative rate");
  }
}

physics::Propensities ConstantPropensity::at(double) const { return p_; }

double ConstantPropensity::rate_bound(double, double) const {
  return std::max(p_.lambda_c, p_.lambda_e);
}

RateMajorant ConstantPropensity::majorant(double, double t1) const {
  return RateMajorant::single(t1, p_.lambda_c, p_.lambda_e);
}

FunctionalPropensity::FunctionalPropensity(std::function<double(double)> lambda_c,
                                           std::function<double(double)> lambda_e,
                                           double global_bound)
    : FunctionalPropensity(std::move(lambda_c), std::move(lambda_e),
                           global_bound, {}) {}

FunctionalPropensity::FunctionalPropensity(std::function<double(double)> lambda_c,
                                           std::function<double(double)> lambda_e,
                                           double global_bound,
                                           std::vector<MajorantSegment> envelope)
    : lc_(std::move(lambda_c)),
      le_(std::move(lambda_e)),
      bound_(global_bound),
      envelope_(std::move(envelope)) {
  if (!(bound_ > 0.0)) {
    throw std::invalid_argument("FunctionalPropensity: bound must be positive");
  }
  (void)RateMajorant(envelope_);  // validate ordering and bound ranges
}

physics::Propensities FunctionalPropensity::at(double t) const {
  return {lc_(t), le_(t)};
}

double FunctionalPropensity::rate_bound(double, double) const { return bound_; }

RateMajorant FunctionalPropensity::majorant(double t0, double t1) const {
  if (envelope_.empty()) return RateMajorant::single(t1, bound_, bound_);
  std::vector<MajorantSegment> clipped;
  for (const auto& seg : envelope_) {
    if (seg.t_end <= t0) continue;
    clipped.push_back(seg);
    if (seg.t_end >= t1) break;
  }
  // Any tail the stored envelope does not reach is covered by the global
  // bound (valid everywhere by the rate_bound contract).
  if (clipped.empty() || clipped.back().t_end < t1) {
    clipped.push_back(MajorantSegment{t1, bound_, bound_});
  }
  return RateMajorant(std::move(clipped));
}

BiasSchedule BiasSchedule::build(const Pwl& v_gs, double max_bias_step) {
  if (!(max_bias_step > 0.0)) {
    throw std::invalid_argument("BiasSchedule: max_bias_step must be > 0");
  }
  // Refine the bias breakpoints so each segment's voltage change is below
  // max_bias_step.
  BiasSchedule schedule;
  std::vector<double>& times = schedule.times;
  if (v_gs.is_constant() || v_gs.times().size() < 2) {
    times.push_back(v_gs.times().empty() ? 0.0 : v_gs.times().front());
  } else {
    const auto& ts = v_gs.times();
    const auto& vs = v_gs.values();
    times.push_back(ts.front());
    for (std::size_t i = 1; i < ts.size(); ++i) {
      const double dv = std::abs(vs[i] - vs[i - 1]);
      const auto pieces = static_cast<std::size_t>(
          std::max(1.0, std::ceil(dv / max_bias_step)));
      for (std::size_t k = 1; k <= pieces; ++k) {
        const double t = ts[i - 1] + (ts[i] - ts[i - 1]) *
                                         static_cast<double>(k) /
                                         static_cast<double>(pieces);
        if (t > times.back()) times.push_back(t);
      }
    }
  }
  schedule.bias.reserve(times.size());
  for (double t : times) schedule.bias.push_back(v_gs.eval(t));
  return schedule;
}

BiasPropensity::BiasPropensity(const physics::SrhModel& model,
                               const physics::Trap& trap, const Pwl& v_gs,
                               double max_bias_step)
    : BiasPropensity(model, trap, BiasSchedule::build(v_gs, max_bias_step)) {}

BiasPropensity::BiasPropensity(const physics::SrhModel& model,
                               const physics::Trap& trap,
                               const BiasSchedule& schedule) {
  if (schedule.times.empty() ||
      schedule.times.size() != schedule.bias.size()) {
    throw std::invalid_argument("BiasPropensity: malformed schedule");
  }
  total_rate_ = model.total_rate(trap);
  // Tabulate λ_c at every schedule point: the only per-trap cost.
  std::vector<double> lc;
  lc.reserve(schedule.times.size());
  for (double bias : schedule.bias) {
    lc.push_back(model.propensities(trap, bias).lambda_c);
  }
  lambda_c_of_t_ = Pwl(schedule.times, std::move(lc));
  build_envelope();
}

void BiasPropensity::build_envelope() {
  const auto& ts = lambda_c_of_t_.times();
  const auto& vs = lambda_c_of_t_.values();
  if (ts.size() < 2) return;  // constant tabulation: majorant() is exact
  const double t0 = ts.front();
  const double t1 = ts.back();

  // Per tabulation interval λ_c is linear, so [min, max] over the interval
  // is attained at its endpoints: bound_c = max, bound_e = Λ - min are
  // exact. Greedy coalescing then merges neighbours while the merged
  // envelope integral stays within kCoalesceSlack of the exact one, so
  // flat bias regions collapse to one segment and fast edges keep only the
  // resolution they pay for. Each emitted segment also costs the sampler a
  // fixed walk overhead, which for slow traps dwarfs the candidates a
  // tighter envelope saves — so runs shorter than 1/kMaxSegments of the
  // span are merged even past the slack, bounding the segment count.
  constexpr double kCoalesceSlack = 1.1;
  constexpr double kMaxSegments = 12.0;
  const double min_span = (t1 - t0) / kMaxSegments;

  double run_start = t0;   // current run's start time
  double run_exact = 0.0;  // ∫(bound_c + bound_e)dt of the exact run
  MajorantSegment run{t0, 0.0, 0.0};
  bool have_run = false;

  double prev_v = std::clamp(vs.front(), 0.0, total_rate_);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    const double prev_t = ts[i - 1];
    const double next_t = ts[i];
    const double next_v = std::clamp(vs[i], 0.0, total_rate_);
    if (next_t > prev_t) {
      const double bc = std::max(prev_v, next_v);
      const double be = total_rate_ - std::min(prev_v, next_v);
      const double exact = (bc + be) * (next_t - prev_t);
      if (!have_run) {
        run = MajorantSegment{next_t, bc, be};
        run_start = prev_t;
        run_exact = exact;
        have_run = true;
      } else {
        const double merged_bc = std::max(run.bound_c, bc);
        const double merged_be = std::max(run.bound_e, be);
        const double merged_integral =
            (merged_bc + merged_be) * (next_t - run_start);
        if (next_t - run_start < min_span ||
            merged_integral <= kCoalesceSlack * (run_exact + exact)) {
          run.t_end = next_t;
          run.bound_c = merged_bc;
          run.bound_e = merged_be;
          run_exact += exact;
        } else {
          envelope_.push_back(run);
          run = MajorantSegment{next_t, bc, be};
          run_start = prev_t;
          run_exact = exact;
        }
      }
    }
    prev_v = next_v;
  }
  if (have_run) envelope_.push_back(run);
}

physics::Propensities BiasPropensity::at(double t) const {
  const double lc = std::clamp(lambda_c_of_t_.eval(t), 0.0, total_rate_);
  return {lc, total_rate_ - lc};
}

double BiasPropensity::rate_bound(double t0, double t1) const {
  // λ_c is piecewise linear, so its range over [t0, t1] is spanned by the
  // clipped endpoint values plus the interior breakpoints; λ_e = Λ - λ_c
  // turns the range [lo, hi] into the exact bound max(hi, Λ - lo).
  const auto& ts = lambda_c_of_t_.times();
  const auto& vs = lambda_c_of_t_.values();
  double lo = std::clamp(lambda_c_of_t_.eval(t0), 0.0, total_rate_);
  double hi = lo;
  const double end = std::clamp(lambda_c_of_t_.eval(t1), 0.0, total_rate_);
  lo = std::min(lo, end);
  hi = std::max(hi, end);
  const auto first = std::upper_bound(ts.begin(), ts.end(), t0);
  const auto last = std::lower_bound(ts.begin(), ts.end(), t1);
  for (auto it = first; it != last; ++it) {
    const double v =
        std::clamp(vs[static_cast<std::size_t>(it - ts.begin())], 0.0,
                   total_rate_);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return std::max(hi, total_rate_ - lo);
}

RateMajorant BiasPropensity::majorant(double t0, double t1) const {
  const auto& ts = lambda_c_of_t_.times();
  if (envelope_.empty() || t1 <= ts.front() || t0 >= ts.back()) {
    // Constant tabulation (or the window misses it entirely): one segment
    // with the exact per-state rates.
    const double lc = std::clamp(lambda_c_of_t_.eval(t0), 0.0, total_rate_);
    return RateMajorant::single(t1, lc, total_rate_ - lc);
  }

  // Clip the precomputed envelope. The first overlapping segment's bounds
  // dominate [t0, its end] even when t0 predates the tabulation (λ_c is
  // constant there at its front value, which that segment already covers);
  // any tail past the tabulation is constant at the back value.
  std::vector<MajorantSegment> clipped;
  for (const auto& seg : envelope_) {
    if (seg.t_end <= t0) continue;
    clipped.push_back(seg);
    if (seg.t_end >= t1) {
      clipped.back().t_end = t1;
      break;
    }
  }
  if (clipped.empty() || clipped.back().t_end < t1) {
    const double lc =
        std::clamp(lambda_c_of_t_.values().back(), 0.0, total_rate_);
    clipped.push_back(MajorantSegment{t1, lc, total_rate_ - lc});
  }
  return RateMajorant(std::move(clipped));
}

}  // namespace samurai::core
