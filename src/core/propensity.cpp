#include "core/propensity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace samurai::core {

ConstantPropensity::ConstantPropensity(double lambda_c, double lambda_e)
    : p_{lambda_c, lambda_e} {
  if (lambda_c < 0.0 || lambda_e < 0.0) {
    throw std::invalid_argument("ConstantPropensity: negative rate");
  }
}

physics::Propensities ConstantPropensity::at(double) const { return p_; }

double ConstantPropensity::rate_bound(double, double) const {
  return std::max(p_.lambda_c, p_.lambda_e);
}

FunctionalPropensity::FunctionalPropensity(std::function<double(double)> lambda_c,
                                           std::function<double(double)> lambda_e,
                                           double global_bound)
    : lc_(std::move(lambda_c)), le_(std::move(lambda_e)), bound_(global_bound) {
  if (!(bound_ > 0.0)) {
    throw std::invalid_argument("FunctionalPropensity: bound must be positive");
  }
}

physics::Propensities FunctionalPropensity::at(double t) const {
  return {lc_(t), le_(t)};
}

double FunctionalPropensity::rate_bound(double, double) const { return bound_; }

BiasPropensity::BiasPropensity(const physics::SrhModel& model,
                               const physics::Trap& trap, const Pwl& v_gs,
                               double max_bias_step) {
  if (!(max_bias_step > 0.0)) {
    throw std::invalid_argument("BiasPropensity: max_bias_step must be > 0");
  }
  total_rate_ = model.total_rate(trap);

  // Refine the bias breakpoints so each segment's voltage change is below
  // max_bias_step, then tabulate λ_c at every refined point.
  std::vector<double> times;
  if (v_gs.is_constant() || v_gs.times().size() < 2) {
    times.push_back(v_gs.times().empty() ? 0.0 : v_gs.times().front());
  } else {
    const auto& ts = v_gs.times();
    const auto& vs = v_gs.values();
    times.push_back(ts.front());
    for (std::size_t i = 1; i < ts.size(); ++i) {
      const double dv = std::abs(vs[i] - vs[i - 1]);
      const auto pieces = static_cast<std::size_t>(
          std::max(1.0, std::ceil(dv / max_bias_step)));
      for (std::size_t k = 1; k <= pieces; ++k) {
        const double t = ts[i - 1] + (ts[i] - ts[i - 1]) *
                                         static_cast<double>(k) /
                                         static_cast<double>(pieces);
        if (t > times.back()) times.push_back(t);
      }
    }
  }

  std::vector<double> lc;
  lc.reserve(times.size());
  for (double t : times) {
    lc.push_back(model.propensities(trap, v_gs.eval(t)).lambda_c);
  }
  lambda_c_of_t_ = Pwl(std::move(times), std::move(lc));
}

physics::Propensities BiasPropensity::at(double t) const {
  const double lc = std::clamp(lambda_c_of_t_.eval(t), 0.0, total_rate_);
  return {lc, total_rate_ - lc};
}

double BiasPropensity::rate_bound(double, double) const { return total_rate_; }

}  // namespace samurai::core
