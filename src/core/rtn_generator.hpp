// Device-level RTN generation: run Algorithm 1 for every trap in a device
// and convert the occupancy function to an I_RTN(t) trace via paper Eq. 3:
//
//   I_RTN(t) = I_d(t) / (W · L · N(t)) · N_filled(t)
//
// where N(t) is the inversion-carrier areal density at the instantaneous
// gate bias and N_filled(t) the number of filled traps.
#pragma once

#include <cstdint>
#include <vector>

#include "core/propensity.hpp"
#include "core/trajectory.hpp"
#include "core/uniformisation.hpp"
#include "core/waveform.hpp"
#include "physics/mos_device.hpp"
#include "physics/srh_model.hpp"
#include "physics/trap.hpp"
#include "util/rng.hpp"

namespace samurai::core {

struct RtnGeneratorOptions {
  /// Trace start / end (seconds).
  double t0 = 0.0;
  double tf = 1e-6;
  /// Bias tabulation resolution passed to BiasPropensity.
  double max_bias_step = 0.01;
  /// Number of uniform samples of the smooth envelope I_d/(W L N) used
  /// when rendering I_RTN as a PWL waveform (switch times are always
  /// included exactly).
  std::size_t envelope_samples = 512;
  /// Artificial amplitude scaling (the paper scales by 30 in Fig. 8(e) to
  /// make the rare write error observable).
  double amplitude_scale = 1.0;
  UniformisationOptions uniformisation;
  /// Worker threads for the per-trap fan-out. Each trap draws from its own
  /// `rng.split(i + 1)` stream, so any thread count is bit-identical to
  /// the serial run.
  std::size_t threads = 1;
};

struct DeviceRtnResult {
  std::vector<TrapTrajectory> trajectories;  ///< one per trap
  StepTrace n_filled;                        ///< occupancy count N_filled(t)
  Pwl i_rtn;                                 ///< Eq. 3 trace, amps
  UniformisationStats stats;                 ///< aggregate sampler statistics
};

/// Generate the full RTN trace for one device under bias waveforms
/// V_gs(t) and I_d(t). Each trap gets an independent RNG stream derived
/// from `rng`, so the result is invariant to trap simulation order. The
/// bias schedule (waveform refinement) is built once and shared by every
/// trap; each trap pays only its own SRH tabulation.
DeviceRtnResult generate_device_rtn(const physics::SrhModel& model,
                                    const physics::MosDevice& device,
                                    const std::vector<physics::Trap>& traps,
                                    const Pwl& v_gs, const Pwl& i_d,
                                    util::Rng& rng,
                                    const RtnGeneratorOptions& options = {});

/// Prebuilt per-device RTN workload: the per-trap propensity tabulations
/// (the surface-potential work, ~all of generate_device_rtn's setup cost)
/// plus a tabulated Eq. 3 amplitude envelope, built once and reused across
/// generate() calls. Repeated-generation drivers (Monte-Carlo campaigns,
/// the RTN benchmark) construct the workload outside their hot loop so
/// each pass pays only Algorithm 1 plus the render walk.
///
/// generate() draws trap i from `rng.split(i + 1)` exactly like
/// generate_device_rtn, so trajectories and sampler statistics are
/// bit-identical to the one-shot call with the same (traps, v_gs,
/// max_bias_step). The rendered i_rtn differs only in the amplitude
/// factor: the envelope is linearly interpolated from its tabulation grid
/// (the bias schedule merged with I_d's breakpoints) instead of re-solving
/// the surface potential at every render point.
class DeviceRtnWorkload {
 public:
  DeviceRtnWorkload(const physics::SrhModel& model,
                    const physics::MosDevice& device,
                    std::vector<physics::Trap> traps, Pwl v_gs, Pwl i_d,
                    double max_bias_step = 0.01);

  /// Run Algorithm 1 for every trap and render Eq. 3.
  /// `options.max_bias_step` is ignored (baked in at construction).
  DeviceRtnResult generate(util::Rng& rng,
                           const RtnGeneratorOptions& options) const;

  std::size_t num_traps() const noexcept { return traps_.size(); }
  /// The tabulated amplitude envelope ΔI(t) (exposed for testing).
  const Pwl& amplitude_envelope() const noexcept { return amplitude_; }

 private:
  std::vector<physics::Trap> traps_;
  std::vector<BiasPropensity> propensities_;  ///< one per trap
  Pwl amplitude_;  ///< rtn_amplitude(device, v_gs(t), i_d(t)) tabulated
};

/// The smooth per-trap amplitude envelope ΔI(t) = I_d(t)/(W·L·N(t)), amps.
double rtn_amplitude(const physics::MosDevice& device, double v_gs, double i_d);

/// The strictly increasing sample grid used to render I_RTN: a uniform
/// envelope grid over [t0, tf] plus, for every interior switch time, the
/// switch itself and a twin at `std::nextafter(t_switch, t0)` so the
/// occupancy step survives PWL interpolation even when switches are
/// arbitrarily close together. Exposed for testing.
std::vector<double> build_rtn_grid(double t0, double tf,
                                   std::size_t envelope_samples,
                                   const std::vector<double>& switch_times);

}  // namespace samurai::core
