#include "dram/vrt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baseline/gillespie.hpp"
#include "core/trajectory.hpp"
#include "physics/constants.hpp"
#include "physics/trap_profile.hpp"

namespace samurai::dram {

namespace {

/// Slope factor n φ_t of the access device's subthreshold swing.
double subthreshold_swing(const physics::Technology& tech) {
  const double n =
      1.0 + tech.gamma_body() / (2.0 * std::sqrt(2.0 * tech.phi_f()));
  return n * tech.phi_t();
}

}  // namespace

double leakage_current(const physics::MosDevice& device, double v,
                       double filled_mean_field, double filled_defects,
                       double tat_strength) {
  const auto& tech = device.tech();
  // Subthreshold channel leakage with WL = 0; the stored node is the
  // drain. Never negative (the diode-like model can cross zero at v ~ 0).
  const double base = std::max(device.evaluate(0.0, v).i_d, 0.0);
  const double delta_vth =
      physics::kElementaryCharge /
      (tech.c_ox() * device.geometry().width * device.geometry().length);
  const double channel = base * std::exp(-(filled_mean_field + filled_defects) *
                                         delta_vth / subthreshold_swing(tech));
  // Each filled slow defect opens a trap-assisted-tunnelling path.
  return channel * (1.0 + tat_strength * filled_defects);
}

VrtDeviceResult simulate_device_retention(const VrtConfig& config,
                                          util::Rng& rng, std::size_t trials) {
  VrtDeviceResult result;
  physics::Technology tech = config.tech;
  tech.trap_e_min = config.trap_e_min;
  tech.trap_e_max = config.trap_e_max;
  const physics::MosGeometry geom =
      config.access_geometry.width > 0.0
          ? config.access_geometry
          : physics::MosGeometry{tech.w_min, tech.l_min};
  const physics::MosDevice device(tech, physics::MosType::kNmos, geom);
  const physics::SrhModel srh(tech);

  util::Rng profile_rng = rng.split(1);
  result.traps = physics::sample_trap_profile(tech, geom, profile_rng);

  const double v0 = config.v_initial > 0.0 ? config.v_initial : tech.v_dd;
  const double v_sense = config.v_sense > 0.0 ? config.v_sense : 0.5 * v0;
  if (!(v_sense < v0) || !(config.storage_cap > 0.0)) {
    throw std::invalid_argument("simulate_device_retention: bad cell spec");
  }

  // Precompute per-trap stationary propensities at the (constant) off-state
  // bias. Traps that would switch thousands of times within t_max only
  // contribute their *average* occupancy to the leakage (mean field); the
  // slow traps — the ones whose individual toggles produce VRT — are
  // simulated discretely.
  struct TrapRates {
    double lambda_c, lambda_e, p_fill;
    bool discrete;
  };
  std::vector<TrapRates> rates;
  rates.reserve(result.traps.size());
  double mean_field_filled = 0.0;
  for (const auto& trap : result.traps) {
    auto p = srh.propensities(trap, 0.0);
    p.lambda_c /= config.defect_slowdown;
    p.lambda_e /= config.defect_slowdown;
    TrapRates r{p.lambda_c, p.lambda_e,
                p.lambda_c / std::max(p.lambda_c + p.lambda_e, 1e-300), true};
    const double expected_switches =
        2.0 * p.lambda_c * p.lambda_e /
        std::max(p.lambda_c + p.lambda_e, 1e-300) * config.t_max;
    if (expected_switches > 500.0) {
      r.discrete = false;
      mean_field_filled += r.p_fill;
    }
    rates.push_back(r);
  }

  result.trials.reserve(trials);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    util::Rng trial_rng = rng.split(100 + trial);
    // Equilibrium initial occupancy, then per-trap exact trajectories
    // (stationary propensities -> Gillespie is exact), merged into a
    // filled-count step trace lazily as we integrate.
    std::vector<core::TrapTrajectory> trajectories;
    trajectories.reserve(result.traps.size());
    std::size_t switches = 0;
    for (std::size_t i = 0; i < result.traps.size(); ++i) {
      if (!rates[i].discrete) continue;
      util::Rng trap_rng = trial_rng.split(i + 1);
      const auto init = trap_rng.bernoulli(rates[i].p_fill)
                            ? physics::TrapState::kFilled
                            : physics::TrapState::kEmpty;
      auto traj = baseline::gillespie_stationary(
          rates[i].lambda_c, rates[i].lambda_e, 0.0, config.t_max, init,
          trap_rng);
      switches += traj.num_switches();
      if (switches > config.max_trap_switches) {
        throw std::runtime_error(
            "simulate_device_retention: trap switch budget exceeded");
      }
      trajectories.push_back(std::move(traj));
    }
    const auto filled_count = core::aggregate_filled_count(trajectories);

    // Integrate C dV/dt = -I_leak(V, filled(t)) between occupancy events.
    RetentionTrial outcome;
    outcome.trap_switches = switches;
    double v = v0;
    double t = 0.0;
    double filled_integral = 0.0;
    std::size_t event_index = 0;
    const auto& event_times = filled_count.times();
    while (t < config.t_max && v > v_sense) {
      const double next_event = event_index < event_times.size()
                                    ? event_times[event_index]
                                    : config.t_max;
      const double filled_defects = filled_count.eval(t);
      double segment_end = std::min(next_event, config.t_max);
      // Adaptive sub-steps inside the segment: dt such that dV per step is
      // small relative to the remaining swing.
      while (t < segment_end && v > v_sense) {
        const double i_leak =
            leakage_current(device, v, mean_field_filled, filled_defects,
                            config.tat_strength);
        if (i_leak <= 0.0) {
          t = segment_end;  // nothing flows: jump to the next event
          break;
        }
        double dt = 0.01 * config.storage_cap * (v0 - v_sense) / i_leak;
        dt = std::min(dt, segment_end - t);
        v -= i_leak * dt / config.storage_cap;
        filled_integral += (mean_field_filled + filled_defects) * dt;
        t += dt;
      }
      if (t >= next_event) ++event_index;
    }
    outcome.retention_time = v <= v_sense ? t : config.t_max;
    outcome.mean_filled = t > 0.0 ? filled_integral / t : 0.0;
    result.trials.push_back(outcome);
  }

  result.retention_min = result.trials.front().retention_time;
  result.retention_max = result.trials.front().retention_time;
  for (const auto& trial : result.trials) {
    result.retention_min = std::min(result.retention_min, trial.retention_time);
    result.retention_max = std::max(result.retention_max, trial.retention_time);
  }
  result.vrt_ratio = result.retention_min > 0.0
                         ? result.retention_max / result.retention_min
                         : 1.0;
  return result;
}

std::vector<VrtDeviceResult> simulate_population(const VrtConfig& config,
                                                 util::Rng& rng,
                                                 std::size_t devices,
                                                 std::size_t trials) {
  std::vector<VrtDeviceResult> population;
  population.reserve(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    util::Rng device_rng = rng.split(d + 1);
    population.push_back(simulate_device_retention(config, device_rng, trials));
  }
  return population;
}

}  // namespace samurai::dram
