// DRAM Variable Retention Time (VRT) analysis — the other circuit family
// the paper's conclusion points RTN at (refs [22], [23]: VRT is caused by
// a single defect toggling the cell's leakage between two levels).
//
// Model: a 1T1C cell stores V_dd on C_s; with the wordline low the charge
// leaks through the access transistor's subthreshold channel toward the
// grounded bitline. Each *filled* trap in the access device shifts its
// threshold by q/(C_ox W L), suppressing the leakage by
// exp(-ΔV_th/(n φ_t)). Traps toggle as stationary two-state chains (the
// off-state gate bias is constant), so the retention time — how long the
// stored level stays above the sense threshold — jumps between discrete
// values as the dominant slow trap toggles: exactly the bimodal VRT
// signature reported for DRAMs.
//
// The trap energy window here is the module's own (defaults 0.10-0.45 eV
// above E_i): VRT defects sit near the junction/GIDL region and are
// resonant around V_gs ~ 0, unlike the channel traps of the SRAM studies
// (documented substitution, see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "physics/mos_device.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "physics/trap.hpp"
#include "util/rng.hpp"

namespace samurai::dram {

struct VrtConfig {
  physics::Technology tech;
  physics::MosGeometry access_geometry{0.0, 0.0};  ///< 0 = tech minimum
  double storage_cap = 25e-15;  ///< C_s, F
  double v_initial = 0.0;       ///< 0 = tech.v_dd
  double v_sense = 0.0;         ///< retention threshold; 0 = v_initial/2
  double trap_e_min = 0.10;     ///< VRT-defect energy window, eV vs E_i
  double trap_e_max = 0.45;
  /// VRT defects are metastable structural defects (ref. [23]: a silicon
  /// vacancy-oxygen complex) with thermally activated reconfiguration —
  /// far slower than channel-trap tunnelling. Both propensities of the
  /// module's traps are divided by this factor (β, i.e. the occupancy
  /// statistics, is preserved; only the timescale stretches).
  double defect_slowdown = 3e3;
  /// A *filled* defect opens a trap-assisted-tunnelling leakage path
  /// through the storage junction: the leakage is multiplied by
  /// (1 + tat_strength) per filled slow defect. Values of 1-5 reproduce
  /// the 2-10x retention toggling reported for VRT cells.
  double tat_strength = 1.5;
  double t_max = 30.0;          ///< give up after this many seconds
  std::size_t max_trap_switches = 200000;
};

struct RetentionTrial {
  double retention_time = 0.0;  ///< s (t_max if the cell never decayed)
  std::size_t trap_switches = 0;
  double mean_filled = 0.0;     ///< time-averaged filled-trap count
};

struct VrtDeviceResult {
  std::vector<physics::Trap> traps;
  std::vector<RetentionTrial> trials;
  double retention_min = 0.0;
  double retention_max = 0.0;
  /// max/min retention across trials: > ~1.3 marks a VRT-affected cell.
  double vrt_ratio = 1.0;
};

/// Leakage current (A) of the cell at storage voltage `v`:
/// subthreshold channel leakage suppressed by the mean trapped charge
/// (`filled_mean_field`, fractional) and multiplied by the trap-assisted
/// junction path opened by each filled slow defect (`filled_defects`).
double leakage_current(const physics::MosDevice& device, double v,
                       double filled_mean_field, double filled_defects,
                       double tat_strength);

/// Run `trials` independent discharge experiments on one sampled device.
VrtDeviceResult simulate_device_retention(const VrtConfig& config,
                                          util::Rng& rng, std::size_t trials);

/// Population study: sample `devices` cells, `trials` discharges each;
/// returns per-device results (the VRT-affected fraction is the headline).
std::vector<VrtDeviceResult> simulate_population(const VrtConfig& config,
                                                 util::Rng& rng,
                                                 std::size_t devices,
                                                 std::size_t trials);

}  // namespace samurai::dram
