// Minimal command-line option parsing for examples and benches.
//
// Supports `--name value` and `--name=value`; unknown options are an error
// so typos fail loudly. Only the handful of types the binaries need.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace samurai::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, std::string fallback) const;
  double get_double(const std::string& name, double fallback) const;
  long long get_int(const std::string& name, long long fallback) const;
  /// get_int, but for repetition counts: values < 1 are rejected with a
  /// clear error instead of silently producing an empty (or garbage) run.
  long long get_count(const std::string& name, long long fallback) const;
  /// get_double, but for durations/intervals that must be > 0 (lease TTLs,
  /// poll periods): zero, negative or non-finite values are rejected with
  /// a clear error instead of silently disabling the mechanism.
  double get_positive_double(const std::string& name, double fallback) const;
  std::uint64_t get_seed(const std::string& name, std::uint64_t fallback) const;

  /// Positional (non `--`) arguments in order.
  const std::vector<std::string>& positional() const noexcept { return positional_; }

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace samurai::util
