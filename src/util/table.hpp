// Column-oriented result tables for benches and examples.
//
// Benches regenerate the paper's tables/figures by printing rows; `Table`
// keeps the column layout, alignment and CSV export in one place so every
// bench produces consistently formatted output.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace samurai::util {

/// A cell is a string, an integer or a floating-point value; doubles are
/// rendered with a per-table precision.
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int precision = 6);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return headers_.size(); }

  /// Pretty-print with aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Write as RFC-4180-ish CSV (quotes only when needed).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

 private:
  std::string render(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_;
};

}  // namespace samurai::util
