#include "util/cli.hpp"

#include <stdexcept>

namespace samurai::util {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "true";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) != 0; }

std::string Cli::get_string(const std::string& name, std::string fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? std::move(fallback) : it->second;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

long long Cli::get_int(const std::string& name, long long fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

long long Cli::get_count(const std::string& name, long long fallback) const {
  const long long value = get_int(name, fallback);
  if (value < 1) {
    throw std::invalid_argument("option --" + name +
                                " expects a positive count, got " +
                                std::to_string(value));
  }
  return value;
}

double Cli::get_positive_double(const std::string& name,
                                double fallback) const {
  const double value = get_double(name, fallback);
  if (!(value > 0.0)) {  // rejects zero, negatives and NaN alike
    throw std::invalid_argument("option --" + name +
                                " expects a positive number, got " +
                                std::to_string(value));
  }
  return value;
}

std::uint64_t Cli::get_seed(const std::string& name, std::uint64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stoull(it->second, nullptr, 0);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a seed, got '" +
                                it->second + "'");
  }
}

}  // namespace samurai::util
