#include "util/fs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>

namespace samurai::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error("fs: " + what + " " + path + ": " +
                           std::strerror(errno));
}

/// RAII fd so every error path closes.
class Fd {
 public:
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const noexcept { return fd_; }
  /// Close now, reporting the error (a deferred write can fail at close).
  bool close_checked() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return ::close(fd) == 0;
  }

 private:
  int fd_;
};

void write_all(int fd, const std::string& content, const std::string& path) {
  std::size_t done = 0;
  while (done < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + done, content.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("cannot write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

/// fsync the directory containing `path` so the rename/create itself is
/// durable, not just the file contents. Best-effort: some filesystems
/// refuse O_RDONLY directory fsync; a crash then only loses the very
/// last directory operation, which every caller already tolerates.
void sync_parent_dir(const std::string& path) {
  const auto parent = std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

const std::string& process_token() {
  static const std::string token = [] {
    std::random_device entropy;
    std::uint64_t salt = (static_cast<std::uint64_t>(entropy()) << 32) ^
                         entropy();
    return std::to_string(::getpid()) + "-" + std::to_string(salt);
  }();
  return token;
}

std::string default_worker_id() {
  char host[256] = "localhost";
  if (::gethostname(host, sizeof host - 1) != 0) {
    std::strcpy(host, "localhost");
  }
  host[sizeof host - 1] = '\0';
  return std::string(host) + ":" + std::to_string(::getpid());
}

void replace_file_durable(const std::string& path,
                          const std::string& content) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + process_token() + "." +
                          std::to_string(counter.fetch_add(1));
  {
    Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644));
    if (fd.get() < 0) fail("cannot open", tmp);
    write_all(fd.get(), content, tmp);
    if (::fsync(fd.get()) != 0 || !fd.close_checked()) {
      ::unlink(tmp.c_str());
      fail("cannot fsync", tmp);
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    errno = saved;
    fail("cannot rename " + tmp + " over", path);
  }
  sync_parent_dir(path);
}

bool create_file_exclusive(const std::string& path,
                           const std::string& content) {
  Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644));
  if (fd.get() < 0) {
    if (errno == EEXIST) return false;
    fail("cannot create", path);
  }
  write_all(fd.get(), content, path);
  if (::fsync(fd.get()) != 0 || !fd.close_checked()) {
    fail("cannot fsync", path);
  }
  sync_parent_dir(path);
  return true;
}

void append_line_durable(const std::string& path, const std::string& line) {
  // O_RDWR, not O_WRONLY: the torn-tail probe below preads the final byte,
  // which a write-only descriptor refuses (EBADF).
  Fd fd(::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644));
  if (fd.get() < 0) fail("cannot open for append", path);

  // Heal a torn tail left by a writer that died mid-append: only a dead
  // process can leave one (live appenders write whole lines in one
  // write(2)), so a non-'\n' final byte is stable and safe to fence off.
  bool needs_fence = false;
  struct ::stat st {};
  if (::fstat(fd.get(), &st) == 0 && st.st_size > 0) {
    char last = '\n';
    if (::pread(fd.get(), &last, 1, st.st_size - 1) == 1 && last != '\n') {
      needs_fence = true;
    }
  }

  std::string record;
  record.reserve(line.size() + 2);
  if (needs_fence) record.push_back('\n');
  record += line;
  if (record.empty() || record.back() != '\n') record.push_back('\n');

  // One write(2): O_APPEND makes the seek+write atomic, so concurrent
  // appenders (other worker processes) can never interleave inside it.
  const ::ssize_t n = ::write(fd.get(), record.data(), record.size());
  if (n < 0 || static_cast<std::size_t>(n) != record.size()) {
    fail("short append to", path);
  }
  if (::fsync(fd.get()) != 0 || !fd.close_checked()) {
    fail("cannot fsync", path);
  }
}

double file_age_seconds(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) {
    throw std::runtime_error("fs: cannot stat " + path + ": " + ec.message());
  }
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

double unix_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace samurai::util
