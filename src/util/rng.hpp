// Deterministic pseudo-random number generation for SAMURAI.
//
// Every stochastic component in this library draws randomness through an
// explicitly passed `Rng` so that a whole experiment — trap profiles,
// uniformisation thinning decisions, Monte-Carlo sweeps — is reproducible
// from a single 64-bit seed. The generator is xoshiro256** (Blackman &
// Vigna), seeded through splitmix64; both are tiny, fast and have no
// detectable bias at the scales used here (<< 2^64 draws).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cmath>
#include <limits>

namespace samurai::util {

/// splitmix64 step; used to expand a single seed into generator state and
/// to derive independent child-stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience draws for the distributions the
/// library needs (uniform, exponential, normal, Bernoulli, Poisson).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a seed; the all-zero state is unreachable because
  /// splitmix64 never produces four consecutive zeros from any seed.
  explicit Rng(std::uint64_t seed = 0x5AB00B5ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child generator. Children with distinct tags are
  /// statistically independent streams; used to give each trap / each cell
  /// in an array its own stream regardless of simulation order.
  [[nodiscard]] Rng split(std::uint64_t tag) const noexcept {
    std::uint64_t mix = state_[0] ^ (state_[2] * 0x9E3779B97F4A7C15ULL) ^ tag;
    return Rng{splitmix64(mix)};
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Exponential variate with the given rate (mean 1/rate). `rate` must be
  /// positive and finite.
  double exponential(double rate) noexcept {
    // uniform() can return exactly 0; 1-u is in (0,1].  -log(1-u) >= 0.
    return -std::log1p(-uniform()) / rate;
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Block draw of `n` U[0,1) variates — exactly the stream of `n` scalar
  /// `uniform()` calls. Batch consumers (the uniformisation kernel refills
  /// per-segment candidate buffers) stay branch-light in their inner loop.
  void fill_uniform(double* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = uniform();
  }

  /// Block draw of `n` *unit-rate* exponential variates (the stream of
  /// scalar `exponential(1.0)` calls). Stored unscaled so one block stays
  /// valid across thinning-bound changes: divide by the rate at use.
  void fill_exponential_unit(double* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = -std::log1p(-uniform());
  }

  /// Standard normal via Marsaglia polar method (cached second value).
  double normal() noexcept {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Poisson variate. Knuth's product method for small means, normal
  /// approximation with continuity correction above 64 (adequate for trap
  /// counts, which are single digits in scaled nodes).
  std::uint64_t poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
      const double x = normal(mean, std::sqrt(mean));
      return x < 0.5 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace samurai::util
