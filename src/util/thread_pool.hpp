// Shared work-stealing executor for the Monte-Carlo paths.
//
// Every parallel loop in the library is an *indexed* loop whose body
// depends only on (config, index) — per-cell array simulation, per-sample
// importance sampling, per-point V_min sweeps, per-trap RTN generation —
// because all randomness derives from `Rng::split(index)`. Scheduling can
// therefore never change a result, only the wall time. This header
// provides the one executor those loops share:
//
//  * `ThreadPool` — a persistent pool of workers woken per job. Each job
//    partitions [0, n) into one contiguous block per participant; a
//    participant drains its own block first and then *steals* from the
//    other blocks, so imbalanced work (cells that converge slowly, biased
//    samples that fail) cannot idle the fast participants.
//  * `parallel_for_indexed(n, fn, threads)` — the convenience entry point
//    used by the adopters. `threads <= 1` runs the plain serial loop on
//    the calling thread.
//
// Contracts:
//  * The *first* exception thrown by any task is captured, remaining work
//    is cancelled, and the exception is rethrown on the calling thread
//    after all participants finish. Worker exceptions can never reach
//    `std::terminate`.
//  * Nested or concurrent `for_indexed` calls degrade gracefully to the
//    serial path instead of deadlocking on the busy pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace samurai::util {

/// Per-run execution statistics (observability for the benches).
struct ParallelForStats {
  std::size_t threads_used = 1;  ///< participants incl. the calling thread
  std::uint64_t tasks_run = 0;   ///< indices executed (== n unless cancelled)
  std::uint64_t steals = 0;      ///< tasks run by a non-owning participant
  double wall_seconds = 0.0;     ///< wall time of the whole loop
};

class ThreadPool {
 public:
  /// A pool with `workers` sleeping worker threads (callers participate in
  /// jobs too, so `workers + 1` threads can run tasks at once).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept;

  /// Run `fn(i)` for every i in [0, n) on the calling thread plus up to
  /// `max_participants - 1` pool workers; blocks until every index has
  /// completed (or been cancelled by an exception). The first exception is
  /// rethrown here. `max_participants == 0` means "use the whole pool".
  ParallelForStats for_indexed(std::size_t n, std::size_t max_participants,
                               const std::function<void(std::size_t)>& fn);

  /// The process-wide pool shared by every adopter. Sized so that a
  /// `threads = 8` request is honoured even on small machines (idle
  /// workers just sleep on a condition variable).
  static ThreadPool& shared();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run `fn(i)` for i in [0, n) on `threads` threads (the shared pool plus
/// the calling thread). `threads <= 1` is the exact serial loop. Results
/// must depend only on (captured state, index) — see the determinism rule
/// in DESIGN.md §8.
ParallelForStats parallel_for_indexed(std::size_t n,
                                      const std::function<void(std::size_t)>& fn,
                                      std::size_t threads);

}  // namespace samurai::util
