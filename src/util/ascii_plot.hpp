// Terminal plotting for bench output.
//
// The paper's evaluation is figures; benches render each figure's series as
// an ASCII chart so "the same rows/series the paper reports" are visible
// directly in bench output, alongside the CSV data they also emit.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace samurai::util {

struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

struct PlotOptions {
  int width = 72;    ///< plot area width in characters
  int height = 18;   ///< plot area height in characters
  bool log_x = false;
  bool log_y = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Render up to 8 series (glyphs '*', '+', 'o', 'x', '#', '@', '%', '&')
/// into an axis-labelled ASCII chart. Non-finite and (for log axes)
/// non-positive points are skipped.
void plot(std::ostream& os, const std::vector<Series>& series,
          const PlotOptions& options);

}  // namespace samurai::util
