#include "util/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace samurai::util {

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) throw std::invalid_argument("linspace: n == 0");
  std::vector<double> out(n);
  if (n == 1) {
    out[0] = lo;
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0 || hi <= 0.0) throw std::invalid_argument("logspace: endpoints must be > 0");
  auto exps = linspace(std::log10(lo), std::log10(hi), n);
  for (auto& e : exps) e = std::pow(10.0, e);
  return exps;
}

double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("interp_linear: bad sample arrays");
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
  return ys[lo] + t * (ys[hi] - ys[lo]);
}

SampleStats summarize(std::span<const double> samples) {
  SampleStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  double sum = 0.0;
  stats.min = samples[0];
  stats.max = samples[0];
  for (double v : samples) {
    sum += v;
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / static_cast<double>(samples.size());
  if (samples.size() > 1) {
    double ss = 0.0;
    for (double v : samples) {
      const double d = v - stats.mean;
      ss += d * d;
    }
    stats.variance = ss / static_cast<double>(samples.size() - 1);
  }
  return stats;
}

double trapezoid(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("trapezoid: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    sum += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
  }
  return sum;
}

}  // namespace samurai::util
