// Durable file primitives for multi-process coordination on shared storage.
//
// The campaign service (DESIGN.md §14) coordinates elastic worker
// processes purely through files in one directory, which makes three
// primitives load-bearing:
//   * `replace_file_durable` — unique-temp + flush + fsync + atomic
//     rename. The temp name embeds a per-process token and a per-call
//     counter, so any number of processes can replace the same path
//     concurrently and a reader always sees one writer's complete
//     content (a fixed ".tmp" suffix lets two writers rename each
//     other's partial file).
//   * `create_file_exclusive` — O_CREAT|O_EXCL claim: exactly one of N
//     racing processes wins. This is the primitive a lease acquisition
//     reduces to.
//   * `append_line_durable` — one O_APPEND write(2) of a whole
//     newline-terminated record, then fsync. POSIX serialises O_APPEND
//     writes, so concurrent appenders interleave whole lines, never
//     bytes; a crash mid-write leaves at most one unterminated tail,
//     which the next append heals by prefixing its own newline.
#pragma once

#include <string>

namespace samurai::util {

/// Token unique to this process instance ("<pid>-<random>"), stable for
/// the process lifetime. Building block for collision-free temp names and
/// lease-ownership tokens across hosts sharing one filesystem.
const std::string& process_token();

/// "<hostname>:<pid>" — the default worker identity for the campaign
/// service's lease files and ledger attribution.
std::string default_worker_id();

/// Atomically replace `path` with `content`: write a unique temp file
/// next to it, flush + fsync, then rename over `path`. Safe against
/// concurrent replacers (each uses its own temp; rename is atomic).
/// Throws std::runtime_error on I/O failure.
void replace_file_durable(const std::string& path, const std::string& content);

/// Create `path` with `content` iff it does not already exist
/// (O_CREAT|O_EXCL) and fsync it. Returns false if the path exists;
/// throws std::runtime_error on any other I/O failure.
bool create_file_exclusive(const std::string& path,
                           const std::string& content);

/// Append `line` to `path` (created if absent) as a single O_APPEND
/// write(2) followed by fsync; a '\n' terminator is added if missing.
/// If the file currently ends in an unterminated tail (a writer died
/// mid-append), a leading '\n' is prepended so the torn fragment becomes
/// an isolated malformed line instead of corrupting this record.
/// Throws std::runtime_error on I/O failure.
void append_line_durable(const std::string& path, const std::string& line);

/// Seconds since `path` was last modified, judged by the *filesystem's*
/// clock (on shared storage that is the one clock every participant
/// agrees on). Negative if the mtime is in the observer's future (skew).
/// Throws std::runtime_error if the file cannot be statted.
double file_age_seconds(const std::string& path);

/// Wall-clock seconds since the Unix epoch (informational timestamps in
/// lease files; expiry decisions use `file_age_seconds` instead).
double unix_now_seconds();

}  // namespace samurai::util
