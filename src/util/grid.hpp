// Small numeric helpers shared across modules: grids, interpolation and
// summary statistics over samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace samurai::util {

/// `n` evenly spaced points from `lo` to `hi` inclusive (n >= 2), or the
/// single point `lo` when n == 1.
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// `n` logarithmically spaced points from `lo` to `hi` inclusive; both
/// endpoints must be positive.
std::vector<double> logspace(double lo, double hi, std::size_t n);

/// Linear interpolation of samples (xs, ys) at `x`; xs must be strictly
/// increasing. Values outside the range clamp to the end samples.
double interp_linear(std::span<const double> xs, std::span<const double> ys,
                     double x);

struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased (n-1) sample variance
  double min = 0.0;
  double max = 0.0;
};

SampleStats summarize(std::span<const double> samples);

/// Trapezoidal integral of y(x) over the sample grid.
double trapezoid(std::span<const double> xs, std::span<const double> ys);

}  // namespace samurai::util
