#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace samurai::util {

namespace {

/// Set while a thread is executing tasks for some job; a `for_indexed`
/// issued from such a thread must not wait on the pool (its workers may
/// all be busy running the outer job) — it runs serially instead.
thread_local bool t_inside_pool_job = false;

}  // namespace

struct ThreadPool::Impl {
  // One contiguous slice of [0, n). `next` is bumped by the owner and by
  // thieves alike; claims at or past `end` are dead. Padded so two
  // participants' cursors never share a cache line.
  struct alignas(64) Block {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  struct Job {
    std::size_t n = 0;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t participants = 0;     ///< blocks; slot 0 is the caller
    std::vector<Block> blocks;
    std::atomic<std::size_t> claimed{0};   ///< worker slots handed out
    std::atomic<std::size_t> active{0};    ///< workers still running
    std::atomic<bool> cancelled{false};
    std::atomic<bool> has_exception{false};
    std::exception_ptr exception;          ///< written by the CAS winner only
    std::atomic<std::uint64_t> tasks{0};
    std::atomic<std::uint64_t> steals{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };

  std::mutex mutex;                  ///< guards `job`, `shutdown`
  std::condition_variable wake_cv;
  Job* job = nullptr;
  bool shutdown = false;
  std::mutex submit_mutex;           ///< serialises whole jobs
  std::vector<std::thread> workers;

  // Drain blocks starting from the participant's own, then steal from the
  // others in round-robin order. Determinism: fn(i) depends only on i, so
  // who runs an index is invisible in the results.
  static void run_participant(Job& job, std::size_t slot) {
    const bool was_inside = t_inside_pool_job;
    t_inside_pool_job = true;
    std::uint64_t tasks = 0;
    std::uint64_t steals = 0;
    for (std::size_t probe = 0; probe < job.participants; ++probe) {
      Block& block = job.blocks[(slot + probe) % job.participants];
      for (;;) {
        if (job.cancelled.load(std::memory_order_relaxed)) goto drained;
        const std::size_t i = block.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= block.end) break;
        ++tasks;
        if (probe != 0) ++steals;
        try {
          (*job.fn)(i);
        } catch (...) {
          bool expected = false;
          if (job.has_exception.compare_exchange_strong(expected, true)) {
            job.exception = std::current_exception();
          }
          job.cancelled.store(true, std::memory_order_release);
        }
      }
    }
  drained:
    t_inside_pool_job = was_inside;
    job.tasks.fetch_add(tasks, std::memory_order_relaxed);
    job.steals.fetch_add(steals, std::memory_order_relaxed);
  }

  void worker_loop() {
    for (;;) {
      Job* current = nullptr;
      std::size_t slot = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        wake_cv.wait(lock, [&] {
          return shutdown ||
                 (job != nullptr &&
                  job->claimed.load(std::memory_order_relaxed) + 1 <
                      job->participants);
        });
        if (shutdown) return;
        // Claim a worker slot (slot 0 belongs to the caller). Losing the
        // race just means going back to sleep.
        const std::size_t taken =
            job->claimed.fetch_add(1, std::memory_order_relaxed);
        if (taken + 1 >= job->participants) continue;
        current = job;
        slot = taken + 1;
      }
      run_participant(*current, slot);
      if (current->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(current->done_mutex);
        current->done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  impl_->workers.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->wake_cv.notify_all();
  for (auto& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::worker_count() const noexcept {
  return impl_->workers.size();
}

ParallelForStats ThreadPool::for_indexed(
    std::size_t n, std::size_t max_participants,
    const std::function<void(std::size_t)>& fn) {
  const auto start = std::chrono::steady_clock::now();
  ParallelForStats stats;
  auto finish = [&] {
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return stats;
  };
  if (n == 0) return finish();

  if (max_participants == 0) max_participants = worker_count() + 1;
  std::size_t participants =
      std::min({max_participants, worker_count() + 1, n});

  // A caller already inside a pool job (nested parallel_for) or racing
  // another caller for the pool falls back to the serial loop rather than
  // waiting on workers that may never come free.
  std::unique_lock<std::mutex> submit(impl_->submit_mutex, std::defer_lock);
  if (participants > 1 && !t_inside_pool_job) {
    if (!submit.try_lock()) participants = 1;
  } else {
    participants = 1;
  }

  if (participants <= 1) {
    stats.threads_used = 1;
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
      ++stats.tasks_run;
    }
    return finish();
  }

  Impl::Job job;
  job.n = n;
  job.fn = &fn;
  job.participants = participants;
  job.blocks = std::vector<Impl::Block>(participants);
  for (std::size_t p = 0; p < participants; ++p) {
    job.blocks[p].next.store(n * p / participants, std::memory_order_relaxed);
    job.blocks[p].end = n * (p + 1) / participants;
  }
  job.active.store(participants - 1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &job;
  }
  impl_->wake_cv.notify_all();

  Impl::run_participant(job, 0);  // the caller is participant 0

  {
    std::unique_lock<std::mutex> lock(job.done_mutex);
    job.done_cv.wait(lock, [&] {
      return job.active.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = nullptr;
  }

  stats.threads_used = participants;
  stats.tasks_run = job.tasks.load(std::memory_order_relaxed);
  stats.steals = job.steals.load(std::memory_order_relaxed);
  const ParallelForStats out = finish();
  if (job.has_exception.load(std::memory_order_acquire)) {
    std::rethrow_exception(job.exception);
  }
  return out;
}

ThreadPool& ThreadPool::shared() {
  // Sized so a `threads = 8` request parallelises even when
  // hardware_concurrency() is small; surplus workers sleep.
  static ThreadPool pool(std::max<std::size_t>(
      7, std::thread::hardware_concurrency() == 0
             ? 7
             : std::thread::hardware_concurrency() - 1));
  return pool;
}

ParallelForStats parallel_for_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn,
    std::size_t threads) {
  if (threads <= 1 || n <= 1) {
    const auto start = std::chrono::steady_clock::now();
    ParallelForStats stats;
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
      ++stats.tasks_run;
    }
    stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return stats;
  }
  return ThreadPool::shared().for_indexed(n, threads, fn);
}

}  // namespace samurai::util
