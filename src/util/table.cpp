#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace samurai::util {

Table::Table(std::vector<std::string> headers, int precision)
    : headers_(std::move(headers)), precision_(precision) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) return std::to_string(*i);
  std::ostringstream oss;
  oss << std::setprecision(precision_) << std::get<double>(cell);
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
         << std::left << cells[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& cells : rendered) print_row(cells);
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << csv_escape(headers_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_escape(render(row[c]));
    }
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Table: cannot open " + path);
  write_csv(os);
}

}  // namespace samurai::util
