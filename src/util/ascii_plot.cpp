#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

namespace samurai::util {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};

bool usable(double v, bool log_scale) {
  return std::isfinite(v) && (!log_scale || v > 0.0);
}

std::string format_tick(double v) {
  std::ostringstream oss;
  oss << std::setprecision(3) << std::scientific << v;
  return oss.str();
}

}  // namespace

void plot(std::ostream& os, const std::vector<Series>& series,
          const PlotOptions& options) {
  const int w = std::max(options.width, 16);
  const int h = std::max(options.height, 6);

  double xmin = std::numeric_limits<double>::infinity(), xmax = -xmin;
  double ymin = xmin, ymax = -xmin;
  for (const auto& s : series) {
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y)) {
        continue;
      }
      const double px = options.log_x ? std::log10(s.x[i]) : s.x[i];
      const double py = options.log_y ? std::log10(s.y[i]) : s.y[i];
      xmin = std::min(xmin, px);
      xmax = std::max(xmax, px);
      ymin = std::min(ymin, py);
      ymax = std::max(ymax, py);
    }
  }
  if (!(xmin <= xmax) || !(ymin <= ymax)) {
    os << "[plot: no plottable data]\n";
    return;
  }
  if (xmax == xmin) xmax = xmin + 1.0;
  if (ymax == ymin) ymax = ymin + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& s = series[si];
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y)) {
        continue;
      }
      const double px = options.log_x ? std::log10(s.x[i]) : s.x[i];
      const double py = options.log_y ? std::log10(s.y[i]) : s.y[i];
      int col = static_cast<int>(std::lround((px - xmin) / (xmax - xmin) * (w - 1)));
      int row = static_cast<int>(std::lround((py - ymin) / (ymax - ymin) * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] = glyph;
    }
  }

  if (!options.title.empty()) os << options.title << '\n';
  const double y_top = options.log_y ? std::pow(10.0, ymax) : ymax;
  const double y_bot = options.log_y ? std::pow(10.0, ymin) : ymin;
  const double x_left = options.log_x ? std::pow(10.0, xmin) : xmin;
  const double x_right = options.log_x ? std::pow(10.0, xmax) : xmax;

  for (int r = 0; r < h; ++r) {
    std::string label(12, ' ');
    if (r == 0) label = format_tick(y_top);
    if (r == h - 1) label = format_tick(y_bot);
    label.resize(12, ' ');
    os << label << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(12, ' ') << " +" << std::string(static_cast<std::size_t>(w), '-')
     << '\n';
  os << std::string(12, ' ') << "  " << format_tick(x_left);
  const std::string right = format_tick(x_right);
  const int pad = w - static_cast<int>(format_tick(x_left).size() + right.size());
  os << std::string(static_cast<std::size_t>(std::max(pad, 1)), ' ') << right << '\n';
  std::ostringstream legend;
  for (std::size_t si = 0; si < series.size(); ++si) {
    legend << (si ? "   " : "") << kGlyphs[si % sizeof(kGlyphs)] << " = "
           << series[si].name;
  }
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << std::string(14, ' ') << "x: " << options.x_label
       << (options.log_x ? " (log)" : "") << "   y: " << options.y_label
       << (options.log_y ? " (log)" : "") << '\n';
  }
  os << std::string(14, ' ') << legend.str() << '\n';
}

}  // namespace samurai::util
