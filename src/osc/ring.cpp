#include "osc/ring.hpp"

#include <cmath>
#include <stdexcept>

#include "core/rtn_generator.hpp"
#include "physics/srh_model.hpp"
#include "physics/trap_profile.hpp"
#include "spice/devices.hpp"
#include "sram/methodology.hpp"
#include "util/rng.hpp"

namespace samurai::osc {

RingBuild build_ring(spice::Circuit& circuit, const RingConfig& config) {
  if (config.stages < 3 || config.stages % 2 == 0) {
    throw std::invalid_argument("build_ring: stages must be odd and >= 3");
  }
  RingBuild build;
  build.vdd_node = "vdd";
  const int vdd = circuit.node(build.vdd_node);
  spice::VoltageSource::dc(circuit, "Vdd", vdd, spice::kGround,
                           config.tech.v_dd);

  build.stage_nodes.reserve(config.stages);
  for (std::size_t s = 0; s < config.stages; ++s) {
    build.stage_nodes.push_back("n" + std::to_string(s));
  }
  const double load =
      config.load_cap > 0.0
          ? config.load_cap
          : 2.0 * config.tech.c_ox() * config.tech.w_min * config.tech.l_min;
  for (std::size_t s = 0; s < config.stages; ++s) {
    const int in = circuit.node(build.stage_nodes[(s + config.stages - 1) %
                                                  config.stages]);
    const int out = circuit.node(build.stage_nodes[s]);
    physics::MosDevice nmos(
        config.tech, physics::MosType::kNmos,
        {config.width_mult_n * config.tech.w_min, config.tech.l_min});
    physics::MosDevice pmos(
        config.tech, physics::MosType::kPmos,
        {config.width_mult_p * config.tech.w_min, config.tech.l_min});
    circuit.add<spice::Mosfet>("MN" + std::to_string(s), out, in,
                               spice::kGround, spice::kGround, std::move(nmos));
    circuit.add<spice::Mosfet>("MP" + std::to_string(s), out, in, vdd, vdd,
                               std::move(pmos));
    circuit.add<spice::Capacitor>("CL" + std::to_string(s), out,
                                  spice::kGround, load);
  }
  // Symmetry-breaking kick: without it the DC solve can settle on the
  // metastable all-stages-at-midrail point and the noiseless transient
  // would sit there forever. A brief current pulse into stage 0 starts
  // the oscillation deterministically.
  core::Pwl kick;
  kick.append(0.0, 0.0);
  kick.append(10e-12, 50e-6);
  kick.append(150e-12, 50e-6);
  kick.append(160e-12, 0.0);
  circuit.add<spice::CurrentSource>("Ikick", spice::kGround,
                                    circuit.node(build.stage_nodes[0]), kick);
  return build;
}

std::vector<double> rising_crossings(const core::Pwl& waveform,
                                     double threshold) {
  std::vector<double> crossings;
  const auto& ts = waveform.times();
  const auto& vs = waveform.values();
  for (std::size_t i = 1; i < ts.size(); ++i) {
    if (vs[i - 1] < threshold && vs[i] >= threshold) {
      const double alpha = (threshold - vs[i - 1]) / (vs[i] - vs[i - 1]);
      crossings.push_back(ts[i - 1] + alpha * (ts[i] - ts[i - 1]));
    }
  }
  return crossings;
}

PeriodStats period_statistics(const std::vector<double>& crossings,
                              std::size_t skip_cycles) {
  PeriodStats stats;
  if (crossings.size() < skip_cycles + 2) return stats;
  for (std::size_t i = skip_cycles + 1; i < crossings.size(); ++i) {
    stats.periods.push_back(crossings[i] - crossings[i - 1]);
  }
  stats.cycles = stats.periods.size();
  double sum = 0.0;
  for (double p : stats.periods) sum += p;
  stats.mean = sum / static_cast<double>(stats.cycles);
  double ss = 0.0;
  for (double p : stats.periods) {
    const double d = p - stats.mean;
    ss += d * d;
  }
  stats.stddev = stats.cycles > 1
                     ? std::sqrt(ss / static_cast<double>(stats.cycles - 1))
                     : 0.0;
  return stats;
}

namespace {

spice::TransientOptions ring_transient_options(const RingConfig& config,
                                               const RingBuild& build) {
  spice::TransientOptions options;
  options.t_start = 0.0;
  options.t_stop = config.t_stop > 0.0
                       ? config.t_stop
                       : 50.0 * static_cast<double>(config.stages) * 2.0e-10;
  options.dt_max = options.t_stop / 4000.0;
  // Kick the ring out of its metastable DC point: alternate the stage
  // nodesets; with an odd stage count one edge is frustrated and the ring
  // starts oscillating.
  for (std::size_t s = 0; s < build.stage_nodes.size(); ++s) {
    options.dc.nodeset[build.stage_nodes[s]] =
        (s % 2 == 0) ? 0.0 : config.tech.v_dd;
  }
  return options;
}

}  // namespace

RingRtnResult ring_rtn_analysis(const RingConfig& config, std::uint64_t seed,
                                double rtn_scale) {
  RingRtnResult result;
  const double threshold = 0.5 * config.tech.v_dd;

  // Nominal run.
  spice::Circuit nominal;
  const RingBuild build = build_ring(nominal, config);
  const auto options = ring_transient_options(config, build);
  const auto nominal_run = spice::transient(nominal, options);
  result.nominal = period_statistics(
      rising_crossings(nominal_run.voltage(build.stage_nodes[0]), threshold));

  // SAMURAI traces for every transistor of every stage.
  const physics::SrhModel srh(config.tech);
  util::Rng rng(seed);
  spice::Circuit noisy;
  const RingBuild noisy_build = build_ring(noisy, config);

  std::uint64_t device_tag = 0;
  for (std::size_t s = 0; s < config.stages; ++s) {
    for (const char* prefix : {"MN", "MP"}) {
      const std::string name = prefix + std::to_string(s);
      auto* source_fet = nominal.find<spice::Mosfet>(name);
      auto* target_fet = noisy.find<spice::Mosfet>(name);
      if (source_fet == nullptr || target_fet == nullptr) continue;
      ++device_tag;

      core::Pwl v_gs, i_d;
      sram::extract_bias(nominal_run, nominal, *source_fet, v_gs, i_d);

      util::Rng profile_rng = rng.split(device_tag * 101);
      const auto traps = physics::sample_trap_profile(
          config.tech, source_fet->model().geometry(), profile_rng);
      physics::MosDevice equivalent(config.tech, physics::MosType::kNmos,
                                    source_fet->model().geometry());
      core::RtnGeneratorOptions gen;
      gen.t0 = 0.0;
      gen.tf = options.t_stop;
      gen.amplitude_scale = rtn_scale;
      gen.envelope_samples = 256;
      util::Rng trap_rng = rng.split(device_tag * 977 + 13);
      auto device_rtn = core::generate_device_rtn(srh, equivalent, traps, v_gs,
                                                  i_d, trap_rng, gen);
      result.rtn_switches += device_rtn.stats.accepted;
      noisy.add<spice::CurrentSource>("Irtn_" + name, target_fet->drain(),
                                      target_fet->source(),
                                      device_rtn.i_rtn.scaled(-1.0));
    }
  }

  const auto noisy_run = spice::transient(noisy, options);
  result.with_rtn = period_statistics(rising_crossings(
      noisy_run.voltage(noisy_build.stage_nodes[0]), threshold));
  if (result.nominal.mean > 0.0 && result.with_rtn.mean > 0.0) {
    result.frequency_shift_ppm =
        (1.0 / result.with_rtn.mean - 1.0 / result.nominal.mean) /
        (1.0 / result.nominal.mean) * 1e6;
  }
  return result;
}

}  // namespace samurai::osc
