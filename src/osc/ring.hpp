// Ring-oscillator RTN analysis (paper future-work direction #4: "RTN is
// also known to impact ring oscillators").
//
// Builds an odd-stage CMOS inverter ring, runs a transient, extracts the
// oscillation period from threshold crossings, and measures how injected
// RTN currents modulate the period (period jitter / frequency shift).
#pragma once

#include <cstdint>
#include <vector>

#include "core/waveform.hpp"
#include "physics/technology.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"

namespace samurai::osc {

struct RingConfig {
  physics::Technology tech;
  std::size_t stages = 5;     ///< odd
  double width_mult_n = 2.0;  ///< NMOS width, × w_min
  double width_mult_p = 4.0;  ///< PMOS width, × w_min
  double t_stop = 0.0;        ///< 0 = auto (enough for ~40 periods)
  double load_cap = 0.0;      ///< extra per-stage load, F (0 = auto)
};

struct RingBuild {
  std::vector<std::string> stage_nodes;  ///< output node of each stage
  std::string vdd_node;
};

/// Build the ring into `circuit` (supply source included).
RingBuild build_ring(spice::Circuit& circuit, const RingConfig& config);

struct PeriodStats {
  std::size_t cycles = 0;
  double mean = 0.0;    ///< s
  double stddev = 0.0;  ///< s
  std::vector<double> periods;
};

/// Rising-edge crossing times of `waveform` through `threshold`.
std::vector<double> rising_crossings(const core::Pwl& waveform,
                                     double threshold);

/// Period statistics from successive rising crossings, discarding the
/// first `skip_cycles` (startup).
PeriodStats period_statistics(const std::vector<double>& crossings,
                              std::size_t skip_cycles = 4);

struct RingRtnResult {
  PeriodStats nominal;
  PeriodStats with_rtn;
  double frequency_shift_ppm = 0.0;
  std::uint64_t rtn_switches = 0;
};

/// Run the ring twice — without RTN and with SAMURAI traces injected into
/// every transistor (amplitude-scaled by `rtn_scale`) — and compare
/// period statistics.
RingRtnResult ring_rtn_analysis(const RingConfig& config, std::uint64_t seed,
                                double rtn_scale);

}  // namespace samurai::osc
