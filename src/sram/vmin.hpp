// Minimum-operating-voltage (V_min) characterisation — the quantity the
// paper's Fig. 2 frames the whole problem around: how much V_dd margin
// each non-ideality costs, and how much *extra* margin RTN demands.
//
// The cell+pattern is swept over supply voltages; V_min is the lowest
// supply at which the test pattern completes without write errors. Run
// once without RTN and once with SAMURAI traces injected (worst case over
// several trap-population seeds), the difference is the simulated RTN
// V_dd margin. This also implements the "accelerated RTN testing"
// alternative the paper cites (ref. [14]): instead of scaling I_RTN, the
// cell is operated at reduced supply where unscaled RTN already matters.
#pragma once

#include <cstdint>
#include <vector>

#include "sram/methodology.hpp"

namespace samurai::sram {

struct VminConfig {
  MethodologyConfig cell;   ///< tech.v_dd is overridden by the sweep
  double v_lo = 0.4;        ///< sweep floor, V
  double v_hi = 0.0;        ///< sweep ceiling; 0 = tech.v_dd
  double resolution = 0.025;///< sweep step, V
  std::size_t rtn_seeds = 4;///< worst-case over this many trap draws
  bool count_slow_as_fail = false;
  /// Worker threads across sweep points. Every point derives its RTN
  /// seeds from `Rng(cell.seed).split(s + 1)` independently of the other
  /// points, so any thread count is bit-identical to the serial sweep.
  std::size_t threads = 1;
};

struct VminPoint {
  double v_dd = 0.0;
  bool nominal_pass = false;
  std::size_t rtn_failures = 0;  ///< out of rtn_seeds
};

struct VminResult {
  std::vector<VminPoint> sweep;   ///< ascending v_dd
  /// Whether a passing supply exists in the sweep range. When a flag is
  /// false the corresponding vmin value is NaN — an all-fail sweep must
  /// never be mistaken for a 0 V V_min.
  bool nominal_found = false;
  bool rtn_found = false;
  double vmin_nominal = 0.0;      ///< NaN unless nominal_found
  double vmin_rtn = 0.0;          ///< lowest v where *all* seeds pass; NaN
                                  ///< unless rtn_found
  /// RTN's V_dd margin cost: vmin_rtn - vmin_nominal (the paper's Fig. 2
  /// "RTN" stack increment, obtained from simulation). NaN unless both
  /// V_min values were found.
  double rtn_margin = 0.0;
};

VminResult find_vmin(const VminConfig& config);

}  // namespace samurai::sram
