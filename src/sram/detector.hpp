// Write-error and slow-down detection (paper Fig. 5 distinguishes three
// outcomes: clean write, slowed write, write error).
#pragma once

#include <optional>
#include <vector>

#include "core/waveform.hpp"
#include "sram/pattern.hpp"

namespace samurai::sram {

enum class OpOutcome { kOk, kSlow, kError };

struct OpReport {
  Op op = Op::kHold;
  int expected_bit = -1;              ///< -1 when the op doesn't set a value
  OpOutcome outcome = OpOutcome::kOk;
  double q_at_slot_end = 0.0;         ///< V
  /// Time after WL de-assertion at which Q settled to the expected value
  /// (only meaningful for writes); unset if it never settled in the slot.
  std::optional<double> settle_after_wl;
};

struct PatternReport {
  std::vector<OpReport> ops;
  bool any_error = false;
  bool any_slow = false;
};

struct DetectorOptions {
  double v_dd = 1.0;
  /// |Q - target| must be below this fraction of v_dd to count as settled.
  double settle_frac = 0.15;
  /// A write counts as "slow" if Q settles only later than this fraction
  /// of the slot period after WL turns off.
  double slow_margin_frac = 0.05;
};

/// Analyse a storage-node waveform Q(t) against the driven pattern.
/// The expected bit tracks writes; reads and holds must preserve it.
PatternReport check_pattern(const core::Pwl& q, const PatternWaveforms& pattern,
                            const DetectorOptions& options);

}  // namespace samurai::sram
