// Transistor-level SRAM column: N 6T cells sharing a differential bitline
// pair with precharge devices, an equaliser and NMOS write drivers — the
// array context the single-cell methodology abstracts away.
//
// Reads here are *real* reads: the bitlines are precharged high, released
// to float, and the addressed cell discharges one of them through its
// pass gate and pull-down; the sensed bit is the sign of V_bl - V_blb at
// sense time and the sense margin is its magnitude. RTN that weakens the
// discharge path directly shrinks the sense margin / read speed — the
// read-failure mechanism of paper ref. [16] in its natural habitat.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/rtn_integration.hpp"
#include "sram/cell.hpp"

namespace samurai::sram {

struct ColumnOp {
  enum class Kind { kWrite, kRead, kNop };
  Kind kind = Kind::kNop;
  std::size_t cell = 0;  ///< addressed cell
  int bit = 0;           ///< written value (writes only)

  static ColumnOp write(std::size_t cell, int bit) {
    return {Kind::kWrite, cell, bit};
  }
  static ColumnOp read(std::size_t cell) { return {Kind::kRead, cell, 0}; }
  static ColumnOp nop() { return {}; }
};

struct ColumnTiming {
  double period = 1e-9;
  double edge = 50e-12;
  double precharge_frac = 0.25;  ///< precharge window at the slot start
  double wl_on_frac = 0.32;      ///< WL rises here
  double wl_off_frac = 0.80;     ///< WL falls here
  /// Read sense instant: shortly after WL rises, while the differential
  /// is still a few hundred mV (sensing a fully railed bitline would hide
  /// any RTN-induced discharge slowdown).
  double sense_frac = 0.40;
};

struct ColumnConfig {
  physics::Technology tech;
  CellSizing sizing;
  std::size_t num_cells = 4;
  double bitline_cap = 120e-15;  ///< per bitline, F (a tall column)
  double driver_width_mult = 6.0;///< write-driver NMOS width, x w_min
  double precharge_width_mult = 16.0;
  ColumnTiming timing;
  std::vector<ColumnOp> ops;
  /// Initial stored value per cell (nodeset).
  std::vector<int> initial_bits;
};

struct ColumnBuild {
  std::vector<SramCellHandles> cells;
  std::string bl, blb, vdd;
};

/// Build the column circuit (cells + precharge + drivers + sources) for
/// the given op sequence. Returns the handles needed for probing.
ColumnBuild build_column(spice::Circuit& circuit, const ColumnConfig& config);

struct ReadOutcome {
  std::size_t slot = 0;
  std::size_t cell = 0;
  int expected = -1;        ///< tracked stored value, -1 if unknown
  int sensed = -1;          ///< sign of the differential at sense time
  double sense_margin = 0.0;///< |V_bl - V_blb| at sense time, V
  bool disturbed = false;   ///< cell state flipped by the read
};

struct WriteOutcome {
  std::size_t slot = 0;
  std::size_t cell = 0;
  int bit = 0;
  bool ok = false;
};

struct ColumnReport {
  std::vector<ReadOutcome> reads;
  std::vector<WriteOutcome> writes;
  bool any_error = false;       ///< wrong write, wrong sensed bit or disturb
  double min_sense_margin = 0.0;
};

/// Evaluate a finished transient against the op sequence.
ColumnReport check_column(const spice::TransientResult& result,
                          const ColumnConfig& config,
                          const ColumnBuild& build);

/// Transient options matching a build_column circuit: run window from the
/// op count, dt_max from the slot period, and nodesets placing every cell
/// in its initial_bits basin with the bitlines precharged high. Shared by
/// run_column_rtn, the coupled column and the solver benchmarks (which
/// additionally pin TransientOptions::solver per engine).
spice::TransientOptions column_transient_options(const ColumnConfig& config);

/// Name of cell i's devices/nodes prefix inside a column ("c<i>_").
std::string column_cell_prefix(std::size_t index);

/// Activity partition for a built column: every cell never addressed by
/// `config.ops` is quiescent — its six transistors become elidable and
/// (in Schur mode) its seven private unknowns {q, qb, bl stub, blb stub,
/// vdd stub, wl, Vwl branch} form one fold group whose boundary is the
/// shared bl/blb/vdd rails. Device names (not pointers) are stored so one
/// partition serves both passes of run_rtn_transient, which builds a
/// fresh circuit per pass.
spice::ActivityPartition column_activity(spice::Circuit& circuit,
                                         const ColumnConfig& config,
                                         spice::ActivityMode mode,
                                         double tolerance = 0.0);

struct ColumnRtnResult {
  spice::RtnTransientResult rtn;  ///< nominal + injected transients
  ColumnReport nominal_report;
  ColumnReport rtn_report;
};

/// Run the column nominally and with SAMURAI RTN injected into every cell
/// transistor (amplitude-scaled), via the generic two-pass integration.
/// A non-null `activity` runs both passes activity-partitioned.
ColumnRtnResult run_column_rtn(const ColumnConfig& config, std::uint64_t seed,
                               double rtn_scale,
                               const spice::ActivityPartition* activity = nullptr);

}  // namespace samurai::sram
