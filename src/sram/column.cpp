#include "sram/column.hpp"

#include <cmath>
#include <stdexcept>

#include "spice/devices.hpp"

namespace samurai::sram {

std::string column_cell_prefix(std::size_t index) {
  return "c" + std::to_string(index) + "_";
}

namespace {

std::string cell_prefix(std::size_t index) { return column_cell_prefix(index); }

/// Build the control waveforms for the op sequence.
struct ColumnWaves {
  core::Pwl pcb;                 ///< precharge gate (PMOS, active low)
  std::vector<core::Pwl> wl;     ///< one per cell
  core::Pwl wd0;                 ///< write driver pulling BL low
  core::Pwl wd1;                 ///< write driver pulling BLB low
  double t_end = 0.0;
};

void drive_to(core::Pwl& wave, double t, double edge, double value) {
  const double current = wave.values().empty() ? value : wave.values().back();
  if (current == value) return;
  if (t > wave.back_time()) wave.append(t, current);
  wave.append(t + edge, value);
}

ColumnWaves build_waves(const ColumnConfig& config) {
  const auto& timing = config.timing;
  const double v_dd = config.tech.v_dd;
  ColumnWaves waves;
  waves.t_end = static_cast<double>(config.ops.size()) * timing.period;
  waves.pcb.append(0.0, 0.0);  // precharging at t = 0
  waves.wd0.append(0.0, 0.0);
  waves.wd1.append(0.0, 0.0);
  waves.wl.assign(config.num_cells, {});
  for (auto& wl : waves.wl) wl.append(0.0, 0.0);

  for (std::size_t k = 0; k < config.ops.size(); ++k) {
    const double start = static_cast<double>(k) * timing.period;
    const double pre_end = start + timing.precharge_frac * timing.period;
    const double wl_on = start + timing.wl_on_frac * timing.period;
    const double wl_off = start + timing.wl_off_frac * timing.period;
    const ColumnOp& op = config.ops[k];

    // Precharge at the start of every slot, released before WL rises.
    drive_to(waves.pcb, start, timing.edge, 0.0);
    drive_to(waves.pcb, pre_end, timing.edge, v_dd);

    if (op.kind == ColumnOp::Kind::kNop) continue;
    if (op.cell >= config.num_cells) {
      throw std::invalid_argument("build_column: op addresses missing cell");
    }
    drive_to(waves.wl[op.cell], wl_on, timing.edge, v_dd);
    drive_to(waves.wl[op.cell], wl_off, timing.edge, 0.0);
    if (op.kind == ColumnOp::Kind::kWrite) {
      // Pull the bitline opposite the written value low slightly before
      // WL rises, release after WL falls.
      core::Pwl& driver = op.bit ? waves.wd1 : waves.wd0;
      drive_to(driver, pre_end + timing.edge, timing.edge, v_dd);
      drive_to(driver, wl_off + 2.0 * timing.edge, timing.edge, 0.0);
    }
  }
  return waves;
}

}  // namespace

ColumnBuild build_column(spice::Circuit& circuit, const ColumnConfig& config) {
  if (config.ops.empty() || config.num_cells == 0) {
    throw std::invalid_argument("build_column: need cells and ops");
  }
  ColumnBuild build;
  build.bl = "bl";
  build.blb = "blb";
  build.vdd = "vdd";
  const int bl = circuit.node(build.bl);
  const int blb = circuit.node(build.blb);
  const int vdd = circuit.node(build.vdd);
  const double v_dd = config.tech.v_dd;

  spice::VoltageSource::dc(circuit, "Vdd", vdd, spice::kGround, v_dd);
  const auto waves = build_waves(config);

  // Cells; their private bitline stubs tie to the shared rails through
  // small contact resistances.
  for (std::size_t i = 0; i < config.num_cells; ++i) {
    const std::string prefix = cell_prefix(i);
    auto handles = build_6t_cell(circuit, config.tech, config.sizing, prefix);
    circuit.add<spice::Resistor>(prefix + "Rbl", circuit.find_node(handles.bl),
                                 bl, 20.0);
    circuit.add<spice::Resistor>(prefix + "Rblb",
                                 circuit.find_node(handles.blb), blb, 20.0);
    circuit.add<spice::Resistor>(prefix + "Rvdd",
                                 circuit.find_node(handles.vdd), vdd, 2.0);
    circuit.add<spice::VoltageSource>(circuit, prefix + "Vwl",
                                      circuit.find_node(handles.wl),
                                      spice::kGround, waves.wl[i]);
    build.cells.push_back(std::move(handles));
  }

  // Bitline capacitances (the load that makes reads a discharge race).
  circuit.add<spice::Capacitor>("Cbl", bl, spice::kGround, config.bitline_cap);
  circuit.add<spice::Capacitor>("Cblb", blb, spice::kGround,
                                config.bitline_cap);

  // Precharge PMOS pair + equaliser, gate pcb (active low).
  const int pcb = circuit.node("pcb");
  circuit.add<spice::VoltageSource>(circuit, "Vpcb", pcb, spice::kGround,
                                    waves.pcb);
  const physics::MosGeometry pre_geom{
      config.precharge_width_mult * config.tech.w_min, config.tech.l_min};
  circuit.add<spice::Mosfet>("MPC0", bl, pcb, vdd, vdd,
                             physics::MosDevice(config.tech,
                                                physics::MosType::kPmos,
                                                pre_geom));
  circuit.add<spice::Mosfet>("MPC1", blb, pcb, vdd, vdd,
                             physics::MosDevice(config.tech,
                                                physics::MosType::kPmos,
                                                pre_geom));
  circuit.add<spice::Mosfet>("MEQ", bl, pcb, blb, vdd,
                             physics::MosDevice(config.tech,
                                                physics::MosType::kPmos,
                                                pre_geom));

  // Write drivers: NMOS pull-downs on each bitline.
  const int wd0 = circuit.node("wd0");
  const int wd1 = circuit.node("wd1");
  circuit.add<spice::VoltageSource>(circuit, "Vwd0", wd0, spice::kGround,
                                    waves.wd0);
  circuit.add<spice::VoltageSource>(circuit, "Vwd1", wd1, spice::kGround,
                                    waves.wd1);
  const physics::MosGeometry driver_geom{
      config.driver_width_mult * config.tech.w_min, config.tech.l_min};
  circuit.add<spice::Mosfet>("MWD0", bl, wd0, spice::kGround, spice::kGround,
                             physics::MosDevice(config.tech,
                                                physics::MosType::kNmos,
                                                driver_geom));
  circuit.add<spice::Mosfet>("MWD1", blb, wd1, spice::kGround, spice::kGround,
                             physics::MosDevice(config.tech,
                                                physics::MosType::kNmos,
                                                driver_geom));
  return build;
}

ColumnReport check_column(const spice::TransientResult& result,
                          const ColumnConfig& config,
                          const ColumnBuild& build) {
  ColumnReport report;
  report.min_sense_margin = config.tech.v_dd;
  const double v_dd = config.tech.v_dd;
  const auto& timing = config.timing;

  std::vector<int> stored = config.initial_bits;
  stored.resize(config.num_cells, 0);

  auto cell_bit_at = [&](std::size_t cell, double t) {
    const double q = result.voltage_at(build.cells[cell].q, t);
    return q > 0.5 * v_dd ? 1 : 0;
  };

  for (std::size_t k = 0; k < config.ops.size(); ++k) {
    const ColumnOp& op = config.ops[k];
    const double slot_end =
        (static_cast<double>(k) + 0.999) * timing.period;
    if (op.kind == ColumnOp::Kind::kWrite) {
      WriteOutcome outcome;
      outcome.slot = k;
      outcome.cell = op.cell;
      outcome.bit = op.bit;
      outcome.ok = cell_bit_at(op.cell, slot_end) == op.bit;
      if (!outcome.ok) report.any_error = true;
      stored[op.cell] = outcome.ok ? op.bit : cell_bit_at(op.cell, slot_end);
      report.writes.push_back(outcome);
    } else if (op.kind == ColumnOp::Kind::kRead) {
      ReadOutcome outcome;
      outcome.slot = k;
      outcome.cell = op.cell;
      outcome.expected = stored[op.cell];
      const double t_sense =
          (static_cast<double>(k) + timing.sense_frac) * timing.period;
      const double diff = result.voltage_at(build.bl, t_sense) -
                          result.voltage_at(build.blb, t_sense);
      // Stored 1 -> QB = 0 discharges BLB -> positive differential.
      outcome.sensed = diff > 0.0 ? 1 : 0;
      outcome.sense_margin = std::abs(diff);
      outcome.disturbed = cell_bit_at(op.cell, slot_end) != outcome.expected;
      if (outcome.sensed != outcome.expected || outcome.disturbed) {
        report.any_error = true;
      }
      if (outcome.disturbed) stored[op.cell] = cell_bit_at(op.cell, slot_end);
      report.min_sense_margin =
          std::min(report.min_sense_margin, outcome.sense_margin);
      report.reads.push_back(outcome);
    }
  }
  return report;
}

spice::TransientOptions column_transient_options(const ColumnConfig& config) {
  spice::TransientOptions options;
  options.t_start = 0.0;
  options.t_stop = static_cast<double>(config.ops.size()) *
                   config.timing.period;
  options.dt_max = config.timing.period / 150.0;
  const double v_dd = config.tech.v_dd;
  options.dc.nodeset["bl"] = v_dd;
  options.dc.nodeset["blb"] = v_dd;
  options.dc.nodeset["vdd"] = v_dd;
  for (std::size_t i = 0; i < config.num_cells; ++i) {
    const int bit =
        i < config.initial_bits.size() ? config.initial_bits[i] : 0;
    options.dc.nodeset[cell_prefix(i) + "q"] = bit ? v_dd : 0.0;
    options.dc.nodeset[cell_prefix(i) + "qb"] = bit ? 0.0 : v_dd;
    options.dc.nodeset[cell_prefix(i) + "vdd"] = v_dd;
  }
  return options;
}

spice::ActivityPartition column_activity(spice::Circuit& circuit,
                                         const ColumnConfig& config,
                                         spice::ActivityMode mode,
                                         double tolerance) {
  spice::ActivityPartition partition;
  partition.mode = mode;
  partition.tolerance = tolerance;
  if (mode == spice::ActivityMode::kOff) return partition;

  std::vector<bool> addressed(config.num_cells, false);
  for (const auto& op : config.ops) {
    if (op.kind != ColumnOp::Kind::kNop && op.cell < config.num_cells) {
      addressed[op.cell] = true;
    }
  }
  for (std::size_t i = 0; i < config.num_cells; ++i) {
    if (addressed[i]) continue;
    const std::string prefix = cell_prefix(i);
    for (int m = 1; m <= 6; ++m) {
      partition.quiescent_devices.push_back(prefix + "M" + std::to_string(m));
    }
    if (mode != spice::ActivityMode::kSchur) continue;
    auto* vwl = circuit.find<spice::VoltageSource>(prefix + "Vwl");
    if (vwl == nullptr) {
      throw std::invalid_argument("column_activity: circuit is not a "
                                  "build_column circuit (missing " +
                                  prefix + "Vwl)");
    }
    partition.groups.push_back({circuit.find_node(prefix + "q"),
                                circuit.find_node(prefix + "qb"),
                                circuit.find_node(prefix + "bl"),
                                circuit.find_node(prefix + "blb"),
                                circuit.find_node(prefix + "vdd"),
                                circuit.find_node(prefix + "wl"),
                                vwl->branch_index()});
  }
  return partition;
}

ColumnRtnResult run_column_rtn(const ColumnConfig& config, std::uint64_t seed,
                               double rtn_scale,
                               const spice::ActivityPartition* activity) {
  spice::TransientOptions options = column_transient_options(config);
  if (activity != nullptr) options.activity = *activity;

  // One RTN request per cell transistor, each with its own stream.
  std::vector<spice::RtnRequest> requests;
  for (std::size_t i = 0; i < config.num_cells; ++i) {
    for (int m = 1; m <= 6; ++m) {
      spice::RtnRequest request;
      request.device = cell_prefix(i) + "M" + std::to_string(m);
      request.scale = rtn_scale;
      request.seed = seed + 1000 * i + static_cast<std::uint64_t>(m);
      requests.push_back(std::move(request));
    }
  }

  ColumnRtnResult result;
  ColumnBuild build;  // filled by the first factory invocation
  bool first = true;
  result.rtn = spice::run_rtn_transient(
      [&config, &build, &first] {
        auto circuit = std::make_unique<spice::Circuit>();
        auto this_build = build_column(*circuit, config);
        if (first) {
          build = std::move(this_build);
          first = false;
        }
        return circuit;
      },
      options, requests);
  result.nominal_report = check_column(result.rtn.nominal, config, build);
  result.rtn_report = check_column(result.rtn.with_rtn, config, build);
  return result;
}

}  // namespace samurai::sram
