#include "sram/importance.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace samurai::sram {

ImportanceSample evaluate_importance_sample(const ImportanceConfig& config,
                                            std::size_t index) {
  const util::Rng rng(config.seed);
  const double inv_two_var = 1.0 / (2.0 * config.sigma_vt * config.sigma_vt);
  util::Rng sample_rng = rng.split(index + 1);
  MethodologyConfig cell = config.cell;
  cell.seed = sample_rng.next_u64();

  // Draw V_T offsets from the *biased* distribution N(shift_d, σ²)
  // and accumulate the log likelihood ratio
  //   log w = Σ_d [ φ(x; 0, σ) / φ(x; s_d, σ) ]
  //         = Σ_d (s_d² - 2 s_d x_d) / 2σ².
  double log_weight = 0.0;
  for (int m = 1; m <= 6; ++m) {
    const std::string name = "M" + std::to_string(m);
    const auto it = config.shift.find(name);
    const double shift = it == config.shift.end() ? 0.0 : it->second;
    const double x = sample_rng.normal(shift, config.sigma_vt);
    cell.vth_shifts[name] = x;
    log_weight += (shift * shift - 2.0 * shift * x) * inv_two_var;
  }

  const auto run = run_methodology(cell);
  const auto& report = config.with_rtn ? run.rtn_report : run.nominal_report;
  ImportanceSample sample;
  sample.weight = std::exp(log_weight);
  sample.failed =
      report.any_error || (config.count_slow_as_fail && report.any_slow);
  return sample;
}

std::vector<ImportanceSample> evaluate_importance_batch(
    const ImportanceConfig& config, std::size_t first, std::size_t count) {
  if (config.with_rtn) {
    throw std::invalid_argument(
        "evaluate_importance_batch: with_rtn samples couple to per-sample "
        "RTN traces and must run through evaluate_importance_sample");
  }
  std::vector<ImportanceSample> samples(count);
  if (count == 0) return samples;

  // Reproduce each sample's draws exactly as evaluate_importance_sample
  // does: same split stream, same draw order, same accumulation — the
  // weights must stay bit-identical to the scalar evaluator's.
  const util::Rng rng(config.seed);
  const double inv_two_var = 1.0 / (2.0 * config.sigma_vt * config.sigma_vt);
  std::vector<MethodologyConfig> cells;
  cells.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng sample_rng = rng.split(first + i + 1);
    MethodologyConfig cell = config.cell;
    cell.seed = sample_rng.next_u64();
    double log_weight = 0.0;
    for (int m = 1; m <= 6; ++m) {
      const std::string name = "M" + std::to_string(m);
      const auto it = config.shift.find(name);
      const double shift = it == config.shift.end() ? 0.0 : it->second;
      const double x = sample_rng.normal(shift, config.sigma_vt);
      cell.vth_shifts[name] = x;
      log_weight += (shift * shift - 2.0 * shift * x) * inv_two_var;
    }
    samples[i].weight = std::exp(log_weight);
    cells.push_back(std::move(cell));
  }

  spice::BatchWorkspace workspace;
  const NominalBatchRun run = run_nominal_batch(cells, workspace);
  DetectorOptions detector = config.cell.detector;
  detector.v_dd = config.cell.tech.v_dd;
  for (std::size_t i = 0; i < count; ++i) {
    const PatternReport report = check_pattern(
        run.results[i].voltage(run.q_node), run.pattern, detector);
    samples[i].failed =
        report.any_error || (config.count_slow_as_fail && report.any_slow);
  }
  return samples;
}

ImportanceResult estimate_failure_probability(const ImportanceConfig& config) {
  if (!(config.sigma_vt > 0.0) || config.samples == 0) {
    throw std::invalid_argument("importance sampling: bad configuration");
  }

  // Parallel map: sample n depends only on (config, n) through its
  // rng.split(n + 1) stream and writes only its own slot.
  std::vector<ImportanceSample> outcomes(config.samples);
  util::parallel_for_indexed(
      config.samples,
      [&](std::size_t n) { outcomes[n] = evaluate_importance_sample(config, n); },
      config.threads);

  // Serial reduction in index order: floating-point accumulation stays
  // bit-identical no matter how the map phase was scheduled.
  double weight_sum = 0.0;
  double weight_sq_sum = 0.0;
  double fail_weight_sum = 0.0;
  double fail_weight_sq_sum = 0.0;
  std::size_t failures = 0;
  for (const auto& outcome : outcomes) {
    weight_sum += outcome.weight;
    weight_sq_sum += outcome.weight * outcome.weight;
    if (outcome.failed) {
      ++failures;
      fail_weight_sum += outcome.weight;
      fail_weight_sq_sum += outcome.weight * outcome.weight;
    }
  }

  ImportanceResult result;
  result.samples = config.samples;
  result.failures_observed = failures;
  const double n = static_cast<double>(config.samples);
  result.failure_probability = fail_weight_sum / n;
  // Var(p̂) = (E[w² 1_fail] - p²) / n, estimated from the sample moments.
  const double second_moment = fail_weight_sq_sum / n;
  const double variance = std::max(
      0.0, (second_moment - result.failure_probability *
                                result.failure_probability) / n);
  result.standard_error = std::sqrt(variance);
  result.effective_sample_size =
      weight_sq_sum > 0.0 ? weight_sum * weight_sum / weight_sq_sum : 0.0;
  return result;
}

}  // namespace samurai::sram
