#include "sram/detector.hpp"

#include <cmath>
#include <stdexcept>

namespace samurai::sram {

PatternReport check_pattern(const core::Pwl& q, const PatternWaveforms& pattern,
                            const DetectorOptions& options) {
  if (!(options.v_dd > 0.0)) throw std::invalid_argument("check_pattern: v_dd <= 0");
  PatternReport report;
  report.ops.reserve(pattern.ops.size());

  const double tol = options.settle_frac * options.v_dd;
  int expected_bit = -1;  // unknown until the first write

  for (std::size_t k = 0; k < pattern.ops.size(); ++k) {
    OpReport op_report;
    op_report.op = pattern.ops[k];
    if (op_report.op == Op::kWrite0) expected_bit = 0;
    if (op_report.op == Op::kWrite1) expected_bit = 1;
    op_report.expected_bit = expected_bit;

    const double slot_end =
        pattern.slot_start(k) + pattern.timing.period - 1e-15;
    op_report.q_at_slot_end = q.eval(slot_end);

    if (expected_bit < 0) {  // nothing written yet: nothing to verify
      report.ops.push_back(op_report);
      continue;
    }
    const double target = expected_bit ? options.v_dd : 0.0;
    const bool correct_at_end =
        std::abs(op_report.q_at_slot_end - target) <= tol;

    if (!correct_at_end) {
      op_report.outcome = OpOutcome::kError;
      report.any_error = true;
      report.ops.push_back(op_report);
      continue;
    }

    const bool is_write =
        op_report.op == Op::kWrite0 || op_report.op == Op::kWrite1;
    if (is_write) {
      // Find when Q settles (and stays settled) after WL de-assertion.
      const double wl_off = pattern.wl_off_time(k);
      double settle_time = slot_end;  // pessimistic default
      // Scan backwards: the settle point is the last time |Q - target|
      // exceeded tol, clipped to wl_off.
      const auto& ts = q.times();
      const auto& vs = q.values();
      double last_bad = wl_off;
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i] < pattern.slot_start(k) || ts[i] > slot_end) continue;
        if (std::abs(vs[i] - target) > tol && ts[i] > last_bad) {
          last_bad = ts[i];
        }
      }
      settle_time = last_bad;
      op_report.settle_after_wl = std::max(0.0, settle_time - wl_off);
      if (*op_report.settle_after_wl >
          options.slow_margin_frac * pattern.timing.period) {
        op_report.outcome = OpOutcome::kSlow;
        report.any_slow = true;
      }
    }
    report.ops.push_back(op_report);
  }
  return report;
}

}  // namespace samurai::sram
