#include "sram/array2d.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/rtn_generator.hpp"
#include "physics/srh_model.hpp"
#include "physics/trap_profile.hpp"
#include "spice/devices.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace samurai::sram {

std::string array_cell_prefix(std::size_t row, std::size_t col) {
  return "r" + std::to_string(row) + "c" + std::to_string(col) + "_";
}

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Control waveforms for the op sequence (same slot timing discipline as
/// the column's build_waves, widened to per-row WL and per-column
/// drivers).
struct ArrayWaves {
  core::Pwl pcb;                  ///< shared precharge gate (active low)
  std::vector<core::Pwl> wl;      ///< one per row
  std::vector<core::Pwl> wd0;     ///< per column, pulls BL low
  std::vector<core::Pwl> wd1;     ///< per column, pulls BLB low
};

void drive_to(core::Pwl& wave, double t, double edge, double value) {
  const double current = wave.values().empty() ? value : wave.values().back();
  if (current == value) return;
  if (t > wave.back_time()) wave.append(t, current);
  wave.append(t + edge, value);
}

ArrayWaves build_waves(const Array2dConfig& config) {
  const auto& timing = config.timing;
  const double v_dd = config.tech.v_dd;
  ArrayWaves waves;
  waves.pcb.append(0.0, 0.0);  // precharging at t = 0
  waves.wl.assign(config.rows, {});
  for (auto& wl : waves.wl) wl.append(0.0, 0.0);
  waves.wd0.assign(config.cols, {});
  waves.wd1.assign(config.cols, {});
  for (auto& wd : waves.wd0) wd.append(0.0, 0.0);
  for (auto& wd : waves.wd1) wd.append(0.0, 0.0);

  for (std::size_t k = 0; k < config.ops.size(); ++k) {
    const double start = static_cast<double>(k) * timing.period;
    const double pre_end = start + timing.precharge_frac * timing.period;
    const double wl_on = start + timing.wl_on_frac * timing.period;
    const double wl_off = start + timing.wl_off_frac * timing.period;
    const ArrayOp& op = config.ops[k];

    drive_to(waves.pcb, start, timing.edge, 0.0);
    drive_to(waves.pcb, pre_end, timing.edge, v_dd);

    if (op.kind == ArrayOp::Kind::kNop) continue;
    if (op.row >= config.rows) {
      throw std::invalid_argument("build_array2d: op addresses missing row");
    }
    drive_to(waves.wl[op.row], wl_on, timing.edge, v_dd);
    drive_to(waves.wl[op.row], wl_off, timing.edge, 0.0);
    if (op.kind == ArrayOp::Kind::kWrite) {
      if (op.bits.size() != config.cols) {
        throw std::invalid_argument(
            "build_array2d: write word width != cols");
      }
      for (std::size_t c = 0; c < config.cols; ++c) {
        core::Pwl& driver = op.bits[c] ? waves.wd1[c] : waves.wd0[c];
        drive_to(driver, pre_end + timing.edge, timing.edge, v_dd);
        drive_to(driver, wl_off + 2.0 * timing.edge, timing.edge, 0.0);
      }
    }
  }
  return waves;
}

int initial_bit(const Array2dConfig& config, std::size_t row,
                std::size_t col) {
  const std::size_t flat = row * config.cols + col;
  return flat < config.initial_bits.size() ? config.initial_bits[flat] : 0;
}

}  // namespace

Array2dBuild build_array2d(spice::Circuit& circuit,
                           const Array2dConfig& config) {
  if (config.ops.empty() || config.rows == 0 || config.cols == 0) {
    throw std::invalid_argument("build_array2d: need rows, cols and ops");
  }
  Array2dBuild build;
  build.vdd = "vdd";
  const int vdd = circuit.node(build.vdd);
  const double v_dd = config.tech.v_dd;
  spice::VoltageSource::dc(circuit, "Vdd", vdd, spice::kGround, v_dd);
  const auto waves = build_waves(config);

  // Wordline rails, one per row.
  std::vector<int> wl_rail(config.rows);
  for (std::size_t r = 0; r < config.rows; ++r) {
    build.wl.push_back("wl" + std::to_string(r));
    wl_rail[r] = circuit.node(build.wl.back());
    circuit.add<spice::VoltageSource>(circuit, "Vwl" + std::to_string(r),
                                      wl_rail[r], spice::kGround,
                                      waves.wl[r]);
  }

  // Column rails + periphery.
  const int pcb = circuit.node("pcb");
  circuit.add<spice::VoltageSource>(circuit, "Vpcb", pcb, spice::kGround,
                                    waves.pcb);
  const physics::MosGeometry pre_geom{
      config.precharge_width_mult * config.tech.w_min, config.tech.l_min};
  const physics::MosGeometry driver_geom{
      config.driver_width_mult * config.tech.w_min, config.tech.l_min};
  std::vector<int> bl_rail(config.cols), blb_rail(config.cols);
  for (std::size_t c = 0; c < config.cols; ++c) {
    const std::string suffix = std::to_string(c);
    build.bl.push_back("bl" + suffix);
    build.blb.push_back("blb" + suffix);
    const int bl = circuit.node(build.bl.back());
    const int blb = circuit.node(build.blb.back());
    bl_rail[c] = bl;
    blb_rail[c] = blb;
    circuit.add<spice::Capacitor>("Cbl" + suffix, bl, spice::kGround,
                                  config.bitline_cap);
    circuit.add<spice::Capacitor>("Cblb" + suffix, blb, spice::kGround,
                                  config.bitline_cap);
    circuit.add<spice::Mosfet>(
        "MPC0_" + suffix, bl, pcb, vdd, vdd,
        physics::MosDevice(config.tech, physics::MosType::kPmos, pre_geom));
    circuit.add<spice::Mosfet>(
        "MPC1_" + suffix, blb, pcb, vdd, vdd,
        physics::MosDevice(config.tech, physics::MosType::kPmos, pre_geom));
    circuit.add<spice::Mosfet>(
        "MEQ_" + suffix, bl, pcb, blb, vdd,
        physics::MosDevice(config.tech, physics::MosType::kPmos, pre_geom));
    const int wd0 = circuit.node("wd0_" + suffix);
    const int wd1 = circuit.node("wd1_" + suffix);
    circuit.add<spice::VoltageSource>(circuit, "Vwd0_" + suffix, wd0,
                                      spice::kGround, waves.wd0[c]);
    circuit.add<spice::VoltageSource>(circuit, "Vwd1_" + suffix, wd1,
                                      spice::kGround, waves.wd1[c]);
    circuit.add<spice::Mosfet>(
        "MWD0_" + suffix, bl, wd0, spice::kGround, spice::kGround,
        physics::MosDevice(config.tech, physics::MosType::kNmos, driver_geom));
    circuit.add<spice::Mosfet>(
        "MWD1_" + suffix, blb, wd1, spice::kGround, spice::kGround,
        physics::MosDevice(config.tech, physics::MosType::kNmos, driver_geom));
  }

  // Cells: private stubs tie each cell to its column/row/supply rails
  // through small contact resistances (the WL stub keeps every cell
  // unknown private, which is what lets the Schur fold condense a
  // quiescent cell onto the rails).
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t c = 0; c < config.cols; ++c) {
      const std::string prefix = array_cell_prefix(r, c);
      auto handles =
          build_6t_cell(circuit, config.tech, config.sizing, prefix);
      circuit.add<spice::Resistor>(prefix + "Rbl",
                                   circuit.find_node(handles.bl), bl_rail[c],
                                   20.0);
      circuit.add<spice::Resistor>(prefix + "Rblb",
                                   circuit.find_node(handles.blb),
                                   blb_rail[c], 20.0);
      circuit.add<spice::Resistor>(prefix + "Rvdd",
                                   circuit.find_node(handles.vdd), vdd, 2.0);
      circuit.add<spice::Resistor>(prefix + "Rwl",
                                   circuit.find_node(handles.wl), wl_rail[r],
                                   10.0);
      build.cells.push_back(std::move(handles));
    }
  }
  return build;
}

Array2dReport check_array2d(const spice::TransientResult& result,
                            const Array2dConfig& config,
                            const Array2dBuild& build) {
  Array2dReport report;
  const double v_dd = config.tech.v_dd;
  report.min_sense_margin = v_dd;
  report.column_worst_margin.assign(config.cols, v_dd);
  const auto& timing = config.timing;

  std::vector<int> stored(config.rows * config.cols);
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t c = 0; c < config.cols; ++c) {
      stored[r * config.cols + c] = initial_bit(config, r, c);
    }
  }

  auto cell_bit_at = [&](std::size_t flat, double t) {
    const double q = result.voltage_at(build.cells[flat].q, t);
    return q > 0.5 * v_dd ? 1 : 0;
  };

  for (std::size_t k = 0; k < config.ops.size(); ++k) {
    const ArrayOp& op = config.ops[k];
    const double slot_end = (static_cast<double>(k) + 0.999) * timing.period;
    if (op.kind == ArrayOp::Kind::kWrite) {
      for (std::size_t c = 0; c < config.cols; ++c) {
        const std::size_t flat = op.row * config.cols + c;
        WriteOutcome outcome;
        outcome.slot = k;
        outcome.cell = flat;
        outcome.bit = op.bits[c];
        outcome.ok = cell_bit_at(flat, slot_end) == op.bits[c];
        if (!outcome.ok) report.any_error = true;
        stored[flat] = outcome.ok ? op.bits[c] : cell_bit_at(flat, slot_end);
        report.writes.push_back(outcome);
      }
    } else if (op.kind == ArrayOp::Kind::kRead) {
      const double t_sense =
          (static_cast<double>(k) + timing.sense_frac) * timing.period;
      for (std::size_t c = 0; c < config.cols; ++c) {
        const std::size_t flat = op.row * config.cols + c;
        ReadOutcome outcome;
        outcome.slot = k;
        outcome.cell = flat;
        outcome.expected = stored[flat];
        const double diff = result.voltage_at(build.bl[c], t_sense) -
                            result.voltage_at(build.blb[c], t_sense);
        outcome.sensed = diff > 0.0 ? 1 : 0;
        outcome.sense_margin = std::abs(diff);
        outcome.disturbed = cell_bit_at(flat, slot_end) != outcome.expected;
        if (outcome.sensed != outcome.expected || outcome.disturbed) {
          report.any_error = true;
        }
        if (outcome.disturbed) stored[flat] = cell_bit_at(flat, slot_end);
        report.min_sense_margin =
            std::min(report.min_sense_margin, outcome.sense_margin);
        report.column_worst_margin[c] =
            std::min(report.column_worst_margin[c], outcome.sense_margin);
        report.reads.push_back(outcome);
      }
    }
  }
  return report;
}

spice::TransientOptions array2d_transient_options(
    const Array2dConfig& config) {
  spice::TransientOptions options;
  options.t_start = 0.0;
  options.t_stop =
      static_cast<double>(config.ops.size()) * config.timing.period;
  options.dt_max = config.timing.period / 150.0;
  const double v_dd = config.tech.v_dd;
  options.dc.nodeset["vdd"] = v_dd;
  for (std::size_t c = 0; c < config.cols; ++c) {
    options.dc.nodeset["bl" + std::to_string(c)] = v_dd;
    options.dc.nodeset["blb" + std::to_string(c)] = v_dd;
  }
  for (std::size_t r = 0; r < config.rows; ++r) {
    for (std::size_t c = 0; c < config.cols; ++c) {
      const std::string prefix = array_cell_prefix(r, c);
      const int bit = initial_bit(config, r, c);
      options.dc.nodeset[prefix + "q"] = bit ? v_dd : 0.0;
      options.dc.nodeset[prefix + "qb"] = bit ? 0.0 : v_dd;
      options.dc.nodeset[prefix + "vdd"] = v_dd;
    }
  }
  return options;
}

spice::ActivityPartition array2d_activity(spice::Circuit& circuit,
                                          const Array2dConfig& config,
                                          spice::ActivityMode mode,
                                          double tolerance) {
  spice::ActivityPartition partition;
  partition.mode = mode;
  partition.tolerance = tolerance;
  if (mode == spice::ActivityMode::kOff) return partition;

  std::vector<bool> addressed(config.rows, false);
  for (const auto& op : config.ops) {
    if (op.kind != ArrayOp::Kind::kNop && op.row < config.rows) {
      addressed[op.row] = true;
    }
  }
  for (std::size_t r = 0; r < config.rows; ++r) {
    if (addressed[r]) continue;
    for (std::size_t c = 0; c < config.cols; ++c) {
      const std::string prefix = array_cell_prefix(r, c);
      for (int m = 1; m <= 6; ++m) {
        partition.quiescent_devices.push_back(prefix + "M" +
                                              std::to_string(m));
      }
      if (mode != spice::ActivityMode::kSchur) continue;
      partition.groups.push_back({circuit.find_node(prefix + "q"),
                                  circuit.find_node(prefix + "qb"),
                                  circuit.find_node(prefix + "bl"),
                                  circuit.find_node(prefix + "blb"),
                                  circuit.find_node(prefix + "vdd"),
                                  circuit.find_node(prefix + "wl")});
    }
  }
  return partition;
}

Array2dRtnResult run_array2d_rtn(const Array2dConfig& config,
                                 std::uint64_t seed, double rtn_scale,
                                 const spice::ActivityPartition* activity) {
  spice::TransientOptions options = array2d_transient_options(config);
  if (activity != nullptr) options.activity = *activity;
  // Both passes run on the fixed op-slot grid. With LTE control on, every
  // trap transition in any of the R*C injected sources forces a global
  // step refinement, so the injected cost would scale with the total
  // transition count instead of the array size (a 16x16 array already
  // takes ~10x the nominal step count). The fixed grid keeps step
  // placement identical across the two passes — differences in the
  // outcome are attributable to RTN alone — and samples each trap current
  // at the slot resolution the sense checks use.
  options.dt_initial = options.dt_max;
  options.lte_reltol = 1e9;
  options.lte_abstol = 1e9;

  // Mirror of spice::run_rtn_transient with per-phase wall timing and the
  // array's request convention: one RTN stream per cell, on the M5
  // pull-down (the paper's read-margin-critical device).
  Array2dRtnResult result;
  spice::NewtonWorkspace workspace;

  auto build_circuit = [&config](spice::Circuit& circuit) {
    return build_array2d(circuit, config);
  };

  double t0 = now_seconds();
  auto nominal_circuit = std::make_unique<spice::Circuit>();
  Array2dBuild build = build_circuit(*nominal_circuit);
  result.rtn.nominal =
      spice::transient(*nominal_circuit, options, workspace);
  result.nominal_seconds = now_seconds() - t0;

  t0 = now_seconds();
  // Per-cell generation is independent (the RNG stream is derived from the
  // flat index, each iteration writes only its own slot, and the nominal
  // result is read-only), so the cells fan out across the pool; the
  // per-trap parallelism inside generate_device_rtn degrades to serial on
  // pool threads. Bit-identical for any thread count.
  result.rtn.traces.resize(config.rows * config.cols);
  util::parallel_for_indexed(
      config.rows * config.cols,
      [&](std::size_t flat) {
        const std::size_t r = flat / config.cols;
        const std::size_t c = flat % config.cols;
        auto* mosfet = build.cells[flat].mosfet(5);
        spice::DeviceRtnTrace trace;
        trace.device = array_cell_prefix(r, c) + "M5";

        const auto& tech = mosfet->model().tech();
        const physics::SrhModel srh(tech);
        util::Rng rng(seed + 1000 * flat + 5);
        util::Rng profile_rng = rng.split(101);
        trace.traps = physics::sample_trap_profile(
            tech, mosfet->model().geometry(), profile_rng);

        core::Pwl v_gs, i_d;
        spice::extract_device_bias(result.rtn.nominal, *nominal_circuit,
                                   *mosfet, v_gs, i_d);
        const physics::MosDevice equivalent(tech, physics::MosType::kNmos,
                                            mosfet->model().geometry());
        core::RtnGeneratorOptions gen;
        gen.t0 = options.t_start;
        gen.tf = options.t_stop;
        gen.amplitude_scale = rtn_scale;
        util::Rng trap_rng = rng.split(977);
        auto device_rtn = core::generate_device_rtn(
            srh, equivalent, trace.traps, v_gs, i_d, trap_rng, gen);
        trace.n_filled = std::move(device_rtn.n_filled);
        trace.i_rtn = std::move(device_rtn.i_rtn);
        trace.stats = device_rtn.stats;
        result.rtn.traces[flat] = std::move(trace);
      },
      util::ThreadPool::shared().worker_count() + 1);
  result.generation_seconds = now_seconds() - t0;

  t0 = now_seconds();
  auto rtn_circuit = std::make_unique<spice::Circuit>();
  Array2dBuild rtn_build = build_circuit(*rtn_circuit);
  for (std::size_t flat = 0; flat < result.rtn.traces.size(); ++flat) {
    const auto& trace = result.rtn.traces[flat];
    auto* mosfet = rtn_build.cells[flat].mosfet(5);
    auto& source = rtn_circuit->add<spice::CurrentSource>(
        "Irtn_" + trace.device, mosfet->drain(), mosfet->source(),
        trace.i_rtn.scaled(-1.0));
    // Grid-sampled injection: R*C streams of trap corners must not each
    // become breakpoints, or the step count scales with the array's total
    // transition count (see the fixed-grid note above).
    source.set_emit_breakpoints(false);
  }
  result.rtn.with_rtn = spice::transient(*rtn_circuit, options, workspace);
  result.injected_seconds = now_seconds() - t0;

  result.nominal_report = check_array2d(result.rtn.nominal, config, build);
  result.rtn_report = check_array2d(result.rtn.with_rtn, config, rtn_build);
  return result;
}

}  // namespace samurai::sram
