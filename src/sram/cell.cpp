#include "sram/cell.hpp"

#include <stdexcept>

namespace samurai::sram {

bool is_nmos(int index_1_based) {
  switch (index_1_based) {
    case 1:
    case 2:
    case 5:
    case 6:
      return true;
    case 3:
    case 4:
      return false;
    default:
      throw std::invalid_argument("SRAM transistor index must be 1..6");
  }
}

physics::MosGeometry transistor_geometry(const physics::Technology& tech,
                                         const CellSizing& sizing,
                                         int index_1_based) {
  double mult = 0.0;
  switch (index_1_based) {
    case 1:
    case 2:
      mult = sizing.pass_gate;
      break;
    case 3:
    case 4:
      mult = sizing.pull_up;
      break;
    case 5:
    case 6:
      mult = sizing.pull_down;
      break;
    default:
      throw std::invalid_argument("SRAM transistor index must be 1..6");
  }
  return physics::MosGeometry{mult * tech.w_min, tech.l_min};
}

SramCellHandles build_6t_cell(spice::Circuit& circuit,
                              const physics::Technology& tech,
                              const CellSizing& sizing,
                              const std::string& prefix,
                              const VthShifts& vth_shifts) {
  SramCellHandles handles;
  handles.q = prefix + "q";
  handles.qb = prefix + "qb";
  handles.bl = prefix + "bl";
  handles.blb = prefix + "blb";
  handles.wl = prefix + "wl";
  handles.vdd = prefix + "vdd";

  const int q = circuit.node(handles.q);
  const int qb = circuit.node(handles.qb);
  const int bl = circuit.node(handles.bl);
  const int blb = circuit.node(handles.blb);
  const int wl = circuit.node(handles.wl);
  const int vdd = circuit.node(handles.vdd);
  const int gnd = spice::kGround;

  auto shift = [&](const char* name) {
    const auto it = vth_shifts.find(name);
    return it == vth_shifts.end() ? 0.0 : it->second;
  };
  auto make = [&](const char* name, int index, int d, int g, int s, int b) {
    const auto type =
        is_nmos(index) ? physics::MosType::kNmos : physics::MosType::kPmos;
    physics::MosDevice model(tech, type, transistor_geometry(tech, sizing, index),
                             shift(name));
    auto& mosfet = circuit.add<spice::Mosfet>(prefix + name, d, g, s, b,
                                              std::move(model));
    handles.transistors[static_cast<std::size_t>(index - 1)] = &mosfet;
  };

  // Pass gates (drain on the bitline side).
  make("M1", 1, bl, wl, q, gnd);
  make("M2", 2, blb, wl, qb, gnd);
  // Pull-ups (PMOS, bulk at VDD).
  make("M3", 3, q, qb, vdd, vdd);
  make("M4", 4, qb, q, vdd, vdd);
  // Pull-downs.
  make("M5", 5, qb, q, gnd, gnd);
  make("M6", 6, q, qb, gnd, gnd);

  // Small explicit storage-node loads (wiring + diffusion not covered by
  // the constant device caps).
  const double c_node =
      0.15 * tech.c_ox() * tech.w_min * tech.l_min * 4.0 + sizing.extra_node_cap;
  circuit.add<spice::Capacitor>(prefix + "Cq", q, gnd, c_node);
  circuit.add<spice::Capacitor>(prefix + "Cqb", qb, gnd, c_node);
  return handles;
}

}  // namespace samurai::sram
