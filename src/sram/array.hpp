// Statistical RTN analysis of SRAM arrays (paper future-work direction
// #3): Monte-Carlo over cells with independent local V_T variation and
// independent trap populations, counting RTN-induced write errors and
// slow writes across the array.
#pragma once

#include <cstdint>
#include <vector>

#include "sram/methodology.hpp"

namespace samurai::sram {

struct ArrayConfig {
  MethodologyConfig cell;     ///< template (seed is re-derived per cell)
  std::size_t num_cells = 64;
  double sigma_vt = 0.0;      ///< per-transistor V_T variation, V (1σ)
  std::uint64_t seed = 7;
  /// Worker threads. Cells are electrically independent and every cell
  /// derives its own RNG stream from (seed, index), so any thread count
  /// produces bit-identical results to the serial run.
  std::size_t threads = 1;
};

struct CellOutcome {
  std::size_t index = 0;
  bool nominal_error = false;  ///< failed even without RTN (VT variation)
  bool rtn_error = false;
  bool rtn_slow = false;
  std::size_t total_traps = 0;
  std::uint64_t rtn_switches = 0;
};

struct ArrayResult {
  std::vector<CellOutcome> cells;
  std::size_t nominal_errors = 0;
  std::size_t rtn_errors = 0;   ///< errors with RTN (incl. variation-only)
  std::size_t rtn_only_errors = 0;  ///< cells broken by RTN specifically
  /// Cells that fail nominally but pass with RTN: the injected noise also
  /// weakens the device *opposing* the write, so marginal variation
  /// failures can be (luckily) repaired — RTN cuts both ways.
  std::size_t rtn_rescued = 0;
  std::size_t slow_cells = 0;
};

/// Simulate `num_cells` independent cells. Cells are independent circuits
/// (the bit-cell array is electrically decoupled through its drivers), so
/// this is an embarrassingly parallel, deterministic Monte-Carlo.
ArrayResult run_array(const ArrayConfig& config);

/// Simulate the single cell `cell_index` of the array defined by `config`
/// (the loop body of `run_array`). The outcome depends only on
/// (config, cell_index) through `Rng(config.seed).split(cell_index + 1)`,
/// so external drivers (the campaign runtime's shards) can partition the
/// cell range arbitrarily and still reproduce `run_array` bit-exactly.
CellOutcome simulate_array_cell(const ArrayConfig& config,
                                std::size_t cell_index);

}  // namespace samurai::sram
