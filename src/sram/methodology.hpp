// The SAMURAI+SPICE methodology of paper Fig. 8 (left):
//
//   1. transient-simulate the cell on a test pattern *without* RTN,
//      extracting each transistor's time-varying bias V_gs(t), I_d(t);
//   2. run SAMURAI (Algorithm 1) per transistor on a sampled trap profile
//      to produce trap occupancies and I_RTN(t) traces (Eq. 3), optionally
//      amplitude-scaled (the paper uses ×30 in Fig. 8(e));
//   3. re-simulate the cell with each I_RTN injected as a drain-source
//      current source opposing the nominal channel current (Fig. 4 right);
//   4. detect write errors / slow-down on both runs.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/rtn_generator.hpp"
#include "core/waveform.hpp"
#include "physics/technology.hpp"
#include "physics/trap.hpp"
#include "physics/trap_profile.hpp"
#include "spice/analysis.hpp"
#include "spice/batch.hpp"
#include "sram/cell.hpp"
#include "sram/detector.hpp"
#include "sram/pattern.hpp"

namespace samurai::sram {

struct MethodologyConfig {
  physics::Technology tech;
  CellSizing sizing;
  std::vector<Op> ops;            ///< test pattern
  PatternTiming timing;
  std::uint64_t seed = 1;
  double rtn_scale = 1.0;         ///< Fig. 8(e) uses 30
  physics::TrapProfileOptions profile;
  /// If non-empty, I_RTN is injected only into these transistors
  /// ("M1".."M6"); traces are still generated for all six. Used to isolate
  /// which device's RTN drives a failure mode.
  std::set<std::string> rtn_devices;
  VthShifts vth_shifts;           ///< per-transistor variation (arrays)
  DetectorOptions detector;       ///< v_dd is overwritten from tech
  spice::TransientOptions transient;  ///< t_stop overwritten from pattern
  /// Algorithm-1 sampler options (rate-bound override, safety factor,
  /// candidate budget) forwarded to every per-trap simulation.
  core::UniformisationOptions uniformisation;
};

/// Per-transistor SAMURAI outputs (phase 2).
struct TransistorRtn {
  std::string name;               ///< "M1".."M6"
  std::vector<physics::Trap> traps;
  core::Pwl v_gs;                 ///< extracted bias (magnitude for PMOS)
  core::Pwl i_d;                  ///< nominal channel current magnitude
  core::StepTrace n_filled;       ///< trap occupancy (Fig. 8 (b),(c))
  core::Pwl i_rtn;                ///< Eq. 3 trace (Fig. 8 (d)), signed
  core::UniformisationStats stats;
};

struct MethodologyResult {
  PatternWaveforms pattern;
  spice::TransientResult nominal;    ///< Fig. 8(a)
  std::vector<TransistorRtn> rtn;    ///< Fig. 8(b)-(d)
  spice::TransientResult with_rtn;   ///< Fig. 8(e)
  PatternReport nominal_report;
  PatternReport rtn_report;
  std::string q_node, qb_node;       ///< prefixed node names for plotting
};

/// Run the full pipeline. Deterministic given `config.seed`.
MethodologyResult run_methodology(const MethodologyConfig& config);

/// Phase-1 helper exposed for reuse: build and simulate the nominal cell,
/// returning the transient plus the cell handles (by value).
struct NominalRun {
  PatternWaveforms pattern;
  spice::TransientResult result;
  SramCellHandles handles;
};
NominalRun run_nominal(const MethodologyConfig& config,
                       const std::string& prefix = "");

/// Same, but solving into a caller-owned Newton workspace so repeated runs
/// of same-sized cells (Monte-Carlo sweeps, benchmarks) reuse every solver
/// buffer instead of reallocating per transient.
NominalRun run_nominal(const MethodologyConfig& config,
                       spice::NewtonWorkspace& workspace,
                       const std::string& prefix = "");

/// Batched phase 1: the nominal transients of K variation samples marched
/// in lock-step through the batched fixed-grid engine (spice/batch.hpp).
struct NominalBatchRun {
  PatternWaveforms pattern;
  std::vector<spice::TransientResult> results;  ///< index-aligned with configs
  std::string q_node, qb_node;  ///< node names (identical across lanes)
};

/// Run every config's nominal cell through one spice::transient_batch call.
/// All configs must share pattern, timing, technology and sizing — they are
/// Monte-Carlo samples of one workload differing only in `vth_shifts` (and
/// seed); the batch engine enforces the resulting topology equality. Forces
/// `fixed_grid`, so results differ from the adaptive-step run_nominal by
/// integration error only (the step plan is the deterministic fixed grid).
NominalBatchRun run_nominal_batch(std::span<const MethodologyConfig> configs,
                                  spice::BatchWorkspace& workspace);

/// Extract transistor bias waveforms from a transient solution.
/// For NMOS, V_gs(t) = V(gate) - min(V(d), V(s)); for PMOS the magnitude
/// of the overdrive against the higher terminal. I_d is the channel
/// current magnitude from the DC model at the extracted bias.
void extract_bias(const spice::TransientResult& result,
                  const spice::Circuit& circuit, const spice::Mosfet& mosfet,
                  core::Pwl& v_gs, core::Pwl& i_d);

}  // namespace samurai::sram
