// Static noise margin (SNM) analysis of the 6T cell — the classic
// butterfly-curve metric behind the "static noise" base of the paper's
// Fig. 2 margin stack, and the natural place to quantify what a trapped
// charge (an RTN/NBTI V_T shift) costs in stability terms.
//
// The two half-cell voltage-transfer curves are computed by DC-sweeping
// each inverter (with the pass transistor loading it in read mode); the
// SNM is the side of the largest square that fits between the curve and
// the mirrored complement (Seevinck's construction, evaluated on the
// rotated-coordinate residuals).
#pragma once

#include <vector>

#include "physics/technology.hpp"
#include "sram/cell.hpp"

namespace samurai::sram {

enum class SnmMode {
  kHold,  ///< wordline low: pass gates off
  kRead,  ///< wordline high, bitlines at V_dd: the disturbed state
};

struct SnmConfig {
  physics::Technology tech;
  CellSizing sizing;
  VthShifts vth_shifts;   ///< e.g. an RTN/NBTI-induced shift under test
  SnmMode mode = SnmMode::kHold;
  std::size_t sweep_points = 81;
};

struct SnmResult {
  double snm = 0.0;  ///< V; 0 when the cell is not bistable
  /// VTC of inverter 1 (input Q, output QB) on the sweep grid, and of
  /// inverter 2 (input QB, output Q).
  std::vector<double> input_grid;
  std::vector<double> vtc1;
  std::vector<double> vtc2;
};

/// Compute the static noise margin. Deterministic; ~2*sweep_points DC
/// solves.
SnmResult compute_snm(const SnmConfig& config);

}  // namespace samurai::sram
