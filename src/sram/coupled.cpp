#include "sram/coupled.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/rtn_generator.hpp"
#include "physics/srh_model.hpp"
#include "util/rng.hpp"

namespace samurai::sram {

namespace {

/// Live state of one trap during the coupled run.
struct LiveTrap {
  physics::Trap trap;
  physics::TrapState state = physics::TrapState::kEmpty;
  util::Rng rng{0};
  std::vector<double> switch_times;
};

/// Live state of one transistor: its traps, terminal node ids and the
/// current injection value read by the callback source.
struct LiveTransistor {
  std::string name;
  const spice::Mosfet* mosfet = nullptr;
  std::vector<LiveTrap> traps;
  double injection = 0.0;  ///< amps, already sign-flipped to oppose I_d
};

double node_voltage(std::span<const double> x, int id) {
  return id < 0 ? 0.0 : x[static_cast<std::size_t>(id)];
}

/// Advance one trap over [t0, t1] under constant propensities (the bias
/// held over the step): exact two-state simulation via dwell sampling.
void advance_trap(LiveTrap& live, const physics::Propensities& p, double t0,
                  double t1) {
  double t = t0;
  for (;;) {
    const double rate =
        live.state == physics::TrapState::kEmpty ? p.lambda_c : p.lambda_e;
    if (!(rate > 0.0)) return;
    t += live.rng.exponential(rate);
    if (t > t1) return;
    live.switch_times.push_back(t);
    live.state = toggled(live.state);
  }
}

}  // namespace

CoupledResult run_coupled(const MethodologyConfig& config) {
  CoupledResult result;
  result.pattern = build_pattern(config.ops, config.tech.v_dd, config.timing);

  spice::Circuit circuit;
  SramCellHandles handles =
      build_6t_cell(circuit, config.tech, config.sizing, "", config.vth_shifts);
  circuit.add<spice::VoltageSource>(circuit, "Vdd",
                                    circuit.find_node(handles.vdd),
                                    spice::kGround,
                                    core::Pwl::constant(config.tech.v_dd));
  circuit.add<spice::VoltageSource>(circuit, "Vwl", circuit.find_node(handles.wl),
                                    spice::kGround, result.pattern.wl);
  circuit.add<spice::VoltageSource>(circuit, "Vbl", circuit.find_node(handles.bl),
                                    spice::kGround, result.pattern.bl);
  circuit.add<spice::VoltageSource>(circuit, "Vblb",
                                    circuit.find_node(handles.blb),
                                    spice::kGround, result.pattern.blb);
  result.q_node = handles.q;
  result.qb_node = handles.qb;

  const physics::SrhModel srh(config.tech);
  util::Rng rng(config.seed);

  // Live transistors share ownership with the callback sources, which may
  // be invoked during the transient after this function's locals would
  // normally be gone — keep them on the heap for clarity.
  auto live = std::make_shared<std::vector<LiveTransistor>>();
  live->reserve(6);
  for (int m = 1; m <= 6; ++m) {
    LiveTransistor transistor;
    transistor.name = "M" + std::to_string(m);
    transistor.mosfet = handles.mosfet(m);
    util::Rng profile_rng = rng.split(static_cast<std::uint64_t>(m) * 101);
    const auto traps = physics::sample_trap_profile(
        config.tech, transistor_geometry(config.tech, config.sizing, m),
        profile_rng, config.profile);
    transistor.traps.reserve(traps.size());
    for (std::size_t i = 0; i < traps.size(); ++i) {
      LiveTrap live_trap;
      live_trap.trap = traps[i];
      live_trap.state = traps[i].init_state;
      live_trap.rng =
          rng.split(static_cast<std::uint64_t>(m) * 977 + 13).split(i + 1);
      transistor.traps.push_back(std::move(live_trap));
    }
    live->push_back(std::move(transistor));
  }

  // Callback sources read the per-transistor injection value.
  for (std::size_t i = 0; i < live->size(); ++i) {
    auto& transistor = (*live)[i];
    circuit.add<spice::CallbackCurrentSource>(
        "Irtn_" + transistor.name, transistor.mosfet->drain(),
        transistor.mosfet->source(),
        [live, i](double) { return (*live)[i].injection; });
  }

  spice::TransientOptions options = config.transient;
  options.t_start = 0.0;
  options.t_stop = result.pattern.t_end;
  if (options.dt_max <= 0.0) options.dt_max = config.timing.period / 100.0;
  options.dc.nodeset[handles.q] = 0.0;
  options.dc.nodeset[handles.qb] = config.tech.v_dd;
  options.dc.nodeset[handles.vdd] = config.tech.v_dd;
  options.dc.nodeset[handles.bl] = config.tech.v_dd;
  options.dc.nodeset[handles.blb] = config.tech.v_dd;

  double prev_t = 0.0;
  options.on_step = [&, live](double t, std::span<const double> x) {
    for (auto& transistor : *live) {
      const auto* fet = transistor.mosfet;
      const double vd = node_voltage(x, fet->drain());
      const double vg = node_voltage(x, fet->gate());
      const double vs = node_voltage(x, fet->source());
      const bool nmos = fet->model().type() == physics::MosType::kNmos;
      const double v_eff = nmos ? vg - std::min(vd, vs) : std::max(vd, vs) - vg;
      std::size_t filled = 0;
      for (auto& live_trap : transistor.traps) {
        const auto p = srh.propensities(live_trap.trap, v_eff);
        advance_trap(live_trap, p, prev_t, t);
        if (live_trap.state == physics::TrapState::kFilled) ++filled;
      }
      const double i_d = fet->model().evaluate(vg - vs, vd - vs).i_d;
      const physics::MosDevice equivalent(config.tech, physics::MosType::kNmos,
                                          fet->model().geometry());
      const double amp = core::rtn_amplitude(equivalent, v_eff, i_d);
      // Oppose the nominal current direction.
      const double sign = i_d >= 0.0 ? 1.0 : -1.0;
      transistor.injection = -config.rtn_scale * sign * amp *
                             static_cast<double>(filled);
    }
    prev_t = t;
  };

  result.transient = spice::transient(circuit, options);

  DetectorOptions detector = config.detector;
  detector.v_dd = config.tech.v_dd;
  result.report = check_pattern(result.transient.voltage(handles.q),
                                result.pattern, detector);

  for (const auto& transistor : *live) {
    result.transistor_names.push_back(transistor.name);
    std::vector<core::TrapTrajectory> trajectories;
    std::vector<physics::Trap> traps;
    trajectories.reserve(transistor.traps.size());
    for (const auto& live_trap : transistor.traps) {
      trajectories.emplace_back(0.0, result.pattern.t_end,
                                live_trap.trap.init_state,
                                live_trap.switch_times);
      traps.push_back(live_trap.trap);
    }
    result.n_filled.push_back(core::aggregate_filled_count(trajectories));
    result.traps.push_back(std::move(traps));
  }
  return result;
}

CoupledColumnResult run_coupled_column(const ColumnConfig& config,
                                       std::uint64_t seed, double rtn_scale,
                                       const physics::TrapProfileOptions& profile,
                                       spice::SolverKind solver) {
  CoupledColumnResult result;

  spice::Circuit circuit;
  const ColumnBuild build = build_column(circuit, config);

  const physics::SrhModel srh(config.tech);
  util::Rng rng(seed);

  // One live transistor per cell device, 6 N total, streams split per
  // (cell, transistor) so adding cells never perturbs existing streams.
  auto live = std::make_shared<std::vector<LiveTransistor>>();
  live->reserve(6 * config.num_cells);
  for (std::size_t cell = 0; cell < config.num_cells; ++cell) {
    for (int m = 1; m <= 6; ++m) {
      LiveTransistor transistor;
      transistor.name =
          column_cell_prefix(cell) + "M" + std::to_string(m);
      transistor.mosfet = build.cells[cell].mosfet(m);
      util::Rng profile_rng =
          rng.split(cell * 6007 + static_cast<std::uint64_t>(m) * 101);
      const auto traps = physics::sample_trap_profile(
          config.tech, transistor_geometry(config.tech, config.sizing, m),
          profile_rng, profile);
      transistor.traps.reserve(traps.size());
      for (std::size_t i = 0; i < traps.size(); ++i) {
        LiveTrap live_trap;
        live_trap.trap = traps[i];
        live_trap.state = traps[i].init_state;
        live_trap.rng = rng.split(cell * 6007 +
                                  static_cast<std::uint64_t>(m) * 977 + 13)
                            .split(i + 1);
        transistor.traps.push_back(std::move(live_trap));
      }
      result.num_traps += transistor.traps.size();
      live->push_back(std::move(transistor));
    }
  }

  for (std::size_t i = 0; i < live->size(); ++i) {
    auto& transistor = (*live)[i];
    circuit.add<spice::CallbackCurrentSource>(
        "Irtn_" + transistor.name, transistor.mosfet->drain(),
        transistor.mosfet->source(),
        [live, i](double) { return (*live)[i].injection; });
  }

  spice::TransientOptions options = column_transient_options(config);
  options.solver = solver;

  double prev_t = 0.0;
  options.on_step = [&, live](double t, std::span<const double> x) {
    for (auto& transistor : *live) {
      const auto* fet = transistor.mosfet;
      const double vd = node_voltage(x, fet->drain());
      const double vg = node_voltage(x, fet->gate());
      const double vs = node_voltage(x, fet->source());
      const bool nmos = fet->model().type() == physics::MosType::kNmos;
      const double v_eff = nmos ? vg - std::min(vd, vs) : std::max(vd, vs) - vg;
      std::size_t filled = 0;
      for (auto& live_trap : transistor.traps) {
        const auto p = srh.propensities(live_trap.trap, v_eff);
        advance_trap(live_trap, p, prev_t, t);
        if (live_trap.state == physics::TrapState::kFilled) ++filled;
      }
      const double i_d = fet->model().evaluate(vg - vs, vd - vs).i_d;
      const physics::MosDevice equivalent(config.tech, physics::MosType::kNmos,
                                          fet->model().geometry());
      const double amp = core::rtn_amplitude(equivalent, v_eff, i_d);
      const double sign = i_d >= 0.0 ? 1.0 : -1.0;
      transistor.injection = -rtn_scale * sign * amp *
                             static_cast<double>(filled);
    }
    prev_t = t;
  };

  result.transient = spice::transient(circuit, options);
  result.report = check_column(result.transient, config, build);
  for (const auto& transistor : *live) {
    for (const auto& live_trap : transistor.traps) {
      result.switch_events += live_trap.switch_times.size();
    }
  }
  return result;
}

}  // namespace samurai::sram
