#include "sram/methodology.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "physics/srh_model.hpp"
#include "spice/rtn_integration.hpp"
#include "util/rng.hpp"

namespace samurai::sram {

namespace {

/// Wire the pattern sources and supply to a built cell.
void attach_sources(spice::Circuit& circuit, const SramCellHandles& handles,
                    const PatternWaveforms& pattern, double v_dd,
                    const std::string& prefix) {
  circuit.add<spice::VoltageSource>(circuit, prefix + "Vdd",
                                    circuit.find_node(handles.vdd),
                                    spice::kGround, core::Pwl::constant(v_dd));
  circuit.add<spice::VoltageSource>(circuit, prefix + "Vwl",
                                    circuit.find_node(handles.wl),
                                    spice::kGround, pattern.wl);
  circuit.add<spice::VoltageSource>(circuit, prefix + "Vbl",
                                    circuit.find_node(handles.bl),
                                    spice::kGround, pattern.bl);
  circuit.add<spice::VoltageSource>(circuit, prefix + "Vblb",
                                    circuit.find_node(handles.blb),
                                    spice::kGround, pattern.blb);
}

spice::TransientOptions make_transient_options(const MethodologyConfig& config,
                                               const PatternWaveforms& pattern,
                                               const SramCellHandles& handles) {
  spice::TransientOptions options = config.transient;
  options.t_start = 0.0;
  options.t_stop = pattern.t_end;
  if (options.dt_max <= 0.0) options.dt_max = config.timing.period / 40.0;
  options.dc.nodeset[handles.q] = 0.0;
  options.dc.nodeset[handles.qb] = config.tech.v_dd;
  options.dc.nodeset[handles.vdd] = config.tech.v_dd;
  options.dc.nodeset[handles.bl] = config.tech.v_dd;
  options.dc.nodeset[handles.blb] = config.tech.v_dd;
  return options;
}

}  // namespace

void extract_bias(const spice::TransientResult& result,
                  const spice::Circuit& circuit, const spice::Mosfet& mosfet,
                  core::Pwl& v_gs, core::Pwl& i_d) {
  spice::extract_device_bias(result, circuit, mosfet, v_gs, i_d);
}

NominalRun run_nominal(const MethodologyConfig& config,
                       const std::string& prefix) {
  spice::NewtonWorkspace workspace;
  return run_nominal(config, workspace, prefix);
}

NominalRun run_nominal(const MethodologyConfig& config,
                       spice::NewtonWorkspace& workspace,
                       const std::string& prefix) {
  if (config.ops.empty()) {
    throw std::invalid_argument("run_methodology: empty op pattern");
  }
  NominalRun run;
  run.pattern = build_pattern(config.ops, config.tech.v_dd, config.timing);
  spice::Circuit circuit;
  run.handles = build_6t_cell(circuit, config.tech, config.sizing, prefix,
                              config.vth_shifts);
  attach_sources(circuit, run.handles, run.pattern, config.tech.v_dd, prefix);
  const auto options = make_transient_options(config, run.pattern, run.handles);
  run.result = spice::transient(circuit, options, workspace);
  return run;
}

NominalBatchRun run_nominal_batch(std::span<const MethodologyConfig> configs,
                                  spice::BatchWorkspace& workspace) {
  if (configs.empty()) {
    throw std::invalid_argument("run_nominal_batch: no configs");
  }
  if (configs[0].ops.empty()) {
    throw std::invalid_argument("run_nominal_batch: empty op pattern");
  }
  NominalBatchRun run;
  const MethodologyConfig& head = configs[0];
  run.pattern = build_pattern(head.ops, head.tech.v_dd, head.timing);

  // One circuit per lane. The lanes share pattern/tech/sizing, so every
  // cell gets identical wiring and waveforms; only the vth_shifts (and so
  // the MOSFET models) differ — exactly what the batch engine vectorises.
  std::vector<spice::Circuit> circuits(configs.size());
  std::vector<spice::Circuit*> lanes(configs.size());
  SramCellHandles handles;
  for (std::size_t k = 0; k < configs.size(); ++k) {
    handles = build_6t_cell(circuits[k], configs[k].tech, configs[k].sizing,
                            "", configs[k].vth_shifts);
    attach_sources(circuits[k], handles, run.pattern, configs[k].tech.v_dd,
                   "");
    lanes[k] = &circuits[k];
  }
  run.q_node = handles.q;
  run.qb_node = handles.qb;

  auto options = make_transient_options(head, run.pattern, handles);
  options.fixed_grid = true;
  run.results = spice::transient_batch(lanes, options, workspace);
  return run;
}

MethodologyResult run_methodology(const MethodologyConfig& config) {
  MethodologyResult result;
  // One workspace for both transients: the RTN-injected cell only adds
  // current sources, so the MNA system size is identical and phase 3 reuses
  // every solver buffer the nominal run allocated.
  spice::NewtonWorkspace workspace;

  // ---- Phase 1: nominal SPICE run, bias extraction. -----------------------
  // The circuit must outlive bias extraction, so rebuild it here rather
  // than delegating to run_nominal.
  result.pattern = build_pattern(config.ops, config.tech.v_dd, config.timing);
  spice::Circuit nominal_circuit;
  SramCellHandles handles = build_6t_cell(nominal_circuit, config.tech,
                                          config.sizing, "", config.vth_shifts);
  attach_sources(nominal_circuit, handles, result.pattern, config.tech.v_dd, "");
  const auto transient_options =
      make_transient_options(config, result.pattern, handles);
  result.nominal = spice::transient(nominal_circuit, transient_options,
                                    workspace);
  result.q_node = handles.q;
  result.qb_node = handles.qb;

  DetectorOptions detector = config.detector;
  detector.v_dd = config.tech.v_dd;
  result.nominal_report =
      check_pattern(result.nominal.voltage(handles.q), result.pattern, detector);

  // ---- Phase 2: SAMURAI per transistor. -----------------------------------
  const physics::SrhModel srh(config.tech);
  util::Rng rng(config.seed);
  result.rtn.reserve(6);
  for (int m = 1; m <= 6; ++m) {
    const std::string name = "M" + std::to_string(m);
    const spice::Mosfet* mosfet = handles.mosfet(m);
    TransistorRtn entry;
    entry.name = name;

    util::Rng profile_rng = rng.split(static_cast<std::uint64_t>(m) * 101);
    entry.traps = physics::sample_trap_profile(
        config.tech, transistor_geometry(config.tech, config.sizing, m),
        profile_rng, config.profile);

    extract_bias(result.nominal, nominal_circuit, *mosfet, entry.v_gs,
                 entry.i_d);

    // Trap statistics and Eq. 3 use an NMOS-equivalent device so the
    // extracted (positive-when-on) bias feeds both consistently.
    physics::MosDevice equivalent(config.tech, physics::MosType::kNmos,
                                  mosfet->model().geometry());
    core::RtnGeneratorOptions gen;
    gen.t0 = 0.0;
    gen.tf = result.pattern.t_end;
    gen.amplitude_scale = config.rtn_scale;
    gen.uniformisation = config.uniformisation;
    util::Rng trap_rng = rng.split(static_cast<std::uint64_t>(m) * 977 + 13);
    auto device_rtn = core::generate_device_rtn(srh, equivalent, entry.traps,
                                                entry.v_gs, entry.i_d,
                                                trap_rng, gen);
    entry.n_filled = std::move(device_rtn.n_filled);
    entry.i_rtn = std::move(device_rtn.i_rtn);
    entry.stats = device_rtn.stats;
    result.rtn.push_back(std::move(entry));
  }

  // ---- Phase 3: re-simulate with I_RTN injected. --------------------------
  spice::Circuit rtn_circuit;
  SramCellHandles rtn_handles = build_6t_cell(rtn_circuit, config.tech,
                                              config.sizing, "",
                                              config.vth_shifts);
  attach_sources(rtn_circuit, rtn_handles, result.pattern, config.tech.v_dd, "");
  for (int m = 1; m <= 6; ++m) {
    const auto& entry = result.rtn[static_cast<std::size_t>(m - 1)];
    if (!config.rtn_devices.empty() &&
        config.rtn_devices.count(entry.name) == 0) {
      continue;
    }
    const spice::Mosfet* mosfet = rtn_handles.mosfet(m);
    // Inject opposing the nominal channel current (paper Fig. 4 right):
    // the trace is signed like I_d, so the negated source always bucks it.
    rtn_circuit.add<spice::CurrentSource>("Irtn_" + entry.name,
                                          mosfet->drain(), mosfet->source(),
                                          entry.i_rtn.scaled(-1.0));
  }
  result.with_rtn = spice::transient(rtn_circuit, transient_options, workspace);

  // ---- Phase 4: detection. -------------------------------------------------
  result.rtn_report = check_pattern(result.with_rtn.voltage(rtn_handles.q),
                                    result.pattern, detector);
  return result;
}

}  // namespace samurai::sram
