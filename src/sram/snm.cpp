#include "sram/snm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "spice/analysis.hpp"
#include "spice/devices.hpp"
#include "util/grid.hpp"

namespace samurai::sram {

namespace {

/// DC-sweep one half cell: an inverter (pull-up + pull-down) with the
/// input forced, optionally loaded by its pass transistor in read mode.
/// Returns the output voltage at each input grid point.
std::vector<double> sweep_half_cell(const SnmConfig& config, bool first_half,
                                    const std::vector<double>& grid) {
  const auto shift = [&](const char* name) {
    const auto it = config.vth_shifts.find(name);
    return it == config.vth_shifts.end() ? 0.0 : it->second;
  };

  std::vector<double> output;
  output.reserve(grid.size());
  double warm_start = config.tech.v_dd;
  for (double vin : grid) {
    spice::Circuit circuit;
    const int in = circuit.node("in");
    const int out = circuit.node("out");
    const int vdd = circuit.node("vdd");
    spice::VoltageSource::dc(circuit, "Vin", in, spice::kGround, vin);
    spice::VoltageSource::dc(circuit, "Vdd", vdd, spice::kGround,
                             config.tech.v_dd);
    // Half 1: M4 (PU of QB) + M5 (PD of QB), input Q; pass M2 from BLB.
    // Half 2: M3 (PU of Q)  + M6 (PD of Q),  input QB; pass M1 from BL.
    const char* pu_name = first_half ? "M4" : "M3";
    const char* pd_name = first_half ? "M5" : "M6";
    const char* pg_name = first_half ? "M2" : "M1";
    const int pu_index = first_half ? 4 : 3;
    const int pd_index = first_half ? 5 : 6;
    const int pg_index = first_half ? 2 : 1;
    physics::MosDevice pu(config.tech, physics::MosType::kPmos,
                          transistor_geometry(config.tech, config.sizing, pu_index),
                          shift(pu_name));
    physics::MosDevice pd(config.tech, physics::MosType::kNmos,
                          transistor_geometry(config.tech, config.sizing, pd_index),
                          shift(pd_name));
    circuit.add<spice::Mosfet>(pu_name, out, in, vdd, vdd, std::move(pu));
    circuit.add<spice::Mosfet>(pd_name, out, in, spice::kGround,
                               spice::kGround, std::move(pd));
    if (config.mode == SnmMode::kRead) {
      const int bl = circuit.node("bl");
      const int wl = circuit.node("wl");
      spice::VoltageSource::dc(circuit, "Vbl", bl, spice::kGround,
                               config.tech.v_dd);
      spice::VoltageSource::dc(circuit, "Vwl", wl, spice::kGround,
                               config.tech.v_dd);
      physics::MosDevice pg(config.tech, physics::MosType::kNmos,
                            transistor_geometry(config.tech, config.sizing,
                                                pg_index),
                            shift(pg_name));
      circuit.add<spice::Mosfet>(pg_name, bl, wl, out, spice::kGround,
                                 std::move(pg));
    }
    spice::DcOptions options;
    options.nodeset["out"] = warm_start;
    const auto result = spice::dc_operating_point(circuit, options);
    if (!result.converged) {
      throw std::runtime_error("compute_snm: DC sweep did not converge");
    }
    const double vout = result.x[static_cast<std::size_t>(out)];
    output.push_back(vout);
    warm_start = vout;
  }
  return output;
}

}  // namespace

SnmResult compute_snm(const SnmConfig& config) {
  if (config.sweep_points < 8) {
    throw std::invalid_argument("compute_snm: too few sweep points");
  }
  SnmResult result;
  result.input_grid = util::linspace(0.0, config.tech.v_dd,
                                     config.sweep_points);
  result.vtc1 = sweep_half_cell(config, true, result.input_grid);
  result.vtc2 = sweep_half_cell(config, false, result.input_grid);

  // Largest-square construction, evaluated directly in the (Vq, Vqb)
  // plane. Both VTCs are monotone decreasing, so each has a well-defined
  // inverse; a square of side s fits in the upper-left butterfly lobe iff
  // some x satisfies f1(x) - s >= f2inv(x + s) (top-left corner on curve
  // 1, bottom-right corner above curve 2), and symmetrically for the
  // lower-right lobe. The SNM is the smaller lobe's largest s, found by
  // bisection.
  const auto& grid = result.input_grid;
  auto eval_direct = [&](const std::vector<double>& vtc, double x) {
    return util::interp_linear(grid, vtc, x);
  };
  // Inverse of a decreasing VTC: reverse both arrays to get an increasing
  // abscissa for interpolation.
  auto make_inverse = [&](const std::vector<double>& vtc) {
    std::vector<double> ys(vtc.rbegin(), vtc.rend());
    std::vector<double> xs(grid.rbegin(), grid.rend());
    // Enforce strict monotonicity for the interpolator (flat rails).
    std::vector<double> ys2, xs2;
    for (std::size_t i = 0; i < ys.size(); ++i) {
      if (!ys2.empty() && ys[i] <= ys2.back()) continue;
      ys2.push_back(ys[i]);
      xs2.push_back(xs[i]);
    }
    return std::pair<std::vector<double>, std::vector<double>>{ys2, xs2};
  };
  const auto inv1 = make_inverse(result.vtc1);  // x such that f1(x) = y
  const auto inv2 = make_inverse(result.vtc2);  // y such that f2(y) = x

  const double v_dd = config.tech.v_dd;
  // Both boundaries are decreasing, so over the square's x-extent
  // [x, x+s] the upper boundary f1 binds at its right end and the lower
  // boundary f2inv at its left end: the square fits iff
  // f1(x+s) - f2inv(x) >= s for some x (and symmetrically for the lower
  // lobe with the axes swapped).
  auto fits_upper = [&](double s) {
    for (double x = 0.0; x + s <= v_dd; x += v_dd / 400.0) {
      const double top = eval_direct(result.vtc1, x + s);
      const double bottom = util::interp_linear(inv2.first, inv2.second, x);
      if (top - bottom >= s) return true;
    }
    return false;
  };
  auto fits_lower = [&](double s) {
    for (double y = 0.0; y + s <= v_dd; y += v_dd / 400.0) {
      const double right = eval_direct(result.vtc2, y + s);
      const double left = util::interp_linear(inv1.first, inv1.second, y);
      if (right - left >= s) return true;
    }
    return false;
  };
  auto bisect = [&](auto&& fits) {
    if (!fits(1e-6 * v_dd)) return 0.0;
    double lo = 0.0, hi = v_dd;
    for (int iter = 0; iter < 40; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (fits(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };
  const double upper = bisect(fits_upper);
  const double lower = bisect(fits_lower);
  result.snm = std::min(upper, lower);
  return result;
}

}  // namespace samurai::sram
