// Bi-directionally coupled RTN + circuit simulation (paper future-work
// direction #1).
//
// In the baseline methodology the biases driving the trap chains are
// pre-computed from an RTN-free SPICE run. Here the coupling is closed:
// after every accepted transient step, each transistor's trap chains are
// advanced over the step using propensities evaluated at the *actual*
// instantaneous node voltages (which include the RTN's own back-action),
// and the resulting I_RTN is injected into the next step through callback
// current sources. The bias is held constant within a step (explicit
// first-order coupling), so the scheme converges as the step size
// shrinks; within a step the chain advance itself is exact.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trajectory.hpp"
#include "physics/trap.hpp"
#include "physics/trap_profile.hpp"
#include "sram/column.hpp"
#include "sram/methodology.hpp"

namespace samurai::sram {

struct CoupledResult {
  PatternWaveforms pattern;
  spice::TransientResult transient;   ///< the coupled run
  PatternReport report;
  /// Per-transistor occupancy trajectories accumulated during the run.
  std::vector<std::string> transistor_names;
  std::vector<core::StepTrace> n_filled;
  std::vector<std::vector<physics::Trap>> traps;
  std::string q_node, qb_node;
};

/// Run the coupled simulation with the same configuration surface as the
/// staged methodology. `config.rtn_scale` scales the injected amplitude.
CoupledResult run_coupled(const MethodologyConfig& config);

struct CoupledColumnResult {
  spice::TransientResult transient;  ///< the coupled column run
  ColumnReport report;
  std::size_t num_traps = 0;       ///< traps sampled across all cells
  std::uint64_t switch_events = 0; ///< total trap transitions during the run
};

/// Coupled RTN over a whole shared-bitline column: one MNA system holding
/// all N cells of a build_column circuit (solved on the sparse engine above
/// the auto threshold), where every cell transistor carries live trap
/// chains advanced after each accepted step at its actual instantaneous
/// node voltages — so a cell's RTN back-action reaches its neighbours
/// through the shared bitlines within the same run. `solver` pins the
/// linear engine (benchmarks); kAuto sizes it from the column.
CoupledColumnResult run_coupled_column(
    const ColumnConfig& config, std::uint64_t seed, double rtn_scale,
    const physics::TrapProfileOptions& profile = {},
    spice::SolverKind solver = spice::SolverKind::kAuto);

}  // namespace samurai::sram
