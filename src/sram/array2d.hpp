// Transistor-level R×C SRAM array: rows of 6T cells sharing per-row
// wordline rails and per-column differential bitline pairs, with real
// periphery on every column (precharge trio, equaliser, NMOS write
// drivers) and a wordline driver per row. Operations address a whole
// row: a write drives one bit per column, a read senses every column's
// differential at once — which is what makes per-column worst-case sense
// margin under RTN a single-transient measurement.
//
// The array is the target workload of the activity-partitioned engine:
// during any one op at most one row is selected, so (R-1)×C cells are
// quiescent and their device evaluations/factor rows can be elided or
// Schur-folded (array2d_activity builds that partition).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/rtn_integration.hpp"
#include "sram/cell.hpp"
#include "sram/column.hpp"

namespace samurai::sram {

/// One array operation; reads/writes address a full row.
struct ArrayOp {
  enum class Kind { kWrite, kRead, kNop };
  Kind kind = Kind::kNop;
  std::size_t row = 0;
  std::vector<int> bits;  ///< per-column written word (writes only)

  static ArrayOp write(std::size_t row, std::vector<int> bits) {
    return {Kind::kWrite, row, std::move(bits)};
  }
  static ArrayOp read(std::size_t row) { return {Kind::kRead, row, {}}; }
  static ArrayOp nop() { return {}; }
};

struct Array2dConfig {
  physics::Technology tech;
  CellSizing sizing;
  std::size_t rows = 4;
  std::size_t cols = 4;
  double bitline_cap = 120e-15;   ///< per bitline, F
  double driver_width_mult = 6.0;
  double precharge_width_mult = 16.0;
  ColumnTiming timing;            ///< slot timing, shared with the column
  std::vector<ArrayOp> ops;
  /// Initial stored value per cell, flat index row*cols + col; missing
  /// entries default to 0.
  std::vector<int> initial_bits;
};

struct Array2dBuild {
  std::vector<SramCellHandles> cells;  ///< flat index row*cols + col
  std::vector<std::string> bl, blb;    ///< shared rails, one per column
  std::vector<std::string> wl;         ///< wordline rails, one per row
  std::string vdd;
};

/// Name prefix of cell (row, col)'s devices/nodes ("r<row>c<col>_").
std::string array_cell_prefix(std::size_t row, std::size_t col);

/// Build the array circuit (cells + per-row WL drivers + per-column
/// periphery + sources) for the given op sequence.
Array2dBuild build_array2d(spice::Circuit& circuit,
                           const Array2dConfig& config);

struct Array2dReport {
  /// Per-(read op, column) outcomes; ReadOutcome::cell holds the flat
  /// cell index row*cols + col.
  std::vector<ReadOutcome> reads;
  /// Per-(write op, column) outcomes, same flat-index convention.
  std::vector<WriteOutcome> writes;
  bool any_error = false;
  double min_sense_margin = 0.0;
  /// Worst sense margin seen on each column across all reads (v_dd where
  /// a column was never read).
  std::vector<double> column_worst_margin;
};

/// Evaluate a finished transient against the op sequence.
Array2dReport check_array2d(const spice::TransientResult& result,
                            const Array2dConfig& config,
                            const Array2dBuild& build);

/// Transient options matching a build_array2d circuit: window from the op
/// count, dt_max from the slot period, nodesets placing every cell in its
/// initial_bits basin with all bitlines precharged high.
spice::TransientOptions array2d_transient_options(const Array2dConfig& config);

/// Activity partition for a built array: cells on rows never addressed by
/// `config.ops` are quiescent — their six transistors become elidable and
/// (in Schur mode) their six private unknowns {q, qb, bl stub, blb stub,
/// vdd stub, wl stub} form one fold group per cell whose boundary is the
/// shared column/row rails. Stored by device name so one partition serves
/// both run_rtn_transient passes.
spice::ActivityPartition array2d_activity(spice::Circuit& circuit,
                                          const Array2dConfig& config,
                                          spice::ActivityMode mode,
                                          double tolerance = 0.0);

struct Array2dRtnResult {
  spice::RtnTransientResult rtn;  ///< nominal + injected transients
  Array2dReport nominal_report;
  Array2dReport rtn_report;
  // Wall-clock phase split, measured inside the run so benches can gate
  // the injected transient (the partitioned solve) separately from RTN
  // trace generation.
  double nominal_seconds = 0.0;
  double generation_seconds = 0.0;
  double injected_seconds = 0.0;
};

/// Run the array nominally and with SAMURAI RTN injected into every
/// cell's M5 pull-down (amplitude-scaled): the two-pass methodology of
/// run_rtn_transient with per-phase wall timing. A non-null `activity`
/// runs both transients activity-partitioned.
Array2dRtnResult run_array2d_rtn(const Array2dConfig& config,
                                 std::uint64_t seed, double rtn_scale,
                                 const spice::ActivityPartition* activity = nullptr);

}  // namespace samurai::sram
