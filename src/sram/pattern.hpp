// Read/write test patterns: the operation sequences driven onto WL/BL/BLB
// (paper Fig. 4 left shows one write-1 slot; Fig. 8 drives the bit pattern
// [1,1,0,1,0,1,0,0,1]).
#pragma once

#include <string>
#include <vector>

#include "core/waveform.hpp"

namespace samurai::sram {

enum class Op { kWrite0, kWrite1, kRead, kHold };

/// Human-readable op name ("W0", "W1", "RD", "HD").
std::string op_name(Op op);

/// Ops for a bit pattern: each bit becomes a write of that value.
std::vector<Op> ops_from_bits(const std::vector<int>& bits);

struct PatternTiming {
  double period = 2e-9;        ///< one op slot, s
  double wl_delay_frac = 0.2;  ///< WL rises this far into the slot
  double wl_high_frac = 0.5;   ///< WL stays high this fraction of the slot
  double edge = 50e-12;        ///< rise/fall time of WL and BL edges, s
};

struct PatternWaveforms {
  core::Pwl wl;   ///< wordline drive
  core::Pwl bl;   ///< bitline drive
  core::Pwl blb;  ///< complementary bitline drive
  double t_end = 0.0;
  std::vector<Op> ops;
  PatternTiming timing;

  /// Slot boundaries for op k: [slot_start(k), slot_start(k)+period).
  double slot_start(std::size_t k) const;
  /// Time WL is de-asserted (fully low) in slot k.
  double wl_off_time(std::size_t k) const;
};

/// Build the drive waveforms for an op sequence at supply v_dd.
/// Writes drive BL/BLB differentially; reads drive both bitlines to v_dd
/// (a strongly driven read: the classic read-disturb stimulus); holds keep
/// WL low. Bitlines idle at v_dd between ops.
PatternWaveforms build_pattern(const std::vector<Op>& ops, double v_dd,
                               const PatternTiming& timing = {});

}  // namespace samurai::sram
