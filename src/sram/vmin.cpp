#include "sram/vmin.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace samurai::sram {

namespace {

/// One supply point of the sweep. Depends only on (config, v): the RTN
/// seeds are re-derived from Rng(cell.seed).split(s + 1) identically at
/// every point, so points can run in any order / on any thread.
VminPoint evaluate_supply_point(const VminConfig& config, double v) {
  const util::Rng seed_rng(config.cell.seed);
  auto fails = [&](const PatternReport& report) {
    return report.any_error ||
           (config.count_slow_as_fail && report.any_slow);
  };

  VminPoint point;
  point.v_dd = v;
  MethodologyConfig cell = config.cell;
  cell.tech.v_dd = v;
  // Nominal pass/fail is seed-independent but cheapest obtained from the
  // same pipeline (phase 1 + detector only would save the RTN phases;
  // the run below is reused for the first RTN seed).
  bool nominal_known = false;
  for (std::size_t s = 0; s < config.rtn_seeds; ++s) {
    cell.seed = seed_rng.split(s + 1).next_u64();
    MethodologyResult run;
    try {
      run = run_methodology(cell);
    } catch (const std::exception&) {
      // Non-convergence at very low supply counts as failure everywhere.
      point.nominal_pass = false;
      point.rtn_failures = config.rtn_seeds;
      break;
    }
    if (!nominal_known) {
      point.nominal_pass = !fails(run.nominal_report);
      nominal_known = true;
      if (!point.nominal_pass) {
        // A nominally broken supply fails with RTN too; skip the seeds.
        point.rtn_failures = config.rtn_seeds;
        break;
      }
    }
    if (fails(run.rtn_report)) ++point.rtn_failures;
  }
  return point;
}

}  // namespace

VminResult find_vmin(const VminConfig& config) {
  const double v_hi = config.v_hi > 0.0 ? config.v_hi : config.cell.tech.v_dd;
  if (!(config.v_lo < v_hi) || !(config.resolution > 0.0)) {
    throw std::invalid_argument("find_vmin: bad sweep range");
  }
  VminResult result;

  // Materialise the sweep grid with the same accumulation the serial loop
  // used (bit-identical supply values), then fan the points out.
  std::vector<double> supplies;
  for (double v = config.v_lo; v <= v_hi + 1e-12; v += config.resolution) {
    supplies.push_back(v);
  }
  result.sweep.resize(supplies.size());
  util::parallel_for_indexed(
      supplies.size(),
      [&](std::size_t i) {
        result.sweep[i] = evaluate_supply_point(config, supplies[i]);
      },
      config.threads);

  // V_min = the lowest supply from which everything above also passes.
  // "Never passes in range" is an explicit flag (value NaN), not a 0.0
  // sentinel — an all-fail sweep must not report a 0 V V_min.
  const double not_found = std::numeric_limits<double>::quiet_NaN();
  auto lowest_all_above = [&](auto&& passes, bool& found) {
    double vmin = not_found;
    found = false;
    for (auto it = result.sweep.rbegin(); it != result.sweep.rend(); ++it) {
      if (!passes(*it)) break;
      vmin = it->v_dd;
      found = true;
    }
    return vmin;
  };
  result.vmin_nominal = lowest_all_above(
      [](const VminPoint& p) { return p.nominal_pass; }, result.nominal_found);
  result.vmin_rtn = lowest_all_above(
      [](const VminPoint& p) { return p.nominal_pass && p.rtn_failures == 0; },
      result.rtn_found);
  result.rtn_margin = (result.nominal_found && result.rtn_found)
                          ? result.vmin_rtn - result.vmin_nominal
                          : not_found;
  return result;
}

}  // namespace samurai::sram
