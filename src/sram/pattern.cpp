#include "sram/pattern.hpp"

#include <stdexcept>

namespace samurai::sram {

std::string op_name(Op op) {
  switch (op) {
    case Op::kWrite0: return "W0";
    case Op::kWrite1: return "W1";
    case Op::kRead: return "RD";
    case Op::kHold: return "HD";
  }
  return "??";
}

std::vector<Op> ops_from_bits(const std::vector<int>& bits) {
  std::vector<Op> ops;
  ops.reserve(bits.size());
  for (int bit : bits) ops.push_back(bit ? Op::kWrite1 : Op::kWrite0);
  return ops;
}

double PatternWaveforms::slot_start(std::size_t k) const {
  return static_cast<double>(k) * timing.period;
}

double PatternWaveforms::wl_off_time(std::size_t k) const {
  return slot_start(k) +
         (timing.wl_delay_frac + timing.wl_high_frac) * timing.period +
         timing.edge;
}

namespace {

/// Append a transition to `target` at time t over `edge` seconds, if the
/// value differs from the current level.
void drive_to(core::Pwl& wave, double t, double edge, double value) {
  const double current = wave.values().empty() ? value : wave.values().back();
  if (current == value) return;
  if (t > wave.back_time()) wave.append(t, current);
  wave.append(t + edge, value);
}

}  // namespace

PatternWaveforms build_pattern(const std::vector<Op>& ops, double v_dd,
                               const PatternTiming& timing) {
  if (ops.empty()) throw std::invalid_argument("build_pattern: empty op list");
  if (!(timing.wl_delay_frac + timing.wl_high_frac < 1.0)) {
    throw std::invalid_argument("build_pattern: WL window exceeds the slot");
  }
  PatternWaveforms wf;
  wf.ops = ops;
  wf.timing = timing;
  wf.t_end = static_cast<double>(ops.size()) * timing.period;
  wf.wl.append(0.0, 0.0);
  wf.bl.append(0.0, v_dd);
  wf.blb.append(0.0, v_dd);

  for (std::size_t k = 0; k < ops.size(); ++k) {
    const double start = static_cast<double>(k) * timing.period;
    const double wl_on = start + timing.wl_delay_frac * timing.period;
    const double wl_off =
        start + (timing.wl_delay_frac + timing.wl_high_frac) * timing.period;
    const Op op = ops[k];

    // Bitlines settle at the slot start, before WL rises.
    switch (op) {
      case Op::kWrite0:
        drive_to(wf.bl, start, timing.edge, 0.0);
        drive_to(wf.blb, start, timing.edge, v_dd);
        break;
      case Op::kWrite1:
        drive_to(wf.bl, start, timing.edge, v_dd);
        drive_to(wf.blb, start, timing.edge, 0.0);
        break;
      case Op::kRead:
        drive_to(wf.bl, start, timing.edge, v_dd);
        drive_to(wf.blb, start, timing.edge, v_dd);
        break;
      case Op::kHold:
        break;
    }
    if (op != Op::kHold) {
      drive_to(wf.wl, wl_on, timing.edge, v_dd);
      drive_to(wf.wl, wl_off, timing.edge, 0.0);
    }
    // Release bitlines to the idle level after the wordline closes.
    const double release = wl_off + 2.0 * timing.edge;
    if (release < start + timing.period) {
      drive_to(wf.bl, release, timing.edge, v_dd);
      drive_to(wf.blb, release, timing.edge, v_dd);
    }
  }
  return wf;
}

}  // namespace samurai::sram
