// Importance sampling for rare SRAM failures.
//
// The paper notes RTN-induced write errors are "extremely rare events";
// array bit-error rates live at 4-6 sigma of the local-variation
// distribution where naive Monte-Carlo needs millions of cells. The
// standard industry remedy is mean-shift importance sampling: draw the
// per-transistor V_T offsets from a distribution biased toward the
// failure region and re-weight each sample by its likelihood ratio, which
// leaves the estimator unbiased while concentrating samples where
// failures happen.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sram/methodology.hpp"

namespace samurai::sram {

struct ImportanceConfig {
  MethodologyConfig cell;   ///< pattern, tech, rtn_scale, ...
  double sigma_vt = 0.03;   ///< per-transistor V_T variation (1 sigma), V
  /// Mean shift of the biasing distribution per transistor ("M1".."M6",
  /// volts). Empty = naive Monte-Carlo.
  std::map<std::string, double> shift;
  std::size_t samples = 200;
  std::uint64_t seed = 1;
  bool count_slow_as_fail = false;
  bool with_rtn = true;     ///< judge the RTN run (false: nominal run)
  /// Worker threads. Every sample derives its randomness from
  /// `rng.split(n + 1)` and the estimator reduces per-sample terms in
  /// index order, so any thread count is bit-identical to the serial run.
  std::size_t threads = 1;
};

struct ImportanceResult {
  double failure_probability = 0.0;  ///< unbiased estimate
  double standard_error = 0.0;
  std::size_t failures_observed = 0; ///< raw failing samples
  double effective_sample_size = 0.0;///< (Σw)² / Σw² over all samples
  std::size_t samples = 0;
};

/// Estimate the probability that a random cell (V_T offsets ~ N(0, σ²)
/// per transistor, trap population per seed) fails the write pattern.
ImportanceResult estimate_failure_probability(const ImportanceConfig& config);

/// One importance sample: likelihood-ratio weight and pass/fail verdict.
struct ImportanceSample {
  double weight = 0.0;
  bool failed = false;
};

/// Evaluate sample `index` of the stream defined by `config`. This is the
/// loop body of `estimate_failure_probability`: the sample depends only on
/// (config, index) through `Rng(config.seed).split(index + 1)`, so external
/// drivers (the campaign runtime's shards) can partition [0, samples)
/// arbitrarily and still reproduce the in-process estimator bit-exactly.
ImportanceSample evaluate_importance_sample(const ImportanceConfig& config,
                                            std::size_t index);

/// Evaluate samples [first, first + count) of the same stream through the
/// batched fixed-grid transient engine. Requires `config.with_rtn == false`
/// (the RTN-injected run couples each lane to its own generated traces and
/// stays scalar): the verdict then depends only on the nominal transient,
/// so the whole SAMURAI phase is skipped and K cells share one lock-step
/// solve. Each sample draws its V_T offsets from exactly the stream
/// `evaluate_importance_sample` uses, so weights are bit-identical to the
/// scalar evaluator; verdicts come from the fixed-grid (not adaptive)
/// nominal waveform and are independent of how indices are grouped into
/// batches (all lanes share one breakpoint set, hence one step plan).
std::vector<ImportanceSample> evaluate_importance_batch(
    const ImportanceConfig& config, std::size_t first, std::size_t count);

}  // namespace samurai::sram
