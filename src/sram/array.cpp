#include "sram/array.hpp"

#include <thread>

#include "util/rng.hpp"

namespace samurai::sram {

namespace {

CellOutcome simulate_cell(const ArrayConfig& config, std::size_t cell_index) {
  util::Rng rng(config.seed);
  util::Rng cell_rng = rng.split(cell_index + 1);
  MethodologyConfig cell = config.cell;
  cell.seed = cell_rng.next_u64();
  if (config.sigma_vt > 0.0) {
    for (int m = 1; m <= 6; ++m) {
      cell.vth_shifts["M" + std::to_string(m)] =
          cell_rng.normal(0.0, config.sigma_vt);
    }
  }
  const auto run = run_methodology(cell);

  CellOutcome outcome;
  outcome.index = cell_index;
  outcome.nominal_error = run.nominal_report.any_error;
  outcome.rtn_error = run.rtn_report.any_error;
  outcome.rtn_slow = run.rtn_report.any_slow;
  for (const auto& transistor : run.rtn) {
    outcome.total_traps += transistor.traps.size();
    outcome.rtn_switches += transistor.stats.accepted;
  }
  return outcome;
}

}  // namespace

ArrayResult run_array(const ArrayConfig& config) {
  ArrayResult result;
  result.cells.resize(config.num_cells);

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(config.threads, config.num_cells));
  if (workers == 1) {
    for (std::size_t i = 0; i < config.num_cells; ++i) {
      result.cells[i] = simulate_cell(config, i);
    }
  } else {
    // Static stride partition: each cell's result depends only on
    // (config, index), so scheduling cannot change the outcome.
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&config, &result, w, workers] {
        for (std::size_t i = w; i < config.num_cells; i += workers) {
          result.cells[i] = simulate_cell(config, i);
        }
      });
    }
    for (auto& worker : pool) worker.join();
  }

  for (const auto& outcome : result.cells) {
    if (outcome.nominal_error) ++result.nominal_errors;
    if (outcome.rtn_error) ++result.rtn_errors;
    if (outcome.rtn_error && !outcome.nominal_error) ++result.rtn_only_errors;
    if (!outcome.rtn_error && outcome.nominal_error) ++result.rtn_rescued;
    if (outcome.rtn_slow) ++result.slow_cells;
  }
  return result;
}

}  // namespace samurai::sram
