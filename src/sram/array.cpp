#include "sram/array.hpp"

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace samurai::sram {

CellOutcome simulate_array_cell(const ArrayConfig& config,
                                std::size_t cell_index) {
  util::Rng rng(config.seed);
  util::Rng cell_rng = rng.split(cell_index + 1);
  MethodologyConfig cell = config.cell;
  cell.seed = cell_rng.next_u64();
  if (config.sigma_vt > 0.0) {
    for (int m = 1; m <= 6; ++m) {
      cell.vth_shifts["M" + std::to_string(m)] =
          cell_rng.normal(0.0, config.sigma_vt);
    }
  }
  const auto run = run_methodology(cell);

  CellOutcome outcome;
  outcome.index = cell_index;
  outcome.nominal_error = run.nominal_report.any_error;
  outcome.rtn_error = run.rtn_report.any_error;
  outcome.rtn_slow = run.rtn_report.any_slow;
  for (const auto& transistor : run.rtn) {
    outcome.total_traps += transistor.traps.size();
    outcome.rtn_switches += transistor.stats.accepted;
  }
  return outcome;
}

ArrayResult run_array(const ArrayConfig& config) {
  ArrayResult result;
  result.cells.resize(config.num_cells);

  // Each cell's outcome depends only on (config, index), so any schedule
  // on the shared executor produces the serial result; a worker exception
  // (e.g. a tripped uniformisation budget) cancels the remaining cells and
  // rethrows here instead of terminating the process.
  util::parallel_for_indexed(
      config.num_cells,
      [&](std::size_t i) { result.cells[i] = simulate_array_cell(config, i); },
      config.threads);

  for (const auto& outcome : result.cells) {
    if (outcome.nominal_error) ++result.nominal_errors;
    if (outcome.rtn_error) ++result.rtn_errors;
    if (outcome.rtn_error && !outcome.nominal_error) ++result.rtn_only_errors;
    if (!outcome.rtn_error && outcome.nominal_error) ++result.rtn_rescued;
    if (outcome.rtn_slow) ++result.slow_cells;
  }
  return result;
}

}  // namespace samurai::sram
