// 6T SRAM cell construction (paper Fig. 1).
//
// Transistor naming follows the paper's Fig. 1/§IV-B usage:
//   M1: NMOS pass   BL  <-> Q,  gate WL
//   M2: NMOS pass   BLB <-> QB, gate WL
//   M3: PMOS pull-up of Q,  gate QB
//   M4: PMOS pull-up of QB, gate Q
//   M5: NMOS pull-down of QB, gate Q   (paper: "M5, whose gate voltage is Q")
//   M6: NMOS pull-down of Q,  gate QB  (paper: "M6, whose gate voltage is Q̄")
#pragma once

#include <array>
#include <map>
#include <string>

#include "physics/mos_device.hpp"
#include "physics/technology.hpp"
#include "spice/circuit.hpp"
#include "spice/devices.hpp"

namespace samurai::sram {

/// Width multipliers (× technology w_min) for the classic read/write-
/// stable ratioed cell. All lengths are l_min.
struct CellSizing {
  double pull_down = 2.0;
  double pass_gate = 1.2;
  double pull_up = 1.0;
  /// Extra capacitance on each storage node, F. Models the bitline/wiring
  /// loading reflected into the cell; raising it slows the write toward
  /// the margin where RTN glitches matter (paper Fig. 5's regime).
  double extra_node_cap = 0.0;
};

/// Per-transistor threshold shifts for variation studies; keys "M1".."M6".
using VthShifts = std::map<std::string, double>;

struct SramCellHandles {
  std::string q, qb, bl, blb, wl, vdd;    ///< node names (prefixed)
  std::array<spice::Mosfet*, 6> transistors{};  ///< index i -> M(i+1)
  spice::Mosfet* mosfet(int index_1_based) const {
    return transistors.at(static_cast<std::size_t>(index_1_based - 1));
  }
};

/// Build one 6T cell into `circuit`. All cell nodes are prefixed with
/// `prefix` (e.g. "c00_q"); rail/wordline/bitline nodes are prefixed too,
/// so the caller wires sources to handles.wl / .bl / .blb / .vdd.
SramCellHandles build_6t_cell(spice::Circuit& circuit,
                              const physics::Technology& tech,
                              const CellSizing& sizing = {},
                              const std::string& prefix = "",
                              const VthShifts& vth_shifts = {});

/// Geometry of a cell transistor under a sizing rule (for trap profiling).
physics::MosGeometry transistor_geometry(const physics::Technology& tech,
                                         const CellSizing& sizing,
                                         int index_1_based);

/// True for the NMOS members of the cell (M1, M2, M5, M6).
bool is_nmos(int index_1_based);

}  // namespace samurai::sram
