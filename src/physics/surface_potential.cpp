#include "physics/surface_potential.hpp"

#include <cmath>

#include "physics/constants.hpp"

namespace samurai::physics {

SurfacePotentialSolver::SurfacePotentialSolver(const Technology& tech)
    : v_fb_(tech.v_fb),
      t_ox_(tech.t_ox),
      phi_t_(tech.phi_t()),
      phi_f_(tech.phi_f()),
      gamma_b_(tech.gamma_body()) {}

double SurfacePotentialSolver::gate_voltage_of_psi(double psi) const {
  const double u = psi / phi_t_;
  // Clamp the exponentials: beyond ~40 φ_t the charge term is astronomically
  // large and bisection will never go there anyway.
  const double eu = std::exp(std::min(-u, 60.0));
  const double inv = std::exp(-2.0 * phi_f_ / phi_t_) *
                     (std::exp(std::min(u, 60.0)) - u - 1.0);
  const double h = (eu + u - 1.0) + inv;
  const double charge = gamma_b_ * std::sqrt(std::max(phi_t_ * h, 0.0));
  return v_fb_ + psi + (psi >= 0.0 ? charge : -charge);
}

double SurfacePotentialSolver::solve_psi_s(double v_gb) const {
  // The map ψ_s -> V_gb is strictly increasing; bracket and bisect.
  double lo = -1.5;
  double hi = 2.0 * phi_f_ + 30.0 * phi_t_;
  if (gate_voltage_of_psi(lo) >= v_gb) return lo;
  if (gate_voltage_of_psi(hi) <= v_gb) return hi;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (gate_voltage_of_psi(mid) < v_gb) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

SurfaceState SurfacePotentialSolver::solve(double v_gb) const {
  SurfaceState state;
  state.psi_s = solve_psi_s(v_gb);
  state.f_ox = (v_gb - v_fb_ - state.psi_s) / t_ox_;
  // Surface electron concentration n_s = n_i exp((ψ_s - φ_F)/φ_t), so the
  // Fermi level sits q(ψ_s - φ_F) above the intrinsic level (in eV, since
  // φ in volts maps 1:1 to eV).
  state.ef_minus_ei = state.psi_s - phi_f_;
  return state;
}

}  // namespace samurai::physics
