// A single oxide trap: position, energy and initial occupancy.
#pragma once

#include <cstdint>

namespace samurai::physics {

/// Trap occupancy states of the two-state Markov chain (paper Fig. 6).
enum class TrapState : std::uint8_t { kEmpty = 0, kFilled = 1 };

constexpr TrapState toggled(TrapState s) {
  return s == TrapState::kEmpty ? TrapState::kFilled : TrapState::kEmpty;
}

struct Trap {
  double y_tr;               ///< depth into the oxide from the Si interface, m
  double e_tr;               ///< energy at flat-band, eV relative to E_i
  TrapState init_state = TrapState::kEmpty;
};

}  // namespace samurai::physics
