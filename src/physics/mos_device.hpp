// DC MOSFET model shared by the circuit simulator and by Eq. 3's
// I_RTN computation: an EKV-style single-expression interpolation that is
// smooth from subthreshold to strong inversion (crucial both for Newton
// convergence in SPICE and for evaluating trap statistics across the full
// gate swing of an SRAM cell).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "physics/technology.hpp"

namespace samurai::physics {

enum class MosType { kNmos, kPmos };

struct MosGeometry {
  double width;   ///< m
  double length;  ///< m
};

struct MosOperatingPoint {
  double i_d;   ///< drain current, A (positive into drain for NMOS)
  double g_m;   ///< dI/dVgs, S
  double g_ds;  ///< dI/dVds, S
  double g_mb;  ///< dI/dVbs, S (simplified body effect)
};

/// The bias-independent constants the DC model actually consumes, packed
/// so the evaluation kernel is a pure function of (constants, voltages).
/// `MosDevice::evaluate` and the batched SoA evaluator (`MosBatch`) both
/// call the same kernel, so a batched lane is bit-identical to the scalar
/// device it mirrors.
struct MosEvalConstants {
  double sign;          ///< +1 NMOS, -1 PMOS (mirror transform)
  double v_th;          ///< |V_th| including local variation shift
  double body_k;        ///< linearised body-effect coefficient
  double inv_slope_n;   ///< 1 / n
  double inv_2phi_t;    ///< 1 / (2 φ_t)
  double spec;          ///< EKV specific current 2 n μ C_ox (W/L) φ_t²
  double lambda_clm;    ///< channel-length modulation coefficient
};

class MosDevice {
 public:
  /// `v_th_shift` adds to the threshold magnitude (local variation; used
  /// by the SRAM-array Monte-Carlo analysis).
  MosDevice(const Technology& tech, MosType type, MosGeometry geom,
            double v_th_shift = 0.0);

  /// Evaluate the DC model. Voltages are the device's own terminal
  /// voltages (for PMOS pass the physical voltages; the model mirrors
  /// internally). `v_bs` shifts the threshold via a linearised body effect.
  /// Defined inline below: this is the single hottest function of the
  /// whole simulator (once per FET per Newton iteration).
  MosOperatingPoint evaluate(double v_gs, double v_ds, double v_bs = 0.0) const;

  /// Inversion carrier areal density (1/m^2) at gate bias v_gs — the N in
  /// paper Eq. 3. Smooth exponential-to-linear interpolation, never zero.
  double carrier_density(double v_gs) const;

  /// Total inversion carrier count W·L·N (denominator of paper Eq. 3).
  double carrier_count(double v_gs) const;

  /// Transconductance at bias, used for the thermal-noise floor
  /// S_thermal = (8/3) k T g_m (paper §IV-A).
  double transconductance(double v_gs, double v_ds) const;

  double v_th() const noexcept { return v_th_; }
  const MosGeometry& geometry() const noexcept { return geom_; }
  MosType type() const noexcept { return type_; }
  const Technology& tech() const noexcept { return tech_; }

  /// The kernel constants of this device (see MosEvalConstants).
  MosEvalConstants eval_constants() const noexcept {
    return {type_ == MosType::kNmos ? 1.0 : -1.0,
            v_th_,
            body_k_,
            inv_slope_n_,
            inv_2phi_t_,
            spec_,
            lambda_clm_};
  }

 private:
  Technology tech_;
  MosType type_;
  MosGeometry geom_;
  double v_th_;      ///< |V_th| of the device
  double mobility_;  ///< carrier mobility
  double slope_n_;   ///< subthreshold slope factor n
  // Bias-independent constants hoisted out of the per-iteration evaluate()
  // (the Technology getters hide sqrt/log/div chains).
  double phi_t_ = 0.0;
  double inv_2phi_t_ = 0.0;
  double body_k_ = 0.0;
  double spec_ = 0.0;  ///< 2 n μ C_ox (W/L) φ_t², the EKV specific current
  double inv_slope_n_ = 0.0;
  double density_coeff_ = 0.0;  ///< C_ox n φ_t / q for carrier_density
  double inv_n_phi_t_ = 0.0;
  double lambda_clm_ = 0.0;
};


namespace detail {

/// softplus(x) and σ(x) at the same argument from a single exp.
struct SoftplusSigmoid {
  double soft;
  double sig;
};

inline SoftplusSigmoid softplus_sigmoid(double x) {
  if (x > 30.0) return {x, 1.0};
  if (x < -30.0) {
    const double ex = std::exp(x);
    return {ex, ex};
  }
  const double ex = std::exp(x);
  return {std::log1p(ex), ex / (1.0 + ex)};
}

inline double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace detail

/// The shared DC evaluation kernel: a pure function of the packed
/// constants and the terminal voltages, with no branches beyond the
/// softplus cutoffs — the SIMD-clean form the batched evaluator loops
/// over. Keep this the *only* implementation of the model: scalar and
/// batched paths must stay bit-identical.
inline MosOperatingPoint mos_evaluate(const MosEvalConstants& c, double v_gs,
                                      double v_ds, double v_bs) {
  // PMOS is the mirrored NMOS: evaluate with negated voltages and negate
  // the current and gds/gm signs appropriately.
  const double vgs = c.sign * v_gs;
  const double vds = c.sign * v_ds;
  const double vbs = c.sign * v_bs;

  const double v_th_eff = c.v_th - c.body_k * vbs;
  const double v_p = (vgs - v_th_eff) * c.inv_slope_n;

  const double xf = v_p * c.inv_2phi_t;
  const double xr = (v_p - vds) * c.inv_2phi_t;
  const auto f = detail::softplus_sigmoid(xf);
  const auto r = detail::softplus_sigmoid(xr);
  const double i_spec = c.spec * (f.soft * f.soft - r.soft * r.soft);
  const double clm = 1.0 + c.lambda_clm * std::max(vds, 0.0);

  MosOperatingPoint op;
  op.i_d = c.sign * i_spec * clm;

  // d(lf^2)/dx = 2 lf σ(x); chain through x derivatives.
  const double dlf2 = 2.0 * f.soft * f.sig;
  const double dlr2 = 2.0 * r.soft * r.sig;
  const double gm_core =
      c.spec * (dlf2 - dlr2) * c.inv_slope_n * c.inv_2phi_t * clm;
  const double gds_core = c.spec * dlr2 * c.inv_2phi_t * clm +
                          i_spec * (vds > 0.0 ? c.lambda_clm : 0.0);
  // gm and gds are derivatives wrt the device's own (mirrored) voltages;
  // the double sign flip (current and voltage) cancels, so conductances
  // are the same for both polarities.
  op.g_m = gm_core;
  op.g_ds = gds_core;
  op.g_mb = gm_core * c.body_k;
  return op;
}

inline MosOperatingPoint MosDevice::evaluate(double v_gs, double v_ds,
                                             double v_bs) const {
  return mos_evaluate(eval_constants(), v_gs, v_ds, v_bs);
}

/// Structure-of-arrays evaluator for one transistor *slot* replicated
/// across K Monte-Carlo lanes (same topology position, per-lane threshold
/// shifts). The batched transient engine gathers the active lanes'
/// terminal voltages into the compacted input arrays, evaluates them in
/// one contiguous sweep of `mos_evaluate`, and scatters the operating
/// points back into each lane's stamps. Constants are stored SoA per lane
/// and gathered by lane id, so a lane that converges early simply drops
/// out of the compacted range.
class MosBatch {
 public:
  /// Bind one device per lane (all must share sign/geometry-independent
  /// semantics — callers guarantee they occupy the same circuit slot).
  void assign(std::span<const MosDevice* const> devices) {
    constants_.clear();
    constants_.reserve(devices.size());
    for (const MosDevice* device : devices) {
      constants_.push_back(device->eval_constants());
    }
    vgs_.resize(devices.size());
    vds_.resize(devices.size());
    vbs_.resize(devices.size());
    ops_.resize(devices.size());
  }

  std::size_t lanes() const noexcept { return constants_.size(); }

  /// Compacted inputs: position j holds the j-th *active* lane's voltages.
  double* vgs() noexcept { return vgs_.data(); }
  double* vds() noexcept { return vds_.data(); }
  double* vbs() noexcept { return vbs_.data(); }

  /// Evaluate compacted positions [0, count); `lane_ids[j]` names the lane
  /// whose constants position j uses. Results land at the same positions.
  void evaluate(const std::size_t* lane_ids, std::size_t count) {
    for (std::size_t j = 0; j < count; ++j) {
      ops_[j] = mos_evaluate(constants_[lane_ids[j]], vgs_[j], vds_[j],
                             vbs_[j]);
    }
  }

  const MosOperatingPoint& op(std::size_t j) const noexcept { return ops_[j]; }

 private:
  std::vector<MosEvalConstants> constants_;  ///< per lane
  std::vector<double> vgs_, vds_, vbs_;      ///< compacted inputs
  std::vector<MosOperatingPoint> ops_;       ///< compacted outputs
};

}  // namespace samurai::physics
