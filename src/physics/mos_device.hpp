// DC MOSFET model shared by the circuit simulator and by Eq. 3's
// I_RTN computation: an EKV-style single-expression interpolation that is
// smooth from subthreshold to strong inversion (crucial both for Newton
// convergence in SPICE and for evaluating trap statistics across the full
// gate swing of an SRAM cell).
#pragma once

#include "physics/technology.hpp"

namespace samurai::physics {

enum class MosType { kNmos, kPmos };

struct MosGeometry {
  double width;   ///< m
  double length;  ///< m
};

struct MosOperatingPoint {
  double i_d;    ///< drain current, A (positive into drain for NMOS)
  double g_m;    ///< dI/dVgs, S
  double g_ds;   ///< dI/dVds, S
  double g_mb;   ///< dI/dVbs, S (simplified body effect)
  double n_inv;  ///< inversion carrier areal density at source end, 1/m^2
};

class MosDevice {
 public:
  /// `v_th_shift` adds to the threshold magnitude (local variation; used
  /// by the SRAM-array Monte-Carlo analysis).
  MosDevice(const Technology& tech, MosType type, MosGeometry geom,
            double v_th_shift = 0.0);

  /// Evaluate the DC model. Voltages are the device's own terminal
  /// voltages (for PMOS pass the physical voltages; the model mirrors
  /// internally). `v_bs` shifts the threshold via a linearised body effect.
  MosOperatingPoint evaluate(double v_gs, double v_ds, double v_bs = 0.0) const;

  /// Inversion carrier areal density (1/m^2) at gate bias v_gs — the N in
  /// paper Eq. 3. Smooth exponential-to-linear interpolation, never zero.
  double carrier_density(double v_gs) const;

  /// Total inversion carrier count W·L·N (denominator of paper Eq. 3).
  double carrier_count(double v_gs) const;

  /// Transconductance at bias, used for the thermal-noise floor
  /// S_thermal = (8/3) k T g_m (paper §IV-A).
  double transconductance(double v_gs, double v_ds) const;

  double v_th() const noexcept { return v_th_; }
  const MosGeometry& geometry() const noexcept { return geom_; }
  MosType type() const noexcept { return type_; }
  const Technology& tech() const noexcept { return tech_; }

 private:
  Technology tech_;
  MosType type_;
  MosGeometry geom_;
  double v_th_;      ///< |V_th| of the device
  double mobility_;  ///< carrier mobility
  double slope_n_;   ///< subthreshold slope factor n
};

}  // namespace samurai::physics
