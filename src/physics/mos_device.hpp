// DC MOSFET model shared by the circuit simulator and by Eq. 3's
// I_RTN computation: an EKV-style single-expression interpolation that is
// smooth from subthreshold to strong inversion (crucial both for Newton
// convergence in SPICE and for evaluating trap statistics across the full
// gate swing of an SRAM cell).
#pragma once

#include <cmath>

#include "physics/technology.hpp"

namespace samurai::physics {

enum class MosType { kNmos, kPmos };

struct MosGeometry {
  double width;   ///< m
  double length;  ///< m
};

struct MosOperatingPoint {
  double i_d;   ///< drain current, A (positive into drain for NMOS)
  double g_m;   ///< dI/dVgs, S
  double g_ds;  ///< dI/dVds, S
  double g_mb;  ///< dI/dVbs, S (simplified body effect)
};

class MosDevice {
 public:
  /// `v_th_shift` adds to the threshold magnitude (local variation; used
  /// by the SRAM-array Monte-Carlo analysis).
  MosDevice(const Technology& tech, MosType type, MosGeometry geom,
            double v_th_shift = 0.0);

  /// Evaluate the DC model. Voltages are the device's own terminal
  /// voltages (for PMOS pass the physical voltages; the model mirrors
  /// internally). `v_bs` shifts the threshold via a linearised body effect.
  /// Defined inline below: this is the single hottest function of the
  /// whole simulator (once per FET per Newton iteration).
  MosOperatingPoint evaluate(double v_gs, double v_ds, double v_bs = 0.0) const;

  /// Inversion carrier areal density (1/m^2) at gate bias v_gs — the N in
  /// paper Eq. 3. Smooth exponential-to-linear interpolation, never zero.
  double carrier_density(double v_gs) const;

  /// Total inversion carrier count W·L·N (denominator of paper Eq. 3).
  double carrier_count(double v_gs) const;

  /// Transconductance at bias, used for the thermal-noise floor
  /// S_thermal = (8/3) k T g_m (paper §IV-A).
  double transconductance(double v_gs, double v_ds) const;

  double v_th() const noexcept { return v_th_; }
  const MosGeometry& geometry() const noexcept { return geom_; }
  MosType type() const noexcept { return type_; }
  const Technology& tech() const noexcept { return tech_; }

 private:
  Technology tech_;
  MosType type_;
  MosGeometry geom_;
  double v_th_;      ///< |V_th| of the device
  double mobility_;  ///< carrier mobility
  double slope_n_;   ///< subthreshold slope factor n
  // Bias-independent constants hoisted out of the per-iteration evaluate()
  // (the Technology getters hide sqrt/log/div chains).
  double phi_t_ = 0.0;
  double inv_2phi_t_ = 0.0;
  double body_k_ = 0.0;
  double spec_ = 0.0;  ///< 2 n μ C_ox (W/L) φ_t², the EKV specific current
  double inv_slope_n_ = 0.0;
  double density_coeff_ = 0.0;  ///< C_ox n φ_t / q for carrier_density
  double inv_n_phi_t_ = 0.0;
  double lambda_clm_ = 0.0;
};


namespace detail {

/// softplus(x) and σ(x) at the same argument from a single exp.
struct SoftplusSigmoid {
  double soft;
  double sig;
};

inline SoftplusSigmoid softplus_sigmoid(double x) {
  if (x > 30.0) return {x, 1.0};
  if (x < -30.0) {
    const double ex = std::exp(x);
    return {ex, ex};
  }
  const double ex = std::exp(x);
  return {std::log1p(ex), ex / (1.0 + ex)};
}

inline double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace detail

inline MosOperatingPoint MosDevice::evaluate(double v_gs, double v_ds,
                                             double v_bs) const {
  // PMOS is the mirrored NMOS: evaluate with negated voltages and negate
  // the current and gds/gm signs appropriately.
  const double sign = type_ == MosType::kNmos ? 1.0 : -1.0;
  const double vgs = sign * v_gs;
  const double vds = sign * v_ds;
  const double vbs = sign * v_bs;

  const double v_th_eff = v_th_ - body_k_ * vbs;
  const double v_p = (vgs - v_th_eff) * inv_slope_n_;

  const double xf = v_p * inv_2phi_t_;
  const double xr = (v_p - vds) * inv_2phi_t_;
  const auto f = detail::softplus_sigmoid(xf);
  const auto r = detail::softplus_sigmoid(xr);
  const double i_spec = spec_ * (f.soft * f.soft - r.soft * r.soft);
  const double clm = 1.0 + lambda_clm_ * std::max(vds, 0.0);

  MosOperatingPoint op;
  op.i_d = sign * i_spec * clm;

  // d(lf^2)/dx = 2 lf σ(x); chain through x derivatives.
  const double dlf2 = 2.0 * f.soft * f.sig;
  const double dlr2 = 2.0 * r.soft * r.sig;
  const double gm_core =
      spec_ * (dlf2 - dlr2) * inv_slope_n_ * inv_2phi_t_ * clm;
  const double gds_core = spec_ * dlr2 * inv_2phi_t_ * clm +
                          i_spec * (vds > 0.0 ? lambda_clm_ : 0.0);
  // gm and gds are derivatives wrt the device's own (mirrored) voltages;
  // the double sign flip (current and voltage) cancels, so conductances
  // are the same for both polarities.
  op.g_m = gm_core;
  op.g_ds = gds_core;
  op.g_mb = gm_core * body_k_;
  return op;
}

}  // namespace samurai::physics
