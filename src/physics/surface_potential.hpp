// Surface-potential solver for a bulk MOS structure.
//
// The trap propensity ratio β(t) (paper Eq. 2) needs the surface Fermi
// alignment E_F - E_i and the oxide field F_ox at the instantaneous gate
// bias; both follow from the surface potential ψ_s(V_gs). We solve the
// classic charge-sheet implicit equation
//
//   V_gs = V_fb + ψ_s + sign(ψ_s) γ_b sqrt(φ_t h(ψ_s))
//   h(ψ) = (e^{-ψ/φt} + ψ/φt - 1) + e^{-2φF/φt} (e^{ψ/φt} - ψ/φt - 1)
//
// by bisection (the RHS is strictly monotone in ψ_s).
#pragma once

#include "physics/technology.hpp"

namespace samurai::physics {

struct SurfaceState {
  double psi_s;       ///< surface potential, V
  double f_ox;        ///< oxide field (V_gs - V_fb - ψ_s)/t_ox, V/m
  double ef_minus_ei; ///< E_F - E_i at the interface, eV
};

class SurfacePotentialSolver {
 public:
  explicit SurfacePotentialSolver(const Technology& tech);

  /// Solve for ψ_s at gate-to-bulk bias `v_gb` (volts). Accurate to
  /// ~1e-9 V over the accumulation → strong-inversion range.
  double solve_psi_s(double v_gb) const;

  /// Full surface state (ψ_s, oxide field, Fermi alignment).
  SurfaceState solve(double v_gb) const;

 private:
  double gate_voltage_of_psi(double psi) const;

  double v_fb_;
  double t_ox_;
  double phi_t_;
  double phi_f_;
  double gamma_b_;
};

}  // namespace samurai::physics
