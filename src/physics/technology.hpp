// Technology cards: the per-node device and trap parameters every other
// module consumes. Values are representative planar-CMOS numbers chosen to
// reproduce the paper's qualitative regimes (many traps in old nodes, ~5-10
// active traps in scaled nodes, RTN amplitude growing as 1/(W·L)).
#pragma once

#include <string>
#include <vector>

namespace samurai::physics {

struct Technology {
  std::string name;        ///< e.g. "90nm"
  double l_min;            ///< minimum channel length, m
  double w_min;            ///< minimum device width, m
  double t_ox;             ///< oxide thickness, m
  double v_dd;             ///< nominal supply, V
  double v_fb;             ///< flat-band voltage (NMOS), V
  double n_a;              ///< substrate doping, m^-3
  double mu_n;             ///< electron mobility, m^2/(V s)
  double mu_p;             ///< hole mobility, m^2/(V s)
  double lambda_clm;       ///< channel-length modulation, 1/V
  double trap_density;     ///< oxide trap density within energy window, m^-3
  double trap_e_min;       ///< trap energy window lower edge, eV rel. to E_i
  double trap_e_max;       ///< trap energy window upper edge, eV rel. to E_i
  double tau0;             ///< interface trap time constant τ0, s (paper Eq. 1)
  double gamma_tunnel;     ///< tunnelling coefficient γ, 1/m (paper Eq. 1)
  double trap_degeneracy;  ///< degeneracy factor g (paper Eq. 2)
  double temperature;      ///< K

  /// Oxide capacitance per unit area, F/m^2.
  double c_ox() const;
  /// Bulk Fermi potential φ_F = φ_t ln(N_a/n_i), V.
  double phi_f() const;
  /// Body-effect coefficient γ_b = sqrt(2 q ε_si N_a)/C_ox, sqrt(V).
  double gamma_body() const;
  /// Long-channel threshold voltage V_fb + 2φ_F + γ_b sqrt(2φ_F), V.
  double v_th0() const;
  /// Thermal voltage at the card's temperature, V.
  double phi_t() const;
};

/// Predefined nodes: "130nm", "90nm", "65nm", "45nm", "32nm", "22nm".
/// Throws std::invalid_argument for unknown names.
Technology technology(const std::string& node);

/// All predefined node names, largest to smallest.
const std::vector<std::string>& technology_nodes();

}  // namespace samurai::physics
