// Physical constants (SI) used across the trap-physics and device models.
#pragma once

namespace samurai::physics {

inline constexpr double kElementaryCharge = 1.602176634e-19;  ///< C
inline constexpr double kBoltzmann = 1.380649e-23;            ///< J/K
inline constexpr double kBoltzmannEv = 8.617333262e-5;        ///< eV/K
inline constexpr double kEps0 = 8.8541878128e-12;             ///< F/m
inline constexpr double kEpsSiRel = 11.7;                     ///< silicon
inline constexpr double kEpsOxRel = 3.9;                      ///< SiO2
inline constexpr double kRoomTemperature = 300.0;             ///< K
inline constexpr double kIntrinsicSi = 1.0e16;                ///< n_i at 300K, m^-3

/// Thermal voltage kT/q in volts at temperature T (kelvin).
constexpr double thermal_voltage(double temperature_k) {
  return kBoltzmannEv * temperature_k;
}

}  // namespace samurai::physics
