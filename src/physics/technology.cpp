#include "physics/technology.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/constants.hpp"

namespace samurai::physics {

double Technology::c_ox() const { return kEpsOxRel * kEps0 / t_ox; }

double Technology::phi_t() const { return thermal_voltage(temperature); }

double Technology::phi_f() const {
  return phi_t() * std::log(n_a / kIntrinsicSi);
}

double Technology::gamma_body() const {
  return std::sqrt(2.0 * kElementaryCharge * kEpsSiRel * kEps0 * n_a) / c_ox();
}

double Technology::v_th0() const {
  const double two_phi_f = 2.0 * phi_f();
  return v_fb + two_phi_f + gamma_body() * std::sqrt(two_phi_f);
}

namespace {

// Trap densities rise toward scaled nodes (high-k / nitrided oxides trap
// more per volume), while device volume shrinks ~40x from 130nm to 22nm;
// together these give ~60-100 expected traps at 130nm and ~5-10 at 22nm,
// matching the regimes of paper Fig. 3 and §I-B.
const std::vector<Technology> kNodes = {
    // The trap energy window [Emin, Emax] (eV above E_i at flat band) is
    // positioned so traps sweep through resonance with the channel Fermi
    // level somewhere inside the gate swing: frozen empty near V_gs = 0,
    // active around resonance, frozen filled far above it. Mobilities are
    // effective (field- and vsat-degraded) values.
    // name  l_min    w_min    t_ox    v_dd  v_fb   n_a     mu_n   mu_p    clm  N_ot    Emin Emax  tau0    gamma  g   T
    {"130nm", 130e-9, 320e-9, 2.2e-9, 1.5, -0.70, 2.0e23, 0.025, 0.010, 0.06, 1.6e24, 0.25, 1.05, 1e-10, 0.9e10, 1.0, 300.0},
    {"90nm",  90e-9,  220e-9, 1.9e-9, 1.2, -0.70, 3.0e23, 0.022, 0.009, 0.08, 2.2e24, 0.25, 1.00, 1e-10, 0.9e10, 1.0, 300.0},
    {"65nm",  65e-9,  160e-9, 1.6e-9, 1.1, -0.70, 4.0e23, 0.020, 0.008, 0.10, 3.0e24, 0.25, 0.95, 1e-10, 0.9e10, 1.0, 300.0},
    {"45nm",  45e-9,  110e-9, 1.3e-9, 1.0, -0.70, 5.5e23, 0.018, 0.007, 0.12, 4.5e24, 0.25, 0.95, 1e-10, 0.9e10, 1.0, 300.0},
    {"32nm",  32e-9,  80e-9,  1.1e-9, 0.95, -0.70, 7.0e23, 0.016, 0.006, 0.14, 6.0e24, 0.25, 0.90, 1e-10, 0.9e10, 1.0, 300.0},
    {"22nm",  22e-9,  50e-9,  0.95e-9, 0.9, -0.70, 9.0e23, 0.015, 0.006, 0.16, 8.5e24, 0.25, 0.90, 1e-10, 0.9e10, 1.0, 300.0},
};

}  // namespace

Technology technology(const std::string& node) {
  for (const auto& tech : kNodes) {
    if (tech.name == node) return tech;
  }
  throw std::invalid_argument("unknown technology node: " + node);
}

const std::vector<std::string>& technology_nodes() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    out.reserve(kNodes.size());
    for (const auto& tech : kNodes) out.push_back(tech.name);
    return out;
  }();
  return names;
}

}  // namespace samurai::physics
