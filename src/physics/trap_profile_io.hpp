// Trap-profile persistence: the paper's methodology takes trap profiles
// either from the statistical model or "from measurement data [7]". This
// module defines the on-disk interchange format for measured profiles —
// a commented text format with one trap per line:
//
//   # SAMURAI trap profile v1
//   # y_tr(nm)  E_tr(eV)  init(0|1)
//   0.412  0.563  0
//   1.103  0.731  1
//
// so measured populations can be fed into every analysis that accepts a
// std::vector<Trap>.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "physics/trap.hpp"

namespace samurai::physics {

/// Serialise a trap population (depths printed in nm for readability).
void write_trap_profile(std::ostream& os, const std::vector<Trap>& traps);
void write_trap_profile_file(const std::string& path,
                             const std::vector<Trap>& traps);

/// Parse a trap profile; throws std::runtime_error with a line number on
/// malformed input. Comment lines start with '#'; blank lines are ignored;
/// the init column is optional (defaults to empty).
std::vector<Trap> read_trap_profile(std::istream& is);
std::vector<Trap> read_trap_profile_file(const std::string& path);

}  // namespace samurai::physics
