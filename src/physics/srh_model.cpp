#include "physics/srh_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "physics/constants.hpp"

namespace samurai::physics {

SrhModel::SrhModel(const Technology& tech)
    : tech_(tech), surface_(tech), kt_ev_(kBoltzmannEv * tech.temperature) {
  // Tabulate the surface state over the full bias range any circuit
  // waveform can plausibly visit; 1-2 mV resolution is far below kT.
  table_lo_ = -1.0;
  const double table_hi = 2.0 * tech_.v_dd + 1.0;
  const std::size_t points = 4096;
  table_step_ = (table_hi - table_lo_) / static_cast<double>(points - 1);
  table_f_ox_.reserve(points);
  table_ef_ei_.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const SurfaceState s =
        surface_.solve(table_lo_ + table_step_ * static_cast<double>(i));
    table_f_ox_.push_back(s.f_ox);
    table_ef_ei_.push_back(s.ef_minus_ei);
  }
}

SurfaceState SrhModel::surface_state(double v_gs) const {
  const double pos = (v_gs - table_lo_) / table_step_;
  if (pos < 0.0 || pos >= static_cast<double>(table_f_ox_.size() - 1)) {
    return surface_.solve(v_gs);  // outside the table: direct solve
  }
  const auto i = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(i);
  SurfaceState s;
  s.f_ox = table_f_ox_[i] + frac * (table_f_ox_[i + 1] - table_f_ox_[i]);
  s.ef_minus_ei =
      table_ef_ei_[i] + frac * (table_ef_ei_[i + 1] - table_ef_ei_[i]);
  s.psi_s = 0.0;  // not tabulated; derive on demand if ever needed
  return s;
}

double SrhModel::total_rate(const Trap& trap) const {
  if (trap.y_tr < 0.0 || trap.y_tr > tech_.t_ox) {
    throw std::invalid_argument("SrhModel: trap depth outside oxide");
  }
  return 1.0 / (tech_.tau0 * std::exp(tech_.gamma_tunnel * trap.y_tr));
}

double SrhModel::trap_fermi_gap(const Trap& trap, double v_gs) const {
  const SurfaceState s = surface_state(v_gs);
  // Oxide-field lever arm: a positive field (inversion) pulls the trap
  // level down relative to the channel by F_ox * y_tr (volts == eV here).
  return trap.e_tr - s.f_ox * trap.y_tr - s.ef_minus_ei;
}

double SrhModel::beta(const Trap& trap, double v_gs) const {
  const double gap = trap_fermi_gap(trap, v_gs);
  // Clamp the exponent: beyond ±60 kT the trap is frozen either way and
  // exp() would overflow; the clamped value keeps λ's finite and ordered.
  const double x = std::clamp(gap / kt_ev_, -500.0, 500.0);
  return tech_.trap_degeneracy * std::exp(x);
}

Propensities SrhModel::propensities(const Trap& trap, double v_gs) const {
  const double total = total_rate(trap);
  const double b = beta(trap, v_gs);
  // λ_c = Λ/(1+β), λ_e = Λ β/(1+β); guard β=inf via the clamp in beta().
  Propensities p;
  p.lambda_c = total / (1.0 + b);
  p.lambda_e = total - p.lambda_c;
  return p;
}

double SrhModel::stationary_fill(const Trap& trap, double v_gs) const {
  return 1.0 / (1.0 + beta(trap, v_gs));
}

}  // namespace samurai::physics
