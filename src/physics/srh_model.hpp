// Shockley-Read-Hall-style capture/emission propensity model for oxide
// traps — the paper's Eqs. (1) and (2):
//
//   λ_c(t) + λ_e(t) = 1 / (τ0 e^{γ y_tr})                      (Eq. 1)
//   β(t) = λ_e(t)/λ_c(t) = g e^{(E_T - E_F)/kT}                (Eq. 2)
//
// The bias dependence enters through E_T - E_F: the trap level E_T shifts
// with the oxide field (lever arm q F_ox y_tr) while the channel Fermi
// level E_F moves with the surface potential:
//
//   E_T - E_F |_t = E_tr - F_ox(t)·y_tr - (E_F - E_i)(V_gs(t))   [eV]
//
// Both F_ox and E_F - E_i come from the SurfacePotentialSolver.
#pragma once

#include <vector>

#include "physics/surface_potential.hpp"
#include "physics/technology.hpp"
#include "physics/trap.hpp"

namespace samurai::physics {

struct Propensities {
  double lambda_c;  ///< capture propensity, 1/s (empty -> filled)
  double lambda_e;  ///< emission propensity, 1/s (filled -> empty)
};

class SrhModel {
 public:
  explicit SrhModel(const Technology& tech);

  /// The bias-independent total rate Λ = λ_c + λ_e for a trap at depth
  /// y_tr (paper Eq. 1). This is also a tight uniformisation bound since
  /// max(λ_c, λ_e) <= Λ at all times.
  double total_rate(const Trap& trap) const;

  /// The ratio β = λ_e/λ_c at gate bias v_gs (paper Eq. 2).
  double beta(const Trap& trap, double v_gs) const;

  /// E_T - E_F in eV at gate bias v_gs.
  double trap_fermi_gap(const Trap& trap, double v_gs) const;

  /// Both propensities at gate bias v_gs.
  Propensities propensities(const Trap& trap, double v_gs) const;

  /// Stationary filled probability 1/(1+β) at constant bias v_gs.
  double stationary_fill(const Trap& trap, double v_gs) const;

  const Technology& tech() const noexcept { return tech_; }

 private:
  /// Surface state at bias v_gs, via a precomputed table (the solver's
  /// bisection is too slow to run per candidate event). Falls back to the
  /// direct solve outside the tabulated range.
  SurfaceState surface_state(double v_gs) const;

  Technology tech_;
  SurfacePotentialSolver surface_;
  double kt_ev_;

  // Tabulated surface state over [table_lo_, table_hi_].
  double table_lo_ = 0.0;
  double table_step_ = 0.0;
  std::vector<double> table_f_ox_;
  std::vector<double> table_ef_ei_;
};

}  // namespace samurai::physics
