#include "physics/trap_profile.hpp"

#include <cmath>

#include "physics/constants.hpp"

namespace samurai::physics {

double expected_trap_count(const Technology& tech, const MosGeometry& geom) {
  return tech.trap_density * geom.width * geom.length * tech.t_ox;
}

std::vector<Trap> sample_trap_profile(const Technology& tech,
                                      const MosGeometry& geom, util::Rng& rng,
                                      const TrapProfileOptions& options) {
  const std::size_t count =
      options.fixed_count ? *options.fixed_count
                          : static_cast<std::size_t>(
                                rng.poisson(expected_trap_count(tech, geom)));
  std::vector<Trap> traps;
  traps.reserve(count);
  // Depths below ~0.05 t_ox give sub-nanosecond τ's that are below any
  // circuit timescale of interest; we keep them anyway (they are cheap for
  // uniformisation because Λ is per-trap) but bound away from exactly 0.
  const double y_min = 0.02 * tech.t_ox;
  for (std::size_t i = 0; i < count; ++i) {
    Trap trap;
    trap.y_tr = rng.uniform(y_min, tech.t_ox);
    trap.e_tr = rng.uniform(tech.trap_e_min, tech.trap_e_max);
    trap.init_state = TrapState::kEmpty;
    traps.push_back(trap);
  }
  if (options.equilibrium_bias) {
    const SrhModel model(tech);
    for (auto& trap : traps) {
      const double p_fill = model.stationary_fill(trap, *options.equilibrium_bias);
      trap.init_state = rng.bernoulli(p_fill) ? TrapState::kFilled
                                              : TrapState::kEmpty;
    }
  }
  return traps;
}

std::size_t active_trap_count(const SrhModel& model,
                              const std::vector<Trap>& traps, double v_gs,
                              double window_kt) {
  const double kt = kBoltzmannEv * model.tech().temperature;
  std::size_t active = 0;
  for (const auto& trap : traps) {
    if (std::abs(model.trap_fermi_gap(trap, v_gs)) <= window_kt * kt) ++active;
  }
  return active;
}

}  // namespace samurai::physics
