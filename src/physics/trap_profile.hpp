// Statistical trap profiling (substitute for paper ref. [6], Dunga's
// model, and measured profiles of ref. [7]).
//
// The number of oxide traps in a device is Poisson with mean
// N_ot · W · L · t_ox (trap_density already folds in the energy window);
// each trap's depth y_tr is uniform in the oxide and its flat-band energy
// E_tr is uniform within the card's window. Initial occupancy is drawn
// from the stationary distribution at a chosen reference bias so traces
// start in statistical equilibrium.
#pragma once

#include <optional>
#include <vector>

#include "physics/mos_device.hpp"
#include "physics/srh_model.hpp"
#include "physics/technology.hpp"
#include "physics/trap.hpp"
#include "util/rng.hpp"

namespace samurai::physics {

struct TrapProfileOptions {
  /// If set, override the Poisson draw with an exact trap count.
  std::optional<std::size_t> fixed_count;
  /// Bias at which initial occupancies are equilibrated; if unset, traps
  /// start empty (as after a long off period).
  std::optional<double> equilibrium_bias;
};

/// Expected trap count for a device geometry under a technology card.
double expected_trap_count(const Technology& tech, const MosGeometry& geom);

/// Sample a trap population for one device instance.
std::vector<Trap> sample_trap_profile(const Technology& tech,
                                      const MosGeometry& geom,
                                      util::Rng& rng,
                                      const TrapProfileOptions& options = {});

/// Count traps that are "active" at bias v_gs: within `window_kt` kT of
/// resonance (|E_T - E_F| small enough that both dwell times are
/// observable). Matches the paper's "5-10 active traps" diagnostic.
std::size_t active_trap_count(const SrhModel& model,
                              const std::vector<Trap>& traps, double v_gs,
                              double window_kt = 3.0);

}  // namespace samurai::physics
