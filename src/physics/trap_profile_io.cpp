#include "physics/trap_profile_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace samurai::physics {

void write_trap_profile(std::ostream& os, const std::vector<Trap>& traps) {
  os << "# SAMURAI trap profile v1\n";
  os << "# y_tr(nm)  E_tr(eV)  init(0|1)\n";
  os << std::setprecision(9);
  for (const auto& trap : traps) {
    os << trap.y_tr * 1e9 << "  " << trap.e_tr << "  "
       << (trap.init_state == TrapState::kFilled ? 1 : 0) << "\n";
  }
}

void write_trap_profile_file(const std::string& path,
                             const std::vector<Trap>& traps) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  write_trap_profile(os, traps);
}

std::vector<Trap> read_trap_profile(std::istream& is) {
  std::vector<Trap> traps;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    double y_nm = 0.0, e_tr = 0.0;
    if (!(fields >> y_nm)) continue;  // blank / comment-only line
    if (!(fields >> e_tr)) {
      throw std::runtime_error("trap profile line " +
                               std::to_string(line_number) +
                               ": expected 'y_tr E_tr [init]'");
    }
    int init = 0;
    if (fields >> init && init != 0 && init != 1) {
      throw std::runtime_error("trap profile line " +
                               std::to_string(line_number) +
                               ": init must be 0 or 1");
    }
    std::string leftover;
    if (fields >> leftover) {
      throw std::runtime_error("trap profile line " +
                               std::to_string(line_number) +
                               ": trailing garbage '" + leftover + "'");
    }
    if (!(y_nm > 0.0)) {
      throw std::runtime_error("trap profile line " +
                               std::to_string(line_number) +
                               ": depth must be positive");
    }
    Trap trap;
    trap.y_tr = y_nm * 1e-9;
    trap.e_tr = e_tr;
    trap.init_state = init ? TrapState::kFilled : TrapState::kEmpty;
    traps.push_back(trap);
  }
  return traps;
}

std::vector<Trap> read_trap_profile_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return read_trap_profile(is);
}

}  // namespace samurai::physics
