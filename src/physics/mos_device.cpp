#include "physics/mos_device.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/constants.hpp"

namespace samurai::physics {

namespace {

double softplus(double x) {
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double sigmoid(double x) {
  if (x > 30.0) return 1.0;
  if (x < -30.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

MosDevice::MosDevice(const Technology& tech, MosType type, MosGeometry geom,
                     double v_th_shift)
    : tech_(tech), type_(type), geom_(geom) {
  if (geom_.width <= 0.0 || geom_.length <= 0.0) {
    throw std::invalid_argument("MosDevice: non-positive geometry");
  }
  v_th_ = tech_.v_th0() + v_th_shift;
  mobility_ = type == MosType::kNmos ? tech_.mu_n : tech_.mu_p;
  // Subthreshold slope factor n = 1 + γ_b / (2 sqrt(2 φ_F)).
  slope_n_ = 1.0 + tech_.gamma_body() / (2.0 * std::sqrt(2.0 * tech_.phi_f()));
}

MosOperatingPoint MosDevice::evaluate(double v_gs, double v_ds,
                                      double v_bs) const {
  // PMOS is the mirrored NMOS: evaluate with negated voltages and negate
  // the current and gds/gm signs appropriately.
  const double sign = type_ == MosType::kNmos ? 1.0 : -1.0;
  const double vgs = sign * v_gs;
  const double vds = sign * v_ds;
  const double vbs = sign * v_bs;

  const double phi_t = tech_.phi_t();
  const double body_k =
      tech_.gamma_body() / (2.0 * std::sqrt(2.0 * tech_.phi_f()));
  const double v_th_eff = v_th_ - body_k * vbs;
  const double v_p = (vgs - v_th_eff) / slope_n_;

  const double spec = 2.0 * slope_n_ * mobility_ * tech_.c_ox() *
                      (geom_.width / geom_.length) * phi_t * phi_t;
  const double xf = v_p / (2.0 * phi_t);
  const double xr = (v_p - vds) / (2.0 * phi_t);
  const double lf = softplus(xf);
  const double lr = softplus(xr);
  const double i_spec = spec * (lf * lf - lr * lr);
  const double clm = 1.0 + tech_.lambda_clm * std::max(vds, 0.0);

  MosOperatingPoint op;
  op.i_d = sign * i_spec * clm;

  // d(lf^2)/dx = 2 lf σ(x); chain through x derivatives.
  const double dlf2 = 2.0 * lf * sigmoid(xf);
  const double dlr2 = 2.0 * lr * sigmoid(xr);
  const double dvp_dvgs = 1.0 / slope_n_;
  const double gm_core =
      spec * (dlf2 - dlr2) * dvp_dvgs / (2.0 * phi_t) * clm;
  const double gds_core = spec * dlr2 / (2.0 * phi_t) * clm +
                          i_spec * (vds > 0.0 ? tech_.lambda_clm : 0.0);
  // gm and gds are derivatives wrt the device's own (mirrored) voltages;
  // the double sign flip (current and voltage) cancels, so conductances
  // are the same for both polarities.
  op.g_m = gm_core;
  op.g_ds = gds_core;
  op.g_mb = gm_core * body_k * slope_n_ * dvp_dvgs;  // = gm * body_k
  op.n_inv = carrier_density(v_gs);
  return op;
}

double MosDevice::carrier_density(double v_gs) const {
  const double sign = type_ == MosType::kNmos ? 1.0 : -1.0;
  const double phi_t = tech_.phi_t();
  const double overdrive = sign * v_gs - v_th_;
  const double q_inv = tech_.c_ox() * slope_n_ * phi_t *
                       softplus(overdrive / (slope_n_ * phi_t));
  return q_inv / kElementaryCharge;
}

double MosDevice::carrier_count(double v_gs) const {
  return geom_.width * geom_.length * carrier_density(v_gs);
}

double MosDevice::transconductance(double v_gs, double v_ds) const {
  return evaluate(v_gs, v_ds).g_m;
}

}  // namespace samurai::physics
