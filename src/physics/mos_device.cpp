#include "physics/mos_device.hpp"

#include <cmath>
#include <stdexcept>

#include "physics/constants.hpp"

namespace samurai::physics {

MosDevice::MosDevice(const Technology& tech, MosType type, MosGeometry geom,
                     double v_th_shift)
    : tech_(tech), type_(type), geom_(geom) {
  if (geom_.width <= 0.0 || geom_.length <= 0.0) {
    throw std::invalid_argument("MosDevice: non-positive geometry");
  }
  v_th_ = tech_.v_th0() + v_th_shift;
  mobility_ = type == MosType::kNmos ? tech_.mu_n : tech_.mu_p;
  // Subthreshold slope factor n = 1 + γ_b / (2 sqrt(2 φ_F)).
  slope_n_ = 1.0 + tech_.gamma_body() / (2.0 * std::sqrt(2.0 * tech_.phi_f()));
  // evaluate() sits on the Newton hot path (once per FET per iteration), so
  // every bias-independent subexpression — and in particular everything
  // hiding a sqrt/log/div inside the Technology getters — is folded here.
  phi_t_ = tech_.phi_t();
  inv_2phi_t_ = 1.0 / (2.0 * phi_t_);
  body_k_ = tech_.gamma_body() / (2.0 * std::sqrt(2.0 * tech_.phi_f()));
  spec_ = 2.0 * slope_n_ * mobility_ * tech_.c_ox() *
          (geom_.width / geom_.length) * phi_t_ * phi_t_;
  inv_slope_n_ = 1.0 / slope_n_;
  density_coeff_ = tech_.c_ox() * slope_n_ * phi_t_ / kElementaryCharge;
  inv_n_phi_t_ = 1.0 / (slope_n_ * phi_t_);
  lambda_clm_ = tech_.lambda_clm;
}

double MosDevice::carrier_density(double v_gs) const {
  const double sign = type_ == MosType::kNmos ? 1.0 : -1.0;
  const double overdrive = sign * v_gs - v_th_;
  return density_coeff_ * detail::softplus(overdrive * inv_n_phi_t_);
}

double MosDevice::carrier_count(double v_gs) const {
  return geom_.width * geom_.length * carrier_density(v_gs);
}

double MosDevice::transconductance(double v_gs, double v_ds) const {
  return evaluate(v_gs, v_ds).g_m;
}

}  // namespace samurai::physics
