// Tau-leaping-style approximate accelerator for two-state chains.
//
// Uniformisation pays one candidate per 1/λ* of simulated time even when
// nothing interesting happens. For a *slowly modulated* chain one can
// instead leap over an interval τ treating the propensities as frozen and
// drawing the state at t+τ from the analytic two-state transition kernel
//
//   P(filled at t+τ | state at t) given frozen (λc, λe)
//
// recording at most the *net* state change per leap. This is exact for
// piecewise-constant propensities as long as only the endpoint state
// matters, but it erases intra-leap toggles — fine for slow observers
// (occupancy statistics), wrong for dwell-time statistics. The ablation
// bench quantifies that trade-off against Algorithm 1.
#pragma once

#include <cstdint>

#include "core/propensity.hpp"
#include "core/trajectory.hpp"
#include "util/rng.hpp"

namespace samurai::baseline {

struct TauLeapOptions {
  double tau = 1e-6;  ///< leap length, s
};

/// Leap the chain over [t0, tf]; switch events are recorded at leap
/// boundaries where the endpoint state changed (net toggles only).
core::TrapTrajectory tau_leaping(const core::PropensityFunction& propensity,
                                 double t0, double tf,
                                 physics::TrapState init_state, util::Rng& rng,
                                 const TauLeapOptions& options,
                                 std::uint64_t* leaps_taken = nullptr);

/// The frozen-rate endpoint-state transition probability: chance the chain
/// is filled at t+tau given `filled_now`, with rates λc, λe.
double two_state_transition_probability(double lambda_c, double lambda_e,
                                        double tau, bool filled_now);

}  // namespace samurai::baseline
