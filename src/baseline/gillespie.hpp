// Baseline stochastic simulators that SAMURAI's uniformisation is compared
// against in the ablation benches:
//
//  * `gillespie_stationary` — the classic SSA (Gillespie 1976) for a
//    *time-homogeneous* two-state chain. Exact under constant bias; its
//    inability to handle time-varying propensities is precisely the gap
//    uniformisation closes.
//  * `naive_time_stepped` — per-step Bernoulli switching with probability
//    λ·Δt. Handles time variation but is biased O(Δt) and needs tiny steps
//    for fast traps; the standard straw-man for exact methods.
#pragma once

#include <cstdint>

#include "core/propensity.hpp"
#include "core/trajectory.hpp"
#include "physics/trap.hpp"
#include "util/rng.hpp"

namespace samurai::baseline {

/// Exact SSA for constant propensities: dwell times are exponential with
/// the current state's exit rate.
core::TrapTrajectory gillespie_stationary(double lambda_c, double lambda_e,
                                          double t0, double tf,
                                          physics::TrapState init_state,
                                          util::Rng& rng);

struct NaiveOptions {
  double dt = 1e-6;  ///< fixed step; switching prob is clamped at 1
};

/// First-order time-stepped simulation of a (possibly inhomogeneous)
/// chain; switch events are placed at step boundaries.
core::TrapTrajectory naive_time_stepped(const core::PropensityFunction& propensity,
                                        double t0, double tf,
                                        physics::TrapState init_state,
                                        util::Rng& rng,
                                        const NaiveOptions& options,
                                        std::uint64_t* steps_taken = nullptr);

}  // namespace samurai::baseline
