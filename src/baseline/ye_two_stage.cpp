#include "baseline/ye_two_stage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace samurai::baseline {

core::TrapTrajectory ye_two_stage(const YeTwoStageParams& params, double t0,
                                  double tf, physics::TrapState init_state,
                                  util::Rng& rng, YeTwoStageStats* stats) {
  if (!(params.tau_filter > 0.0) ||
      !(params.threshold_up > params.threshold_down) || !(tf >= t0)) {
    throw std::invalid_argument("ye_two_stage: bad parameters");
  }
  const double dt = params.dt > 0.0 ? params.dt : params.tau_filter / 20.0;
  // Exact OU update over one step: x' = ρ x + sqrt(1-ρ²) ξ, unit variance.
  const double rho = std::exp(-dt / params.tau_filter);
  const double noise_scale = std::sqrt(1.0 - rho * rho);

  std::vector<double> switches;
  physics::TrapState state = init_state;
  double x = rng.normal();  // stationary start
  std::uint64_t samples = 0;
  for (double t = t0 + dt; t <= tf; t += dt) {
    x = rho * x + noise_scale * rng.normal();
    ++samples;
    if (state == physics::TrapState::kEmpty && x > params.threshold_up) {
      switches.push_back(std::min(t, tf));
      state = physics::TrapState::kFilled;
    } else if (state == physics::TrapState::kFilled &&
               x < params.threshold_down) {
      switches.push_back(std::min(t, tf));
      state = physics::TrapState::kEmpty;
    }
  }
  if (stats) {
    stats->samples += samples;
    stats->switches += switches.size();
  }
  return core::TrapTrajectory(t0, tf, init_state, std::move(switches));
}

YeTwoStageParams calibrate_ye_two_stage(double target_tau_empty,
                                        double target_tau_filled,
                                        util::Rng& rng,
                                        double pilot_horizon_factor) {
  if (!(target_tau_empty > 0.0) || !(target_tau_filled > 0.0)) {
    throw std::invalid_argument("calibrate_ye_two_stage: bad targets");
  }
  YeTwoStageParams params;
  // The filter must be much faster than the dwell times it generates.
  params.tau_filter = 0.02 * std::min(target_tau_empty, target_tau_filled);
  params.threshold_up = 1.5;
  params.threshold_down = -1.5;

  const double horizon =
      pilot_horizon_factor * std::max(target_tau_empty, target_tau_filled);
  auto measure = [&](const YeTwoStageParams& p, double& tau_e, double& tau_f) {
    util::Rng pilot_rng = rng.split(0xCA11B8);
    const auto traj = ye_two_stage(p, 0.0, horizon,
                                   physics::TrapState::kEmpty, pilot_rng);
    const auto dwells = traj.dwell_times(true);
    auto mean = [](const std::vector<double>& v) {
      if (v.empty()) return 0.0;
      double s = 0.0;
      for (double d : v) s += d;
      return s / static_cast<double>(v.size());
    };
    tau_e = mean(dwells.empty);
    tau_f = mean(dwells.filled);
  };

  // Raising a threshold makes the corresponding crossing exponentially
  // rarer, so iterate in log space on each threshold independently.
  for (int iter = 0; iter < 10; ++iter) {
    double tau_e = 0.0, tau_f = 0.0;
    measure(params, tau_e, tau_f);
    if (tau_e <= 0.0) {
      params.threshold_up *= 0.8;  // no up-crossings seen: lower the bar
    } else {
      const double err = std::log(tau_e / target_tau_empty);
      params.threshold_up = std::max(0.2, params.threshold_up - 0.3 * err);
    }
    if (tau_f <= 0.0) {
      params.threshold_down *= 0.8;
    } else {
      const double err = std::log(tau_f / target_tau_filled);
      params.threshold_down = std::min(-0.2, params.threshold_down + 0.3 * err);
    }
  }
  return params;
}

}  // namespace samurai::baseline
