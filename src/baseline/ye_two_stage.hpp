// Reimplementation of the comparison baseline of Ye, Wang & Cao
// (ICCAD 2010, paper ref. [10]): an RTN-like telegraph waveform produced
// by driving a 2-stage equivalent circuit — a first-order low-pass filter
// (stage 1) feeding a hysteretic comparator (stage 2) — from an ideal
// white-noise source.
//
// We model stage 1 as an Ornstein-Uhlenbeck process (the exact
// continuous-time limit of white noise through an RC filter) sampled on a
// fine grid, and stage 2 as a Schmitt trigger. Thresholds are calibrated
// against target mean dwell times at a *fixed* bias; the method has no
// mechanism to track bias-dependent statistics, which is the drawback the
// paper calls out (§I-C) and which the ablation bench demonstrates.
#pragma once

#include <cstdint>

#include "core/trajectory.hpp"
#include "physics/trap.hpp"
#include "util/rng.hpp"

namespace samurai::baseline {

struct YeTwoStageParams {
  double tau_filter = 1e-7;    ///< stage-1 RC time constant, s
  double threshold_up = 1.0;   ///< comparator goes "filled" above this
  double threshold_down = -1.0;///< and "empty" below this
  double dt = 0.0;             ///< sample step; 0 = tau_filter / 20
};

struct YeTwoStageStats {
  std::uint64_t samples = 0;   ///< white-noise samples drawn (the cost)
  std::uint64_t switches = 0;
};

/// Generate a telegraph trajectory over [t0, tf].
core::TrapTrajectory ye_two_stage(const YeTwoStageParams& params, double t0,
                                  double tf, physics::TrapState init_state,
                                  util::Rng& rng,
                                  YeTwoStageStats* stats = nullptr);

/// Calibrate thresholds so the generated mean dwell times approximate the
/// targets (seconds) at fixed bias, via secant iteration on pilot runs.
YeTwoStageParams calibrate_ye_two_stage(double target_tau_empty,
                                        double target_tau_filled,
                                        util::Rng& rng,
                                        double pilot_horizon_factor = 400.0);

}  // namespace samurai::baseline
