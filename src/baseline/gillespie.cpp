#include "baseline/gillespie.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace samurai::baseline {

core::TrapTrajectory gillespie_stationary(double lambda_c, double lambda_e,
                                          double t0, double tf,
                                          physics::TrapState init_state,
                                          util::Rng& rng) {
  if (lambda_c < 0.0 || lambda_e < 0.0 || !(tf >= t0)) {
    throw std::invalid_argument("gillespie_stationary: bad arguments");
  }
  std::vector<double> switches;
  double t = t0;
  physics::TrapState state = init_state;
  for (;;) {
    const double rate =
        state == physics::TrapState::kEmpty ? lambda_c : lambda_e;
    if (rate <= 0.0) break;  // absorbed
    t += rng.exponential(rate);
    if (t > tf) break;
    switches.push_back(t);
    state = toggled(state);
  }
  return core::TrapTrajectory(t0, tf, init_state, std::move(switches));
}

core::TrapTrajectory naive_time_stepped(const core::PropensityFunction& propensity,
                                        double t0, double tf,
                                        physics::TrapState init_state,
                                        util::Rng& rng,
                                        const NaiveOptions& options,
                                        std::uint64_t* steps_taken) {
  if (!(options.dt > 0.0) || !(tf >= t0)) {
    throw std::invalid_argument("naive_time_stepped: bad arguments");
  }
  std::vector<double> switches;
  physics::TrapState state = init_state;
  std::uint64_t steps = 0;
  for (double t = t0; t < tf; t += options.dt) {
    ++steps;
    const double step = std::min(options.dt, tf - t);
    const auto p = propensity.at(t);
    const double rate =
        state == physics::TrapState::kEmpty ? p.lambda_c : p.lambda_e;
    const double prob = std::min(rate * step, 1.0);  // first-order, biased
    if (rng.bernoulli(prob)) {
      const double t_switch = t + step;
      if (t_switch <= tf && (switches.empty() || t_switch > switches.back())) {
        switches.push_back(t_switch);
        state = toggled(state);
      }
    }
  }
  if (steps_taken) *steps_taken = steps;
  return core::TrapTrajectory(t0, tf, init_state, std::move(switches));
}

}  // namespace samurai::baseline
