#include "baseline/tau_leaping.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace samurai::baseline {

double two_state_transition_probability(double lambda_c, double lambda_e,
                                        double tau, bool filled_now) {
  const double total = lambda_c + lambda_e;
  if (!(total > 0.0)) return filled_now ? 1.0 : 0.0;
  const double p_inf = lambda_c / total;
  const double decay = std::exp(-total * tau);
  const double p0 = filled_now ? 1.0 : 0.0;
  return p_inf + (p0 - p_inf) * decay;
}

core::TrapTrajectory tau_leaping(const core::PropensityFunction& propensity,
                                 double t0, double tf,
                                 physics::TrapState init_state, util::Rng& rng,
                                 const TauLeapOptions& options,
                                 std::uint64_t* leaps_taken) {
  if (!(options.tau > 0.0) || !(tf >= t0)) {
    throw std::invalid_argument("tau_leaping: bad arguments");
  }
  std::vector<double> switches;
  physics::TrapState state = init_state;
  std::uint64_t leaps = 0;
  double t = t0;
  while (t < tf) {
    const double leap = std::min(options.tau, tf - t);
    // Freeze the propensities at the leap midpoint (midpoint rule keeps
    // the first-order modulation error small).
    const auto p = propensity.at(t + 0.5 * leap);
    const double p_filled = two_state_transition_probability(
        p.lambda_c, p.lambda_e, leap, state == physics::TrapState::kFilled);
    const bool filled_next = rng.bernoulli(p_filled);
    const auto next_state =
        filled_next ? physics::TrapState::kFilled : physics::TrapState::kEmpty;
    t += leap;
    ++leaps;
    if (next_state != state) {
      // Place the net toggle at the leap end (the kernel says nothing
      // about when inside the leap it happened).
      if (switches.empty() || t > switches.back()) switches.push_back(std::min(t, tf));
      state = next_state;
    }
  }
  if (leaps_taken) *leaps_taken = leaps;
  return core::TrapTrajectory(t0, tf, init_state, std::move(switches));
}

}  // namespace samurai::baseline
