#include "spice/devices.hpp"

#include <cmath>
#include <stdexcept>

namespace samurai::spice {

namespace {

double node_value(std::span<const double> x, int id) {
  return id < 0 ? 0.0 : x[static_cast<std::size_t>(id)];
}

void add_residual(std::vector<double>& f, int id, double value) {
  if (id >= 0) f[static_cast<std::size_t>(id)] += value;
}

}  // namespace

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, int node_p, int node_n, double resistance)
    : Device(std::move(name)), p_(node_p), n_(node_n) {
  if (!(resistance > 0.0)) throw std::invalid_argument("Resistor: R <= 0");
  g_ = 1.0 / resistance;
}

void Resistor::load(const LoadContext& ctx) {
  if (ctx.scope == LoadScope::kNonlinear) return;
  const double v = node_value(ctx.x, p_) - node_value(ctx.x, n_);
  const double i = g_ * v;
  add_residual(*ctx.residual, p_, i);
  add_residual(*ctx.residual, n_, -i);
  if (ctx.jacobian->discarding()) return;
  ctx.jacobian->stamp(p_, p_, g_);
  ctx.jacobian->stamp(p_, n_, -g_);
  ctx.jacobian->stamp(n_, p_, -g_);
  ctx.jacobian->stamp(n_, n_, g_);
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, int node_p, int node_n, double capacitance)
    : Device(std::move(name)), p_(node_p), n_(node_n), c_(capacitance) {
  if (!(capacitance >= 0.0)) throw std::invalid_argument("Capacitor: C < 0");
}

double Capacitor::voltage(std::span<const double> x) const {
  return node_value(x, p_) - node_value(x, n_);
}

void Capacitor::load(const LoadContext& ctx) {
  if (ctx.scope == LoadScope::kNonlinear) return;
  // DC: open circuit. The early return drops this device's stamps from
  // the a0 == 0 program entirely, which is why the sparse solver records
  // separate stamp programs per (scope, a0 == 0) — see Device::load.
  if (ctx.a0 == 0.0) return;
  const double q = c_ * voltage(ctx.x);
  const double i = ctx.a0 * (q - q_prev_) + ctx.ci * i_prev_;
  add_residual(*ctx.residual, p_, i);
  add_residual(*ctx.residual, n_, -i);
  if (ctx.jacobian->discarding()) return;
  const double geq = ctx.a0 * c_;
  ctx.jacobian->stamp(p_, p_, geq);
  ctx.jacobian->stamp(p_, n_, -geq);
  ctx.jacobian->stamp(n_, p_, -geq);
  ctx.jacobian->stamp(n_, n_, geq);
}

void Capacitor::commit(std::span<const double> x, double a0, double ci) {
  const double q = c_ * voltage(x);
  i_prev_ = a0 * (q - q_prev_) + ci * i_prev_;
  q_prev_ = q;
}

void Capacitor::reset_history() {
  q_prev_ = 0.0;
  i_prev_ = 0.0;
}

// ----------------------------------------------------------- VoltageSource

VoltageSource::VoltageSource(Circuit& circuit, std::string name, int node_p,
                             int node_n, core::Pwl waveform)
    : Device(std::move(name)),
      circuit_(&circuit),
      p_(node_p),
      n_(node_n),
      branch_(circuit.alloc_branch()),
      waveform_(std::move(waveform)) {}

VoltageSource& VoltageSource::dc(Circuit& circuit, std::string name, int node_p,
                                 int node_n, double value) {
  return circuit.add<VoltageSource>(circuit, std::move(name), node_p, node_n,
                                    core::Pwl::constant(value));
}

int VoltageSource::branch_index() const { return circuit_->branch_index(branch_); }

void VoltageSource::load(const LoadContext& ctx) {
  if (ctx.scope == LoadScope::kNonlinear) return;
  const int br = branch_index();
  const double i_branch = node_value(ctx.x, br);
  // KCL: branch current leaves the + node and enters the - node.
  add_residual(*ctx.residual, p_, i_branch);
  add_residual(*ctx.residual, n_, -i_branch);
  // Branch equation: v(p) - v(n) = V(t).
  const double v = node_value(ctx.x, p_) - node_value(ctx.x, n_);
  add_residual(*ctx.residual, br, v - waveform_.eval(ctx.time));
  if (ctx.jacobian->discarding()) return;
  ctx.jacobian->stamp(p_, br, 1.0);
  ctx.jacobian->stamp(n_, br, -1.0);
  ctx.jacobian->stamp(br, p_, 1.0);
  ctx.jacobian->stamp(br, n_, -1.0);
}

void VoltageSource::collect_breakpoints(std::vector<double>& breakpoints) const {
  if (!waveform_.is_constant()) {
    breakpoints.insert(breakpoints.end(), waveform_.times().begin(),
                       waveform_.times().end());
  }
}

// ----------------------------------------------------------- CurrentSource

CurrentSource::CurrentSource(std::string name, int node_p, int node_n,
                             core::Pwl waveform)
    : Device(std::move(name)), p_(node_p), n_(node_n), waveform_(std::move(waveform)) {}

void CurrentSource::load(const LoadContext& ctx) {
  if (ctx.scope == LoadScope::kNonlinear) return;
  const double i = waveform_.eval(ctx.time);
  add_residual(*ctx.residual, p_, i);
  add_residual(*ctx.residual, n_, -i);
}

void CurrentSource::collect_breakpoints(std::vector<double>& breakpoints) const {
  if (emit_breakpoints_ && !waveform_.is_constant()) {
    breakpoints.insert(breakpoints.end(), waveform_.times().begin(),
                       waveform_.times().end());
  }
}

// --------------------------------------------------- CallbackCurrentSource

CallbackCurrentSource::CallbackCurrentSource(std::string name, int node_p,
                                             int node_n,
                                             std::function<double(double)> current_of_t)
    : Device(std::move(name)), p_(node_p), n_(node_n), current_(std::move(current_of_t)) {
  if (!current_) throw std::invalid_argument("CallbackCurrentSource: null callback");
}

void CallbackCurrentSource::load(const LoadContext& ctx) {
  if (ctx.scope == LoadScope::kNonlinear) return;
  const double i = current_(ctx.time);
  add_residual(*ctx.residual, p_, i);
  add_residual(*ctx.residual, n_, -i);
}

// ------------------------------------------------------------------ Mosfet

Mosfet::Mosfet(std::string name, int drain, int gate, int source, int bulk,
               physics::MosDevice model)
    : Device(std::move(name)), d_(drain), g_(gate), s_(source), b_(bulk),
      terminals_{drain, gate, source, bulk}, model_(std::move(model)) {
  const auto& geom = model_.geometry();
  const double c_gate = model_.tech().c_ox() * geom.width * geom.length;
  // Meyer-style constant split: half the gate capacitance to each of
  // source and drain plus ~20% overlap, ~40% junction caps to bulk.
  const double c_gs = 0.5 * c_gate + 0.2 * c_gate;
  const double c_gd = 0.5 * c_gate + 0.2 * c_gate;
  const double c_j = 0.4 * c_gate;
  charges_ = {
      {g_, s_, c_gs, 0.0, 0.0},
      {g_, d_, c_gd, 0.0, 0.0},
      {d_, b_, c_j, 0.0, 0.0},
      {s_, b_, c_j, 0.0, 0.0},
  };
}

double Mosfet::elem_voltage(const ChargeElement& e, std::span<const double> x) {
  return node_value(x, e.p) - node_value(x, e.n);
}

void Mosfet::load_charge(const LoadContext& ctx, ChargeElement& e) {
  if (ctx.a0 == 0.0) return;
  const double q = e.cap * elem_voltage(e, ctx.x);
  const double i = ctx.a0 * (q - e.q_prev) + ctx.ci * e.i_prev;
  add_residual(*ctx.residual, e.p, i);
  add_residual(*ctx.residual, e.n, -i);
  if (ctx.jacobian->discarding()) return;
  const double geq = ctx.a0 * e.cap;
  ctx.jacobian->stamp(e.p, e.p, geq);
  ctx.jacobian->stamp(e.p, e.n, -geq);
  ctx.jacobian->stamp(e.n, e.p, -geq);
  ctx.jacobian->stamp(e.n, e.n, geq);
}

void Mosfet::commit_charge(ChargeElement& e, std::span<const double> x,
                           double a0, double ci) {
  const double q = e.cap * elem_voltage(e, x);
  e.i_prev = a0 * (q - e.q_prev) + ci * e.i_prev;
  e.q_prev = q;
}

void Mosfet::load(const LoadContext& ctx) {
  // The constant companion capacitances are the MOSFET's affine part: they
  // belong to the cached base, so the Newton iteration re-stamps only the
  // channel.
  if (ctx.scope != LoadScope::kNonlinear) {
    for (auto& charge : charges_) load_charge(ctx, charge);
  }
  if (ctx.scope == LoadScope::kLinear) return;

  const double vd = node_value(ctx.x, d_);
  const double vg = node_value(ctx.x, g_);
  const double vs = node_value(ctx.x, s_);
  const double vb = node_value(ctx.x, b_);
  const auto op = model_.evaluate(vg - vs, vd - vs, vb - vs);
  stamp_channel(ctx, op);
}

void Mosfet::stamp_channel(const LoadContext& ctx,
                           const physics::MosOperatingPoint& op) const {
  // Channel current i_d flows drain -> source inside the device, so it
  // leaves the drain node and enters the source node.
  add_residual(*ctx.residual, d_, op.i_d);
  add_residual(*ctx.residual, s_, -op.i_d);
  const double gm = op.g_m;
  const double gds = op.g_ds;
  const double gmb = op.g_mb;
  const double gs_total = -(gm + gds + gmb);
  ctx.jacobian->stamp(d_, g_, gm);
  ctx.jacobian->stamp(d_, d_, gds);
  ctx.jacobian->stamp(d_, b_, gmb);
  ctx.jacobian->stamp(d_, s_, gs_total);
  ctx.jacobian->stamp(s_, g_, -gm);
  ctx.jacobian->stamp(s_, d_, -gds);
  ctx.jacobian->stamp(s_, b_, -gmb);
  ctx.jacobian->stamp(s_, s_, -gs_total);
}

void Mosfet::commit(std::span<const double> x, double a0, double ci) {
  for (auto& charge : charges_) commit_charge(charge, x, a0, ci);
}

void Mosfet::reset_history() {
  for (auto& charge : charges_) {
    charge.q_prev = 0.0;
    charge.i_prev = 0.0;
  }
}

// --------------------------------------------------------------- waveforms

core::Pwl pulse_waveform(double v0, double v1, double delay, double rise,
                         double width, double fall, double period,
                         std::size_t cycles) {
  if (!(rise > 0.0) || !(fall > 0.0) || !(width > 0.0) ||
      !(period >= rise + width + fall)) {
    throw std::invalid_argument("pulse_waveform: inconsistent timing");
  }
  core::Pwl wave;
  wave.append(0.0, v0);
  double t = delay;
  if (t > 0.0) wave.append(t, v0);
  for (std::size_t c = 0; c < cycles; ++c) {
    const double start = delay + static_cast<double>(c) * period;
    if (start > wave.back_time()) wave.append(start, v0);
    wave.append(start + rise, v1);
    wave.append(start + rise + width, v1);
    wave.append(start + rise + width + fall, v0);
  }
  return wave;
}

}  // namespace samurai::spice
