// Concrete circuit devices: linear elements, independent sources and the
// MOSFET (EKV-style DC model from src/physics plus companion-model
// capacitances).
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "core/waveform.hpp"
#include "physics/mos_device.hpp"
#include "spice/circuit.hpp"

namespace samurai::spice {

class Resistor final : public Device {
 public:
  Resistor(std::string name, int node_p, int node_n, double resistance);
  void load(const LoadContext& ctx) override;
  bool is_linear() const noexcept override { return true; }

 private:
  int p_, n_;
  double g_;
};

/// Linear capacitor integrated with the companion model i = a0·Δq + ci·i_n.
class Capacitor final : public Device {
 public:
  Capacitor(std::string name, int node_p, int node_n, double capacitance);
  void load(const LoadContext& ctx) override;
  bool is_linear() const noexcept override { return true; }
  void commit(std::span<const double> x, double a0, double ci) override;
  void reset_history() override;

 private:
  double voltage(std::span<const double> x) const;
  int p_, n_;
  double c_;
  double q_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Independent voltage source with a PWL (or constant) waveform. Adds one
/// branch-current unknown.
class VoltageSource final : public Device {
 public:
  VoltageSource(Circuit& circuit, std::string name, int node_p, int node_n,
                core::Pwl waveform);
  static VoltageSource& dc(Circuit& circuit, std::string name, int node_p,
                           int node_n, double value);

  void load(const LoadContext& ctx) override;
  bool is_linear() const noexcept override { return true; }
  void collect_breakpoints(std::vector<double>& breakpoints) const override;

  /// Index of this source's current unknown in x (current flows from the
  /// + node through the source to the - node).
  int branch_index() const;
  double value_at(double t) const { return waveform_.eval(t); }

 private:
  Circuit* circuit_;
  int p_, n_, branch_;
  core::Pwl waveform_;
};

/// Independent current source; positive current flows from the + node
/// through the source into the - node (SPICE convention). This is the
/// device that injects SAMURAI's I_RTN traces (paper Fig. 4 right).
class CurrentSource final : public Device {
 public:
  CurrentSource(std::string name, int node_p, int node_n, core::Pwl waveform);
  void load(const LoadContext& ctx) override;
  bool is_linear() const noexcept override { return true; }
  void collect_breakpoints(std::vector<double>& breakpoints) const override;
  void set_waveform(core::Pwl waveform) { waveform_ = std::move(waveform); }
  /// An injected RTN stream carries thousands of trap-transition corners;
  /// registering each as a grid breakpoint would make the step count scale
  /// with the total transition count instead of the circuit's own timing.
  /// Turning breakpoints off makes the source grid-sampled: its current is
  /// evaluated at whatever step placement the rest of the circuit dictates.
  void set_emit_breakpoints(bool emit) noexcept { emit_breakpoints_ = emit; }

 private:
  int p_, n_;
  core::Pwl waveform_;
  bool emit_breakpoints_ = true;
};

/// Current source whose value is an arbitrary function of time, used by
/// the bi-directionally coupled simulation where the injected RTN current
/// is produced on the fly from the evolving trap states.
class CallbackCurrentSource final : public Device {
 public:
  CallbackCurrentSource(std::string name, int node_p, int node_n,
                        std::function<double(double)> current_of_t);
  void load(const LoadContext& ctx) override;
  bool is_linear() const noexcept override { return true; }

 private:
  int p_, n_;
  std::function<double(double)> current_;
};

/// Four-terminal MOSFET: EKV-style DC current plus constant gate/junction
/// capacitances (Meyer-style split) integrated as companion elements.
class Mosfet final : public Device {
 public:
  Mosfet(std::string name, int drain, int gate, int source, int bulk,
         physics::MosDevice model);

  void load(const LoadContext& ctx) override;
  void commit(std::span<const double> x, double a0, double ci) override;
  void reset_history() override;
  /// The channel evaluation reads exactly the four terminal voltages and
  /// its stamps satisfy the purity/single-add contract (see Device), so
  /// the MOSFET is elidable in the activity-partitioned engine.
  std::span<const int> nonlinear_inputs() const override {
    return {terminals_.data(), terminals_.size()};
  }

  /// Stamp the channel (residual + 8 Jacobian entries) for an operating
  /// point that was already evaluated — the batched transient engine
  /// evaluates all lanes' channels in one SoA sweep, then replays each
  /// lane's stamps in device order through this hook. `load` goes through
  /// the same code, so the two paths emit identical stamp sequences.
  void stamp_channel(const LoadContext& ctx,
                     const physics::MosOperatingPoint& op) const;

  const physics::MosDevice& model() const noexcept { return model_; }
  int drain() const noexcept { return d_; }
  int gate() const noexcept { return g_; }
  int source() const noexcept { return s_; }
  int bulk() const noexcept { return b_; }

 private:
  struct ChargeElement {
    int p = kGround;
    int n = kGround;
    double cap = 0.0;
    double q_prev = 0.0;
    double i_prev = 0.0;
  };
  static double elem_voltage(const ChargeElement& e, std::span<const double> x);
  void load_charge(const LoadContext& ctx, ChargeElement& e);
  static void commit_charge(ChargeElement& e, std::span<const double> x,
                            double a0, double ci);

  int d_, g_, s_, b_;
  std::array<int, 4> terminals_{};  ///< {d, g, s, b} for nonlinear_inputs
  physics::MosDevice model_;
  std::vector<ChargeElement> charges_;
};

/// Helper: build a PULSE-style PWL waveform (v0 -> v1 pulses), matching
/// SPICE's PULSE(v0 v1 delay rise width fall period) repeated `cycles`
/// times.
core::Pwl pulse_waveform(double v0, double v1, double delay, double rise,
                         double width, double fall, double period,
                         std::size_t cycles);

}  // namespace samurai::spice
