#include "spice/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "physics/mos_device.hpp"
#include "physics/technology.hpp"
#include "spice/devices.hpp"

namespace samurai::spice {

ParseError::ParseError(std::size_t line, const std::string& message)
    : std::runtime_error("netlist line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Split a physical line into whitespace/comma/parenthesis-separated
/// tokens; '(' and ')' are dropped (PWL(0 0 1n 1) == PWL 0 0 1n 1).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',' || ch == '(' ||
        ch == ')') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current += ch;
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

struct Line {
  std::size_t number;
  std::vector<std::string> tokens;
};

/// Strip comments, join '+' continuations, tokenize.
std::vector<Line> logical_lines(const std::string& text, std::string& title) {
  std::vector<Line> lines;
  std::istringstream stream(text);
  std::string raw;
  std::size_t number = 0;
  bool first = true;
  while (std::getline(stream, raw)) {
    ++number;
    const auto semi = raw.find(';');
    if (semi != std::string::npos) raw.erase(semi);
    // Trim.
    const auto begin = raw.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = raw.find_last_not_of(" \t\r");
    raw = raw.substr(begin, end - begin + 1);
    if (first) {
      // Classic SPICE: the first non-blank line is always the title.
      first = false;
      title = raw[0] == '*' ? raw.substr(1) : raw;
      continue;
    }
    if (raw[0] == '*') continue;
    if (raw[0] == '+') {
      if (lines.empty()) throw ParseError(number, "continuation without a previous card");
      auto extra = tokenize(raw.substr(1));
      lines.back().tokens.insert(lines.back().tokens.end(), extra.begin(),
                                 extra.end());
      continue;
    }
    auto tokens = tokenize(raw);
    if (!tokens.empty()) lines.push_back({number, std::move(tokens)});
  }
  return lines;
}

struct ModelCard {
  physics::MosType type = physics::MosType::kNmos;
  std::string node = "90nm";
  double vth_shift = 0.0;
};

/// `name=value` parameter or empty.
bool split_param(const std::string& token, std::string& key, std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  key = lower(token.substr(0, eq));
  value = token.substr(eq + 1);
  return true;
}

core::Pwl parse_source_waveform(const Line& line, std::size_t first_token) {
  const auto& t = line.tokens;
  if (first_token >= t.size()) {
    throw ParseError(line.number, "source needs a value");
  }
  const std::string kind = lower(t[first_token]);
  if (kind == "dc") {
    if (first_token + 1 >= t.size()) {
      throw ParseError(line.number, "DC needs a value");
    }
    return core::Pwl::constant(parse_spice_value(t[first_token + 1]));
  }
  if (kind == "pwl") {
    std::vector<double> times, values;
    for (std::size_t i = first_token + 1; i + 1 < t.size(); i += 2) {
      times.push_back(parse_spice_value(t[i]));
      values.push_back(parse_spice_value(t[i + 1]));
    }
    if (times.size() < 2 || (t.size() - first_token - 1) % 2 != 0) {
      throw ParseError(line.number, "PWL needs an even number of >= 4 values");
    }
    try {
      return core::Pwl(std::move(times), std::move(values));
    } catch (const std::invalid_argument& e) {
      throw ParseError(line.number, std::string("bad PWL: ") + e.what());
    }
  }
  if (kind == "pulse") {
    if (first_token + 7 >= t.size()) {
      throw ParseError(line.number,
                       "PULSE needs v0 v1 delay rise width fall period");
    }
    const double v0 = parse_spice_value(t[first_token + 1]);
    const double v1 = parse_spice_value(t[first_token + 2]);
    const double delay = parse_spice_value(t[first_token + 3]);
    const double rise = parse_spice_value(t[first_token + 4]);
    const double width = parse_spice_value(t[first_token + 5]);
    const double fall = parse_spice_value(t[first_token + 6]);
    const double period = parse_spice_value(t[first_token + 7]);
    try {
      return pulse_waveform(v0, v1, delay, rise, width, fall, period, 50);
    } catch (const std::invalid_argument& e) {
      throw ParseError(line.number, std::string("bad PULSE: ") + e.what());
    }
  }
  // Bare value: DC.
  return core::Pwl::constant(parse_spice_value(t[first_token]));
}

/// Parse the node=value pairs of a .nodeset/.ic card. The tokenizer has
/// split `v(node)=1.2` into "v", "node", "=1.2", so pairs are assembled
/// across tokens: a bare token names a node, a token with '=' supplies a
/// value (possibly with its own key).
std::map<std::string, double> parse_nodeset_pairs(const Line& line) {
  std::map<std::string, double> pairs;
  std::string pending_node;
  for (std::size_t i = 1; i < line.tokens.size(); ++i) {
    const std::string& token = line.tokens[i];
    if (lower(token) == "v") continue;
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      pending_node = lower(token);
      continue;
    }
    std::string key = lower(token.substr(0, eq));
    if (key.empty()) {
      if (pending_node.empty()) {
        throw ParseError(line.number, "expected v(node)=value");
      }
      key = pending_node;
    }
    try {
      pairs[key] = parse_spice_value(token.substr(eq + 1));
    } catch (const std::invalid_argument& e) {
      throw ParseError(line.number, e.what());
    }
    pending_node.clear();
  }
  if (!pending_node.empty()) {
    throw ParseError(line.number, "node '" + pending_node + "' has no value");
  }
  return pairs;
}

}  // namespace

double parse_spice_value(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty value");
  std::size_t consumed = 0;
  double value;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number '" + token + "'");
  }
  std::string suffix = lower(token.substr(consumed));
  // Strip trailing unit letters after a recognised suffix (e.g. "10pF").
  static const std::vector<std::pair<std::string, double>> kSuffixes = {
      {"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3}, {"m", 1e-3},
      {"u", 1e-6},  {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
  };
  if (suffix.empty()) return value;
  for (const auto& [text, factor] : kSuffixes) {
    if (suffix.rfind(text, 0) == 0) return value * factor;
  }
  throw std::invalid_argument("bad value suffix '" + token + "'");
}

ParsedNetlist parse_netlist(const std::string& text) {
  ParsedNetlist result;
  result.circuit = std::make_unique<Circuit>();
  Circuit& circuit = *result.circuit;

  const auto lines = logical_lines(text, result.title);

  // Pass 1: collect .model cards (M cards may reference them earlier).
  std::map<std::string, ModelCard> models;
  for (const auto& line : lines) {
    if (lower(line.tokens[0]) != ".model") continue;
    if (line.tokens.size() < 3) {
      throw ParseError(line.number, ".model needs a name and a type");
    }
    ModelCard model;
    const std::string type = lower(line.tokens[2]);
    if (type == "nmos") {
      model.type = physics::MosType::kNmos;
    } else if (type == "pmos") {
      model.type = physics::MosType::kPmos;
    } else {
      throw ParseError(line.number, "unknown model type '" + type + "'");
    }
    for (std::size_t i = 3; i < line.tokens.size(); ++i) {
      std::string key, value;
      if (!split_param(line.tokens[i], key, value)) {
        throw ParseError(line.number, "expected key=value in .model");
      }
      if (key == "node") {
        model.node = value;
      } else if (key == "vth_shift") {
        model.vth_shift = parse_spice_value(value);
      } else {
        throw ParseError(line.number, "unknown .model parameter '" + key + "'");
      }
    }
    models[lower(line.tokens[1])] = model;
  }

  // Node names are case-insensitive in the netlist dialect.
  auto node_of = [&](const std::string& name) { return circuit.node(lower(name)); };

  bool ended = false;
  for (const auto& line : lines) {
    if (ended) throw ParseError(line.number, "content after .end");
    const auto& t = line.tokens;
    const std::string head = lower(t[0]);
    const char kind = head[0];
    auto need = [&](std::size_t n, const char* what) {
      if (t.size() < n) throw ParseError(line.number, std::string(what));
    };
    switch (kind) {
      case 'r': {
        need(4, "R card: Rname n1 n2 value");
        try {
          circuit.add<Resistor>(t[0], node_of(t[1]), node_of(t[2]),
                                parse_spice_value(t[3]));
        } catch (const std::invalid_argument& e) {
          throw ParseError(line.number, e.what());
        }
        break;
      }
      case 'c': {
        need(4, "C card: Cname n1 n2 value");
        try {
          circuit.add<Capacitor>(t[0], node_of(t[1]), node_of(t[2]),
                                 parse_spice_value(t[3]));
        } catch (const std::invalid_argument& e) {
          throw ParseError(line.number, e.what());
        }
        break;
      }
      case 'v': {
        need(4, "V card: Vname n+ n- spec");
        circuit.add<VoltageSource>(circuit, t[0], node_of(t[1]), node_of(t[2]),
                                   parse_source_waveform(line, 3));
        break;
      }
      case 'i': {
        need(4, "I card: Iname n+ n- spec");
        circuit.add<CurrentSource>(t[0], node_of(t[1]), node_of(t[2]),
                                   parse_source_waveform(line, 3));
        break;
      }
      case 'm': {
        need(6, "M card: Mname d g s b model [W=..] [L=..]");
        const auto it = models.find(lower(t[5]));
        if (it == models.end()) {
          throw ParseError(line.number, "unknown model '" + t[5] + "'");
        }
        const ModelCard& model = it->second;
        physics::Technology tech;
        try {
          tech = physics::technology(model.node);
        } catch (const std::invalid_argument& e) {
          throw ParseError(line.number, e.what());
        }
        physics::MosGeometry geom{tech.w_min, tech.l_min};
        for (std::size_t i = 6; i < t.size(); ++i) {
          std::string key, value;
          if (!split_param(t[i], key, value)) {
            throw ParseError(line.number, "expected key=value on M card");
          }
          if (key == "w") {
            geom.width = parse_spice_value(value);
          } else if (key == "l") {
            geom.length = parse_spice_value(value);
          } else {
            throw ParseError(line.number, "unknown M parameter '" + key + "'");
          }
        }
        try {
          circuit.add<Mosfet>(t[0], node_of(t[1]), node_of(t[2]),
                              node_of(t[3]), node_of(t[4]),
                              physics::MosDevice(tech, model.type, geom,
                                                 model.vth_shift));
        } catch (const std::invalid_argument& e) {
          throw ParseError(line.number, e.what());
        }
        break;
      }
      case '.': {
        if (head == ".model") break;  // handled in pass 1
        if (head == ".end") {
          ended = true;
          break;
        }
        if (head == ".tran") {
          need(3, ".tran step stop");
          result.has_tran = true;
          result.tran.dt_max = parse_spice_value(t[1]);
          result.tran.t_stop = parse_spice_value(t[2]);
          if (!(result.tran.t_stop > 0.0)) {
            throw ParseError(line.number, ".tran stop must be positive");
          }
          break;
        }
        if (head == ".nodeset" || head == ".ic") {
          for (const auto& [node, value] : parse_nodeset_pairs(line)) {
            result.tran.dc.nodeset[node] = value;
          }
          break;
        }
        if (head == ".rtn") {
          need(2, ".rtn device [scale=..] [seed=..]");
          RtnRequest request;
          request.device = t[1];
          for (std::size_t i = 2; i < t.size(); ++i) {
            std::string key, value;
            if (!split_param(t[i], key, value)) {
              throw ParseError(line.number, "expected key=value on .rtn");
            }
            if (key == "scale") {
              request.scale = parse_spice_value(value);
            } else if (key == "seed") {
              request.seed = static_cast<std::uint64_t>(
                  parse_spice_value(value));
            } else {
              throw ParseError(line.number, "unknown .rtn parameter '" + key + "'");
            }
          }
          result.rtn_requests.push_back(std::move(request));
          break;
        }
        if (head == ".print" || head == ".probe") {
          for (std::size_t i = 1; i < t.size(); ++i) {
            if (lower(t[i]) == "v") continue;  // the "v" of "v(node)"
            result.print_nodes.push_back(lower(t[i]));
          }
          break;
        }
        throw ParseError(line.number, "unknown directive '" + head + "'");
      }
      default:
        throw ParseError(line.number, "unknown card '" + t[0] + "'");
    }
  }

  // Validate .rtn devices exist and are MOSFETs.
  for (const auto& request : result.rtn_requests) {
    if (result.circuit->find<Mosfet>(request.device) == nullptr) {
      throw ParseError(0, ".rtn references unknown MOSFET '" +
                              request.device + "'");
    }
  }
  // Validate print nodes exist.
  for (const auto& node : result.print_nodes) {
    if (node != "0" && node != "gnd" && !result.circuit->has_node(node)) {
      throw ParseError(0, ".print references unknown node '" + node + "'");
    }
  }
  return result;
}

TransientResult run_netlist(const std::string& text) {
  auto parsed = parse_netlist(text);
  if (parsed.has_tran) {
    return transient(*parsed.circuit, parsed.tran);
  }
  DcOptions dc;
  dc.nodeset = parsed.tran.dc.nodeset;
  const auto op = dc_operating_point(*parsed.circuit, dc);
  if (!op.converged) {
    throw std::runtime_error("netlist DC operating point did not converge");
  }
  TransientResult result(parsed.circuit->node_names());
  result.record(0.0, op.x, parsed.circuit->num_nodes());
  return result;
}

}  // namespace samurai::spice
