// SPICE-style netlist text frontend.
//
// The paper drives its experiments through SpiceOPUS decks; this parser
// accepts the classic subset needed for that role, so circuits can be
// described as text instead of C++:
//
//   * SRAM write test
//   R1 in mid 10k
//   C1 mid 0 1p
//   Vin in 0 PWL(0 0 1n 0 1.05n 1.2)
//   Vdd vdd 0 DC 1.2
//   M1 out g 0 0 nfet W=220n L=90n
//   .model nfet nmos node=90nm
//   .tran 10p 5n
//   .nodeset v(out)=0
//   .print v(mid) v(out)
//   .end
//
// Supported cards: R, C, V, I (DC / PWL / PULSE), M (4-terminal, .model
// with a technology-node reference), .model, .tran, .nodeset, .ic,
// .print, .end. '*' comment lines, trailing ';' comments and '+'
// continuation lines follow SPICE conventions. The first line is a title.
// Values accept engineering suffixes (f p n u m k meg g t).
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/rtn_integration.hpp"

namespace samurai::spice {

/// A netlist parse/semantic error, with the 1-based source line.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message);
  std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

struct ParsedNetlist {
  std::string title;
  std::unique_ptr<Circuit> circuit;
  bool has_tran = false;
  TransientOptions tran;                ///< t_stop/dt from .tran, nodesets
  std::vector<std::string> print_nodes; ///< from .print v(...) cards
  std::vector<RtnRequest> rtn_requests; ///< from .rtn cards
};

/// Parse a netlist. Throws ParseError on malformed input.
ParsedNetlist parse_netlist(const std::string& text);

/// Parse a number with SPICE engineering suffixes ("2.2k", "10meg",
/// "0.5u", "1e-9"); throws std::invalid_argument on garbage.
double parse_spice_value(const std::string& token);

/// Convenience: parse, run the DC operating point and (if present) the
/// .tran analysis, and return the transient result. DC-only netlists get
/// a zero-length result holding the operating point.
TransientResult run_netlist(const std::string& text);

}  // namespace samurai::spice
