#include "spice/rtn_integration.hpp"

#include <algorithm>
#include <stdexcept>

#include "physics/srh_model.hpp"
#include "physics/trap_profile.hpp"
#include "spice/parser.hpp"
#include "util/rng.hpp"

namespace samurai::spice {

void extract_device_bias(const TransientResult& result, const Circuit& circuit,
                         const Mosfet& mosfet, core::Pwl& v_gs,
                         core::Pwl& i_d) {
  auto samples_of = [&](int node) -> const std::vector<double>* {
    if (node < 0) return nullptr;
    return &result.voltage_samples(circuit.node_name(node));
  };
  const auto* vd = samples_of(mosfet.drain());
  const auto* vg = samples_of(mosfet.gate());
  const auto* vs = samples_of(mosfet.source());
  const auto& times = result.times();
  const bool nmos = mosfet.model().type() == physics::MosType::kNmos;

  std::vector<double> vgs_values(times.size());
  std::vector<double> id_values(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double d = vd ? (*vd)[i] : 0.0;
    const double g = vg ? (*vg)[i] : 0.0;
    const double s = vs ? (*vs)[i] : 0.0;
    // NMOS-equivalent trap bias referenced to the conducting source side.
    vgs_values[i] = nmos ? g - std::min(d, s) : std::max(d, s) - g;
    id_values[i] = mosfet.model().evaluate(g - s, d - s).i_d;  // signed
  }
  v_gs = core::Pwl(times, std::move(vgs_values));
  i_d = core::Pwl(times, std::move(id_values));
}

RtnTransientResult run_rtn_transient(
    const std::function<std::unique_ptr<Circuit>()>& build,
    const TransientOptions& options, const std::vector<RtnRequest>& requests) {
  RtnTransientResult result;

  // One workspace for both passes: the injected circuit adds only current
  // sources (no Jacobian stamps), so its sparse pattern matches the
  // nominal one and the symbolic LU analysis from pass 1 is reused — and
  // on either engine the pass-2 attach reallocates nothing.
  NewtonWorkspace workspace;

  // Pass 1: nominal run.
  auto nominal_circuit = build();
  result.nominal = transient(*nominal_circuit, options, workspace);

  // SAMURAI per tagged device.
  result.traces.reserve(requests.size());
  for (const auto& request : requests) {
    auto* mosfet = nominal_circuit->find<Mosfet>(request.device);
    if (mosfet == nullptr) {
      throw std::invalid_argument(".rtn references unknown MOSFET '" +
                                  request.device + "'");
    }
    DeviceRtnTrace trace;
    trace.device = request.device;

    const auto& tech = mosfet->model().tech();
    const physics::SrhModel srh(tech);
    util::Rng rng(request.seed);
    util::Rng profile_rng = rng.split(101);
    trace.traps = physics::sample_trap_profile(
        tech, mosfet->model().geometry(), profile_rng);

    core::Pwl v_gs, i_d;
    extract_device_bias(result.nominal, *nominal_circuit, *mosfet, v_gs, i_d);
    const physics::MosDevice equivalent(tech, physics::MosType::kNmos,
                                        mosfet->model().geometry());
    core::RtnGeneratorOptions gen;
    gen.t0 = options.t_start;
    gen.tf = options.t_stop;
    gen.amplitude_scale = request.scale;
    util::Rng trap_rng = rng.split(977);
    auto device_rtn = core::generate_device_rtn(srh, equivalent, trace.traps,
                                                v_gs, i_d, trap_rng, gen);
    trace.n_filled = std::move(device_rtn.n_filled);
    trace.i_rtn = std::move(device_rtn.i_rtn);
    trace.stats = device_rtn.stats;
    result.traces.push_back(std::move(trace));
  }

  // Pass 2: injected run on a fresh circuit.
  auto rtn_circuit = build();
  for (const auto& trace : result.traces) {
    auto* mosfet = rtn_circuit->find<Mosfet>(trace.device);
    if (mosfet == nullptr) {
      throw std::runtime_error("circuit factory is not deterministic: '" +
                               trace.device + "' vanished");
    }
    rtn_circuit->add<CurrentSource>("Irtn_" + trace.device, mosfet->drain(),
                                    mosfet->source(), trace.i_rtn.scaled(-1.0));
  }
  result.with_rtn = transient(*rtn_circuit, options, workspace);
  return result;
}

RtnTransientResult run_netlist_rtn(const std::string& netlist_text) {
  // Parse once for the analysis spec and request list.
  auto probe = parse_netlist(netlist_text);
  if (!probe.has_tran) {
    throw std::invalid_argument("run_netlist_rtn: netlist needs .tran");
  }
  if (probe.rtn_requests.empty()) {
    throw std::invalid_argument("run_netlist_rtn: netlist has no .rtn cards");
  }
  return run_rtn_transient(
      [&netlist_text] { return parse_netlist(netlist_text).circuit; },
      probe.tran, probe.rtn_requests);
}

}  // namespace samurai::spice
