// Linear algebra for MNA systems, in two sizes.
//
// SRAM-cell-scale circuits have a dozen unknowns, where dense LU with
// partial pivoting is both simpler and faster than any sparse machinery —
// that path is DenseMatrix / lu_factor below and survives unchanged as the
// regression oracle. Whole-column circuits (hundreds of unknowns, a few
// entries per row) go through SparseMatrix / SparseLu: CSR storage with
// stamp programs resolved to direct value-slot pointers once per topology,
// and a fill-reducing LU whose symbolic analysis (pivot order + fill
// pattern) is computed once and reused across Newton iterations, time
// steps and Monte-Carlo repetitions. See DESIGN.md §12.
//
// Both engines expose factorization and triangular solves separately so
// the Newton loop can keep a factorization alive across iterations and
// steps (modified-Newton "bypass"): factor once, then re-solve against the
// stale factors while the residual keeps contracting. Both use the same
// scale-relative singularity threshold (see lu_factor).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <span>
#include <utility>
#include <vector>

namespace samurai::spice {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const noexcept { return n_; }
  double& at(std::size_t row, std::size_t col) { return data_[row * n_ + col]; }
  double at(std::size_t row, std::size_t col) const { return data_[row * n_ + col]; }
  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// Re-dimension to n×n (zero-filled). Reallocates only when the size
  /// actually changes; returns true in that case so callers can count
  /// workspace allocations.
  bool resize(std::size_t n) {
    if (n == n_) return false;
    n_ = n;
    data_.assign(n * n, 0.0);
    return true;
  }

  /// Overwrite this matrix with `other` (sizes must match): the fast-path
  /// restore of a cached base Jacobian — one memcpy, no re-stamping.
  void copy_from(const DenseMatrix& other) {
    std::memcpy(data_.data(), other.data_.data(), n_ * n_ * sizeof(double));
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Add `value` at (row, col); negative indices (ground) are ignored —
  /// this is the MNA stamping primitive.
  void stamp(int row, int col, double value) {
    if (row < 0 || col < 0) return;
    data_[static_cast<std::size_t>(row) * n_ + static_cast<std::size_t>(col)] += value;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Factor A in place by LU with partial pivoting: on return `a` holds the
/// unit-lower multipliers below the diagonal and U on/above it — with the
/// diagonal of U stored *reciprocated* so lu_solve_factored multiplies
/// instead of divides — and `pivots[k]` is the row swapped into position k. Returns false when the
/// matrix is numerically singular. The singularity test is scale-relative:
/// a pivot counts as zero when it falls below n·ε times the largest row
/// norm of the *input* matrix, so well-posed systems stamped in odd units
/// (fF/µA-scale entries) are not falsely rejected, while matrices that are
/// singular up to rounding are caught regardless of their absolute scale.
///
/// `scale_hint`, when non-negative, is taken as the max-abs entry of the
/// input matrix and skips the internal scan — the Newton fast path computes
/// it for free while copying the assembled Jacobian into the factor buffer.
bool lu_factor(DenseMatrix& a, std::vector<std::size_t>& pivots,
               double scale_hint = -1.0);

/// Solve A x = b in place using factors produced by lu_factor. Cheap
/// (O(n²)) relative to the factorization — this is the bypass primitive.
/// Defined inline: at SRAM-cell sizes (n ≈ 10) the triangular sweeps are
/// ~200 flops, so the call overhead is material on the Newton hot path.
inline void lu_solve_factored(const DenseMatrix& lu,
                              const std::vector<std::size_t>& pivots,
                              std::span<double> b) {
  const std::size_t n = lu.size();
  if (b.size() != n || pivots.size() != n) {
    throw std::invalid_argument("lu_solve_factored: size mismatch");
  }
  // Row interchanges in factorization order, then L y = Pb (unit lower),
  // then U x = y. Row-major traversal keeps both sweeps contiguous.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
  }
  const double* data = lu.data();
  for (std::size_t i = 1; i < n; ++i) {
    const double* row = data + i * n;
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= row[j] * b[j];
    b[i] = sum;
  }
  for (std::size_t i = n; i-- > 0;) {
    const double* row = data + i * n;
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= row[j] * b[j];
    b[i] = sum * row[i];  // diagonal holds 1/U(i,i)
  }
}

/// One-shot convenience: factor + solve. A and b are destroyed; returns
/// false if the matrix is singular (see lu_factor).
bool lu_solve(DenseMatrix& a, std::span<double> b);

// ------------------------------------------------------------------ sparse

/// CSR matrix whose pattern is fixed between build_pattern calls. Entries
/// are addressed by stable value-slot pointers (slot), so device stamp
/// programs resolve their (row, col) pairs to pointers once per topology
/// and per-iteration stamping is pointer chasing — no hashing, no search.
class SparseMatrix {
 public:
  std::size_t size() const noexcept { return n_; }
  std::size_t nnz() const noexcept { return cols_.size(); }

  /// Rebuild the pattern from coordinate pairs (duplicates are fine;
  /// ground stamps must already be filtered out). The full diagonal is
  /// always included so gmin/nodeset-pin injection and pivoting have a
  /// slot on every row. Values are zeroed. Returns true when the pattern
  /// actually changed — callers invalidate symbolic factorizations (and
  /// count a workspace reallocation) only in that case.
  bool build_pattern(std::size_t n,
                     std::span<const std::pair<int, int>> coords);

  /// Adopt another matrix's pattern (shared topology, separate values).
  void copy_pattern_from(const SparseMatrix& other);

  void set_zero() { std::fill(values_.begin(), values_.end(), 0.0); }

  /// Overwrite this matrix's values with `other`'s (same pattern): the
  /// sparse analogue of DenseMatrix::copy_from.
  void copy_values_from(const SparseMatrix& other) {
    std::memcpy(values_.data(), other.values_.data(),
                values_.size() * sizeof(double));
  }

  /// Stable pointer to the value slot at (row, col); nullptr when the
  /// entry is not in the pattern or addresses ground. Valid until the
  /// next build_pattern call.
  double* slot(int row, int col);

  double value_max_abs() const;

  const std::vector<int>& row_ptr() const noexcept { return row_ptr_; }
  const std::vector<int>& cols() const noexcept { return cols_; }
  const std::vector<double>& values() const noexcept { return values_; }
  std::vector<double>& values() noexcept { return values_; }

  /// Dense copy (tests and the one-time discovery factorization).
  void to_dense(DenseMatrix& out) const;

 private:
  std::size_t n_ = 0;
  std::vector<int> row_ptr_;    ///< n + 1 offsets
  std::vector<int> cols_;       ///< column index per entry, sorted per row
  std::vector<double> values_;  ///< one value per entry
  // Retained scratch so a same-pattern rebuild is allocation-free.
  std::vector<std::uint64_t> keys_;
  std::vector<int> scratch_row_ptr_;
  std::vector<int> scratch_cols_;
};

/// Sparse LU with threshold-Markowitz (fill-reducing) pivoting and a
/// reusable symbolic factorization.
///
/// The first factor() call runs a *discovery* factorization on a dense
/// working copy: at each step it picks, among the numerically acceptable
/// entries of the active submatrix (|v| within kPivotRelTol of its active
/// column's largest entry — the Spice3-style stability test), the one with
/// the smallest Markowitz cost (r-1)(c-1), tracking structure separately
/// from values so accidental cancellation cannot shrink the recorded
/// pattern. Pivots may be off-diagonal — MNA branch rows (voltage sources)
/// have structurally zero diagonals, so the row and column permutations
/// are independent. The permutation pair and permuted L+U fill pattern are
/// kept;
/// later factor() calls on the same pattern are *static-pattern numeric
/// refactorizations* — scatter, one up-looking sweep, no pivot search —
/// which is what makes per-step factorization cheap on the Newton hot
/// path. A refactorization whose static pivots degrade numerically falls
/// back to a fresh analysis automatically.
///
/// The singularity test mirrors lu_factor exactly: a pivot counts as zero
/// below max(scale · n · ε, DBL_MIN) where `scale` is the max-abs entry of
/// the input (or `scale_hint` when non-negative, skipping the scan).
class SparseLu {
 public:
  /// Drop all symbolic state (stale factors from another topology must
  /// never leak into a fresh solve).
  void invalidate() noexcept {
    analyzed_ = false;
    numeric_valid_ = false;
  }
  bool analyzed() const noexcept { return analyzed_; }
  /// Entries in L+U including fill-in (after a successful analysis).
  std::size_t fill_nnz() const noexcept { return lu_cols_.size(); }

  /// Grouped (Schur-fold) elimination ordering. Each group lists the MNA
  /// unknowns interior to one quiescent cell; unknowns in no group are
  /// *boundary*. The analysis then eliminates every group's interior
  /// first — a small local threshold-Markowitz factorization per group,
  /// pivots restricted to interior×interior, whose Schur complement is
  /// accumulated onto the boundary — and orders the boundary last with
  /// the classic Markowitz pass. This is the fill-reducing ordering hook
  /// for array-scale patterns: the O(n²) dense discovery scratch shrinks
  /// to O(boundary²) + O(max group²), and refactor() can skip the leading
  /// (group) rows entirely when only boundary/active stamps changed (see
  /// `first_changed_row`). Unknowns of two *different* groups must not
  /// couple directly; coupled pairs are demoted to the boundary during
  /// analysis rather than rejected. Setting a different group list
  /// invalidates the current analysis; an equal one is a no-op.
  void set_ordering_groups(std::vector<std::vector<int>> groups);
  bool has_ordering_groups() const noexcept { return !groups_.empty(); }

  /// Position of an original row in the elimination (pivot) order. Valid
  /// after a successful analysis. With grouped ordering, group interiors
  /// occupy [0, n_interior) and the boundary the tail — callers use this
  /// to translate "which stamps changed" into a refactor floor.
  std::size_t permuted_row(std::size_t original_row) const {
    return row_perm_inv_[original_row];
  }

  /// Factor `a`. Reuses the stored symbolic analysis when `a`'s pattern
  /// matches; analyses from scratch otherwise (or when static pivoting
  /// fails). Returns false when the matrix is numerically singular. When
  /// `was_analysis` is non-null it reports whether this call performed a
  /// fresh symbolic analysis (vs a numeric refactorization only).
  ///
  /// `first_changed_row` (permuted index, see permuted_row) promises that
  /// every A value mapping to a factor row below it is bit-identical to
  /// the previous *successful* factor() of this object: the numeric
  /// refactorization then keeps those rows' L/U values and re-scatters +
  /// re-sweeps only rows at or above the floor — bit-identical to the
  /// full sweep by construction, since an up-looking row depends only on
  /// earlier rows. Ignored (treated as 0) when the previous numeric state
  /// is unavailable or a fresh analysis runs.
  bool factor(const SparseMatrix& a, double scale_hint = -1.0,
              bool* was_analysis = nullptr, std::size_t first_changed_row = 0);

  /// Solve A x = b in place against the live factors (cheap, O(fill)).
  void solve(std::span<double> b) const;

  /// Adopt `other`'s symbolic analysis (permutations, fill pattern,
  /// scatter map and the analysed A-pattern copy), so this object's next
  /// factor() of a same-pattern matrix is a static-pattern numeric
  /// refactorization instead of a discovery analysis. This is how the
  /// batched transient engine pays for exactly one symbolic analysis
  /// across all K Monte-Carlo lanes: lane 0 analyses, the rest adopt.
  /// Numeric values are overwritten by the adopter's first factor().
  void adopt_analysis_from(const SparseLu& other) {
    if (this != &other) *this = other;
  }

 private:
  bool pattern_matches(const SparseMatrix& a) const;
  bool analyze(const SparseMatrix& a, double threshold);
  bool analyze_classic(const SparseMatrix& a, double threshold);
  bool analyze_grouped(const SparseMatrix& a, double threshold);
  void build_scatter_map(const SparseMatrix& a);
  bool refactor(const SparseMatrix& a, double threshold,
                std::size_t first_changed_row);
  static double resolve_scale(const SparseMatrix& a, double scale_hint);
  /// Threshold-Markowitz elimination of an n×n dense working copy with
  /// separate structure tracking — the discovery core shared by the
  /// classic whole-matrix analysis and the grouped boundary block. On
  /// success `dense` holds the permuted factors (multipliers below, U on
  /// and above the pivot positions) and the four permutation arrays are
  /// filled; `strct` marks every position that is structurally nonzero at
  /// any point (the fill pattern).
  static bool markowitz_eliminate(std::vector<double>& dense,
                                  std::vector<unsigned char>& strct,
                                  std::size_t n, double threshold,
                                  std::vector<std::size_t>& row_perm,
                                  std::vector<std::size_t>& row_perm_inv,
                                  std::vector<std::size_t>& col_perm,
                                  std::vector<std::size_t>& col_perm_inv);

  bool analyzed_ = false;
  /// True while lu_vals_ holds the factors of the last successful
  /// factor(): the precondition for a partial (first_changed_row > 0)
  /// refactorization.
  bool numeric_valid_ = false;
  std::vector<std::vector<int>> groups_;  ///< Schur-fold ordering groups
  std::size_t n_ = 0;
  std::vector<std::size_t> row_perm_;      ///< step -> original row
  std::vector<std::size_t> row_perm_inv_;  ///< original row -> step
  std::vector<std::size_t> col_perm_;      ///< step -> original column
  std::vector<std::size_t> col_perm_inv_;  ///< original column -> step
  // Permuted CSR of L+U (columns in permuted indices, ascending, diagonal
  // always present).
  std::vector<int> lu_row_ptr_;
  std::vector<int> lu_cols_;
  std::vector<double> lu_vals_;
  std::vector<int> lu_diag_;          ///< entry index of the diagonal per row
  std::vector<double> recip_diag_;    ///< 1 / U(k,k): solve multiplies
  std::vector<int> a_to_lu_;          ///< A entry -> lu_vals_ scatter map
  // Copy of the analysed A pattern (refactor-vs-analyse decision).
  std::vector<int> a_row_ptr_;
  std::vector<int> a_cols_;
  // Retained scratch (discovery working matrix, refactor row map, rhs).
  std::vector<double> dense_;
  std::vector<unsigned char> struct_;
  std::vector<std::pair<std::uint64_t, std::size_t>> candidates_;
  std::vector<int> pos_;
  mutable std::vector<double> pb_;
};

/// One-shot convenience mirroring lu_solve: factor + solve. Returns false
/// if the matrix is singular (same scale-relative contract as lu_factor).
bool sparse_lu_solve(const SparseMatrix& a, std::span<double> b,
                     double scale_hint = -1.0);

// -------------------------------------------------------------- stamp sink

/// Polymorphic-by-mode stamping target handed to Device::load as
/// LoadContext::jacobian. Devices always call `stamp(row, col, value)`;
/// what happens depends on how the sink is bound:
///
///  - dense:   forward into a DenseMatrix (the classic path),
///  - record:  append (row, col) to a coordinate list, ignoring values —
///             used once per topology to capture each stamp *program*,
///  - slots:   `*slots[cursor++] += value` — replay of a recorded program
///             against resolved CSR value-slot pointers (the sparse hot
///             path: no hashing, no bounds search),
///  - slots+capture: like slots, but additionally records each stamped
///             value into a side array (`captured[cursor] = value`) — the
///             activity-partitioned engine uses this to snapshot a
///             quiescent device's Jacobian contribution so later steps can
///             replay the identical values without re-evaluating the
///             device model,
///  - discard: drop everything (cache-hit passes that only need residuals).
///
/// Ground stamps (negative row or col) are skipped in *every* mode with
/// the same test, so a recorded program and its replay always walk the
/// same stamp sequence. The cursor is checked against the program length
/// after each device loop; devices must therefore emit a deterministic
/// stamp sequence for a fixed (scope, a0 == 0) — see Device::load.
class StampSink {
 public:
  void bind_dense(DenseMatrix* dense) noexcept {
    mode_ = Mode::kDense;
    dense_ = dense;
  }
  void bind_record(std::vector<std::pair<int, int>>* coords) noexcept {
    mode_ = Mode::kRecord;
    coords_ = coords;
  }
  void bind_slots(double* const* slots, std::size_t count) noexcept {
    mode_ = Mode::kSlots;
    slots_ = slots;
    slot_count_ = count;
    cursor_ = 0;
  }
  /// Slots mode that also snapshots each stamped value into `captured`
  /// (caller-sized to `count`). The cursor is shared with plain slots
  /// mode, so a device's capture is addressed by its recorded program
  /// range.
  void bind_slots_capture(double* const* slots, std::size_t count,
                          double* captured) noexcept {
    mode_ = Mode::kSlotsCapture;
    slots_ = slots;
    slot_count_ = count;
    captured_ = captured;
    cursor_ = 0;
  }
  void bind_discard() noexcept { mode_ = Mode::kDiscard; }

  /// True when stamps are being dropped (cache-hit residual passes).
  /// Devices whose Jacobian entries are value-independent may skip the
  /// stamp calls entirely in this mode — the stamp-sequence determinism
  /// contract only applies to record/slots modes, which track a cursor.
  bool discarding() const noexcept { return mode_ == Mode::kDiscard; }

  /// Stamps consumed since the last bind_slots (program-length check).
  std::size_t cursor() const noexcept { return cursor_; }

  void stamp(int row, int col, double value) {
    if (row < 0 || col < 0) return;  // ground
    switch (mode_) {
      case Mode::kDense:
        dense_->stamp(row, col, value);
        break;
      case Mode::kSlots:
        if (cursor_ >= slot_count_) {
          throw std::logic_error("StampSink: stamp program overrun");
        }
        *slots_[cursor_++] += value;
        break;
      case Mode::kSlotsCapture:
        if (cursor_ >= slot_count_) {
          throw std::logic_error("StampSink: stamp program overrun");
        }
        captured_[cursor_] = value;
        *slots_[cursor_++] += value;
        break;
      case Mode::kRecord:
        coords_->emplace_back(row, col);
        break;
      case Mode::kDiscard:
        break;
    }
  }

 private:
  enum class Mode { kDense, kSlots, kSlotsCapture, kRecord, kDiscard };
  Mode mode_ = Mode::kDiscard;
  DenseMatrix* dense_ = nullptr;
  std::vector<std::pair<int, int>>* coords_ = nullptr;
  double* const* slots_ = nullptr;
  std::size_t slot_count_ = 0;
  double* captured_ = nullptr;
  std::size_t cursor_ = 0;
};

}  // namespace samurai::spice
