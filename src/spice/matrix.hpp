// Dense linear algebra for MNA systems. SRAM-cell-scale circuits have a
// dozen unknowns, so dense LU with partial pivoting is both simpler and
// faster than any sparse machinery; array-level analyses simulate cells
// independently rather than as one giant matrix.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace samurai::spice {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const noexcept { return n_; }
  double& at(std::size_t row, std::size_t col) { return data_[row * n_ + col]; }
  double at(std::size_t row, std::size_t col) const { return data_[row * n_ + col]; }
  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// Add `value` at (row, col); negative indices (ground) are ignored —
  /// this is the MNA stamping primitive.
  void stamp(int row, int col, double value) {
    if (row < 0 || col < 0) return;
    data_[static_cast<std::size_t>(row) * n_ + static_cast<std::size_t>(col)] += value;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b in place by LU with partial pivoting; returns false if a
/// pivot underflows (singular matrix). A and b are destroyed.
bool lu_solve(DenseMatrix& a, std::span<double> b);

}  // namespace samurai::spice
