// Dense linear algebra for MNA systems. SRAM-cell-scale circuits have a
// dozen unknowns, so dense LU with partial pivoting is both simpler and
// faster than any sparse machinery; array-level analyses simulate cells
// independently rather than as one giant matrix.
//
// The factorization and the triangular solves are exposed separately so
// the Newton loop can keep a factorization alive across iterations and
// steps (modified-Newton "bypass"): factor once, then re-solve against the
// stale factors while the residual keeps contracting.
#pragma once

#include <cstddef>
#include <cstring>
#include <stdexcept>
#include <span>
#include <vector>

namespace samurai::spice {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  explicit DenseMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  std::size_t size() const noexcept { return n_; }
  double& at(std::size_t row, std::size_t col) { return data_[row * n_ + col]; }
  double at(std::size_t row, std::size_t col) const { return data_[row * n_ + col]; }
  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// Re-dimension to n×n (zero-filled). Reallocates only when the size
  /// actually changes; returns true in that case so callers can count
  /// workspace allocations.
  bool resize(std::size_t n) {
    if (n == n_) return false;
    n_ = n;
    data_.assign(n * n, 0.0);
    return true;
  }

  /// Overwrite this matrix with `other` (sizes must match): the fast-path
  /// restore of a cached base Jacobian — one memcpy, no re-stamping.
  void copy_from(const DenseMatrix& other) {
    std::memcpy(data_.data(), other.data_.data(), n_ * n_ * sizeof(double));
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Add `value` at (row, col); negative indices (ground) are ignored —
  /// this is the MNA stamping primitive.
  void stamp(int row, int col, double value) {
    if (row < 0 || col < 0) return;
    data_[static_cast<std::size_t>(row) * n_ + static_cast<std::size_t>(col)] += value;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Factor A in place by LU with partial pivoting: on return `a` holds the
/// unit-lower multipliers below the diagonal and U on/above it — with the
/// diagonal of U stored *reciprocated* so lu_solve_factored multiplies
/// instead of divides — and `pivots[k]` is the row swapped into position k. Returns false when the
/// matrix is numerically singular. The singularity test is scale-relative:
/// a pivot counts as zero when it falls below n·ε times the largest row
/// norm of the *input* matrix, so well-posed systems stamped in odd units
/// (fF/µA-scale entries) are not falsely rejected, while matrices that are
/// singular up to rounding are caught regardless of their absolute scale.
///
/// `scale_hint`, when non-negative, is taken as the max-abs entry of the
/// input matrix and skips the internal scan — the Newton fast path computes
/// it for free while copying the assembled Jacobian into the factor buffer.
bool lu_factor(DenseMatrix& a, std::vector<std::size_t>& pivots,
               double scale_hint = -1.0);

/// Solve A x = b in place using factors produced by lu_factor. Cheap
/// (O(n²)) relative to the factorization — this is the bypass primitive.
/// Defined inline: at SRAM-cell sizes (n ≈ 10) the triangular sweeps are
/// ~200 flops, so the call overhead is material on the Newton hot path.
inline void lu_solve_factored(const DenseMatrix& lu,
                              const std::vector<std::size_t>& pivots,
                              std::span<double> b) {
  const std::size_t n = lu.size();
  if (b.size() != n || pivots.size() != n) {
    throw std::invalid_argument("lu_solve_factored: size mismatch");
  }
  // Row interchanges in factorization order, then L y = Pb (unit lower),
  // then U x = y. Row-major traversal keeps both sweeps contiguous.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
  }
  const double* data = lu.data();
  for (std::size_t i = 1; i < n; ++i) {
    const double* row = data + i * n;
    double sum = b[i];
    for (std::size_t j = 0; j < i; ++j) sum -= row[j] * b[j];
    b[i] = sum;
  }
  for (std::size_t i = n; i-- > 0;) {
    const double* row = data + i * n;
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= row[j] * b[j];
    b[i] = sum * row[i];  // diagonal holds 1/U(i,i)
  }
}

/// One-shot convenience: factor + solve. A and b are destroyed; returns
/// false if the matrix is singular (see lu_factor).
bool lu_solve(DenseMatrix& a, std::span<double> b);

}  // namespace samurai::spice
