// Circuit analyses: Newton-Raphson DC operating point (with nodeset
// pinning and gmin stepping) and adaptive-step transient with backward
// Euler / trapezoidal companion integration and LTE-based step control.
//
// The transient hot path is allocation-free: a per-circuit NewtonWorkspace
// owns the Jacobian, residual, delta, predictor and LU-factor storage, the
// linear devices' stamps are cached as a base Jacobian that is memcpy'd
// under the MOSFET re-stamps each iteration, and LU factors are reused
// across iterations/steps while the residual contracts (modified-Newton
// bypass). See DESIGN.md "The transient fast path".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/waveform.hpp"
#include "spice/circuit.hpp"

namespace samurai::spice {

/// Operation counters for one solve (DC or transient). Monotonic within a
/// run; merged into the process-wide aggregate (solver_stats_snapshot) so
/// the campaign runtime can report per-shard solver work without threading
/// state through every sample type.
struct SolverStats {
  std::uint64_t newton_iterations = 0;
  std::uint64_t lu_factorizations = 0;  ///< factorizations on either engine
  std::uint64_t lu_solves = 0;          ///< triangular solves, either engine
  std::uint64_t bypass_hits = 0;        ///< solves against stale LU factors
  std::uint64_t device_loads = 0;       ///< individual Device::load calls
  std::uint64_t linear_cache_hits = 0;  ///< solves reusing the base Jacobian
  std::uint64_t steps_accepted = 0;
  std::uint64_t steps_rejected = 0;
  std::uint64_t transients = 0;
  /// Workspace buffer (re)allocations. Exactly one per circuit binding; a
  /// steady-state time-stepping loop must add zero (asserted in tests).
  std::uint64_t workspace_allocations = 0;
  // Sparse-engine share of the work (zero on pure dense runs). A
  // factorization on the sparse path is either a symbolic analysis
  // (pivot-order + fill discovery — once per topology, plus numeric
  // fallback re-analyses) or a static-pattern numeric refactorization;
  // the two sum to the sparse part of lu_factorizations and their ratio
  // is the symbolic-reuse rate the design banks on.
  std::uint64_t sp_symbolic_analyses = 0;
  std::uint64_t sp_numeric_refactors = 0;
  std::uint64_t sp_solves = 0;  ///< sparse part of lu_solves
  // Batched-engine share of the work (zero when every transient ran
  // scalar). Lanes of a batched run also count in the scalar fields
  // (transients, steps_accepted, ...) exactly as their scalar twins
  // would, so these three only attribute runs to the batched driver.
  std::uint64_t bt_batches = 0;  ///< batched fixed-grid transient calls
  std::uint64_t bt_lanes = 0;    ///< Monte-Carlo lanes across those calls
  std::uint64_t bt_steps = 0;    ///< accepted steps summed over lanes
  // Activity-partitioned engine ledger (zero with partitioning off).
  // device_loads counts only *real* loads, so device_loads +
  // ap_elided_loads is what an unpartitioned run would have paid.
  std::uint64_t ap_elided_loads = 0;      ///< stamp replays instead of loads
  std::uint64_t ap_partial_refactors = 0; ///< refactors with a nonzero floor
  std::uint64_t ap_rows_skipped = 0;      ///< factor rows retained, summed
  std::uint64_t ap_folded_cells = 0;      ///< Schur ordering groups attached

  void merge(const SolverStats& other);
  /// Counter-wise `this - other` (for before/after deltas).
  SolverStats since(const SolverStats& other) const;
};

/// Process-wide aggregate of every solve performed so far (atomic,
/// thread-safe). Snapshot before/after a work region and diff with
/// SolverStats::since to attribute solver work to that region.
SolverStats solver_stats_snapshot();

namespace detail {
struct NewtonDriver;
void solver_stats_accumulate(const SolverStats& stats);
}  // namespace detail

/// Linear-solver engine selection. kAuto picks by system size: dense
/// partial-pivot LU below kSparseAutoThreshold unknowns (cell-scale
/// circuits, where dense is faster and is the regression oracle), the
/// CSR/stamp-pointer sparse path at or above it (column-scale circuits,
/// where dense O(n³) factorization is the wall). The explicit kinds exist
/// for equivalence tests and benchmarks that pin one engine.
enum class SolverKind { kAuto, kDense, kSparse };

/// kAuto crossover, in MNA unknowns. A 6T cell is ~11 unknowns (dense), a
/// shared-bitline column is 7·N + 10 (sparse from 8 cells up). The exact
/// value is uncritical: both engines solve the same system to Newton
/// tolerance, so crossing it changes cost, never results.
inline constexpr std::size_t kSparseAutoThreshold = 50;

/// Activity partitioning for array-scale transients (DESIGN.md §15).
///  - kOff:   every nonlinear device is loaded every Newton iteration
///            (the unpartitioned path — also the regression oracle).
///  - kElide: quiescent devices' nonlinear stamps are captured once and
///            replayed while their input voltages stay within the
///            tolerance; at tolerance 0 the replay condition is bitwise
///            input equality and the run is bit-identical to kOff.
///  - kSchur: kElide plus a grouped (Schur-fold) elimination ordering
///            that condenses each quiescent cell's interior unknowns
///            ahead of the boundary, enabling partial refactorizations
///            that skip the folded rows.
enum class ActivityMode { kOff, kElide, kSchur };

/// Parse "off" | "elide" | "schur" (throws std::invalid_argument on
/// anything else — CLI layers catch this and exit with usage).
ActivityMode activity_mode_from_string(const std::string& text);
std::string activity_mode_to_string(ActivityMode mode);

/// Activity map for one circuit topology. Device names (not pointers) so
/// one partition serves both passes of run_rtn_transient, whose nominal
/// and injected circuits are separate builds of the same netlist.
struct ActivityPartition {
  ActivityMode mode = ActivityMode::kOff;
  /// Max-abs move of any input-node voltage before a quiescent device is
  /// re-evaluated. 0 = re-evaluate on any change (bit-exact elision).
  double tolerance = 0.0;
  /// Nonlinear devices allowed to elide (typically every transistor of a
  /// quiescent cell). Names absent from the circuit are ignored; devices
  /// without a nonlinear_inputs() contract stay active.
  std::vector<std::string> quiescent_devices;
  /// Schur ordering groups (kSchur only): each inner list holds the MNA
  /// unknown indices interior to one quiescent cell. Forwarded to
  /// SparseLu::set_ordering_groups.
  std::vector<std::vector<int>> groups;
};

/// Reusable per-circuit solver scratch: Jacobian, cached linear base,
/// residual, delta, LU factors and pivots, predictor buffers, and the
/// device list split into linear/nonlinear groups. Bind with attach();
/// buffers are reallocated only when the system size actually changes, so
/// a workspace reused across same-sized circuits (e.g. the methodology's
/// nominal and RTN-injected cells) performs zero further heap allocations.
class NewtonWorkspace {
 public:
  NewtonWorkspace() = default;

  /// Bind to `circuit`: size all buffers, split the device list, and
  /// invalidate the linear-stamp and LU caches (stale factors from another
  /// circuit must never leak into a fresh solve). `solver` picks the
  /// linear engine (kAuto: by system size). On the sparse path the stamp
  /// programs are re-recorded and re-resolved, but the symbolic LU
  /// analysis survives the re-attach whenever the new circuit's Jacobian
  /// pattern is unchanged — the cross-repetition reuse that makes
  /// Monte-Carlo campaigns pay for the analysis exactly once.
  ///
  /// A non-null `activity` with mode != kOff engages the
  /// activity-partitioned engine (forcing the sparse path regardless of
  /// size): elision caches are sized, quiescent-device names resolved and
  /// — in kSchur mode — the ordering groups handed to the sparse LU.
  void attach(Circuit& circuit, SolverKind solver = SolverKind::kAuto,
              const ActivityPartition* activity = nullptr);

  const SolverStats& stats() const noexcept { return stats_; }
  /// True when the last attach selected the sparse engine.
  bool uses_sparse() const noexcept { return use_sparse_; }
  /// L+U nonzeros of the live sparse factorization (0 before the first
  /// sparse factor). Benches report this to compare orderings.
  std::size_t lu_fill_nnz() const noexcept { return sp_lu_.fill_nnz(); }

 private:
  friend struct detail::NewtonDriver;

  Circuit* circuit_ = nullptr;
  std::size_t n_ = 0;
  DenseMatrix jacobian_;  ///< full Jacobian assembled per iteration
  DenseMatrix base_jac_;  ///< cached linear stamps (+ gmin, pins)
  DenseMatrix lu_;        ///< live LU factors (modified-Newton reuse)
  std::vector<std::size_t> pivots_;
  std::vector<double> residual_;
  std::vector<double> base_res_;  ///< linear residual offset f_lin(0)
  std::vector<double> delta_;
  std::vector<double> zero_x_;
  std::vector<double> x_new_;
  std::vector<double> x_prev_;
  std::vector<double> x_pred_;
  std::vector<Device*> devices_;            ///< all, base-pass order
  std::vector<Device*> nonlinear_devices_;  ///< iterated every Newton pass
  // Linear-base cache key.
  bool base_valid_ = false;
  double base_a0_ = 0.0;
  double base_ci_ = 0.0;
  double base_gmin_ = 0.0;
  bool base_had_pins_ = false;
  bool lu_valid_ = false;
  // Sparse engine state (engaged when use_sparse_): the base/full Jacobian
  // pair shares one CSR pattern, the recorded stamp programs are replayed
  // through resolved value-slot pointers, and sp_lu_ carries the symbolic
  // factorization across iterations, steps and re-attaches (DESIGN.md
  // §12).
  bool use_sparse_ = false;
  SparseMatrix sp_base_;  ///< cached linear stamps (+ gmin, pins)
  SparseMatrix sp_jac_;   ///< full Jacobian assembled per iteration
  SparseLu sp_lu_;
  std::vector<std::pair<int, int>> sp_coords_;  ///< recorded programs
  std::size_t sp_lin_tr_count_ = 0;  ///< linear program length, a0 != 0
  std::size_t sp_lin_dc_count_ = 0;  ///< linear program length, a0 == 0
  std::size_t sp_nl_count_ = 0;      ///< nonlinear program length
  std::vector<double*> sp_lin_tr_slots_;  ///< into sp_base_
  std::vector<double*> sp_lin_dc_slots_;  ///< into sp_base_
  std::vector<double*> sp_nl_slots_;      ///< into sp_jac_
  std::vector<double*> sp_diag_slots_;    ///< sp_base_ diagonal (gmin/pins)
  StampSink sp_sink_;
  // Activity-partitioned engine state (engaged when ap_mode_ != kOff;
  // always rides the sparse path). Per nonlinear device i:
  // [ap_prog_begin_[i], ap_prog_end_[i]) is its slice of the nonlinear
  // stamp program, [ap_input_begin_[i], ap_input_begin_[i+1]) its slice
  // of ap_input_nodes_/ap_key_/ap_res_cache_. A device replays its cached
  // Jacobian values (ap_jac_cache_, program-aligned) and residual
  // contributions whenever x at its input nodes is within ap_tol_ of the
  // values cached at its last real evaluation (ap_key_).
  ActivityMode ap_mode_ = ActivityMode::kOff;
  double ap_tol_ = 0.0;
  std::vector<std::size_t> ap_prog_begin_;    ///< per nl device, nl-program-relative
  std::vector<std::size_t> ap_prog_end_;
  std::vector<unsigned char> ap_elidable_;    ///< per nl device
  std::vector<std::size_t> ap_input_begin_;   ///< per nl device + 1
  std::vector<int> ap_input_nodes_;           ///< flattened, ground dropped
  std::vector<double> ap_key_;                ///< x at inputs, last evaluation
  std::vector<unsigned char> ap_valid_;       ///< per nl device: cache live
  std::vector<double> ap_jac_cache_;          ///< captured nl stamp values
  std::vector<double> ap_res_cache_;          ///< captured residual adds
  std::vector<double> ap_scratch_res_;        ///< zero except mid-capture
  // Partial-refactor bookkeeping: min permuted factor row whose A values
  // may differ from the last successful factorization. Lowered by device
  // re-evaluations (per-device floors over their stamp rows) and base
  // rebuilds; reset to n after each successful factor.
  std::size_t ap_dirty_min_ = 0;
  bool ap_floors_valid_ = false;
  std::vector<std::size_t> ap_row_floor_;     ///< per nl device
  std::size_t ap_static_floor_ = 0;           ///< min over non-elidable devices
  // Residual-history bypass auto-disable: judge each bypassed iteration
  // by whether the following residual still contracted at the required
  // rate; workloads where stale-LU iterations repeatedly stall get the
  // bypass switched off for the rest of the attachment.
  bool bypass_enabled_ = true;
  bool last_iter_bypassed_ = false;
  std::uint32_t bypass_good_ = 0;
  std::uint32_t bypass_bad_ = 0;
  SolverStats stats_;
};

struct NewtonOptions {
  int max_iterations = 200;
  double abstol = 1e-9;   ///< KCL residual tolerance, A
  double vntol = 1e-6;    ///< Newton update tolerance, V
  double reltol = 1e-4;   ///< relative part of the branch-current check
  double dv_limit = 0.6;  ///< per-iteration voltage damping clamp, V
  /// Modified-Newton LU reuse: within a solve, keep the previous
  /// iteration's factorization and re-solve against it while the scaled
  /// residual contracts by at least `bypass_contraction` per iteration;
  /// refactorize on stall or reject. The first iteration of each solve
  /// always factors (a0 changes with the adaptive step size).
  bool reuse_lu = true;
  double bypass_contraction = 0.5;
  /// Cache the linear devices' base Jacobian across solves with unchanged
  /// companion coefficients (a0, ci). Both knobs exist so benchmarks and
  /// regression tests can force the slow reference path.
  bool cache_linear_stamps = true;
};

struct DcOptions {
  NewtonOptions newton;
  /// Initial-guess pins: solved first with a 1 S conductance tying each
  /// node to its value, then released (SPICE .NODESET). This is how the
  /// SRAM cell is placed in a chosen bistable basin.
  std::map<std::string, double> nodeset;
  double gmin = 1e-12;  ///< conductance from every node to ground
  /// Linear-engine override for standalone DC solves (transients use
  /// TransientOptions::solver for the whole run, including their DC).
  SolverKind solver = SolverKind::kAuto;
};

struct DcResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> x;  ///< node voltages then branch currents
  SolverStats stats;
};

DcResult dc_operating_point(Circuit& circuit, const DcOptions& options = {});

enum class IntegrationMethod { kBackwardEuler, kTrapezoidal };

struct TransientOptions {
  double t_start = 0.0;
  double t_stop = 0.0;     ///< required
  double dt_initial = 1e-12;
  double dt_min = 1e-17;
  double dt_max = 0.0;     ///< 0 = (t_stop - t_start) / 200
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  NewtonOptions newton;
  DcOptions dc;            ///< initial operating point (nodeset etc.)
  /// Linear-engine selection for the whole transient (initial DC
  /// included). kAuto sizes it: dense below kSparseAutoThreshold
  /// unknowns, sparse at or above.
  SolverKind solver = SolverKind::kAuto;
  double lte_reltol = 2e-3;
  double lte_abstol = 1e-5;
  /// Fixed-grid step mode: march dt_max-sized steps clipped to each
  /// breakpoint, with no LTE estimation, no step rejection and no
  /// controller (dt_initial is ignored; a Newton failure throws instead
  /// of shrinking the step). The accepted-step sequence is then a pure
  /// function of (t_start, t_stop, dt_max, breakpoints), which is the
  /// lock-step contract the batched engine builds on: every lane of a
  /// batch — and a scalar rerun with the same options — takes *exactly*
  /// the same steps. See DESIGN.md §13.
  bool fixed_grid = false;
  /// Monte-Carlo lane count hint for campaign-level batching: how many
  /// samples the campaign runner should march through one
  /// transient_batch() call (spice/batch.hpp). 1 = scalar path. The
  /// scalar transient() ignores it.
  std::size_t batch = 1;
  /// Extra mandatory time points (e.g. RTN switch instants).
  std::vector<double> extra_breakpoints;
  /// Activity partition for array-scale circuits (kOff = classic path).
  /// Rejected by the batched engine (transient_batch throws).
  ActivityPartition activity;
  /// Called after every accepted step with (t, solution). This is the
  /// coupling hook: the bi-directionally coupled RTN simulation advances
  /// its trap chains here using the instantaneous node voltages.
  std::function<void(double, std::span<const double>)> on_step;
};

class TransientResult {
 public:
  TransientResult() = default;
  explicit TransientResult(std::vector<std::string> node_names);

  void record(double t, std::span<const double> x, std::size_t num_nodes);

  /// Pre-size the per-node sample buffers (the fixed-grid drivers know
  /// the exact point count up front, so recording never reallocates).
  void reserve(std::size_t points);

  const std::vector<double>& times() const noexcept { return times_; }
  const std::vector<std::string>& node_names() const noexcept { return names_; }
  std::size_t num_points() const noexcept { return times_.size(); }

  /// Solver work performed by this transient (including its initial DC).
  const SolverStats& stats() const noexcept { return stats_; }
  void set_stats(const SolverStats& stats) { stats_ = stats; }

  /// Voltage samples of one node (aligned with times()).
  const std::vector<double>& voltage_samples(const std::string& node) const;
  /// Voltage of one node as a PWL waveform.
  core::Pwl voltage(const std::string& node) const;
  /// Voltage at an arbitrary time by linear interpolation.
  double voltage_at(const std::string& node, double t) const;

  /// Difference waveform v(a) - v(b); either may be "0"/"gnd".
  core::Pwl voltage_between(const std::string& a, const std::string& b) const;

 private:
  std::size_t node_index(const std::string& node) const;
  std::vector<std::string> names_;
  std::vector<double> times_;
  std::vector<std::vector<double>> samples_;  ///< per node
  SolverStats stats_;
};

TransientResult transient(Circuit& circuit, const TransientOptions& options);

/// Transient reusing a caller-owned workspace: same result, but a
/// same-sized workspace performs zero heap allocations. The workspace is
/// re-attached to `circuit`, so it may be shared across circuits of any
/// size (reallocation happens only on size changes).
TransientResult transient(Circuit& circuit, const TransientOptions& options,
                          NewtonWorkspace& workspace);

}  // namespace samurai::spice
