// Circuit analyses: Newton-Raphson DC operating point (with nodeset
// pinning and gmin stepping) and adaptive-step transient with backward
// Euler / trapezoidal companion integration and LTE-based step control.
#pragma once

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/waveform.hpp"
#include "spice/circuit.hpp"

namespace samurai::spice {

struct NewtonOptions {
  int max_iterations = 200;
  double abstol = 1e-9;   ///< KCL residual tolerance, A
  double vntol = 1e-6;    ///< Newton update tolerance, V
  double dv_limit = 0.6;  ///< per-iteration voltage damping clamp, V
};

struct DcOptions {
  NewtonOptions newton;
  /// Initial-guess pins: solved first with a 1 S conductance tying each
  /// node to its value, then released (SPICE .NODESET). This is how the
  /// SRAM cell is placed in a chosen bistable basin.
  std::map<std::string, double> nodeset;
  double gmin = 1e-12;  ///< conductance from every node to ground
};

struct DcResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> x;  ///< node voltages then branch currents
};

DcResult dc_operating_point(Circuit& circuit, const DcOptions& options = {});

enum class IntegrationMethod { kBackwardEuler, kTrapezoidal };

struct TransientOptions {
  double t_start = 0.0;
  double t_stop = 0.0;     ///< required
  double dt_initial = 1e-12;
  double dt_min = 1e-17;
  double dt_max = 0.0;     ///< 0 = (t_stop - t_start) / 200
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  NewtonOptions newton;
  DcOptions dc;            ///< initial operating point (nodeset etc.)
  double lte_reltol = 2e-3;
  double lte_abstol = 1e-5;
  /// Extra mandatory time points (e.g. RTN switch instants).
  std::vector<double> extra_breakpoints;
  /// Called after every accepted step with (t, solution). This is the
  /// coupling hook: the bi-directionally coupled RTN simulation advances
  /// its trap chains here using the instantaneous node voltages.
  std::function<void(double, std::span<const double>)> on_step;
};

class TransientResult {
 public:
  TransientResult() = default;
  explicit TransientResult(std::vector<std::string> node_names);

  void record(double t, std::span<const double> x, std::size_t num_nodes);

  const std::vector<double>& times() const noexcept { return times_; }
  const std::vector<std::string>& node_names() const noexcept { return names_; }
  std::size_t num_points() const noexcept { return times_.size(); }

  /// Voltage samples of one node (aligned with times()).
  const std::vector<double>& voltage_samples(const std::string& node) const;
  /// Voltage of one node as a PWL waveform.
  core::Pwl voltage(const std::string& node) const;
  /// Voltage at an arbitrary time by linear interpolation.
  double voltage_at(const std::string& node, double t) const;

  /// Difference waveform v(a) - v(b); either may be "0"/"gnd".
  core::Pwl voltage_between(const std::string& a, const std::string& b) const;

 private:
  std::size_t node_index(const std::string& node) const;
  std::vector<std::string> names_;
  std::vector<double> times_;
  std::vector<std::vector<double>> samples_;  ///< per node
};

TransientResult transient(Circuit& circuit, const TransientOptions& options);

}  // namespace samurai::spice
