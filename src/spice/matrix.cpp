#include "spice/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace samurai::spice {

bool lu_factor(DenseMatrix& a, std::vector<std::size_t>& pivots,
               double scale_hint) {
  const std::size_t n = a.size();
  pivots.resize(n);
  if (n == 0) return true;

  // Scale-relative singularity threshold from the input row norms. An
  // absolute floor still rejects denormal pivots that would overflow the
  // reciprocal.
  double scale = scale_hint;
  if (scale < 0.0) {
    scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double row_norm = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row_norm = std::max(row_norm, std::abs(a.at(i, j)));
      }
      scale = std::max(scale, row_norm);
    }
  }
  if (scale == 0.0) return false;  // zero matrix
  const double threshold =
      std::max(scale * static_cast<double>(n) *
                   std::numeric_limits<double>::epsilon(),
               std::numeric_limits<double>::min());

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double best = std::abs(a.at(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(a.at(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (best < threshold) return false;
    pivots[k] = pivot;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a.at(k, j), a.at(pivot, j));
    }
    const double inv_pivot = 1.0 / a.at(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a.at(i, k) * inv_pivot;
      if (factor == 0.0) continue;
      a.at(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) a.at(i, j) -= factor * a.at(k, j);
    }
    // Store the reciprocal pivot: back-substitution then multiplies instead
    // of dividing, which matters because the bypass re-solves against one
    // factorization many times.
    a.at(k, k) = inv_pivot;
  }
  return true;
}

bool lu_solve(DenseMatrix& a, std::span<double> b) {
  const std::size_t n = a.size();
  if (b.size() != n) throw std::invalid_argument("lu_solve: size mismatch");
  std::vector<std::size_t> pivots;
  if (!lu_factor(a, pivots)) return false;
  lu_solve_factored(a, pivots, b);
  return true;
}

}  // namespace samurai::spice
